package tech

import (
	"math"
	"testing"

	"mpsram/internal/units"
)

func TestN10Validates(t *testing.T) {
	p := N10()
	if err := p.Validate(); err != nil {
		t.Fatalf("N10 preset invalid: %v", err)
	}
}

func TestN10Calibration(t *testing.T) {
	p := N10()
	// The calibration anchor from DESIGN.md §4: +3 nm CD on the 26 nm
	// bit line must give ΔR = 26/29−1 ≈ −10.34 % (paper: −10.36 %).
	w := p.M1.Width
	dr := w/(w+3*units.Nano) - 1
	if math.Abs(dr - -0.1034) > 0.001 {
		t.Fatalf("CD calibration broken: ΔR = %.4f, want ≈ −0.1034", dr)
	}
	// SADP worst corner: core −3σ, spacer −3σ ⇒ gap width 32 nm.
	s := p.SADP
	s.MandrelWidth -= p.Var.CD3Sigma
	s.SpacerThk -= p.Var.Spacer3Sigma
	if got := s.GapWidth(); math.Abs(got-32*units.Nano) > 1e-12 {
		t.Fatalf("SADP worst gap width = %v, want 32 nm", got)
	}
}

func TestSADPGapWidthConservation(t *testing.T) {
	p := N10()
	s := p.SADP
	// One period always holds one core line, one gap line and two
	// spacers regardless of variation.
	for _, dm := range []float64{-3e-9, 0, 3e-9} {
		for _, dt := range []float64{-1.5e-9, 0, 1.5e-9} {
			v := s
			v.MandrelWidth += dm
			v.SpacerThk += dt
			sum := v.MandrelWidth + v.GapWidth() + 2*v.SpacerThk
			if math.Abs(sum-v.Period) > 1e-15 {
				t.Fatalf("period conservation violated: %v != %v", sum, v.Period)
			}
		}
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Process)
	}{
		{"zero width", func(p *Process) { p.M1.Width = 0 }},
		{"pitch mismatch", func(p *Process) { p.M1.Pitch = 50e-9 }},
		{"bad rho", func(p *Process) { p.M1.Rho = -1 }},
		{"bad eps", func(p *Process) { p.Diel.EpsR = 0.5 }},
		{"bad plane", func(p *Process) { p.Diel.HBelow = 0 }},
		{"sadp gap", func(p *Process) { p.SADP.MandrelWidth = 80e-9 }},
		{"sadp period", func(p *Process) { p.SADP.Period = 90e-9; p.SADP.MandrelWidth = 20e-9 }},
		{"cell pitch", func(p *Process) { p.Cell.XPitch = 0 }},
		{"sense over vdd", func(p *Process) { p.FEOL.SenseDeltaV = 1.0 }},
		{"vt over vdd", func(p *Process) { p.FEOL.VtN = 0.9 }},
		{"bad k", func(p *Process) { p.FEOL.KN = 0 }},
		{"bad precharge", func(p *Process) { p.FEOL.WPre0 = 0 }},
		{"negative variation", func(p *Process) { p.Var.CD3Sigma = -1e-9 }},
	}
	for _, m := range mutations {
		p := N10()
		m.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid process", m.name)
		}
	}
}

func TestPrechargeScaling(t *testing.T) {
	f := N10().FEOL
	// Drive width scales linearly with n from the reference size.
	if got := f.WPre(16); math.Abs(got-f.WPre0) > 1e-18 {
		t.Fatalf("WPre(refN) = %v, want WPre0 = %v", got, f.WPre0)
	}
	if got := f.WPre(64); math.Abs(got-4*f.WPre0) > 1e-18 {
		t.Fatalf("WPre(64) = %v, want 4×WPre0", got)
	}
	// CPre is affine in n: fixed overhead plus scaled junction.
	c16 := f.CPre(16)
	c64 := f.CPre(64)
	c256 := f.CPre(256)
	if !(c16 < c64 && c64 < c256) {
		t.Fatal("CPre must grow with n")
	}
	// Affine check: slope between consecutive spans must match.
	s1 := (c64 - c16) / 48
	s2 := (c256 - c64) / 192
	if math.Abs(s1-s2) > 1e-25 {
		t.Fatalf("CPre not affine in n: slopes %g vs %g", s1, s2)
	}
}

func TestWithOL(t *testing.T) {
	p := N10()
	q := p.WithOL(3e-9)
	if q.Var.OL3Sigma != 3e-9 {
		t.Fatalf("WithOL did not set overlay: %v", q.Var.OL3Sigma)
	}
	if p.Var.OL3Sigma != 8e-9 {
		t.Fatal("WithOL mutated the receiver")
	}
}

func TestDielectricEps(t *testing.T) {
	d := Dielectric{EpsR: 2.7}
	want := 2.7 * units.Eps0
	if math.Abs(d.Eps()-want) > 1e-22 {
		t.Fatalf("Eps = %g, want %g", d.Eps(), want)
	}
}
