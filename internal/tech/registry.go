// The process registry: named technology presets and the scaling helper
// that derives them. The paper's study is pinned to one imec-N10-flavoured
// node; the registry turns the process description into a first-class
// axis — N7- and N5-class presets derived from N10 by a validated
// geometric shrink — so every workload (analytic MC, SPICE sweeps,
// SPICE-in-the-loop MC) can sweep across nodes.
//
// Derivation model: a node shrink scales every drawn geometry (pitches,
// widths, metal and barrier thickness, cell footprint, device widths) by
// one linear factor, while the lithography variation budgets shrink more
// slowly — CD and overlay control do not improve at the pace of the
// pitch, which is exactly why multi-patterning variability worsens at
// tighter nodes — and the effective resistivity grows as the line CD
// approaches the electron mean free path (surface/grain scattering).
// Voltages, permittivities and per-metre FEOL capacitance densities are
// held; they are not functions of the metal pitch at this modelling
// level.
package tech

import (
	"fmt"
	"strings"
)

// DeriveSpec parameterizes a node shrink from a base process. The zero
// value of a field means "inherit" (scale 1).
type DeriveSpec struct {
	// Name is the derived preset's registry name (required).
	Name string
	// Geom is the linear shrink applied to every drawn geometry: M1
	// pitch/width/space/thickness, barrier, dielectric plane distances,
	// SADP period/mandrel/spacer, cell pitches and device widths.
	// Required: must be in (0, 1].
	Geom float64
	// Var is the shrink applied to the 3σ variation budgets (CD,
	// spacer, overlay, thickness). Litho control improves slower than
	// the pitch, so typically Geom < Var ≤ 1. Defaults to 1 (budgets
	// held — the pessimistic constant-variability assumption).
	Var float64
	// Rho scales the effective resistivity up to model the stronger
	// surface and grain-boundary scattering of narrower lines.
	// Defaults to 1; must be ≥ 1.
	Rho float64
}

// scale1 returns s, defaulting the zero value to 1.
func scale1(s float64) float64 {
	if s == 0 {
		return 1
	}
	return s
}

// Derive produces a validated derived preset from base by applying spec.
// Every drawn geometry scales by spec.Geom, the variation budgets by
// spec.Var and the resistivity by spec.Rho; the result is checked with
// Process.Validate so an inconsistent spec fails here, not in an engine.
func Derive(base Process, spec DeriveSpec) (Process, error) {
	if spec.Name == "" {
		return Process{}, fmt.Errorf("tech: derive from %s: empty name", base.Name)
	}
	g := spec.Geom
	if g <= 0 || g > 1 {
		return Process{}, fmt.Errorf("tech: derive %s: geometry scale %v outside (0, 1]", spec.Name, g)
	}
	v := scale1(spec.Var)
	if v <= 0 {
		return Process{}, fmt.Errorf("tech: derive %s: variation scale %v must be positive", spec.Name, v)
	}
	rho := scale1(spec.Rho)
	if rho < 1 {
		return Process{}, fmt.Errorf("tech: derive %s: resistivity scale %v < 1", spec.Name, rho)
	}

	p := base
	p.Name = spec.Name
	m := &p.M1
	m.Pitch *= g
	m.Width *= g
	m.Space *= g
	m.Thickness *= g
	m.BarrierBottom *= g
	m.BarrierSide *= g
	m.Rho *= rho
	p.Diel.HBelow *= g
	p.Diel.HAbove *= g
	p.SADP.Period *= g
	p.SADP.MandrelWidth *= g
	p.SADP.SpacerThk *= g
	p.Cell.XPitch *= g
	p.Cell.YPitch *= g
	f := &p.FEOL
	f.WPassGate *= g
	f.WPullDown *= g
	f.WPullUp *= g
	f.LGate *= g
	f.WPre0 *= g
	p.Var.CD3Sigma *= v
	p.Var.Spacer3Sigma *= v
	p.Var.OL3Sigma *= v
	p.Var.Thk3Sigma *= v
	if err := p.Validate(); err != nil {
		return Process{}, fmt.Errorf("tech: derive %s: %w", spec.Name, err)
	}
	return p, nil
}

// N7 returns the N7-class preset: a 0.75× shrink of N10 (36 nm M1 pitch)
// with variation budgets at 0.85× (CD 3σ 2.55 nm, OL 3σ 6.8 nm) and 20 %
// higher effective resistivity.
func N7() Process {
	p, err := Derive(N10(), DeriveSpec{Name: "N7", Geom: 0.75, Var: 0.85, Rho: 1.2})
	if err != nil {
		panic(err) // the preset is pinned by tests; unreachable
	}
	return p
}

// N5 returns the N5-class preset: a 0.5833...× shrink of N10 (28 nm M1
// pitch) with variation budgets at 0.75× (CD 3σ 2.25 nm, OL 3σ 6 nm) and
// 45 % higher effective resistivity.
func N5() Process {
	p, err := Derive(N10(), DeriveSpec{Name: "N5", Geom: 28.0 / 48.0, Var: 0.75, Rho: 1.45})
	if err != nil {
		panic(err) // the preset is pinned by tests; unreachable
	}
	return p
}

// Registry is an ordered set of named, validated technology presets.
type Registry struct {
	names []string
	procs map[string]Process
}

// NewRegistry builds a registry from the given presets, validating each
// and rejecting duplicate names. Iteration order is insertion order.
func NewRegistry(procs ...Process) (*Registry, error) {
	r := &Registry{procs: make(map[string]Process, len(procs))}
	for _, p := range procs {
		if err := r.Add(p); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Add validates p and appends it to the registry.
func (r *Registry) Add(p Process) error {
	if p.Name == "" {
		return fmt.Errorf("tech: registry: preset with empty name")
	}
	if _, dup := r.procs[p.Name]; dup {
		return fmt.Errorf("tech: registry: duplicate preset %q", p.Name)
	}
	if err := p.Validate(); err != nil {
		return fmt.Errorf("tech: registry: %w", err)
	}
	r.procs[p.Name] = p
	r.names = append(r.names, p.Name)
	return nil
}

// Names returns the preset names in registration order.
func (r *Registry) Names() []string {
	return append([]string(nil), r.names...)
}

// Processes returns the presets in registration order.
func (r *Registry) Processes() []Process {
	out := make([]Process, 0, len(r.names))
	for _, n := range r.names {
		out = append(out, r.procs[n])
	}
	return out
}

// Lookup resolves a preset by name (case-insensitive). An unknown name
// returns an error that lists the valid names, so a CLI typo answers
// itself.
func (r *Registry) Lookup(name string) (Process, error) {
	if p, ok := r.procs[name]; ok {
		return p, nil
	}
	for n, p := range r.procs {
		if strings.EqualFold(n, name) {
			return p, nil
		}
	}
	return Process{}, fmt.Errorf("tech: unknown process %q (valid: %s)",
		name, strings.Join(r.names, ", "))
}

// Default returns the shipped registry: the calibrated N10 preset plus
// the derived N7- and N5-class nodes, in that order.
func Default() *Registry {
	r, err := NewRegistry(N10(), N7(), N5())
	if err != nil {
		panic(err) // presets are pinned by tests; unreachable
	}
	return r
}
