// Package tech defines the technology description consumed by the
// patterning, extraction and simulation layers: the metal stack, the
// dielectric environment, FEOL electrical constants, SRAM cell geometry,
// the SADP process parameters and the process-variation assumptions.
//
// The shipped N10 preset is calibrated so that the worst-case variability
// algebra of the paper lands in the published bands (see DESIGN.md §4):
// a +3 nm CD on a 26 nm bit line gives ΔRbl = 26/29−1 = −10.34 %, the
// SADP spacer-defined bit line widens to 32 nm in its worst corner
// (ΔRbl ≈ −18.7 %), and the Sakurai–Tamaru coupling law over the
// 22 nm nominal spacing produces ΔCbl in the paper's per-option ordering
// (LE3 ≫ EUV > SADP).
package tech

import (
	"fmt"

	"mpsram/internal/units"
)

// MetalLayer describes one interconnect layer of the BEOL stack.
// All lengths are metres, Rho is ohm·metres.
type MetalLayer struct {
	Name string
	// Pitch is the routing pitch of the layer.
	Pitch float64
	// Width is the drawn (nominal) width of the signal wires studied —
	// for metal1 this is the bit-line CD, deliberately non-minimum.
	Width float64
	// Space is the drawn spacing between adjacent wires.
	Space float64
	// Thickness is the metal height.
	Thickness float64
	// TaperDeg is the sidewall angle from vertical in degrees; a
	// damascene trench is narrower at the bottom: wBot = w − 2·t·tanθ.
	TaperDeg float64
	// BarrierBottom is the thickness of the high-resistivity liner at
	// the trench bottom; it reduces the conducting height uniformly and
	// therefore cancels out of resistance *ratios*.
	BarrierBottom float64
	// BarrierSide is the sidewall liner thickness (zero in the N10
	// preset so that ΔR tracks the drawn CD exactly, as in the paper's
	// Table I; kept as a capability for ablation).
	BarrierSide float64
	// Rho is the effective resistivity including scattering effects.
	Rho float64
}

// Dielectric describes the capacitive environment of a layer: relative
// permittivity and the distances to the conducting planes below and above.
type Dielectric struct {
	EpsR   float64
	HBelow float64
	HAbove float64
}

// Eps returns the absolute permittivity in F/m.
func (d Dielectric) Eps() float64 { return units.Eps0 * d.EpsR }

// SADPParams describes the self-aligned double patterning process used on
// metal1. The repeating period holds one mandrel(core)-defined line and one
// gap (spacer-defined) line; the spaces between lines are the spacers.
//
//	|--core line--|spacer|----gap line----|spacer|  (period repeats)
//	  w = Mandrel    t      P − m − 2t       t
//
// The paper's bit lines are the spacer-defined (gap) lines.
type SADPParams struct {
	Period       float64 // 2× the line pitch
	MandrelWidth float64 // printed core CD (subject to CD variation)
	SpacerThk    float64 // deposited spacer thickness (subject to spacer variation)
}

// GapWidth returns the spacer-defined line width P − m − 2t.
func (s SADPParams) GapWidth() float64 {
	return s.Period - s.MandrelWidth - 2*s.SpacerThk
}

// CellGeom describes the 6T SRAM cell footprint relevant to this study.
type CellGeom struct {
	// XPitch is the cell dimension along the (horizontal) metal1 bit
	// line: the bit-line wire length contributed by one cell.
	XPitch float64
	// YPitch is the cell dimension along the metal2 word line.
	YPitch float64
	// TracksPerCell is the number of M1 tracks crossing one cell.
	TracksPerCell int
}

// FEOL carries the front-end electrical constants used by the device
// models, the SRAM netlist builder and the analytical formula.
type FEOL struct {
	Vdd float64 // supply, precharge and word-line-enable level (paper: 0.7 V)
	// Sense amplifier sensitivity: |Vbl − Vblb| threshold (paper: 0.07 V).
	SenseDeltaV float64

	VtN, VtP       float64 // threshold voltages
	AlphaN, AlphaP float64 // alpha-power saturation exponents
	KN, KP         float64 // transconductance, A/(m·V^alpha)
	VdsatK         float64 // Vdsat = VdsatK·(Vgs−Vt)^(alpha/2)
	Lambda         float64 // channel-length modulation, 1/V

	CGatePerM float64 // gate capacitance per metre of width
	CJPerM    float64 // source/drain junction capacitance per metre of width

	WPassGate float64 // 6T pass-gate width
	WPullDown float64 // 6T pull-down width
	WPullUp   float64 // 6T pull-up width
	LGate     float64 // channel length

	// Precharge PMOS width scales with the horizontal array size n so
	// that drive strength follows the bit-line load (paper assumption):
	// WPre(n) = WPre0 · n / WPreRefN.
	WPre0    float64
	WPreRefN int
	// CPre0 is the fixed (n-independent) precharge/column overhead
	// capacitance on the bit line (sense amp input, column mux, wiring).
	CPre0 float64
}

// WPre returns the precharge device width for an array of n word lines.
func (f FEOL) WPre(n int) float64 {
	return f.WPre0 * float64(n) / float64(f.WPreRefN)
}

// CPre returns the total n-dependent precharge-side capacitance on one bit
// line: fixed overhead plus the scaled precharge device junction.
func (f FEOL) CPre(n int) float64 {
	return f.CPre0 + f.WPre(n)*f.CJPerM
}

// Variations carries the paper's process-variation assumptions (Section
// II-A). All values are 3σ amplitudes in metres.
type Variations struct {
	CD3Sigma     float64 // litho CD variation (LE3 masks, SADP core, EUV): 3 nm
	Spacer3Sigma float64 // SADP spacer thickness variation: 1.5 nm
	OL3Sigma     float64 // LE3 overlay error: 3–8 nm (study sweep)
	// Thk3Sigma enables the metal-thickness (etch/CMP) extension: a
	// global Gaussian thickness variation applied to every option. The
	// paper's tool accepts it as an input but its experiments leave it
	// out, so the preset keeps it at zero.
	Thk3Sigma float64
}

// Process is the complete technology description.
type Process struct {
	Name string
	M1   MetalLayer
	Diel Dielectric
	SADP SADPParams
	Cell CellGeom
	FEOL FEOL
	Var  Variations
}

// N10 returns the calibrated imec-N10-flavoured technology preset used
// throughout the reproduction. See DESIGN.md §4 for the calibration.
func N10() Process {
	nm := units.Nano
	return Process{
		Name: "N10",
		M1: MetalLayer{
			Name:          "metal1",
			Pitch:         48 * nm,
			Width:         26 * nm,
			Space:         22 * nm,
			Thickness:     36 * nm,
			TaperDeg:      0,
			BarrierBottom: 2 * nm,
			BarrierSide:   0,
			Rho:           5.0e-8,
		},
		Diel: Dielectric{EpsR: 2.7, HBelow: 60 * nm, HAbove: 60 * nm},
		SADP: SADPParams{
			Period:       96 * nm,
			MandrelWidth: 26 * nm,
			SpacerThk:    22 * nm,
		},
		Cell: CellGeom{
			XPitch:        110 * nm,
			YPitch:        240 * nm,
			TracksPerCell: 5,
		},
		FEOL: FEOL{
			Vdd:         0.7,
			SenseDeltaV: 0.07,
			VtN:         0.25,
			VtP:         0.25,
			AlphaN:      1.35,
			AlphaP:      1.35,
			KN:          5.0e3,
			KP:          2.4e3,
			VdsatK:      0.55,
			Lambda:      0.08,
			CGatePerM:   1.0e-9,
			CJPerM:      0.8e-9,
			WPassGate:   20 * nm,
			WPullDown:   30 * nm,
			WPullUp:     15 * nm,
			LGate:       18 * nm,
			WPre0:       120 * nm,
			WPreRefN:    16,
			CPre0:       0.40e-15,
		},
		Var: Variations{
			CD3Sigma:     3 * nm,
			Spacer3Sigma: 1.5 * nm,
			OL3Sigma:     8 * nm,
		},
	}
}

// Validate checks internal consistency of the process description and
// returns a descriptive error for the first violated constraint.
func (p Process) Validate() error {
	m := p.M1
	if m.Width <= 0 || m.Space <= 0 || m.Thickness <= 0 {
		return fmt.Errorf("tech %s: %s width/space/thickness must be positive", p.Name, m.Name)
	}
	if !units.ApproxEqual(m.Width+m.Space, m.Pitch, 1e-9, 0) {
		return fmt.Errorf("tech %s: %s width (%v) + space (%v) != pitch (%v)",
			p.Name, m.Name, m.Width, m.Space, m.Pitch)
	}
	if m.Rho <= 0 {
		return fmt.Errorf("tech %s: resistivity must be positive", p.Name)
	}
	if p.Diel.EpsR < 1 {
		return fmt.Errorf("tech %s: relative permittivity %v < 1", p.Name, p.Diel.EpsR)
	}
	if p.Diel.HBelow <= 0 || p.Diel.HAbove <= 0 {
		return fmt.Errorf("tech %s: plane distances must be positive", p.Name)
	}
	if g := p.SADP.GapWidth(); g <= 0 {
		return fmt.Errorf("tech %s: SADP gap width %v must be positive", p.Name, g)
	}
	if !units.ApproxEqual(p.SADP.Period, 2*p.M1.Pitch, 1e-9, 0) {
		return fmt.Errorf("tech %s: SADP period (%v) must be 2× M1 pitch (%v)",
			p.Name, p.SADP.Period, p.M1.Pitch)
	}
	if !units.ApproxEqual(p.SADP.GapWidth(), p.M1.Width, 1e-9, 0) {
		return fmt.Errorf("tech %s: SADP nominal gap width (%v) must equal M1 signal width (%v)",
			p.Name, p.SADP.GapWidth(), p.M1.Width)
	}
	if p.Cell.XPitch <= 0 || p.Cell.YPitch <= 0 {
		return fmt.Errorf("tech %s: cell pitches must be positive", p.Name)
	}
	f := p.FEOL
	if f.Vdd <= 0 || f.SenseDeltaV <= 0 || f.SenseDeltaV >= f.Vdd {
		return fmt.Errorf("tech %s: need 0 < sense ΔV (%v) < Vdd (%v)", p.Name, f.SenseDeltaV, f.Vdd)
	}
	if f.VtN <= 0 || f.VtN >= f.Vdd {
		return fmt.Errorf("tech %s: NMOS Vt (%v) outside (0, Vdd)", p.Name, f.VtN)
	}
	if f.KN <= 0 || f.KP <= 0 || f.AlphaN < 1 || f.AlphaP < 1 {
		return fmt.Errorf("tech %s: implausible transistor parameters", p.Name)
	}
	if f.WPre0 <= 0 || f.WPreRefN <= 0 {
		return fmt.Errorf("tech %s: precharge scaling parameters must be positive", p.Name)
	}
	v := p.Var
	if v.CD3Sigma < 0 || v.Spacer3Sigma < 0 || v.OL3Sigma < 0 {
		return fmt.Errorf("tech %s: variation amplitudes must be non-negative", p.Name)
	}
	return nil
}

// WithOL returns a copy of the process with the LE3 overlay 3σ budget
// replaced, used by the Table IV overlay sweep.
func (p Process) WithOL(ol3sigma float64) Process {
	p.Var.OL3Sigma = ol3sigma
	return p
}
