package tech

import (
	"strings"
	"testing"

	"mpsram/internal/units"
)

// TestDerivedPresetsValidate pins every registry preset against
// Process.Validate — the derivation rules must keep the cross-constraints
// (width+space = pitch, SADP period = 2·pitch, gap = signal width) intact.
func TestDerivedPresetsValidate(t *testing.T) {
	for _, p := range Default().Processes() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

// TestDerivedPresetPins pins the headline parameters of the derived
// presets so a silent change to the derivation rules fails loudly.
func TestDerivedPresetPins(t *testing.T) {
	nm := units.Nano
	cases := []struct {
		proc            Process
		pitch, cd3, ol3 float64
		rho             float64
	}{
		{N10(), 48 * nm, 3 * nm, 8 * nm, 5.0e-8},
		{N7(), 36 * nm, 2.55 * nm, 6.8 * nm, 6.0e-8},
		{N5(), 28 * nm, 2.25 * nm, 6 * nm, 7.25e-8},
	}
	for _, c := range cases {
		p := c.proc
		if !units.ApproxEqual(p.M1.Pitch, c.pitch, 1e-12, 0) {
			t.Errorf("%s: M1 pitch %v, want %v", p.Name, p.M1.Pitch, c.pitch)
		}
		if !units.ApproxEqual(p.Var.CD3Sigma, c.cd3, 1e-12, 0) {
			t.Errorf("%s: CD 3σ %v, want %v", p.Name, p.Var.CD3Sigma, c.cd3)
		}
		if !units.ApproxEqual(p.Var.OL3Sigma, c.ol3, 1e-12, 0) {
			t.Errorf("%s: OL 3σ %v, want %v", p.Name, p.Var.OL3Sigma, c.ol3)
		}
		if !units.ApproxEqual(p.M1.Rho, c.rho, 1e-12, 0) {
			t.Errorf("%s: rho %v, want %v", p.Name, p.M1.Rho, c.rho)
		}
	}
}

// TestDeriveScalesGeometryUniformly checks the linear-shrink contract on
// a sample of coupled fields.
func TestDeriveScalesGeometryUniformly(t *testing.T) {
	base := N10()
	const g = 0.8
	p, err := Derive(base, DeriveSpec{Name: "X8", Geom: g})
	if err != nil {
		t.Fatal(err)
	}
	pairs := []struct {
		name      string
		got, want float64
	}{
		{"M1.Width", p.M1.Width, base.M1.Width * g},
		{"M1.Thickness", p.M1.Thickness, base.M1.Thickness * g},
		{"M1.BarrierBottom", p.M1.BarrierBottom, base.M1.BarrierBottom * g},
		{"Diel.HBelow", p.Diel.HBelow, base.Diel.HBelow * g},
		{"SADP.SpacerThk", p.SADP.SpacerThk, base.SADP.SpacerThk * g},
		{"Cell.XPitch", p.Cell.XPitch, base.Cell.XPitch * g},
		{"FEOL.WPassGate", p.FEOL.WPassGate, base.FEOL.WPassGate * g},
		{"FEOL.WPre0", p.FEOL.WPre0, base.FEOL.WPre0 * g},
	}
	for _, pr := range pairs {
		if !units.ApproxEqual(pr.got, pr.want, 1e-12, 0) {
			t.Errorf("%s: %v, want %v", pr.name, pr.got, pr.want)
		}
	}
	// Var defaults to held (scale 1).
	if p.Var.CD3Sigma != base.Var.CD3Sigma {
		t.Errorf("CD 3σ scaled without Var spec: %v vs %v", p.Var.CD3Sigma, base.Var.CD3Sigma)
	}
	// Electrical constants are held.
	if p.FEOL.Vdd != base.FEOL.Vdd || p.Diel.EpsR != base.Diel.EpsR {
		t.Error("derive must not touch voltages or permittivity")
	}
}

// TestDeriveRejectsBadSpecs exercises the error paths.
func TestDeriveRejectsBadSpecs(t *testing.T) {
	base := N10()
	for _, spec := range []DeriveSpec{
		{Name: "", Geom: 0.5},
		{Name: "bad", Geom: 0},
		{Name: "bad", Geom: -1},
		{Name: "bad", Geom: 1.5},
		{Name: "bad", Geom: 0.5, Var: -2},
		{Name: "bad", Geom: 0.5, Rho: 0.5},
	} {
		if _, err := Derive(base, spec); err == nil {
			t.Errorf("spec %+v: want error", spec)
		}
	}
}

// TestRegistryLookup covers hit, case-insensitive hit and the
// miss-with-valid-names contract the CLI relies on.
func TestRegistryLookup(t *testing.T) {
	r := Default()
	for _, name := range []string{"N10", "N7", "N5", "n7"} {
		p, err := r.Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if !strings.EqualFold(p.Name, name) {
			t.Fatalf("Lookup(%q) returned %s", name, p.Name)
		}
	}
	_, err := r.Lookup("N3")
	if err == nil {
		t.Fatal("Lookup(N3): want error")
	}
	for _, want := range []string{"N10", "N7", "N5"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not list %s", err, want)
		}
	}
}

// TestRegistryOrderAndDuplicates pins registration order and the
// duplicate/invalid rejection.
func TestRegistryOrderAndDuplicates(t *testing.T) {
	r := Default()
	names := r.Names()
	if len(names) != 3 || names[0] != "N10" || names[1] != "N7" || names[2] != "N5" {
		t.Fatalf("default registry names %v", names)
	}
	if _, err := NewRegistry(N10(), N10()); err == nil {
		t.Fatal("duplicate preset must be rejected")
	}
	bad := N10()
	bad.M1.Width = -1
	if _, err := NewRegistry(bad); err == nil {
		t.Fatal("invalid preset must be rejected")
	}
	if err := (&Registry{procs: map[string]Process{}}).Add(Process{}); err == nil {
		t.Fatal("empty name must be rejected")
	}
}

// TestDerivedNodesShrinkMonotonically sanity-checks the node ordering the
// cross-node comparison relies on: tighter nodes have smaller pitch and
// higher resistivity, and the variability budgets never grow.
func TestDerivedNodesShrinkMonotonically(t *testing.T) {
	procs := Default().Processes()
	for i := 1; i < len(procs); i++ {
		a, b := procs[i-1], procs[i]
		if b.M1.Pitch >= a.M1.Pitch {
			t.Errorf("%s pitch %v not below %s pitch %v", b.Name, b.M1.Pitch, a.Name, a.M1.Pitch)
		}
		if b.M1.Rho <= a.M1.Rho {
			t.Errorf("%s rho %v not above %s rho %v", b.Name, b.M1.Rho, a.Name, a.M1.Rho)
		}
		if b.Var.CD3Sigma > a.Var.CD3Sigma || b.Var.OL3Sigma > a.Var.OL3Sigma {
			t.Errorf("%s variation budgets grew over %s", b.Name, a.Name)
		}
	}
}
