package device

import (
	"math"
	"testing"
	"testing/quick"

	"mpsram/internal/tech"
)

func cards() (*MOS, *MOS) {
	f := tech.N10().FEOL
	return NewNMOS(f), NewPMOS(f)
}

func TestValidate(t *testing.T) {
	n, p := cards()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *n
	bad.Alpha = 0.5
	if err := bad.Validate(); err == nil {
		t.Fatal("alpha<1 must be rejected")
	}
	if NMOS.String() != "NMOS" || PMOS.String() != "PMOS" {
		t.Fatal("kind strings")
	}
}

func TestCutoff(t *testing.T) {
	n, _ := cards()
	id, gm, gds := n.Eval(20e-9, 0, 0.7)
	// Softplus leaves a sub-threshold tail; at vgs=0 with Vt=0.25 it must
	// be orders of magnitude below on-current.
	on, _, _ := n.Eval(20e-9, 0.7, 0.7)
	if id > on/1e2 {
		t.Fatalf("off current %g not ≪ on current %g", id, on)
	}
	if gm < 0 || gds < 0 {
		t.Fatalf("negative conductances in cutoff: %g %g", gm, gds)
	}
}

func TestSaturationCurrent(t *testing.T) {
	n, _ := cards()
	w := 20e-9
	// Idsat at full drive is in the tens of microamps for a 20 nm device
	// (N10-flavoured calibration).
	id := n.Idsat(w, 0.7)
	if id < 10e-6 || id > 100e-6 {
		t.Fatalf("Idsat = %g A outside the calibrated band", id)
	}
	// Eval in deep saturation matches Idsat up to channel-length
	// modulation.
	idE, _, _ := n.Eval(w, 0.7, 0.7)
	clm := 1 + n.Lambda*0.7
	if math.Abs(idE-id*clm)/idE > 1e-9 {
		t.Fatalf("Eval sat %g vs Idsat·CLM %g", idE, id*clm)
	}
}

func TestLinearRegionContinuity(t *testing.T) {
	n, _ := cards()
	w := 20e-9
	vgs := 0.7
	vdsat := n.Vdsat(vgs)
	// Current and both derivatives must be continuous across Vdsat.
	eps := 1e-7
	idL, gmL, gdsL := n.Eval(w, vgs, vdsat-eps)
	idR, gmR, gdsR := n.Eval(w, vgs, vdsat+eps)
	if math.Abs(idL-idR)/idR > 1e-4 {
		t.Fatalf("Id discontinuous at Vdsat: %g vs %g", idL, idR)
	}
	if math.Abs(gmL-gmR)/gmR > 1e-3 {
		t.Fatalf("gm discontinuous at Vdsat: %g vs %g", gmL, gmR)
	}
	// gds has a kink at Vdsat by construction (alpha-power); it must at
	// least stay positive and bounded.
	if gdsL <= 0 || gdsR <= 0 || gdsL < gdsR {
		t.Fatalf("gds behaviour at Vdsat: %g vs %g", gdsL, gdsR)
	}
}

func TestDerivativesMatchFiniteDifference(t *testing.T) {
	n, p := cards()
	w := 25e-9
	h := 1e-6
	for _, m := range []*MOS{n, p} {
		for _, vgs := range []float64{-0.2, 0.1, 0.3, 0.5, 0.7} {
			for _, vds := range []float64{-0.7, -0.3, -0.05, 0, 0.05, 0.3, 0.7} {
				id, gm, gds := m.Eval(w, vgs, vds)
				idg, _, _ := m.Eval(w, vgs+h, vds)
				idd, _, _ := m.Eval(w, vgs, vds+h)
				gmFD := (idg - id) / h
				gdsFD := (idd - id) / h
				scale := math.Max(math.Abs(gm), 1e-9)
				if math.Abs(gm-gmFD) > 2e-3*scale+1e-9 {
					t.Fatalf("%s gm mismatch at vgs=%g vds=%g: %g vs FD %g",
						m.Name, vgs, vds, gm, gmFD)
				}
				scale = math.Max(math.Abs(gds), 1e-9)
				if math.Abs(gds-gdsFD) > 5e-3*scale+1e-9 {
					t.Fatalf("%s gds mismatch at vgs=%g vds=%g: %g vs FD %g",
						m.Name, vgs, vds, gds, gdsFD)
				}
			}
		}
	}
}

func TestSourceDrainSwapAntisymmetry(t *testing.T) {
	n, _ := cards()
	w := 20e-9
	// A MOSFET is symmetric: swapping source and drain negates the
	// current. Terminal voltages transform as vgs→vgd=vgs−vds, vds→−vds.
	f := func(vgsRaw, vdsRaw float64) bool {
		vgs := math.Mod(math.Abs(vgsRaw), 0.9)
		vds := math.Mod(vdsRaw, 0.8)
		id1, _, _ := n.Eval(w, vgs, vds)
		id2, _, _ := n.Eval(w, vgs-vds, -vds)
		return math.Abs(id1+id2) <= 1e-9*math.Max(1, math.Abs(id1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPMOSMirrorsNMOS(t *testing.T) {
	f := tech.N10().FEOL
	n := NewNMOS(f)
	p := NewPMOS(f)
	p.K = n.K // equalize strength for the mirror check
	w := 20e-9
	idn, gmn, gdsn := n.Eval(w, 0.6, 0.4)
	idp, gmp, gdsp := p.Eval(w, -0.6, -0.4)
	if math.Abs(idn+idp) > 1e-12 {
		t.Fatalf("PMOS mirror current: %g vs %g", idn, idp)
	}
	if math.Abs(gmn-gmp) > 1e-12 || math.Abs(gdsn-gdsp) > 1e-12 {
		t.Fatalf("PMOS mirror conductances: %g/%g vs %g/%g", gmn, gdsn, gmp, gdsp)
	}
}

func TestMonotoneInVgs(t *testing.T) {
	n, _ := cards()
	w := 20e-9
	prev := -1.0
	for vgs := 0.0; vgs <= 0.9; vgs += 0.01 {
		id, _, _ := n.Eval(w, vgs, 0.7)
		if id < prev {
			t.Fatalf("Id not monotone in vgs at %g", vgs)
		}
		prev = id
	}
}

func TestMonotoneInVdsProperty(t *testing.T) {
	n, _ := cards()
	w := 20e-9
	f := func(a, b float64) bool {
		v1 := math.Mod(math.Abs(a), 0.7)
		v2 := math.Mod(math.Abs(b), 0.7)
		if v1 > v2 {
			v1, v2 = v2, v1
		}
		id1, _, _ := n.Eval(w, 0.7, v1)
		id2, _, _ := n.Eval(w, 0.7, v2)
		return id2 >= id1-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRonAndVdsat(t *testing.T) {
	n, _ := cards()
	w := 30e-9
	ron := n.Ron(w, 0.7)
	if ron < 500 || ron > 50e3 {
		t.Fatalf("Ron = %g Ω outside plausible band", ron)
	}
	// Ron must equal the reciprocal small-signal gds at vds→0.
	_, _, gds0 := n.Eval(w, 0.7, 1e-9)
	if math.Abs(ron-1/gds0)/ron > 0.01 {
		t.Fatalf("Ron %g vs 1/gds(0) %g", ron, 1/gds0)
	}
	if n.Vdsat(0.7) <= 0 || n.Vdsat(0.7) > 0.7 {
		t.Fatalf("Vdsat = %g", n.Vdsat(0.7))
	}
	// Deep cutoff corner cases.
	if !math.IsInf(n.Ron(w, -10), 1) {
		t.Fatal("Ron in deep cutoff must be infinite")
	}
	if n.Vdsat(-10) != 0 || n.Idsat(w, -10) != 0 {
		t.Fatal("deep cutoff must be fully off")
	}
}

func TestSoftplusExtremes(t *testing.T) {
	v, d := softplus(100, 0.035)
	if v != 100 || d != 1 {
		t.Fatalf("softplus overflow branch: %g %g", v, d)
	}
	v, d = softplus(-100, 0.035)
	if v != 0 || d != 0 {
		t.Fatalf("softplus underflow branch: %g %g", v, d)
	}
	v, _ = softplus(0, 0.035)
	want := 0.035 * math.Ln2
	if math.Abs(v-want) > 1e-12 {
		t.Fatalf("softplus(0) = %g, want %g", v, want)
	}
}
