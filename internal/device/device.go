// Package device implements the MOSFET compact model used in place of the
// paper's proprietary N10 transistor models: the Sakurai–Newton
// alpha-power law with channel-length modulation and a softplus-smoothed
// overdrive that gives a continuous, differentiable sub-threshold tail —
// essential for Newton–Raphson robustness in the SPICE engine.
//
// The model is deliberately resistive: terminal charge is handled by
// explicit linear capacitors added by the netlist builders (gate,
// junction), which keeps the device evaluation trivially differentiable
// and the simulator simple while preserving everything the read-time
// study needs (saturation current, linear-region resistance, Vdsat).
package device

import (
	"fmt"
	"math"

	"mpsram/internal/tech"
)

// Kind discriminates NMOS from PMOS.
type Kind int

const (
	NMOS Kind = iota
	PMOS
)

func (k Kind) String() string {
	if k == PMOS {
		return "PMOS"
	}
	return "NMOS"
}

// MOS is an alpha-power-law transistor card. Width-dependent quantities
// scale linearly with the instance width; K is A/(m·V^Alpha).
type MOS struct {
	Name   string
	Kind   Kind
	Vt     float64 // threshold voltage, V (positive for both kinds)
	Alpha  float64 // velocity-saturation exponent, 1..2
	K      float64 // transconductance per metre of width, A/(m·V^Alpha)
	VdsatK float64 // Vdsat = VdsatK·Vov^(Alpha/2)
	Lambda float64 // channel-length modulation, 1/V
	SubS   float64 // softplus smoothing scale, V (sub-threshold sharpness)

	CGatePerM float64 // total gate capacitance per metre of width
	CJPerM    float64 // source/drain junction capacitance per metre of width
}

// NewNMOS builds the N10 NMOS card from the technology's FEOL constants.
func NewNMOS(f tech.FEOL) *MOS {
	return &MOS{
		Name: "n10_nmos", Kind: NMOS,
		Vt: f.VtN, Alpha: f.AlphaN, K: f.KN, VdsatK: f.VdsatK,
		Lambda: f.Lambda, SubS: 0.035,
		CGatePerM: f.CGatePerM, CJPerM: f.CJPerM,
	}
}

// NewPMOS builds the N10 PMOS card from the technology's FEOL constants.
func NewPMOS(f tech.FEOL) *MOS {
	return &MOS{
		Name: "n10_pmos", Kind: PMOS,
		Vt: f.VtP, Alpha: f.AlphaP, K: f.KP, VdsatK: f.VdsatK,
		Lambda: f.Lambda, SubS: 0.035,
		CGatePerM: f.CGatePerM, CJPerM: f.CJPerM,
	}
}

// Validate rejects non-physical cards.
func (m *MOS) Validate() error {
	if m.Vt <= 0 || m.Alpha < 1 || m.Alpha > 2.5 || m.K <= 0 ||
		m.VdsatK <= 0 || m.Lambda < 0 || m.SubS <= 0 {
		return fmt.Errorf("device %s: non-physical parameters %+v", m.Name, *m)
	}
	return nil
}

// softplus returns s·ln(1+exp(x/s)) and its derivative (the logistic
// function), computed overflow-safely.
func softplus(x, s float64) (val, d float64) {
	u := x / s
	switch {
	case u > 40:
		return x, 1
	case u < -40:
		return 0, 0
	default:
		e := math.Exp(u)
		return s * math.Log1p(e), e / (1 + e)
	}
}

// evalForward evaluates the intrinsic NMOS equations for vds ≥ 0,
// returning the drain current and its partials w.r.t. vgs and vds.
func (m *MOS) evalForward(vgs, vds float64) (id, gm, gds float64) {
	vov, dvov := softplus(vgs-m.Vt, m.SubS)
	if vov <= 0 {
		return 0, 0, 0
	}
	idsat := m.K * math.Pow(vov, m.Alpha) // per metre of width; W applied by caller
	vdsat := m.VdsatK * math.Pow(vov, m.Alpha/2)
	clm := 1 + m.Lambda*vds
	if vds >= vdsat {
		id = idsat * clm
		gm = m.Alpha / vov * idsat * clm * dvov
		gds = idsat * m.Lambda
		return id, gm, gds
	}
	u := vds / vdsat
	shape := (2 - u) * u
	id = idsat * shape * clm
	// d(id)/d(vov) — see derivation in the package tests: the vdsat(vov)
	// dependence collapses the linear-region derivative to α·u/vov·idsat.
	didvov := idsat * clm * m.Alpha * u / vov
	gm = didvov * dvov
	gds = idsat*clm*(2-2*u)/vdsat + idsat*shape*m.Lambda
	return id, gm, gds
}

// Eval returns the drain-to-source current Id (positive into the drain for
// NMOS in forward operation) and the partial derivatives gm = ∂Id/∂Vgs and
// gds = ∂Id/∂Vds for arbitrary terminal voltages, handling source/drain
// swap and PMOS polarity. w is the instance width in metres.
func (m *MOS) Eval(w, vgs, vds float64) (id, gm, gds float64) {
	if m.Kind == PMOS {
		// PMOS: mirror both control voltages; current reverses.
		idn, gmn, gdsn := m.evalNSwap(-vgs, -vds)
		return -w * idn, w * gmn, w * gdsn
	}
	idn, gmn, gdsn := m.evalNSwap(vgs, vds)
	return w * idn, w * gmn, w * gdsn
}

// evalNSwap handles vds < 0 by exchanging source and drain:
// Id(vgs,vds) = −Id(vgd, −vds) with the chain rule applied to the partials.
func (m *MOS) evalNSwap(vgs, vds float64) (id, gm, gds float64) {
	if vds >= 0 {
		return m.evalForward(vgs, vds)
	}
	idf, gmf, gdsf := m.evalForward(vgs-vds, -vds)
	// g(vgs,vds) = −f(vgs−vds, −vds)
	// ∂g/∂vgs = −f₁ ; ∂g/∂vds = f₁ + f₂
	return -idf, -gmf, gmf + gdsf
}

// Idsat returns the saturation current at the given gate overdrive for an
// instance of width w — a convenience for calibration and the analytical
// RFE linearization.
func (m *MOS) Idsat(w, vgs float64) float64 {
	vov, _ := softplus(vgs-m.Vt, m.SubS)
	if vov <= 0 {
		return 0
	}
	return w * m.K * math.Pow(vov, m.Alpha)
}

// Vdsat returns the saturation voltage at the given gate drive.
func (m *MOS) Vdsat(vgs float64) float64 {
	vov, _ := softplus(vgs-m.Vt, m.SubS)
	if vov <= 0 {
		return 0
	}
	return m.VdsatK * math.Pow(vov, m.Alpha/2)
}

// Ron returns the small-signal linear-region resistance at vds→0 for an
// instance of width w at gate voltage vgs: 1/(∂Id/∂Vds at vds=0) =
// Vdsat/(2·Idsat). Used by the analytical model's RFE.
func (m *MOS) Ron(w, vgs float64) float64 {
	idsat := m.Idsat(w, vgs)
	if idsat <= 0 {
		return math.Inf(1)
	}
	return m.Vdsat(vgs) / (2 * idsat)
}
