package mc

import (
	"context"
	"math"
	"testing"

	"mpsram/internal/extract"
	"mpsram/internal/litho"
	"mpsram/internal/sram"
	"mpsram/internal/tech"
)

// TestAdaptiveSigmaMatchesFixed is the distribution-level half of the
// adaptive accuracy gate (the td-level DOE gate lives in internal/sram):
// running the SPICE-in-the-loop Monte-Carlo with the adaptive integrator
// must reproduce the fixed-step σ and mean of the tdp distribution within
// tight tolerances for every patterning option. The per-transient bias is
// systematic and mostly cancels in the tdp ratio (both the trial and the
// nominal denominators use the same integrator), so the distribution
// tolerance is ≈ 1 % on σ — measured drift is ≤ 0.34 %.
func TestAdaptiveSigmaMatchesFixed(t *testing.T) {
	if testing.Short() {
		t.Skip("SPICE-in-the-loop σ gate (≈ 300 transients); run without -short")
	}
	p := tech.N10()
	cm := extract.SakuraiTamaru{}
	sizes := []int{16, 64}
	cfg := Config{Samples: 24, Seed: 2015}
	for _, o := range litho.Options {
		fixed, err := SpiceTdpAcrossSizes(context.Background(), p, o, cm, sizes,
			sram.BuildOptions{}, sram.SimOptions{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		adapt, err := SpiceTdpAcrossSizes(context.Background(), p, o, cm, sizes,
			sram.BuildOptions{}, sram.SimOptions{Adaptive: true}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for j, n := range sizes {
			sf, sa := fixed.Summary(j), adapt.Summary(j)
			if sf.N != sa.N {
				t.Fatalf("%v n=%d: sample counts diverged (%d vs %d)", o, n, sf.N, sa.N)
			}
			if rel := math.Abs(sa.Std/sf.Std - 1); rel > 0.01 {
				t.Errorf("%v n=%d: adaptive σ off by %.3f%% (%.4f vs %.4f)",
					o, n, rel*100, sa.Std, sf.Std)
			}
			if d := math.Abs(sa.Mean - sf.Mean); d > 0.02 {
				t.Errorf("%v n=%d: adaptive mean shifted %.4f pp", o, n, d)
			}
		}
	}
}
