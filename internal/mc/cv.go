// The paired (control-variate) Monte-Carlo path: every trial evaluates an
// expensive primary observable and a cheap correlated control on the same
// PRNG draw, and the engine aggregates the pair through streaming
// stats.ControlVariate accumulators — per fixed-size block, merged in
// block order, so the paired moments (and everything derived from them:
// β̂, ρ̂, the corrected mean/σ, the measured variance-reduction factor)
// are bit-identical for any worker count, exactly like the plain path.
package mc

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"mpsram/internal/stats"
)

// PairedStateVectorFunc evaluates one paired Monte-Carlo trial: it writes
// the primary observable (e.g. SPICE-measured tdp) into y[j] and the
// control observable (e.g. the closed-form tdp formula on the same draw)
// into x[j] for each of the nobs observables. Returning false rejects the
// trial. The slices are reused across trials by the same worker and must
// not be retained.
type PairedStateVectorFunc func(state any, rng *rand.Rand, y, x []float64) bool

// CVVectorResult aggregates a paired multi-observable run. The embedded
// VectorResult views the primary observable (Stats, Quantiles, Summary —
// byte-compatible with a plain run over the same primary stream), while
// CV carries the paired moments the control-variate estimators need.
type CVVectorResult struct {
	VectorResult
	// CV holds one paired accumulator per observable, merged in the same
	// deterministic block order as Stats.
	CV []stats.ControlVariate
}

// CVSummary reports the control-variate view of one observable.
type CVSummary struct {
	// Plain is the uncorrected summary of the primary observable over the
	// paired stream (streaming moments + P² order statistics).
	Plain stats.Summary
	// Mean and Std are the corrected estimates anchored on the control's
	// reference moments (muX, sigmaX).
	Mean, Std float64
	// Beta and Rho are the regression coefficient and correlation
	// estimated from the paired stream.
	Beta, Rho float64
	// VarReduction is the measured factor 1/(1−ρ̂²); EffectiveN is the
	// plain-estimator sample count the paired stream is worth.
	VarReduction float64
	EffectiveN   float64
}

// CVSummary derives the control-variate summary of observable i given the
// control's reference moments (muX, sigmaX) from a high-precision cheap
// stream.
func (r *CVVectorResult) CVSummary(i int, muX, sigmaX float64) CVSummary {
	c := &r.CV[i]
	return CVSummary{
		Plain:        r.Summary(i),
		Mean:         c.MeanCorrected(muX),
		Std:          c.StdCorrected(sigmaX),
		Beta:         c.Beta(),
		Rho:          c.Corr(),
		VarReduction: c.VarianceReduction(),
		EffectiveN:   c.EffectiveN(),
	}
}

// RunVectorPaired executes cfg.Samples paired trials of f, each producing
// nobs (primary, control) observable pairs, and streams them into
// per-observable ControlVariate accumulators plus the plain per-primary
// statistics of RunVectorState. Determinism matches the plain engine:
// trial i reseeds from (cfg.Seed, i) and fixed-size blocks merge in block
// order, so results are bit-identical across worker counts. The paired
// path is streaming-only: cfg.Collect is rejected.
func RunVectorPaired(ctx context.Context, cfg Config, nobs int, f PairedStateVectorFunc) (*CVVectorResult, error) {
	if cfg.Samples < 1 {
		return nil, fmt.Errorf("mc: sample count %d < 1", cfg.Samples)
	}
	if nobs < 1 {
		return nil, fmt.Errorf("mc: observable count %d < 1", nobs)
	}
	if cfg.Collect {
		return nil, fmt.Errorf("mc: the paired path is streaming-only (Collect unsupported)")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	n := cfg.Samples
	nblocks := (n + blockSize - 1) / blockSize
	type block struct {
		cv       []stats.ControlVariate
		quant    []QuantileSketch
		rejected int
	}
	blocks := make([]block, nblocks)
	nw := cfg.workers()
	if nw > nblocks {
		nw = nblocks
	}
	var (
		next atomic.Int64
		done atomic.Int64
		wg   sync.WaitGroup

		progressMu sync.Mutex
		progressHW int
	)
	report := func(d int) {
		progressMu.Lock()
		if d > progressHW {
			progressHW = d
			cfg.Progress(d, n)
		}
		progressMu.Unlock()
	}
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var rng *rand.Rand
			if cfg.FastReseed {
				rng = rand.New(new(pcgSource))
			} else {
				rng = rand.New(rand.NewSource(0))
			}
			y := make([]float64, nobs)
			x := make([]float64, nobs)
			var state any
			if cfg.WorkerState != nil {
				state = cfg.WorkerState()
			}
			for {
				if ctx.Err() != nil {
					return
				}
				b := int(next.Add(1)) - 1
				if b >= nblocks {
					return
				}
				lo := b * blockSize
				hi := lo + blockSize
				if hi > n {
					hi = n
				}
				cv := make([]stats.ControlVariate, nobs)
				quant := make([]QuantileSketch, nobs)
				for j := range quant {
					quant[j] = newQuantileSketch()
				}
				rej := 0
				for i := lo; i < hi; i++ {
					if ctx.Err() != nil {
						return
					}
					rng.Seed(trialSeed(cfg.Seed, i))
					if !f(state, rng, y, x) {
						rej++
						continue
					}
					for j := range cv {
						cv[j].Add(y[j], x[j])
						quant[j].P05.Add(y[j])
						quant[j].Median.Add(y[j])
						quant[j].P95.Add(y[j])
					}
				}
				blocks[b] = block{cv: cv, quant: quant, rejected: rej}
				d := done.Add(int64(hi - lo))
				if cfg.Progress != nil {
					report(int(d))
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("mc: run canceled after %d of %d trials: %w", done.Load(), n, err)
	}
	res := &CVVectorResult{
		VectorResult: VectorResult{
			Stats:     make([]stats.Welford, nobs),
			Quantiles: make([]QuantileSketch, nobs),
		},
		CV: make([]stats.ControlVariate, nobs),
	}
	for j := range res.Quantiles {
		res.Quantiles[j] = newQuantileSketch()
	}
	for _, b := range blocks {
		for j := range res.CV {
			res.CV[j].Merge(b.cv[j])
			res.Quantiles[j].merge(b.quant[j])
		}
		res.Rejected += b.rejected
	}
	for j := range res.Stats {
		res.Stats[j] = res.CV[j].Primary()
	}
	if res.Stats[0].N() == 0 {
		return nil, fmt.Errorf("mc: every one of %d trials was rejected", n)
	}
	return res, nil
}
