// The paired (control-variate) Monte-Carlo path: every trial evaluates an
// expensive primary observable and a cheap correlated control on the same
// PRNG draw, and the engine aggregates the pair through streaming
// stats.ControlVariate accumulators — per fixed-size block, merged in
// block order, so the paired moments (and everything derived from them:
// β̂, ρ̂, the corrected mean/σ, the measured variance-reduction factor)
// are bit-identical for any worker count, exactly like the plain path.
package mc

import (
	"context"
	"fmt"
	"math/rand"

	"mpsram/internal/stats"
)

// PairedStateVectorFunc evaluates one paired Monte-Carlo trial: it writes
// the primary observable (e.g. SPICE-measured tdp) into y[j] and the
// control observable (e.g. the closed-form tdp formula on the same draw)
// into x[j] for each of the nobs observables. Returning false rejects the
// trial. The slices are reused across trials by the same worker and must
// not be retained.
type PairedStateVectorFunc func(state any, rng *rand.Rand, y, x []float64) bool

// CVVectorResult aggregates a paired multi-observable run. The embedded
// VectorResult views the primary observable (Stats, Quantiles, Summary —
// byte-compatible with a plain run over the same primary stream), while
// CV carries the paired moments the control-variate estimators need.
type CVVectorResult struct {
	VectorResult
	// CV holds one paired accumulator per observable, merged in the same
	// deterministic block order as Stats.
	CV []stats.ControlVariate
}

// CVSummary reports the control-variate view of one observable.
type CVSummary struct {
	// Plain is the uncorrected summary of the primary observable over the
	// paired stream (streaming moments + P² order statistics).
	Plain stats.Summary
	// Mean and Std are the corrected estimates anchored on the control's
	// reference moments (muX, sigmaX).
	Mean, Std float64
	// Beta and Rho are the regression coefficient and correlation
	// estimated from the paired stream.
	Beta, Rho float64
	// VarReduction is the measured factor 1/(1−ρ̂²); EffectiveN is the
	// plain-estimator sample count the paired stream is worth.
	VarReduction float64
	EffectiveN   float64
}

// CVSummary derives the control-variate summary of observable i given the
// control's reference moments (muX, sigmaX) from a high-precision cheap
// stream.
func (r *CVVectorResult) CVSummary(i int, muX, sigmaX float64) CVSummary {
	c := &r.CV[i]
	return CVSummary{
		Plain:        r.Summary(i),
		Mean:         c.MeanCorrected(muX),
		Std:          c.StdCorrected(sigmaX),
		Beta:         c.Beta(),
		Rho:          c.Corr(),
		VarReduction: c.VarianceReduction(),
		EffectiveN:   c.EffectiveN(),
	}
}

// RunVectorPaired executes cfg.Samples paired trials of f, each producing
// nobs (primary, control) observable pairs, and streams them into
// per-observable ControlVariate accumulators plus the plain per-primary
// statistics of RunVectorState. Determinism matches the plain engine:
// trial i reseeds from (cfg.Seed, i) and fixed-size blocks merge in block
// order, so results are bit-identical across worker counts. The paired
// path is streaming-only: cfg.Collect is rejected.
func RunVectorPaired(ctx context.Context, cfg Config, nobs int, f PairedStateVectorFunc) (*CVVectorResult, error) {
	if cfg.Samples < 1 {
		return nil, fmt.Errorf("mc: sample count %d < 1", cfg.Samples)
	}
	if nobs < 1 {
		return nil, fmt.Errorf("mc: observable count %d < 1", nobs)
	}
	if cfg.Collect {
		return nil, fmt.Errorf("mc: the paired path is streaming-only (Collect unsupported)")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	n := cfg.Samples
	hdr := streamHeader{Kind: streamPaired, FastReseed: cfg.FastReseed, Nobs: nobs, Samples: n, Seed: cfg.Seed}

	if rp := cfg.Replay; rp != nil {
		recs, err := rp.nextStream(hdr)
		if err != nil {
			return nil, err
		}
		res := foldPaired(recs, nobs)
		if res.Stats[0].N() == 0 {
			return nil, fmt.Errorf("mc: every one of %d trials was rejected", n)
		}
		return res, nil
	}

	newEval := func() evalFunc {
		y := make([]float64, nobs)
		x := make([]float64, nobs)
		return func(state any, rng *rand.Rand, b, lo, hi int) (StreamRecord, bool) {
			rec := StreamRecord{Block: b, CV: make([]stats.ControlVariate, nobs), Quant: make([]QuantileSketch, nobs)}
			for j := range rec.Quant {
				rec.Quant[j] = newQuantileSketch()
			}
			for i := lo; i < hi; i++ {
				if ctx.Err() != nil {
					return StreamRecord{}, false
				}
				rng.Seed(trialSeed(cfg.Seed, i))
				if !f(state, rng, y, x) {
					rec.Rejected++
					continue
				}
				for j := range rec.CV {
					rec.CV[j].Add(y[j], x[j])
					rec.Quant[j].P05.Add(y[j])
					rec.Quant[j].Median.Add(y[j])
					rec.Quant[j].P95.Add(y[j])
				}
			}
			return rec, true
		}
	}

	if sh := cfg.Shard; sh != nil {
		st, err := sh.beginStream(hdr)
		if err != nil {
			return nil, err
		}
		first := st.lo + len(st.recs)
		emitted := runBlocks(ctx, cfg, n, first, st.hi, newEval, func(rec StreamRecord) {
			st.recs = append(st.recs, rec)
			sh.advance()
		})
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("mc: run canceled after %d of %d trials: %w", trialsIn(st.lo, first, n)+emitted, n, err)
		}
		return foldPaired(st.recs, nobs), nil
	}

	nblocks := hdr.nblocks()
	recs := make([]StreamRecord, 0, nblocks)
	emitted := runBlocks(ctx, cfg, n, 0, nblocks, newEval, func(rec StreamRecord) {
		recs = append(recs, rec)
	})
	if err := ctx.Err(); err != nil {
		// Same partial-progress invariant as the plain path: the count
		// covers the contiguous emitted prefix only (see sched.go).
		return nil, fmt.Errorf("mc: run canceled after %d of %d trials: %w", emitted, n, err)
	}
	res := foldPaired(recs, nobs)
	if res.Stats[0].N() == 0 {
		return nil, fmt.Errorf("mc: every one of %d trials was rejected", n)
	}
	return res, nil
}
