// The streaming multi-observable Monte-Carlo engine. One pass over N
// samples evaluates a vector of observables per trial (for example the tdp
// penalty at every DOE array size from a single process-variation draw),
// aggregating each observable with online Welford statistics — plus P²
// quantile sketches for approximate median/P05/P95 — so nothing is
// buffered unless the caller asks for the raw values (histograms, exact
// quantiles).
//
// Determinism: trial i always derives its PRNG stream from (Seed, i), and
// trials are aggregated in fixed-size blocks that are merged in block
// order, so every statistic is bit-identical regardless of the worker
// count. Workers own one reusable PRNG and one scratch vector each; the
// engine performs no per-trial allocation.
package mc

import (
	"context"
	"fmt"
	"math/rand"

	"mpsram/internal/stats"
)

// blockSize is the number of trials aggregated sequentially into one
// Welford accumulator before the in-order merge. It is a fixed constant —
// never derived from the worker count — because the merge tree must be
// identical for any parallelism for results to stay bit-identical.
const blockSize = 256

// VectorFunc evaluates one Monte-Carlo trial with the given PRNG, writing
// one value per observable into out (whose length is the observable count
// passed to RunVector). It returns false to reject the trial (e.g.
// collapsed geometry), in which case out is ignored. The out slice is
// reused across trials by the same worker and must not be retained.
type VectorFunc func(rng *rand.Rand, out []float64) bool

// StateVectorFunc is a VectorFunc that additionally receives the worker's
// state (the value Config.WorkerState returned for this worker, nil when
// no hook is installed). State gives heavyweight trials a home for
// per-worker sessions — netlist scratch, resident SPICE engines, memoized
// extractions — that plain closures over shared data cannot provide
// without locking.
type StateVectorFunc func(state any, rng *rand.Rand, out []float64) bool

// QuantileSketch bundles the streaming P² order-statistic estimators the
// engine maintains per observable when values are not collected.
type QuantileSketch struct {
	P05, Median, P95 stats.P2
}

// newQuantileSketch returns a zeroed sketch triple.
func newQuantileSketch() QuantileSketch {
	return QuantileSketch{P05: stats.NewP2(0.05), Median: stats.NewP2(0.5), P95: stats.NewP2(0.95)}
}

// merge folds another sketch triple in (deterministic given a fixed merge
// order).
func (q *QuantileSketch) merge(o QuantileSketch) {
	q.P05.Merge(o.P05)
	q.Median.Merge(o.Median)
	q.P95.Merge(o.P95)
}

// VectorResult aggregates a multi-observable run.
type VectorResult struct {
	// Stats holds one streaming accumulator per observable, merged in
	// deterministic block order (bit-identical across worker counts).
	Stats []stats.Welford
	// Quantiles holds one streaming P² sketch triple (P05/median/P95)
	// per observable, maintained only when Config.Collect is off (exact
	// order statistics are available from Values otherwise). Per-block
	// sketches are merged in the same deterministic block order as
	// Stats, so the approximate quantiles are likewise bit-identical
	// across worker counts.
	Quantiles []QuantileSketch
	// Values holds the accepted observations per observable in trial
	// order. It is nil unless Config.Collect was set.
	Values [][]float64
	// Rejected counts trials for which the VectorFunc returned false.
	Rejected int
}

// Accepted returns the number of accepted trials.
func (r *VectorResult) Accepted() int { return r.Stats[0].N() }

// Summary returns descriptive statistics for observable i: exact
// (sort-based, including quantiles and skew) when values were collected,
// otherwise the streaming moments with approximate P² order statistics
// (median, P05, P95) and skew set to NaN. Values[i] is left untouched —
// Summarize sorts its argument in place, so Summary hands it a copy —
// preserving the documented trial order and cross-observable pairing.
func (r *VectorResult) Summary(i int) stats.Summary {
	if r.Values != nil {
		return stats.Summarize(append([]float64(nil), r.Values[i]...))
	}
	s := r.Stats[i].Summary()
	if r.Quantiles != nil {
		q := &r.Quantiles[i]
		s.P05 = q.P05.Quantile()
		s.Median = q.Median.Quantile()
		s.P95 = q.P95.Quantile()
	}
	return s
}

// trialSeed derives the per-trial PRNG seed. This is the seed engine's
// exact derivation — splitmix-style odd-constant multiply of the trial
// index — and must never change: results for a given (Seed, Samples) are a
// compatibility surface.
func trialSeed(seed int64, i int) int64 {
	return seed ^ int64(uint64(i+1)*0x9E3779B97F4A7C15)
}

// RunVector executes cfg.Samples trials of f, each producing nobs
// observables, and streams them into per-observable Welford accumulators.
// Each trial i reseeds the worker's PRNG from (cfg.Seed, i), making
// results bit-identical across worker counts. The context cancels the run
// between blocks; cfg.Progress, if set, is invoked as blocks complete.
func RunVector(ctx context.Context, cfg Config, nobs int, f VectorFunc) (*VectorResult, error) {
	return RunVectorState(ctx, cfg, nobs, func(_ any, rng *rand.Rand, out []float64) bool {
		return f(rng, out)
	})
}

// RunVectorState is RunVector for stateful trials: each worker calls
// cfg.WorkerState once (when set) and passes the returned value to every
// trial it evaluates. Aggregation is unchanged — fixed-size blocks merged
// in block order — so results remain bit-identical across worker counts
// provided the state honours the purity contract documented on
// Config.WorkerState.
func RunVectorState(ctx context.Context, cfg Config, nobs int, f StateVectorFunc) (*VectorResult, error) {
	if cfg.Samples < 1 {
		return nil, fmt.Errorf("mc: sample count %d < 1", cfg.Samples)
	}
	if nobs < 1 {
		return nil, fmt.Errorf("mc: observable count %d < 1", nobs)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	n := cfg.Samples
	hdr := streamHeader{Kind: streamPlain, Collect: cfg.Collect, FastReseed: cfg.FastReseed, Nobs: nobs, Samples: n, Seed: cfg.Seed}

	// Reduce mode: fold the recorded blocks instead of executing trials.
	if rp := cfg.Replay; rp != nil {
		recs, err := rp.nextStream(hdr)
		if err != nil {
			return nil, err
		}
		res := foldPlain(recs, nobs, cfg.Collect)
		if res.Stats[0].N() == 0 {
			return nil, fmt.Errorf("mc: every one of %d trials was rejected", n)
		}
		return res, nil
	}

	newEval := func() evalFunc {
		out := make([]float64, nobs)
		return func(state any, rng *rand.Rand, b, lo, hi int) (StreamRecord, bool) {
			rec := StreamRecord{Block: b, Agg: make([]stats.Welford, nobs)}
			var quant []QuantileSketch
			if !cfg.Collect {
				quant = make([]QuantileSketch, nobs)
				for j := range quant {
					quant[j] = newQuantileSketch()
				}
			}
			for i := lo; i < hi; i++ {
				// Also honor cancellation inside a block: a
				// SPICE-in-the-loop run at a sub-block budget would
				// otherwise only notice SIGINT when it finishes.
				// Completed runs are unaffected — an abandoned (torn)
				// block is never emitted, counted or checkpointed.
				if ctx.Err() != nil {
					return StreamRecord{}, false
				}
				rng.Seed(trialSeed(cfg.Seed, i))
				if !f(state, rng, out) {
					rec.Rejected++
					continue
				}
				for j := range rec.Agg {
					rec.Agg[j].Add(out[j])
				}
				for j := range quant {
					quant[j].P05.Add(out[j])
					quant[j].Median.Add(out[j])
					quant[j].P95.Add(out[j])
				}
				if cfg.Collect {
					rec.Values = append(rec.Values, out...)
				}
			}
			rec.Quant = quant
			return rec, true
		}
	}

	// Shard mode: execute only the shard's block range (continuing past
	// a resumed checkpoint's frontier) and capture the records. The
	// partial fold below is the shard's own view; the real result comes
	// from the reducer.
	if sh := cfg.Shard; sh != nil {
		st, err := sh.beginStream(hdr)
		if err != nil {
			return nil, err
		}
		first := st.lo + len(st.recs)
		emitted := runBlocks(ctx, cfg, n, first, st.hi, newEval, func(rec StreamRecord) {
			st.recs = append(st.recs, rec)
			sh.advance()
		})
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("mc: run canceled after %d of %d trials: %w", trialsIn(st.lo, first, n)+emitted, n, err)
		}
		return foldPlain(st.recs, nobs, cfg.Collect), nil
	}

	nblocks := hdr.nblocks()
	recs := make([]StreamRecord, 0, nblocks)
	emitted := runBlocks(ctx, cfg, n, 0, nblocks, newEval, func(rec StreamRecord) {
		recs = append(recs, rec)
	})
	if err := ctx.Err(); err != nil {
		// The reported count is the partial-progress invariant: trials
		// of the contiguous emitted prefix only. Completed-but-unmerged
		// blocks beyond the frontier and the torn in-flight blocks are
		// excluded, so a checkpoint resume re-runs exactly the blocks at
		// or after the frontier — nothing is double-counted.
		return nil, fmt.Errorf("mc: run canceled after %d of %d trials: %w", emitted, n, err)
	}
	res := foldPlain(recs, nobs, cfg.Collect)
	if res.Stats[0].N() == 0 {
		return nil, fmt.Errorf("mc: every one of %d trials was rejected", n)
	}
	return res, nil
}
