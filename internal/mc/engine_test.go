package mc

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"mpsram/internal/litho"
	"mpsram/internal/stats"
)

// gauss1 is a cheap single-observable trial.
func gauss1(rng *rand.Rand, out []float64) bool {
	out[0] = rng.NormFloat64()
	return true
}

// gauss3 is a cheap 3-observable trial: three transforms of one draw.
func gauss3(rng *rand.Rand, out []float64) bool {
	v := rng.NormFloat64()
	out[0] = v
	out[1] = 2*v + 1
	out[2] = v * v
	return true
}

func TestRunVectorMoments(t *testing.T) {
	vr, err := RunVector(context.Background(), Config{Samples: 20000, Seed: 11}, 3, gauss3)
	if err != nil {
		t.Fatal(err)
	}
	if vr.Accepted() != 20000 || vr.Rejected != 0 {
		t.Fatalf("accepted %d rejected %d", vr.Accepted(), vr.Rejected)
	}
	if m := vr.Stats[0].Mean(); math.Abs(m) > 0.05 {
		t.Fatalf("obs0 mean %g", m)
	}
	if m := vr.Stats[1].Mean(); math.Abs(m-1) > 0.1 {
		t.Fatalf("obs1 mean %g", m)
	}
	if s := vr.Stats[1].Std(); math.Abs(s-2) > 0.1 {
		t.Fatalf("obs1 std %g", s)
	}
	// E[v²] = 1 for the standard normal.
	if m := vr.Stats[2].Mean(); math.Abs(m-1) > 0.05 {
		t.Fatalf("obs2 mean %g", m)
	}
	if vr.Values != nil {
		t.Fatal("values buffered without Collect")
	}
	// Without collection, Summary comes from the streaming moments with
	// P²-approximate order statistics (obs1 = 1 + 2·gauss has median 1);
	// skew stays unrecoverable.
	s := vr.Summary(1)
	if s.N != 20000 || s.Mean != vr.Stats[1].Mean() || !math.IsNaN(s.Skew) {
		t.Fatalf("streaming summary %+v", s)
	}
	if math.IsNaN(s.Median) || math.Abs(s.Median-1) > 0.15 {
		t.Fatalf("streaming approximate median %g, want ≈1", s.Median)
	}
}

// TestRunVectorBitIdenticalAcrossWorkers is the determinism gate: the
// streaming statistics, the rejection count and the collected values must
// be exactly identical for Workers ∈ {1, 4, GOMAXPROCS}.
func TestRunVectorBitIdenticalAcrossWorkers(t *testing.T) {
	f := func(rng *rand.Rand, out []float64) bool {
		v := rng.NormFloat64()
		out[0] = v
		out[1] = math.Exp(v / 3)
		return v > -2 // reject the left tail so rejection bookkeeping is exercised
	}
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	var ref *VectorResult
	for _, w := range counts {
		vr, err := RunVector(context.Background(), Config{Samples: 3000, Seed: 42, Workers: w, Collect: true}, 2, f)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = vr
			continue
		}
		if vr.Rejected != ref.Rejected {
			t.Fatalf("workers=%d: rejected %d vs %d", w, vr.Rejected, ref.Rejected)
		}
		for j := range vr.Stats {
			if vr.Stats[j] != ref.Stats[j] {
				t.Fatalf("workers=%d obs %d: welford state differs: %+v vs %+v",
					w, j, vr.Stats[j], ref.Stats[j])
			}
			if len(vr.Values[j]) != len(ref.Values[j]) {
				t.Fatalf("workers=%d obs %d: value count differs", w, j)
			}
			for i := range vr.Values[j] {
				if vr.Values[j][i] != ref.Values[j][i] {
					t.Fatalf("workers=%d obs %d trial %d: %v vs %v",
						w, j, i, vr.Values[j][i], ref.Values[j][i])
				}
			}
		}
	}
}

func TestRunVectorAllRejected(t *testing.T) {
	_, err := RunVector(context.Background(), Config{Samples: 100, Seed: 1}, 1,
		func(rng *rand.Rand, out []float64) bool { return false })
	if err == nil || !strings.Contains(err.Error(), "every one of 100") {
		t.Fatalf("all-rejected run must error, got %v", err)
	}
}

func TestRunVectorBadConfig(t *testing.T) {
	bg := context.Background()
	if _, err := RunVector(bg, Config{Samples: 0}, 1, gauss1); err == nil {
		t.Fatal("zero samples must error")
	}
	if _, err := RunVector(bg, Config{Samples: 10}, 0, gauss1); err == nil {
		t.Fatal("zero observables must error")
	}
}

func TestRunVectorCancellationMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	cfg := Config{
		Samples: 200000,
		Seed:    5,
		Workers: 2,
		Progress: func(done, total int) {
			// Cancel once a few blocks are in; the run must stop well
			// short of the full budget.
			if calls.Add(1) == 3 {
				cancel()
			}
		},
	}
	_, err := RunVector(ctx, cfg, 1, func(rng *rand.Rand, out []float64) bool {
		out[0] = rng.NormFloat64()
		return true
	})
	if err == nil || !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("canceled run must report cancellation, got %v", err)
	}
	// A pre-canceled context fails immediately.
	pre, precancel := context.WithCancel(context.Background())
	precancel()
	if _, err := RunVector(pre, Config{Samples: 100, Seed: 1}, 1, gauss1); err == nil {
		t.Fatal("pre-canceled context must error")
	}
}

func TestRunVectorProgressReachesTotal(t *testing.T) {
	var mu sync.Mutex
	var last, calls int
	cfg := Config{Samples: 1000, Seed: 3, Workers: 4, Progress: func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if total != 1000 {
			t.Errorf("total %d", total)
		}
		// The engine serializes callbacks with strictly increasing done.
		if done <= last {
			t.Errorf("done %d after %d: not strictly increasing", done, last)
		}
		last = done
	}}
	if _, err := RunVector(context.Background(), cfg, 1, gauss1); err != nil {
		t.Fatal(err)
	}
	if calls == 0 || last != 1000 {
		t.Fatalf("progress calls=%d last=%d", calls, last)
	}
}

// TestWelfordMatchesSummarize checks the streaming aggregation against the
// buffered exact statistics on the real tdp observable: same stream, the
// Welford mean/std must agree with stats.Summarize to ~1e-9 pp.
func TestWelfordMatchesSummarize(t *testing.T) {
	p, m := model(t)
	cfg := Config{Samples: 4000, Seed: 2015, Collect: true}
	vr, err := TdpAcrossSizes(context.Background(), p, litho.LE3, m, cm, []int{16, 64, 256, 1024}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for j := range vr.Stats {
		// Summarize sorts in place; copy to keep Values in trial order.
		exact := stats.Summarize(append([]float64(nil), vr.Values[j]...))
		if exact.N != vr.Stats[j].N() {
			t.Fatalf("obs %d: N %d vs %d", j, exact.N, vr.Stats[j].N())
		}
		if d := math.Abs(exact.Mean - vr.Stats[j].Mean()); d > 1e-9 {
			t.Fatalf("obs %d: mean differs by %g", j, d)
		}
		if d := math.Abs(exact.Std - vr.Stats[j].Std()); d > 1e-9 {
			t.Fatalf("obs %d: std differs by %g", j, d)
		}
		if exact.Min != vr.Stats[j].Min() || exact.Max != vr.Stats[j].Max() {
			t.Fatalf("obs %d: min/max differ", j)
		}
	}
}

// TestSharedStreamMatchesPerCell: evaluating n=64 as one observable of the
// shared 4-size stream must give bit-identical per-trial values to the
// dedicated single-size distribution (same draws, same formula).
func TestSharedStreamMatchesPerCell(t *testing.T) {
	p, m := model(t)
	cfg := Config{Samples: 2000, Seed: 7}
	single, err := TdpDistribution(p, litho.LE3, m, cm, 64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Collect = true
	shared, err := TdpAcrossSizes(context.Background(), p, litho.LE3, m, cm, []int{16, 64, 256, 1024}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sharedAt64 := append([]float64(nil), shared.Values[1]...)
	exact := stats.Summarize(sharedAt64)
	if exact != single.Summary {
		t.Fatalf("shared-stream n=64 summary differs from per-cell run:\n%v\n%v", exact, single.Summary)
	}
	if shared.Rejected != single.Rejected {
		t.Fatalf("rejected %d vs %d", shared.Rejected, single.Rejected)
	}
}

// TestSigmaSurfaceAgreesWithSweep: the Table IV wrapper and the full
// surface share one code path; at n=64 they must agree exactly.
func TestSigmaSurfaceAgreesWithSweep(t *testing.T) {
	p, m := model(t)
	cfg := Config{Samples: 1500, Seed: 9}
	budgets := []float64{3e-9, 8e-9}
	sweep, err := SigmaSweep(p, m, cm, 64, budgets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	surf, err := SigmaSurface(context.Background(), p, m, cm, []int{16, 64, 1024}, budgets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(surf) != len(sweep) {
		t.Fatalf("row count %d vs %d", len(surf), len(sweep))
	}
	for i, row := range surf {
		if row.Option != sweep[i].Option || row.OL != sweep[i].OL {
			t.Fatalf("row %d config mismatch", i)
		}
		if len(row.Cells) != 3 || row.Cells[1].N != 64 {
			t.Fatalf("row %d cells %+v", i, row.Cells)
		}
		if row.Cells[1].Sigma != sweep[i].Sigma || row.Cells[1].Mean != sweep[i].Mean {
			t.Fatalf("row %d: surface (%g,%g) vs sweep (%g,%g)", i,
				row.Cells[1].Sigma, row.Cells[1].Mean, sweep[i].Sigma, sweep[i].Mean)
		}
		// tdp spread grows with the bit line: σ ordering across sizes.
		if !(row.Cells[0].Sigma > 0 && row.Cells[2].Sigma > 0) {
			t.Fatalf("row %d: nonpositive sigma", i)
		}
	}
}

// TestSummaryPreservesTrialOrder: Summary must not sort Values in place —
// callers pair Values[a][k] with Values[b][k] per trial.
func TestSummaryPreservesTrialOrder(t *testing.T) {
	vr, err := RunVector(context.Background(), Config{Samples: 500, Seed: 8, Collect: true}, 2,
		func(rng *rand.Rand, out []float64) bool {
			v := rng.NormFloat64()
			out[0] = v
			out[1] = -v
			return true
		})
	if err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), vr.Values[0]...)
	if s := vr.Summary(0); s.N != 500 {
		t.Fatalf("summary %+v", s)
	}
	for i, v := range vr.Values[0] {
		if v != before[i] {
			t.Fatalf("Summary reordered Values: index %d", i)
		}
		if vr.Values[1][i] != -v {
			t.Fatalf("cross-observable pairing broken at trial %d", i)
		}
	}
}

func TestRunCtxMatchesRun(t *testing.T) {
	f := func(rng *rand.Rand) (float64, bool) { return rng.Float64(), true }
	a, err := Run(Config{Samples: 500, Seed: 12}, f)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCtx(context.Background(), Config{Samples: 500, Seed: 12}, f)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary != b.Summary {
		t.Fatal("RunCtx diverges from Run")
	}
}

func TestStreamingQuantilesApproximateExact(t *testing.T) {
	ctx := context.Background()
	f := func(rng *rand.Rand, out []float64) bool {
		out[0] = rng.NormFloat64()
		out[1] = rng.ExpFloat64()
		return true
	}
	exact, err := RunVector(ctx, Config{Samples: 10000, Seed: 42, Collect: true}, 2, f)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := RunVector(ctx, Config{Samples: 10000, Seed: 42}, 2, f)
	if err != nil {
		t.Fatal(err)
	}
	if approx.Quantiles == nil || len(approx.Quantiles) != 2 {
		t.Fatal("streaming run must carry quantile sketches")
	}
	if exact.Quantiles != nil {
		t.Fatal("collecting run must not carry sketches (exact path)")
	}
	for j := 0; j < 2; j++ {
		es := exact.Summary(j)
		as := approx.Summary(j)
		// The block-merged P² estimates track the exact order statistics
		// within a modest fraction of the spread (looser for the
		// heavy-tailed exponential observable).
		tol := 0.35 * es.Std
		for _, q := range []struct {
			name      string
			got, want float64
		}{
			{"median", as.Median, es.Median},
			{"p05", as.P05, es.P05},
			{"p95", as.P95, es.P95},
		} {
			if math.IsNaN(q.got) {
				t.Fatalf("obs %d %s: NaN approximate quantile", j, q.name)
			}
			if d := math.Abs(q.got - q.want); d > tol {
				t.Errorf("obs %d %s: approx %.4f vs exact %.4f (|Δ| %.4f > %.4f)",
					j, q.name, q.got, q.want, d, tol)
			}
		}
		// The Welford moments are untouched by the sketch path: both runs
		// aggregate them identically.
		if as.Mean != exact.Stats[j].Mean() || as.Std != exact.Stats[j].Std() {
			t.Errorf("obs %d: streaming moments diverge between runs", j)
		}
	}
}

func TestStreamingQuantilesBitIdenticalAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	base, err := RunVector(ctx, Config{Samples: 5000, Seed: 3, Workers: 1}, 1, gauss1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		r, err := RunVector(ctx, Config{Samples: 5000, Seed: 3, Workers: w}, 1, gauss1)
		if err != nil {
			t.Fatal(err)
		}
		bs, rs := base.Summary(0), r.Summary(0)
		if bs.Median != rs.Median || bs.P05 != rs.P05 || bs.P95 != rs.P95 {
			t.Fatalf("workers=%d: quantiles (%g,%g,%g) != (%g,%g,%g)",
				w, rs.P05, rs.Median, rs.P95, bs.P05, bs.Median, bs.P95)
		}
	}
}
