// The splittable fast-reseed PRNG source behind Config.FastReseed.
//
// The legacy stream reseeds math/rand's additive lagged-Fibonacci source
// per trial, and that Seed call re-derives a 607-word feedback table —
// ~10 µs that dominates the engine overhead of cheap observables. This
// source is a PCG-64 (XSL-RR 128/64) generator whose Seed is two
// SplitMix64 mixes of the trial seed: O(1), allocation-free, and still
// giving every trial its own statistically independent stream (the
// "splittable" property the per-trial determinism contract needs).
//
// Switching a run to FastReseed changes the drawn sample stream — the
// legacy stream is a compatibility surface for every golden number — so
// the knob is opt-in and results produced under it must be re-baselined
// (see EXPERIMENTS.md).
package mc

import "math/bits"

// pcgSource implements math/rand.Source64 with 128-bit PCG state.
type pcgSource struct {
	hi, lo uint64
}

// PCG-64 default multiplier and increment (O'Neill, PCG paper).
const (
	pcgMulHi = 0x2360ed051fc65da4
	pcgMulLo = 0x4385df649fccf645
	pcgIncHi = 0x5851f42d4c957f2d
	pcgIncLo = 0x14057b7ef767814f
)

// splitmix64 is the finalizing mixer used to expand a 64-bit seed into
// PCG state words.
func splitmix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Seed re-derives the full 128-bit state from seed in O(1) — the whole
// point of the fast-reseed path. Distinct seeds land in distinct,
// well-mixed states; equal seeds reproduce the identical stream.
func (p *pcgSource) Seed(seed int64) {
	p.lo = splitmix64(uint64(seed))
	p.hi = splitmix64(uint64(seed) ^ 0xda3e39cb94b95bdb)
}

// step advances the 128-bit LCG state.
func (p *pcgSource) step() {
	hi, lo := bits.Mul64(p.lo, pcgMulLo)
	hi += p.hi*pcgMulLo + p.lo*pcgMulHi
	lo, carry := bits.Add64(lo, pcgIncLo, 0)
	hi, _ = bits.Add64(hi, pcgIncHi, carry)
	p.lo, p.hi = lo, hi
}

// Uint64 returns the XSL-RR output of the advanced state.
func (p *pcgSource) Uint64() uint64 {
	p.step()
	return bits.RotateLeft64(p.hi^p.lo, -int(p.hi>>58))
}

// Int63 satisfies math/rand.Source.
func (p *pcgSource) Int63() int64 {
	return int64(p.Uint64() >> 1)
}
