// Sharded execution and replay over the block scheduler. A ShardRun
// restricts every engine invocation of a run to the shard's contiguous
// block sub-range and captures the per-block StreamRecords as they are
// emitted (in block order, so the capture is always a contiguous,
// checkpointable prefix). A Replay is the reducer's side: it holds the
// reassembled full record set of every stream and feeds the engine the
// recorded blocks instead of executing trials, so reduce(shards) runs
// the exact left-fold of the single-process path — bit-identical by
// construction, at any shard partition and any per-shard worker count.
//
// Streams are identified by invocation order: workload code calls the
// engine in a deterministic sequence (it is ordinary sequential Go), so
// the k-th engine invocation of the reduce run corresponds to the k-th
// captured stream of every shard. Each stream carries a header (kind,
// observable count, sample budget, seed, PRNG family, collect mode)
// that is validated on both resume and replay, so a drifted workload or
// configuration fails loudly instead of folding foreign blocks.
package mc

import (
	"fmt"

	"mpsram/internal/stats"
)

// ShardSpec assigns one contiguous block sub-range of every stream to a
// shard: shard Index of Count covers blocks [Index·B/Count,
// (Index+1)·B/Count) of a B-block stream. Empty ranges (more shards
// than blocks) are legal and produce empty — but valid — artifacts.
type ShardSpec struct {
	Index, Count int
}

// Validate checks the shard coordinates.
func (s ShardSpec) Validate() error {
	if s.Count < 1 {
		return fmt.Errorf("mc: shard count %d < 1", s.Count)
	}
	if s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("mc: shard index %d outside [0,%d)", s.Index, s.Count)
	}
	return nil
}

// blockRange returns the block sub-range [lo,hi) this shard owns out of
// nblocks total. Ranges tile [0,nblocks) exactly across all shards.
func (s ShardSpec) blockRange(nblocks int) (lo, hi int) {
	return s.Index * nblocks / s.Count, (s.Index + 1) * nblocks / s.Count
}

// capturedStream is one engine invocation's capture: the stream header
// plus the contiguous record prefix [lo, lo+len(recs)) of the shard's
// block range [lo,hi).
type capturedStream struct {
	header streamHeader
	lo, hi int
	recs   []StreamRecord
}

// ShardRun captures a shard's partial aggregates. Install it via
// Config.Shard; every RunVector*/RunVectorPaired invocation under that
// config then executes only the shard's block range and appends its
// records here. The zero value is not usable — construct with
// NewShardRun or ResumeShardRun.
type ShardRun struct {
	spec ShardSpec
	// Checkpoint, if non-nil, is invoked each time a stream's contiguous
	// frontier advances by one block. Calls are serialized by the
	// scheduler and EncodePayload is safe to call from inside one, which
	// is exactly how periodic checkpointing is implemented: the callback
	// decides (e.g. by wall clock) whether to persist the current
	// payload.
	Checkpoint func()
	// Progress, if non-nil, is invoked with Frontier()'s values each time
	// the frontier advances, before Checkpoint. Calls are serialized by
	// the scheduler; done is monotone for the life of the capture (resumed
	// records count from the start), total grows as streams begin.
	Progress func(done, total int)

	streams []*capturedStream
	begun   int // streams begun by the current execution
}

// NewShardRun prepares a fresh capture for the given shard.
func NewShardRun(spec ShardSpec) (*ShardRun, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &ShardRun{spec: spec}, nil
}

// ResumeShardRun prepares a capture pre-filled from a checkpoint
// payload: streams resume after their persisted frontier, re-executing
// only blocks the checkpoint had not recorded. Stream headers are
// re-validated against the live run as each stream begins.
func ResumeShardRun(spec ShardSpec, p *ShardPayload) (*ShardRun, error) {
	sr, err := NewShardRun(spec)
	if err != nil {
		return nil, err
	}
	for i, ps := range p.streams {
		lo, hi := spec.blockRange(ps.header.nblocks())
		if len(ps.recs) > hi-lo {
			return nil, fmt.Errorf("mc: checkpoint stream %d holds %d records, shard range has %d blocks", i, len(ps.recs), hi-lo)
		}
		for k, rec := range ps.recs {
			if rec.Block != lo+k {
				return nil, fmt.Errorf("mc: checkpoint stream %d is not a contiguous prefix (record %d covers block %d, want %d)", i, k, rec.Block, lo+k)
			}
		}
		sr.streams = append(sr.streams, &capturedStream{header: ps.header, lo: lo, hi: hi, recs: ps.recs})
	}
	return sr, nil
}

// Spec returns the shard coordinates.
func (sr *ShardRun) Spec() ShardSpec { return sr.spec }

// Frontier reports the capture's overall trial progress: done counts the
// trials of every recorded block (resumed checkpoints included), total
// the trials of every begun stream's full block range. Because streams
// begin lazily, total grows as a multi-stream workload reaches each
// engine invocation — done never exceeds it and never decreases.
func (sr *ShardRun) Frontier() (done, total int) {
	for _, st := range sr.streams {
		n := st.header.Samples
		done += trialsIn(st.lo, st.lo+len(st.recs), n)
		total += trialsIn(st.lo, st.hi, n)
	}
	return done, total
}

// advance is the scheduler's per-block hook: publish the frontier, then
// give the checkpoint callback its chance. Serialized with emission.
func (sr *ShardRun) advance() {
	if sr.Progress != nil {
		sr.Progress(sr.Frontier())
	}
	if sr.Checkpoint != nil {
		sr.Checkpoint()
	}
}

// beginStream matches the next engine invocation against the capture:
// a resumed stream is revalidated and continued after its frontier, a
// new stream is appended. Called once per engine invocation, in order.
func (sr *ShardRun) beginStream(hdr streamHeader) (*capturedStream, error) {
	lo, hi := sr.spec.blockRange(hdr.nblocks())
	i := sr.begun
	sr.begun++
	if i < len(sr.streams) {
		st := sr.streams[i]
		if st.header != hdr {
			return nil, fmt.Errorf("mc: resume stream %d does not match the checkpoint (run %+v, checkpoint %+v)", i, hdr, st.header)
		}
		return st, nil
	}
	st := &capturedStream{header: hdr, lo: lo, hi: hi}
	sr.streams = append(sr.streams, st)
	return st, nil
}

// replayStream is one stream's complete record set, block order.
type replayStream struct {
	header streamHeader
	recs   []StreamRecord
}

// Replay feeds recorded blocks back through the engine. Install it via
// Config.Replay; every engine invocation then validates its stream
// header against the recording and folds the recorded blocks instead of
// executing trials. Construct with NewReplay.
type Replay struct {
	streams []replayStream
	next    int
}

// NewReplay assembles the reducer's replay from one complete shard set:
// parts[i] must be shard i's payload out of len(parts) shards of the
// same run. Every stream must be covered exactly — headers equal across
// shards, each shard contributing its full block range — or the
// assembly fails.
func NewReplay(parts []*ShardPayload) (*Replay, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("mc: no shard payloads")
	}
	count := len(parts)
	ns := len(parts[0].streams)
	for i, p := range parts {
		if len(p.streams) != ns {
			return nil, fmt.Errorf("mc: shard %d holds %d streams, shard 0 holds %d", i, len(p.streams), ns)
		}
	}
	rp := &Replay{streams: make([]replayStream, ns)}
	for s := 0; s < ns; s++ {
		hdr := parts[0].streams[s].header
		nblocks := hdr.nblocks()
		recs := make([]StreamRecord, nblocks)
		for i, p := range parts {
			ps := p.streams[s]
			if ps.header != hdr {
				return nil, fmt.Errorf("mc: shard %d stream %d header differs from shard 0 (%+v vs %+v)", i, s, ps.header, hdr)
			}
			lo, hi := (ShardSpec{Index: i, Count: count}).blockRange(nblocks)
			if len(ps.recs) != hi-lo {
				return nil, fmt.Errorf("mc: shard %d stream %d is incomplete: %d of %d blocks recorded", i, s, len(ps.recs), hi-lo)
			}
			for k, rec := range ps.recs {
				if rec.Block != lo+k {
					return nil, fmt.Errorf("mc: shard %d stream %d record %d covers block %d, want %d", i, s, k, rec.Block, lo+k)
				}
				recs[rec.Block] = rec
			}
		}
		rp.streams[s] = replayStream{header: hdr, recs: recs}
	}
	return rp, nil
}

// nextStream hands the next recorded stream to an engine invocation,
// validating that the reducer's re-executed workload asked for the same
// computation the shards ran.
func (rp *Replay) nextStream(hdr streamHeader) ([]StreamRecord, error) {
	if rp.next >= len(rp.streams) {
		return nil, fmt.Errorf("mc: replay exhausted after %d streams — the run requests more engine invocations than the artifacts recorded", len(rp.streams))
	}
	st := rp.streams[rp.next]
	rp.next++
	if st.header != hdr {
		return nil, fmt.Errorf("mc: replay stream %d does not match the recording (run %+v, artifact %+v)", rp.next-1, hdr, st.header)
	}
	return st.recs, nil
}

// Done reports whether every recorded stream was consumed — a leftover
// stream means the reduce run diverged from the workload that produced
// the artifacts.
func (rp *Replay) Done() error {
	if rp.next != len(rp.streams) {
		return fmt.Errorf("mc: replay consumed %d of %d recorded streams — the artifacts belong to a different workload execution", rp.next, len(rp.streams))
	}
	return nil
}

// ShardPayload is the decoded body of a shard artifact or checkpoint:
// every captured stream's header and contiguous record prefix.
type ShardPayload struct {
	streams []payloadStream
}

type payloadStream struct {
	header streamHeader
	recs   []StreamRecord
}

// Frontier reports the payload's trial progress for the given shard
// coordinates — ShardRun.Frontier for an artifact at rest, which is how
// an external observer (the serve layer polling a child process's
// checkpoint file) derives progress without attaching to the run.
func (p *ShardPayload) Frontier(spec ShardSpec) (done, total int) {
	for _, ps := range p.streams {
		lo, hi := spec.blockRange(ps.header.nblocks())
		n := ps.header.Samples
		done += trialsIn(lo, lo+len(ps.recs), n)
		total += trialsIn(lo, hi, n)
	}
	return done, total
}

// Payload codec. Like the stats codecs, the format is versioned,
// big-endian, floats as raw IEEE-754 bits; truncated or
// version-mismatched buffers fail loudly.
const (
	payloadCodecVersion = 1
	streamCodecVersion  = 1
)

// appendHeader encodes one stream header (fixed size).
func appendHeader(b []byte, h streamHeader) []byte {
	b = append(b, streamCodecVersion, h.Kind, b2u8(h.Collect), b2u8(h.FastReseed))
	b = stats.AppendU64(b, uint64(h.Nobs))
	b = stats.AppendU64(b, uint64(h.Samples))
	b = stats.AppendU64(b, uint64(h.Seed))
	return b
}

func b2u8(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// appendSketch encodes one QuantileSketch (three P² estimators).
func appendSketch(b []byte, q QuantileSketch) []byte {
	b = q.P05.AppendBinary(b)
	b = q.Median.AppendBinary(b)
	b = q.P95.AppendBinary(b)
	return b
}

// appendRecord encodes one record under its stream header's layout.
func appendRecord(b []byte, h streamHeader, rec StreamRecord) []byte {
	b = stats.AppendU64(b, uint64(rec.Block))
	b = stats.AppendU64(b, uint64(rec.Rejected))
	switch {
	case h.Kind == streamPaired:
		for _, c := range rec.CV {
			b = c.AppendBinary(b)
		}
		for _, q := range rec.Quant {
			b = appendSketch(b, q)
		}
	case h.Collect:
		for _, w := range rec.Agg {
			b = w.AppendBinary(b)
		}
		b = stats.AppendU64(b, uint64(len(rec.Values)))
		for _, v := range rec.Values {
			b = stats.AppendF64(b, v)
		}
	default:
		for _, w := range rec.Agg {
			b = w.AppendBinary(b)
		}
		for _, q := range rec.Quant {
			b = appendSketch(b, q)
		}
	}
	return b
}

// EncodePayload serializes the capture's current state — every stream's
// contiguous record prefix. Safe to call from the Checkpoint callback
// (the scheduler serializes it with record emission) and after the run
// returns; the encoding is a valid resume/reduce payload either way.
func (sr *ShardRun) EncodePayload() []byte {
	b := []byte{payloadCodecVersion}
	b = stats.AppendU64(b, uint64(len(sr.streams)))
	for _, st := range sr.streams {
		b = appendHeader(b, st.header)
		b = stats.AppendU64(b, uint64(len(st.recs)))
		for _, rec := range st.recs {
			b = appendRecord(b, st.header, rec)
		}
	}
	return b
}

// decodeHeader consumes one stream header.
func decodeHeader(r *stats.CodecReader) (streamHeader, error) {
	var h streamHeader
	if v := r.U8("stream header"); r.Err() == nil && v != streamCodecVersion {
		return h, fmt.Errorf("mc: stream codec version %d, want %d", v, streamCodecVersion)
	}
	h.Kind = r.U8("stream header")
	h.Collect = r.U8("stream header") != 0
	h.FastReseed = r.U8("stream header") != 0
	h.Nobs = int(r.U64("stream header"))
	h.Samples = int(r.U64("stream header"))
	h.Seed = int64(r.U64("stream header"))
	if err := r.Err(); err != nil {
		return h, err
	}
	if h.Kind != streamPlain && h.Kind != streamPaired {
		return h, fmt.Errorf("mc: unknown stream kind %d", h.Kind)
	}
	if h.Nobs < 1 || h.Samples < 1 {
		return h, fmt.Errorf("mc: corrupt stream header (nobs=%d samples=%d)", h.Nobs, h.Samples)
	}
	return h, nil
}

// decodeRecord consumes one record under the stream header's layout.
func decodeRecord(r *stats.CodecReader, h streamHeader) (StreamRecord, error) {
	var rec StreamRecord
	rec.Block = int(r.U64("record"))
	rec.Rejected = int(r.U64("record"))
	if err := r.Err(); err != nil {
		return rec, err
	}
	if rec.Block < 0 || rec.Block >= h.nblocks() {
		return rec, fmt.Errorf("mc: record block %d outside stream's %d blocks", rec.Block, h.nblocks())
	}
	if rec.Rejected < 0 || rec.Rejected > blockSize {
		return rec, fmt.Errorf("mc: record rejects %d trials of a %d-trial block", rec.Rejected, blockSize)
	}
	decodeSketches := func() []QuantileSketch {
		qs := make([]QuantileSketch, h.Nobs)
		for j := range qs {
			qs[j].P05.Decode(r)
			qs[j].Median.Decode(r)
			qs[j].P95.Decode(r)
		}
		return qs
	}
	switch {
	case h.Kind == streamPaired:
		rec.CV = make([]stats.ControlVariate, h.Nobs)
		for j := range rec.CV {
			rec.CV[j].Decode(r)
		}
		rec.Quant = decodeSketches()
	case h.Collect:
		rec.Agg = make([]stats.Welford, h.Nobs)
		for j := range rec.Agg {
			rec.Agg[j].Decode(r)
		}
		nvals := int(r.U64("record"))
		if r.Err() == nil && (nvals < 0 || nvals > blockSize*h.Nobs || nvals%h.Nobs != 0) {
			return rec, fmt.Errorf("mc: record holds %d collected values for %d observables of a %d-trial block", nvals, h.Nobs, blockSize)
		}
		if r.Err() == nil && nvals > 0 {
			rec.Values = make([]float64, nvals)
			for i := range rec.Values {
				rec.Values[i] = r.F64("record")
			}
		}
	default:
		rec.Agg = make([]stats.Welford, h.Nobs)
		for j := range rec.Agg {
			rec.Agg[j].Decode(r)
		}
		rec.Quant = decodeSketches()
	}
	return rec, r.Err()
}

// DecodeShardPayload parses an encoded payload, rejecting version
// mismatches, truncations and trailing garbage.
func DecodeShardPayload(data []byte) (*ShardPayload, error) {
	r := stats.NewCodecReader(data)
	if v := r.U8("shard payload"); r.Err() == nil && v != payloadCodecVersion {
		return nil, fmt.Errorf("mc: shard payload version %d, want %d", v, payloadCodecVersion)
	}
	ns := int(r.U64("shard payload"))
	if err := r.Err(); err != nil {
		return nil, err
	}
	if ns < 0 || ns > 1<<20 {
		return nil, fmt.Errorf("mc: corrupt shard payload (%d streams)", ns)
	}
	p := &ShardPayload{streams: make([]payloadStream, 0, ns)}
	for s := 0; s < ns; s++ {
		h, err := decodeHeader(r)
		if err != nil {
			return nil, err
		}
		nrecs := int(r.U64("shard payload"))
		if err := r.Err(); err != nil {
			return nil, err
		}
		if nrecs < 0 || nrecs > h.nblocks() {
			return nil, fmt.Errorf("mc: stream %d holds %d records for %d blocks", s, nrecs, h.nblocks())
		}
		recs := make([]StreamRecord, 0, nrecs)
		for k := 0; k < nrecs; k++ {
			rec, err := decodeRecord(r, h)
			if err != nil {
				return nil, err
			}
			recs = append(recs, rec)
		}
		p.streams = append(p.streams, payloadStream{header: h, recs: recs})
	}
	if r.Rest() != 0 {
		return nil, fmt.Errorf("mc: %d trailing bytes after shard payload", r.Rest())
	}
	return p, nil
}
