// The block scheduler — the layer under RunVectorState and
// RunVectorPaired that owns the worker pool, the block cursor, and the
// deterministic in-order delivery of per-block partial aggregates.
//
// Every trial stream is cut into fixed blockSize blocks. Workers pull
// block indices from an atomic cursor and evaluate them independently;
// completed blocks park in a pending set until the contiguous frontier
// reaches them, at which point they are emitted strictly in block order.
// That ordering is the whole determinism story: the fold over emitted
// records is the exact left-fold a serial run would perform, so results
// are bit-identical for any worker count — and, because a contiguous
// prefix of emitted records is itself a valid left-fold state, the same
// mechanism gives sharding (emit a block sub-range) and checkpoint/resume
// (persist the frontier, restart after it) without new math.
//
// Partial-progress invariant: a block is either emitted whole or not at
// all. A cancellation mid-block abandons the in-flight block — its trials
// appear in no count, no record and no checkpoint — so a resumed run
// re-executes exactly the blocks at or after the frontier, never
// double-counting a torn block. The trial count in the cancellation
// error reports emitted (frontier) trials only.
package mc

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"

	"mpsram/internal/stats"
)

// StreamRecord is one block's partial aggregate — the unit of
// distribution, checkpointing and the in-order reduce. Exactly one of
// Agg (plain stream) or CV (paired stream) is populated; Quant rides
// along unless the stream collects raw values, in which case Values
// holds the block's accepted observations trial-major (nobs values per
// accepted trial, in trial order).
type StreamRecord struct {
	Block    int
	Rejected int
	Agg      []stats.Welford
	Quant    []QuantileSketch
	CV       []stats.ControlVariate
	Values   []float64
}

// Stream kinds — which engine entry point produced the stream.
const (
	streamPlain  = 0
	streamPaired = 1
)

// streamHeader is the identity of one engine invocation inside a run:
// everything that must match between a shard capture and the reducer's
// re-execution for the recorded blocks to be the same computation.
// Comparable by ==.
type streamHeader struct {
	Kind       uint8
	Collect    bool
	FastReseed bool
	Nobs       int
	Samples    int
	Seed       int64
}

// nblocks returns the stream's block count.
func (h streamHeader) nblocks() int {
	return (h.Samples + blockSize - 1) / blockSize
}

// blockBounds returns the trial range [lo,hi) of block b in an n-trial
// stream.
func blockBounds(b, n int) (lo, hi int) {
	lo = b * blockSize
	hi = lo + blockSize
	if hi > n {
		hi = n
	}
	return lo, hi
}

// trialsIn returns the number of trials in blocks [first,last) of an
// n-trial stream.
func trialsIn(first, last, n int) int {
	lo := first * blockSize
	hi := last * blockSize
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return hi - lo
}

// evalFunc evaluates one block of trials into its record. It returns
// ok=false when the run was canceled mid-block; the torn block is then
// abandoned — never emitted, never counted.
type evalFunc func(state any, rng *rand.Rand, block, lo, hi int) (rec StreamRecord, ok bool)

// runBlocks drives the worker pool over blocks [first,last) of an
// n-trial stream. newEval is invoked once per worker and the returned
// closure owns that worker's scratch; each worker also gets one reusable
// PRNG (legacy or PCG64 per cfg.FastReseed) and one cfg.WorkerState
// value. emit receives every completed record strictly in block order
// and is serialized by the scheduler — it needs no locking and may
// safely append to a slice or persist a checkpoint. cfg.Progress, when
// set, observes the frontier: done counts emitted trials of this range,
// total the range's trial count, strictly increasing.
//
// The return value is the number of emitted trials — the contiguous
// frontier, which on a clean run equals the range total and on a
// canceled run is exactly the prefix a resume may keep.
func runBlocks(ctx context.Context, cfg Config, n, first, last int, newEval func() evalFunc, emit func(StreamRecord)) int {
	nblocks := last - first
	if nblocks <= 0 {
		return 0
	}
	rangeTrials := trialsIn(first, last, n)
	nw := cfg.workers()
	if nw > nblocks {
		nw = nblocks
	}
	var (
		next atomic.Int64 // block cursor
		wg   sync.WaitGroup

		// mu guards the pending set and the frontier; emit and Progress
		// run under it, which is what serializes them.
		mu       sync.Mutex
		pending  = make(map[int]StreamRecord)
		frontier = first
		emitted  int
	)
	next.Store(int64(first))
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One PRNG, one scratch closure and (when hooked) one state
			// value per worker, reseeded / rewritten per trial instead of
			// reallocated. FastReseed swaps the source for the splittable
			// PCG64 whose Seed is O(1) instead of a 607-word table init;
			// the stream changes, the determinism contract does not.
			var rng *rand.Rand
			if cfg.FastReseed {
				rng = rand.New(new(pcgSource))
			} else {
				rng = rand.New(rand.NewSource(0))
			}
			var state any
			if cfg.WorkerState != nil {
				state = cfg.WorkerState()
			}
			eval := newEval()
			for {
				if ctx.Err() != nil {
					return
				}
				b := int(next.Add(1)) - 1
				if b >= last {
					return
				}
				lo, hi := blockBounds(b, n)
				rec, ok := eval(state, rng, b, lo, hi)
				if !ok {
					return
				}
				mu.Lock()
				pending[b] = rec
				for {
					r, ready := pending[frontier]
					if !ready {
						break
					}
					delete(pending, frontier)
					emitted += trialsIn(frontier, frontier+1, n)
					frontier++
					emit(r)
					if cfg.Progress != nil {
						cfg.Progress(emitted, rangeTrials)
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return emitted
}

// foldPlain replays the serial left-fold over plain-stream records in
// block order — the one merge tree every execution shape (any worker
// count, any shard partition, resumed or not) reduces through, which is
// why all of them are bit-identical.
func foldPlain(recs []StreamRecord, nobs int, collect bool) *VectorResult {
	res := &VectorResult{Stats: make([]stats.Welford, nobs)}
	if !collect {
		res.Quantiles = make([]QuantileSketch, nobs)
		for j := range res.Quantiles {
			res.Quantiles[j] = newQuantileSketch()
		}
	}
	for _, b := range recs {
		for j := range res.Stats {
			res.Stats[j].Merge(b.Agg[j])
		}
		for j := range b.Quant {
			res.Quantiles[j].merge(b.Quant[j])
		}
		res.Rejected += b.Rejected
	}
	if collect {
		res.Values = make([][]float64, nobs)
		acc := res.Stats[0].N()
		for j := range res.Values {
			res.Values[j] = make([]float64, 0, acc)
		}
		for _, b := range recs {
			for t := 0; t*nobs < len(b.Values); t++ {
				for j := 0; j < nobs; j++ {
					res.Values[j] = append(res.Values[j], b.Values[t*nobs+j])
				}
			}
		}
	}
	return res
}

// foldPaired is foldPlain for paired (control-variate) streams.
func foldPaired(recs []StreamRecord, nobs int) *CVVectorResult {
	res := &CVVectorResult{
		VectorResult: VectorResult{
			Stats:     make([]stats.Welford, nobs),
			Quantiles: make([]QuantileSketch, nobs),
		},
		CV: make([]stats.ControlVariate, nobs),
	}
	for j := range res.Quantiles {
		res.Quantiles[j] = newQuantileSketch()
	}
	for _, b := range recs {
		for j := range res.CV {
			res.CV[j].Merge(b.CV[j])
			res.Quantiles[j].merge(b.Quant[j])
		}
		res.Rejected += b.Rejected
	}
	for j := range res.Stats {
		res.Stats[j] = res.CV[j].Primary()
	}
	return res
}
