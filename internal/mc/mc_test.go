package mc

import (
	"math"
	"math/rand"
	"testing"

	"mpsram/internal/analytic"
	"mpsram/internal/extract"
	"mpsram/internal/litho"
	"mpsram/internal/sram"
	"mpsram/internal/tech"
)

var cm = extract.SakuraiTamaru{}

func model(t *testing.T) (tech.Process, analytic.Params) {
	t.Helper()
	p := tech.N10()
	nom, err := sram.NominalParasitics(p, cm)
	if err != nil {
		t.Fatal(err)
	}
	m, err := analytic.Derive(p, nom.Rbl, nom.Cbl)
	if err != nil {
		t.Fatal(err)
	}
	return p, m
}

func TestRunGaussianMoments(t *testing.T) {
	res, err := Run(Config{Samples: 20000, Seed: 11}, func(rng *rand.Rand) (float64, bool) {
		return rng.NormFloat64()*3 + 5, true
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Summary.Mean-5) > 0.1 {
		t.Fatalf("mean %g", res.Summary.Mean)
	}
	if math.Abs(res.Summary.Std-3) > 0.1 {
		t.Fatalf("std %g", res.Summary.Std)
	}
	if res.Rejected != 0 {
		t.Fatalf("rejected %d", res.Rejected)
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	f := func(rng *rand.Rand) (float64, bool) { return rng.NormFloat64(), true }
	r1, err := Run(Config{Samples: 500, Seed: 42, Workers: 1}, f)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run(Config{Samples: 500, Seed: 42, Workers: 8}, f)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Summary.Mean != r8.Summary.Mean || r1.Summary.Std != r8.Summary.Std {
		t.Fatal("results depend on worker count")
	}
	// Different seed → different stream.
	r2, _ := Run(Config{Samples: 500, Seed: 43, Workers: 1}, f)
	if r1.Summary.Mean == r2.Summary.Mean {
		t.Fatal("seed has no effect")
	}
}

func TestRunRejections(t *testing.T) {
	res, err := Run(Config{Samples: 100, Seed: 1}, func(rng *rand.Rand) (float64, bool) {
		v := rng.Float64()
		return v, v > 0.5
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected == 0 || res.Rejected == 100 {
		t.Fatalf("rejected = %d", res.Rejected)
	}
	if len(res.Values)+res.Rejected != 100 {
		t.Fatal("counts do not add up")
	}
	// All rejected → error.
	if _, err := Run(Config{Samples: 10, Seed: 1}, func(rng *rand.Rand) (float64, bool) {
		return 0, false
	}); err == nil {
		t.Fatal("all-rejected run must error")
	}
	// Bad config.
	if _, err := Run(Config{Samples: 0}, f0); err == nil {
		t.Fatal("zero samples must error")
	}
}

func f0(rng *rand.Rand) (float64, bool) { return 0, true }

func TestSampleRatiosRejectsCollapse(t *testing.T) {
	// With a huge overlay budget some LE3 draws must collapse and be
	// rejected rather than crash.
	p, _ := model(t)
	p = p.WithOL(40e-9)
	rejected := 0
	for i := 0; i < 200; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		if _, ok := SampleRatios(p, litho.LE3, cm, rng); !ok {
			rejected++
		}
	}
	if rejected == 0 {
		t.Fatal("expected some collapsed-geometry rejections")
	}
}

// TestTableIVShape is the Table IV reproduction gate.
func TestTableIVShape(t *testing.T) {
	p, m := model(t)
	cfg := Config{Samples: 4000, Seed: 7}
	rows, err := SigmaSweep(p, m, cm, 64, []float64{3e-9, 5e-9, 7e-9, 8e-9}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("row count %d", len(rows))
	}
	sig := map[string]float64{}
	for i, r := range rows {
		if r.Sigma <= 0 {
			t.Fatalf("row %d: sigma %g", i, r.Sigma)
		}
		key := r.Option.String()
		if r.Option == litho.LE3 {
			key = key + ":" + itoa(int(r.OL*1e9))
		}
		sig[key] = r.Sigma
	}
	// σ(LE3) strictly increases with the overlay budget.
	if !(sig["LELELE:3"] < sig["LELELE:5"] && sig["LELELE:5"] < sig["LELELE:7"] &&
		sig["LELELE:7"] < sig["LELELE:8"]) {
		t.Fatalf("LE3 sigma not monotone in OL: %+v", sig)
	}
	// σ(LE3 @8nm) at least 2× σ(SADP) (paper: 0.753 vs 0.317).
	if sig["LELELE:8"] < 2*sig["SADP"] {
		t.Fatalf("LE3@8nm %.3f not ≥ 2× SADP %.3f", sig["LELELE:8"], sig["SADP"])
	}
	// SADP is the tightest distribution.
	if !(sig["SADP"] < sig["EUV"]) {
		t.Fatalf("SADP %.3f not < EUV %.3f", sig["SADP"], sig["EUV"])
	}
	// Tight-OL LE3 reaches the EUV class (paper: 0.414 ≈ 0.415).
	ratio := sig["LELELE:3"] / sig["EUV"]
	if ratio < 0.6 || ratio > 1.6 {
		t.Fatalf("LE3@3nm/EUV ratio %.2f outside comparable band", ratio)
	}
}

func itoa(v int) string {
	return string(rune('0' + v))
}

func TestTdpDistributionHistogram(t *testing.T) {
	p, m := model(t)
	res, err := TdpDistribution(p, litho.LE3, m, cm, 64, Config{Samples: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	h, err := res.Histogram(12)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != len(res.Values) {
		t.Fatal("histogram lost samples")
	}
	u, o := h.Outliers()
	if u != 0 || o != 0 {
		t.Fatalf("range should cover all values: %d/%d", u, o)
	}
	// The LE3 tdp distribution is right-skewed (coupling blows up faster
	// when lines approach than it relaxes when they separate).
	if res.Summary.Skew <= 0 {
		t.Fatalf("LE3 tdp skew %g, want positive", res.Summary.Skew)
	}
}

func TestTdpDistributionValidatesModel(t *testing.T) {
	p, m := model(t)
	m.CPre = nil
	if _, err := TdpDistribution(p, litho.EUV, m, cm, 64, Config{Samples: 10, Seed: 1}); err == nil {
		t.Fatal("invalid model must be rejected")
	}
}

func TestDegenerateHistogramRange(t *testing.T) {
	res := Result{Values: []float64{1, 1, 1}}
	res.Summary.Min, res.Summary.Max = 1, 1
	if _, err := res.Histogram(5); err != nil {
		t.Fatalf("degenerate range must still histogram: %v", err)
	}
}
