package mc

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"mpsram/internal/analytic"
	"mpsram/internal/extract"
	"mpsram/internal/litho"
	"mpsram/internal/sram"
	"mpsram/internal/tech"
)

// TestPCGSourceDeterministicPerSeed pins the splittable-source contract:
// equal seeds reproduce the identical stream, distinct seeds diverge
// immediately, and reseeding mid-stream fully resets the state.
func TestPCGSourceDeterministicPerSeed(t *testing.T) {
	a, b := new(pcgSource), new(pcgSource)
	a.Seed(42)
	b.Seed(42)
	var first [8]uint64
	for i := range first {
		first[i] = a.Uint64()
		if got := b.Uint64(); got != first[i] {
			t.Fatalf("draw %d: %x vs %x for equal seeds", i, first[i], got)
		}
	}
	b.Seed(43)
	diverged := false
	for i := 0; i < 8; i++ {
		if b.Uint64() != first[i] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("seeds 42 and 43 produced the same 8-draw prefix")
	}
	// Reseed resets: the original stream replays exactly.
	a.Seed(42)
	for i := range first {
		if got := a.Uint64(); got != first[i] {
			t.Fatalf("reseeded draw %d: %x vs %x", i, got, first[i])
		}
	}
	// Int63 stays non-negative (math/rand.Source contract).
	for i := 0; i < 1000; i++ {
		if v := a.Int63(); v < 0 {
			t.Fatalf("Int63 returned negative %d", v)
		}
	}
}

// TestPCGSourceMomentsSane is a cheap statistical smoke: normal deviates
// drawn through math/rand on the PCG source have ~zero mean and ~unit
// variance.
func TestPCGSourceMomentsSane(t *testing.T) {
	rng := rand.New(new(pcgSource))
	rng.Seed(7)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := rng.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("variance %v", variance)
	}
}

// TestFastReseedBitIdenticalAcrossWorkers extends the engine's
// worker-count determinism gate to the PCG path: the fast stream must be
// a function of (Seed, trial) only, never of worker scheduling.
func TestFastReseedBitIdenticalAcrossWorkers(t *testing.T) {
	p := tech.N10()
	cm := extract.SakuraiTamaru{}
	ctx := context.Background()
	run := func(workers int) *VectorResult {
		cfg := Config{Samples: 2000, Seed: 2015, Workers: workers, FastReseed: true, Collect: true}
		vr, err := RunVector(ctx, cfg, 1, func(rng *rand.Rand, out []float64) bool {
			r, ok := SampleRatios(p, litho.LE3, cm, rng)
			if !ok {
				return false
			}
			out[0] = r.Cvar
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		return vr
	}
	base := run(1)
	for _, workers := range []int{2, 8} {
		vr := run(workers)
		if vr.Rejected != base.Rejected || len(vr.Values[0]) != len(base.Values[0]) {
			t.Fatalf("workers=%d: shape mismatch", workers)
		}
		for i := range base.Values[0] {
			if vr.Values[0][i] != base.Values[0][i] {
				t.Fatalf("workers=%d trial %d: %g != %g", workers, i, vr.Values[0][i], base.Values[0][i])
			}
		}
	}
}

// TestFastReseedChangesStreamKeepsStatistics checks both halves of the
// knob's contract: the drawn stream differs from the legacy source (so
// legacy goldens do NOT apply), while the distribution it estimates
// agrees statistically (so re-baselined results stay comparable).
func TestFastReseedChangesStreamKeepsStatistics(t *testing.T) {
	p := tech.N10()
	cm := extract.SakuraiTamaru{}
	ctx := context.Background()
	run := func(fast bool) *VectorResult {
		cfg := Config{Samples: 4000, Seed: 2015, FastReseed: fast, Collect: true}
		vr, err := RunVector(ctx, cfg, 1, func(rng *rand.Rand, out []float64) bool {
			r, ok := SampleRatios(p, litho.LE3, cm, rng)
			if !ok {
				return false
			}
			out[0] = (r.Cvar - 1) * 100
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		return vr
	}
	legacy, fast := run(false), run(true)
	same := true
	for i := 0; i < 16 && i < len(legacy.Values[0]) && i < len(fast.Values[0]); i++ {
		if legacy.Values[0][i] != fast.Values[0][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("fast-reseed stream unexpectedly identical to the legacy stream")
	}
	ls, fs := legacy.Summary(0), fast.Summary(0)
	if math.Abs(ls.Mean-fs.Mean) > 0.25*ls.Std {
		t.Errorf("means diverge: legacy %v fast %v (σ %v)", ls.Mean, fs.Mean, ls.Std)
	}
	if fs.Std < 0.8*ls.Std || fs.Std > 1.25*ls.Std {
		t.Errorf("σ diverges: legacy %v fast %v", ls.Std, fs.Std)
	}
}

// TestLegacyStreamUntouchedByKnob guards the compatibility surface: with
// FastReseed off the engine must reproduce the exact historical stream
// (spot-checked against a hand-rolled legacy-source loop).
func TestLegacyStreamUntouchedByKnob(t *testing.T) {
	cfg := Config{Samples: 64, Seed: 2015, Collect: true}
	vr, err := RunVector(context.Background(), cfg, 1, func(rng *rand.Rand, out []float64) bool {
		out[0] = rng.NormFloat64()
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(0))
	for i := 0; i < cfg.Samples; i++ {
		rng.Seed(trialSeed(cfg.Seed, i))
		if want := rng.NormFloat64(); vr.Values[0][i] != want {
			t.Fatalf("trial %d: %g != legacy %g", i, vr.Values[0][i], want)
		}
	}
}

// BenchmarkTrialReseed prices the per-trial reseed of both sources — the
// engine overhead the FastReseed knob removes. The legacy arm pays the
// 607-word lagged-Fibonacci table rebuild on every Seed; the PCG arm two
// SplitMix64 mixes (~100× cheaper).
func BenchmarkTrialReseed(b *testing.B) {
	b.Run("legacy-lfg", func(b *testing.B) {
		rng := rand.New(rand.NewSource(0))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rng.Seed(trialSeed(2015, i))
			rng.NormFloat64()
		}
	})
	b.Run("pcg-splitmix", func(b *testing.B) {
		rng := rand.New(new(pcgSource))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rng.Seed(trialSeed(2015, i))
			rng.NormFloat64()
		}
	})
}

// TestSigmaSurfaceAcrossProcesses covers the process sweep axis at the
// engine level: one surface per case in case order, each node's streams
// independent of the others', error paths for empty and invalid cases.
func TestSigmaSurfaceAcrossProcesses(t *testing.T) {
	cm := extract.SakuraiTamaru{}
	ctx := context.Background()
	cfg := Config{Samples: 300, Seed: 2015}
	var cases []ProcessCase
	for _, p := range []tech.Process{tech.N10(), tech.N7()} {
		m, err := deriveModel(p, cm)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, ProcessCase{Proc: p, Model: m})
	}
	surfs, err := SigmaSurfaceAcross(ctx, cases, cm, []int{16, 64}, []float64{3e-9, 8e-9}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(surfs) != 2 || surfs[0].Process != "N10" || surfs[1].Process != "N7" {
		t.Fatalf("surfaces %+v", surfs)
	}
	for _, s := range surfs {
		if len(s.Rows) != 4 { // 2 OL budgets + SADP + EUV
			t.Fatalf("%s: %d rows", s.Process, len(s.Rows))
		}
		for _, r := range s.Rows {
			if len(r.Cells) != 2 || r.Cells[0].Sigma <= 0 {
				t.Fatalf("%s %v: cells %+v", s.Process, r.Option, r.Cells)
			}
		}
	}
	// The single-node surface is reproduced exactly by the sweep.
	single, err := SigmaSurface(ctx, cases[0].Proc, cases[0].Model, cm, []int{16, 64}, []float64{3e-9, 8e-9}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range single {
		for j := range single[i].Cells {
			if single[i].Cells[j] != surfs[0].Rows[i].Cells[j] {
				t.Fatalf("row %d cell %d differs from single-node path", i, j)
			}
		}
	}
	if _, err := SigmaSurfaceAcross(ctx, nil, cm, []int{16}, []float64{3e-9}, cfg); err == nil {
		t.Fatal("empty case set must fail")
	}
	bad := tech.N10()
	bad.M1.Width = -1
	if _, err := SigmaSurfaceAcross(ctx, []ProcessCase{{Proc: bad}}, cm, []int{16}, []float64{3e-9}, cfg); err == nil {
		t.Fatal("invalid process must fail")
	}
}

// deriveModel mirrors exp.Env.Model for engine-level tests.
func deriveModel(p tech.Process, cm extract.CapModel) (analytic.Params, error) {
	nom, err := sram.NominalParasitics(p, cm)
	if err != nil {
		return analytic.Params{}, err
	}
	return analytic.Derive(p, nom.Rbl, nom.Cbl)
}
