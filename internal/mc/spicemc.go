// SPICE-in-the-loop Monte-Carlo: the paper's statistical read-delay
// distributions driven by full transients instead of the closed-form tdp
// formula. Every trial draws one lithography sample, extracts the
// perturbed parasitics and simulates the read at every requested array
// size on the worker's resident engine (sram.ColumnBuilder +
// spice.Engine.Reset), streamed through the same block-deterministic
// aggregation as the analytic path — results are bit-identical for any
// worker count.
package mc

import (
	"context"
	"fmt"
	"math/rand"

	"mpsram/internal/analytic"
	"mpsram/internal/extract"
	"mpsram/internal/litho"
	"mpsram/internal/sram"
	"mpsram/internal/tech"
)

// SpiceTdpAcrossSizes runs one SPICE-in-the-loop Monte-Carlo stream for
// option o: each draw's lithography-perturbed parasitics feed a full read
// transient at every array size in sizes, and observable j of the result
// is the simulated tdp penalty in percent at sizes[j]. The lithography
// pipeline runs once per trial no matter how many sizes are requested;
// every worker owns a sram.ColumnBuilder session with a resident SPICE
// engine, so the hot loop reuses the netlist scratch, the sparse matrices
// and the Newton/waveform buffers across all trials.
//
// The per-trial sample stream is identical to the analytic
// TdpAcrossSizes for the same (Seed, Samples): both consume the same
// litho.Params draws in the same order, so the two paths are directly
// comparable draw by draw.
func SpiceTdpAcrossSizes(ctx context.Context, p tech.Process, o litho.Option, cm extract.CapModel, sizes []int, bopt sram.BuildOptions, sopt sram.SimOptions, cfg Config) (*VectorResult, error) {
	if cm == nil {
		return nil, fmt.Errorf("mc: nil capacitance model")
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("mc: no array sizes requested")
	}
	// Shared read-only inputs, resolved once: the nominal extraction and
	// the nominal read time per size (the tdp denominators).
	seed := sram.NewColumnBuilder(p, cm)
	nom, err := seed.Nominal()
	if err != nil {
		return nil, fmt.Errorf("mc: nominal extraction: %w", err)
	}
	nomTd, err := seed.NominalTds(sizes, bopt, sopt)
	if err != nil {
		return nil, err
	}
	return SpiceTdpAcrossSizesShared(ctx, p, o, cm, sizes, nom, nomTd, bopt, sopt, cfg)
}

// SpiceTdpAcrossSizesShared is SpiceTdpAcrossSizes with the nominal
// inputs precomputed by the caller. Nominal geometry is
// option-independent, so a driver sweeping several options over the same
// sizes resolves sram.NominalParasitics and NominalTds once and shares
// them across every stream instead of re-simulating the nominal reads
// per option (the same dedup rule the sweep engine applies to its plans).
func SpiceTdpAcrossSizesShared(ctx context.Context, p tech.Process, o litho.Option, cm extract.CapModel, sizes []int, nom sram.CellParasitics, nomTd []float64, bopt sram.BuildOptions, sopt sram.SimOptions, cfg Config) (*VectorResult, error) {
	if cm == nil {
		return nil, fmt.Errorf("mc: nil capacitance model")
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("mc: no array sizes requested")
	}
	if len(nomTd) != len(sizes) {
		return nil, fmt.Errorf("mc: %d nominal read times for %d sizes", len(nomTd), len(sizes))
	}
	cfg.WorkerState = func() any {
		b := sram.NewColumnBuilder(p, cm)
		b.SetNominal(nom)
		return b.TrialFunc(o, sizes, nomTd, bopt, sopt)
	}
	return RunVectorState(ctx, cfg, len(sizes), func(state any, rng *rand.Rand, out []float64) bool {
		return state.(func(*rand.Rand, []float64) bool)(rng, out)
	})
}

// SpiceTdpCVAcrossSizesShared is SpiceTdpAcrossSizesShared on the paired
// control-variate path: every trial runs the full read transients *and*
// evaluates the closed-form tdp model m on the same extracted ratios, so
// the result carries the paired moments (β̂, ρ̂, corrected mean/σ, the
// measured variance-reduction factor) next to the plain SPICE statistics.
// The SPICE observable stream is bitwise identical to
// SpiceTdpAcrossSizesShared for the same (Seed, Samples): the control
// rides the extraction the SPICE trial already performs, it never
// consumes extra deviates.
func SpiceTdpCVAcrossSizesShared(ctx context.Context, p tech.Process, o litho.Option, m analytic.Params, cm extract.CapModel, sizes []int, nom sram.CellParasitics, nomTd []float64, bopt sram.BuildOptions, sopt sram.SimOptions, cfg Config) (*CVVectorResult, error) {
	if cm == nil {
		return nil, fmt.Errorf("mc: nil capacitance model")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("mc: no array sizes requested")
	}
	if len(nomTd) != len(sizes) {
		return nil, fmt.Errorf("mc: %d nominal read times for %d sizes", len(nomTd), len(sizes))
	}
	ctrl := func(n int, r extract.Ratios) float64 { return m.TdpPct(n, r.Rvar, r.Cvar) }
	cfg.WorkerState = func() any {
		b := sram.NewColumnBuilder(p, cm)
		b.SetNominal(nom)
		return b.PairedTrialFunc(o, sizes, nomTd, ctrl, bopt, sopt)
	}
	return RunVectorPaired(ctx, cfg, len(sizes), func(state any, rng *rand.Rand, y, x []float64) bool {
		return state.(func(*rand.Rand, []float64, []float64) bool)(rng, y, x)
	})
}
