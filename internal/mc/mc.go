// Package mc implements the Monte-Carlo engine of paper Section III-B:
// Gaussian sampling of the per-option process-variation parameters,
// extraction of the resulting RCbl variation ratios, evaluation of the
// analytical tdp formula, and aggregation into distributions (Fig. 5) and
// standard deviations (Table IV).
//
// Sampling is deterministic for a given seed and independent of the
// worker count: every sample index derives its own PRNG stream, so
// parallel runs are exactly reproducible. The engine in engine.go streams
// a vector of observables per trial — one litho+extract draw can feed the
// tdp formula at every array size at once — which is how the Table IV
// surface shares a single sample stream per option instead of resampling
// per cell.
package mc

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"

	"mpsram/internal/analytic"
	"mpsram/internal/extract"
	"mpsram/internal/litho"
	"mpsram/internal/stats"
	"mpsram/internal/tech"
)

// Config tunes a Monte-Carlo run.
type Config struct {
	Samples int
	Seed    int64
	Workers int // 0 = GOMAXPROCS
	// Collect retains every accepted observation (per observable) for
	// exact quantiles and histograms. Off, the engine keeps only the
	// streaming Welford moments — no O(Samples) buffer.
	Collect bool
	// FastReseed switches the per-trial PRNG to the splittable PCG64
	// source (pcg.go), whose O(1) reseed is ~100× cheaper than the
	// legacy lagged-Fibonacci 607-word table rebuild that otherwise
	// dominates cheap-observable runs. Off (the default), the engine
	// keeps the legacy source and its bit-exact historical sample
	// stream. Turning it on changes every drawn sample — results remain
	// deterministic per (Seed, trial) and bit-identical across worker
	// counts, but must be re-baselined against the legacy goldens (see
	// EXPERIMENTS.md).
	FastReseed bool
	// Progress, if non-nil, is called as trial blocks complete with the
	// number of finished trials and the total. Calls are serialized by
	// the engine and done is strictly increasing within one run, so the
	// callback needs no locking of its own.
	Progress func(done, total int)
	// Shard, if non-nil, restricts every engine run under this config to
	// the shard's contiguous block range and captures the per-block
	// partial aggregates (see ShardRun). The returned results are the
	// shard's partial view — possibly empty, never an all-rejected error
	// — and exist only so workload code can complete its control flow;
	// the authoritative result comes from reducing the shard artifacts.
	Shard *ShardRun
	// Replay, if non-nil, skips trial execution entirely: every engine
	// run validates its stream identity against the recording and folds
	// the recorded blocks in block order (see Replay/NewReplay), which
	// reproduces the single-process result bit for bit.
	Replay *Replay
	// WorkerState, if non-nil, is invoked once per worker goroutine and
	// its return value handed to every trial that worker evaluates (see
	// StateVectorFunc). It is the hook that lets heavyweight trials own
	// per-worker sessions — a SPICE-in-the-loop trial keeps a
	// sram.ColumnBuilder with a resident engine here — without any
	// synchronisation. Determinism contract: the state must only cache
	// pure functions of the trial inputs (memoized extractions, reused
	// scratch), never values that depend on which trials the worker
	// happened to receive, so results stay bit-identical across worker
	// counts.
	WorkerState func() any
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// SampleFunc evaluates one Monte-Carlo trial with the given PRNG and
// returns the observable plus ok=false when the trial must be rejected
// (e.g. collapsed geometry).
type SampleFunc func(rng *rand.Rand) (float64, bool)

// Result aggregates a run.
type Result struct {
	Values   []float64 // accepted observations, sorted by Summarize
	Summary  stats.Summary
	Rejected int
}

// Run executes cfg.Samples trials of f. Each trial i uses an independent
// PRNG seeded from (cfg.Seed, i), making results bit-identical across
// worker counts.
func Run(cfg Config, f SampleFunc) (Result, error) {
	return RunCtx(context.Background(), cfg, f)
}

// RunCtx is Run with cancellation: the context aborts the run between
// trial blocks. It is a single-observable, value-collecting view of the
// streaming engine in RunVector.
func RunCtx(ctx context.Context, cfg Config, f SampleFunc) (Result, error) {
	cfg.Collect = true
	vr, err := RunVector(ctx, cfg, 1, func(rng *rand.Rand, out []float64) bool {
		v, ok := f(rng)
		out[0] = v
		return ok
	})
	if err != nil {
		return Result{}, err
	}
	res := Result{Values: vr.Values[0], Rejected: vr.Rejected}
	res.Summary = stats.Summarize(res.Values)
	return res, nil
}

// SampleRatios draws one Gaussian process-variation sample for option o
// (via the canonical litho.Draw stream) and returns the extracted
// variability ratios.
func SampleRatios(p tech.Process, o litho.Option, cm extract.CapModel, rng *rand.Rand) (extract.Ratios, bool) {
	s := litho.DrawFor(p, o, rng)
	r, err := extract.VarRatios(p, o, s, cm)
	if err != nil {
		return extract.Ratios{}, false
	}
	return r, true
}

// TdpVector returns the multi-observable trial function behind the shared
// sample stream: one SampleRatios draw, evaluated through the analytical
// tdp formula at every array size in sizes.
func TdpVector(p tech.Process, o litho.Option, m analytic.Params, cm extract.CapModel, sizes []int) VectorFunc {
	return func(rng *rand.Rand, out []float64) bool {
		r, ok := SampleRatios(p, o, cm, rng)
		if !ok {
			return false
		}
		for j, n := range sizes {
			out[j] = m.TdpPct(n, r.Rvar, r.Cvar)
		}
		return true
	}
}

// TdpAcrossSizes runs one Monte-Carlo stream for option o and evaluates
// the tdp penalty at every array size in sizes from each draw — the
// litho+extract pipeline runs once per trial no matter how many sizes are
// requested. Observable j of the result corresponds to sizes[j].
func TdpAcrossSizes(ctx context.Context, p tech.Process, o litho.Option, m analytic.Params, cm extract.CapModel, sizes []int, cfg Config) (*VectorResult, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("mc: no array sizes requested")
	}
	return RunVector(ctx, cfg, len(sizes), TdpVector(p, o, m, cm, sizes))
}

// TdpDistribution runs the paper's Monte-Carlo: sample process variation
// for option o, extract Rvar/Cvar, evaluate the analytical tdp formula at
// array size n. Returns the aggregated distribution of tdp in percent.
func TdpDistribution(p tech.Process, o litho.Option, m analytic.Params, cm extract.CapModel, n int, cfg Config) (Result, error) {
	return TdpDistributionCtx(context.Background(), p, o, m, cm, n, cfg)
}

// TdpDistributionCtx is TdpDistribution with cancellation.
func TdpDistributionCtx(ctx context.Context, p tech.Process, o litho.Option, m analytic.Params, cm extract.CapModel, n int, cfg Config) (Result, error) {
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	return RunCtx(ctx, cfg, func(rng *rand.Rand) (float64, bool) {
		r, ok := SampleRatios(p, o, cm, rng)
		if !ok {
			return 0, false
		}
		return m.TdpPct(n, r.Rvar, r.Cvar), true
	})
}

// Histogram bins the result values into uniform bins spanning slightly
// beyond the observed range (Fig. 5 rendering).
func (r Result) Histogram(bins int) (*stats.Histogram, error) {
	lo, hi := r.Summary.Min, r.Summary.Max
	span := hi - lo
	if span <= 0 {
		span = 1e-9
	}
	h, err := stats.NewHistogram(lo-0.02*span, hi+0.02*span, bins)
	if err != nil {
		return nil, err
	}
	for _, v := range r.Values {
		h.Add(v)
	}
	return h, nil
}

// SigmaSweepRow is one Table IV row: an option/overlay configuration and
// the resulting tdp standard deviation.
type SigmaSweepRow struct {
	Option litho.Option
	OL     float64 // LE3 overlay 3σ budget (0 for SADP/EUV)
	Sigma  float64 // std of tdp in percentage points
	Mean   float64
}

// SigmaCell is the tdp spread at one array size within a surface row.
type SigmaCell struct {
	N     int
	Sigma float64 // std of tdp in percentage points
	Mean  float64
}

// SigmaSurfaceRow is one option/overlay configuration of the extended
// Table IV: the tdp spread at every requested array size, all computed
// from one shared sample stream.
type SigmaSurfaceRow struct {
	Option litho.Option
	OL     float64 // LE3 overlay 3σ budget (0 for SADP/EUV)
	Cells  []SigmaCell
}

// SigmaSurface computes the tdp σ for LE3 at each overlay budget plus
// SADP and EUV, across every array size in sizes. Each option/overlay
// configuration runs exactly one Monte-Carlo stream: every draw's
// extracted ratios feed the tdp formula at all sizes, so the litho and
// extraction cost is independent of len(sizes).
//
// The cells report exact (collected, sort-based) statistics so that the
// Table IV numbers stay bit-identical to the seed engine for the same
// (Seed, Samples); the streaming Welford moments agree to ~1e-12 and
// remain available through RunVector with Collect off.
func SigmaSurface(ctx context.Context, p tech.Process, m analytic.Params, cm extract.CapModel, sizes []int, olBudgets []float64, cfg Config) ([]SigmaSurfaceRow, error) {
	cfg.Collect = true
	var rows []SigmaSurfaceRow
	run := func(p tech.Process, o litho.Option, ol float64) error {
		vr, err := TdpAcrossSizes(ctx, p, o, m, cm, sizes, cfg)
		if err != nil {
			return err
		}
		cells := make([]SigmaCell, len(sizes))
		for j, n := range sizes {
			s := vr.Summary(j)
			cells[j] = SigmaCell{N: n, Sigma: s.Std, Mean: s.Mean}
		}
		rows = append(rows, SigmaSurfaceRow{Option: o, OL: ol, Cells: cells})
		return nil
	}
	for _, ol := range olBudgets {
		if err := run(p.WithOL(ol), litho.LE3, ol); err != nil {
			return nil, fmt.Errorf("mc: LE3 @OL=%g: %w", ol, err)
		}
	}
	for _, o := range []litho.Option{litho.SADP, litho.EUV} {
		if err := run(p, o, 0); err != nil {
			return nil, fmt.Errorf("mc: %v: %w", o, err)
		}
	}
	return rows, nil
}

// ProcessCase pairs one technology preset with its derived analytical
// model — the unit of the process sweep axis.
type ProcessCase struct {
	Proc  tech.Process
	Model analytic.Params
}

// ProcessSurface is one node's extended Table IV: the per-option/overlay
// tdp σ surface computed on that process.
type ProcessSurface struct {
	Process string
	Rows    []SigmaSurfaceRow
}

// SigmaSurfaceAcross sweeps the process axis: one SigmaSurface per case,
// in case order. Sample streams are deterministic per (process, option) —
// every node's trial i re-derives the same PRNG state from (Seed, i) and
// maps it through that node's own variation budgets via litho.Params —
// and bit-identical across worker counts, so cross-node σ deltas are
// attributable to the process, not to sampling noise layout.
func SigmaSurfaceAcross(ctx context.Context, cases []ProcessCase, cm extract.CapModel, sizes []int, olBudgets []float64, cfg Config) ([]ProcessSurface, error) {
	if len(cases) == 0 {
		return nil, fmt.Errorf("mc: no process cases")
	}
	out := make([]ProcessSurface, 0, len(cases))
	for _, c := range cases {
		if err := c.Proc.Validate(); err != nil {
			return nil, fmt.Errorf("mc: %w", err)
		}
		rows, err := SigmaSurface(ctx, c.Proc, c.Model, cm, sizes, olBudgets, cfg)
		if err != nil {
			return nil, fmt.Errorf("mc: %s: %w", c.Proc.Name, err)
		}
		out = append(out, ProcessSurface{Process: c.Proc.Name, Rows: rows})
	}
	return out, nil
}

// SigmaSweep reproduces Table IV: the tdp σ for LE3 at each overlay budget
// plus SADP and EUV, all at array size n.
func SigmaSweep(p tech.Process, m analytic.Params, cm extract.CapModel, n int, olBudgets []float64, cfg Config) ([]SigmaSweepRow, error) {
	return SigmaSweepCtx(context.Background(), p, m, cm, n, olBudgets, cfg)
}

// SigmaSweepCtx is SigmaSweep with cancellation. It is the
// single-size view of SigmaSurface.
func SigmaSweepCtx(ctx context.Context, p tech.Process, m analytic.Params, cm extract.CapModel, n int, olBudgets []float64, cfg Config) ([]SigmaSweepRow, error) {
	surf, err := SigmaSurface(ctx, p, m, cm, []int{n}, olBudgets, cfg)
	if err != nil {
		return nil, err
	}
	rows := make([]SigmaSweepRow, len(surf))
	for i, r := range surf {
		rows[i] = SigmaSweepRow{Option: r.Option, OL: r.OL, Sigma: r.Cells[0].Sigma, Mean: r.Cells[0].Mean}
	}
	return rows, nil
}
