// Package mc implements the Monte-Carlo engine of paper Section III-B:
// Gaussian sampling of the per-option process-variation parameters,
// extraction of the resulting RCbl variation ratios, evaluation of the
// analytical tdp formula, and aggregation into distributions (Fig. 5) and
// standard deviations (Table IV).
//
// Sampling is deterministic for a given seed and independent of the
// worker count: every sample index derives its own PRNG stream, so
// parallel runs are exactly reproducible.
package mc

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"mpsram/internal/analytic"
	"mpsram/internal/extract"
	"mpsram/internal/litho"
	"mpsram/internal/stats"
	"mpsram/internal/tech"
)

// Config tunes a Monte-Carlo run.
type Config struct {
	Samples int
	Seed    int64
	Workers int // 0 = GOMAXPROCS
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// SampleFunc evaluates one Monte-Carlo trial with the given PRNG and
// returns the observable plus ok=false when the trial must be rejected
// (e.g. collapsed geometry).
type SampleFunc func(rng *rand.Rand) (float64, bool)

// Result aggregates a run.
type Result struct {
	Values   []float64 // accepted observations, sorted by Summarize
	Summary  stats.Summary
	Rejected int
}

// Run executes cfg.Samples trials of f. Each trial i uses an independent
// PRNG seeded from (cfg.Seed, i), making results bit-identical across
// worker counts.
func Run(cfg Config, f SampleFunc) (Result, error) {
	if cfg.Samples < 1 {
		return Result{}, fmt.Errorf("mc: sample count %d < 1", cfg.Samples)
	}
	type out struct {
		v  float64
		ok bool
	}
	results := make([]out, cfg.Samples)
	var wg sync.WaitGroup
	nw := cfg.workers()
	chunk := (cfg.Samples + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > cfg.Samples {
			hi = cfg.Samples
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				mix := int64(uint64(i+1) * 0x9E3779B97F4A7C15)
				rng := rand.New(rand.NewSource(cfg.Seed ^ mix))
				v, ok := f(rng)
				results[i] = out{v, ok}
			}
		}(lo, hi)
	}
	wg.Wait()
	res := Result{Values: make([]float64, 0, cfg.Samples)}
	for _, r := range results {
		if r.ok {
			res.Values = append(res.Values, r.v)
		} else {
			res.Rejected++
		}
	}
	if len(res.Values) == 0 {
		return res, fmt.Errorf("mc: every one of %d trials was rejected", cfg.Samples)
	}
	res.Summary = stats.Summarize(res.Values)
	return res, nil
}

// SampleRatios draws one Gaussian process-variation sample for option o
// and returns the extracted variability ratios.
func SampleRatios(p tech.Process, o litho.Option, cm extract.CapModel, rng *rand.Rand) (extract.Ratios, bool) {
	var s litho.Sample
	for _, prm := range litho.Params(p, o) {
		prm.Apply(&s, rng.NormFloat64()*prm.Sigma)
	}
	r, err := extract.VarRatios(p, o, s, cm)
	if err != nil {
		return extract.Ratios{}, false
	}
	return r, true
}

// TdpDistribution runs the paper's Monte-Carlo: sample process variation
// for option o, extract Rvar/Cvar, evaluate the analytical tdp formula at
// array size n. Returns the aggregated distribution of tdp in percent.
func TdpDistribution(p tech.Process, o litho.Option, m analytic.Params, cm extract.CapModel, n int, cfg Config) (Result, error) {
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	return Run(cfg, func(rng *rand.Rand) (float64, bool) {
		r, ok := SampleRatios(p, o, cm, rng)
		if !ok {
			return 0, false
		}
		return m.TdpPct(n, r.Rvar, r.Cvar), true
	})
}

// Histogram bins the result values into bins uniform bins spanning
// slightly beyond the observed range (Fig. 5 rendering).
func (r Result) Histogram(bins int) (*stats.Histogram, error) {
	lo, hi := r.Summary.Min, r.Summary.Max
	span := hi - lo
	if span <= 0 {
		span = 1e-9
	}
	h, err := stats.NewHistogram(lo-0.02*span, hi+0.02*span, bins)
	if err != nil {
		return nil, err
	}
	for _, v := range r.Values {
		h.Add(v)
	}
	return h, nil
}

// SigmaSweepRow is one Table IV row: an option/overlay configuration and
// the resulting tdp standard deviation.
type SigmaSweepRow struct {
	Option litho.Option
	OL     float64 // LE3 overlay 3σ budget (0 for SADP/EUV)
	Sigma  float64 // std of tdp in percentage points
	Mean   float64
}

// SigmaSweep reproduces Table IV: the tdp σ for LE3 at each overlay budget
// plus SADP and EUV, all at array size n.
func SigmaSweep(p tech.Process, m analytic.Params, cm extract.CapModel, n int, olBudgets []float64, cfg Config) ([]SigmaSweepRow, error) {
	var rows []SigmaSweepRow
	for _, ol := range olBudgets {
		res, err := TdpDistribution(p.WithOL(ol), litho.LE3, m, cm, n, cfg)
		if err != nil {
			return nil, fmt.Errorf("mc: LE3 @OL=%g: %w", ol, err)
		}
		rows = append(rows, SigmaSweepRow{Option: litho.LE3, OL: ol, Sigma: res.Summary.Std, Mean: res.Summary.Mean})
	}
	for _, o := range []litho.Option{litho.SADP, litho.EUV} {
		res, err := TdpDistribution(p, o, m, cm, n, cfg)
		if err != nil {
			return nil, fmt.Errorf("mc: %v: %w", o, err)
		}
		rows = append(rows, SigmaSweepRow{Option: o, Sigma: res.Summary.Std, Mean: res.Summary.Mean})
	}
	return rows, nil
}
