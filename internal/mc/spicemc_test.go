package mc

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"mpsram/internal/extract"
	"mpsram/internal/litho"
	"mpsram/internal/sram"
	"mpsram/internal/tech"
)

// spiceMCCfg keeps the SPICE-in-the-loop tests affordable: tiny arrays and
// a trial budget of a few dozen transients total.
var spiceMCSizes = []int{4, 8}

func spiceMCCfg(samples, workers int) Config {
	return Config{Samples: samples, Seed: 2015, Workers: workers}
}

func runSpiceMC(t *testing.T, ctx context.Context, cfg Config) (*VectorResult, error) {
	t.Helper()
	return SpiceTdpAcrossSizes(ctx, tech.N10(), litho.EUV, extract.SakuraiTamaru{},
		spiceMCSizes, sram.BuildOptions{}, sram.SimOptions{}, cfg)
}

func TestSpiceTdpAcrossSizesBitIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("SPICE-in-the-loop MC in -short mode")
	}
	r1, err := runSpiceMC(t, context.Background(), spiceMCCfg(10, 1))
	if err != nil {
		t.Fatal(err)
	}
	r8, err := runSpiceMC(t, context.Background(), spiceMCCfg(10, 8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Stats, r8.Stats) {
		t.Fatalf("Welford stats differ between 1 and 8 workers:\n%+v\n%+v", r1.Stats, r8.Stats)
	}
	if !reflect.DeepEqual(r1.Quantiles, r8.Quantiles) {
		t.Fatal("P² sketches differ between 1 and 8 workers")
	}
	if r1.Rejected != r8.Rejected {
		t.Fatalf("rejected %d vs %d", r1.Rejected, r8.Rejected)
	}
	// Sanity on the physics: a perturbed EUV read must move td, so the
	// spread at each size is positive and finite.
	for j := range spiceMCSizes {
		s := r1.Summary(j)
		if !(s.Std > 0) || s.Std > 100 {
			t.Fatalf("size %d: implausible tdp spread %+v", spiceMCSizes[j], s)
		}
	}
}

// TestSpiceTdpAcrossSizesMatchesSerialTrialLoop pins the engine plumbing
// to ground truth: the parallel WorkerState path must reproduce, trial by
// trial, what one fresh builder evaluating the same seeded draws computes
// serially.
func TestSpiceTdpAcrossSizesMatchesSerialTrialLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("SPICE-in-the-loop MC in -short mode")
	}
	const samples = 8
	cfg := spiceMCCfg(samples, 4)
	cfg.Collect = true
	res, err := runSpiceMC(t, context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	p, cm := tech.N10(), extract.SakuraiTamaru{}
	b := sram.NewColumnBuilder(p, cm)
	nomTd, err := b.NominalTds(spiceMCSizes, sram.BuildOptions{}, sram.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	trial := b.TrialFunc(litho.EUV, spiceMCSizes, nomTd, sram.BuildOptions{}, sram.SimOptions{})
	rng := rand.New(rand.NewSource(0))
	out := make([]float64, len(spiceMCSizes))
	var want [][]float64
	for i := 0; i < samples; i++ {
		rng.Seed(trialSeed(cfg.Seed, i))
		if !trial(rng, out) {
			continue
		}
		want = append(want, append([]float64(nil), out...))
	}
	if got := res.Accepted(); got != len(want) {
		t.Fatalf("accepted %d, serial loop accepted %d", got, len(want))
	}
	for k := range want {
		for j := range spiceMCSizes {
			if res.Values[j][k] != want[k][j] {
				t.Fatalf("trial %d size %d: parallel %v vs serial %v",
					k, spiceMCSizes[j], res.Values[j][k], want[k][j])
			}
		}
	}
}

func TestSpiceTdpAcrossSizesCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("SPICE-in-the-loop MC in -short mode")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := spiceMCCfg(768, 2)
	var (
		mu       sync.Mutex
		lastDone int
		total    int
	)
	cfg.Progress = func(done, tot int) {
		mu.Lock()
		defer mu.Unlock()
		// Partial-progress invariant: serialized, strictly increasing,
		// never past the total.
		if done <= lastDone || done > tot {
			t.Errorf("progress went %d -> %d of %d", lastDone, done, tot)
		}
		lastDone, total = done, tot
		cancel()
	}
	start := time.Now()
	// Coarse-step trials (forced 1 ps step, tiny column) keep the
	// block-granular cancellation latency cheap: accuracy is irrelevant
	// here, only the engine's control flow.
	_, err := SpiceTdpAcrossSizes(ctx, tech.N10(), litho.EUV, extract.SakuraiTamaru{},
		[]int{2}, sram.BuildOptions{}, sram.SimOptions{Dt: 1e-12}, cfg)
	if err == nil {
		t.Fatal("canceled run returned no error")
	}
	mu.Lock()
	defer mu.Unlock()
	if lastDone == 0 || lastDone >= total {
		t.Fatalf("expected a partial run, got %d of %d", lastDone, total)
	}
	// Promptness: one block after the cancel at most, not the full 600
	// trials (which would take minutes).
	if elapsed := time.Since(start); elapsed > 2*time.Minute {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

func TestSpiceTdpAcrossSizesValidatesInputs(t *testing.T) {
	if _, err := SpiceTdpAcrossSizes(context.Background(), tech.N10(), litho.EUV,
		nil, spiceMCSizes, sram.BuildOptions{}, sram.SimOptions{}, spiceMCCfg(4, 1)); err == nil {
		t.Fatal("nil capacitance model accepted")
	}
	if _, err := SpiceTdpAcrossSizes(context.Background(), tech.N10(), litho.EUV,
		extract.SakuraiTamaru{}, nil, sram.BuildOptions{}, sram.SimOptions{}, spiceMCCfg(4, 1)); err == nil {
		t.Fatal("empty size list accepted")
	}
}

// TestSpiceAndAnalyticConsumeIdenticalDraws pins the draw-for-draw
// comparability contract: for the same seeded PRNG state, the analytic
// path's SampleRatios and the SPICE-MC path's litho.Draw + VarRatios must
// produce bit-identical ratios (both are views over the one canonical
// litho.Draw stream).
func TestSpiceAndAnalyticConsumeIdenticalDraws(t *testing.T) {
	p, cm := tech.N10(), extract.SakuraiTamaru{}
	for _, o := range litho.Options {
		params := litho.Params(p, o)
		rngA := rand.New(rand.NewSource(0))
		rngB := rand.New(rand.NewSource(0))
		for i := 0; i < 50; i++ {
			seed := trialSeed(2015, i)
			rngA.Seed(seed)
			rngB.Seed(seed)
			ra, okA := SampleRatios(p, o, cm, rngA)
			rb, errB := extract.VarRatios(p, o, litho.Draw(params, rngB), cm)
			okB := errB == nil
			if okA != okB {
				t.Fatalf("%v trial %d: analytic ok=%v, spice-path ok=%v", o, i, okA, okB)
			}
			if okA && ra != rb {
				t.Fatalf("%v trial %d: ratios diverge: %+v vs %+v", o, i, ra, rb)
			}
		}
	}
}
