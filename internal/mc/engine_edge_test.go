package mc

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"mpsram/internal/stats"
)

// TestRunVectorSingleBlock pins the single-block degenerate case
// (samples < blockSize): the merged streaming state must equal a directly
// built accumulator — the block merge is a pure copy, no distortion.
func TestRunVectorSingleBlock(t *testing.T) {
	const n = 100 // < blockSize
	cfg := Config{Samples: n, Seed: 7, Workers: 4}
	res, err := RunVector(context.Background(), cfg, 1, func(rng *rand.Rand, out []float64) bool {
		out[0] = rng.NormFloat64()
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	var wantW stats.Welford
	wantQ := newQuantileSketch()
	rng := rand.New(rand.NewSource(0))
	for i := 0; i < n; i++ {
		rng.Seed(trialSeed(cfg.Seed, i))
		v := rng.NormFloat64()
		wantW.Add(v)
		wantQ.P05.Add(v)
		wantQ.Median.Add(v)
		wantQ.P95.Add(v)
	}
	if !reflect.DeepEqual(res.Stats[0], wantW) {
		t.Fatalf("single-block Welford differs: %+v vs %+v", res.Stats[0], wantW)
	}
	if !reflect.DeepEqual(res.Quantiles[0], wantQ) {
		t.Fatal("single-block quantile sketch differs from a directly built one")
	}
}

// TestRunVectorRejectedOnlyBlocks: a block whose every trial is rejected
// contributes empty accumulators and empty sketches; merging them must be
// a no-op and the final summary NaN-free. A trial cannot see its own
// index, but its first draw is a pure function of (Seed, i), so the test
// precomputes the draws of block 0 and rejects exactly those.
func TestRunVectorRejectedOnlyBlocks(t *testing.T) {
	const seed = 3
	rejectSet := make(map[float64]bool, 256)
	rng := rand.New(rand.NewSource(0))
	for i := 0; i < 256; i++ {
		rng.Seed(trialSeed(seed, i))
		rejectSet[rng.NormFloat64()] = true
	}
	res, err := RunVector(context.Background(), Config{Samples: 2 * 256, Seed: seed, Workers: 2}, 1,
		func(rng *rand.Rand, out []float64) bool {
			v := rng.NormFloat64()
			if rejectSet[v] {
				return false
			}
			out[0] = v
			return true
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 256 {
		t.Fatalf("rejected %d, want the whole first block (256)", res.Rejected)
	}
	if got := res.Accepted(); got != 256 {
		t.Fatalf("accepted %d, want 256", got)
	}
	s := res.Summary(0)
	for name, v := range map[string]float64{
		"mean": s.Mean, "std": s.Std, "min": s.Min, "max": s.Max,
		"p05": s.P05, "median": s.Median, "p95": s.P95,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("summary %s is %v after a rejected-only block", name, v)
		}
	}
}

// TestRunVectorObservableCountBounds: nobs < 1 must error, not panic —
// including negative values.
func TestRunVectorObservableCountBounds(t *testing.T) {
	for _, nobs := range []int{0, -1, -100} {
		if _, err := RunVector(context.Background(), Config{Samples: 4, Seed: 1}, nobs, gauss1); err == nil {
			t.Fatalf("nobs=%d accepted", nobs)
		}
	}
}

// TestRunVectorAllRejectedCollect: the zero-accepted error path with value
// collection on (the Values assembly must not run on an empty result).
func TestRunVectorAllRejectedCollect(t *testing.T) {
	_, err := RunVector(context.Background(), Config{Samples: 300, Seed: 1, Collect: true, Workers: 4}, 2,
		func(rng *rand.Rand, out []float64) bool { return false })
	if err == nil {
		t.Fatal("all-rejected collecting run must error")
	}
}

// TestQuantileSketchMergeEdges drives QuantileSketch.merge through the
// degenerate combinations the block merge can produce: empty+empty,
// empty+formed, formed+empty, and below-formation pairs.
func TestQuantileSketchMergeEdges(t *testing.T) {
	build := func(vals ...float64) QuantileSketch {
		q := newQuantileSketch()
		for _, v := range vals {
			q.P05.Add(v)
			q.Median.Add(v)
			q.P95.Add(v)
		}
		return q
	}

	// empty + empty: stays empty, quantile NaN by contract.
	e := build()
	e.merge(build())
	if e.Median.N() != 0 || !math.IsNaN(e.Median.Quantile()) {
		t.Fatalf("empty+empty: n=%d q=%v", e.Median.N(), e.Median.Quantile())
	}

	// empty + formed: exact copy.
	formed := build(1, 2, 3, 4, 5, 6, 7)
	e = build()
	e.merge(formed)
	if !reflect.DeepEqual(e, formed) {
		t.Fatal("empty+formed is not a copy")
	}

	// formed + empty: no-op.
	before := formed
	formed.merge(build())
	if !reflect.DeepEqual(formed, before) {
		t.Fatal("formed+empty changed the sketch")
	}

	// below-formation pair (total ≤ 5): exact, order-insensitive values.
	a := build(3, 1)
	a.merge(build(2))
	if got := a.Median.Quantile(); got != 2 {
		t.Fatalf("exact small merge median = %v, want 2", got)
	}
	if a.Median.N() != 3 {
		t.Fatalf("small merge n = %d", a.Median.N())
	}

	// constant streams: merge of two formed all-equal sketches must stay
	// finite and equal to the constant.
	c := build(5, 5, 5, 5, 5, 5)
	c.merge(build(5, 5, 5, 5, 5, 5, 5))
	if got := c.Median.Quantile(); got != 5 {
		t.Fatalf("constant merge median = %v, want 5", got)
	}
	if got := c.P95.Quantile(); math.IsNaN(got) || got != 5 {
		t.Fatalf("constant merge p95 = %v, want 5", got)
	}
}
