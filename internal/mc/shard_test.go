package mc

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"mpsram/internal/stats"
)

// encodeResult renders a VectorResult through the stats codecs — the
// NaN-safe canonical form used for bit-identity comparisons.
func encodeResult(r *VectorResult) []byte {
	var b []byte
	for _, w := range r.Stats {
		b = w.AppendBinary(b)
	}
	for _, q := range r.Quantiles {
		b = appendSketch(b, q)
	}
	for _, vs := range r.Values {
		for _, v := range vs {
			b = stats.AppendF64(b, v)
		}
	}
	b = append(b, byte(r.Rejected), byte(r.Rejected>>8))
	return b
}

// shardedRun executes cfg as `count` shards with the given worker count,
// round-trips every artifact through the payload codec, and reduces.
func shardedRun(t *testing.T, cfg Config, count, workers, nobs int, f VectorFunc) *VectorResult {
	t.Helper()
	parts := make([]*ShardPayload, count)
	for i := 0; i < count; i++ {
		sr, err := NewShardRun(ShardSpec{Index: i, Count: count})
		if err != nil {
			t.Fatal(err)
		}
		scfg := cfg
		scfg.Workers = workers
		scfg.Shard = sr
		if _, err := RunVector(context.Background(), scfg, nobs, f); err != nil {
			t.Fatalf("shard %d/%d: %v", i, count, err)
		}
		p, err := DecodeShardPayload(sr.EncodePayload())
		if err != nil {
			t.Fatalf("shard %d payload round trip: %v", i, err)
		}
		parts[i] = p
	}
	rp, err := NewReplay(parts)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := cfg
	rcfg.Replay = rp
	res, err := RunVector(context.Background(), rcfg, nobs, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := rp.Done(); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestShardReduceBitIdentical is the tentpole gate: reduce(shards) must
// be bit-identical to the single-process run for multiple partitions and
// per-shard worker counts, in both streaming and collect modes.
func TestShardReduceBitIdentical(t *testing.T) {
	f := func(rng *rand.Rand, out []float64) bool {
		if rng.Float64() < 0.02 {
			return false
		}
		out[0] = rng.NormFloat64()
		out[1] = rng.ExpFloat64()
		return true
	}
	for _, collect := range []bool{false, true} {
		cfg := Config{Samples: 1100, Seed: 7, Collect: collect}
		direct, err := RunVector(context.Background(), cfg, 2, f)
		if err != nil {
			t.Fatal(err)
		}
		want := encodeResult(direct)
		for _, count := range []int{1, 3} {
			for _, workers := range []int{1, 8} {
				got := shardedRun(t, cfg, count, workers, 2, f)
				if !reflect.DeepEqual(encodeResult(got), want) {
					t.Fatalf("collect=%t %d shards × %d workers: reduce diverges from single-process", collect, count, workers)
				}
				if collect && !reflect.DeepEqual(got.Values, direct.Values) {
					t.Fatalf("collect=%t %d shards × %d workers: collected values diverge", collect, count, workers)
				}
			}
		}
	}
}

// TestShardReducePairedBitIdentical covers the control-variate path.
func TestShardReducePairedBitIdentical(t *testing.T) {
	f := func(_ any, rng *rand.Rand, y, x []float64) bool {
		v := rng.NormFloat64()
		x[0] = v
		y[0] = 2*v + 0.1*rng.NormFloat64()
		return true
	}
	cfg := Config{Samples: 900, Seed: 3}
	direct, err := RunVectorPaired(context.Background(), cfg, 1, f)
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for _, c := range direct.CV {
		want = c.AppendBinary(want)
	}
	for _, count := range []int{1, 3} {
		for _, workers := range []int{1, 8} {
			parts := make([]*ShardPayload, count)
			for i := 0; i < count; i++ {
				sr, _ := NewShardRun(ShardSpec{Index: i, Count: count})
				scfg := cfg
				scfg.Workers = workers
				scfg.Shard = sr
				if _, err := RunVectorPaired(context.Background(), scfg, 1, f); err != nil {
					t.Fatal(err)
				}
				p, err := DecodeShardPayload(sr.EncodePayload())
				if err != nil {
					t.Fatal(err)
				}
				parts[i] = p
			}
			rp, err := NewReplay(parts)
			if err != nil {
				t.Fatal(err)
			}
			rcfg := cfg
			rcfg.Replay = rp
			res, err := RunVectorPaired(context.Background(), rcfg, 1, f)
			if err != nil {
				t.Fatal(err)
			}
			var got []byte
			for _, c := range res.CV {
				got = c.AppendBinary(got)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%d shards × %d workers: paired reduce diverges", count, workers)
			}
			if !reflect.DeepEqual(encodeResult(&res.VectorResult), encodeResult(&direct.VectorResult)) {
				t.Fatalf("%d shards × %d workers: paired primary view diverges", count, workers)
			}
		}
	}
}

// TestShardMultiStream: a run comprising several engine invocations (the
// registry norm — SigmaSurface runs one stream per option) captures and
// replays each stream by invocation order.
func TestShardMultiStream(t *testing.T) {
	run := func(cfg Config) ([]*VectorResult, error) {
		var out []*VectorResult
		for _, seed := range []int64{11, 12, 13} {
			c := cfg
			c.Seed = seed
			r, err := RunVector(context.Background(), c, 1, func(rng *rand.Rand, o []float64) bool {
				o[0] = rng.NormFloat64()
				return true
			})
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
		return out, nil
	}
	direct, err := run(Config{Samples: 700})
	if err != nil {
		t.Fatal(err)
	}
	const count = 3
	parts := make([]*ShardPayload, count)
	for i := 0; i < count; i++ {
		sr, _ := NewShardRun(ShardSpec{Index: i, Count: count})
		if _, err := run(Config{Samples: 700, Shard: sr}); err != nil {
			t.Fatal(err)
		}
		if parts[i], err = DecodeShardPayload(sr.EncodePayload()); err != nil {
			t.Fatal(err)
		}
	}
	rp, err := NewReplay(parts)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := run(Config{Samples: 700, Replay: rp})
	if err != nil {
		t.Fatal(err)
	}
	if err := rp.Done(); err != nil {
		t.Fatal(err)
	}
	for s := range direct {
		if !reflect.DeepEqual(encodeResult(reduced[s]), encodeResult(direct[s])) {
			t.Fatalf("stream %d diverges after multi-stream reduce", s)
		}
	}
}

// TestShardCheckpointResume is the kill-mid-run gate at the engine
// boundary: cancel a shard run partway, persist its payload, resume from
// the decoded checkpoint, and require (a) the final artifact equals an
// uninterrupted shard run's bit for bit, and (b) the resumed leg
// re-executes no trial below the checkpoint frontier and every trial at
// or after it exactly once — the torn-block invariant.
func TestShardCheckpointResume(t *testing.T) {
	const samples = 2000
	const seed = 5
	plain := func(rng *rand.Rand, out []float64) bool {
		out[0] = rng.NormFloat64()
		return true
	}

	// Uninterrupted reference shard run.
	ref, _ := NewShardRun(ShardSpec{Index: 0, Count: 1})
	if _, err := RunVector(context.Background(), Config{Samples: samples, Seed: seed, Workers: 2, Shard: ref}, 1, plain); err != nil {
		t.Fatal(err)
	}
	want := ref.EncodePayload()

	// Killed run: cancel mid-stream, keep whatever the frontier reached.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var seen atomic.Int32
	killed, _ := NewShardRun(ShardSpec{Index: 0, Count: 1})
	_, err := RunVector(ctx, Config{Samples: samples, Seed: seed, Workers: 2, Shard: killed}, 1, func(rng *rand.Rand, out []float64) bool {
		out[0] = rng.NormFloat64()
		if seen.Add(1) == 700 {
			cancel()
		}
		return true
	})
	if err == nil {
		t.Fatal("canceled shard run reported success")
	}
	if !strings.Contains(err.Error(), "canceled after") {
		t.Fatalf("unexpected cancel error: %v", err)
	}
	ckpt, err := DecodeShardPayload(killed.EncodePayload())
	if err != nil {
		t.Fatal(err)
	}
	frontier := len(ckpt.streams[0].recs)
	if frontier == 0 || frontier >= (samples+blockSize-1)/blockSize {
		t.Fatalf("checkpoint frontier %d not strictly mid-run", frontier)
	}

	// Resume. The trial function fingerprints each trial by its first
	// draw, which is a pure function of (seed, trial index) — so the
	// histogram of executed trials directly witnesses the invariant.
	resumed, err := ResumeShardRun(ShardSpec{Index: 0, Count: 1}, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	var counts [samples]atomic.Int32
	firstDraw := make(map[float64]int, samples)
	{
		probe := rand.New(rand.NewSource(0))
		for i := 0; i < samples; i++ {
			probe.Seed(trialSeed(seed, i))
			firstDraw[probe.NormFloat64()] = i
		}
	}
	_, err = RunVector(context.Background(), Config{Samples: samples, Seed: seed, Workers: 2, Shard: resumed}, 1, func(rng *rand.Rand, out []float64) bool {
		v := rng.NormFloat64()
		out[0] = v
		if i, ok := firstDraw[v]; ok {
			counts[i].Add(1)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < samples; i++ {
		got := counts[i].Load()
		if i < frontier*blockSize && got != 0 {
			t.Fatalf("trial %d below the frontier (%d blocks) re-executed %d times on resume", i, frontier, got)
		}
		if i >= frontier*blockSize && got != 1 {
			t.Fatalf("trial %d at/after the frontier executed %d times on resume, want exactly 1", i, got)
		}
	}
	if !reflect.DeepEqual(resumed.EncodePayload(), want) {
		t.Fatal("kill + resume payload differs from the uninterrupted run")
	}
}

// TestShardCancelCountMatchesFrontier pins the partial-progress
// invariant: the trial count in the cancellation error equals the trials
// of the contiguous emitted prefix — the exact set a checkpoint persists
// — never including torn or unmerged out-of-order blocks.
func TestShardCancelCountMatchesFrontier(t *testing.T) {
	const samples = 3000
	ctx, cancel := context.WithCancel(context.Background())
	var seen atomic.Int32
	sr, _ := NewShardRun(ShardSpec{Index: 0, Count: 1})
	_, err := RunVector(ctx, Config{Samples: samples, Seed: 9, Workers: 4, Shard: sr}, 1, func(rng *rand.Rand, out []float64) bool {
		out[0] = rng.NormFloat64()
		if seen.Add(1) == 1200 {
			cancel()
		}
		return true
	})
	if err == nil {
		t.Fatal("canceled run reported success")
	}
	p, derr := DecodeShardPayload(sr.EncodePayload())
	if derr != nil {
		t.Fatal(derr)
	}
	frontierTrials := 0
	for _, rec := range p.streams[0].recs {
		lo, hi := blockBounds(rec.Block, samples)
		frontierTrials += hi - lo
	}
	if want := fmtCanceled(frontierTrials, samples); !strings.Contains(err.Error(), want) {
		t.Fatalf("cancel error %q does not report the frontier count (%s)", err, want)
	}
}

// fmtCanceled renders the engine's cancellation count fragment.
func fmtCanceled(done, total int) string {
	return fmt.Sprintf("canceled after %d of %d trials", done, total)
}

// TestShardPayloadRejects pins the artifact-robustness contract:
// version-mismatched, truncated and trailing-garbage payloads refuse to
// decode.
func TestShardPayloadRejects(t *testing.T) {
	sr, _ := NewShardRun(ShardSpec{Index: 0, Count: 1})
	if _, err := RunVector(context.Background(), Config{Samples: 300, Seed: 1, Shard: sr}, 1, func(rng *rand.Rand, out []float64) bool {
		out[0] = rng.NormFloat64()
		return true
	}); err != nil {
		t.Fatal(err)
	}
	good := sr.EncodePayload()
	if _, err := DecodeShardPayload(good); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	bad[0] = 99
	if _, err := DecodeShardPayload(bad); err == nil {
		t.Fatal("decoded a foreign payload version")
	}
	bad = append([]byte(nil), good...)
	bad[9] = 99 // stream header version byte
	if _, err := DecodeShardPayload(bad); err == nil {
		t.Fatal("decoded a foreign stream header version")
	}
	for _, cut := range []int{0, 1, 5, 9, len(good) / 2, len(good) - 1} {
		if _, err := DecodeShardPayload(good[:cut]); err == nil {
			t.Fatalf("decoded a %d-byte truncation", cut)
		}
	}
	if _, err := DecodeShardPayload(append(append([]byte(nil), good...), 0)); err == nil {
		t.Fatal("decoded trailing garbage")
	}
}

// TestReplayValidation: the reducer refuses drifted runs — wrong seed,
// missing shards, incomplete artifacts, leftover streams.
func TestReplayValidation(t *testing.T) {
	f := func(rng *rand.Rand, out []float64) bool {
		out[0] = rng.NormFloat64()
		return true
	}
	mkPart := func(i, count int, cfg Config) *ShardPayload {
		sr, _ := NewShardRun(ShardSpec{Index: i, Count: count})
		c := cfg
		c.Shard = sr
		if _, err := RunVector(context.Background(), c, 1, f); err != nil {
			t.Fatal(err)
		}
		p, err := DecodeShardPayload(sr.EncodePayload())
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	cfg := Config{Samples: 600, Seed: 2}

	// Seed drift between artifact and reduce run.
	rp, err := NewReplay([]*ShardPayload{mkPart(0, 1, cfg)})
	if err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Seed = 3
	bad.Replay = rp
	if _, err := RunVector(context.Background(), bad, 1, f); err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("seed drift not rejected: %v", err)
	}

	// Missing shard: only one of two partitions supplied.
	if _, err := NewReplay([]*ShardPayload{mkPart(0, 2, cfg)}); err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Fatalf("missing shard not rejected: %v", err)
	}

	// Leftover stream: the reduce run performs fewer engine invocations
	// than the shards recorded.
	rp2, err := NewReplay([]*ShardPayload{mkPart(0, 1, cfg)})
	if err != nil {
		t.Fatal(err)
	}
	if err := rp2.Done(); err == nil || !strings.Contains(err.Error(), "consumed 0 of 1") {
		t.Fatalf("leftover stream not reported: %v", err)
	}

	// Exhausted replay: more invocations than recorded.
	rp3, _ := NewReplay([]*ShardPayload{mkPart(0, 1, cfg)})
	good := cfg
	good.Replay = rp3
	if _, err := RunVector(context.Background(), good, 1, f); err != nil {
		t.Fatal(err)
	}
	if _, err := RunVector(context.Background(), good, 1, f); err == nil || !strings.Contains(err.Error(), "exhausted") {
		t.Fatalf("exhausted replay not rejected: %v", err)
	}
}

// TestShardEmptyRange: more shards than blocks — the surplus shard's
// range is empty, its run must succeed with an empty (not erroring)
// partial result, and the reduce must still be exact.
func TestShardEmptyRange(t *testing.T) {
	f := func(rng *rand.Rand, out []float64) bool {
		out[0] = rng.NormFloat64()
		return true
	}
	cfg := Config{Samples: 300, Seed: 4} // 2 blocks, 5 shards
	direct, err := RunVector(context.Background(), cfg, 1, f)
	if err != nil {
		t.Fatal(err)
	}
	const count = 5
	parts := make([]*ShardPayload, count)
	for i := 0; i < count; i++ {
		sr, _ := NewShardRun(ShardSpec{Index: i, Count: count})
		c := cfg
		c.Shard = sr
		res, err := RunVector(context.Background(), c, 1, f)
		if err != nil {
			t.Fatalf("empty-range shard %d errored: %v", i, err)
		}
		_ = res
		if parts[i], err = DecodeShardPayload(sr.EncodePayload()); err != nil {
			t.Fatal(err)
		}
	}
	rp, err := NewReplay(parts)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := cfg
	rcfg.Replay = rp
	got, err := RunVector(context.Background(), rcfg, 1, f)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(encodeResult(got), encodeResult(direct)) {
		t.Fatal("empty-range partition diverges from single-process")
	}
}

// TestShardSpecValidate covers the coordinate guards.
func TestShardSpecValidate(t *testing.T) {
	for _, s := range []ShardSpec{{0, 0}, {-1, 3}, {3, 3}, {5, 2}} {
		if err := s.Validate(); err == nil {
			t.Fatalf("spec %+v validated", s)
		}
	}
	if err := (ShardSpec{Index: 2, Count: 3}).Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestShardFrontierAccessors pins the external progress surface: the
// live ShardRun frontier after a completed run covers exactly the
// shard's trial range, and the at-rest payload (what the serve layer's
// child-process poller reads) reports the identical frontier.
func TestShardFrontierAccessors(t *testing.T) {
	f := func(rng *rand.Rand, out []float64) bool {
		out[0] = rng.NormFloat64()
		return true
	}
	spec := ShardSpec{Index: 0, Count: 2}
	sr, err := NewShardRun(spec)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Spec() != spec {
		t.Fatalf("Spec() %+v, want %+v", sr.Spec(), spec)
	}
	cfg := Config{Samples: 1100, Seed: 7, Workers: 1, Shard: sr}
	if _, err := RunVector(context.Background(), cfg, 1, f); err != nil {
		t.Fatal(err)
	}
	done, total := sr.Frontier()
	if done != total || done <= 0 || done >= 1100 {
		t.Fatalf("completed shard frontier (%d, %d): want equal, positive, a strict partial of 1100", done, total)
	}
	p, err := DecodeShardPayload(sr.EncodePayload())
	if err != nil {
		t.Fatal(err)
	}
	if pd, pt := p.Frontier(spec); pd != done || pt != total {
		t.Fatalf("payload frontier (%d, %d) != live frontier (%d, %d)", pd, pt, done, total)
	}
}
