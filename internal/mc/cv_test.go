package mc

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// pairedTestFunc is a cheap synthetic paired trial: the control is a
// Gaussian draw, the primary is a correlated transform of the same draw
// plus independent noise — the structure of the SPICE/analytic pair
// without the transients.
func pairedTestFunc(rejectEvery int) PairedStateVectorFunc {
	return func(_ any, rng *rand.Rand, y, x []float64) bool {
		base := rng.NormFloat64()
		noise := rng.NormFloat64()
		if rejectEvery > 0 && int(math.Abs(base*1e6))%rejectEvery == 0 {
			return false
		}
		for j := range y {
			x[j] = base * float64(j+1)
			y[j] = 2*x[j] + 1 + 0.2*noise
		}
		return true
	}
}

// TestRunVectorPairedBitIdenticalAcrossWorkers is the CV determinism
// gate: every paired moment — and hence β̂, ρ̂, the corrected estimators
// and the variance-reduction factor — must be exactly identical for
// Workers ∈ {1, 8}.
func TestRunVectorPairedBitIdenticalAcrossWorkers(t *testing.T) {
	var ref *CVVectorResult
	for _, w := range []int{1, 8} {
		res, err := RunVectorPaired(context.Background(),
			Config{Samples: 2000, Seed: 42, Workers: w}, 2, pairedTestFunc(17))
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Rejected != ref.Rejected {
			t.Fatalf("workers=%d: rejected %d != %d", w, res.Rejected, ref.Rejected)
		}
		for j := range res.CV {
			if res.CV[j] != ref.CV[j] {
				t.Fatalf("workers=%d obs %d: CV accumulator drifted:\n%+v\n%+v",
					w, j, res.CV[j], ref.CV[j])
			}
			if res.Stats[j] != ref.Stats[j] {
				t.Fatalf("workers=%d obs %d: primary stats drifted", w, j)
			}
			if res.Quantiles[j] != ref.Quantiles[j] {
				t.Fatalf("workers=%d obs %d: quantile sketches drifted", w, j)
			}
			// Summary equality modulo the NaN Skew field (NaN ≠ NaN).
			a, b := res.CVSummary(j, 0, 1), ref.CVSummary(j, 0, 1)
			a.Plain.Skew, b.Plain.Skew = 0, 0
			if a != b {
				t.Fatalf("workers=%d obs %d: CV summary drifted:\n%+v\n%+v", w, j, a, b)
			}
		}
	}
}

// TestRunVectorPairedMatchesPlainPrimary: the primary-side statistics of
// the paired path must be bit-identical to a plain RunVector over the
// same primary stream — the control rides along without perturbing the
// deviates or the aggregation.
func TestRunVectorPairedMatchesPlainPrimary(t *testing.T) {
	cfg := Config{Samples: 1500, Seed: 2015, Workers: 4}
	paired, err := RunVectorPaired(context.Background(), cfg, 2, pairedTestFunc(0))
	if err != nil {
		t.Fatal(err)
	}
	f := pairedTestFunc(0)
	plain, err := RunVector(context.Background(), cfg, 2, func(rng *rand.Rand, out []float64) bool {
		x := make([]float64, len(out))
		return f(nil, rng, out, x)
	})
	if err != nil {
		t.Fatal(err)
	}
	for j := range plain.Stats {
		if paired.Stats[j] != plain.Stats[j] {
			t.Fatalf("obs %d: paired primary stats != plain stats", j)
		}
		if paired.Quantiles[j] != plain.Quantiles[j] {
			t.Fatalf("obs %d: paired quantiles != plain quantiles", j)
		}
	}
	// The synthetic pair is strongly correlated: the measured variance
	// reduction must be material and the regression slope recovered.
	for j := range paired.CV {
		s := paired.CVSummary(j, 0, float64(j+1))
		if s.Rho < 0.95 {
			t.Fatalf("obs %d: ρ̂ = %v, want strongly correlated pair", j, s.Rho)
		}
		if s.VarReduction < 5 || s.EffectiveN < 5*float64(cfg.Samples) {
			t.Fatalf("obs %d: weak variance reduction %v (ess %v)", j, s.VarReduction, s.EffectiveN)
		}
		if math.Abs(s.Beta-2) > 0.05 {
			t.Fatalf("obs %d: β̂ = %v, want ≈ 2", j, s.Beta)
		}
		// Corrected std with the true control σ: y = 2x + 1 + 0.2ε →
		// σy = √(4σx² + 0.04).
		want := math.Sqrt(4*float64(j+1)*float64(j+1) + 0.04)
		if math.Abs(s.Std/want-1) > 0.05 {
			t.Fatalf("obs %d: corrected σ %v, want ≈ %v", j, s.Std, want)
		}
	}
}

// TestRunVectorPairedRejectsBadConfig covers the argument guards.
func TestRunVectorPairedRejectsBadConfig(t *testing.T) {
	f := pairedTestFunc(0)
	if _, err := RunVectorPaired(nil, Config{Samples: 0}, 1, f); err == nil {
		t.Fatal("zero samples accepted")
	}
	if _, err := RunVectorPaired(nil, Config{Samples: 10}, 0, f); err == nil {
		t.Fatal("zero observables accepted")
	}
	if _, err := RunVectorPaired(nil, Config{Samples: 10, Collect: true}, 1, f); err == nil {
		t.Fatal("Collect accepted on the streaming-only paired path")
	}
	reject := func(_ any, _ *rand.Rand, _, _ []float64) bool { return false }
	if _, err := RunVectorPaired(nil, Config{Samples: 10}, 1, reject); err == nil {
		t.Fatal("all-rejected run must error")
	}
}

// TestRunVectorPairedCancel: cancellation between blocks surfaces as an
// error, like the plain engine.
func TestRunVectorPairedCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunVectorPaired(ctx, Config{Samples: 5000, Seed: 1, Workers: 2}, 1,
		pairedTestFunc(0)); err == nil {
		t.Fatal("canceled run returned no error")
	}
}
