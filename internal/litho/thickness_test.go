package litho

import (
	"math"
	"testing"

	"mpsram/internal/tech"
)

func TestThicknessExtensionOffByDefault(t *testing.T) {
	p := tech.N10()
	if p.Var.Thk3Sigma != 0 {
		t.Fatal("preset must keep the thickness extension disabled")
	}
	for _, o := range AllOptions {
		for _, prm := range Params(p, o) {
			if prm.Name == "THK" {
				t.Fatalf("%v: THK param present with extension disabled", o)
			}
		}
	}
}

func TestThicknessExtensionAddsParam(t *testing.T) {
	p := tech.N10()
	p.Var.Thk3Sigma = 2e-9
	for _, o := range AllOptions {
		found := false
		for _, prm := range Params(p, o) {
			if prm.Name == "THK" {
				found = true
				if math.Abs(prm.Sigma-2e-9/3) > 1e-18 {
					t.Fatalf("%v: THK sigma %g", o, prm.Sigma)
				}
			}
		}
		if !found {
			t.Fatalf("%v: THK param missing", o)
		}
	}
	// Unknown options still return nil.
	if Params(p, Option(42)) != nil {
		t.Fatal("unknown option grew params")
	}
}

func TestThicknessPropagatesToWindow(t *testing.T) {
	p := tech.N10()
	w, err := Realize(p, EUV, Sample{DThk: 1.5e-9})
	if err != nil {
		t.Fatal(err)
	}
	if w.DThk != 1.5e-9 {
		t.Fatalf("window DThk %g", w.DThk)
	}
	// Collapsing thickness is rejected.
	if _, err := Realize(p, EUV, Sample{DThk: -p.M1.Thickness}); err == nil {
		t.Fatal("metal collapse accepted")
	}
}
