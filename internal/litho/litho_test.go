package litho

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mpsram/internal/tech"
)

func TestOptionStrings(t *testing.T) {
	if LE3.String() != "LELELE" || SADP.String() != "SADP" || EUV.String() != "EUV" {
		t.Fatal("option names diverge from the paper's")
	}
	if Option(99).String() == "" || Mask(99).String() == "" || Net(99).String() == "" {
		t.Fatal("unknown enum values must still render")
	}
}

func TestNominalGeometryIdenticalAcrossOptions(t *testing.T) {
	p := tech.N10()
	for _, o := range Options {
		w, err := Realize(p, o, Nominal)
		if err != nil {
			t.Fatalf("%v nominal: %v", o, err)
		}
		v := w.VictimWire()
		if v.Net != NetBL {
			t.Fatalf("%v: victim net = %v, want BL", o, v.Net)
		}
		if math.Abs(v.Width()-p.M1.Width) > 1e-15 {
			t.Errorf("%v: nominal victim width %g, want %g", o, v.Width(), p.M1.Width)
		}
		if math.Abs(w.GapBelow()-p.M1.Space) > 1e-15 ||
			math.Abs(w.GapAbove()-p.M1.Space) > 1e-15 {
			t.Errorf("%v: nominal gaps %g/%g, want %g", o, w.GapBelow(), w.GapAbove(), p.M1.Space)
		}
		if math.Abs(v.Span.Center()) > 1e-15 {
			t.Errorf("%v: victim not centred at 0: %g", o, v.Span.Center())
		}
	}
}

func TestLE3MaskAssignment(t *testing.T) {
	p := tech.N10()
	w, err := Realize(p, LE3, Nominal)
	if err != nil {
		t.Fatal(err)
	}
	if w.VictimWire().Mask != MaskA {
		t.Fatalf("victim mask = %v, want A (paper: B and C aligned to A)", w.VictimWire().Mask)
	}
	if w.Below().Mask != MaskB || w.Above().Mask != MaskC {
		t.Fatalf("neighbour masks = %v/%v, want B/C", w.Below().Mask, w.Above().Mask)
	}
}

func TestLE3OverlayMovesOnlyItsMask(t *testing.T) {
	p := tech.N10()
	s := Sample{OLB: 5e-9}
	w, err := Realize(p, LE3, s)
	if err != nil {
		t.Fatal(err)
	}
	// Mask A (victim) stays put; mask B moves as a rigid comb.
	if math.Abs(w.VictimWire().Span.Center()) > 1e-15 {
		t.Fatal("overlay on B moved the mask-A victim")
	}
	if math.Abs(w.Below().Span.Center()-(-p.M1.Pitch+5e-9)) > 1e-15 {
		t.Fatalf("mask B centre = %g", w.Below().Span.Center())
	}
	// The gap below shrinks by exactly the overlay, the gap above is
	// untouched.
	if math.Abs(w.GapBelow()-(p.M1.Space-5e-9)) > 1e-15 {
		t.Fatalf("gap below = %g", w.GapBelow())
	}
	if math.Abs(w.GapAbove()-p.M1.Space) > 1e-15 {
		t.Fatalf("gap above = %g", w.GapAbove())
	}
}

func TestLE3CDAffectsAllLinesOfMask(t *testing.T) {
	p := tech.N10()
	w, err := Realize(p, LE3, Sample{CDA: 3e-9})
	if err != nil {
		t.Fatal(err)
	}
	for i, wr := range w.Wires {
		want := p.M1.Width
		if wr.Mask == MaskA {
			want += 3e-9
		}
		if math.Abs(wr.Width()-want) > 1e-15 {
			t.Fatalf("wire %d (%v) width %g, want %g", i, wr.Mask, wr.Width(), want)
		}
	}
}

func TestSADPSelfAlignment(t *testing.T) {
	p := tech.N10()
	// The victim is spacer-defined: its spacing to both neighbours is
	// exactly the spacer thickness, whatever the mandrel CD does.
	for _, dm := range []float64{-3e-9, 0, 3e-9} {
		w, err := Realize(p, SADP, Sample{CDCore: dm})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(w.GapBelow()-p.SADP.SpacerThk) > 1e-15 ||
			math.Abs(w.GapAbove()-p.SADP.SpacerThk) > 1e-15 {
			t.Fatalf("dm=%g: gaps %g/%g, want spacer %g",
				dm, w.GapBelow(), w.GapAbove(), p.SADP.SpacerThk)
		}
	}
}

func TestSADPAntiCorrelation(t *testing.T) {
	p := tech.N10()
	// Shrinking the mandrel widens the bit line and narrows the core
	// (power) line by the same amount: the paper's Rbl/RVSS
	// anti-correlation mechanism.
	w, err := Realize(p, SADP, Sample{CDCore: -3e-9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w.VictimWire().Width()-(p.M1.Width+3e-9)) > 1e-15 {
		t.Fatalf("victim width %g", w.VictimWire().Width())
	}
	if math.Abs(w.Below().Width()-(p.SADP.MandrelWidth-3e-9)) > 1e-15 {
		t.Fatalf("core width %g", w.Below().Width())
	}
}

func TestSADPPeriodConservationProperty(t *testing.T) {
	p := tech.N10()
	f := func(dmRaw, dtRaw float64) bool {
		// Keep deltas in a physically sane band.
		dm := math.Mod(math.Abs(dmRaw), 8e-9) - 4e-9
		dt := math.Mod(math.Abs(dtRaw), 6e-9) - 3e-9
		w, err := Realize(p, SADP, Sample{CDCore: dm, CDSpacer: dt})
		if err != nil {
			return true // collapsed geometry is allowed to error
		}
		// victim width + core width + 2 spacers == period
		sum := w.VictimWire().Width() + w.Below().Width() + w.GapBelow() + w.GapAbove()
		return math.Abs(sum-p.SADP.Period) < 1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEUVCommonCD(t *testing.T) {
	p := tech.N10()
	w, err := Realize(p, EUV, Sample{CDEUV: 3e-9})
	if err != nil {
		t.Fatal(err)
	}
	for i, wr := range w.Wires {
		if math.Abs(wr.Width()-(p.M1.Width+3e-9)) > 1e-15 {
			t.Fatalf("wire %d width %g", i, wr.Width())
		}
		if wr.Mask != MaskEUV {
			t.Fatalf("wire %d mask %v", i, wr.Mask)
		}
	}
	// All spacings shrink by the CD delta.
	if math.Abs(w.GapBelow()-(p.M1.Space-3e-9)) > 1e-15 {
		t.Fatalf("gap %g", w.GapBelow())
	}
}

func TestRealizeRejectsCollapsedGeometry(t *testing.T) {
	p := tech.N10()
	// Overlay so large the mask-B comb merges into the victim.
	if _, err := Realize(p, LE3, Sample{OLB: 25e-9}); err == nil {
		t.Fatal("expected merged-wire error")
	}
	// Spacer eats the whole gap line.
	if _, err := Realize(p, SADP, Sample{CDSpacer: 14e-9}); err == nil {
		t.Fatal("expected collapsed-gap error")
	}
	// Unknown option.
	if _, err := Realize(p, Option(42), Nominal); err == nil {
		t.Fatal("expected unknown-option error")
	}
}

func TestParamsAndCorners(t *testing.T) {
	p := tech.N10()
	wantCount := map[Option]int{LE3: 5, SADP: 2, EUV: 1}
	for o, k := range wantCount {
		prm := Params(p, o)
		if len(prm) != k {
			t.Fatalf("%v: %d params, want %d", o, len(prm), k)
		}
		corners := Corners(p, o)
		want := int(math.Pow(3, float64(k)))
		if len(corners) != want {
			t.Fatalf("%v: %d corners, want %d", o, len(corners), want)
		}
		// Corner values are in {−1,0,1}.
		for _, c := range corners {
			for _, v := range c {
				if v < -1 || v > 1 {
					t.Fatalf("%v: corner value %d", o, v)
				}
			}
		}
	}
	if Params(p, Option(42)) != nil {
		t.Fatal("unknown option must have no params")
	}
}

func TestParamsSigmaFromPaper(t *testing.T) {
	p := tech.N10()
	// 3σ CD = 3 nm ⇒ σ = 1 nm; 3σ spacer = 1.5 nm ⇒ σ = 0.5 nm;
	// 3σ OL = 8 nm (preset) ⇒ σ = 8/3 nm.
	sig := map[string]float64{}
	for _, o := range Options {
		for _, prm := range Params(p, o) {
			sig[prm.Name] = prm.Sigma
		}
	}
	if math.Abs(sig["CD_A"]-1e-9) > 1e-15 || math.Abs(sig["CD"]-1e-9) > 1e-15 {
		t.Fatalf("CD sigma: %v", sig)
	}
	if math.Abs(sig["CD_spacer"]-0.5e-9) > 1e-15 {
		t.Fatalf("spacer sigma: %v", sig)
	}
	if math.Abs(sig["OL_B"]-8e-9/3) > 1e-15 {
		t.Fatalf("OL sigma: %v", sig)
	}
	// Table IV sweep hook: overlay sigma follows WithOL.
	p3 := p.WithOL(3e-9)
	for _, prm := range Params(p3, LE3) {
		if prm.Name == "OL_B" && math.Abs(prm.Sigma-1e-9) > 1e-15 {
			t.Fatalf("WithOL(3nm) OL sigma = %g", prm.Sigma)
		}
	}
}

func TestCornerSampleAndString(t *testing.T) {
	p := tech.N10()
	corners := Corners(p, EUV)
	var sawPlus bool
	for _, c := range corners {
		s := CornerSample(p, EUV, c)
		if c[0] == 1 {
			sawPlus = true
			if math.Abs(s.CDEUV-3e-9) > 1e-15 {
				t.Fatalf("+3σ corner CD = %g", s.CDEUV)
			}
			if got := CornerString(p, EUV, c); got != "CD+3σ" {
				t.Fatalf("CornerString = %q", got)
			}
		}
		if c[0] == 0 {
			if got := CornerString(p, EUV, c); got != "nominal" {
				t.Fatalf("nominal CornerString = %q", got)
			}
		}
	}
	if !sawPlus {
		t.Fatal("corner enumeration missing +1")
	}
}

func TestWindowHelpers(t *testing.T) {
	p := tech.N10()
	w, _ := Realize(p, LE3, Nominal)
	if Describe(w) == "" {
		t.Fatal("Describe empty")
	}
	s := Sample{OLB: -2e-9, OLC: 1e-9}
	if s.MaxAbsShift() != 2e-9 {
		t.Fatalf("MaxAbsShift = %g", s.MaxAbsShift())
	}
}

func TestRandomSamplesRealizable(t *testing.T) {
	// Within ±4σ of the paper's budgets, geometry stays valid for SADP
	// and EUV and for LE3 at the 3 nm overlay budget.
	p := tech.N10().WithOL(3e-9)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		for _, o := range Options {
			var s Sample
			for _, prm := range Params(p, o) {
				prm.Apply(&s, rng.NormFloat64()*prm.Sigma)
			}
			if _, err := Realize(p, o, s); err != nil {
				t.Fatalf("trial %d %v: %v (sample %+v)", trial, o, err, s)
			}
		}
	}
}
