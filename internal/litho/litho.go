// Package litho implements behavioural models of the patterning options
// the paper compares on metal1: triple litho-etch (LE3/LELELE),
// self-aligned double patterning (SADP) and single-patterning EUV.
//
// Each engine maps a process-variation sample (per-mask CD biases, per-mask
// overlay shifts, spacer-thickness deltas) to the realized cross-section
// geometry of a window of parallel metal1 tracks centred on the victim bit
// line. The extraction layer then turns that geometry into Rbl/Cbl and the
// variability ratios Rvar/Cvar used by the paper's formula.
//
// LE3: three interleaved masks A, B, C. Each mask carries its own CD bias;
// masks B and C are aligned to mask A (paper Section II-A), so A has no
// overlay term while B and C shift as rigid combs.
//
// SADP: mandrel (core) lines printed on a fixed grid, spacers deposited on
// their sidewalls; the bit lines are the spacer-defined gaps (paper:
// "spacer-defined bit lines"). Core CD and spacer thickness vary; positions
// are self-aligned, so there is no overlay term. Widening the gap line
// necessarily narrows nothing else but consumes the shared period, and the
// complementary core (power) line width moves the opposite way when the
// mandrel CD moves — the Rbl/RVSS anti-correlation of paper Section III-A.
//
// EUV: one exposure, one CD bias common to all lines, no overlay term.
package litho

import (
	"fmt"
	"math"
	"math/rand"

	"mpsram/internal/geom"
	"mpsram/internal/tech"
)

// Option enumerates the patterning options compared in the paper.
type Option int

const (
	// LE3 is triple litho-etch (LELELE).
	LE3 Option = iota
	// SADP is self-aligned double patterning with spacer-defined bit lines.
	SADP
	// EUV is single-patterning extreme-UV.
	EUV
	// LE2 is double litho-etch (LELE) — an extension beyond the paper's
	// comparison set. With two masks the bit line's neighbours share a
	// mask, so a rigid overlay shift moves one neighbour closer and the
	// other away: the coupling increase partially cancels, unlike LE3
	// where the two independently-shifting masks can both approach.
	LE2
)

// Options lists the patterning options the paper compares, in paper order.
var Options = []Option{LE3, SADP, EUV}

// AllOptions additionally includes the LE2 extension.
var AllOptions = []Option{LE3, SADP, EUV, LE2}

func (o Option) String() string {
	switch o {
	case LE3:
		return "LELELE"
	case SADP:
		return "SADP"
	case EUV:
		return "EUV"
	case LE2:
		return "LELE"
	default:
		return fmt.Sprintf("Option(%d)", int(o))
	}
}

// Mask identifies the patterning step that printed a wire.
type Mask int

const (
	MaskA    Mask = iota // LE3 first exposure (carries the bit line)
	MaskB                // LE3 second exposure
	MaskC                // LE3 third exposure
	MaskCore             // SADP mandrel-defined line
	MaskGap              // SADP spacer-defined line (bit lines)
	MaskEUV              // EUV single exposure
)

func (m Mask) String() string {
	switch m {
	case MaskA:
		return "A"
	case MaskB:
		return "B"
	case MaskC:
		return "C"
	case MaskCore:
		return "core"
	case MaskGap:
		return "gap"
	case MaskEUV:
		return "EUV"
	default:
		return fmt.Sprintf("Mask(%d)", int(m))
	}
}

// Net labels the circuit net a track belongs to.
type Net int

const (
	NetBL Net = iota
	NetBLB
	NetVSS
	NetVDD
)

func (n Net) String() string {
	switch n {
	case NetBL:
		return "BL"
	case NetBLB:
		return "BLB"
	case NetVSS:
		return "VSS"
	case NetVDD:
		return "VDD"
	default:
		return fmt.Sprintf("Net(%d)", int(n))
	}
}

// Sample is one draw of the process-variation parameters, in metres of
// geometry delta. Only the fields relevant to an option are consumed by
// that option's engine:
//
//	LE3:  CDA, CDB, CDC (width deltas), OLB, OLC (overlay shifts)
//	SADP: CDCore (mandrel width delta), CDSpacer (spacer thickness delta)
//	EUV:  CDEUV (width delta, all lines)
type Sample struct {
	CDA, CDB, CDC float64
	OLB, OLC      float64
	CDCore        float64
	CDSpacer      float64
	CDEUV         float64
	// DThk is a global metal-thickness delta (etch/CMP variation), an
	// extension beyond the paper's CD/OL/spacer set: the paper's LPE
	// tool lists layer thickness and CMP among its inputs (Section
	// II-A) but the published experiments do not sweep it. Enabled by
	// setting tech.Variations.Thk3Sigma > 0; applies identically to all
	// patterning options.
	DThk float64
}

// Nominal is the zero-variation sample.
var Nominal = Sample{}

// Wire is one realized track in the cross-section window.
type Wire struct {
	Net  Net
	Mask Mask
	// Span is the cross-array extent [left edge, right edge] in metres.
	Span geom.Interval
}

// Width returns the realized wire width.
func (w Wire) Width() float64 { return w.Span.Width() }

// Window is the realized neighbourhood of the victim bit line: an odd
// number of parallel wires with the victim in the middle.
type Window struct {
	Option Option
	Wires  []Wire
	Victim int // index of the bit line in Wires
	// DThk carries the sample's global thickness delta through to
	// extraction (zero unless the thickness extension is enabled).
	DThk float64
}

// VictimWire returns the realized bit line.
func (w Window) VictimWire() Wire { return w.Wires[w.Victim] }

// Below returns the neighbour on the lower-coordinate side of the victim.
func (w Window) Below() Wire { return w.Wires[w.Victim-1] }

// Above returns the neighbour on the higher-coordinate side of the victim.
func (w Window) Above() Wire { return w.Wires[w.Victim+1] }

// GapBelow returns the clear spacing between the victim and the wire below.
func (w Window) GapBelow() float64 { return w.VictimWire().Span.Gap(w.Below().Span) }

// GapAbove returns the clear spacing between the victim and the wire above.
func (w Window) GapAbove() float64 { return w.VictimWire().Span.Gap(w.Above().Span) }

// Validate reports an error if any wire collapsed (non-positive width) or
// if adjacent wires merged (non-positive spacing). Such geometries are
// catastrophic yield failures, outside the paper's variability study.
func (w Window) Validate() error {
	for i, wr := range w.Wires {
		if wr.Width() <= 0 {
			return fmt.Errorf("%v: wire %d (%v/%v) collapsed to width %.3g",
				w.Option, i, wr.Net, wr.Mask, wr.Width())
		}
		if i > 0 {
			prev := w.Wires[i-1]
			if prev.Span.Hi >= wr.Span.Lo {
				return fmt.Errorf("%v: wires %d and %d merged (gap %.3g)",
					w.Option, i-1, i, wr.Span.Gap(prev.Span))
			}
		}
	}
	return nil
}

// windowHalf is the number of wires on each side of the victim.
const windowHalf = 3

// Realize maps a variation sample to the realized window for the given
// option on process p. The returned window has 2·windowHalf+1 wires with
// the bit line in the centre.
func Realize(p tech.Process, o Option, s Sample) (Window, error) {
	var w Window
	switch o {
	case LE3:
		w = realizeLE3(p, s)
	case SADP:
		w = realizeSADP(p, s)
	case EUV:
		w = realizeEUV(p, s)
	case LE2:
		w = realizeLE2(p, s)
	default:
		return Window{}, fmt.Errorf("unknown patterning option %d", int(o))
	}
	w.DThk = s.DThk
	if s.DThk <= -p.M1.Thickness {
		return Window{}, fmt.Errorf("%v: thickness delta %.3g collapses the metal", o, s.DThk)
	}
	if err := w.Validate(); err != nil {
		return Window{}, err
	}
	return w, nil
}

// le3Nets is the net role by (track index − victim index) modulo the SRAM
// track pattern: the bit line sits between the VSS and VDD rails of the
// cell's power grid (paper Fig. 1b: u/d horizontal M1 bit lines and power).
func trackNet(rel int) Net {
	switch ((rel % 4) + 4) % 4 {
	case 0:
		return NetBL
	case 1:
		return NetVDD
	case 2:
		return NetBLB
	default:
		return NetVSS
	}
}

// realizeLE3 builds the LE3 window: track k sits nominally at k·pitch;
// masks cycle C,B,A,B,C around the victim so that, per the paper's worst
// case, the victim is on mask A with its two neighbours on B (below) and
// C (above). Mask A is the alignment reference: no overlay term.
func realizeLE3(p tech.Process, s Sample) Window {
	pitch := p.M1.Pitch
	w0 := p.M1.Width
	cd := map[Mask]float64{MaskA: s.CDA, MaskB: s.CDB, MaskC: s.CDC}
	ol := map[Mask]float64{MaskA: 0, MaskB: s.OLB, MaskC: s.OLC}
	var wires []Wire
	for rel := -windowHalf; rel <= windowHalf; rel++ {
		var m Mask
		switch ((rel % 3) + 3) % 3 {
		case 0:
			m = MaskA
		case 1:
			m = MaskC // above the victim
		default:
			m = MaskB // below the victim
		}
		center := float64(rel)*pitch + ol[m]
		width := w0 + cd[m]
		wires = append(wires, Wire{
			Net:  trackNet(rel),
			Mask: m,
			Span: geom.CenterWidth(center, width),
		})
	}
	return Window{Option: LE3, Wires: wires, Victim: windowHalf}
}

// realizeSADP builds the SADP window. Core (mandrel-defined) lines sit on
// the fixed SADP period grid; the victim bit line is the spacer-defined gap
// between two cores. Geometry per period (see tech.SADPParams):
//
//	core center k·P, width m' = m+ΔCDcore
//	spacers of thickness t' = t+ΔCDspacer on both core sidewalls
//	gap line filling the remainder: width P − m' − 2t'
func realizeSADP(p tech.Process, s Sample) Window {
	P := p.SADP.Period
	m := p.SADP.MandrelWidth + s.CDCore
	t := p.SADP.SpacerThk + s.CDSpacer
	// Place cores at ...,−1.5P, −0.5P, +0.5P, +1.5P,... so the victim gap
	// line is centred at 0.
	var wires []Wire
	for k := -2; k <= 1; k++ {
		coreCenter := (float64(k) + 0.5) * P
		core := Wire{
			Net:  trackNet(2*k + 1),
			Mask: MaskCore,
			Span: geom.CenterWidth(coreCenter, m),
		}
		// Gap line after this core (between core k and core k+1).
		gapLo := coreCenter + m/2 + t
		gapHi := coreCenter + P - m/2 - t
		gap := Wire{
			Net:  trackNet(2*k + 2),
			Mask: MaskGap,
			Span: geom.Interval{Lo: gapLo, Hi: gapHi},
		}
		wires = append(wires, core, gap)
	}
	// wires: [core,gap,core,gap,core,gap,core,gap]; victim gap is the one
	// centred at 0, which is index 3 (k=-1 gap).
	wires = wires[:7] // 7-wire window: 4 cores + 3 gaps
	return Window{Option: SADP, Wires: wires, Victim: 3}
}

// realizeLE2 builds the double litho-etch window: masks alternate A,B with
// the victim on A, both neighbours on B. Mask B is aligned to A, so a
// single overlay term shifts the whole B comb rigidly.
func realizeLE2(p tech.Process, s Sample) Window {
	pitch := p.M1.Pitch
	w0 := p.M1.Width
	var wires []Wire
	for rel := -windowHalf; rel <= windowHalf; rel++ {
		m := MaskA
		width := w0 + s.CDA
		center := float64(rel) * pitch
		if ((rel%2)+2)%2 == 1 {
			m = MaskB
			width = w0 + s.CDB
			center += s.OLB
		}
		wires = append(wires, Wire{
			Net:  trackNet(rel),
			Mask: m,
			Span: geom.CenterWidth(center, width),
		})
	}
	return Window{Option: LE2, Wires: wires, Victim: windowHalf}
}

// realizeEUV builds the single-exposure window: every line carries the same
// CD bias, centres stay on the pitch grid.
func realizeEUV(p tech.Process, s Sample) Window {
	pitch := p.M1.Pitch
	width := p.M1.Width + s.CDEUV
	var wires []Wire
	for rel := -windowHalf; rel <= windowHalf; rel++ {
		wires = append(wires, Wire{
			Net:  trackNet(rel),
			Mask: MaskEUV,
			Span: geom.CenterWidth(float64(rel)*pitch, width),
		})
	}
	return Window{Option: EUV, Wires: wires, Victim: windowHalf}
}

// Param identifies one scalar variation source of an option.
type Param struct {
	Name  string
	Sigma float64                // 1σ amplitude in metres
	Apply func(*Sample, float64) // writes a delta in metres into the sample
}

// Params returns the independent variation sources for option o on process
// p, with 1σ amplitudes (= published 3σ/3). The LE3 overlay budget comes
// from p.Var.OL3Sigma so callers can sweep it (Table IV). When the
// thickness extension is enabled (Var.Thk3Sigma > 0) every option gains a
// global THK source.
func Params(p tech.Process, o Option) []Param {
	base := baseParams(p, o)
	if base != nil && p.Var.Thk3Sigma > 0 {
		base = append(base, Param{
			"THK", p.Var.Thk3Sigma / 3,
			func(s *Sample, d float64) { s.DThk = d },
		})
	}
	return base
}

// Draw realizes one Gaussian variation sample from params (as returned by
// Params): one NormFloat64 per parameter, scaled by its 1σ amplitude, in
// slice order. This is THE canonical draw — the analytic and
// SPICE-in-the-loop Monte-Carlo paths both consume it, which is what
// makes their per-trial sample streams identical draw for draw; the
// parameter order and draw count are a compatibility surface.
func Draw(params []Param, rng *rand.Rand) Sample {
	var s Sample
	for _, prm := range params {
		prm.Apply(&s, rng.NormFloat64()*prm.Sigma)
	}
	return s
}

// DrawFor draws one Gaussian variation sample for option o on process p:
// the canonical per-(process, option) stream. The same PRNG state maps
// through the process's own variation budgets (Params), so streams are
// deterministic per (process, option) — two nodes consume identical
// normal deviates scaled by their own σ amplitudes — and identical
// between the analytic and SPICE-in-the-loop Monte-Carlo paths.
func DrawFor(p tech.Process, o Option, rng *rand.Rand) Sample {
	return Draw(Params(p, o), rng)
}

func baseParams(p tech.Process, o Option) []Param {
	v := p.Var
	switch o {
	case LE3:
		return []Param{
			{"CD_A", v.CD3Sigma / 3, func(s *Sample, d float64) { s.CDA = d }},
			{"CD_B", v.CD3Sigma / 3, func(s *Sample, d float64) { s.CDB = d }},
			{"CD_C", v.CD3Sigma / 3, func(s *Sample, d float64) { s.CDC = d }},
			{"OL_B", v.OL3Sigma / 3, func(s *Sample, d float64) { s.OLB = d }},
			{"OL_C", v.OL3Sigma / 3, func(s *Sample, d float64) { s.OLC = d }},
		}
	case SADP:
		return []Param{
			{"CD_core", v.CD3Sigma / 3, func(s *Sample, d float64) { s.CDCore = d }},
			{"CD_spacer", v.Spacer3Sigma / 3, func(s *Sample, d float64) { s.CDSpacer = d }},
		}
	case EUV:
		return []Param{
			{"CD", v.CD3Sigma / 3, func(s *Sample, d float64) { s.CDEUV = d }},
		}
	case LE2:
		return []Param{
			{"CD_A", v.CD3Sigma / 3, func(s *Sample, d float64) { s.CDA = d }},
			{"CD_B", v.CD3Sigma / 3, func(s *Sample, d float64) { s.CDB = d }},
			{"OL_B", v.OL3Sigma / 3, func(s *Sample, d float64) { s.OLB = d }},
		}
	default:
		return nil
	}
}

// Corner is a worst-case search point: one signed 3σ multiplier per param.
type Corner []int

// Corners enumerates every combination of {−3σ, 0, +3σ} over the option's
// parameters (3^k corners). The paper's worst-case study uses exactly this
// kind of exhaustive corner search over CD and OL errors.
func Corners(p tech.Process, o Option) []Corner {
	k := len(Params(p, o))
	n := 1
	for i := 0; i < k; i++ {
		n *= 3
	}
	corners := make([]Corner, 0, n)
	for idx := 0; idx < n; idx++ {
		c := make(Corner, k)
		x := idx
		for i := 0; i < k; i++ {
			c[i] = x%3 - 1 // −1, 0, +1
			x /= 3
		}
		corners = append(corners, c)
	}
	return corners
}

// CornerSample turns a corner (±1/0 multipliers) into a concrete Sample at
// ±3σ amplitudes.
func CornerSample(p tech.Process, o Option, c Corner) Sample {
	params := Params(p, o)
	var s Sample
	for i, prm := range params {
		prm.Apply(&s, float64(c[i])*3*prm.Sigma)
	}
	return s
}

// CornerString renders a corner as a compact human-readable tag such as
// "CD_A+3σ CD_B+3σ OL_B−3σ" (zero entries omitted).
func CornerString(p tech.Process, o Option, c Corner) string {
	params := Params(p, o)
	out := ""
	for i, prm := range params {
		if c[i] == 0 {
			continue
		}
		sign := "+"
		if c[i] < 0 {
			sign = "-"
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s%s3σ", prm.Name, sign)
	}
	if out == "" {
		return "nominal"
	}
	return out
}

// Describe returns a short description of a realized window for logging:
// victim width and the two spacings, in nanometres.
func Describe(w Window) string {
	return fmt.Sprintf("%v: w_bl=%.2fnm gap_below=%.2fnm gap_above=%.2fnm",
		w.Option, w.VictimWire().Width()*1e9, w.GapBelow()*1e9, w.GapAbove()*1e9)
}

// MaxAbsShift returns the largest |overlay| the sample applies, used by
// sanity checks in tests.
func (s Sample) MaxAbsShift() float64 {
	return math.Max(math.Abs(s.OLB), math.Abs(s.OLC))
}
