package litho

import (
	"math"
	"testing"

	"mpsram/internal/tech"
)

func TestLE2MaskAlternation(t *testing.T) {
	p := tech.N10()
	w, err := Realize(p, LE2, Nominal)
	if err != nil {
		t.Fatal(err)
	}
	if LE2.String() != "LELE" {
		t.Fatal("LE2 name")
	}
	if w.VictimWire().Mask != MaskA {
		t.Fatalf("victim mask %v", w.VictimWire().Mask)
	}
	if w.Below().Mask != MaskB || w.Above().Mask != MaskB {
		t.Fatalf("neighbour masks %v/%v, want both B", w.Below().Mask, w.Above().Mask)
	}
}

func TestLE2OverlayCancellation(t *testing.T) {
	// The defining LE2 property: one rigid overlay shift moves one
	// neighbour toward the victim and the other away by the same amount,
	// so the gap sum is conserved.
	p := tech.N10()
	for _, ol := range []float64{-6e-9, -2e-9, 2e-9, 6e-9} {
		w, err := Realize(p, LE2, Sample{OLB: ol})
		if err != nil {
			t.Fatal(err)
		}
		sum := w.GapBelow() + w.GapAbove()
		if math.Abs(sum-2*p.M1.Space) > 1e-15 {
			t.Fatalf("OL=%g: gap sum %g, want %g", ol, sum, 2*p.M1.Space)
		}
		if math.Abs(w.GapBelow()-(p.M1.Space-ol)) > 1e-15 {
			t.Fatalf("OL=%g: gap below %g", ol, w.GapBelow())
		}
	}
}

func TestLE2ParamsAndCorners(t *testing.T) {
	p := tech.N10()
	prm := Params(p, LE2)
	if len(prm) != 3 {
		t.Fatalf("LE2 params %d, want 3 (CD_A, CD_B, OL_B)", len(prm))
	}
	if got := len(Corners(p, LE2)); got != 27 {
		t.Fatalf("LE2 corners %d, want 27", got)
	}
	// AllOptions carries the extension, Options stays the paper's set.
	if len(Options) != 3 || len(AllOptions) != 4 {
		t.Fatal("option sets")
	}
}

func TestLE2CDBehavesLikeLE3CD(t *testing.T) {
	// With zero overlay, CD-only variation on LE2 and LE3 (A and B set
	// equal, C matching B) must realize the same victim geometry.
	p := tech.N10()
	le2, err := Realize(p, LE2, Sample{CDA: 2e-9, CDB: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	le3, err := Realize(p, LE3, Sample{CDA: 2e-9, CDB: 1e-9, CDC: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(le2.VictimWire().Width()-le3.VictimWire().Width()) > 1e-15 {
		t.Fatal("victim widths differ")
	}
	if math.Abs(le2.GapBelow()-le3.GapBelow()) > 1e-15 ||
		math.Abs(le2.GapAbove()-le3.GapAbove()) > 1e-15 {
		t.Fatal("gaps differ")
	}
}
