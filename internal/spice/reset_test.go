package spice

import (
	"fmt"
	"math/rand"
	"testing"

	"mpsram/internal/circuit"
	"mpsram/internal/device"
	"mpsram/internal/tech"
)

// dischargeParams parameterizes the small pass-gate discharge circuit the
// Reset tests mutate: an RC ladder precharged through a resistor and
// discharged by an NMOS once its gate pulse fires.
type dischargeParams struct {
	segs int     // ladder segments (topology)
	r    float64 // per-segment resistance
	c    float64 // per-segment capacitance
	w    float64 // NMOS width
	rpre float64 // precharge holding resistor
}

// buildDischarge constructs the circuit into nl (which must be fresh or
// Reset) and returns the probe nodes.
func buildDischarge(nl *circuit.Netlist, nm *device.MOS, p dischargeParams) []circuit.NodeID {
	pre := nl.Node("pre")
	g := nl.Node("g")
	nl.AddV("vpre", pre, circuit.Ground, circuit.DC(0.7))
	nl.AddV("vg", g, circuit.Ground, circuit.Pulse{V0: 0, V1: 0.7, Delay: 1e-12, Rise: 0.2e-12, Width: 1})
	nodes := make([]circuit.NodeID, p.segs+1)
	for i := range nodes {
		nodes[i] = nl.Node(fmt.Sprintf("n%d", i))
	}
	nl.AddR("rpre", pre, nodes[p.segs], p.rpre)
	for i := 0; i < p.segs; i++ {
		nl.AddR(fmt.Sprintf("r%d", i), nodes[i], nodes[i+1], p.r)
	}
	for i := range nodes {
		nl.AddC(fmt.Sprintf("c%d", i), nodes[i], circuit.Ground, p.c)
	}
	nl.AddM("mn", nodes[0], g, circuit.Ground, nm, p.w)
	return []circuit.NodeID{nodes[0], nodes[p.segs], g}
}

// snapshotResult deep-copies a Result's waveforms (engine-resident storage
// is recycled by the next run).
func snapshotResult(r *Result) *Result {
	c := &Result{T: append([]float64(nil), r.T...), Nodes: append([]circuit.NodeID(nil), r.Nodes...)}
	c.V = make([][]float64, len(r.V))
	for i := range r.V {
		c.V[i] = append([]float64(nil), r.V[i]...)
	}
	return c
}

func requireIdenticalResults(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if len(want.T) != len(got.T) {
		t.Fatalf("%s: step count %d vs %d", label, len(want.T), len(got.T))
	}
	for k := range want.T {
		if want.T[k] != got.T[k] {
			t.Fatalf("%s: T[%d] %v vs %v", label, k, want.T[k], got.T[k])
		}
	}
	for i := range want.V {
		for k := range want.V[i] {
			if want.V[i][k] != got.V[i][k] {
				t.Fatalf("%s: V[%d][%d] %v vs %v (diff %g)",
					label, i, k, want.V[i][k], got.V[i][k], want.V[i][k]-got.V[i][k])
			}
		}
	}
}

// TestEngineResetMatchesFreshBitIdentical drives one engine through a
// sequence of mutated netlists via Reset and requires every transient to
// be bit-for-bit identical to a freshly constructed engine on the same
// netlist — including topology changes (different ladder depth) that force
// the scratch to resize.
func TestEngineResetMatchesFreshBitIdentical(t *testing.T) {
	nm := device.NewNMOS(tech.N10().FEOL)
	rng := rand.New(rand.NewSource(7))
	variants := make([]dischargeParams, 0, 8)
	for _, segs := range []int{3, 3, 5, 2, 3} {
		variants = append(variants, dischargeParams{
			segs: segs,
			r:    100 * (0.5 + rng.Float64()),
			c:    2e-15 * (0.5 + rng.Float64()),
			w:    30e-9 * (0.5 + rng.Float64()),
			rpre: 10e6,
		})
	}
	const tEnd, dt = 30e-12, 0.2e-12
	resident := &Engine{}
	nl := circuit.New()
	for vi, p := range variants {
		nl.Reset()
		probes := buildDischarge(nl, nm, p)

		fresh, err := New(nl, Options{})
		if err != nil {
			t.Fatalf("variant %d: New: %v", vi, err)
		}
		want, err := fresh.Transient(tEnd, dt, probes, nil)
		if err != nil {
			t.Fatalf("variant %d: fresh transient: %v", vi, err)
		}
		wantCopy := snapshotResult(want)

		if err := resident.Reset(nl, Options{}); err != nil {
			t.Fatalf("variant %d: Reset: %v", vi, err)
		}
		got, err := resident.Transient(tEnd, dt, probes, nil)
		if err != nil {
			t.Fatalf("variant %d: resident transient: %v", vi, err)
		}
		requireIdenticalResults(t, fmt.Sprintf("variant %d (segs=%d)", vi, p.segs), wantCopy, got)
	}
}

// TestEngineResetMatchesFreshAdaptive covers the adaptive integrator path
// on a reused engine.
func TestEngineResetMatchesFreshAdaptive(t *testing.T) {
	nm := device.NewNMOS(tech.N10().FEOL)
	p1 := dischargeParams{segs: 3, r: 150, c: 3e-15, w: 30e-9, rpre: 10e6}
	p2 := dischargeParams{segs: 3, r: 90, c: 5e-15, w: 40e-9, rpre: 10e6}
	const tEnd = 40e-12
	aopt := AdaptiveOptions{LTETol: 50e-6}

	nl := circuit.New()
	probes := buildDischarge(nl, nm, p2)
	fresh, err := New(nl, Options{Method: BackwardEuler})
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.TransientAdaptive(tEnd, aopt, probes, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Run the resident engine on p1 first so its scratch is dirty, then
	// Reset onto the p2 netlist.
	other := circuit.New()
	otherProbes := buildDischarge(other, nm, p1)
	resident, err := New(other, Options{Method: BackwardEuler})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resident.TransientAdaptive(tEnd, aopt, otherProbes, nil); err != nil {
		t.Fatal(err)
	}
	if err := resident.Reset(nl, Options{Method: BackwardEuler}); err != nil {
		t.Fatal(err)
	}
	got, err := resident.TransientAdaptive(tEnd, aopt, probes, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalResults(t, "adaptive", want, got)
}

// TestEngineResetClearsNodeset: hints installed for one netlist must not
// leak into the next (node ids are netlist-specific).
func TestEngineResetClearsNodeset(t *testing.T) {
	nm := device.NewNMOS(tech.N10().FEOL)
	nl := circuit.New()
	p := dischargeParams{segs: 2, r: 100, c: 2e-15, w: 30e-9, rpre: 10e6}
	buildDischarge(nl, nm, p)
	e, err := New(nl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.SetNodeset(map[circuit.NodeID]float64{nl.Node("n0"): 0.7})
	if err := e.Reset(nl, Options{}); err != nil {
		t.Fatal(err)
	}
	if e.nodeset != nil {
		t.Fatal("Reset kept the previous netlist's nodeset hints")
	}
}

// TestEngineResetRejectsBadNetlist: Reset validates like New and leaves
// errors visible.
func TestEngineResetRejectsBadNetlist(t *testing.T) {
	nm := device.NewNMOS(tech.N10().FEOL)
	nl := circuit.New()
	buildDischarge(nl, nm, dischargeParams{segs: 2, r: 100, c: 2e-15, w: 30e-9, rpre: 10e6})
	e, err := New(nl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Reset(circuit.New(), Options{}); err == nil {
		t.Fatal("Reset accepted a netlist with no non-ground nodes")
	}
	bad := circuit.New()
	bad.AddR("r", bad.Node("a"), circuit.Ground, -1)
	if err := e.Reset(bad, Options{}); err == nil {
		t.Fatal("Reset accepted an invalid netlist")
	}
}
