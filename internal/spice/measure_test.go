package spice

import (
	"math"
	"strings"
	"testing"

	"mpsram/internal/circuit"
)

// rcPair builds two cascaded RC stages driven by a step, giving two nodes
// with a known stage delay for measurement tests.
func rcPair(t *testing.T) (*Result, circuit.NodeID, circuit.NodeID, *circuit.Netlist) {
	t.Helper()
	n := circuit.New()
	drv := n.Node("drv")
	a := n.Node("a")
	b := n.Node("b")
	n.AddV("src", drv, circuit.Ground, circuit.Pulse{V0: 0, V1: 1, Rise: 1e-15, Width: 1})
	n.AddR("r1", drv, a, 1e3)
	n.AddC("c1", a, circuit.Ground, 1e-12)
	n.AddR("r2", a, b, 1e3)
	n.AddC("c2", b, circuit.Ground, 1e-12)
	e, err := New(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Transient(20e-9, 2e-12, []circuit.NodeID{a, b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res, a, b, n
}

func TestDelayBetweenNodes(t *testing.T) {
	res, a, b, _ := rcPair(t)
	d, err := res.Delay(
		Cross{Node: a, Threshold: 0.5, Dir: +1},
		Cross{Node: b, Threshold: 0.5, Dir: +1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || d > 5e-9 {
		t.Fatalf("stage delay %g out of band", d)
	}
	// Unprobed node errors.
	if _, err := res.Delay(Cross{Node: 99, Threshold: 0.5, Dir: 1},
		Cross{Node: b, Threshold: 0.5, Dir: 1}); err == nil {
		t.Fatal("unprobed trigger accepted")
	}
	// Unreachable threshold errors.
	if _, err := res.Delay(Cross{Node: a, Threshold: 0.5, Dir: 1},
		Cross{Node: b, Threshold: 2.0, Dir: 1}); err == nil {
		t.Fatal("unreachable target accepted")
	}
}

func TestSlewRising(t *testing.T) {
	res, a, _, _ := rcPair(t)
	s, err := res.Slew(a, 0.1, 0.9, +1)
	if err != nil {
		t.Fatal(err)
	}
	// For a single-pole RC the 10–90 rise is ln(9)·τ ≈ 2.197 ns, but
	// node a is loaded by the second stage; just pin the band.
	if s < 1e-9 || s > 6e-9 {
		t.Fatalf("slew %g out of band", s)
	}
	if _, err := res.Slew(a, 0.9, 0.1, +1); err == nil {
		t.Fatal("inverted levels accepted")
	}
	if _, err := res.Slew(99, 0.1, 0.9, +1); err == nil {
		t.Fatal("unprobed node accepted")
	}
}

func TestPeak(t *testing.T) {
	res, a, _, _ := rcPair(t)
	v, at, err := res.Peak(a, +1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > 0.01 || at <= 0 {
		t.Fatalf("peak %g at %g", v, at)
	}
	vMin, _, err := res.Peak(a, -1)
	if err != nil {
		t.Fatal(err)
	}
	if vMin > 0.01 {
		t.Fatalf("min %g", vMin)
	}
	if _, _, err := res.Peak(99, 1); err == nil {
		t.Fatal("unprobed node accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	res, _, _, nl := rcPair(t)
	var b strings.Builder
	if err := res.WriteCSV(&b, nl.NodeName); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "t,a,b\n") {
		t.Fatalf("CSV header: %q", out[:20])
	}
	lines := strings.Count(out, "\n")
	if lines != len(res.T)+1 {
		t.Fatalf("CSV line count %d, want %d", lines, len(res.T)+1)
	}
	// Nil namer falls back to ids.
	var b2 strings.Builder
	if err := res.WriteCSV(&b2, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b2.String(), "t,n") {
		t.Fatal("fallback namer")
	}
}
