// Adaptive transient integration: backward-Euler with step-doubling local
// error control and source-breakpoint clipping. The read waveforms of
// this study spend most of their span in slow quasi-linear discharge, so
// adapting the step wins large factors over the fixed-step loop while the
// error estimate keeps the threshold-crossing accuracy.
package spice

import (
	"fmt"
	"math"
	"sort"

	"mpsram/internal/circuit"
	"mpsram/internal/sparse"
)

// AdaptiveOptions tunes TransientAdaptive.
type AdaptiveOptions struct {
	// DtInit is the first step (default tEnd/1e4).
	DtInit float64
	// DtMin is the smallest allowed step; when reached the step is
	// accepted regardless of the error estimate (default DtInit/100).
	DtMin float64
	// DtMax caps the step (default tEnd/50).
	DtMax float64
	// LTETol is the per-step local error tolerance in volts
	// (default 100 µV).
	LTETol float64
}

func (o AdaptiveOptions) withDefaults(tEnd float64) AdaptiveOptions {
	if o.DtInit == 0 {
		o.DtInit = tEnd / 1e4
	}
	if o.DtMin == 0 {
		o.DtMin = o.DtInit / 100
	}
	if o.DtMax == 0 {
		o.DtMax = tEnd / 50
	}
	if o.LTETol == 0 {
		o.LTETol = 100e-6
	}
	return o
}

// breakpoints collects the time points where pulse sources have corners;
// steps are clipped so no corner is jumped over.
func (e *Engine) breakpoints(tEnd float64) []float64 {
	var bps []float64
	add := func(t float64) {
		if t > 0 && t < tEnd {
			bps = append(bps, t)
		}
	}
	collect := func(w circuit.Waveform) {
		switch p := w.(type) {
		case circuit.Pulse:
			add(p.Delay)
			add(p.Delay + p.Rise)
			add(p.Delay + p.Rise + p.Width)
			add(p.Delay + p.Rise + p.Width + p.Fall)
		case circuit.PWL:
			for _, t := range p.T {
				add(t)
			}
		}
	}
	for _, v := range e.ckt.Vs {
		collect(v.Wave)
	}
	for _, i := range e.ckt.Is {
		collect(i.Wave)
	}
	sort.Float64s(bps)
	return bps
}

// beStep advances the state x at time t by h with one backward-Euler
// solve (no trapezoidal state involved, which is what makes step-doubling
// safe here). The base matrix reuses the DC-stage scratch (the operating
// point is long done by the time stepping starts); the result is detached
// from the engine's Newton buffers because step-doubling holds three
// solutions live at once.
func (e *Engine) beStep(x []float64, t, h float64) ([]float64, error) {
	if e.dcBase == nil {
		e.dcBase = new(sparse.Matrix)
	}
	e.dcBase.CopyFrom(e.static)
	m := e.dcBase
	rhs := e.rhsBuf()
	e.sourceRHS(rhs, t+h)
	for _, c := range e.ckt.Cs {
		g := c.C / h
		stampG(m, c.A, c.B, g)
		vPrev := vAt(x, c.A) - vAt(x, c.B)
		rhsI(rhs, c.A, c.B, g*vPrev)
	}
	sol, err := e.newtonSolve(m, rhs, x)
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), sol...), nil
}

// TransientAdaptive integrates from 0 to tEnd with backward Euler under
// step-doubling error control: each step h is also taken as two h/2
// sub-steps; the difference is the local error estimate. On acceptance
// the more accurate two-half-step solution is kept (local extrapolation).
func (e *Engine) TransientAdaptive(tEnd float64, opt AdaptiveOptions, probes []circuit.NodeID, stop StopFunc) (*Result, error) {
	if tEnd <= 0 {
		return nil, fmt.Errorf("spice: bad adaptive window tEnd=%g", tEnd)
	}
	o := opt.withDefaults(tEnd)
	if o.DtMin <= 0 || o.DtInit < o.DtMin || o.DtMax < o.DtInit {
		return nil, fmt.Errorf("spice: inconsistent adaptive steps init=%g min=%g max=%g",
			o.DtInit, o.DtMin, o.DtMax)
	}
	xDC, err := e.DCOperatingPoint()
	if err != nil {
		return nil, err
	}
	// Detach the state from the engine's ping-pong Newton buffers: the
	// step-doubling loop holds x live across three beStep solves, and a
	// buffer-resident x would be silently overwritten by the third solve
	// (its x0 is already a detached copy, so solutionBuf could hand back
	// the buffer still holding x — corrupting the retry state of a
	// rejected step).
	x := append([]float64(nil), xDC...)
	bps := e.breakpoints(tEnd)
	res := &Result{Nodes: probes, V: make([][]float64, len(probes))}
	record := func(t float64, x []float64) {
		res.T = append(res.T, t)
		for i, p := range probes {
			res.V[i] = append(res.V[i], vAt(x, p))
		}
	}
	record(0, x)
	t := 0.0
	h := o.DtInit
	bpIdx := 0
	for t < tEnd {
		// Clip to the next source corner and the window end.
		for bpIdx < len(bps) && bps[bpIdx] <= t+1e-21 {
			bpIdx++
		}
		hEff := h
		if bpIdx < len(bps) && t+hEff > bps[bpIdx] {
			hEff = bps[bpIdx] - t
		}
		if t+hEff > tEnd {
			hEff = tEnd - t
		}
		if hEff < o.DtMin {
			hEff = math.Min(o.DtMin, tEnd-t)
		}
		// Full step and two half steps.
		x1, err := e.beStep(x, t, hEff)
		if err != nil {
			return nil, fmt.Errorf("spice: adaptive step at t=%g: %w", t, err)
		}
		xh, err := e.beStep(x, t, hEff/2)
		if err != nil {
			return nil, err
		}
		x2, err := e.beStep(xh, t+hEff/2, hEff/2)
		if err != nil {
			return nil, err
		}
		errEst := 0.0
		for i := range x1 {
			if d := math.Abs(x1[i] - x2[i]); d > errEst {
				errEst = d
			}
		}
		if errEst > o.LTETol && hEff > o.DtMin {
			// Reject and retry with a smaller step.
			h = math.Max(hEff/2, o.DtMin)
			continue
		}
		// Accept the more accurate composite solution.
		x = x2
		t += hEff
		record(t, x)
		if stop != nil && stop(t, func(id circuit.NodeID) float64 { return vAt(x, id) }) {
			break
		}
		// Grow the step toward the tolerance (BE is first order:
		// err ∝ h², for the doubled estimate — use a conservative
		// square-root controller with a 1.5× growth cap).
		if errEst > 0 {
			f := 0.9 * math.Sqrt(o.LTETol/errEst)
			if f > 1.5 {
				f = 1.5
			}
			if f < 0.3 {
				f = 0.3
			}
			h = hEff * f
		} else {
			h = hEff * 1.5
		}
		if h > o.DtMax {
			h = o.DtMax
		}
		if h < o.DtMin {
			h = o.DtMin
		}
	}
	return res, nil
}
