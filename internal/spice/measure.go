// Waveform post-processing: the .measure-style utilities (delay between
// node events, slew, peak) and CSV export for external plotting.
package spice

import (
	"fmt"
	"io"

	"mpsram/internal/circuit"
)

// Cross describes a measurement edge.
type Cross struct {
	Node      circuit.NodeID
	Threshold float64
	Dir       int // +1 rising, −1 falling
}

// Delay returns t(to-edge) − t(from-edge), the SPICE
// ".measure trig/targ" idiom.
func (r *Result) Delay(from, to Cross) (float64, error) {
	wf := r.NodeWave(from.Node)
	wt := r.NodeWave(to.Node)
	if wf == nil || wt == nil {
		return 0, fmt.Errorf("spice: delay endpoints not probed")
	}
	t0, err := r.FirstCrossing(func(k int) float64 { return wf[k] }, from.Threshold, from.Dir)
	if err != nil {
		return 0, fmt.Errorf("spice: trigger edge: %w", err)
	}
	t1, err := r.FirstCrossing(func(k int) float64 { return wt[k] }, to.Threshold, to.Dir)
	if err != nil {
		return 0, fmt.Errorf("spice: target edge: %w", err)
	}
	return t1 - t0, nil
}

// Slew returns the transition time of a node between two levels (e.g.
// 10 %→90 %); dir selects rising (+1) or falling (−1) edges.
func (r *Result) Slew(node circuit.NodeID, lowLevel, highLevel float64, dir int) (float64, error) {
	w := r.NodeWave(node)
	if w == nil {
		return 0, fmt.Errorf("spice: node not probed")
	}
	if lowLevel >= highLevel {
		return 0, fmt.Errorf("spice: slew levels inverted (%g ≥ %g)", lowLevel, highLevel)
	}
	first, second := lowLevel, highLevel
	if dir < 0 {
		first, second = highLevel, lowLevel
	}
	t0, err := r.FirstCrossing(func(k int) float64 { return w[k] }, first, dir)
	if err != nil {
		return 0, err
	}
	t1, err := r.FirstCrossing(func(k int) float64 { return w[k] }, second, dir)
	if err != nil {
		return 0, err
	}
	return t1 - t0, nil
}

// Peak returns the maximum (dir ≥ 0) or minimum (dir < 0) value of a
// probed node and the time it occurs.
func (r *Result) Peak(node circuit.NodeID, dir int) (value, at float64, err error) {
	w := r.NodeWave(node)
	if w == nil {
		return 0, 0, fmt.Errorf("spice: node not probed")
	}
	value = w[0]
	at = r.T[0]
	for k, v := range w {
		if (dir >= 0 && v > value) || (dir < 0 && v < value) {
			value, at = v, r.T[k]
		}
	}
	return value, at, nil
}

// WriteCSV dumps all probed waveforms as a time-indexed CSV using the
// netlist's node names.
func (r *Result) WriteCSV(w io.Writer, names func(circuit.NodeID) string) error {
	if names == nil {
		names = func(id circuit.NodeID) string { return fmt.Sprintf("n%d", int(id)) }
	}
	if _, err := fmt.Fprint(w, "t"); err != nil {
		return err
	}
	for _, n := range r.Nodes {
		if _, err := fmt.Fprintf(w, ",%s", names(n)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for k := range r.T {
		if _, err := fmt.Fprintf(w, "%.6e", r.T[k]); err != nil {
			return err
		}
		for i := range r.Nodes {
			if _, err := fmt.Fprintf(w, ",%.6e", r.V[i][k]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
