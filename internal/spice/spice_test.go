package spice

import (
	"math"
	"testing"

	"mpsram/internal/circuit"
	"mpsram/internal/device"
	"mpsram/internal/tech"
)

func TestIntegratorString(t *testing.T) {
	if Trapezoidal.String() != "trapezoidal" || BackwardEuler.String() != "backward-euler" {
		t.Fatal("integrator names")
	}
}

func TestDCVoltageDivider(t *testing.T) {
	n := circuit.New()
	a := n.Node("a")
	mid := n.Node("mid")
	n.AddV("src", a, circuit.Ground, circuit.DC(1.0))
	n.AddR("r1", a, mid, 1e3)
	n.AddR("r2", mid, circuit.Ground, 1e3)
	e, err := New(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	x, err := e.DCOperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vAt(x, a)-1.0) > 1e-4 {
		t.Fatalf("V(a) = %g, want ≈1.0", vAt(x, a))
	}
	if math.Abs(vAt(x, mid)-0.5) > 1e-4 {
		t.Fatalf("V(mid) = %g, want ≈0.5", vAt(x, mid))
	}
}

func TestDCCurrentSource(t *testing.T) {
	n := circuit.New()
	a := n.Node("a")
	n.AddI("i", a, circuit.Ground, circuit.DC(1e-3))
	n.AddR("r", a, circuit.Ground, 2e3)
	e, _ := New(n, Options{})
	x, err := e.DCOperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vAt(x, a)-2.0) > 1e-6 {
		t.Fatalf("V = %g, want 2.0", vAt(x, a))
	}
}

// rcDischarge builds the canonical RC discharge fixture: C charged to 1 V
// through a switch-like source step, discharging through R to ground.
func rcDischarge(r, c float64) (*circuit.Netlist, circuit.NodeID) {
	n := circuit.New()
	top := n.Node("top")
	// Source holds 1 V until t=0 then drops to 0 quickly. The node then
	// discharges through the source series resistance — instead, use a
	// pure RC: drive through a big resistor... Simplest exact fixture:
	// V source 1V -> R -> node with C to ground, source steps to 0 at t=0.
	drv := n.Node("drv")
	n.AddV("src", drv, circuit.Ground, circuit.Pulse{V0: 1, V1: 0, Delay: 0, Rise: 1e-15, Width: 1, Fall: 1e-15})
	n.AddR("r", drv, top, r)
	n.AddC("c", top, circuit.Ground, c)
	return n, top
}

func TestTransientRCDischargeTrapVsAnalytic(t *testing.T) {
	r, c := 1e3, 1e-12 // tau = 1 ns
	tau := r * c
	for _, method := range []Integrator{Trapezoidal, BackwardEuler} {
		n, top := rcDischarge(r, c)
		e, err := New(n, Options{Method: method})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Transient(5*tau, tau/200, []circuit.NodeID{top}, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Compare to the analytic exponential at several times.
		tol := 0.002 // trapezoidal
		if method == BackwardEuler {
			tol = 0.02 // first order
		}
		for _, mult := range []float64{0.5, 1, 2, 3} {
			tw := mult * tau
			k := int(tw / (tau / 200))
			want := math.Exp(-res.T[k] / tau)
			got := res.V[0][k]
			if math.Abs(got-want) > tol {
				t.Fatalf("%v at t=%.1f·tau: V=%.5f want %.5f", method, mult, got, want)
			}
		}
	}
}

func TestTransientDischargeTimeMatchesLnLaw(t *testing.T) {
	// Time to discharge to 90 % of initial value: t = ln(1/0.9)·tau ≈
	// 0.10536·tau — the paper's eq. (3) constant.
	r, c := 2e3, 0.5e-12
	tau := r * c
	n, top := rcDischarge(r, c)
	e, _ := New(n, Options{})
	res, err := e.Transient(tau, tau/2000, []circuit.NodeID{top}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wave := res.NodeWave(top)
	td, err := res.FirstCrossing(func(k int) float64 { return wave[k] }, 0.9, -1)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(1/0.9) * tau
	if math.Abs(td-want)/want > 0.01 {
		t.Fatalf("td = %g, want %g", td, want)
	}
}

func TestTransientChargeConservationLadder(t *testing.T) {
	// A 10-stage RC ladder driven by a step: final state must equal the
	// drive at every node (DC continuity), and voltages stay in [0, 1].
	n := circuit.New()
	drv := n.Node("drv")
	n.AddV("src", drv, circuit.Ground, circuit.Pulse{V0: 0, V1: 1, Rise: 1e-12, Width: 1})
	prev := drv
	var nodes []circuit.NodeID
	for i := 0; i < 10; i++ {
		nd := n.Node(nodeName(i))
		n.AddR("r", prev, nd, 100)
		n.AddC("c", nd, circuit.Ground, 1e-15)
		nodes = append(nodes, nd)
		prev = nd
	}
	e, _ := New(n, Options{})
	res, err := e.Transient(50e-12, 0.05e-12, nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	last := len(res.T) - 1
	for i := range nodes {
		v := res.V[i][last]
		if math.Abs(v-1) > 1e-3 {
			t.Fatalf("node %d final V = %g, want 1", i, v)
		}
		for k := range res.T {
			if res.V[i][k] < -1e-6 || res.V[i][k] > 1+1e-2 {
				t.Fatalf("node %d overshoot V=%g at step %d", i, res.V[i][k], k)
			}
		}
	}
}

func nodeName(i int) string { return "n" + string(rune('a'+i)) }

func TestNMOSInverterDC(t *testing.T) {
	// Resistive-load inverter: with the gate high, the output must pull
	// near ground; with the gate low, near VDD.
	f := tech.N10().FEOL
	nm := device.NewNMOS(f)
	build := func(vg float64) (*Engine, circuit.NodeID) {
		n := circuit.New()
		vdd := n.Node("vdd")
		g := n.Node("g")
		out := n.Node("out")
		n.AddV("vdd", vdd, circuit.Ground, circuit.DC(0.7))
		n.AddV("vg", g, circuit.Ground, circuit.DC(vg))
		n.AddR("rl", vdd, out, 200e3)
		n.AddM("mn", out, g, circuit.Ground, nm, 30e-9)
		e, err := New(n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return e, out
	}
	e, out := build(0.7)
	x, err := e.DCOperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if v := vAt(x, out); v > 0.1 {
		t.Fatalf("on-inverter output %g, want < 0.1", v)
	}
	e, out = build(0.0)
	x, err = e.DCOperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if v := vAt(x, out); v < 0.65 {
		t.Fatalf("off-inverter output %g, want ≈ 0.7", v)
	}
}

func TestMOSFETDischargeMatchesModelCurrent(t *testing.T) {
	// A saturated NMOS discharging a capacitor produces dV/dt = −Id/C.
	f := tech.N10().FEOL
	nm := device.NewNMOS(f)
	n := circuit.New()
	top := n.Node("top")
	g := n.Node("g")
	n.AddV("vg", g, circuit.Ground, circuit.DC(0.7))
	cap := 10e-15
	n.AddC("c", top, circuit.Ground, cap)
	// Precharge via a source that detaches: emulate with a pulse source
	// through a resistor that goes high-impedance... simplest: initial
	// condition via DC op with a precharge source, then the source steps
	// to 0 — instead drive the gate: gate low before t=0 (device off,
	// node held by source), gate high after.
	pre := n.Node("pre")
	n.AddV("vpre", pre, circuit.Ground, circuit.DC(0.7))
	n.AddR("rpre", pre, top, 50) // keeps node at 0.7 while device off
	// Gate pulse: off until 1 ps, then on.
	n.Vs[0].Wave = circuit.Pulse{V0: 0, V1: 0.7, Delay: 1e-12, Rise: 0.2e-12, Width: 1}
	// Remove the holding path once discharge starts by making it weak:
	// use a large resistor so its current is negligible vs the device.
	n.Rs[0].R = 10e6
	// With rpre huge, DC op leaves top at 0.7 only through 10 MΩ — still
	// exact at DC (no other path). Device off at t=0 keeps it there.
	n.AddM("mn", top, g, circuit.Ground, nm, 30e-9)
	e, err := New(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Transient(40e-12, 0.01e-12, []circuit.NodeID{top}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wave := res.NodeWave(top)
	// Measure slope between 0.65 V and 0.60 V (device saturated there).
	t65, err := res.FirstCrossing(func(k int) float64 { return wave[k] }, 0.65, -1)
	if err != nil {
		t.Fatal(err)
	}
	t60, err := res.FirstCrossing(func(k int) float64 { return wave[k] }, 0.60, -1)
	if err != nil {
		t.Fatal(err)
	}
	slope := 0.05 / (t60 - t65)
	// Expected slope from the model at mid-swing.
	id, _, _ := nm.Eval(30e-9, 0.7, 0.625)
	want := id / cap
	if math.Abs(slope-want)/want > 0.10 {
		t.Fatalf("discharge slope %.3g V/s vs model %.3g V/s", slope, want)
	}
}

func TestTransientErrors(t *testing.T) {
	n := circuit.New()
	a := n.Node("a")
	n.AddR("r", a, circuit.Ground, 1e3)
	n.AddV("v", a, circuit.Ground, circuit.DC(1))
	e, _ := New(n, Options{})
	if _, err := e.Transient(-1, 1e-12, nil, nil); err == nil {
		t.Fatal("negative tEnd must error")
	}
	if _, err := e.Transient(1e-9, 0, nil, nil); err == nil {
		t.Fatal("zero dt must error")
	}
	// Empty netlist rejected at New.
	if _, err := New(circuit.New(), Options{}); err == nil {
		t.Fatal("no-node netlist must error")
	}
	// Invalid netlist rejected.
	bad := circuit.New()
	bad.AddR("r", bad.Node("x"), circuit.Ground, -5)
	if _, err := New(bad, Options{}); err == nil {
		t.Fatal("invalid netlist must error")
	}
}

func TestStopFuncEndsEarly(t *testing.T) {
	r, c := 1e3, 1e-12
	n, top := rcDischarge(r, c)
	e, _ := New(n, Options{})
	stopped := 0
	res, err := e.Transient(10e-9, 1e-12, []circuit.NodeID{top},
		func(tm float64, v func(circuit.NodeID) float64) bool {
			if v(top) < 0.5 {
				stopped++
				return true
			}
			return false
		})
	if err != nil {
		t.Fatal(err)
	}
	if stopped != 1 {
		t.Fatal("stop func did not fire exactly once")
	}
	if res.T[len(res.T)-1] > 2e-9 {
		t.Fatalf("run did not stop early: ended at %g", res.T[len(res.T)-1])
	}
}

func TestFirstCrossingRising(t *testing.T) {
	res := &Result{T: []float64{0, 1, 2, 3}}
	vals := []float64{0, 0.2, 0.8, 1.0}
	tc, err := res.FirstCrossing(func(k int) float64 { return vals[k] }, 0.5, +1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tc-1.5) > 1e-12 {
		t.Fatalf("crossing at %g, want 1.5", tc)
	}
	if _, err := res.FirstCrossing(func(k int) float64 { return vals[k] }, 2.0, +1); err == nil {
		t.Fatal("missing crossing must error")
	}
}

func TestNodeWaveMissing(t *testing.T) {
	res := &Result{Nodes: []circuit.NodeID{5}, V: [][]float64{{1}}}
	if res.NodeWave(5) == nil || res.NodeWave(6) != nil {
		t.Fatal("NodeWave lookup broken")
	}
	if res.Probe(0)[0] != 1 {
		t.Fatal("Probe broken")
	}
}

func TestWaveforms(t *testing.T) {
	p := circuit.Pulse{V0: 0, V1: 1, Delay: 1, Rise: 1, Width: 2, Fall: 1}
	cases := []struct{ t, want float64 }{
		{0, 0}, {1, 0}, {1.5, 0.5}, {2, 1}, {3.9, 1}, {4.5, 0.5}, {6, 0},
	}
	for _, c := range cases {
		if got := p.At(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("pulse At(%g) = %g, want %g", c.t, got, c.want)
		}
	}
	pw := circuit.PWL{T: []float64{0, 1, 2}, V: []float64{0, 1, 0}}
	if pw.At(-1) != 0 || pw.At(0.5) != 0.5 || pw.At(1.5) != 0.5 || pw.At(3) != 0 {
		t.Fatal("PWL interpolation broken")
	}
	if (circuit.PWL{}).At(5) != 0 {
		t.Fatal("empty PWL must return 0")
	}
	if circuit.DC(3).At(99) != 3 {
		t.Fatal("DC waveform broken")
	}
	// Periodic pulse.
	pp := circuit.Pulse{V0: 0, V1: 1, Rise: 0.1, Width: 0.2, Fall: 0.1, Period: 1}
	if math.Abs(pp.At(1.2)-pp.At(0.2)) > 1e-12 {
		t.Fatal("periodic pulse broken")
	}
}
