package spice

import (
	"math/rand"
	"testing"

	"mpsram/internal/circuit"
	"mpsram/internal/device"
	"mpsram/internal/tech"
)

// FuzzNetlistReset drives the engine-reuse contract with random
// topology-stable parameter mutations: a netlist rebuilt in place
// (circuit.Netlist.Reset) and re-targeted through spice.Engine.Reset must
// produce transients bit-for-bit identical to a fresh New on an
// identically built netlist. Any divergence means the scratch reuse leaked
// state between runs.
func FuzzNetlistReset(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-7))
	f.Add(int64(2015))
	nm := device.NewNMOS(tech.N10().FEOL)

	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		// One topology per seed, two parameter mutations on it: the
		// resident engine runs the first, then Resets onto the second.
		segs := 1 + rng.Intn(4)
		draw := func() dischargeParams {
			return dischargeParams{
				segs: segs,
				r:    50 * (1 + 3*rng.Float64()),
				c:    1e-15 * (1 + 4*rng.Float64()),
				w:    20e-9 * (1 + 2*rng.Float64()),
				rpre: 1e6 * (1 + 9*rng.Float64()),
			}
		}
		pA, pB := draw(), draw()
		const tEnd, dt = 20e-12, 0.25e-12

		run := func(e *Engine, nl *circuit.Netlist, probes []circuit.NodeID) (*Result, error) {
			res, err := e.Transient(tEnd, dt, probes, nil)
			if err != nil {
				return nil, err
			}
			return snapshotResult(res), nil
		}

		// Reference: fresh netlist + fresh engine per mutation.
		nlB := circuit.New()
		probesB := buildDischarge(nlB, nm, pB)
		freshB, err := New(nlB, Options{})
		if err != nil {
			t.Skipf("fresh New rejected circuit: %v", err)
		}
		want, wantErr := run(freshB, nlB, probesB)

		// Reused path: one netlist object rebuilt in place, one engine
		// re-targeted with Reset after simulating mutation A.
		nl := circuit.New()
		probesA := buildDischarge(nl, nm, pA)
		resident, err := New(nl, Options{})
		if err != nil {
			t.Skipf("New rejected circuit A: %v", err)
		}
		if _, err := resident.Transient(tEnd, dt, probesA, nil); err != nil {
			t.Skipf("transient A failed: %v", err)
		}
		nl.Reset()
		probes := buildDischarge(nl, nm, pB)
		if err := resident.Reset(nl, Options{}); err != nil {
			t.Fatalf("Engine.Reset: %v", err)
		}
		got, gotErr := run(resident, nl, probes)

		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("fresh err=%v, reused err=%v", wantErr, gotErr)
		}
		if wantErr != nil {
			return
		}
		requireIdenticalResults(t, "fuzz reset", want, got)
	})
}
