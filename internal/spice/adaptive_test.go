package spice

import (
	"math"
	"testing"

	"mpsram/internal/circuit"
)

func TestAdaptiveRCDischargeAccuracy(t *testing.T) {
	r, c := 1e3, 1e-12
	tau := r * c
	n, top := rcDischarge(r, c)
	e, err := New(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.TransientAdaptive(6*tau, AdaptiveOptions{LTETol: 20e-6}, []circuit.NodeID{top}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wave := res.NodeWave(top)
	// Compare against the analytic exponential at every accepted point.
	for k, tm := range res.T {
		want := math.Exp(-tm / tau)
		if math.Abs(wave[k]-want) > 0.005 {
			t.Fatalf("t=%.3g: V=%.5f want %.5f", tm, wave[k], want)
		}
	}
	// The adaptive run should need far fewer points than the fixed-step
	// run at comparable accuracy (tau/200 · 6tau = 1200 points).
	if len(res.T) > 500 {
		t.Fatalf("adaptive run used %d points", len(res.T))
	}
	if len(res.T) < 10 {
		t.Fatalf("suspiciously few points: %d", len(res.T))
	}
}

func TestAdaptiveMatchesFixedOnThresholdCrossing(t *testing.T) {
	r, c := 2e3, 0.5e-12
	tau := r * c
	n, top := rcDischarge(r, c)
	eFixed, _ := New(n, Options{})
	fixed, err := eFixed.Transient(tau, tau/2000, []circuit.NodeID{top}, nil)
	if err != nil {
		t.Fatal(err)
	}
	fw := fixed.NodeWave(top)
	tdFixed, err := fixed.FirstCrossing(func(k int) float64 { return fw[k] }, 0.9, -1)
	if err != nil {
		t.Fatal(err)
	}
	n2, top2 := rcDischarge(r, c)
	eAd, _ := New(n2, Options{})
	ad, err := eAd.TransientAdaptive(tau, AdaptiveOptions{LTETol: 20e-6}, []circuit.NodeID{top2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	aw := ad.NodeWave(top2)
	tdAd, err := ad.FirstCrossing(func(k int) float64 { return aw[k] }, 0.9, -1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tdAd-tdFixed)/tdFixed > 0.02 {
		t.Fatalf("adaptive td %g vs fixed %g", tdAd, tdFixed)
	}
}

func TestAdaptiveRespectsBreakpoints(t *testing.T) {
	// A pulse that fires late in a long quiet window: without breakpoint
	// clipping a grown step would jump the edge.
	n := circuit.New()
	a := n.Node("a")
	n.AddV("src", a, circuit.Ground, circuit.Pulse{
		V0: 0, V1: 1, Delay: 8e-9, Rise: 0.1e-9, Width: 1,
	})
	n.AddR("r", a, n.Node("b"), 1e3)
	n.AddC("c", n.Node("b"), circuit.Ground, 0.1e-12)
	e, _ := New(n, Options{})
	res, err := e.TransientAdaptive(10e-9, AdaptiveOptions{}, []circuit.NodeID{a}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// One accepted point must land exactly on the pulse delay.
	found := false
	for _, tm := range res.T {
		if math.Abs(tm-8e-9) < 1e-15 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no accepted step on the 8 ns breakpoint (points: %d)", len(res.T))
	}
	// And the edge is resolved: the source value right after the corner.
	wave := res.NodeWave(a)
	if _, err := res.FirstCrossing(func(k int) float64 { return wave[k] }, 0.5, +1); err != nil {
		t.Fatal("pulse edge was skipped")
	}
}

func TestAdaptiveStopFunc(t *testing.T) {
	r, c := 1e3, 1e-12
	n, top := rcDischarge(r, c)
	e, _ := New(n, Options{})
	res, err := e.TransientAdaptive(10e-9, AdaptiveOptions{}, []circuit.NodeID{top},
		func(tm float64, v func(circuit.NodeID) float64) bool { return v(top) < 0.5 })
	if err != nil {
		t.Fatal(err)
	}
	if res.T[len(res.T)-1] > 2e-9 {
		t.Fatalf("stop func ignored: ended at %g", res.T[len(res.T)-1])
	}
}

func TestAdaptiveErrors(t *testing.T) {
	n, _ := rcDischarge(1e3, 1e-12)
	e, _ := New(n, Options{})
	if _, err := e.TransientAdaptive(-1, AdaptiveOptions{}, nil, nil); err == nil {
		t.Fatal("negative window accepted")
	}
	if _, err := e.TransientAdaptive(1e-9, AdaptiveOptions{DtInit: 1e-12, DtMax: 1e-13}, nil, nil); err == nil {
		t.Fatal("inconsistent steps accepted")
	}
}

func TestAdaptiveMOSFETColumnAgreesWithFixed(t *testing.T) {
	// Nonlinear circuit: the inverter-load discharge from the engine
	// tests, adaptive vs fixed.
	build := func() (*Engine, circuit.NodeID) {
		n, top := rcDischarge(5e3, 2e-12)
		e, err := New(n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return e, top
	}
	eF, top := build()
	fixed, err := eF.Transient(40e-9, 10e-12, []circuit.NodeID{top}, nil)
	if err != nil {
		t.Fatal(err)
	}
	eA, topA := build()
	ad, err := eA.TransientAdaptive(40e-9, AdaptiveOptions{}, []circuit.NodeID{topA}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Compare final values.
	fv := fixed.NodeWave(top)
	av := ad.NodeWave(topA)
	if math.Abs(fv[len(fv)-1]-av[len(av)-1]) > 0.01 {
		t.Fatalf("final values: fixed %g vs adaptive %g", fv[len(fv)-1], av[len(av)-1])
	}
}

// TestAdaptiveRejectedFirstStepStateIntact is the regression for a
// scratch-reuse aliasing bug: with the state still resident in a Newton
// ping-pong buffer, the third solve of a step-doubling attempt could
// overwrite it, so a rejected first step retried from a corrupted state.
// A first-step rejection needs source movement inside the very first
// attempt without an intervening breakpoint to clip the step, which only
// a ramp starting at t = 0 provides (pulse corners all become
// breakpoints): a PWL drive 1 V → 0 V over one tau, a large initial step
// and a tight LTE bound force the immediate reject-and-retry.
func TestAdaptiveRejectedFirstStepStateIntact(t *testing.T) {
	r, c := 1e3, 1e-12
	tau := r * c
	n := circuit.New()
	drv := n.Node("drv")
	top := n.Node("top")
	n.AddV("src", drv, circuit.Ground, circuit.PWL{T: []float64{0, tau}, V: []float64{1, 0}})
	n.AddR("r", drv, top, r)
	n.AddC("c", top, circuit.Ground, c)
	e, err := New(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	opt := AdaptiveOptions{DtInit: tau / 2, DtMax: tau / 2, DtMin: tau / 1e6, LTETol: 2e-6}
	res, err := e.TransientAdaptive(tau, opt, []circuit.NodeID{top}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: the same circuit on a fine fixed-step backward-Euler
	// grid (the adaptive integrator's own method, so the comparison is
	// integration-error-only).
	n2 := circuit.New()
	drv2 := n2.Node("drv")
	top2 := n2.Node("top")
	n2.AddV("src", drv2, circuit.Ground, circuit.PWL{T: []float64{0, tau}, V: []float64{1, 0}})
	n2.AddR("r", drv2, top2, r)
	n2.AddC("c", top2, circuit.Ground, c)
	eRef, err := New(n2, Options{Method: BackwardEuler})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := eRef.Transient(tau, tau/4000, []circuit.NodeID{top2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rw := ref.NodeWave(top2)
	refAt := func(tm float64) float64 {
		k := int(tm / (tau / 4000))
		if k >= len(rw)-1 {
			return rw[len(rw)-1]
		}
		f := tm/(tau/4000) - float64(k)
		return rw[k]*(1-f) + rw[k+1]*f
	}
	wave := res.NodeWave(top)
	for k, tm := range res.T {
		if want := refAt(tm); math.Abs(wave[k]-want) > 0.005 {
			t.Fatalf("t=%.3g: V=%.5f want %.5f (corrupted retry state?)", tm, wave[k], want)
		}
	}
}
