// Package spice is the circuit simulator substrate of the study — the
// stand-in for the commercial SPICE the paper runs its SRAM netlists on.
//
// It implements nodal analysis with Norton-transformed voltage sources
// (see internal/circuit), Newton–Raphson iteration over the alpha-power
// MOSFET models, gmin stepping for the DC operating point, and fixed-step
// transient integration with backward-Euler or trapezoidal companion
// models for capacitors. Waveforms are probed per node and threshold
// crossings (the paper's time-to-discharge measurement) are extracted with
// linear interpolation.
package spice

import (
	"fmt"
	"math"

	"mpsram/internal/circuit"
	"mpsram/internal/sparse"
)

// Integrator selects the companion model used for capacitors.
type Integrator int

const (
	// Trapezoidal is second-order accurate and the default.
	Trapezoidal Integrator = iota
	// BackwardEuler is first-order, stiffly stable, used for ablation.
	BackwardEuler
)

func (i Integrator) String() string {
	if i == BackwardEuler {
		return "backward-euler"
	}
	return "trapezoidal"
}

// Options tunes the engine.
type Options struct {
	Method    Integrator
	Gmin      float64 // conductance from every node to ground (default 1e-12)
	AbsTol    float64 // Newton absolute voltage tolerance (default 1 µV)
	RelTol    float64 // Newton relative tolerance (default 1e-6)
	MaxNewton int     // max Newton iterations per solve (default 60)
	VLimit    float64 // per-iteration voltage step clamp (default 0.4 V)
}

func (o Options) withDefaults() Options {
	if o.Gmin == 0 {
		o.Gmin = 1e-12
	}
	if o.AbsTol == 0 {
		o.AbsTol = 1e-6
	}
	if o.RelTol == 0 {
		o.RelTol = 1e-6
	}
	if o.MaxNewton == 0 {
		o.MaxNewton = 60
	}
	if o.VLimit == 0 {
		o.VLimit = 0.4
	}
	return o
}

// Engine simulates one netlist. An Engine owns all the scratch a transient
// needs — the sparse matrices, the Newton iteration buffers, the solver's
// factorization scratch and the waveform storage — and Reset re-targets
// the whole bundle at a mutated netlist without going back to the
// allocator, which is what makes SPICE-in-the-loop Monte-Carlo affordable
// (one resident Engine per worker instead of a New per trial).
type Engine struct {
	ckt  *circuit.Netlist
	opts Options
	n    int // unknowns (nodes minus ground)

	// static holds the time-invariant resistive stamps: resistors,
	// voltage-source series conductances, gmin.
	static *sparse.Matrix
	// capG holds the capacitor companion conductances for the current
	// step size (rebuilt when dt changes).
	capDt   float64
	capBase *sparse.Matrix
	// capState tracks per-capacitor branch current (trapezoidal).
	capI []float64
	// nodeset seeds the DC solve (SPICE .nodeset): during the early gmin
	// stages each listed node is weakly tied to its hint voltage, which
	// selects the intended solution basin in bistable circuits (SRAM
	// cells have a metastable saddle Newton would otherwise find).
	nodeset map[circuit.NodeID]float64

	// Reusable scratch. work is the per-Newton-iteration matrix (refilled
	// from the base by CopyFrom instead of Clone), dcBase the per-stage DC
	// matrix, solver the factorization scratch, rhsStep/rhsIter the
	// per-step and per-iteration right-hand sides, xA/xB the ping-pong
	// Newton solution buffers, and resT/resV the waveform storage behind
	// the Result of the fixed-step Transient.
	work    *sparse.Matrix
	dcBase  *sparse.Matrix
	solver  sparse.Solver
	rhsStep []float64
	rhsIter []float64
	xA, xB  []float64
	resT    []float64
	resV    [][]float64
}

// SetNodeset installs DC solution hints (see the nodeset field).
func (e *Engine) SetNodeset(hints map[circuit.NodeID]float64) { e.nodeset = hints }

// New builds an engine after validating the netlist.
func New(ckt *circuit.Netlist, opts Options) (*Engine, error) {
	e := &Engine{}
	if err := e.Reset(ckt, opts); err != nil {
		return nil, err
	}
	return e, nil
}

// Reset re-targets the engine at netlist ckt under options opts, reusing
// every internal allocation: the sparse matrix storage, the Newton and
// right-hand-side scratch, the solver's factorization workspace and the
// waveform buffers. The netlist may differ arbitrarily from the previous
// one (parameter mutations, different size); when the topology is stable
// the rebuild performs no heap allocation at all. Results are bit-for-bit
// identical to a freshly constructed engine on the same netlist: Reset
// only removes reallocation, never changes an arithmetic step.
//
// Reset clears any installed nodeset and invalidates Results returned by
// earlier Transient calls on this engine (their waveform storage is
// recycled).
func (e *Engine) Reset(ckt *circuit.Netlist, opts Options) error {
	if err := ckt.Validate(); err != nil {
		return err
	}
	n := ckt.NumNodes() - 1
	if n <= 0 {
		return fmt.Errorf("spice: netlist has no non-ground nodes")
	}
	e.ckt = ckt
	e.opts = opts.withDefaults()
	e.n = n
	if e.static == nil {
		e.static = new(sparse.Matrix)
	}
	e.buildStaticInto(e.static, e.opts.Gmin)
	// Invalidate the capacitor companion cache: NaN never compares equal
	// to a valid dt, so the next Transient rebuilds it from the new
	// element values.
	e.capDt = math.NaN()
	if cap(e.capI) >= len(ckt.Cs) {
		e.capI = e.capI[:len(ckt.Cs)]
	} else {
		e.capI = make([]float64, len(ckt.Cs))
	}
	clear(e.capI)
	e.nodeset = nil
	return nil
}

// ix maps a node to its matrix index; ground is −1.
func ix(id circuit.NodeID) int { return int(id) - 1 }

// stamp adds conductance g between nodes a and b.
func stampG(m *sparse.Matrix, a, b circuit.NodeID, g float64) {
	ia, ib := ix(a), ix(b)
	if ia >= 0 {
		m.Add(ia, ia, g)
	}
	if ib >= 0 {
		m.Add(ib, ib, g)
	}
	if ia >= 0 && ib >= 0 {
		m.Add(ia, ib, -g)
		m.Add(ib, ia, -g)
	}
}

// rhsI injects current i into node a and out of node b.
func rhsI(rhs []float64, a, b circuit.NodeID, i float64) {
	if ia := ix(a); ia >= 0 {
		rhs[ia] += i
	}
	if ib := ix(b); ib >= 0 {
		rhs[ib] -= i
	}
}

// buildStaticInto assembles the time-invariant resistive stamps into m,
// reusing its row storage.
func (e *Engine) buildStaticInto(m *sparse.Matrix, gmin float64) {
	m.Reuse(e.n)
	for i := 0; i < e.n; i++ {
		m.Add(i, i, gmin)
	}
	for _, r := range e.ckt.Rs {
		stampG(m, r.A, r.B, 1/r.R)
	}
	for _, v := range e.ckt.Vs {
		stampG(m, v.P, v.N, 1/v.RS)
	}
}

// buildCapBase caches static + capacitor companion conductances for dt.
func (e *Engine) buildCapBase(dt float64) {
	if e.capBase != nil && e.capDt == dt {
		return
	}
	if e.capBase == nil {
		e.capBase = new(sparse.Matrix)
	}
	e.capBase.CopyFrom(e.static)
	m := e.capBase
	k := 1.0
	if e.opts.Method == Trapezoidal {
		k = 2.0
	}
	for _, c := range e.ckt.Cs {
		stampG(m, c.A, c.B, k*c.C/dt)
	}
	e.capDt = dt
}

// rhsBuf returns the per-step right-hand-side buffer, zeroed and sized to
// the current unknown count.
func (e *Engine) rhsBuf() []float64 {
	if cap(e.rhsStep) >= e.n {
		e.rhsStep = e.rhsStep[:e.n]
	} else {
		e.rhsStep = make([]float64, e.n)
	}
	clear(e.rhsStep)
	return e.rhsStep
}

// solutionBuf returns one of the two ping-pong Newton solution buffers,
// never the one aliasing avoid (the caller's x0 must survive a failed
// solve, and the transient loop reads the previous step's solution after
// the new one lands).
func (e *Engine) solutionBuf(avoid []float64) []float64 {
	// Cap-based reslice like the other scratch buffers, so Resets that
	// bounce between netlist sizes (a multi-size Monte-Carlo trial) stay
	// allocation-free; newtonSolve fully overwrites the buffer, and the
	// identity check below survives reslicing (the base pointer does not
	// move).
	if cap(e.xA) >= e.n {
		e.xA = e.xA[:e.n]
	} else {
		e.xA = make([]float64, e.n)
	}
	if cap(e.xB) >= e.n {
		e.xB = e.xB[:e.n]
	} else {
		e.xB = make([]float64, e.n)
	}
	if len(avoid) > 0 && &avoid[0] == &e.xA[0] {
		return e.xB
	}
	return e.xA
}

// sourceRHS adds the independent-source currents at time t.
func (e *Engine) sourceRHS(rhs []float64, t float64) {
	for _, v := range e.ckt.Vs {
		rhsI(rhs, v.P, v.N, v.Wave.At(t)/v.RS)
	}
	for _, i := range e.ckt.Is {
		rhsI(rhs, i.P, i.N, i.Wave.At(t))
	}
}

// vAt reads node voltage from the solution vector.
func vAt(x []float64, id circuit.NodeID) float64 {
	if id == circuit.Ground {
		return 0
	}
	return x[ix(id)]
}

// newtonSolve iterates the MOSFET linearization around x0 on top of the
// prepared base matrix/rhs until convergence. base must include all linear
// stamps; rhsBase all linear source terms. Returns the converged solution,
// which lives in one of the engine's two ping-pong buffers (never the one
// holding x0) and stays valid until the buffer's next reuse — callers
// consume it before the second-following newtonSolve call. x0 is left
// untouched on failure.
func (e *Engine) newtonSolve(base *sparse.Matrix, rhsBase []float64, x0 []float64) ([]float64, error) {
	x := e.solutionBuf(x0)
	copy(x, x0)
	if e.work == nil {
		e.work = new(sparse.Matrix)
	}
	if cap(e.rhsIter) >= e.n {
		e.rhsIter = e.rhsIter[:e.n]
	} else {
		e.rhsIter = make([]float64, e.n)
	}
	o := e.opts
	for iter := 0; iter < o.MaxNewton; iter++ {
		e.work.CopyFrom(base)
		m := e.work
		rhs := e.rhsIter
		copy(rhs, rhsBase)
		for _, mos := range e.ckt.Ms {
			vgs := vAt(x, mos.G) - vAt(x, mos.S)
			vds := vAt(x, mos.D) - vAt(x, mos.S)
			id, gm, gds := mos.Model.Eval(mos.W, vgs, vds)
			// Linearized drain current: id + gm·Δvgs + gds·Δvds.
			// Stamp conductances and the Norton residual current.
			ieq := id - gm*vgs - gds*vds
			iD, iG, iS := ix(mos.D), ix(mos.G), ix(mos.S)
			add := func(r, c int, v float64) {
				if r >= 0 && c >= 0 {
					m.Add(r, c, v)
				}
			}
			add(iD, iG, gm)
			add(iD, iD, gds)
			add(iD, iS, -gm-gds)
			add(iS, iG, -gm)
			add(iS, iD, -gds)
			add(iS, iS, gm+gds)
			if iD >= 0 {
				rhs[iD] -= ieq
			}
			if iS >= 0 {
				rhs[iS] += ieq
			}
		}
		xNew, err := e.solver.Solve(m, rhs)
		if err != nil {
			return nil, fmt.Errorf("spice: newton iteration %d: %w", iter, err)
		}
		// Damped update with per-node step clamp.
		conv := true
		for i := range xNew {
			d := xNew[i] - x[i]
			if d > o.VLimit {
				d = o.VLimit
				conv = false
			} else if d < -o.VLimit {
				d = -o.VLimit
				conv = false
			}
			if math.Abs(d) > o.AbsTol+o.RelTol*math.Abs(x[i]) {
				conv = false
			}
			x[i] += d
		}
		if conv {
			return x, nil
		}
	}
	return nil, fmt.Errorf("spice: newton failed to converge in %d iterations", o.MaxNewton)
}

// DCOperatingPoint solves the bias point at t = 0 with capacitors open,
// using gmin stepping for robustness: the ground-shunt conductance starts
// large and is relaxed geometrically to the target.
//
// The returned slice lives in one of the engine's reusable Newton
// buffers and is overwritten by the next DCOperatingPoint, Transient or
// TransientAdaptive call on this engine; callers comparing bias points
// across runs must copy it first.
func (e *Engine) DCOperatingPoint() ([]float64, error) {
	x := make([]float64, e.n)
	for id, v := range e.nodeset {
		if i := ix(id); i >= 0 {
			x[i] = v
		}
	}
	var lastErr error
	stages := []float64{1e-3, 1e-5, 1e-7, 1e-9, e.opts.Gmin}
	if e.dcBase == nil {
		e.dcBase = new(sparse.Matrix)
	}
	for si, gmin := range stages {
		e.buildStaticInto(e.dcBase, gmin)
		base := e.dcBase
		rhs := e.rhsBuf()
		e.sourceRHS(rhs, 0)
		if si < len(stages)-1 {
			// Hold nodeset hints with a 1 mS tie during the damped
			// stages; the final stage releases them.
			const gns = 1e-3
			for id, v := range e.nodeset {
				if i := ix(id); i >= 0 {
					base.Add(i, i, gns)
					rhs[i] += gns * v
				}
			}
		}
		xNew, err := e.newtonSolve(base, rhs, x)
		if err != nil {
			lastErr = err
			continue
		}
		x = xNew
		lastErr = nil
	}
	if lastErr != nil {
		return nil, fmt.Errorf("spice: DC operating point: %w", lastErr)
	}
	return x, nil
}

// Result holds probed transient waveforms.
type Result struct {
	T     []float64
	Nodes []circuit.NodeID
	V     [][]float64 // V[probe][step]
	names []string
}

// Probe returns the waveform of the i-th probed node.
func (r *Result) Probe(i int) []float64 { return r.V[i] }

// NodeWave returns the waveform of a probed node id (nil if not probed).
func (r *Result) NodeWave(id circuit.NodeID) []float64 {
	for i, n := range r.Nodes {
		if n == id {
			return r.V[i]
		}
	}
	return nil
}

// FirstCrossing returns the first time the scalar series f(step) crosses
// the threshold in the rising (dir>0) or falling (dir<0) direction, with
// linear interpolation between steps. Returns an error if no crossing.
func (r *Result) FirstCrossing(f func(step int) float64, threshold float64, dir int) (float64, error) {
	prev := f(0)
	for k := 1; k < len(r.T); k++ {
		cur := f(k)
		crossed := (dir >= 0 && prev < threshold && cur >= threshold) ||
			(dir < 0 && prev > threshold && cur <= threshold)
		if crossed {
			frac := (threshold - prev) / (cur - prev)
			return r.T[k-1] + frac*(r.T[k]-r.T[k-1]), nil
		}
		prev = cur
	}
	return 0, fmt.Errorf("spice: no threshold crossing of %g found in %d steps", threshold, len(r.T))
}

// StopFunc lets callers terminate a transient early; it receives the step
// index and a voltage accessor.
type StopFunc func(t float64, v func(circuit.NodeID) float64) bool

// Transient integrates from 0 to tEnd with fixed step dt, starting from
// the DC operating point, probing the given nodes each step. If stop is
// non-nil the run ends once it returns true (after recording that step).
//
// The returned Result's waveform storage belongs to the engine and is
// recycled by the next Transient or Reset call on this engine; callers
// that keep an engine resident across runs must extract what they need
// (crossings, measurements, copies) before reusing the engine.
func (e *Engine) Transient(tEnd, dt float64, probes []circuit.NodeID, stop StopFunc) (*Result, error) {
	if dt <= 0 || tEnd <= 0 || tEnd < dt {
		return nil, fmt.Errorf("spice: bad transient window tEnd=%g dt=%g", tEnd, dt)
	}
	x, err := e.DCOperatingPoint()
	if err != nil {
		return nil, err
	}
	e.buildCapBase(dt)
	// Reset trapezoidal capacitor currents from the DC point (zero).
	for i := range e.capI {
		e.capI[i] = 0
	}
	steps := int(math.Ceil(tEnd/dt)) + 1
	res := &Result{Nodes: probes}
	if cap(e.resT) < steps {
		e.resT = make([]float64, 0, steps)
	}
	res.T = e.resT[:0]
	if cap(e.resV) >= len(probes) {
		e.resV = e.resV[:len(probes)]
	} else {
		old := e.resV
		e.resV = make([][]float64, len(probes))
		copy(e.resV, old)
	}
	res.V = e.resV
	for i := range res.V {
		if cap(res.V[i]) < steps {
			res.V[i] = make([]float64, 0, steps)
		} else {
			res.V[i] = res.V[i][:0]
		}
	}
	record := func(t float64, x []float64) {
		res.T = append(res.T, t)
		for i, p := range probes {
			res.V[i] = append(res.V[i], vAt(x, p))
		}
	}
	record(0, x)
	trap := e.opts.Method == Trapezoidal
	k := 1.0
	if trap {
		k = 2.0
	}
	for t := dt; t <= tEnd+dt/2; t += dt {
		rhs := e.rhsBuf()
		e.sourceRHS(rhs, t)
		// Capacitor companion currents from the previous state.
		for ci, c := range e.ckt.Cs {
			vPrev := vAt(x, c.A) - vAt(x, c.B)
			ieq := k * c.C / dt * vPrev
			if trap {
				ieq += e.capI[ci]
			}
			rhsI(rhs, c.A, c.B, ieq)
		}
		xNew, err := e.newtonSolve(e.capBase, rhs, x)
		if err != nil {
			return nil, fmt.Errorf("spice: transient at t=%g: %w", t, err)
		}
		// Update capacitor branch currents (trapezoidal state).
		if trap {
			for ci, c := range e.ckt.Cs {
				vPrev := vAt(x, c.A) - vAt(x, c.B)
				vNow := vAt(xNew, c.A) - vAt(xNew, c.B)
				e.capI[ci] = k*c.C/dt*(vNow-vPrev) - e.capI[ci]
			}
		}
		x = xNew
		record(t, x)
		if stop != nil && stop(t, func(id circuit.NodeID) float64 { return vAt(x, id) }) {
			break
		}
	}
	// Retain grown waveform storage for the next run on this engine.
	e.resT = res.T
	return res, nil
}
