package serve

import (
	"fmt"
	"reflect"
	"testing"
)

// The shardProgress aggregator feeds the run's SSE stream from N
// concurrent, independently-paced shard observers. Its contract: the
// published (done, total) aggregate is monotone even when individual
// observations arrive out of order or regress (a re-dispatched attempt
// warming back up to its checkpoint), nothing is published while no
// shard has reported a total yet, and the terminal frame is the exact
// 100% sum.

func TestShardProgressAggregator(t *testing.T) {
	var published []string
	agg := newShardProgress(3, func(done, total int) {
		published = append(published, fmt.Sprintf("%d/%d", done, total))
	})

	// A zero observation carries no total: nothing to publish yet.
	agg.update(0, 0, 0)
	if len(published) != 0 {
		t.Fatalf("published %v before any shard reported a total", published)
	}

	agg.update(1, 10, 100) // first real frontier
	agg.update(2, 5, 100)  // out-of-order: shard 2 before shard 0
	agg.update(1, 3, 100)  // regression (re-dispatch warming up): dropped
	agg.update(1, 12, 50)  // done advances; the smaller total is ignored
	agg.update(0, 100, 100)
	agg.update(1, 100, 100)
	agg.update(2, 100, 100) // terminal: every shard at 100%

	want := []string{"10/100", "15/200", "17/200", "117/300", "205/300", "300/300"}
	if !reflect.DeepEqual(published, want) {
		t.Fatalf("published sequence %v, want %v", published, want)
	}
}

// TestShardProgressMonotone pins the aggregate-level guarantee the SSE
// contract depends on: across any interleaving of updates, published
// done and total never decrease, and done never exceeds total.
func TestShardProgressMonotone(t *testing.T) {
	lastDone, lastTotal := -1, -1
	agg := newShardProgress(2, func(done, total int) {
		if done < lastDone || total < lastTotal {
			t.Fatalf("aggregate regressed: %d/%d after %d/%d", done, total, lastDone, lastTotal)
		}
		if done > total {
			t.Fatalf("done %d exceeds total %d", done, total)
		}
		lastDone, lastTotal = done, total
	})
	// A hostile interleaving: regressions, repeats, late totals.
	agg.update(0, 4, 50)
	agg.update(1, 1, 50)
	agg.update(0, 2, 50) // regressing peer report: dropped
	agg.update(0, 4, 50) // repeat of the frontier: republished, not regressed
	agg.update(1, 50, 50)
	agg.update(0, 50, 50)
	if lastDone != 100 || lastTotal != 100 {
		t.Fatalf("terminal frame %d/%d, want 100/100", lastDone, lastTotal)
	}
}
