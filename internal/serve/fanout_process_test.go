package serve

import (
	"bytes"
	"context"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"mpsram/internal/core"
	"mpsram/internal/mc"
)

// buildMpvar compiles the real mpvar binary into a test temp dir. The go
// build cache makes this cheap after the first run; process-mode fan-out
// is meaningless against anything but the actual CLI.
func buildMpvar(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mpvar")
	cmd := exec.Command("go", "build", "-o", bin, "mpsram/cmd/mpvar")
	cmd.Dir = filepath.Join("..", "..")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build mpvar: %v\n%s", err, out)
	}
	return bin
}

// TestFanoutProcessExec drives the opt-in child-process vehicle end to
// end over the real binary: the fanned body is byte-identical to direct
// execution (the child recomputes the identical run key from the
// re-serialized spec), and the child's failure modes surface as shard
// errors — a missing binary (spawn failure) and a child that exits
// non-zero with its stderr tail attached.
func TestFanoutProcessExec(t *testing.T) {
	body := `{"workload":"fig5","samples":6000}`
	direct := directBody(t, body)

	bin := buildMpvar(t)
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{
		Workers: 1, Fanout: 2, FanoutMinSamples: 1, EngineWorkers: 1,
		FanoutDir: dir, FanoutExec: "process", FanoutBinary: bin,
	})
	if _, ok := s.shardRunner.(processExec); !ok {
		t.Fatalf("FanoutExec process wired %T, want processExec", s.shardRunner)
	}
	resp, fanned := postRun(t, ts, "", body)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Mpvar-Fanout") != "2" {
		t.Fatalf("process fan-out: %d fanout %q: %s", resp.StatusCode, resp.Header.Get("X-Mpvar-Fanout"), fanned)
	}
	if !bytes.Equal(direct, fanned) {
		t.Fatalf("process fan-out body diverged from direct execution:\ndirect: %s\nfanned: %s", direct, fanned)
	}

	// Spawn failure: a binary that does not exist errors without stderr.
	missing := processExec{bin: filepath.Join(t.TempDir(), "no-such-mpvar"), workers: 1}
	spec := core.RunSpec{Workload: "fig5", Samples: 100, Seed: 1, Process: "n10",
		Params: map[string]any{"samples": 100}}
	shard := mc.ShardSpec{Index: 0, Count: 2}
	art := filepath.Join(t.TempDir(), "shard.art")
	if err := missing.runShard(context.Background(), spec, shard, art, nil); err == nil ||
		!strings.Contains(err.Error(), "shard 0/2 child") {
		t.Fatalf("missing binary error drifted: %v", err)
	}

	// Child failure: an unknown workload makes the real binary exit
	// non-zero; its stderr tail rides the shard error, and the progress
	// poller starts and stops cleanly with no artifact ever appearing.
	bad := processExec{bin: bin, workers: 1}
	badSpec := core.RunSpec{Workload: "no-such-workload", Samples: 100, Seed: 1, Process: "n10"}
	err := bad.runShard(context.Background(), badSpec, shard, art, func(done, total int) {})
	if err == nil || !strings.Contains(err.Error(), "shard 0/2 child") ||
		!strings.Contains(err.Error(), "exit status") {
		t.Fatalf("failing child error drifted: %v", err)
	}
}
