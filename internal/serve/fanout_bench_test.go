package serve

import (
	"context"
	"strconv"
	"testing"
	"time"

	"mpsram/internal/core"
)

// BenchmarkServeFanout measures one heavy submission end to end through
// the executor — direct versus fanned out into 3 shards — with the
// engine pinned to one worker per shard so the comparison is honest on
// any core count: on an N-core machine the fanout3 case approaches
// min(N, 3)× the direct throughput; on one core the two are within the
// shard/reduce overhead of each other. Seeds vary per iteration so every
// submission misses the cache and actually executes.
func BenchmarkServeFanout(b *testing.B) {
	for _, bc := range []struct {
		name   string
		fanout int
	}{{"direct", 1}, {"fanout3", 3}} {
		b.Run(bc.name, func(b *testing.B) {
			s := New(Config{
				Workers: 1, Fanout: bc.fanout, FanoutMinSamples: 1,
				EngineWorkers: 1, FanoutDir: b.TempDir(),
			})
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
				defer cancel()
				_ = s.Drain(ctx)
			}()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				spec, err := core.RunSpec{Workload: "fig5", Samples: 30000, Seed: int64(7000 + i)}.Normalize()
				if err != nil {
					b.Fatal(err)
				}
				key, err := spec.Key()
				if err != nil {
					b.Fatal(err)
				}
				r, outcome := s.submit(key, spec)
				if outcome != submitQueued {
					b.Fatal("submission not queued: " + strconv.Itoa(int(outcome)))
				}
				<-r.done
				if r.err != nil {
					b.Fatal(r.err)
				}
			}
		})
	}
}
