package serve

import (
	"context"
	"encoding/json"
	"strconv"
	"sync"
	"time"

	"mpsram/internal/core"
	"mpsram/internal/exp"
	"mpsram/internal/report"
)

// Run lifecycle. A run is identified by its content address (the
// core.RunSpec key): identical submissions — concurrent or repeated —
// resolve to the same run record while it is in flight (single-flight)
// and to the same cached body afterwards. Failed runs keep their record
// (bounded, see maxFailedRetained) so status queries answer "failed"
// with the error instead of 404, but their bodies are never cached: a
// re-submission executes again (errors are usually transient — a
// timeout, a canceled context — while results are forever).

// runStatus is the lifecycle state exposed by the status endpoints.
type runStatus string

const (
	statusQueued  runStatus = "queued"
	statusRunning runStatus = "running"
	statusDone    runStatus = "done"
	statusFailed  runStatus = "failed"
)

// maxFailedRetained bounds the failed-run records kept for status
// queries; beyond it the oldest failures are forgotten (and 404 again).
const maxFailedRetained = 64

// progressPoint is one (done, total) progress observation.
type progressPoint struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// run is one in-flight execution.
type run struct {
	key  string
	spec core.RunSpec // normalized

	mu       sync.Mutex
	status   runStatus
	progress progressPoint
	fanout   int // shards this run fanned out into (0 = direct)
	subs     map[chan progressPoint]struct{}

	done chan struct{} // closed once body/err are final
	body []byte
	err  error
}

func newRun(key string, spec core.RunSpec) *run {
	return &run{
		key:    key,
		spec:   spec,
		status: statusQueued,
		subs:   make(map[chan progressPoint]struct{}),
		done:   make(chan struct{}),
	}
}

// setRunning marks the transition out of the queue.
func (r *run) setRunning() {
	r.mu.Lock()
	r.status = statusRunning
	r.mu.Unlock()
}

// snapshot returns the current status, progress and terminal error
// consistently.
func (r *run) snapshot() (runStatus, progressPoint, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status, r.progress, r.err
}

// setFanout records the shard count the executor chose for this run.
func (r *run) setFanout(n int) {
	r.mu.Lock()
	r.fanout = n
	r.mu.Unlock()
}

// fanoutWidth reports the recorded shard count (0 for direct execution).
func (r *run) fanoutWidth() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fanout
}

// publishProgress is the engines' progress callback: both engines
// serialize their calls, so this only fans out. Subscriber channels are
// buffered and lossy — a slow SSE client drops intermediate points, not
// the stream; the terminal event rides r.done, never these channels.
func (r *run) publishProgress(done, total int) {
	p := progressPoint{Done: done, Total: total}
	r.mu.Lock()
	r.progress = p
	for ch := range r.subs {
		select {
		case ch <- p:
		default:
		}
	}
	r.mu.Unlock()
}

// subscribe registers an SSE listener for progress points.
func (r *run) subscribe() chan progressPoint {
	ch := make(chan progressPoint, 16)
	r.mu.Lock()
	r.subs[ch] = struct{}{}
	r.mu.Unlock()
	return ch
}

func (r *run) unsubscribe(ch chan progressPoint) {
	r.mu.Lock()
	delete(r.subs, ch)
	r.mu.Unlock()
}

// finish publishes the terminal state — done or failed — and wakes every
// waiter.
func (r *run) finish(body []byte, err error) {
	r.mu.Lock()
	if err != nil {
		r.status = statusFailed
	} else {
		r.status = statusDone
	}
	r.body, r.err = body, err
	r.mu.Unlock()
	close(r.done)
}

// worker drains the queue until it closes (Drain) — each iteration
// executes one run start-to-finish, so the pool size bounds concurrent
// engine work regardless of how deep the queue is.
func (s *Server) worker() {
	defer s.workers.Done()
	for r := range s.queue {
		s.execute(r)
	}
}

// execute runs one spec through core with the per-run budget, renders
// the deterministic result body, caches it on success, and retires the
// in-flight record — publishing the terminal state first, so a status
// query can never find the key gone before waiters know the outcome.
// Failures move to the bounded failed table instead of vanishing: GET
// /v1/runs/{id} answers "failed" with the error rather than 404. The run
// context derives from the server's base context — canceled only by a
// hard stop, not by a graceful drain, which is what lets Drain finish
// in-flight work — plus the per-run timeout.
func (s *Server) execute(r *run) {
	r.setRunning()
	var body []byte
	var err error
	if n := s.fanoutShards(r.spec); n > 0 {
		// Heavy run: fan out over n shards inside this executor slot
		// (see fanout.go). The fan-out context — not the base context —
		// governs the shards, so a graceful drain checkpoints them.
		r.setFanout(n)
		body, err = s.executeFanout(r, n)
	} else {
		ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.RunTimeout)
		body, err = s.runBody(ctx, r)
		cancel()
	}
	if err == nil {
		// The terminal progress snapshot travels with the cached body so
		// the SSE cached path can replay the same 100% frame the live
		// stream ended with.
		_, p, _ := r.snapshot()
		s.cache.Add(r.key, r.spec.Workload, body, p)
	}
	r.finish(body, err)
	s.mu.Lock()
	delete(s.inflight, r.key)
	if err != nil {
		s.recordFailedLocked(r)
	} else {
		// A success supersedes any stale failure record for the key.
		delete(s.failed, r.key)
	}
	s.mu.Unlock()
}

// recordFailedLocked retains a failed run for status queries, evicting
// the oldest record beyond the bound. Caller holds s.mu.
func (s *Server) recordFailedLocked(r *run) {
	if _, ok := s.failed[r.key]; !ok {
		s.failedOrder = append(s.failedOrder, r.key)
	}
	s.failed[r.key] = r
	for len(s.failedOrder) > maxFailedRetained {
		delete(s.failed, s.failedOrder[0])
		s.failedOrder = s.failedOrder[1:]
	}
}

// runEnvelope is the deterministic result body: every field is a pure
// function of the run key (the id IS the key), so a cached response is
// byte-identical to the cold one. Timing and cache status travel in
// headers (X-Mpvar-Cache, X-Mpvar-Elapsed-Ms), never in the body.
type runEnvelope struct {
	ID       string          `json:"id"`
	Engine   string          `json:"engine"`
	Workload string          `json:"workload"`
	Process  string          `json:"process"`
	Seed     int64           `json:"seed"`
	Samples  int             `json:"samples"`
	FastSeed bool            `json:"fastseed"`
	Params   map[string]any  `json:"params"`
	Tables   json.RawMessage `json:"tables"`
}

// runBody executes the spec directly and renders the envelope.
func (s *Server) runBody(ctx context.Context, r *run) ([]byte, error) {
	res, err := r.spec.Run(
		core.WithContext(ctx),
		core.WithWorkers(s.cfg.EngineWorkers),
		core.WithProgress(r.publishProgress),
	)
	if err != nil {
		return nil, err
	}
	return s.renderBody(r, res)
}

// renderBody renders a result into the deterministic body — shared by
// direct execution and the fan-out reduce, which is what makes the two
// paths byte-identical for the same key.
func (s *Server) renderBody(r *run, res *exp.Result) ([]byte, error) {
	tables, err := report.EncodeTables(report.FormatJSON, res.Tables...)
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(runEnvelope{
		ID:       r.key,
		Engine:   core.EngineVersion,
		Workload: r.spec.Workload,
		Process:  r.spec.Process,
		Seed:     r.spec.Seed,
		Samples:  r.spec.Samples,
		FastSeed: r.spec.FastSeed,
		Params:   r.spec.Params,
		Tables:   json.RawMessage(tables),
	})
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

// Drain gracefully shuts the executor pool down: new submissions are
// already being refused (the caller flips draining via beginDrain or
// this call does), the queue closes so workers exit after finishing
// every queued and in-flight run, and Drain returns when the pool is
// idle. If ctx expires first, in-flight runs are hard-canceled through
// the base context and Drain still waits for the workers to return
// before reporting the deadline error.
func (s *Server) Drain(ctx context.Context) error {
	s.beginDrain()
	idle := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		s.stop() // hard-cancel in-flight runs between blocks/transients
		<-idle
		return ctx.Err()
	}
}

// beginDrain flips the server into draining mode and closes the queue
// exactly once. Submissions observe draining under the same lock that
// guards the queue send, so no submit can race the close. Fan-out runs
// are canceled (not awaited): their shards persist frontier checkpoints
// under FanoutDir and the run fails with a resume hint, so a restarted
// server pointed at the same directory resumes instead of recomputing —
// heavy runs are exactly the ones too expensive to block a shutdown on.
// Direct runs still drain to completion.
func (s *Server) beginDrain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return
	}
	s.draining = true
	s.fanoutStop()
	close(s.queue)
}

// Draining reports whether the server has stopped accepting new runs.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// submitOutcome classifies what happened to a submission.
type submitOutcome int

const (
	submitAttached submitOutcome = iota // joined an identical in-flight run
	submitQueued                        // enqueued a fresh run
	submitShed                          // queue full — 429
	submitDraining                      // server draining — 503
)

// submit resolves a normalized spec to a run record: attach to the
// identical in-flight run if one exists (single-flight), otherwise
// enqueue a new one — unless the server is draining or the queue is at
// its depth limit. The cache is the caller's business (checked before
// submit so hits never touch the lock).
func (s *Server) submit(key string, spec core.RunSpec) (*run, submitOutcome) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.inflight[key]; ok {
		return r, submitAttached
	}
	if s.draining {
		return nil, submitDraining
	}
	r := newRun(key, spec)
	select {
	case s.queue <- r:
		s.inflight[key] = r
		return r, submitQueued
	default:
		return nil, submitShed
	}
}

// elapsedMS renders a duration for the X-Mpvar-Elapsed-Ms header with
// sub-millisecond resolution (cache hits finish in microseconds).
func elapsedMS(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds()*1e3, 'f', 3, 64)
}
