package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mpsram/internal/core"
	"mpsram/internal/exp"
	"mpsram/internal/report"
)

// Test-only workloads. They register into this test binary's registry
// only — the exp package's own tests and the CLI never see them.
//
// testslow blocks until its tag's gate is released (and reports
// progress), testcheap returns instantly with a deterministic table,
// testfail always errors. Tags keep concurrent tests isolated: each test
// uses fresh tags, so gates and execution counters never cross.
var (
	gateMu sync.Mutex
	gates  = map[string]chan struct{}{}
	counts sync.Map // tag -> *atomic.Int64
)

func gate(tag string) chan struct{} {
	gateMu.Lock()
	defer gateMu.Unlock()
	ch, ok := gates[tag]
	if !ok {
		ch = make(chan struct{})
		gates[tag] = ch
	}
	return ch
}

func release(tag string) { close(gate(tag)) }

func execCount(tag string) *atomic.Int64 {
	v, _ := counts.LoadOrStore(tag, &atomic.Int64{})
	return v.(*atomic.Int64)
}

func init() {
	exp.Register(exp.Workload{
		Name: "testslow", Summary: "test-only: blocks until released",
		Order:  900,
		Params: []exp.ParamSpec{{Name: "tag", Kind: exp.StringParam, Default: "", Help: "gate tag"}},
		Run: func(ctx context.Context, e exp.Env, p exp.Params) (*exp.Result, error) {
			tag := p.String("tag")
			execCount(tag).Add(1)
			if e.MC.Progress != nil {
				e.MC.Progress(1, 2)
			}
			select {
			case <-gate(tag):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if e.MC.Progress != nil {
				e.MC.Progress(2, 2)
			}
			t := report.New("test slow", "tag")
			_ = t.Appendf(tag)
			return &exp.Result{Tables: []*report.Table{t}, Text: "slow " + tag + "\n"}, nil
		},
	})
	exp.Register(exp.Workload{
		Name: "testcheap", Summary: "test-only: instant deterministic table",
		Order:  901,
		Params: []exp.ParamSpec{{Name: "x", Kind: exp.IntParam, Default: 7, Help: "value"}},
		Run: func(ctx context.Context, e exp.Env, p exp.Params) (*exp.Result, error) {
			execCount("cheap").Add(1)
			t := report.New("test cheap", "x", "seed", "samples", "process")
			_ = t.Appendf(p.Int("x"), e.MC.Seed, e.MC.Samples, e.Proc.Name)
			return &exp.Result{Tables: []*report.Table{t}, Text: "cheap\n"}, nil
		},
	})
	exp.Register(exp.Workload{
		Name: "testfail", Summary: "test-only: always errors",
		Order: 902,
		Run: func(ctx context.Context, e exp.Env, p exp.Params) (*exp.Result, error) {
			execCount("fail").Add(1)
			return nil, fmt.Errorf("deliberate failure")
		},
	})
}

// newTestServer starts a Server plus an httptest front end and tears
// both down (draining the pool) at cleanup.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s, ts
}

func postRun(t *testing.T, ts *httptest.Server, query, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/runs"+query, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/runs: %v", err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, b
}

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, b
}

// waitStatus polls a run's status envelope until want (or times out).
func waitStatus(t *testing.T, ts *httptest.Server, id string, want runStatus) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, b := getJSON(t, ts.URL+"/v1/runs/"+id)
		if resp.StatusCode == http.StatusOK {
			var env statusEnvelope
			if json.Unmarshal(b, &env) == nil && env.Status == want {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("run %s never reached %s", id, want)
}

func specKey(t *testing.T, s core.RunSpec) string {
	t.Helper()
	k, err := s.Key()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestWorkloadsEndpointMatchesRegistry: the listing is generated from
// the same descriptors the CLI and Study.Run use — every registered
// workload appears with its summary, schema and hints intact.
func TestWorkloadsEndpointMatchesRegistry(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, b := getJSON(t, ts.URL+"/v1/workloads")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var got struct {
		Engine    string `json:"engine"`
		Processes []string
		Workloads []struct {
			Name    string `json:"name"`
			Summary string `json:"summary"`
			InAll   bool   `json:"in_all"`
			Params  []struct {
				Name    string `json:"name"`
				Kind    string `json:"kind"`
				Default any    `json:"default"`
			} `json:"params"`
			Hints struct {
				Samples   int `json:"samples"`
				SamplesCV int `json:"samples_cv"`
			} `json:"hints"`
		} `json:"workloads"`
	}
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("decode: %v\n%s", err, b)
	}
	if got.Engine != core.EngineVersion {
		t.Errorf("engine %q != %q", got.Engine, core.EngineVersion)
	}
	if len(got.Processes) == 0 || got.Processes[0] != "N10" {
		t.Errorf("processes drifted: %v", got.Processes)
	}
	reg := exp.Workloads()
	if len(got.Workloads) != len(reg) {
		t.Fatalf("listing has %d workloads, registry %d", len(got.Workloads), len(reg))
	}
	for i, w := range reg {
		g := got.Workloads[i]
		if g.Name != w.Name || g.Summary != w.Summary || g.InAll != w.InAll ||
			g.Hints.Samples != w.Hints.Samples || g.Hints.SamplesCV != w.Hints.CVSamples ||
			len(g.Params) != len(w.Params) {
			t.Errorf("workload %s drifted on the wire: %+v", w.Name, g)
			continue
		}
		for j, ps := range w.Params {
			want, _ := json.Marshal(ps.Default)
			have, _ := json.Marshal(g.Params[j].Default)
			if g.Params[j].Name != ps.Name || g.Params[j].Kind != ps.Kind.String() ||
				!bytes.Equal(want, have) {
				t.Errorf("%s.%s drifted: %+v", w.Name, ps.Name, g.Params[j])
			}
		}
	}
}

// TestSubmitValidation: every malformed submission answers 400 with the
// registry's own error text (valid-names listings verbatim).
func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		body string
		want string
	}{
		{`{"workload":"fig5","params":{"bogus":1}}`, "valid: n, ol"},
		{`{"workload":"nope"}`, "registered:"},
		{`{"workload":"table1","process":"N3"}`, "N10"},
		{`{"workload":"fig5","params":{"n":1.5}}`, "not an integer"},
		{`{"workload":"table1","smaples":4}`, "unknown field"},
		{`{not json`, "invalid request body"},
	}
	for _, c := range cases {
		resp, b := postRun(t, ts, "", c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", c.body, resp.StatusCode, b)
			continue
		}
		var env errorEnvelope
		if err := json.Unmarshal(b, &env); err != nil || !strings.Contains(env.Error, c.want) {
			t.Errorf("%s: error %q missing %q", c.body, env.Error, c.want)
		}
	}
}

// TestCacheHitByteIdentical drives a real registry workload (fig3)
// twice: the cold run executes, the re-submission is a cache hit that is
// byte-identical and answers in single-digit milliseconds, and
// GET /v1/runs/{id} serves the same bytes again.
func TestCacheHitByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"workload":"fig3"}`
	resp1, cold := postRun(t, ts, "", body)
	if resp1.StatusCode != http.StatusOK || resp1.Header.Get("X-Mpvar-Cache") != "miss" {
		t.Fatalf("cold run: status %d cache %q: %s", resp1.StatusCode, resp1.Header.Get("X-Mpvar-Cache"), cold)
	}
	start := time.Now()
	resp2, warm := postRun(t, ts, "", body)
	elapsed := time.Since(start)
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get("X-Mpvar-Cache") != "hit" {
		t.Fatalf("cached run: status %d cache %q", resp2.StatusCode, resp2.Header.Get("X-Mpvar-Cache"))
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("cache hit not byte-identical:\ncold: %s\nwarm: %s", cold, warm)
	}
	if elapsed > 10*time.Millisecond {
		t.Errorf("cached re-submission took %v, want <10ms", elapsed)
	}
	var env runEnvelope
	if err := json.Unmarshal(cold, &env); err != nil {
		t.Fatalf("envelope: %v\n%s", err, cold)
	}
	if want := specKey(t, core.RunSpec{Workload: "fig3"}); env.ID != want {
		t.Errorf("envelope id %s != spec key %s", env.ID, want)
	}
	if env.Engine != core.EngineVersion || env.Process != "N10" || env.Seed != core.DefaultSeed {
		t.Errorf("envelope metadata drifted: %+v", env)
	}
	var tables []any
	if err := json.Unmarshal(env.Tables, &tables); err != nil || len(tables) != 1 {
		t.Errorf("tables field not a one-table array: %v", err)
	}
	resp3, again := getJSON(t, ts.URL+"/v1/runs/"+env.ID)
	if resp3.StatusCode != http.StatusOK || resp3.Header.Get("X-Mpvar-Cache") != "hit" ||
		!bytes.Equal(again, cold) {
		t.Fatalf("GET by id drifted from the submission body")
	}
}

// TestDefaultedParamsShareCacheEntry is the serve-level face of the
// normalization bugfix: explicit defaults, padded case-folded process
// names and defaulted seeds all land on the cold run's cache entry —
// one execution total.
func TestDefaultedParamsShareCacheEntry(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	before := execCount("cheap").Load()
	resp, cold := postRun(t, ts, "", `{"workload":"testcheap","params":{"x":7},"seed":2015,"process":" n10 "}`)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Mpvar-Cache") != "miss" {
		t.Fatalf("cold: %d %q", resp.StatusCode, resp.Header.Get("X-Mpvar-Cache"))
	}
	for _, body := range []string{
		`{"workload":"testcheap"}`,
		`{"workload":"testcheap","params":{"x":7.0}}`,
		`{"workload":"testcheap","process":"N10","seed":0}`,
	} {
		resp, warm := postRun(t, ts, "", body)
		if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Mpvar-Cache") != "hit" {
			t.Errorf("%s: expected cache hit, got %d %q", body, resp.StatusCode, resp.Header.Get("X-Mpvar-Cache"))
		}
		if !bytes.Equal(cold, warm) {
			t.Errorf("%s: body drifted from cold run", body)
		}
	}
	if got := execCount("cheap").Load() - before; got != 1 {
		t.Fatalf("normalized spellings executed %d times, want 1", got)
	}
}

// TestSingleFlight: identical concurrent submissions coalesce onto one
// execution; both callers receive the same bytes.
func TestSingleFlight(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	body := `{"workload":"testslow","params":{"tag":"sf"}}`
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		bodies [][]byte
	)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, b := postRun(t, ts, "", body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d: %s", resp.StatusCode, b)
			}
			mu.Lock()
			bodies = append(bodies, b)
			mu.Unlock()
		}()
	}
	// Let both submissions land (the first executes, the second must
	// attach to it), then release the gate.
	id := specKey(t, core.RunSpec{Workload: "testslow", Params: exp.Params{"tag": "sf"}})
	waitStatus(t, ts, id, statusRunning)
	time.Sleep(20 * time.Millisecond)
	release("sf")
	wg.Wait()
	if len(bodies) != 2 || !bytes.Equal(bodies[0], bodies[1]) {
		t.Fatalf("concurrent callers diverged: %d bodies", len(bodies))
	}
	if got := execCount("sf").Load(); got != 1 {
		t.Fatalf("identical concurrent POSTs executed %d times, want 1", got)
	}
}

// TestQueueShedding: with one executor busy and the one queue slot
// filled, the next distinct submission sheds with 429 + Retry-After and
// never executes.
func TestQueueShedding(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxQueue: 1})
	submit := func(tag string) (*http.Response, []byte) {
		return postRun(t, ts, "?wait=0", fmt.Sprintf(`{"workload":"testslow","params":{"tag":%q}}`, tag))
	}
	respA, bodyA := submit("shed-a")
	if respA.StatusCode != http.StatusAccepted {
		t.Fatalf("first: %d %s", respA.StatusCode, bodyA)
	}
	var envA statusEnvelope
	if err := json.Unmarshal(bodyA, &envA); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, ts, envA.ID, statusRunning) // executor now occupied
	if resp, b := submit("shed-b"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued: %d %s", resp.StatusCode, b)
	}
	respC, bodyC := submit("shed-c")
	if respC.StatusCode != http.StatusTooManyRequests || respC.Header.Get("Retry-After") == "" {
		t.Fatalf("over-queue submission: status %d retry-after %q: %s",
			respC.StatusCode, respC.Header.Get("Retry-After"), bodyC)
	}
	if !strings.Contains(string(bodyC), "queue full") {
		t.Fatalf("shed body drifted: %s", bodyC)
	}
	release("shed-a")
	release("shed-b")
	for _, tag := range []string{"shed-a", "shed-b"} {
		id := specKey(t, core.RunSpec{Workload: "testslow", Params: exp.Params{"tag": tag}})
		waitCached(t, ts, id)
	}
	if got := execCount("shed-c").Load(); got != 0 {
		t.Fatalf("shed run executed %d times", got)
	}
}

// waitCached polls until GET /v1/runs/{id} answers from the cache.
func waitCached(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, _ := getJSON(t, ts.URL+"/v1/runs/"+id)
		if resp.Header.Get("X-Mpvar-Cache") == "hit" {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("run %s never reached the cache", id)
}

// TestDrainCompletesInflight: draining refuses new submissions with 503
// but lets the in-flight run finish and land in the cache.
func TestDrainCompletesInflight(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	resp, b := postRun(t, ts, "?wait=0", `{"workload":"testslow","params":{"tag":"drain-a"}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, b)
	}
	var env statusEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, ts, env.ID, statusRunning)

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never entered draining")
		}
		time.Sleep(time.Millisecond)
	}
	if resp, b := postRun(t, ts, "?wait=0", `{"workload":"testslow","params":{"tag":"drain-b"}}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission while draining: %d %s", resp.StatusCode, b)
	}
	if resp, b := getJSON(t, ts.URL+"/v1/healthz"); resp.StatusCode != http.StatusOK ||
		!strings.Contains(string(b), `"status":"draining"`) {
		t.Fatalf("healthz while draining: %d %s", resp.StatusCode, b)
	}
	release("drain-a")
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The in-flight run finished during the drain and is servable.
	resp2, body := getJSON(t, ts.URL+"/v1/runs/"+env.ID)
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get("X-Mpvar-Cache") != "hit" {
		t.Fatalf("drained run not cached: %d %s", resp2.StatusCode, body)
	}
	if got := execCount("drain-b").Load(); got != 0 {
		t.Fatalf("draining server executed a new run %d times", got)
	}
}

// TestSSEProgress subscribes to a running run's event stream: an initial
// status frame carrying current progress, then the terminal done frame
// once the gate releases; a finished run answers done immediately; an
// unknown id answers 404.
func TestSSEProgress(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, b := postRun(t, ts, "?wait=0", `{"workload":"testslow","params":{"tag":"sse"}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, b)
	}
	var env statusEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		t.Fatal(err)
	}
	// Wait until the run has reported its first progress point so the
	// initial status frame deterministically carries done=1/total=2.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, sb := getJSON(t, ts.URL+"/v1/runs/"+env.ID)
		var st statusEnvelope
		if resp.StatusCode == http.StatusOK && json.Unmarshal(sb, &st) == nil &&
			st.Progress != nil && st.Progress.Done >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run never reported progress")
		}
		time.Sleep(5 * time.Millisecond)
	}

	sresp, err := http.Get(ts.URL + "/v1/runs/" + env.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	frames := make(chan string, 32)
	go func() {
		defer close(frames)
		sc := bufio.NewScanner(sresp.Body)
		var frame strings.Builder
		for sc.Scan() {
			line := sc.Text()
			if line == "" {
				frames <- frame.String()
				frame.Reset()
				continue
			}
			frame.WriteString(line + "\n")
		}
	}()
	first := <-frames
	if !strings.Contains(first, "event: status") || !strings.Contains(first, `"done":1`) {
		t.Fatalf("initial frame drifted: %q", first)
	}
	release("sse")
	var liveDone, liveProgress string
	for f := range frames {
		if strings.Contains(f, "event: done") {
			liveDone = f
			if !strings.Contains(f, env.ID) {
				t.Errorf("done frame missing run id: %q", f)
			}
			break
		}
		if strings.Contains(f, "event: progress") {
			liveProgress = f
		} else {
			t.Errorf("unexpected frame: %q", f)
		}
	}
	if liveDone == "" {
		t.Fatal("stream ended without a done event")
	}
	if !strings.Contains(liveDone, `"workload":"testslow"`) {
		t.Fatalf("live done frame missing workload: %q", liveDone)
	}
	// The live stream must close with a terminal 100% progress frame
	// immediately before done — not leave the last subscriber-channel
	// point (which a slow client may have dropped) as the final word.
	if !strings.Contains(liveProgress, `"done":2`) || !strings.Contains(liveProgress, `"total":2`) {
		t.Fatalf("live stream's final progress frame is not terminal: %q", liveProgress)
	}
	sresp.Body.Close()

	// A finished run's stream answers immediately — and the terminal
	// frame sequence (100% progress, then done) is byte-identical to the
	// one the live subscriber received, not a thinner cached-path variant.
	resp2, b2 := getJSON(t, ts.URL+"/v1/runs/"+env.ID+"/events")
	if resp2.StatusCode != http.StatusOK || !strings.Contains(string(b2), "event: done") {
		t.Fatalf("cached-run stream: %d %q", resp2.StatusCode, b2)
	}
	wantTail := strings.TrimSpace(liveProgress) + "\n\n" + strings.TrimSpace(liveDone)
	if cached := strings.TrimSpace(string(b2)); cached != wantTail {
		t.Errorf("cached-run frames diverged from the live terminal sequence:\ncached %q\n  live %q", cached, wantTail)
	}
	if resp3, _ := getJSON(t, ts.URL+"/v1/runs/no-such-run/events"); resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown run events: %d", resp3.StatusCode)
	}
}

// TestFailureNotCached: a failing run answers 500 with the workload's
// error and its body is never cached — a re-submission executes again —
// but the failure itself stays queryable: GET /v1/runs/{id} reports
// status "failed" with the error (not 404), and the SSE stream answers a
// terminal error frame.
func TestFailureNotCached(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	before := execCount("fail").Load()
	resp, b := postRun(t, ts, "", `{"workload":"testfail"}`)
	if resp.StatusCode != http.StatusInternalServerError || !strings.Contains(string(b), "deliberate failure") {
		t.Fatalf("failed run: %d %s", resp.StatusCode, b)
	}
	id := specKey(t, core.RunSpec{Workload: "testfail"})
	sresp, sb := getJSON(t, ts.URL+"/v1/runs/"+id)
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("failed-run status: %d %s", sresp.StatusCode, sb)
	}
	var st statusEnvelope
	if err := json.Unmarshal(sb, &st); err != nil {
		t.Fatal(err)
	}
	if st.Status != statusFailed || st.Workload != "testfail" ||
		!strings.Contains(st.Error, "deliberate failure") {
		t.Fatalf("failed-run envelope drifted: %+v", st)
	}
	eresp, eb := getJSON(t, ts.URL+"/v1/runs/"+id+"/events")
	if eresp.StatusCode != http.StatusOK || !strings.Contains(string(eb), "event: error") ||
		!strings.Contains(string(eb), "deliberate failure") {
		t.Fatalf("failed-run events: %d %q", eresp.StatusCode, eb)
	}
	if resp, _ := postRun(t, ts, "", `{"workload":"testfail"}`); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("re-submission: %d", resp.StatusCode)
	}
	if got := execCount("fail").Load() - before; got != 2 {
		t.Fatalf("failures executed %d times, want 2 (not cached)", got)
	}
}

// TestFailedTableBounded pins the failure-retention bound: the oldest
// records age out FIFO and answer 404 again.
func TestFailedTableBounded(t *testing.T) {
	s := New(Config{})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	s.mu.Lock()
	for i := 0; i < maxFailedRetained+3; i++ {
		r := newRun(fmt.Sprintf("key-%03d", i), core.RunSpec{Workload: "testfail"})
		r.finish(nil, fmt.Errorf("boom %d", i))
		s.recordFailedLocked(r)
	}
	if len(s.failed) != maxFailedRetained || len(s.failedOrder) != maxFailedRetained {
		s.mu.Unlock()
		t.Fatalf("bound drifted: %d records, %d order", len(s.failed), len(s.failedOrder))
	}
	_, oldest := s.failed["key-000"]
	_, newest := s.failed[fmt.Sprintf("key-%03d", maxFailedRetained+2)]
	s.mu.Unlock()
	if oldest || !newest {
		t.Fatalf("FIFO eviction drifted: oldest retained=%v newest retained=%v", oldest, newest)
	}
}

// TestResultCacheLRU pins the eviction order of the bounded cache and
// that the workload rides along with the body.
func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	c.Add("a", "wa", []byte("A"), progressPoint{Done: 2, Total: 2})
	c.Add("b", "wb", []byte("B"), progressPoint{})
	if _, _, _, ok := c.Get("a"); !ok { // promote a
		t.Fatal("a missing")
	}
	c.Add("c", "wc", []byte("C"), progressPoint{}) // evicts b (LRU)
	if _, _, _, ok := c.Get("b"); ok {
		t.Fatal("b not evicted")
	}
	if v, wl, p, ok := c.Get("a"); !ok || string(v) != "A" || wl != "wa" || p.Total != 2 {
		t.Fatalf("a lost or metadata drifted: %q %q %+v", v, wl, p)
	}
	if c.Len() != 2 {
		t.Fatalf("len %d", c.Len())
	}
	c.Add("a", "wa", []byte("A2"), progressPoint{}) // refresh in place
	if v, _, _, _ := c.Get("a"); string(v) != "A2" || c.Len() != 2 {
		t.Fatalf("refresh drifted: %q len %d", v, c.Len())
	}
	hits, misses := c.Stats()
	if hits != 3 || misses != 1 {
		t.Fatalf("lookup counters drifted: %d hits %d misses, want 3/1", hits, misses)
	}
}

// TestListenAndServe exercises the real listener path: bind :0, serve a
// request, cancel the context, drain cleanly.
func TestListenAndServe(t *testing.T) {
	s := New(Config{DrainTimeout: 10 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- s.ListenAndServe(ctx, "127.0.0.1:0", func(a net.Addr) { addrc <- a })
	}()
	addr := <-addrc
	resp, err := http.Get("http://" + addr.String() + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(b), `"status":"ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, b)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ListenAndServe: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("ListenAndServe did not return after cancel")
	}
}
