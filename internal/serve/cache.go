package serve

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// resultCache is the content-addressed result store: run key (the
// SHA-256 of core.RunSpec's canonical rendering) to the fully rendered
// JSON response body. Because equal keys guarantee byte-identical
// results, storing rendered bytes is lossless — a hit is served exactly
// as the cold run was, header-for-header comparable — and an LRU bound
// keeps a long-running server's memory flat under millions of distinct
// queries.
type resultCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used
	items map[string]*list.Element

	// Lookup counters for /v1/healthz: hits and misses across every
	// endpoint that consults the cache (submit, fetch, SSE subscribe).
	hits, misses atomic.Int64
}

type cacheEntry struct {
	key string
	// workload and progress travel with the body so status-shaped
	// responses about a cached run (the SSE "done" frame and the terminal
	// "progress" frame before it) carry the same fields as the live-run
	// path without reparsing the rendered JSON.
	workload string
	progress progressPoint
	body     []byte
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, order: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached body, workload and terminal progress for key,
// promoting it to most recent.
func (c *resultCache) Get(key string) ([]byte, string, progressPoint, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Add(1)
		return nil, "", progressPoint{}, false
	}
	c.hits.Add(1)
	c.order.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.body, e.workload, e.progress, true
}

// Add stores body under key, evicting least-recently-used entries beyond
// the bound. Re-adding an existing key refreshes its recency; the body
// is identical by construction (equal keys ⇒ byte-identical results).
func (c *resultCache) Add(key, workload string, body []byte, progress progressPoint) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, workload: workload, progress: progress, body: body})
	for c.order.Len() > c.max {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).key)
	}
}

// Len reports the number of cached results.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats reports the lookup counters.
func (c *resultCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
