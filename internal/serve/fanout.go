// Fan-out executor: heavy submissions split into N contiguous-block
// shards that execute concurrently and reduce through the exact
// left-fold replay (core.RunShard / core.Reduce), so the response body
// is byte-identical to the single-process run and lands in the same
// cache entry — the run key is the identity either way, fan-out is pure
// execution detail.
//
// A run fans out when its estimated cost (normalized samples × the
// workload's Hints.Cost weight) crosses Config.FanoutMinSamples and the
// fan-out width is ≥ 2. The whole fan-out occupies ONE executor slot:
// the worker that picked the run up dispatches the shards, aggregates
// their frontiers into the run's monotone progress stream, and blocks
// until the reduce renders the body — the pool size keeps bounding
// concurrent submissions while each heavy one uses more of the machine.
//
// Shards write self-identifying artifacts to Config.FanoutDir under
// their run key, which buys three properties at once: a crashed or
// re-dispatched shard resumes from its persisted frontier instead of
// recomputing; a graceful drain (which cancels only fan-out runs —
// direct runs still finish) leaves resumable checkpoints behind; and a
// restarted server pointed at the same directory picks those
// checkpoints up on the next submission of the same key.
package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mpsram/internal/core"
	"mpsram/internal/exp"
	"mpsram/internal/mc"
	"mpsram/internal/remote"
)

const (
	// defaultFanoutMinSamples is the cost threshold (in analytic-trial
	// equivalents, see core.RunSpec.EstimatedCost) below which runs stay
	// single-process: default-budget analytic workloads (fig5 at 10 000
	// samples × cost 1) and smoke-sized SPICE runs fall under it, while a
	// default mcspice (200 samples × cost 4000) clears it comfortably.
	defaultFanoutMinSamples = 50000
	// maxShardAttempts bounds re-dispatch of a failing shard; each retry
	// resumes from the frontier the failed attempt persisted.
	maxShardAttempts = 3
	// shardRetryBackoff / shardRetryBackoffCap pace re-dispatches: the
	// wait doubles per attempt up to the cap, so a transiently sick
	// vehicle (a peer mid-restart, an OOM-killed child) gets a beat to
	// recover instead of burning the whole attempt budget instantly.
	shardRetryBackoff    = 50 * time.Millisecond
	shardRetryBackoffCap = 2 * time.Second
	// processCheckpointEvery / processPollEvery pace the child-process
	// mode: children persist their frontier at most this often, the
	// parent polls the checkpoint files for progress at the same order.
	processCheckpointEvery = 500 * time.Millisecond
	processPollEvery       = 300 * time.Millisecond
)

// fanoutStats are the /v1/healthz counters for the fan-out executor.
type fanoutStats struct {
	runs               atomic.Int64 // submissions executed as fan-outs
	inflightShards     atomic.Int64 // shards executing right now (gauge)
	shardsResumed      atomic.Int64 // shards continued from a checkpoint
	shardsRedispatched atomic.Int64 // shard attempts after a failure
}

// shardExec is the execution vehicle for one shard: run it (resuming any
// checkpoint at path) to a complete artifact at path, reporting frontier
// progress. Implementations must be safe for concurrent shards.
type shardExec interface {
	runShard(ctx context.Context, spec core.RunSpec, shard mc.ShardSpec, path string, progress func(done, total int)) error
}

// goroutineExec executes a shard in-process — a core.RunShard call on a
// goroutine inside the fan-out's executor slot. The default vehicle: no
// spawn cost, shared address space, cancellation between blocks.
type goroutineExec struct{ workers int }

func (e goroutineExec) runShard(ctx context.Context, spec core.RunSpec, shard mc.ShardSpec, path string, progress func(done, total int)) error {
	return core.RunShard(spec, shard, path,
		core.ShardRunOptions{Resume: true, Progress: progress},
		core.WithContext(ctx), core.WithWorkers(e.workers))
}

// processExec executes a shard as an `mpvar shard` child process — the
// opt-in isolation mode: a child crash (OOM kill, a panic in workload
// code) loses one shard attempt, not the server, and the re-dispatch
// resumes from the child's last checkpoint. Progress is observed from
// the outside by polling the checkpoint artifact.
type processExec struct {
	bin     string
	workers int
}

func (e processExec) runShard(ctx context.Context, spec core.RunSpec, shard mc.ShardSpec, path string, progress func(done, total int)) error {
	args := []string{
		"shard",
		"-index", strconv.Itoa(shard.Index),
		"-of", strconv.Itoa(shard.Count),
		"-o", path,
		"-resume",
		"-checkpoint", processCheckpointEvery.String(),
		"-samples", strconv.Itoa(spec.Samples),
		"-seed", strconv.FormatInt(spec.Seed, 10),
		"-process", spec.Process,
		"-workers", strconv.Itoa(e.workers),
		"-fastseed=" + strconv.FormatBool(spec.FastSeed),
		spec.Workload,
	}
	// The spec is normalized, so passing every parameter explicitly is
	// canonical — the child recomputes the identical run key. ParamFlags
	// is the pinned spelling (a %v here would mangle strings with spaces
	// or '=' into multiple argv words).
	args = append(args, exp.ParamFlags(spec.Params)...)
	cmd := exec.CommandContext(ctx, e.bin, args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	// Cancellation delivers SIGINT so the child takes its CLI interrupt
	// path — persist the frontier, exit — with a bounded grace period
	// before the hard kill.
	cmd.Cancel = func() error { return cmd.Process.Signal(os.Interrupt) }
	cmd.WaitDelay = 15 * time.Second

	stop := make(chan struct{})
	var poll sync.WaitGroup
	if progress != nil {
		poll.Add(1)
		go func() {
			defer poll.Done()
			t := time.NewTicker(processPollEvery)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					if art, err := core.ReadShardArtifact(path); err == nil {
						progress(art.Payload.Frontier(shard))
					}
				}
			}
		}()
	}
	err := cmd.Run()
	close(stop)
	poll.Wait()
	if err != nil {
		msg := strings.TrimSpace(stderr.String())
		if len(msg) > 300 {
			msg = "… " + msg[len(msg)-300:]
		}
		if msg != "" {
			return fmt.Errorf("shard %d/%d child: %w: %s", shard.Index, shard.Count, err, msg)
		}
		return fmt.Errorf("shard %d/%d child: %w", shard.Index, shard.Count, err)
	}
	if progress != nil {
		if art, rerr := core.ReadShardArtifact(path); rerr == nil {
			progress(art.Payload.Frontier(shard))
		}
	}
	return nil
}

// shardProgress merges per-shard frontier observations into one monotone
// global (done, total) stream for the run's SSE subscribers. Per-shard
// done is monotone at the source; stale observations (a re-dispatched
// attempt warming back up to its checkpoint, an old artifact poll racing
// a newer one) are dropped, so the published aggregate never regresses.
type shardProgress struct {
	mu      sync.Mutex
	done    []int
	total   []int
	publish func(done, total int)
}

func newShardProgress(n int, publish func(done, total int)) *shardProgress {
	return &shardProgress{done: make([]int, n), total: make([]int, n), publish: publish}
}

func (a *shardProgress) update(i, done, total int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if done < a.done[i] {
		return
	}
	a.done[i] = done
	if total > a.total[i] {
		a.total[i] = total
	}
	var d, t int
	for j := range a.done {
		d += a.done[j]
		t += a.total[j]
	}
	if t > 0 {
		a.publish(d, t)
	}
}

// fanoutShards decides whether a normalized spec fans out, and into how
// many shards: Config.Fanout when the width is ≥ 2 and the estimated
// cost crosses the threshold, 0 (single-process) otherwise. Workloads
// without a Cost hint never fan out — their runtime is not in the
// shardable Monte-Carlo stream, so shards would multiply work instead
// of dividing it.
func (s *Server) fanoutShards(spec core.RunSpec) int {
	if s.cfg.Fanout < 2 {
		return 0
	}
	cost, err := spec.EstimatedCost()
	if err != nil || cost < float64(s.cfg.FanoutMinSamples) {
		return 0
	}
	return s.cfg.Fanout
}

// executeFanout runs one submission as nshards concurrent shard
// executions plus the exact-replay reduce, inside the calling worker's
// executor slot. Pre-existing checkpoints under the run's key resume;
// failed shards re-dispatch; a drain cancellation leaves every shard's
// frontier checkpointed for the next server generation.
func (s *Server) executeFanout(r *run, nshards int) ([]byte, error) {
	s.fanout.runs.Add(1)
	ctx, cancel := context.WithTimeout(s.fanoutCtx, s.cfg.RunTimeout)
	defer cancel()
	if err := os.MkdirAll(s.cfg.FanoutDir, 0o755); err != nil {
		return nil, fmt.Errorf("fan-out scratch dir: %w", err)
	}
	agg := newShardProgress(nshards, r.publishProgress)
	paths := make([]string, nshards)
	for i := range paths {
		paths[i] = filepath.Join(s.cfg.FanoutDir, core.ShardArtifactName(r.key, i, nshards))
		art, err := core.ReadShardArtifact(paths[i])
		switch {
		case err == nil && art.Header.RunKey == r.key && art.Header.ShardIndex == i && art.Header.ShardCount == nshards:
			// A checkpoint a drained (or crashed) predecessor left behind:
			// resume it, and let its frontier show as progress immediately.
			s.fanout.shardsResumed.Add(1)
			done, total := art.Payload.Frontier(mc.ShardSpec{Index: i, Count: nshards})
			agg.update(i, done, total)
		case err == nil || !errors.Is(err, os.ErrNotExist):
			// A foreign, stale or corrupt file squatting on our name —
			// clear it so the shard starts fresh.
			os.Remove(paths[i])
		}
	}
	// The dispatcher reads s.shardRunner at run time, so tests swapping
	// the vehicle after New() see their stand-in used.
	disp := shardDispatcher{
		exec: s.shardRunner, attempts: maxShardAttempts,
		backoff: shardRetryBackoff, backoffCap: shardRetryBackoffCap,
		onRedispatch: func() { s.fanout.shardsRedispatched.Add(1) },
	}
	errs := make([]error, nshards)
	var wg sync.WaitGroup
	for i := 0; i < nshards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.fanout.inflightShards.Add(1)
			defer s.fanout.inflightShards.Add(-1)
			errs[i] = disp.run(ctx, r.spec, mc.ShardSpec{Index: i, Count: nshards}, paths[i],
				func(done, total int) { agg.update(i, done, total) })
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		if s.fanoutCtx.Err() != nil && s.baseCtx.Err() == nil {
			return nil, fmt.Errorf("interrupted by drain; %d shards checkpointed under %s — resubmit after restart to resume: %w",
				nshards, s.cfg.FanoutDir, err)
		}
		return nil, err
	}
	res, err := core.Reduce(paths, core.WithContext(ctx), core.WithWorkers(s.cfg.EngineWorkers))
	if err != nil {
		return nil, err
	}
	body, err := s.renderBody(r, res)
	if err != nil {
		return nil, err
	}
	// The reduced body is cached by the caller under the same key direct
	// execution would use; the scratch artifacts have served their
	// purpose. Kept on any error path above, so a failed reduce or a
	// drain can still resume.
	for _, p := range paths {
		os.Remove(p)
	}
	return body, nil
}

// shardDispatcher drives one shard to completion through an execution
// vehicle — the single attempt-budget + resume policy all three vehicles
// (goroutine, process, remote) share. A failed attempt (child crash,
// dead peer, flaky transport) re-dispatches after a capped exponential
// backoff, resuming from whatever frontier the failed attempt persisted,
// so completed blocks are never re-executed. Cancellation is terminal —
// a drain must not fight the retry loop.
type shardDispatcher struct {
	exec         shardExec
	attempts     int
	backoff      time.Duration
	backoffCap   time.Duration
	onRedispatch func()
}

func (d shardDispatcher) run(ctx context.Context, spec core.RunSpec, shard mc.ShardSpec, path string, progress func(done, total int)) error {
	var err error
	delay := d.backoff
	for attempt := 0; attempt < d.attempts; attempt++ {
		if attempt > 0 {
			if d.onRedispatch != nil {
				d.onRedispatch()
			}
			select {
			case <-ctx.Done():
				return err
			case <-time.After(delay):
			}
			if delay *= 2; delay > d.backoffCap {
				delay = d.backoffCap
			}
		}
		if err = d.exec.runShard(ctx, spec, shard, path, progress); err == nil || ctx.Err() != nil {
			return err
		}
	}
	return fmt.Errorf("shard %d/%d failed %d attempts: %w", shard.Index, shard.Count, d.attempts, err)
}

// remoteExec dispatches shards to peer `mpvar serve` workers through the
// pool. Falls back to in-process execution when no peer is live — a dead
// worker fleet costs latency, never a failed run — while any other error
// (a mid-stream death, a worker-side failure) surfaces to the dispatcher,
// whose retry lands on another live peer resuming from the last shipped
// checkpoint.
type remoteExec struct {
	pool  *remote.Pool
	local goroutineExec
}

func (e remoteExec) runShard(ctx context.Context, spec core.RunSpec, shard mc.ShardSpec, path string, progress func(done, total int)) error {
	err := e.pool.ExecuteShard(ctx, spec, shard, path, progress)
	if errors.Is(err, remote.ErrNoLivePeers) {
		return e.local.runShard(ctx, spec, shard, path, progress)
	}
	return err
}
