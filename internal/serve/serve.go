// Package serve exposes the workload registry as a long-running
// HTTP/JSON service — the network face of core.Study.Run, built for
// heavy repeated traffic:
//
//	GET  /v1/workloads        the registry: names, summaries, typed
//	                          parameter schemas, budget hints
//	POST /v1/runs             submit a run (schema-validated); waits for
//	                          the result by default, ?wait=0 returns the
//	                          run id immediately
//	GET  /v1/runs/{id}        result body (cache) or live status
//	GET  /v1/runs/{id}/events SSE progress stream riding the engines'
//	                          serialized progress callbacks
//	GET  /v1/healthz          liveness, drain state and counters
//
// Every run is bit-deterministic in (workload, params, seed, samples,
// process, PRNG stream, engine version) — that tuple's SHA-256
// (core.RunSpec.Key) is the run id, the single-flight identity and the
// result cache address, so a repeated query costs a map lookup instead
// of seconds-to-minutes of SPICE transients, identical concurrent
// submissions share one execution, and a cached response is
// byte-identical to the cold one (cache status and timing travel in
// X-Mpvar-* headers, never in the body).
//
// The heavy-traffic controls: a bounded executor pool (Workers) pulls
// runs off a depth-limited queue (MaxQueue) — beyond it submissions shed
// with 429 + Retry-After instead of piling up — each run gets a
// wall-clock budget (RunTimeout) on top of the sample budget its
// workload's Hints advise, and Drain (wired to SIGTERM by `mpvar
// serve`) refuses new work with 503 while letting every queued and
// in-flight run finish. See API.md for the wire contract.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"mpsram/internal/core"
	"mpsram/internal/exp"
	"mpsram/internal/remote"
)

// Config sizes the service. Zero values take the defaults noted on each
// field.
type Config struct {
	// Workers is the executor pool size: how many runs execute
	// concurrently (default 2). Each executor drives a full study, which
	// parallelizes internally per EngineWorkers.
	Workers int
	// MaxQueue bounds the runs queued behind the pool; submissions
	// beyond it shed with 429 (default 32).
	MaxQueue int
	// CacheSize bounds the content-addressed result cache, in rendered
	// result bodies, evicted LRU (default 256).
	CacheSize int
	// RunTimeout is the per-run wall-clock budget; a run exceeding it is
	// canceled between trial blocks / transients and reported as an
	// error to its waiters (default 15 minutes).
	RunTimeout time.Duration
	// EngineWorkers is the worker count handed to the Monte-Carlo and
	// SPICE engines inside each run (0 = all CPUs). Results are
	// bit-identical for any value — it is not part of the run key.
	EngineWorkers int
	// DrainTimeout bounds ListenAndServe's graceful shutdown; past it,
	// in-flight runs are hard-canceled (default 2 minutes).
	DrainTimeout time.Duration
	// Fanout is the shard count heavy submissions are split into; ≥ 2
	// enables the fan-out executor, 1 disables it, and 0 (the default)
	// adopts the executor pool size. Fan-out never changes response
	// bytes — the reduce replays the exact single-process left-fold —
	// so it is not part of the run key.
	Fanout int
	// FanoutMinSamples is the estimated-cost threshold, in
	// analytic-trial equivalents (core.RunSpec.EstimatedCost =
	// normalized samples × the workload's Hints.Cost weight), at or
	// above which a submission fans out (default 50000). Workloads
	// without a Cost hint never fan out regardless.
	FanoutMinSamples int
	// FanoutExec selects the shard execution vehicle: "goroutine"
	// (default, in-process), "process" (spawn `mpvar shard` children
	// via FanoutBinary; a child crash re-dispatches that shard from its
	// last checkpoint), or "remote" (dispatch shards to the peer
	// `mpvar serve` workers in Peers; a dead peer re-dispatches from the
	// last shipped checkpoint, and no live peers falls back to
	// in-process execution).
	FanoutExec string
	// Peers lists peer `mpvar serve` workers ("host:port" or full URLs)
	// for FanoutExec "remote". Peers are health-checked via their
	// /v1/healthz — a draining or engine-drifted peer is never
	// dispatched to.
	Peers []string
	// FanoutDir is the scratch directory for shard artifacts and drain
	// checkpoints (default <os temp>/mpvar-fanout). A restarted server
	// pointed at the same directory resumes checkpointed shards instead
	// of recomputing them.
	FanoutDir string
	// FanoutBinary is the mpvar executable for FanoutExec "process"
	// (default: the current executable).
	FanoutBinary string
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 32
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.RunTimeout <= 0 {
		c.RunTimeout = 15 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 2 * time.Minute
	}
	if c.Fanout <= 0 {
		c.Fanout = c.Workers
	}
	if c.FanoutMinSamples <= 0 {
		c.FanoutMinSamples = defaultFanoutMinSamples
	}
	if c.FanoutExec == "" {
		c.FanoutExec = "goroutine"
	}
	if c.FanoutDir == "" {
		c.FanoutDir = filepath.Join(os.TempDir(), "mpvar-fanout")
	}
	return c
}

// Server is the service state: the result cache, the in-flight run
// table and the executor pool.
type Server struct {
	cfg   Config
	cache *resultCache

	mu       sync.Mutex
	inflight map[string]*run
	// failed retains terminal-error runs (bounded FIFO by failedOrder)
	// so their status stays queryable; bodies are never cached.
	failed      map[string]*run
	failedOrder []string
	draining    bool
	queue       chan *run

	workers sync.WaitGroup
	baseCtx context.Context
	stop    context.CancelFunc

	// Fan-out executor state: fanoutCtx cancels on drain — direct runs
	// finish, fan-out runs checkpoint their shards and fail with a
	// resume hint — and shardRunner is the execution vehicle (tests may
	// swap it before serving traffic).
	fanoutCtx   context.Context
	fanoutStop  context.CancelFunc
	shardRunner shardExec
	fanout      fanoutStats

	// Remote shard fabric: every server carries the worker role (the
	// POST /v1/shards endpoint), so any peer can dispatch to it;
	// remotePool exists only when FanoutExec is "remote" and this server
	// coordinates dispatches of its own.
	remoteWorker *remote.Worker
	remotePool   *remote.Pool
}

// New builds a Server and starts its executor pool. Call Drain to stop.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		cache:    newResultCache(cfg.CacheSize),
		inflight: make(map[string]*run),
		failed:   make(map[string]*run),
		queue:    make(chan *run, cfg.MaxQueue),
	}
	s.baseCtx, s.stop = context.WithCancel(context.Background())
	s.fanoutCtx, s.fanoutStop = context.WithCancel(s.baseCtx)
	s.remoteWorker = remote.NewWorker(cfg.Workers, cfg.EngineWorkers, "")
	switch cfg.FanoutExec {
	case "process":
		bin := cfg.FanoutBinary
		if bin == "" {
			bin, _ = os.Executable()
		}
		s.shardRunner = processExec{bin: bin, workers: cfg.EngineWorkers}
	case "remote":
		s.remotePool = remote.NewPool(cfg.Peers, remote.PoolConfig{})
		s.shardRunner = remoteExec{pool: s.remotePool, local: goroutineExec{workers: cfg.EngineWorkers}}
		go s.remotePool.Run(s.baseCtx)
	default:
		s.shardRunner = goroutineExec{workers: cfg.EngineWorkers}
	}
	s.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleRun)
	mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	mux.HandleFunc("POST "+remote.ShardsPath, s.handleShards)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return mux
}

// handleShards is the worker role: execute one dispatched shard and
// stream its artifact back (see internal/remote). The fan-out context
// governs execution, so a drain checkpoints remotely-served shards
// exactly like locally fanned-out ones — the last shipped checkpoint
// frame lets the dispatching coordinator resume elsewhere.
func (s *Server) handleShards(w http.ResponseWriter, req *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, "server is draining; not accepting new shards")
		return
	}
	s.remoteWorker.ServeShard(s.fanoutCtx, w, req)
}

// errorEnvelope is the uniform error body: one "error" field whose text
// is the underlying registry/validation error verbatim (unknown
// workloads, parameters and processes all answer with their valid-names
// listings).
type errorEnvelope struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	b, err := json.Marshal(v)
	if err != nil {
		// Unreachable for the envelope types; keep the wire valid anyway.
		b = []byte(`{"error":"encoding failure"}`)
	}
	w.Write(append(b, '\n'))
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorEnvelope{Error: fmt.Sprintf(format, args...)})
}

// writeBody serves a rendered result body with its cache disposition.
func writeBody(w http.ResponseWriter, cache string, started time.Time, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Mpvar-Cache", cache)
	w.Header().Set("X-Mpvar-Elapsed-Ms", elapsedMS(time.Since(started)))
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// ------------------------------------------------------------ workloads

// workloadJSON is the wire form of one registry entry.
type workloadJSON struct {
	Name    string      `json:"name"`
	Summary string      `json:"summary"`
	InAll   bool        `json:"in_all"`
	Params  []paramJSON `json:"params"`
	Hints   hintsJSON   `json:"hints"`
}

type paramJSON struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"`
	Default any    `json:"default"`
	Help    string `json:"help"`
}

type hintsJSON struct {
	Samples int `json:"samples"`
	// SamplesCV is the advised budget when the workload runs with its
	// control-variate estimator (cv: true): the paired estimator needs
	// far fewer transients per unit of σ accuracy, so clients sizing a
	// budget from hints should use this one when they set cv.
	SamplesCV int            `json:"samples_cv,omitempty"`
	Smoke     map[string]any `json:"smoke,omitempty"`
	// Cost weighs one Monte-Carlo sample against one analytic trial
	// (samples × cost is the fan-out threshold input); absent means the
	// workload's runtime is not in the shardable Monte-Carlo stream and
	// the server never fans it out.
	Cost float64 `json:"cost,omitempty"`
}

// handleWorkloads serves the registry listing — generated from the same
// descriptors the CLI usage and Study.Run validation use, so the three
// surfaces cannot drift apart.
func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	ws := exp.Workloads()
	out := struct {
		Engine    string         `json:"engine"`
		Processes []string       `json:"processes"`
		Workloads []workloadJSON `json:"workloads"`
	}{Engine: core.EngineVersion, Processes: core.ProcessNames()}
	for _, wl := range ws {
		wj := workloadJSON{
			Name:    wl.Name,
			Summary: wl.Summary,
			InAll:   wl.InAll,
			Params:  []paramJSON{},
			Hints:   hintsJSON{Samples: wl.Hints.Samples, SamplesCV: wl.Hints.CVSamples, Smoke: wl.Hints.Smoke, Cost: wl.Hints.Cost},
		}
		for _, ps := range wl.Params {
			wj.Params = append(wj.Params, paramJSON{
				Name: ps.Name, Kind: ps.Kind.String(), Default: ps.Default, Help: ps.Help,
			})
		}
		out.Workloads = append(out.Workloads, wj)
	}
	writeJSON(w, http.StatusOK, out)
}

// ------------------------------------------------------------ submit

// runRequest is the POST /v1/runs body. Unknown fields are rejected so a
// misspelled "samples" degrades to 400, not to a silent default budget.
type runRequest struct {
	Workload string         `json:"workload"`
	Params   map[string]any `json:"params"`
	Process  string         `json:"process"`
	Seed     int64          `json:"seed"`
	Samples  int            `json:"samples"`
	FastSeed bool           `json:"fastseed"`
}

// statusEnvelope reports a run's lifecycle state. Every status-shaped
// response — live, failed, or the SSE "done" frame for a cached run —
// uses this one envelope, so the field set cannot drift between paths.
type statusEnvelope struct {
	ID       string         `json:"id"`
	Status   runStatus      `json:"status"`
	Workload string         `json:"workload"`
	Error    string         `json:"error,omitempty"`
	Progress *progressPoint `json:"progress,omitempty"`
}

func statusOf(r *run) statusEnvelope {
	st, p, err := r.snapshot()
	env := statusEnvelope{ID: r.key, Status: st, Workload: r.spec.Workload}
	if err != nil {
		env.Error = err.Error()
	}
	if p.Total > 0 {
		env.Progress = &p
	}
	return env
}

// doneEnvelope is the terminal SSE frame for a successful run; the
// cached-run and live-run paths both build it here so they stay
// byte-identical.
func doneEnvelope(id, workload string) statusEnvelope {
	return statusEnvelope{ID: id, Status: statusDone, Workload: workload}
}

// handleSubmit validates, content-addresses and executes (or coalesces,
// or sheds) one run submission.
func (s *Server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	started := time.Now()
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	var rr runRequest
	if err := dec.Decode(&rr); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return
	}
	spec, err := core.RunSpec{
		Workload: rr.Workload,
		Params:   exp.Params(rr.Params),
		Process:  rr.Process,
		Seed:     rr.Seed,
		Samples:  rr.Samples,
		FastSeed: rr.FastSeed,
	}.Normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key, err := spec.Key()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if body, _, _, ok := s.cache.Get(key); ok {
		writeBody(w, "hit", started, body)
		return
	}
	r, outcome := s.submit(key, spec)
	switch outcome {
	case submitShed:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			"run queue full (%d queued); retry shortly", s.cfg.MaxQueue)
		return
	case submitDraining:
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, "server is draining; not accepting new runs")
		return
	}
	if req.URL.Query().Get("wait") == "0" {
		writeJSON(w, http.StatusAccepted, statusOf(r))
		return
	}
	select {
	case <-r.done:
	case <-req.Context().Done():
		// The client went away; the run keeps executing and lands in the
		// cache for its next submission.
		return
	}
	if r.err != nil {
		writeError(w, http.StatusInternalServerError, "%v", r.err)
		return
	}
	if n := r.fanoutWidth(); n > 0 {
		// Execution detail, like timing: travels in a header, never in
		// the body (which stays byte-identical to direct execution).
		w.Header().Set("X-Mpvar-Fanout", strconv.Itoa(n))
	}
	writeBody(w, "miss", started, r.body)
}

// ------------------------------------------------------------ run fetch

// handleRun serves a finished run from the cache (byte-identical to the
// submission response), the live status of an in-flight one, or the
// failed status (with the error) of a recently failed one. Only an id
// that was never submitted — or aged out of the bounded failure table or
// the cache — is 404.
func (s *Server) handleRun(w http.ResponseWriter, req *http.Request) {
	started := time.Now()
	id := req.PathValue("id")
	if body, _, _, ok := s.cache.Get(id); ok {
		writeBody(w, "hit", started, body)
		return
	}
	s.mu.Lock()
	r, ok := s.inflight[id]
	if !ok {
		r, ok = s.failed[id]
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown run %q (finished-and-evicted or never submitted)", id)
		return
	}
	writeJSON(w, http.StatusOK, statusOf(r))
}

// ------------------------------------------------------------ SSE

// sseEvent writes one Server-Sent Event frame.
func sseEvent(w http.ResponseWriter, f http.Flusher, event string, data any) {
	b, _ := json.Marshal(data)
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
	f.Flush()
}

// handleEvents streams a run's lifecycle as SSE: an initial "status"
// frame, "progress" frames riding the engines' serialized callbacks, and
// a terminal "done" or "error" frame. Subscribing to an already-cached
// run answers "done" immediately.
func (s *Server) handleEvents(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	f, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	s.mu.Lock()
	r, inflight := s.inflight[id]
	failed, wasFailed := s.failed[id]
	s.mu.Unlock()
	_, workload, terminal, cached := s.cache.Get(id)
	if !inflight && !cached && !wasFailed {
		writeError(w, http.StatusNotFound, "unknown run %q", id)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	if !inflight {
		// Terminal frames for finished runs, identical to what a live
		// subscriber received: the 100% "progress" frame (when the run
		// reported progress at all) then "done" for a cached result,
		// "error" for a retained failure — so cached and live streams
		// end frame-compatibly and clients need no special case.
		if cached {
			if terminal.Total > 0 {
				sseEvent(w, f, "progress", terminal)
			}
			sseEvent(w, f, "done", doneEnvelope(id, workload))
		} else {
			sseEvent(w, f, "error", errorEnvelope{Error: failed.err.Error()})
		}
		return
	}
	sub := r.subscribe()
	defer r.unsubscribe(sub)
	sseEvent(w, f, "status", statusOf(r))
	for {
		select {
		case p := <-sub:
			sseEvent(w, f, "progress", p)
		case <-r.done:
			if r.err != nil {
				sseEvent(w, f, "error", errorEnvelope{Error: r.err.Error()})
			} else {
				// Emit the terminal 100% progress frame before "done" —
				// the lossy subscriber channel may have dropped it — so
				// the stream always ends with the same frame pair the
				// cached path replays.
				if _, p, _ := r.snapshot(); p.Total > 0 {
					sseEvent(w, f, "progress", p)
				}
				sseEvent(w, f, "done", doneEnvelope(r.key, r.spec.Workload))
			}
			return
		case <-req.Context().Done():
			return
		}
	}
}

// ------------------------------------------------------------ health

// healthFanout is the fan-out block of the healthz body: configuration
// plus the executor counters that make load behavior under fan-out
// observable (how many shards are executing right now, how much resumed
// from checkpoints instead of recomputing, how often children crashed).
type healthFanout struct {
	Shards             int    `json:"shards"`
	Exec               string `json:"exec"`
	MinSamples         int    `json:"min_samples"`
	InflightShards     int64  `json:"inflight_shards"`
	Runs               int64  `json:"runs"`
	ShardsResumed      int64  `json:"shards_resumed"`
	ShardsRedispatched int64  `json:"shards_redispatched"`
}

// healthRemote is the remote-fabric block of the healthz body, covering
// both roles: the coordinator's peer pool (configured/live peers,
// dispatch counters) and the worker's shard service (dispatches served
// for peers, bytes streamed out).
type healthRemote struct {
	PeersConfigured    int   `json:"peers_configured"`
	PeersLive          int   `json:"peers_live"`
	ShardsDispatched   int64 `json:"shards_dispatched"`
	ShippedBytes       int64 `json:"shipped_bytes"`
	FailedOver         int64 `json:"failed_over"`
	WorkerShardsServed int64 `json:"worker_shards_served"`
	WorkerShardsActive int64 `json:"worker_shards_active"`
	WorkerBytesShipped int64 `json:"worker_bytes_shipped"`
}

// handleHealthz reports liveness and the load counters an operator (or a
// drain test) wants: accepting vs draining, in-flight runs and shards,
// queue depth, cache fill and hit ratio.
func (s *Server) handleHealthz(w http.ResponseWriter, req *http.Request) {
	s.mu.Lock()
	inflight := len(s.inflight)
	draining := s.draining
	s.mu.Unlock()
	status := "ok"
	if draining {
		status = "draining"
	}
	hits, misses := s.cache.Stats()
	ratio := 0.0
	if hits+misses > 0 {
		ratio = float64(hits) / float64(hits+misses)
	}
	rem := healthRemote{
		WorkerShardsServed: s.remoteWorker.Stats().ShardsServed.Load(),
		WorkerShardsActive: s.remoteWorker.Stats().ShardsActive.Load(),
		WorkerBytesShipped: s.remoteWorker.Stats().BytesShipped.Load(),
	}
	if s.remotePool != nil {
		rem.PeersConfigured, rem.PeersLive = s.remotePool.Peers()
		rem.ShardsDispatched = s.remotePool.Stats().Dispatched.Load()
		rem.ShippedBytes = s.remotePool.Stats().ShippedBytes.Load()
		rem.FailedOver = s.remotePool.Stats().FailedOver.Load()
	}
	writeJSON(w, http.StatusOK, struct {
		Status        string       `json:"status"`
		Engine        string       `json:"engine"`
		Inflight      int          `json:"inflight"`
		QueueDepth    int          `json:"queue_depth"`
		Cached        int          `json:"cached"`
		CacheHits     int64        `json:"cache_hits"`
		CacheMisses   int64        `json:"cache_misses"`
		CacheHitRatio float64      `json:"cache_hit_ratio"`
		Workers       int          `json:"workers"`
		MaxQueue      int          `json:"max_queue"`
		Fanout        healthFanout `json:"fanout"`
		Remote        healthRemote `json:"remote"`
	}{
		status, core.EngineVersion, inflight, len(s.queue), s.cache.Len(),
		hits, misses, ratio, s.cfg.Workers, s.cfg.MaxQueue,
		healthFanout{
			Shards:             s.cfg.Fanout,
			Exec:               s.cfg.FanoutExec,
			MinSamples:         s.cfg.FanoutMinSamples,
			InflightShards:     s.fanout.inflightShards.Load(),
			Runs:               s.fanout.runs.Load(),
			ShardsResumed:      s.fanout.shardsResumed.Load(),
			ShardsRedispatched: s.fanout.shardsRedispatched.Load(),
		},
		rem,
	})
}

// ------------------------------------------------------------ serving

// ListenAndServe binds addr (":0" picks a free port), reports the bound
// address through ready, and serves until ctx cancels — then shuts down
// gracefully: the listener closes, in-flight HTTP requests and SSE
// streams finish as their runs complete, queued and running runs drain
// to completion (bounded by DrainTimeout, past which they are
// hard-canceled). The CLI wires SIGTERM/SIGINT to the ctx.
func (s *Server) ListenAndServe(ctx context.Context, addr string, ready func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	if ready != nil {
		ready(ln.Addr())
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Refuse new runs first so requests still in flight on kept-alive
	// connections answer 503 instead of queueing work mid-shutdown.
	s.beginDrain()
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		hs.Close()
	}
	return s.Drain(dctx)
}
