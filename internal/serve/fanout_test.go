package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mpsram/internal/core"
	"mpsram/internal/mc"
)

// The fan-out suite drives real registry workloads (fig5 — cheap,
// analytic, Cost-hinted) through the fan-out executor and pins the one
// property everything else hangs off: fan-out is pure execution detail,
// the response body is byte-identical to direct execution.

// directBody runs spec on a fan-out-disabled server and returns the body
// — the reference every fan-out path must reproduce byte-for-byte.
func directBody(t *testing.T, body string) []byte {
	t.Helper()
	_, ts := newTestServer(t, Config{Workers: 1, Fanout: 1, EngineWorkers: 1})
	resp, b := postRun(t, ts, "", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("direct run: %d %s", resp.StatusCode, b)
	}
	if got := resp.Header.Get("X-Mpvar-Fanout"); got != "" {
		t.Fatalf("fan-out-disabled server set X-Mpvar-Fanout: %q", got)
	}
	return b
}

// TestFanoutByteIdenticalToDirect: a heavy submission fans out (header
// says so), the reduced body is byte-identical to direct execution, the
// result lands in the ordinary cache (a re-submission hits without the
// fan-out header), and the scratch artifacts are cleaned up.
func TestFanoutByteIdenticalToDirect(t *testing.T) {
	body := `{"workload":"fig5","samples":8000}`
	direct := directBody(t, body)

	dir := t.TempDir()
	s, ts := newTestServer(t, Config{
		Workers: 1, Fanout: 3, FanoutMinSamples: 1, EngineWorkers: 1, FanoutDir: dir,
	})
	resp, fanned := postRun(t, ts, "", body)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Mpvar-Cache") != "miss" {
		t.Fatalf("fan-out run: %d cache %q: %s", resp.StatusCode, resp.Header.Get("X-Mpvar-Cache"), fanned)
	}
	if got := resp.Header.Get("X-Mpvar-Fanout"); got != "3" {
		t.Fatalf("X-Mpvar-Fanout %q, want 3", got)
	}
	if !bytes.Equal(direct, fanned) {
		t.Fatalf("fan-out body diverged from direct execution:\ndirect: %s\nfanned: %s", direct, fanned)
	}
	if got := s.fanout.runs.Load(); got != 1 {
		t.Fatalf("fan-out runs counter %d, want 1", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 0 {
		t.Fatalf("scratch artifacts not cleaned up after success: %v (%v)", entries, err)
	}
	// The reduced body lives in the same content-addressed cache entry:
	// a re-submission is a plain hit, no fan-out involved.
	resp2, warm := postRun(t, ts, "", body)
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get("X-Mpvar-Cache") != "hit" ||
		resp2.Header.Get("X-Mpvar-Fanout") != "" || !bytes.Equal(warm, fanned) {
		t.Fatalf("cached re-submission drifted: %d cache %q fanout %q",
			resp2.StatusCode, resp2.Header.Get("X-Mpvar-Cache"), resp2.Header.Get("X-Mpvar-Fanout"))
	}
	if got := s.fanout.runs.Load(); got != 1 {
		t.Fatalf("cache hit went through the fan-out executor: runs %d", got)
	}
}

// TestFanoutDegeneratesToDirect pins the two ways a submission stays
// single-process: a fan-out width of 1, and a workload without a Cost
// hint (whose runtime is not in the shardable Monte-Carlo stream) even
// when the width and threshold would otherwise fan everything out.
func TestFanoutDegeneratesToDirect(t *testing.T) {
	s1, ts1 := newTestServer(t, Config{Workers: 1, Fanout: 1, FanoutMinSamples: 1, EngineWorkers: 1, FanoutDir: t.TempDir()})
	resp, b := postRun(t, ts1, "", `{"workload":"fig5","samples":2000}`)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Mpvar-Fanout") != "" {
		t.Fatalf("-fanout 1: %d fanout header %q: %s", resp.StatusCode, resp.Header.Get("X-Mpvar-Fanout"), b)
	}
	if got := s1.fanout.runs.Load(); got != 0 {
		t.Fatalf("-fanout 1 executed %d fan-outs", got)
	}

	s2, ts2 := newTestServer(t, Config{Workers: 1, Fanout: 3, FanoutMinSamples: 1, EngineWorkers: 1, FanoutDir: t.TempDir()})
	resp2, b2 := postRun(t, ts2, "", `{"workload":"testcheap","samples":1000000}`)
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get("X-Mpvar-Fanout") != "" {
		t.Fatalf("cost-0 workload: %d fanout header %q: %s", resp2.StatusCode, resp2.Header.Get("X-Mpvar-Fanout"), b2)
	}
	if got := s2.fanout.runs.Load(); got != 0 {
		t.Fatalf("cost-0 workload executed %d fan-outs", got)
	}
	// Below the threshold, a Cost-hinted workload also stays direct.
	s3, ts3 := newTestServer(t, Config{Workers: 1, Fanout: 3, FanoutMinSamples: 50000, EngineWorkers: 1, FanoutDir: t.TempDir()})
	resp3, b3 := postRun(t, ts3, "", `{"workload":"fig5","samples":2000}`)
	if resp3.StatusCode != http.StatusOK || resp3.Header.Get("X-Mpvar-Fanout") != "" {
		t.Fatalf("below-threshold: %d fanout header %q: %s", resp3.StatusCode, resp3.Header.Get("X-Mpvar-Fanout"), b3)
	}
	if got := s3.fanout.runs.Load(); got != 0 {
		t.Fatalf("below-threshold submission executed %d fan-outs", got)
	}
}

// flakyExec fails shard 0's first attempt after the inner vehicle has
// already persisted a partial checkpoint, so the re-dispatch exercises
// the real resume path, not just the retry counter.
type flakyExec struct {
	inner   shardExec
	tripped atomic.Bool
}

func (e *flakyExec) runShard(ctx context.Context, spec core.RunSpec, shard mc.ShardSpec, path string, progress func(done, total int)) error {
	if shard.Index == 0 && e.tripped.CompareAndSwap(false, true) {
		// Let the shard make real progress, then kill the attempt so the
		// checkpoint it persisted on the way down has a non-empty frontier.
		cctx, cancel := context.WithCancel(ctx)
		go func() {
			// Cancel once the shard has reported progress (or give up).
			deadline := time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) {
				if _, err := os.Stat(path); err == nil {
					break
				}
				time.Sleep(2 * time.Millisecond)
			}
			cancel()
		}()
		err := e.inner.runShard(cctx, spec, shard, path, progress)
		cancel()
		if err == nil {
			// The shard finished before the injected cancel landed; fail the
			// attempt anyway — the complete artifact makes the retry a
			// short-circuit resume, which is also worth exercising.
			return fmt.Errorf("injected shard failure")
		}
		return fmt.Errorf("injected shard failure: %w", err)
	}
	return e.inner.runShard(ctx, spec, shard, path, progress)
}

// TestFanoutShardFailureRedispatch: a shard attempt that dies is
// re-dispatched (resuming its checkpoint) and the run still completes
// with the byte-identical body.
func TestFanoutShardFailureRedispatch(t *testing.T) {
	body := `{"workload":"fig5","samples":8000}`
	direct := directBody(t, body)

	s, ts := newTestServer(t, Config{
		Workers: 1, Fanout: 2, FanoutMinSamples: 1, EngineWorkers: 1, FanoutDir: t.TempDir(),
	})
	s.shardRunner = &flakyExec{inner: s.shardRunner}
	resp, fanned := postRun(t, ts, "", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run with flaky shard: %d %s", resp.StatusCode, fanned)
	}
	if !bytes.Equal(direct, fanned) {
		t.Fatalf("re-dispatched run diverged from direct execution:\ndirect: %s\nfanned: %s", direct, fanned)
	}
	if got := s.fanout.shardsRedispatched.Load(); got < 1 {
		t.Fatalf("shardsRedispatched %d, want ≥ 1", got)
	}
}

// TestFanoutDrainCheckpointResume is the restart story end to end: a
// graceful drain cancels the fan-out run mid-flight, every shard leaves
// a resumable checkpoint in the scratch directory and the run fails with
// a resume hint; a new server pointed at the same directory resumes
// those checkpoints on re-submission — counted, not recomputed — and
// produces the byte-identical direct body.
func TestFanoutDrainCheckpointResume(t *testing.T) {
	body := `{"workload":"fig5","samples":60000}`
	dir := t.TempDir()
	cfg := Config{Workers: 1, Fanout: 2, FanoutMinSamples: 1, EngineWorkers: 1, FanoutDir: dir}

	sA, tsA := newTestServer(t, cfg)
	resp, b := postRun(t, tsA, "?wait=0", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, b)
	}
	var env statusEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		t.Fatal(err)
	}
	// Wait for real shard progress so the checkpoints have a non-empty
	// frontier worth resuming.
	deadline := time.Now().Add(15 * time.Second)
	for {
		_, sb := getJSON(t, tsA.URL+"/v1/runs/"+env.ID)
		var st statusEnvelope
		if json.Unmarshal(sb, &st) == nil && st.Progress != nil && st.Progress.Done > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fan-out run never reported progress")
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := sA.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ckpts, err := filepath.Glob(filepath.Join(dir, env.ID+".shard*"))
	if err != nil || len(ckpts) != 2 {
		t.Fatalf("drain left %d checkpoints (%v), want 2: %v", len(ckpts), ckpts, err)
	}
	sresp, sb := getJSON(t, tsA.URL+"/v1/runs/"+env.ID)
	var st statusEnvelope
	if sresp.StatusCode != http.StatusOK || json.Unmarshal(sb, &st) != nil ||
		st.Status != statusFailed || !strings.Contains(st.Error, "resubmit after restart to resume") {
		t.Fatalf("drained fan-out run status drifted: %d %s", sresp.StatusCode, sb)
	}

	// "Restart": a fresh server generation sharing the scratch directory.
	sB, tsB := newTestServer(t, cfg)
	resp2, resumed := postRun(t, tsB, "", body)
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get("X-Mpvar-Fanout") != "2" {
		t.Fatalf("resumed run: %d fanout %q: %s", resp2.StatusCode, resp2.Header.Get("X-Mpvar-Fanout"), resumed)
	}
	if got := sB.fanout.shardsResumed.Load(); got < 1 {
		t.Fatalf("shardsResumed %d, want ≥ 1 (recomputed instead of resuming?)", got)
	}
	if direct := directBody(t, body); !bytes.Equal(direct, resumed) {
		t.Fatalf("resumed body diverged from direct execution:\ndirect: %s\nresumed: %s", direct, resumed)
	}
	if left, _ := filepath.Glob(filepath.Join(dir, env.ID+".shard*")); len(left) != 0 {
		t.Fatalf("checkpoints not cleaned up after the resumed run: %v", left)
	}
}

// TestFanoutHealthz: the healthz body carries the fan-out configuration
// and counters.
func TestFanoutHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Fanout: 3, FanoutMinSamples: 1, EngineWorkers: 1, FanoutDir: t.TempDir()})
	if resp, b := postRun(t, ts, "", `{"workload":"fig5","samples":4000}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %d %s", resp.StatusCode, b)
	}
	resp, b := getJSON(t, ts.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d %s", resp.StatusCode, b)
	}
	var got struct {
		Status        string  `json:"status"`
		QueueDepth    int     `json:"queue_depth"`
		CacheHits     int64   `json:"cache_hits"`
		CacheMisses   int64   `json:"cache_misses"`
		CacheHitRatio float64 `json:"cache_hit_ratio"`
		Fanout        struct {
			Shards         int    `json:"shards"`
			Exec           string `json:"exec"`
			MinSamples     int    `json:"min_samples"`
			InflightShards int64  `json:"inflight_shards"`
			Runs           int64  `json:"runs"`
		} `json:"fanout"`
	}
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("decode: %v\n%s", err, b)
	}
	if got.Status != "ok" || got.Fanout.Shards != 3 || got.Fanout.Exec != "goroutine" ||
		got.Fanout.MinSamples != 1 || got.Fanout.Runs != 1 || got.Fanout.InflightShards != 0 {
		t.Fatalf("healthz fan-out block drifted: %+v", got)
	}
	if got.CacheMisses < 1 {
		t.Fatalf("cache counters missing: %+v", got)
	}
	if _, warm := postRun(t, ts, "", `{"workload":"fig5","samples":4000}`); warm == nil {
		t.Fatal("cache-hit re-submission failed")
	}
	_, b2 := getJSON(t, ts.URL+"/v1/healthz")
	if err := json.Unmarshal(b2, &got); err != nil || got.CacheHits < 1 || got.CacheHitRatio <= 0 {
		t.Fatalf("hit ratio not reported: %v %s", err, b2)
	}
	if got.Fanout.Runs != 1 {
		t.Fatalf("cache hit incremented fan-out runs: %d", got.Fanout.Runs)
	}
}
