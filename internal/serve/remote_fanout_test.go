package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mpsram/internal/core"
)

// The remote fan-out suite runs real coordinator + worker Server
// instances over httptest and pins the tentpole invariant end to end:
// dispatching shards to peers is pure execution detail — the response
// body and cache entry are byte-identical to direct execution — and the
// failure ladder (drifted peer → never picked, dead peer → failover
// from the last shipped checkpoint, no peers at all → local fallback,
// coordinator drain → resumable artifacts) never costs a wrong answer.

// newWorkerPeer starts a plain Server to act as a shard worker for a
// coordinator under test, with checkpoint shipping tightened so tests
// observe shipped checkpoints quickly.
func newWorkerPeer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s, ts := newTestServer(t, Config{Workers: 2, EngineWorkers: 1})
	s.remoteWorker.CheckpointEvery = 25 * time.Millisecond
	return s, ts
}

type remoteHealth struct {
	Status string `json:"status"`
	Remote struct {
		PeersConfigured    int   `json:"peers_configured"`
		PeersLive          int   `json:"peers_live"`
		ShardsDispatched   int64 `json:"shards_dispatched"`
		ShippedBytes       int64 `json:"shipped_bytes"`
		FailedOver         int64 `json:"failed_over"`
		WorkerShardsServed int64 `json:"worker_shards_served"`
	} `json:"remote"`
}

func remoteHealthz(t *testing.T, ts *httptest.Server) remoteHealth {
	t.Helper()
	resp, b := getJSON(t, ts.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d %s", resp.StatusCode, b)
	}
	var h remoteHealth
	if err := json.Unmarshal(b, &h); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	return h
}

// TestRemoteFanoutByteIdenticalToDirect: a heavy submission fans out
// across two peer workers, the reduced body is byte-identical to direct
// execution and lands in the same cache entry, and both ends' healthz
// remote blocks account for the dispatches.
func TestRemoteFanoutByteIdenticalToDirect(t *testing.T) {
	body := `{"workload":"fig5","samples":8000}`
	direct := directBody(t, body)

	wA, tsA := newWorkerPeer(t)
	wB, tsB := newWorkerPeer(t)
	_, ts := newTestServer(t, Config{
		Workers: 1, Fanout: 3, FanoutMinSamples: 1, EngineWorkers: 1,
		FanoutDir: t.TempDir(), FanoutExec: "remote",
		Peers: []string{tsA.URL, tsB.URL},
	})

	resp, fanned := postRun(t, ts, "", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remote fan-out run: %d %s", resp.StatusCode, fanned)
	}
	if got := resp.Header.Get("X-Mpvar-Fanout"); got != "3" {
		t.Fatalf("X-Mpvar-Fanout %q, want 3", got)
	}
	if !bytes.Equal(direct, fanned) {
		t.Fatalf("remote fan-out body diverged from direct execution:\ndirect: %s\nremote: %s", direct, fanned)
	}

	h := remoteHealthz(t, ts)
	if h.Remote.PeersConfigured != 2 || h.Remote.PeersLive != 2 {
		t.Fatalf("coordinator peers %d configured / %d live, want 2/2", h.Remote.PeersConfigured, h.Remote.PeersLive)
	}
	if h.Remote.ShardsDispatched != 3 || h.Remote.ShippedBytes == 0 {
		t.Fatalf("coordinator dispatched %d shards (%d bytes), want 3 dispatches",
			h.Remote.ShardsDispatched, h.Remote.ShippedBytes)
	}
	served := wA.remoteWorker.Stats().ShardsServed.Load() + wB.remoteWorker.Stats().ShardsServed.Load()
	if served != 3 {
		t.Fatalf("workers served %d shards, want 3", served)
	}

	// Same cache entry as direct execution: a re-submission is a plain
	// hit with no execution at all.
	resp2, warm := postRun(t, ts, "", body)
	if resp2.Header.Get("X-Mpvar-Cache") != "hit" || !bytes.Equal(warm, fanned) {
		t.Fatalf("cached re-submission drifted: cache %q", resp2.Header.Get("X-Mpvar-Cache"))
	}
}

// TestRemoteFanoutDriftedPeerLocalFallback: a peer advertising a
// different engine version is never dispatched to — its healthz keeps
// it out of the live set — and with no live peer at all the run falls
// back to in-process execution, still byte-identical.
func TestRemoteFanoutDriftedPeerLocalFallback(t *testing.T) {
	body := `{"workload":"fig5","samples":8000}`
	direct := directBody(t, body)

	var shardHits atomic.Int64
	drifted := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/shards") {
			shardHits.Add(1)
			http.Error(w, "should never be dispatched to", http.StatusConflict)
			return
		}
		fmt.Fprint(w, `{"status":"ok","engine":"v0-ancient"}`)
	}))
	t.Cleanup(drifted.Close)

	_, ts := newTestServer(t, Config{
		Workers: 1, Fanout: 2, FanoutMinSamples: 1, EngineWorkers: 1,
		FanoutDir: t.TempDir(), FanoutExec: "remote",
		Peers: []string{drifted.URL},
	})
	resp, fanned := postRun(t, ts, "", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fallback run: %d %s", resp.StatusCode, fanned)
	}
	if !bytes.Equal(direct, fanned) {
		t.Fatal("local-fallback body diverged from direct execution")
	}
	if n := shardHits.Load(); n != 0 {
		t.Fatalf("drifted peer received %d dispatches, want 0", n)
	}
	h := remoteHealthz(t, ts)
	if h.Remote.PeersLive != 0 || h.Remote.ShardsDispatched != 0 {
		t.Fatalf("drifted peer counted live (%d) or dispatched to (%d)",
			h.Remote.PeersLive, h.Remote.ShardsDispatched)
	}
}

// TestRemoteFanoutDeadPeerFailover: killing a worker's connections
// mid-run tears its shard streams; the coordinator marks it down,
// re-dispatches from the last shipped checkpoint, and the run still
// completes byte-identical to direct execution.
func TestRemoteFanoutDeadPeerFailover(t *testing.T) {
	body := `{"workload":"fig5","samples":60000}`
	direct := directBody(t, body)

	_, tsA := newWorkerPeer(t)
	_, tsB := newWorkerPeer(t)
	s, ts := newTestServer(t, Config{
		Workers: 1, Fanout: 2, FanoutMinSamples: 1, EngineWorkers: 1,
		FanoutDir: t.TempDir(), FanoutExec: "remote",
		Peers: []string{tsA.URL, tsB.URL},
	})

	resp, b := postRun(t, ts, "?wait=0", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, b)
	}
	var env statusEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		t.Fatal(err)
	}

	// Wait for shard streams to be live (progress flowing), then tear
	// every connection into worker A.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no progress observed before deadline")
		}
		_, sb := getJSON(t, ts.URL+"/v1/runs/"+env.ID)
		var st statusEnvelope
		if json.Unmarshal(sb, &st) == nil && st.Progress != nil && st.Progress.Done > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	tsA.CloseClientConnections()

	// The blocking re-submission coalesces into the in-flight run and
	// waits for it — completion despite the torn streams is the assertion.
	resp2, fanned := postRun(t, ts, "", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-failover fetch: %d %s", resp2.StatusCode, fanned)
	}
	if !bytes.Equal(direct, fanned) {
		t.Fatal("failover body diverged from direct execution")
	}
	if n := s.remotePool.Stats().FailedOver.Load(); n < 1 {
		t.Fatalf("failed_over = %d, want >= 1", n)
	}
	if n := s.fanout.shardsRedispatched.Load(); n < 1 {
		t.Fatalf("shards_redispatched = %d, want >= 1", n)
	}
}

// TestRemoteFanoutDrainResume: draining the coordinator mid-run leaves
// the workers' shipped checkpoints as resumable artifacts in its
// FanoutDir; a restarted coordinator resumes them on resubmission and
// produces the byte-identical body.
func TestRemoteFanoutDrainResume(t *testing.T) {
	body := `{"workload":"fig5","samples":60000}`
	direct := directBody(t, body)

	_, tsA := newWorkerPeer(t)
	_, tsB := newWorkerPeer(t)
	dir := t.TempDir()
	cfg := Config{
		Workers: 1, Fanout: 2, FanoutMinSamples: 1, EngineWorkers: 1,
		FanoutDir: dir, FanoutExec: "remote",
		Peers: []string{tsA.URL, tsB.URL},
	}
	sA, ts := newTestServer(t, cfg)

	resp, b := postRun(t, ts, "?wait=0", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, b)
	}
	var env statusEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		t.Fatal(err)
	}

	// Wait for at least one shipped checkpoint to land in the
	// coordinator's scratch dir — proof the drain will leave something
	// resumable behind.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no shipped checkpoint landed before deadline")
		}
		if m, _ := filepath.Glob(filepath.Join(dir, env.ID+".shard*")); len(m) > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := sA.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	checkpoints, _ := filepath.Glob(filepath.Join(dir, env.ID+".shard*"))
	if len(checkpoints) == 0 {
		t.Fatal("drain left no resumable shard artifacts")
	}
	for _, p := range checkpoints {
		art, err := core.ReadShardArtifact(p)
		if err != nil {
			t.Fatalf("drain checkpoint %s unreadable: %v", p, err)
		}
		if art.Header.RunKey != env.ID {
			t.Fatalf("drain checkpoint %s belongs to run %s", p, art.Header.RunKey)
		}
	}

	sB, ts2 := newTestServer(t, cfg)
	resp2, fanned := postRun(t, ts2, "", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resumed run: %d %s", resp2.StatusCode, fanned)
	}
	if !bytes.Equal(direct, fanned) {
		t.Fatal("resumed body diverged from direct execution")
	}
	if n := sB.fanout.shardsResumed.Load(); n < 1 {
		t.Fatalf("shards_resumed = %d, want >= 1", n)
	}
}
