// Package units provides SI unit helpers, physical constants and
// engineering-notation formatting used throughout the mpsram library.
//
// All physical quantities in this repository are plain float64 values in
// base SI units (metres, ohms, farads, seconds, volts, amperes). The
// constants and helpers here exist to make literals in the higher layers
// readable: `26 * units.Nano` is a 26 nm line width.
package units

import (
	"fmt"
	"math"
)

// SI prefixes as multipliers on base units.
const (
	Tera  = 1e12
	Giga  = 1e9
	Mega  = 1e6
	Kilo  = 1e3
	Milli = 1e-3
	Micro = 1e-6
	Nano  = 1e-9
	Pico  = 1e-12
	Femto = 1e-15
	Atto  = 1e-18
)

// Physical constants.
const (
	// Eps0 is the vacuum permittivity in F/m.
	Eps0 = 8.8541878128e-12
	// RhoCuBulk is the bulk resistivity of copper at room temperature
	// in ohm·m. Scaled interconnects use a larger effective resistivity
	// (grain-boundary and surface scattering, barrier sharing); the
	// technology stack carries its own effective value.
	RhoCuBulk = 1.72e-8
	// BoltzmannQ is kT/q at 300 K in volts (thermal voltage).
	BoltzmannQ = 0.025852
)

// Metres converts a value expressed in nanometres to metres.
func Metres(nm float64) float64 { return nm * Nano }

// Nanometres converts a value in metres to nanometres.
func Nanometres(m float64) float64 { return m / Nano }

// prefix maps exponent/3 to the SI prefix letter.
var prefixes = map[int]string{
	-6: "a", -5: "f", -4: "p", -3: "n", -2: "µ", -1: "m",
	0: "", 1: "k", 2: "M", 3: "G", 4: "T",
}

// Format renders v with an engineering (power-of-1000) SI prefix and the
// given unit suffix, e.g. Format(3.2e-13, "F") == "320.000fF".
func Format(v float64, unit string) string {
	if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Sprintf("%g%s", v, unit)
	}
	e := int(math.Floor(math.Log10(math.Abs(v)) / 3))
	if e < -6 {
		e = -6
	}
	if e > 4 {
		e = 4
	}
	scaled := v / math.Pow(1000, float64(e))
	return fmt.Sprintf("%.3f%s%s", scaled, prefixes[e], unit)
}

// FormatSI is Format with a space between number and unit.
func FormatSI(v float64, unit string) string {
	s := Format(v, "")
	return s + " " + unit
}

// Percent renders a ratio r (e.g. 1.0616) as a signed percentage delta
// string such as "+6.16%".
func Percent(r float64) string {
	return fmt.Sprintf("%+.2f%%", (r-1)*100)
}

// PercentValue renders a percentage value p (already in percent units).
func PercentValue(p float64) string { return fmt.Sprintf("%+.2f%%", p) }

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ApproxEqual reports whether a and b agree within relative tolerance rel
// (falling back to absolute tolerance abs when both are near zero).
func ApproxEqual(a, b, rel, abs float64) bool {
	d := math.Abs(a - b)
	if d <= abs {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= rel*m
}
