package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMetresRoundTrip(t *testing.T) {
	if got := Metres(26); math.Abs(got-26e-9) > 1e-18 {
		t.Fatalf("Metres(26) = %g, want 26e-9", got)
	}
	if got := Nanometres(48e-9); math.Abs(got-48) > 1e-9 {
		t.Fatalf("Nanometres(48e-9) = %g, want 48", got)
	}
}

func TestMetresRoundTripProperty(t *testing.T) {
	f := func(nm float64) bool {
		if math.IsNaN(nm) || math.IsInf(nm, 0) || math.Abs(nm) > 1e12 {
			return true
		}
		back := Nanometres(Metres(nm))
		return ApproxEqual(back, nm, 1e-12, 1e-15)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFormat(t *testing.T) {
	cases := []struct {
		v    float64
		unit string
		want string
	}{
		{3.2e-13, "F", "320.000fF"},
		{5.59e-12, "s", "5.590ps"},
		{2.9, "Ω", "2.900Ω"},
		{4.7e3, "Ω", "4.700kΩ"},
		{0, "F", "0F"},
	}
	for _, c := range cases {
		if got := Format(c.v, c.unit); got != c.want {
			t.Errorf("Format(%g,%q) = %q, want %q", c.v, c.unit, got, c.want)
		}
	}
}

func TestFormatNegative(t *testing.T) {
	got := Format(-1.5e-9, "s")
	if !strings.HasPrefix(got, "-1.500n") {
		t.Fatalf("Format(-1.5e-9) = %q", got)
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(1.6156); got != "+61.56%" {
		t.Fatalf("Percent(1.6156) = %q", got)
	}
	if got := Percent(0.8964); got != "-10.36%" {
		t.Fatalf("Percent(0.8964) = %q", got)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp misbehaves")
	}
}

func TestClampProperty(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		c := Clamp(v, -1, 1)
		return c >= -1 && c <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.0+1e-12, 1e-9, 0) {
		t.Fatal("tiny relative difference should be equal")
	}
	if ApproxEqual(1.0, 1.1, 1e-3, 0) {
		t.Fatal("10% difference should not be equal at 0.1% tolerance")
	}
	if !ApproxEqual(0, 1e-18, 1e-12, 1e-15) {
		t.Fatal("near-zero absolute tolerance failed")
	}
}
