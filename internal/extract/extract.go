// Package extract is the parasitic-extraction substrate of the study — the
// stand-in for the paper's proprietary parameterized LPE tool. It converts
// realized wire geometry (a litho.Window) plus the technology description
// into per-unit-length resistance and capacitance, per-cell bit-line
// parasitics, and the Rvar/Cvar variability ratios consumed by the paper's
// analytical formula and the SPICE-level netlists.
//
// Resistance uses the trapezoidal conductor cross-section minus barrier
// liners. Capacitance offers two closed-form models — the Sakurai–Tamaru
// empirical fit (default) and a cruder parallel-plate + constant-fringe
// model — both validated against the 2-D finite-difference field solver in
// internal/field.
package extract

import (
	"fmt"
	"math"

	"mpsram/internal/geom"
	"mpsram/internal/litho"
	"mpsram/internal/tech"
)

// CapModel computes per-unit-length capacitances of a rectangular wire in
// a homogeneous dielectric between two ground planes.
type CapModel interface {
	// Name identifies the model in reports.
	Name() string
	// GroundPerM returns the wire-to-one-plane capacitance per metre for
	// a wire of width w, thickness t, at distance h from that plane.
	GroundPerM(eps, w, t, h float64) float64
	// CouplingPerM returns the line-to-line capacitance per metre to one
	// neighbour across spacing s (same thickness t, plane distance h).
	CouplingPerM(eps, w, t, s, h float64) float64
}

// SakuraiTamaru is the empirical closed form from T. Sakurai and
// K. Tamaru, "Simple formulas for two- and three-dimensional capacitances"
// (IEEE Trans. Electron Devices, 1983), accurate to ~10 % for
// 0.3 ≤ w/h ≤ 30 and 0.3 ≤ t/h ≤ 10.
type SakuraiTamaru struct{}

// Name implements CapModel.
func (SakuraiTamaru) Name() string { return "sakurai-tamaru" }

// GroundPerM implements CapModel: C/ε = 1.15(w/h) + 2.80(t/h)^0.222.
func (SakuraiTamaru) GroundPerM(eps, w, t, h float64) float64 {
	return eps * (1.15*(w/h) + 2.80*math.Pow(t/h, 0.222))
}

// CouplingPerM implements CapModel:
// C/ε = [0.03(w/h) + 0.83(t/h) − 0.07(t/h)^0.222]·(s/h)^−1.34.
func (SakuraiTamaru) CouplingPerM(eps, w, t, s, h float64) float64 {
	k := 0.03*(w/h) + 0.83*(t/h) - 0.07*math.Pow(t/h, 0.222)
	return eps * k * math.Pow(s/h, -1.34)
}

// PlateFringe is the textbook parallel-plate model with a constant fringe
// term, kept as the crude ablation baseline.
type PlateFringe struct{}

// Name implements CapModel.
func (PlateFringe) Name() string { return "plate-fringe" }

// GroundPerM implements CapModel: plate w/h plus a fringe term that grows
// slowly with sidewall height.
func (PlateFringe) GroundPerM(eps, w, t, h float64) float64 {
	return eps * (w/h + 0.77 + 1.06*math.Pow(t/h, 0.5))
}

// CouplingPerM implements CapModel: sidewall plate t/s plus constant fringe.
func (PlateFringe) CouplingPerM(eps, w, t, s, h float64) float64 {
	_ = w
	return eps * (t/s + 0.6)
}

// WireRC is the per-unit-length extraction result for one wire.
type WireRC struct {
	// RPerM is resistance per metre of wire length.
	RPerM float64
	// CgPerM is the total wire-to-planes (ground) capacitance per metre,
	// both planes summed.
	CgPerM float64
	// CcBelowPerM / CcAbovePerM are the coupling capacitances per metre
	// to the lower/upper neighbour track.
	CcBelowPerM float64
	CcAbovePerM float64
}

// CTotalPerM returns the total capacitance per metre. In the SRAM the bit
// line's neighbours are static power rails, so coupling counts fully
// toward the discharge load.
func (w WireRC) CTotalPerM() float64 {
	return w.CgPerM + w.CcBelowPerM + w.CcAbovePerM
}

// CouplingFraction returns Cc/(Cg+Cc), a useful calibration diagnostic.
func (w WireRC) CouplingFraction() float64 {
	c := w.CTotalPerM()
	if c == 0 {
		return 0
	}
	return (w.CcBelowPerM + w.CcAbovePerM) / c
}

// ResistancePerM returns the per-unit-length resistance of a wire of drawn
// width w on metal layer m: trapezoidal cross-section (etch taper), minus
// the bottom and sidewall barrier liners, at the layer's effective
// resistivity.
func ResistancePerM(m tech.MetalLayer, w float64) float64 {
	taper := m.TaperDeg * math.Pi / 180
	tz := geom.Trapezoid{
		WTop: w,
		WBot: w - 2*m.Thickness*math.Tan(taper),
		T:    m.Thickness,
	}
	// Bottom barrier eats conducting height; side barrier eats width.
	cu := geom.Trapezoid{
		WTop: tz.WTop - 2*m.BarrierSide,
		WBot: tz.WBot - 2*m.BarrierSide,
		T:    tz.T - m.BarrierBottom,
	}
	a := cu.Area()
	if a <= 0 {
		return math.Inf(1)
	}
	return m.Rho / a
}

// ExtractWire computes the per-unit-length RC of wire i in window w on
// process p using capacitance model cm. Edge wires (no neighbour on one
// side) get zero coupling on that side.
func ExtractWire(p tech.Process, w litho.Window, i int, cm CapModel) WireRC {
	wire := w.Wires[i]
	width := wire.Width()
	m := p.M1
	m.Thickness += w.DThk // etch/CMP extension; zero in the paper's experiments
	d := p.Diel
	eps := d.Eps()
	out := WireRC{
		RPerM: ResistancePerM(m, width),
		CgPerM: cm.GroundPerM(eps, width, m.Thickness, d.HBelow) +
			cm.GroundPerM(eps, width, m.Thickness, d.HAbove),
	}
	hAvg := (d.HBelow + d.HAbove) / 2
	if i > 0 {
		s := wire.Span.Gap(w.Wires[i-1].Span)
		out.CcBelowPerM = cm.CouplingPerM(eps, width, m.Thickness, s, hAvg)
	}
	if i < len(w.Wires)-1 {
		s := wire.Span.Gap(w.Wires[i+1].Span)
		out.CcAbovePerM = cm.CouplingPerM(eps, width, m.Thickness, s, hAvg)
	}
	return out
}

// ExtractVictim extracts the bit line of the window.
func ExtractVictim(p tech.Process, w litho.Window, cm CapModel) WireRC {
	return ExtractWire(p, w, w.Victim, cm)
}

// CellRC is the bit-line parasitic contribution of one SRAM cell: the
// per-unit-length victim extraction times the cell pitch along the line.
type CellRC struct {
	Rbl float64 // ohms per cell
	Cbl float64 // farads per cell (ground + both couplings)
}

// PerCell rolls a per-unit-length extraction up to one-cell granularity.
func PerCell(p tech.Process, w WireRC) CellRC {
	l := p.Cell.XPitch
	return CellRC{Rbl: w.RPerM * l, Cbl: w.CTotalPerM() * l}
}

// Ratios are the paper's variability multipliers: actual over nominal.
type Ratios struct {
	Rvar float64 // Rbl(sample)/Rbl(nominal)
	Cvar float64 // Cbl(sample)/Cbl(nominal)
	// RvssVar is the resistance ratio of the adjacent VSS rail — the
	// quantity whose anti-correlation with Rvar the paper blames for the
	// SADP formula/simulation divergence at large arrays.
	RvssVar float64
}

// VarRatios realizes the nominal and sampled geometries for option o and
// returns the variability ratios of the victim bit line (and the below-
// victim VSS rail).
func VarRatios(p tech.Process, o litho.Option, s litho.Sample, cm CapModel) (Ratios, error) {
	nomWin, err := litho.Realize(p, o, litho.Nominal)
	if err != nil {
		return Ratios{}, fmt.Errorf("nominal geometry: %w", err)
	}
	win, err := litho.Realize(p, o, s)
	if err != nil {
		return Ratios{}, err
	}
	nom := ExtractVictim(p, nomWin, cm)
	act := ExtractVictim(p, win, cm)
	nomVss := ExtractWire(p, nomWin, nomWin.Victim-1, cm)
	actVss := ExtractWire(p, win, win.Victim-1, cm)
	return Ratios{
		Rvar:    act.RPerM / nom.RPerM,
		Cvar:    act.CTotalPerM() / nom.CTotalPerM(),
		RvssVar: actVss.RPerM / nomVss.RPerM,
	}, nil
}

// WorstCaseResult describes the corner that maximizes the bit-line
// capacitance for one patterning option (the paper's Table I criterion).
type WorstCaseResult struct {
	Option litho.Option
	Corner litho.Corner
	Sample litho.Sample
	Ratios Ratios
	Window litho.Window
}

// CvarPct returns the capacitance impact in percent (paper convention).
func (r WorstCaseResult) CvarPct() float64 { return (r.Ratios.Cvar - 1) * 100 }

// RvarPct returns the resistance impact in percent.
func (r WorstCaseResult) RvarPct() float64 { return (r.Ratios.Rvar - 1) * 100 }

// WorstCase exhaustively searches all ±3σ corners of option o and returns
// the one with maximum Cbl increase. Corners whose geometry collapses
// (merged or vanished lines) are skipped: they are yield, not variability.
func WorstCase(p tech.Process, o litho.Option, cm CapModel) (WorstCaseResult, error) {
	best := WorstCaseResult{Option: o}
	found := false
	for _, c := range litho.Corners(p, o) {
		s := litho.CornerSample(p, o, c)
		r, err := VarRatios(p, o, s, cm)
		if err != nil {
			continue
		}
		if !found || r.Cvar > best.Ratios.Cvar {
			win, _ := litho.Realize(p, o, s)
			best = WorstCaseResult{Option: o, Corner: c, Sample: s, Ratios: r, Window: win}
			found = true
		}
	}
	if !found {
		return best, fmt.Errorf("option %v: every corner produced invalid geometry", o)
	}
	return best, nil
}
