package extract

import (
	"math"
	"testing"
	"testing/quick"

	"mpsram/internal/litho"
	"mpsram/internal/tech"
	"mpsram/internal/units"
)

func TestResistancePerMRectangle(t *testing.T) {
	m := tech.MetalLayer{Thickness: 36e-9, Rho: 3.2e-8}
	// No taper, no barrier: R/L = rho/(w*t).
	w := 26e-9
	want := 3.2e-8 / (w * 36e-9)
	if got := ResistancePerM(m, w); !units.ApproxEqual(got, want, 1e-12, 0) {
		t.Fatalf("R/m = %g, want %g", got, want)
	}
}

func TestResistanceBarrierAndTaper(t *testing.T) {
	m := tech.MetalLayer{Thickness: 36e-9, Rho: 3.2e-8, BarrierBottom: 2e-9}
	w := 26e-9
	want := 3.2e-8 / (w * 34e-9)
	if got := ResistancePerM(m, w); !units.ApproxEqual(got, want, 1e-12, 0) {
		t.Fatalf("bottom barrier: R/m = %g, want %g", got, want)
	}
	// Taper narrows the bottom: resistance must increase.
	mt := m
	mt.TaperDeg = 4
	if ResistancePerM(mt, w) <= ResistancePerM(m, w) {
		t.Fatal("taper must increase resistance")
	}
	// Side barrier increases resistance further.
	ms := m
	ms.BarrierSide = 1.5e-9
	if ResistancePerM(ms, w) <= ResistancePerM(m, w) {
		t.Fatal("side barrier must increase resistance")
	}
	// Collapsed conductor → infinite resistance, not a panic.
	if !math.IsInf(ResistancePerM(m, 0), 1) {
		t.Fatal("zero-width wire must have infinite resistance")
	}
}

func TestResistanceRatioTracksDrawnCD(t *testing.T) {
	// The N10 preset is calibrated so ΔR for +3 nm CD is the pure width
	// ratio 26/29 (paper Table I: −10.36 %).
	m := tech.N10().M1
	r0 := ResistancePerM(m, m.Width)
	r1 := ResistancePerM(m, m.Width+3e-9)
	got := r1/r0 - 1
	want := m.Width/(m.Width+3e-9) - 1
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("ΔR = %.4f, want %.4f", got, want)
	}
	if math.Abs(got - -0.1034) > 0.001 {
		t.Fatalf("ΔR = %.4f, want ≈ −10.34 %%", got)
	}
}

func TestCapModelsPositiveAndMonotone(t *testing.T) {
	eps := 2.7 * units.Eps0
	for _, cm := range []CapModel{SakuraiTamaru{}, PlateFringe{}} {
		if cm.Name() == "" {
			t.Fatal("model must have a name")
		}
		cg := cm.GroundPerM(eps, 26e-9, 36e-9, 60e-9)
		if cg <= 0 {
			t.Fatalf("%s: non-positive ground cap", cm.Name())
		}
		// Wider wire → more ground cap.
		if cm.GroundPerM(eps, 30e-9, 36e-9, 60e-9) <= cg {
			t.Fatalf("%s: ground cap not monotone in width", cm.Name())
		}
		// Smaller spacing → more coupling.
		c22 := cm.CouplingPerM(eps, 26e-9, 36e-9, 22e-9, 60e-9)
		c11 := cm.CouplingPerM(eps, 26e-9, 36e-9, 11e-9, 60e-9)
		if !(c11 > c22 && c22 > 0) {
			t.Fatalf("%s: coupling not monotone in spacing: %g vs %g", cm.Name(), c11, c22)
		}
	}
}

func TestCouplingMonotoneProperty(t *testing.T) {
	eps := 2.7 * units.Eps0
	cm := SakuraiTamaru{}
	f := func(a, b float64) bool {
		s1 := 5e-9 + math.Mod(math.Abs(a), 40e-9)
		s2 := 5e-9 + math.Mod(math.Abs(b), 40e-9)
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		c1 := cm.CouplingPerM(eps, 26e-9, 36e-9, s1, 60e-9)
		c2 := cm.CouplingPerM(eps, 26e-9, 36e-9, s2, 60e-9)
		return c1 >= c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestExtractVictimSymmetry(t *testing.T) {
	p := tech.N10()
	w, err := litho.Realize(p, litho.EUV, litho.Nominal)
	if err != nil {
		t.Fatal(err)
	}
	rc := ExtractVictim(p, w, SakuraiTamaru{})
	if math.Abs(rc.CcBelowPerM-rc.CcAbovePerM) > 1e-18 {
		t.Fatalf("symmetric geometry, asymmetric coupling: %g vs %g",
			rc.CcBelowPerM, rc.CcAbovePerM)
	}
	if rc.CouplingFraction() <= 0.2 || rc.CouplingFraction() >= 0.6 {
		t.Fatalf("coupling fraction %.3f outside the calibrated band", rc.CouplingFraction())
	}
	var zero WireRC
	if zero.CouplingFraction() != 0 {
		t.Fatal("zero WireRC must have zero coupling fraction")
	}
}

func TestEdgeWireHasOneCoupling(t *testing.T) {
	p := tech.N10()
	w, _ := litho.Realize(p, litho.EUV, litho.Nominal)
	first := ExtractWire(p, w, 0, SakuraiTamaru{})
	if first.CcBelowPerM != 0 || first.CcAbovePerM == 0 {
		t.Fatalf("edge wire couplings: %g / %g", first.CcBelowPerM, first.CcAbovePerM)
	}
	last := ExtractWire(p, w, len(w.Wires)-1, SakuraiTamaru{})
	if last.CcAbovePerM != 0 || last.CcBelowPerM == 0 {
		t.Fatalf("edge wire couplings: %g / %g", last.CcBelowPerM, last.CcAbovePerM)
	}
}

func TestPerCellRollup(t *testing.T) {
	p := tech.N10()
	w, _ := litho.Realize(p, litho.EUV, litho.Nominal)
	rc := ExtractVictim(p, w, SakuraiTamaru{})
	cell := PerCell(p, rc)
	if !units.ApproxEqual(cell.Rbl, rc.RPerM*p.Cell.XPitch, 1e-12, 0) {
		t.Fatalf("Rbl rollup: %g", cell.Rbl)
	}
	if !units.ApproxEqual(cell.Cbl, rc.CTotalPerM()*p.Cell.XPitch, 1e-12, 0) {
		t.Fatalf("Cbl rollup: %g", cell.Cbl)
	}
	// Calibration band: a few ohms and a few tens of attofarads per cell.
	if cell.Rbl < 1 || cell.Rbl > 20 {
		t.Fatalf("per-cell Rbl %.3g Ω outside sanity band", cell.Rbl)
	}
	if cell.Cbl < 5e-18 || cell.Cbl > 100e-18 {
		t.Fatalf("per-cell Cbl %.3g F outside sanity band", cell.Cbl)
	}
}

func TestVarRatiosNominalIsUnity(t *testing.T) {
	p := tech.N10()
	for _, o := range litho.Options {
		r, err := VarRatios(p, o, litho.Nominal, SakuraiTamaru{})
		if err != nil {
			t.Fatalf("%v: %v", o, err)
		}
		if math.Abs(r.Rvar-1) > 1e-12 || math.Abs(r.Cvar-1) > 1e-12 || math.Abs(r.RvssVar-1) > 1e-12 {
			t.Fatalf("%v: nominal ratios %+v, want unity", o, r)
		}
	}
}

func TestVarRatiosErrorPropagation(t *testing.T) {
	p := tech.N10()
	if _, err := VarRatios(p, litho.LE3, litho.Sample{OLB: 30e-9}, SakuraiTamaru{}); err == nil {
		t.Fatal("collapsed geometry must error")
	}
}

// TestWorstCaseTableI is the Table I reproduction gate: worst-case corner
// per option with the paper's ordering and magnitude bands.
func TestWorstCaseTableI(t *testing.T) {
	p := tech.N10()
	cm := SakuraiTamaru{}
	res := map[litho.Option]WorstCaseResult{}
	for _, o := range litho.Options {
		wc, err := WorstCase(p, o, cm)
		if err != nil {
			t.Fatalf("%v: %v", o, err)
		}
		res[o] = wc
	}
	le3, sadp, euv := res[litho.LE3], res[litho.SADP], res[litho.EUV]

	// Ordering: LE3 ≫ EUV > SADP on ΔCbl (paper: 61.56 / 6.65 / 4.01).
	if !(le3.CvarPct() > 3*euv.CvarPct()) {
		t.Errorf("LE3 ΔCbl %.2f%% not ≫ EUV %.2f%%", le3.CvarPct(), euv.CvarPct())
	}
	if !(euv.CvarPct() > sadp.CvarPct()) {
		t.Errorf("EUV ΔCbl %.2f%% not > SADP %.2f%%", euv.CvarPct(), sadp.CvarPct())
	}
	// Magnitude bands.
	if le3.CvarPct() < 35 || le3.CvarPct() > 90 {
		t.Errorf("LE3 ΔCbl %.2f%% outside tens-of-percent band", le3.CvarPct())
	}
	if sadp.CvarPct() <= 0 || sadp.CvarPct() > 10 {
		t.Errorf("SADP ΔCbl %.2f%% outside single-digit band", sadp.CvarPct())
	}
	if euv.CvarPct() <= 0 || euv.CvarPct() > 12 {
		t.Errorf("EUV ΔCbl %.2f%% outside band", euv.CvarPct())
	}
	// Resistance: LE3 and EUV land on the calibrated −10.34 %; SADP is
	// the most negative (paper −18.19 %).
	if math.Abs(le3.RvarPct() - -10.34) > 0.5 || math.Abs(euv.RvarPct() - -10.34) > 0.5 {
		t.Errorf("LE3/EUV ΔRbl %.2f/%.2f %%, want ≈ −10.34 %%", le3.RvarPct(), euv.RvarPct())
	}
	if sadp.RvarPct() > -15 || sadp.RvarPct() < -25 {
		t.Errorf("SADP ΔRbl %.2f%%, want ≈ −18.75 %%", sadp.RvarPct())
	}
	// SADP anti-correlation: VSS rail resistance rises while Rbl falls.
	if sadp.Ratios.RvssVar <= 1 {
		t.Errorf("SADP RVSS ratio %.3f, want > 1 (anti-correlated)", sadp.Ratios.RvssVar)
	}
	// The LE3 worst corner must be the paper's: all CDs +3σ, overlays
	// pulling both neighbours toward the victim.
	s := le3.Sample
	if s.CDA <= 0 || s.CDB <= 0 || s.CDC <= 0 {
		t.Errorf("LE3 worst corner CDs not all +3σ: %+v", s)
	}
	if !(s.OLB > 0 && s.OLC < 0) {
		t.Errorf("LE3 worst corner overlays not both toward victim: %+v", s)
	}
	// SADP worst corner: core −3σ, spacer −3σ (paper Table I).
	if !(sadp.Sample.CDCore < 0 && sadp.Sample.CDSpacer < 0) {
		t.Errorf("SADP worst corner: %+v", sadp.Sample)
	}
}

func TestWorstCaseOverlayBudgetSensitivity(t *testing.T) {
	// Tighter overlay must strictly reduce the LE3 worst-case ΔCbl, and
	// monotonically so over the paper's 3–8 nm sweep.
	cm := SakuraiTamaru{}
	prev := math.Inf(1)
	for _, ol := range []float64{8e-9, 7e-9, 5e-9, 3e-9} {
		wc, err := WorstCase(tech.N10().WithOL(ol), litho.LE3, cm)
		if err != nil {
			t.Fatal(err)
		}
		if wc.CvarPct() >= prev {
			t.Fatalf("ΔCbl not decreasing with OL budget: %.2f at %gnm", wc.CvarPct(), ol*1e9)
		}
		prev = wc.CvarPct()
	}
}

func TestWorstCaseInvalidGeometrySkipped(t *testing.T) {
	// With an absurd overlay budget most LE3 corners merge wires; the
	// search must still return the best *valid* corner.
	p := tech.N10().WithOL(21e-9)
	wc, err := WorstCase(p, litho.LE3, SakuraiTamaru{})
	if err != nil {
		t.Fatal(err)
	}
	if wc.Ratios.Cvar <= 1 {
		t.Fatalf("worst case should still increase Cbl: %+v", wc.Ratios)
	}
}

func TestLE2ExtensionWorstCaseBetweenEUVAndLE3(t *testing.T) {
	// The LE2 extension: same-mask neighbours make overlay partially
	// self-cancelling, so its worst case must land well below LE3's but
	// at or above EUV's (the CD mechanism is shared).
	p := tech.N10()
	cm := SakuraiTamaru{}
	le2, err := WorstCase(p, litho.LE2, cm)
	if err != nil {
		t.Fatal(err)
	}
	le3, _ := WorstCase(p, litho.LE3, cm)
	euv, _ := WorstCase(p, litho.EUV, cm)
	if !(le2.CvarPct() < 0.7*le3.CvarPct()) {
		t.Fatalf("LE2 ΔCbl %.2f%% not well below LE3 %.2f%%", le2.CvarPct(), le3.CvarPct())
	}
	if !(le2.CvarPct() >= euv.CvarPct()-0.5) {
		t.Fatalf("LE2 ΔCbl %.2f%% below EUV %.2f%%", le2.CvarPct(), euv.CvarPct())
	}
}

func TestThicknessExtensionSensitivities(t *testing.T) {
	// Thicker metal: lower resistance (bigger cross-section), higher
	// capacitance (taller sidewalls couple more).
	p := tech.N10()
	r, err := VarRatios(p, litho.EUV, litho.Sample{DThk: 2e-9}, SakuraiTamaru{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Rvar >= 1 {
		t.Fatalf("thicker metal must lower R: Rvar=%g", r.Rvar)
	}
	if r.Cvar <= 1 {
		t.Fatalf("thicker metal must raise C: Cvar=%g", r.Cvar)
	}
	// Expected R scaling: conducting height (t−barrier) ratio.
	m := p.M1
	want := (m.Thickness - m.BarrierBottom) / (m.Thickness + 2e-9 - m.BarrierBottom)
	if math.Abs(r.Rvar-want) > 1e-9 {
		t.Fatalf("Rvar %g, want %g", r.Rvar, want)
	}
}

func TestThicknessWidensMCDistribution(t *testing.T) {
	// With the etch/CMP source enabled, the worst-case search over the
	// extra corner axis must find at least as bad a Cbl corner.
	p := tech.N10()
	base, err := WorstCase(p, litho.EUV, SakuraiTamaru{})
	if err != nil {
		t.Fatal(err)
	}
	p.Var.Thk3Sigma = 2e-9
	ext, err := WorstCase(p, litho.EUV, SakuraiTamaru{})
	if err != nil {
		t.Fatal(err)
	}
	if ext.Ratios.Cvar < base.Ratios.Cvar {
		t.Fatalf("extension lost the base worst case: %g vs %g",
			ext.Ratios.Cvar, base.Ratios.Cvar)
	}
	if ext.Sample.DThk <= 0 {
		t.Fatalf("worst Cbl corner should use +3σ thickness: %+v", ext.Sample)
	}
}
