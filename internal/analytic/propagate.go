// First-order variance propagation: the deterministic fast path to the
// paper's Table IV. Instead of Monte-Carlo sampling, linearize tdp around
// the nominal point — σ²(tdp) ≈ Σ (∂tdp/∂xᵢ)²·σᵢ² over the independent
// process parameters — and compare with the sampled σ. For the nearly
// linear SADP/EUV responses the two agree tightly; for LE3 at large
// overlay budgets the (s/h)^−1.34 coupling nonlinearity makes the sampled
// σ exceed the linearized one, which is itself a useful diagnostic of the
// distribution's skew.
package analytic

import (
	"fmt"
	"math"

	"mpsram/internal/extract"
	"mpsram/internal/litho"
	"mpsram/internal/tech"
)

// Sensitivity is one parameter's contribution to the tdp variance.
type Sensitivity struct {
	Param string
	Sigma float64 // 1σ amplitude, metres
	// DTdpDSigma is ∂tdp/∂xᵢ · σᵢ: the tdp shift (percentage points) per
	// 1σ move of the parameter.
	DTdpDSigma float64
}

// Propagation is the linearized tdp distribution estimate.
type Propagation struct {
	Option        litho.Option
	N             int
	Sensitivities []Sensitivity
	// SigmaPP is the root-sum-square tdp standard deviation in
	// percentage points.
	SigmaPP float64
}

// PropagateTdp linearizes tdp(n) around the nominal point for option o by
// central finite differences of ±0.5σ per parameter.
func PropagateTdp(p tech.Process, o litho.Option, m Params, cm extract.CapModel, n int) (Propagation, error) {
	if err := m.Validate(); err != nil {
		return Propagation{}, err
	}
	params := litho.Params(p, o)
	if len(params) == 0 {
		return Propagation{}, fmt.Errorf("analytic: option %v has no variation parameters", o)
	}
	out := Propagation{Option: o, N: n}
	var variance float64
	for _, prm := range params {
		tdpAt := func(mult float64) (float64, error) {
			var s litho.Sample
			prm.Apply(&s, mult*prm.Sigma)
			r, err := extract.VarRatios(p, o, s, cm)
			if err != nil {
				return 0, err
			}
			return m.TdpPct(n, r.Rvar, r.Cvar), nil
		}
		up, err := tdpAt(+0.5)
		if err != nil {
			return Propagation{}, fmt.Errorf("analytic: propagate %s: %w", prm.Name, err)
		}
		dn, err := tdpAt(-0.5)
		if err != nil {
			return Propagation{}, fmt.Errorf("analytic: propagate %s: %w", prm.Name, err)
		}
		perSigma := up - dn // central difference over a full σ
		out.Sensitivities = append(out.Sensitivities, Sensitivity{
			Param:      prm.Name,
			Sigma:      prm.Sigma,
			DTdpDSigma: perSigma,
		})
		variance += perSigma * perSigma
	}
	out.SigmaPP = math.Sqrt(variance)
	return out, nil
}
