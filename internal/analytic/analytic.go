// Package analytic implements the paper's primary contribution: the
// closed-form estimate of the SRAM read time td and its variability
// penalty tdp from the bit-line RC variation and the array size
// (Section III, eq. (1)–(5)).
//
// The model treats the bit line as a lumped RC discharged through the
// front-end path:
//
//	td = a · (n·Rbl·Rvar + RFE) · (n·(Cbl·Cvar + CFE) + Cpre(n))     (4)
//
// with a = −ln(1 − x) the discharge constant for a relative discharge
// level x (eq. (3): a ≈ 0.105 at the paper's 10 % level), n the number of
// cells on the line, Rbl/Cbl the per-cell bit-line parasitics, Rvar/Cvar
// the patterning-induced variation ratios, RFE/CFE the front-end
// resistance and loading, and Cpre(n) the size-scaled precharge
// capacitance. tdp is the ratio td/tdnom − 1.
//
// Expanding (4) in n gives the second-degree polynomial of eq. (5); the
// mixed Rvar·Cvar product in the n² coefficient is what drives tdp
// negative for large arrays when Rvar < 1 (the paper's EUV case), and the
// missing RVSS anti-correlation is why the formula underestimates SADP at
// n > 64 (paper Table III).
//
// The package also provides the Elmore-delay refinement the paper points
// to as the better approximation for the distributed line.
package analytic

import (
	"fmt"
	"math"

	"mpsram/internal/device"
	"mpsram/internal/tech"
)

// Params carries the formula inputs of eq. (4).
type Params struct {
	A   float64 // discharge constant (eq. 3)
	Rbl float64 // per-cell bit-line resistance, Ω
	Cbl float64 // per-cell bit-line wire capacitance, F
	RFE float64 // front-end (pass-gate + pull-down) discharge resistance, Ω
	CFE float64 // per-cell front-end loading on the bit line, F
	// CPre returns the precharge-side capacitance for array size n.
	CPre func(n int) float64
}

// DischargeConstant returns a = −ln(1−x) for a relative discharge level x
// (paper eq. (3): x = 0.1 ⇒ a ≈ 0.105).
func DischargeConstant(level float64) float64 {
	return -math.Log(1 - level)
}

// Derive builds the formula parameters from the technology description and
// the extracted per-cell bit-line parasitics. RFE is the series on
// resistance of the pass-gate and pull-down devices at full drive; CFE is
// the off pass-gate junction loading; the discharge level is the
// sense-amplifier sensitivity relative to the precharge voltage.
func Derive(p tech.Process, cellRbl, cellCbl float64) (Params, error) {
	if cellRbl <= 0 || cellCbl <= 0 {
		return Params{}, fmt.Errorf("analytic: non-positive cell parasitics R=%g C=%g", cellRbl, cellCbl)
	}
	f := p.FEOL
	nmos := device.NewNMOS(f)
	rfe := nmos.Ron(f.WPassGate, f.Vdd) + nmos.Ron(f.WPullDown, f.Vdd)
	level := f.SenseDeltaV / f.Vdd
	if level <= 0 || level >= 1 {
		return Params{}, fmt.Errorf("analytic: discharge level %g outside (0,1)", level)
	}
	return Params{
		A:    DischargeConstant(level),
		Rbl:  cellRbl,
		Cbl:  cellCbl,
		RFE:  rfe,
		CFE:  f.WPassGate * f.CJPerM,
		CPre: func(n int) float64 { return f.CPre(n) },
	}, nil
}

// Td evaluates eq. (4) for array size n and variation ratios rvar, cvar.
func (m Params) Td(n int, rvar, cvar float64) float64 {
	nn := float64(n)
	r := nn*m.Rbl*rvar + m.RFE
	c := nn*(m.Cbl*cvar+m.CFE) + m.CPre(n)
	return m.A * r * c
}

// TdNom is eq. (4) at unity variation.
func (m Params) TdNom(n int) float64 { return m.Td(n, 1, 1) }

// TdpPct returns the read-time penalty in percent: (td/tdnom − 1)·100.
func (m Params) TdpPct(n int, rvar, cvar float64) float64 {
	return (m.Td(n, rvar, cvar)/m.TdNom(n) - 1) * 100
}

// PolyCoeffs returns the eq. (5) polynomial coefficients (c2, c1, c0) such
// that td = c2·n² + c1·n + c0 at the given variation ratios (with the
// n-dependence of Cpre frozen at the supplied n, as in the paper's
// "almost-linear / almost-constant" reading).
func (m Params) PolyCoeffs(n int, rvar, cvar float64) (c2, c1, c0 float64) {
	cpre := m.CPre(n)
	ceff := m.Cbl*cvar + m.CFE
	c2 = m.A * m.Rbl * rvar * ceff
	c1 = m.A * (m.RFE*ceff + m.Rbl*rvar*cpre)
	c0 = m.A * m.RFE * cpre
	return c2, c1, c0
}

// TdElmore is the distributed-line refinement the paper names (Section
// III-A): the Elmore delay from the cell at the far end through the
// uniform RC ladder to the sense node, with the front-end resistance in
// series with the whole line charge and the wire resistance seeing the
// downstream capacitance:
//
//	τ = RFE·(n·C + Cpre) + n·Rbl·(n·C/2 + Cpre)
//
// scaled by the same discharge constant.
func (m Params) TdElmore(n int, rvar, cvar float64) float64 {
	nn := float64(n)
	ctot := nn * (m.Cbl*cvar + m.CFE)
	cpre := m.CPre(n)
	tau := m.RFE*(ctot+cpre) + nn*m.Rbl*rvar*(ctot/2+cpre)
	return m.A * tau
}

// TdpElmorePct is the Elmore-based penalty in percent.
func (m Params) TdpElmorePct(n int, rvar, cvar float64) float64 {
	return (m.TdElmore(n, rvar, cvar)/m.TdElmore(n, 1, 1) - 1) * 100
}

// AsymptoticTdpPct returns the n→∞ limit of the penalty — the quantity
// that explains the paper's sign flips at large arrays. In the limit the
// n² term dominates the resistance factor while the capacitance per cell
// includes the variation-free CFE and the per-cell slope of Cpre(n):
// lim tdp = Rvar·(Cbl·Cvar + CFE + c′pre)/(Cbl + CFE + c′pre) − 1 (·100).
func (m Params) AsymptoticTdpPct(rvar, cvar float64) float64 {
	// Per-cell precharge slope estimated over a wide span; exact for the
	// affine Cpre(n) scaling the N10 preset uses.
	slope := (m.CPre(1<<20) - m.CPre(1<<10)) / float64(1<<20-1<<10)
	num := rvar * (m.Cbl*cvar + m.CFE + slope)
	den := m.Cbl + m.CFE + slope
	return (num/den - 1) * 100
}

// Validate sanity-checks the parameter set.
func (m Params) Validate() error {
	if m.A <= 0 || m.Rbl <= 0 || m.Cbl <= 0 || m.RFE <= 0 || m.CFE < 0 {
		return fmt.Errorf("analytic: non-physical parameters %+v", m)
	}
	if m.CPre == nil {
		return fmt.Errorf("analytic: missing CPre scaling")
	}
	if m.CPre(16) < 0 || m.CPre(1024) < m.CPre(16) {
		return fmt.Errorf("analytic: CPre must be non-negative and non-decreasing")
	}
	return nil
}
