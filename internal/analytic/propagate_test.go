package analytic_test

import (
	"math"
	"testing"

	"mpsram/internal/analytic"
	"mpsram/internal/extract"
	"mpsram/internal/litho"
	"mpsram/internal/mc"
	"mpsram/internal/tech"
)

func TestPropagateMatchesMonteCarloForLinearOptions(t *testing.T) {
	// SADP and EUV respond almost linearly over ±3σ, so the linearized
	// σ must track the sampled σ within ~15 %.
	p := tech.N10()
	m := deriveModel(t)
	cm := extract.SakuraiTamaru{}
	for _, o := range []litho.Option{litho.SADP, litho.EUV} {
		prop, err := analytic.PropagateTdp(p, o, m, cm, 64)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mc.TdpDistribution(p, o, m, cm, 64, mc.Config{Samples: 8000, Seed: 21})
		if err != nil {
			t.Fatal(err)
		}
		ratio := prop.SigmaPP / res.Summary.Std
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("%v: linearized σ %.3f vs MC σ %.3f (ratio %.2f)",
				o, prop.SigmaPP, res.Summary.Std, ratio)
		}
	}
}

func TestPropagateLE3NonlinearityShowsInTail(t *testing.T) {
	// LE3 at 8 nm overlay: the coupling law is convex in the overlay
	// shift, so the sampled distribution is right-skewed and its σ
	// exceeds the linearized estimate.
	p := tech.N10() // 8 nm preset
	m := deriveModel(t)
	cm := extract.SakuraiTamaru{}
	prop, err := analytic.PropagateTdp(p, litho.LE3, m, cm, 64)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mc.TdpDistribution(p, litho.LE3, m, cm, 64, mc.Config{Samples: 8000, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Summary.Std > prop.SigmaPP) {
		t.Errorf("sampled σ %.3f not above linearized %.3f under convex coupling",
			res.Summary.Std, prop.SigmaPP)
	}
	if res.Summary.Skew <= 0 {
		t.Errorf("LE3 skew %.3f, want positive", res.Summary.Skew)
	}
	// Still the same order of magnitude.
	if res.Summary.Std > 2*prop.SigmaPP {
		t.Errorf("linearization off by more than 2x: %.3f vs %.3f",
			prop.SigmaPP, res.Summary.Std)
	}
}

func TestPropagateSensitivityBreakdown(t *testing.T) {
	// For LE3 at the 8 nm budget, overlay dominates the variance — the
	// paper's central claim ("the OL error plays a decisive role").
	p := tech.N10()
	m := deriveModel(t)
	prop, err := analytic.PropagateTdp(p, litho.LE3, m, extract.SakuraiTamaru{}, 64)
	if err != nil {
		t.Fatal(err)
	}
	contrib := map[string]float64{}
	for _, s := range prop.Sensitivities {
		contrib[s.Param] = s.DTdpDSigma * s.DTdpDSigma
	}
	olVar := contrib["OL_B"] + contrib["OL_C"]
	cdVar := contrib["CD_A"] + contrib["CD_B"] + contrib["CD_C"]
	if olVar <= cdVar {
		t.Errorf("overlay variance %.4f not dominating CD variance %.4f at 8nm", olVar, cdVar)
	}
	// At a 3 nm budget CD and OL become comparable (within 4x).
	prop3, err := analytic.PropagateTdp(p.WithOL(3e-9), litho.LE3, m, extract.SakuraiTamaru{}, 64)
	if err != nil {
		t.Fatal(err)
	}
	contrib3 := map[string]float64{}
	for _, s := range prop3.Sensitivities {
		contrib3[s.Param] = s.DTdpDSigma * s.DTdpDSigma
	}
	ol3 := contrib3["OL_B"] + contrib3["OL_C"]
	cd3 := contrib3["CD_A"] + contrib3["CD_B"] + contrib3["CD_C"]
	if ol3 > 4*cd3 {
		t.Errorf("at 3nm OL should no longer dwarf CD: %.4f vs %.4f", ol3, cd3)
	}
}

func TestPropagateErrors(t *testing.T) {
	p := tech.N10()
	m := deriveModel(t)
	if _, err := analytic.PropagateTdp(p, litho.Option(42), m, extract.SakuraiTamaru{}, 64); err == nil {
		t.Fatal("unknown option accepted")
	}
	bad := m
	bad.CPre = nil
	if _, err := analytic.PropagateTdp(p, litho.EUV, bad, extract.SakuraiTamaru{}, 64); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestPropagateSigmaNonNegative(t *testing.T) {
	p := tech.N10()
	m := deriveModel(t)
	for _, o := range litho.AllOptions {
		prop, err := analytic.PropagateTdp(p, o, m, extract.SakuraiTamaru{}, 256)
		if err != nil {
			t.Fatal(err)
		}
		if prop.SigmaPP <= 0 || math.IsNaN(prop.SigmaPP) {
			t.Fatalf("%v: sigma %g", o, prop.SigmaPP)
		}
	}
}

// deriveModel mirrors the internal test helper for the external package.
func deriveModel(t *testing.T) analytic.Params {
	t.Helper()
	p := tech.N10()
	win, err := litho.Realize(p, litho.EUV, litho.Nominal)
	if err != nil {
		t.Fatal(err)
	}
	cell := extract.PerCell(p, extract.ExtractVictim(p, win, extract.SakuraiTamaru{}))
	m, err := analytic.Derive(p, cell.Rbl, cell.Cbl)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
