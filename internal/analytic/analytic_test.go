package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"mpsram/internal/extract"
	"mpsram/internal/litho"
	"mpsram/internal/tech"
)

func derive(t *testing.T) Params {
	t.Helper()
	p := tech.N10()
	win, err := litho.Realize(p, litho.EUV, litho.Nominal)
	if err != nil {
		t.Fatal(err)
	}
	cell := extract.PerCell(p, extract.ExtractVictim(p, win, extract.SakuraiTamaru{}))
	m, err := Derive(p, cell.Rbl, cell.Cbl)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDischargeConstantPaperValue(t *testing.T) {
	// Paper eq. (3): 10 % discharge ⇒ a ≈ 0.105.
	a := DischargeConstant(0.1)
	if math.Abs(a-0.10536) > 1e-4 {
		t.Fatalf("a = %g, want ≈ 0.10536", a)
	}
	// 63.2 % charge level ⇒ a = 1 (paper's example).
	if math.Abs(DischargeConstant(1-math.Exp(-1))-1) > 1e-12 {
		t.Fatal("a at 1−1/e must be 1")
	}
}

func TestDeriveErrors(t *testing.T) {
	p := tech.N10()
	if _, err := Derive(p, -1, 1e-17); err == nil {
		t.Fatal("negative Rbl must error")
	}
	bad := p
	bad.FEOL.SenseDeltaV = 0.7 // level = 1
	if _, err := Derive(bad, 1, 1e-17); err == nil {
		t.Fatal("discharge level 1 must error")
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	m := derive(t)
	bad := m
	bad.A = 0
	if bad.Validate() == nil {
		t.Fatal("A=0 accepted")
	}
	bad = m
	bad.CPre = nil
	if bad.Validate() == nil {
		t.Fatal("nil CPre accepted")
	}
	bad = m
	bad.CPre = func(n int) float64 { return -1 }
	if bad.Validate() == nil {
		t.Fatal("negative CPre accepted")
	}
}

func TestTdNomGrowsSuperlinearly(t *testing.T) {
	m := derive(t)
	sizes := []int{16, 64, 256, 1024}
	var prev float64
	for i, n := range sizes {
		td := m.TdNom(n)
		if td <= 0 {
			t.Fatalf("tdnom(%d) = %g", n, td)
		}
		if i > 0 && td < 2*prev {
			t.Fatalf("tdnom not superlinear: %g after %g", td, prev)
		}
		prev = td
	}
	// Band: formula tdnom is picoseconds at n=16, tens of ps at n=1024.
	if m.TdNom(16) > 5e-12 || m.TdNom(1024) < 20e-12 {
		t.Fatalf("tdnom out of band: %g / %g", m.TdNom(16), m.TdNom(1024))
	}
}

func TestPolynomialFormMatchesEq4(t *testing.T) {
	// Eq. (5) is the exact expansion of eq. (4): c2·n² + c1·n + c0 must
	// reproduce Td for every n and ratio pair.
	m := derive(t)
	f := func(nRaw int, rvRaw, cvRaw float64) bool {
		n := 1 + (abs(nRaw) % 2048)
		rv := 0.5 + math.Mod(math.Abs(rvRaw), 1.0)
		cv := 0.5 + math.Mod(math.Abs(cvRaw), 1.0)
		c2, c1, c0 := m.PolyCoeffs(n, rv, cv)
		nn := float64(n)
		poly := c2*nn*nn + c1*nn + c0
		direct := m.Td(n, rv, cv)
		return math.Abs(poly-direct) <= 1e-12*direct
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestTdpUnityIsZeroProperty(t *testing.T) {
	m := derive(t)
	for _, n := range []int{1, 16, 64, 256, 1024, 4096} {
		if tdp := m.TdpPct(n, 1, 1); math.Abs(tdp) > 1e-9 {
			t.Fatalf("tdp at unity ratios = %g", tdp)
		}
		if tdp := m.TdpElmorePct(n, 1, 1); math.Abs(tdp) > 1e-9 {
			t.Fatalf("Elmore tdp at unity ratios = %g", tdp)
		}
	}
}

func TestTdpMonotoneInCvar(t *testing.T) {
	m := derive(t)
	f := func(aRaw, bRaw float64) bool {
		a := 0.8 + math.Mod(math.Abs(aRaw), 0.8)
		b := 0.8 + math.Mod(math.Abs(bRaw), 0.8)
		if a > b {
			a, b = b, a
		}
		return m.TdpPct(64, 1, a) <= m.TdpPct(64, 1, b)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEUVSignFlipAtLargeN(t *testing.T) {
	// The paper's EUV worst case: Rvar·Cvar < 1 ⇒ tdp goes negative for
	// large n while staying positive for small n.
	m := derive(t)
	rvar, cvar := 0.8964, 1.0928 // EUV worst-case ratios (Table I band)
	small := m.TdpPct(16, rvar, cvar)
	huge := m.TdpPct(100000, rvar, cvar)
	if small <= 0 {
		t.Fatalf("small-array EUV tdp = %g, want positive", small)
	}
	if huge >= 0 {
		t.Fatalf("asymptotic EUV tdp = %g, want negative", huge)
	}
	// The asymptote helper must agree with the large-n limit.
	asym := m.AsymptoticTdpPct(rvar, cvar)
	if math.Abs(asym-huge) > 0.5 {
		t.Fatalf("asymptote %g vs large-n %g", asym, huge)
	}
}

func TestSADPFormulaGoesNegativeAt1024(t *testing.T) {
	// Table III: the formula (no RVSS term) predicts negative SADP tdp at
	// n = 1024 — the divergence from simulation the paper highlights.
	m := derive(t)
	rvar, cvar := 0.8125, 1.0632 // SADP worst corner
	tdp1024 := m.TdpPct(1024, rvar, cvar)
	if tdp1024 >= 0 {
		t.Fatalf("formula SADP tdp(1024) = %g, want negative", tdp1024)
	}
	// And positive at n ≤ 64, where the paper says the formula is fine.
	if m.TdpPct(64, rvar, cvar) <= 0 {
		t.Fatal("formula SADP tdp(64) must be positive")
	}
}

func TestLE3TdpBand(t *testing.T) {
	// LE3 worst case lands in the paper's ~20 % band at n = 64 and the
	// tdp trend is non-monotonic in n (rise then fall — paper Fig. 4).
	m := derive(t)
	rvar, cvar := 0.8964, 1.5737
	tdp := map[int]float64{}
	for _, n := range []int{16, 64, 256, 1024} {
		tdp[n] = m.TdpPct(n, rvar, cvar)
	}
	if tdp[64] < 12 || tdp[64] > 35 {
		t.Fatalf("LE3 formula tdp(64) = %.2f%%, outside band", tdp[64])
	}
	if !(tdp[16] < tdp[64]) {
		t.Fatalf("LE3 tdp must rise from 16 to 64: %+v", tdp)
	}
	if !(tdp[1024] < tdp[256]) {
		t.Fatalf("LE3 tdp must fall toward 1024: %+v", tdp)
	}
}

func TestElmoreExceedsLumpedForLongLines(t *testing.T) {
	// The Elmore refinement adds the distributed wire term, so it must
	// exceed the lumped eq. (4) increasingly with n... both use the same
	// front-end term, so compare their ratio growth instead.
	m := derive(t)
	r64 := m.TdElmore(64, 1, 1) / m.TdNom(64)
	r1024 := m.TdElmore(1024, 1, 1) / m.TdNom(1024)
	if r1024 >= r64 {
		// Elmore halves the wire-C product; for RFE-dominated short
		// lines the two agree, for long lines Elmore is *smaller* on
		// the wire term. Either way the ratio must move away from 1.
		if math.Abs(r1024-1) < math.Abs(r64-1) {
			t.Fatalf("Elmore/lumped ratios: %g (64) vs %g (1024)", r64, r1024)
		}
	}
	if m.TdElmore(64, 1, 1) <= 0 {
		t.Fatal("Elmore td must be positive")
	}
}

func TestRFEDominatesSmallArrays(t *testing.T) {
	// The paper: "the FEOL resistance path doesn't scale with array
	// size" — at n=16 the front end dominates the wire.
	m := derive(t)
	if m.RFE < 16*m.Rbl*10 {
		t.Fatalf("RFE %g should dominate 16-cell wire R %g", m.RFE, 16*m.Rbl)
	}
}
