// Coordinator side of the shard fabric: a health-checked peer pool and
// the single-dispatch primitive the serve layer's retry policy drives.
package remote

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mpsram/internal/core"
	"mpsram/internal/mc"
)

// ErrNoLivePeers reports that no configured peer is currently live; the
// caller falls back to local execution rather than failing the shard.
var ErrNoLivePeers = errors.New("remote: no live peers")

const (
	// defaultDispatchTimeout bounds connect + response headers for one
	// dispatch; past it the peer is marked down and the shard retries
	// elsewhere.
	defaultDispatchTimeout = 5 * time.Second
	// defaultStallTimeout bounds silence mid-stream. Workers ship
	// checkpoint or progress frames far more often than this while
	// healthy, so a stalled stream means the peer died with the
	// connection half-open.
	defaultStallTimeout = 60 * time.Second
	// defaultHealthEvery paces the background health sweep.
	defaultHealthEvery = 3 * time.Second
	// sweepDebounce rate-limits the on-demand sweep a dispatch triggers
	// when it finds no live peer.
	sweepDebounce = 250 * time.Millisecond
)

// PoolStats are the /v1/healthz counters for the coordinator role.
type PoolStats struct {
	Dispatched   atomic.Int64 // shard dispatches sent to peers
	ShippedBytes atomic.Int64 // artifact + checkpoint bytes received
	FailedOver   atomic.Int64 // dispatches that failed and were handed back for re-dispatch
}

// peer is one configured worker endpoint.
type peer struct {
	url      string
	live     atomic.Bool
	inflight atomic.Int64
}

// PoolConfig tunes a Pool; zero values take the defaults above.
type PoolConfig struct {
	DispatchTimeout time.Duration
	StallTimeout    time.Duration
	HealthEvery     time.Duration
	// Client overrides the HTTP client (tests inject httptest clients).
	Client *http.Client
}

// Pool picks live, least-loaded peers for shard dispatches and tracks
// their health via GET /v1/healthz: a peer is live when it answers
// status "ok" with this build's engine version — a draining or
// version-drifted peer is excluded before any shard bytes move.
type Pool struct {
	peers  []*peer
	client *http.Client
	cfg    PoolConfig
	stats  PoolStats

	sweepMu   sync.Mutex
	lastSweep time.Time
	sweepDone chan struct{} // closed when the most recent sweep finished
}

// NewPool builds a pool over the given peer addresses ("host:port" or
// full URLs). No health state is assumed; run Healthz (or Run) before
// expecting live peers.
func NewPool(addrs []string, cfg PoolConfig) *Pool {
	if cfg.DispatchTimeout <= 0 {
		cfg.DispatchTimeout = defaultDispatchTimeout
	}
	if cfg.StallTimeout <= 0 {
		cfg.StallTimeout = defaultStallTimeout
	}
	if cfg.HealthEvery <= 0 {
		cfg.HealthEvery = defaultHealthEvery
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	p := &Pool{client: cfg.Client, cfg: cfg}
	for _, a := range addrs {
		a = strings.TrimSuffix(a, "/")
		if a == "" {
			continue
		}
		if !strings.Contains(a, "://") {
			a = "http://" + a
		}
		p.peers = append(p.peers, &peer{url: a})
	}
	return p
}

// Stats exposes the coordinator counters for the healthz body.
func (p *Pool) Stats() *PoolStats { return &p.stats }

// Peers reports configured and currently-live peer counts.
func (p *Pool) Peers() (configured, live int) {
	for _, pe := range p.peers {
		if pe.live.Load() {
			live++
		}
	}
	return len(p.peers), live
}

// peerHealth is the slice of the serve healthz body the sweep reads.
type peerHealth struct {
	Status string `json:"status"`
	Engine string `json:"engine"`
}

// Healthz sweeps every peer once, concurrently, updating liveness.
func (p *Pool) Healthz(ctx context.Context) {
	done := make(chan struct{})
	defer close(done)
	p.sweepMu.Lock()
	p.lastSweep = time.Now()
	p.sweepDone = done
	p.sweepMu.Unlock()
	var wg sync.WaitGroup
	for _, pe := range p.peers {
		wg.Add(1)
		go func(pe *peer) {
			defer wg.Done()
			pe.live.Store(p.check(ctx, pe))
		}(pe)
	}
	wg.Wait()
}

func (p *Pool) check(ctx context.Context, pe *peer) bool {
	ctx, cancel := context.WithTimeout(ctx, p.cfg.DispatchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, pe.url+"/v1/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	var h peerHealth
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&h) != nil {
		return false
	}
	return h.Status == "ok" && h.Engine == core.EngineVersion
}

// Run sweeps peer health until ctx cancels; the serve layer starts it as
// a background goroutine alongside the executor pool.
func (p *Pool) Run(ctx context.Context) {
	p.Healthz(ctx)
	t := time.NewTicker(p.cfg.HealthEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			p.Healthz(ctx)
		}
	}
}

// pick returns the live peer with the fewest in-flight dispatches. When
// none is live it triggers one debounced on-demand sweep (covering the
// coordinator-started-before-its-workers case) before giving up.
func (p *Pool) pick(ctx context.Context) *peer {
	if best := p.pickLive(); best != nil {
		return best
	}
	// A sweep may be mid-flight — the background loop's first pass racing
	// the first dispatch right after startup — so wait it out before
	// deciding the fleet is dead.
	p.sweepMu.Lock()
	inflight := p.sweepDone
	stale := time.Since(p.lastSweep) >= sweepDebounce
	p.sweepMu.Unlock()
	if inflight != nil {
		select {
		case <-inflight:
		case <-ctx.Done():
			return nil
		}
		if best := p.pickLive(); best != nil {
			return best
		}
	}
	if stale {
		p.Healthz(ctx)
	}
	return p.pickLive()
}

func (p *Pool) pickLive() *peer {
	var best *peer
	for _, pe := range p.peers {
		if !pe.live.Load() {
			continue
		}
		if best == nil || pe.inflight.Load() < best.inflight.Load() {
			best = pe
		}
	}
	return best
}

// ExecuteShard performs ONE dispatch of the shard to the best live peer,
// landing every shipped checkpoint — and, on success, the complete
// artifact — at path with the same atomic write discipline local
// execution uses. An existing complete artifact at path short-circuits;
// an existing checkpoint travels with the dispatch so the worker resumes
// instead of recomputing. On any transport failure or worker error the
// peer is marked down (the next health sweep revives it if it recovers)
// and the error is returned: the caller's retry policy re-dispatches,
// resuming from the last checkpoint frame this call landed. Returns
// ErrNoLivePeers without side effects when the pool is empty of live
// peers — the caller's cue to fall back to local execution.
func (p *Pool) ExecuteShard(ctx context.Context, spec core.RunSpec, shard mc.ShardSpec, path string, progress func(done, total int)) error {
	key, err := spec.Key()
	if err != nil {
		return err
	}
	var checkpoint []byte
	if art, rerr := core.ReadShardArtifact(path); rerr == nil && art.Verify(key, shard) == nil {
		if art.Header.Complete {
			return nil
		}
		if checkpoint, err = os.ReadFile(path); err != nil {
			checkpoint = nil
		}
	}
	pe := p.pick(ctx)
	if pe == nil {
		return ErrNoLivePeers
	}
	pe.inflight.Add(1)
	defer pe.inflight.Add(-1)
	p.stats.Dispatched.Add(1)
	err = p.dispatch(ctx, pe, NewShardRequest(spec, shard, key, checkpoint), key, shard, path, progress)
	if err != nil && ctx.Err() == nil {
		p.stats.FailedOver.Add(1)
	}
	return err
}

// dispatch runs one POST /v1/shards exchange against one peer.
func (p *Pool) dispatch(ctx context.Context, pe *peer, sr ShardRequest, key string, shard mc.ShardSpec, path string, progress func(done, total int)) error {
	body, err := json.Marshal(sr)
	if err != nil {
		return err
	}
	// One watchdog timer drives the whole dispatch: it cancels the
	// request context unless the peer keeps producing — first the
	// response headers within DispatchTimeout, then at least one frame
	// every StallTimeout. A worker killed with the connection half-open
	// trips it instead of hanging the shard forever.
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	watchdog := time.AfterFunc(p.cfg.DispatchTimeout, cancel)
	defer watchdog.Stop()

	req, err := http.NewRequestWithContext(rctx, http.MethodPost, pe.url+ShardsPath, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.client.Do(req)
	if err != nil {
		pe.live.Store(false)
		return fmt.Errorf("remote: peer %s: %w", pe.url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// A refusal is a healthy HTTP exchange, but a refusing peer is
		// useless for this run (drift, drain): stop dispatching to it
		// until a sweep says otherwise. 400 is ours to keep - a malformed
		// dispatch would be malformed everywhere.
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if resp.StatusCode != http.StatusBadRequest {
			pe.live.Store(false)
		}
		return fmt.Errorf("remote: peer %s refused shard %d/%d: %s: %s",
			pe.url, shard.Index, shard.Count, resp.Status, strings.TrimSpace(string(msg)))
	}

	watchdog.Reset(p.cfg.StallTimeout)
	br := bufio.NewReader(resp.Body)
	for {
		f, err := readFrame(br)
		if err != nil {
			pe.live.Store(false)
			if err == io.EOF {
				return fmt.Errorf("remote: peer %s: stream ended without a terminal frame", pe.url)
			}
			return fmt.Errorf("remote: peer %s: %w", pe.url, err)
		}
		watchdog.Reset(p.cfg.StallTimeout)
		switch f.kind {
		case frameProgress:
			if progress != nil {
				progress(f.done, f.total)
			}
		case frameCheckpoint:
			// Validate before landing: a drifted or confused worker must
			// not overwrite a good local checkpoint.
			art, verr := core.ReadShardArtifactFrom(bytes.NewReader(f.data))
			if verr == nil {
				verr = art.Verify(key, shard)
			}
			if verr != nil {
				pe.live.Store(false)
				return fmt.Errorf("remote: peer %s shipped a bad checkpoint: %w", pe.url, verr)
			}
			if werr := core.WriteShardArtifactFile(path, f.data); werr != nil {
				return werr
			}
			p.stats.ShippedBytes.Add(int64(len(f.data)))
		case frameArtifact:
			art, verr := core.ReadShardArtifactFrom(bytes.NewReader(f.data))
			if verr == nil {
				verr = art.Verify(key, shard)
			}
			if verr == nil && !art.Header.Complete {
				verr = errors.New("artifact is an incomplete checkpoint")
			}
			if verr != nil {
				pe.live.Store(false)
				return fmt.Errorf("remote: peer %s shipped a bad artifact: %w", pe.url, verr)
			}
			if werr := core.WriteShardArtifactFile(path, f.data); werr != nil {
				return werr
			}
			p.stats.ShippedBytes.Add(int64(len(f.data)))
			if progress != nil {
				progress(art.Payload.Frontier(shard))
			}
			return nil
		case frameError:
			// A clean worker-side failure: the peer is alive and
			// responsive, so it stays live — but the shard failed and the
			// caller's retry policy takes over from the last shipped
			// checkpoint.
			return fmt.Errorf("remote: peer %s: shard %d/%d: %s", pe.url, shard.Index, shard.Count, f.msg)
		}
	}
}
