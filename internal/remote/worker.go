// Worker side of the shard fabric: the POST /v1/shards handler body.
// Every `mpvar serve` instance mounts it, so any server can moonlight as
// a shard worker for its peers — there is no separate worker binary.
package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"mpsram/internal/core"
	"mpsram/internal/mc"
)

// defaultCheckpointEvery paces the worker's artifact persistence and the
// checkpoint frames it ships back — the resume granularity a coordinator
// gets when this worker dies mid-shard.
const defaultCheckpointEvery = 500 * time.Millisecond

// WorkerStats are the /v1/healthz counters for the worker role.
type WorkerStats struct {
	ShardsServed atomic.Int64 // dispatches that reached execution
	ShardsActive atomic.Int64 // executing right now (gauge)
	BytesShipped atomic.Int64 // artifact + checkpoint bytes streamed out
}

// Worker executes dispatched shards in a bounded pool and streams the
// results back. It is safe for concurrent requests; the slot count
// bounds how many shards execute at once (excess dispatches wait,
// bounded by the coordinator's patience and the request context).
type Worker struct {
	// CheckpointEvery paces artifact persistence and the checkpoint
	// frames shipped back to the coordinator — the resume granularity a
	// dispatch gets if this worker dies. Set before serving traffic.
	CheckpointEvery time.Duration

	dir           string
	engineWorkers int
	sem           chan struct{}
	stats         WorkerStats
}

// NewWorker builds a worker executing at most slots shards concurrently,
// each with engineWorkers Monte-Carlo workers (0 = all CPUs), keeping
// scratch artifacts under dir. An empty dir gets a unique temp
// directory, so coordinator and worker instances sharing one machine
// (or one test process) never collide on scratch files.
func NewWorker(slots, engineWorkers int, dir string) *Worker {
	if slots <= 0 {
		slots = 1
	}
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "mpvar-shardwork-"); err != nil {
			dir = filepath.Join(os.TempDir(), fmt.Sprintf("mpvar-shardwork-%d", os.Getpid()))
		}
	}
	return &Worker{
		CheckpointEvery: defaultCheckpointEvery,
		dir:             dir,
		engineWorkers:   engineWorkers,
		sem:             make(chan struct{}, slots),
	}
}

// Stats exposes the worker counters for the healthz body.
func (w *Worker) Stats() *WorkerStats { return &w.stats }

// jsonError mirrors the serve layer's error envelope so /v1/shards
// refusals read like every other endpoint's.
func jsonError(rw http.ResponseWriter, code int, format string, args ...any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	fmt.Fprintf(rw, "{\"error\":%s}\n", mustQuote(fmt.Sprintf(format, args...)))
}

func mustQuote(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// ServeShard handles one POST /v1/shards dispatch. ctx is the server's
// drain-aware lifetime: when it cancels, running shards checkpoint and
// the stream ends with an error frame (the coordinator re-dispatches
// elsewhere from the shipped checkpoint). Refusals before the stream
// starts use plain HTTP status codes — 400 for malformed dispatches,
// 409 for engine/run-key drift, 503 when ctx is already done — so a
// coordinator can tell a refusing peer from a failing shard.
func (w *Worker) ServeShard(ctx context.Context, rw http.ResponseWriter, req *http.Request) {
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	var sr ShardRequest
	if err := dec.Decode(&sr); err != nil {
		jsonError(rw, http.StatusBadRequest, "invalid shard request: %v", err)
		return
	}
	if sr.Engine != core.EngineVersion {
		jsonError(rw, http.StatusConflict,
			"engine drift: dispatch is %s, this worker is %s", sr.Engine, core.EngineVersion)
		return
	}
	shard := sr.Shard()
	if err := shard.Validate(); err != nil {
		jsonError(rw, http.StatusBadRequest, "%v", err)
		return
	}
	spec, err := sr.Spec().Normalize()
	if err != nil {
		jsonError(rw, http.StatusBadRequest, "%v", err)
		return
	}
	key, err := spec.Key()
	if err != nil {
		jsonError(rw, http.StatusBadRequest, "%v", err)
		return
	}
	if key != sr.RunKey {
		// Same engine string but the key moved: parameter-schema or
		// hashing drift between builds. Refusing here is what keeps a
		// drifted peer from contributing wrong blocks to a reduce.
		jsonError(rw, http.StatusConflict,
			"run-key drift: dispatch says %s, this worker computes %s — upgrade one side", sr.RunKey[:12], key[:12])
		return
	}
	select {
	case w.sem <- struct{}{}:
		defer func() { <-w.sem }()
	case <-ctx.Done():
		jsonError(rw, http.StatusServiceUnavailable, "worker is draining")
		return
	case <-req.Context().Done():
		return
	}
	if ctx.Err() != nil {
		jsonError(rw, http.StatusServiceUnavailable, "worker is draining")
		return
	}

	if err := os.MkdirAll(w.dir, 0o755); err != nil {
		jsonError(rw, http.StatusInternalServerError, "worker scratch dir: %v", err)
		return
	}
	path := filepath.Join(w.dir, core.ShardArtifactName(key, shard.Index, shard.Count))
	if err := w.landCheckpoint(path, sr, key, shard); err != nil {
		jsonError(rw, http.StatusBadRequest, "%v", err)
		return
	}

	w.stats.ShardsServed.Add(1)
	w.stats.ShardsActive.Add(1)
	defer w.stats.ShardsActive.Add(-1)

	// The run stops when the server drains OR the coordinator hangs up —
	// either way the checkpoint persists locally and (usually) on the
	// coordinator via the last shipped checkpoint frame.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := context.AfterFunc(req.Context(), cancel)
	defer stop()

	rw.Header().Set("Content-Type", "application/x-mpvar-shardstream")
	rw.WriteHeader(http.StatusOK)
	fw := newFrameWriter(rw)

	// Ship checkpoints on the same cadence RunShard persists them; the
	// file is written atomically, so a read always sees a whole artifact.
	shipDone := make(chan struct{})
	var ship sync.WaitGroup
	ship.Add(1)
	go func() {
		defer ship.Done()
		t := time.NewTicker(w.CheckpointEvery)
		defer t.Stop()
		var lastLen int64
		for {
			select {
			case <-shipDone:
				return
			case <-t.C:
				data, err := os.ReadFile(path)
				if err != nil || int64(len(data)) == lastLen {
					continue
				}
				lastLen = int64(len(data))
				if fw.blob(frameCheckpoint, data) != nil {
					cancel() // coordinator is gone; stop burning the shard
					return
				}
				w.stats.BytesShipped.Add(int64(len(data)))
			}
		}
	}()

	runErr := core.RunShard(spec, shard, path,
		core.ShardRunOptions{
			Resume:          true,
			CheckpointEvery: w.CheckpointEvery,
			Progress:        func(done, total int) { fw.progress(done, total) },
		},
		core.WithContext(runCtx), core.WithWorkers(w.engineWorkers))
	close(shipDone)
	ship.Wait()

	if runErr != nil {
		// RunShard persisted the frontier before returning; ship that
		// final checkpoint so the coordinator's re-dispatch starts where
		// this attempt stopped, then the terminal error frame.
		if data, err := os.ReadFile(path); err == nil {
			if fw.blob(frameCheckpoint, data) == nil {
				w.stats.BytesShipped.Add(int64(len(data)))
			}
		}
		fw.sendError(runErr.Error())
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fw.sendError(fmt.Sprintf("reading finished artifact: %v", err))
		return
	}
	// Validate what we are about to ship exactly the way the coordinator
	// will on receipt — a worker never ships bytes it would itself refuse.
	art, err := core.ReadShardArtifactFrom(bytes.NewReader(data))
	if err == nil {
		err = art.Verify(key, shard)
	}
	if err == nil && !art.Header.Complete {
		err = fmt.Errorf("finished shard left an incomplete artifact")
	}
	if err != nil {
		fw.sendError(err.Error())
		return
	}
	if fw.blob(frameArtifact, data) == nil {
		w.stats.BytesShipped.Add(int64(len(data)))
		os.Remove(path)
	}
}

// landCheckpoint installs the dispatch's checkpoint (if any) at path for
// RunShard to resume from — unless a local checkpoint for the same run
// is already further along (this worker ran the shard before and kept
// its own scratch), in which case the local one wins.
func (w *Worker) landCheckpoint(path string, sr ShardRequest, key string, shard mc.ShardSpec) error {
	if len(sr.Checkpoint) == 0 {
		return nil
	}
	shipped, err := core.ReadShardArtifactFrom(bytes.NewReader(sr.Checkpoint))
	if err != nil {
		return fmt.Errorf("dispatch checkpoint: %w", err)
	}
	if err := shipped.Verify(key, shard); err != nil {
		return fmt.Errorf("dispatch checkpoint: %w", err)
	}
	if local, err := core.ReadShardArtifact(path); err == nil {
		if lerr := local.Verify(key, shard); lerr == nil {
			ld, _ := local.Payload.Frontier(shard)
			sd, _ := shipped.Payload.Frontier(shard)
			if local.Header.Complete || ld >= sd {
				return nil
			}
		}
	}
	return core.WriteShardArtifactFile(path, sr.Checkpoint)
}
