package remote

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mpsram/internal/core"
	"mpsram/internal/mc"
)

// BenchmarkRemoteShardRoundtrip measures one full dispatch: request
// encode, worker-side key validation + execution, artifact streaming and
// coordinator-side validation + landing. The workload is a small
// analytic shard, so the number approximates the fabric's overhead
// floor per shard rather than Monte-Carlo compute.
func BenchmarkRemoteShardRoundtrip(b *testing.B) {
	w := NewWorker(1, 1, b.TempDir())
	ctx := context.Background()
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+ShardsPath, func(rw http.ResponseWriter, req *http.Request) {
		w.ServeShard(ctx, rw, req)
	})
	mux.HandleFunc("GET /v1/healthz", func(rw http.ResponseWriter, req *http.Request) {
		fmt.Fprintf(rw, `{"status":"ok","engine":%q}`, core.EngineVersion)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	p := NewPool([]string{ts.URL}, PoolConfig{HealthEvery: time.Hour})
	p.Healthz(ctx)

	spec, err := (core.RunSpec{Workload: "fig5", Samples: 200}).Normalize()
	if err != nil {
		b.Fatal(err)
	}
	shard := mc.ShardSpec{Index: 0, Count: 1}
	path := filepath.Join(b.TempDir(), "bench.shard")

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		os.Remove(path) // force a fresh dispatch, not the short-circuit
		if err := p.ExecuteShard(ctx, spec, shard, path, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if n := p.Stats().Dispatched.Load(); n != int64(b.N) {
		b.Fatalf("dispatched %d of %d", n, b.N)
	}
}
