// Package remote is the shard-worker fabric: it lets one `mpvar serve`
// coordinator dispatch the shards of a heavy run to peer `mpvar serve`
// workers over HTTP and land the finished artifacts locally, where the
// existing exact left-fold reduce (core.Reduce) folds them exactly as if
// the shards had run in-process — the response body stays byte-identical
// to direct execution and shares its cache entry.
//
// The wire contract is deliberately thin. A dispatch is one POST
// /v1/shards carrying the normalized run identity (the same tuple the
// run key hashes) plus an optional checkpoint to resume from; the worker
// recomputes the run key and refuses on mismatch, so an engine-drifted
// peer answers 409 instead of corrupting a reduce. The response is a
// line-framed stream: `progress` frames ride the shard's frontier,
// `checkpoint` frames periodically ship the worker's resumable artifact
// bytes back (that is what makes a dead worker cheap — the coordinator
// re-dispatches from the last shipped frontier), and the stream ends
// with either an `artifact` frame carrying the complete artifact bytes
// or an `error` frame. Both ends validate every shipped artifact with
// core's key recomputation before trusting it.
package remote

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"mpsram/internal/core"
	"mpsram/internal/exp"
	"mpsram/internal/mc"
)

// ShardsPath is the dispatch endpoint every `mpvar serve` mounts.
const ShardsPath = "/v1/shards"

// ShardRequest is the POST /v1/shards body: the normalized run identity
// (exactly the fields core.RunSpec.Key hashes), the shard coordinates,
// and an optional checkpoint artifact to resume from. Engine and RunKey
// are the drift tripwires — the worker recomputes the key from the spec
// fields and refuses the dispatch when either disagrees.
type ShardRequest struct {
	Engine     string     `json:"engine"`
	RunKey     string     `json:"run_key"`
	Workload   string     `json:"workload"`
	Params     exp.Params `json:"params,omitempty"`
	Process    string     `json:"process,omitempty"`
	Seed       int64      `json:"seed"`
	Samples    int        `json:"samples"`
	FastSeed   bool       `json:"fastseed"`
	ShardIndex int        `json:"shard_index"`
	ShardCount int        `json:"shard_count"`
	// Checkpoint, when present, is a resumable artifact in the on-disk
	// container format (base64 in JSON); the worker verifies it against
	// RunKey and the shard coordinates before resuming from its frontier.
	Checkpoint []byte `json:"checkpoint,omitempty"`
}

// NewShardRequest builds the dispatch body for a normalized spec.
func NewShardRequest(spec core.RunSpec, shard mc.ShardSpec, runKey string, checkpoint []byte) ShardRequest {
	return ShardRequest{
		Engine: core.EngineVersion, RunKey: runKey,
		Workload: spec.Workload, Params: spec.Params, Process: spec.Process,
		Seed: spec.Seed, Samples: spec.Samples, FastSeed: spec.FastSeed,
		ShardIndex: shard.Index, ShardCount: shard.Count,
		Checkpoint: checkpoint,
	}
}

// Spec rebuilds the RunSpec the request identifies. JSON transport turns
// typed parameter values into float64s; Normalize re-coerces them
// against the workload schema, which is what makes the recomputed key
// comparable to RunKey.
func (r ShardRequest) Spec() core.RunSpec {
	return core.RunSpec{Workload: r.Workload, Params: r.Params, Process: r.Process,
		Seed: r.Seed, Samples: r.Samples, FastSeed: r.FastSeed}
}

// Shard returns the dispatch's shard coordinates.
func (r ShardRequest) Shard() mc.ShardSpec {
	return mc.ShardSpec{Index: r.ShardIndex, Count: r.ShardCount}
}

// ---------------------------------------------------------------- frames
//
// The response stream is a sequence of frames, each a header line plus
// (for blob kinds) exactly the announced number of raw bytes and a
// trailing newline:
//
//	progress <done> <total>\n
//	checkpoint <n>\n<n bytes>\n
//	artifact <n>\n<n bytes>\n
//	error <quoted message>\n
//
// `artifact` and `error` are terminal. The format is line-first so a
// truncated stream (worker killed mid-run) fails parsing loudly instead
// of yielding a short artifact.

const (
	frameProgress   = "progress"
	frameCheckpoint = "checkpoint"
	frameArtifact   = "artifact"
	frameError      = "error"

	// maxBlobBytes bounds one shipped artifact; far above any real shard
	// payload, it only guards the reader against a corrupt length header.
	maxBlobBytes = 1 << 30
)

// frameWriter serializes frames onto an HTTP response, flushing each one
// so progress and checkpoints reach the coordinator while the shard is
// still running. Writes are mutex-serialized (the progress hook and the
// checkpoint shipper run on different goroutines) and the first write
// error sticks — once the coordinator is gone there is nobody to ship to.
type frameWriter struct {
	mu  sync.Mutex
	w   io.Writer
	rc  *http.ResponseController
	err error
}

func newFrameWriter(w http.ResponseWriter) *frameWriter {
	return &frameWriter{w: w, rc: http.NewResponseController(w)}
}

func (fw *frameWriter) flush() {
	if fw.rc != nil {
		fw.rc.Flush()
	}
}

func (fw *frameWriter) progress(done, total int) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if fw.err != nil {
		return fw.err
	}
	_, fw.err = fmt.Fprintf(fw.w, "%s %d %d\n", frameProgress, done, total)
	fw.flush()
	return fw.err
}

func (fw *frameWriter) blob(kind string, data []byte) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if fw.err != nil {
		return fw.err
	}
	if _, fw.err = fmt.Fprintf(fw.w, "%s %d\n", kind, len(data)); fw.err != nil {
		return fw.err
	}
	if _, fw.err = fw.w.Write(data); fw.err != nil {
		return fw.err
	}
	_, fw.err = io.WriteString(fw.w, "\n")
	fw.flush()
	return fw.err
}

func (fw *frameWriter) sendError(msg string) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if fw.err != nil {
		return fw.err
	}
	_, fw.err = fmt.Fprintf(fw.w, "%s %s\n", frameError, strconv.Quote(msg))
	fw.flush()
	return fw.err
}

// frame is one decoded response frame.
type frame struct {
	kind        string
	done, total int    // progress
	data        []byte // checkpoint / artifact
	msg         string // error
}

// readFrame parses the next frame off the stream. io.EOF after a
// complete frame boundary surfaces as-is; anything torn mid-frame is an
// explicit parse error.
func readFrame(br *bufio.Reader) (*frame, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		if err == io.EOF && line == "" {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("remote: torn frame header %q: %w", line, err)
	}
	line = strings.TrimSuffix(line, "\n")
	kind, rest, _ := strings.Cut(line, " ")
	switch kind {
	case frameProgress:
		f := &frame{kind: kind}
		if _, err := fmt.Sscanf(rest, "%d %d", &f.done, &f.total); err != nil {
			return nil, fmt.Errorf("remote: bad progress frame %q", line)
		}
		return f, nil
	case frameCheckpoint, frameArtifact:
		n, err := strconv.Atoi(rest)
		if err != nil || n < 0 || n > maxBlobBytes {
			return nil, fmt.Errorf("remote: bad %s frame length %q", kind, rest)
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(br, data); err != nil {
			return nil, fmt.Errorf("remote: %s frame truncated at %d bytes: %w", kind, n, err)
		}
		if nl, err := br.ReadByte(); err != nil || nl != '\n' {
			return nil, fmt.Errorf("remote: %s frame missing terminator", kind)
		}
		return &frame{kind: kind, data: data}, nil
	case frameError:
		msg, err := strconv.Unquote(rest)
		if err != nil {
			return nil, fmt.Errorf("remote: bad error frame %q", line)
		}
		return &frame{kind: kind, msg: msg}, nil
	default:
		return nil, fmt.Errorf("remote: unknown frame kind %q", line)
	}
}
