package remote

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mpsram/internal/core"
	"mpsram/internal/mc"
)

// newWorkerServer mounts a worker on an httptest server with the healthz
// slice the pool's sweep reads. The returned cancel drains the worker.
func newWorkerServer(t *testing.T, w *Worker) (*httptest.Server, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var draining atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+ShardsPath, func(rw http.ResponseWriter, req *http.Request) {
		w.ServeShard(ctx, rw, req)
	})
	mux.HandleFunc("GET /v1/healthz", func(rw http.ResponseWriter, req *http.Request) {
		status := "ok"
		if draining.Load() {
			status = "draining"
		}
		rw.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(rw, `{"status":%q,"engine":%q}`, status, core.EngineVersion)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, func() { draining.Store(true); cancel() }
}

func newTestPool(t *testing.T, urls ...string) *Pool {
	t.Helper()
	p := NewPool(urls, PoolConfig{
		DispatchTimeout: 2 * time.Second,
		StallTimeout:    10 * time.Second,
		HealthEvery:     time.Hour, // tests sweep explicitly
	})
	p.Healthz(context.Background())
	return p
}

// localShard runs the shard in-process and returns the artifact bytes —
// the byte-identity reference for everything shipped over the fabric.
func localShard(t *testing.T, spec core.RunSpec, shard mc.ShardSpec) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "local.shard")
	if err := core.RunShard(spec, shard, path, core.ShardRunOptions{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestRemoteShardRoundTrip: a dispatch lands an artifact byte-identical
// to local execution, with progress observed and both ends' counters
// moving.
func TestRemoteShardRoundTrip(t *testing.T) {
	w := NewWorker(2, 1, t.TempDir())
	ts, _ := newWorkerServer(t, w)
	p := newTestPool(t, ts.URL)

	spec, err := (core.RunSpec{Workload: "fig5", Samples: 1000}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	shard := mc.ShardSpec{Index: 1, Count: 3}
	want := localShard(t, spec, shard)

	path := filepath.Join(t.TempDir(), "remote.shard")
	var lastDone, lastTotal atomic.Int64
	err = p.ExecuteShard(context.Background(), spec, shard, path, func(done, total int) {
		lastDone.Store(int64(done))
		lastTotal.Store(int64(total))
	})
	if err != nil {
		t.Fatalf("ExecuteShard: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("remotely executed artifact diverged from local execution")
	}
	if d, tot := lastDone.Load(), lastTotal.Load(); tot == 0 || d != tot {
		t.Fatalf("terminal progress %d/%d", d, tot)
	}
	if n := p.Stats().Dispatched.Load(); n != 1 {
		t.Fatalf("dispatched = %d", n)
	}
	if n := p.Stats().ShippedBytes.Load(); n < int64(len(want)) {
		t.Fatalf("shipped bytes = %d, artifact is %d", n, len(want))
	}
	if n := w.Stats().ShardsServed.Load(); n != 1 {
		t.Fatalf("worker served = %d", n)
	}

	// A complete artifact at the destination short-circuits: no dispatch.
	if err := p.ExecuteShard(context.Background(), spec, shard, path, nil); err != nil {
		t.Fatalf("short-circuit: %v", err)
	}
	if n := p.Stats().Dispatched.Load(); n != 1 {
		t.Fatalf("short-circuit still dispatched (count %d)", n)
	}
}

// TestWorkerRefusals pins the pre-stream HTTP refusals: engine drift and
// run-key drift answer 409, malformed dispatches 400, draining 503 —
// before any artifact bytes move.
func TestWorkerRefusals(t *testing.T) {
	w := NewWorker(1, 1, t.TempDir())
	ts, drain := newWorkerServer(t, w)

	spec, err := (core.RunSpec{Workload: "fig3"}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	key, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}
	shard := mc.ShardSpec{Index: 0, Count: 2}

	post := func(sr ShardRequest) (int, string) {
		t.Helper()
		body, _ := json.Marshal(sr)
		resp, err := http.Post(ts.URL+ShardsPath, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		return resp.StatusCode, e.Error
	}

	drifted := NewShardRequest(spec, shard, key, nil)
	drifted.Engine = "v0"
	if code, msg := post(drifted); code != http.StatusConflict || !strings.Contains(msg, "engine drift") {
		t.Fatalf("engine drift: %d %q", code, msg)
	}
	badKey := NewShardRequest(spec, shard, strings.Repeat("0", len(key)), nil)
	if code, msg := post(badKey); code != http.StatusConflict || !strings.Contains(msg, "run-key drift") {
		t.Fatalf("run-key drift: %d %q", code, msg)
	}
	unknown := NewShardRequest(core.RunSpec{Workload: "nope"}, shard, key, nil)
	if code, _ := post(unknown); code != http.StatusBadRequest {
		t.Fatalf("unknown workload: %d", code)
	}
	badShard := NewShardRequest(spec, mc.ShardSpec{Index: 5, Count: 2}, key, nil)
	if code, _ := post(badShard); code != http.StatusBadRequest {
		t.Fatalf("invalid shard: %d", code)
	}
	junkCkpt := NewShardRequest(spec, shard, key, []byte("not an artifact"))
	if code, msg := post(junkCkpt); code != http.StatusBadRequest || !strings.Contains(msg, "checkpoint") {
		t.Fatalf("junk checkpoint: %d %q", code, msg)
	}

	drain()
	if code, msg := post(NewShardRequest(spec, shard, key, nil)); code != http.StatusServiceUnavailable ||
		!strings.Contains(msg, "draining") {
		t.Fatalf("draining worker: %d %q", code, msg)
	}
}

// TestRemoteCheckpointResume: a coordinator-side checkpoint travels with
// the dispatch, the worker resumes it, and the final artifact is
// byte-identical to an uninterrupted run.
func TestRemoteCheckpointResume(t *testing.T) {
	spec, err := (core.RunSpec{Workload: "fig5", Samples: 2000}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	shard := mc.ShardSpec{Index: 0, Count: 1}
	want := localShard(t, spec, shard)

	// Produce a genuine interrupted checkpoint the way a drain would.
	path := filepath.Join(t.TempDir(), "resume.shard")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fired atomic.Bool
	err = core.RunShard(spec, shard, path, core.ShardRunOptions{
		Progress: func(done, total int) {
			if done >= total/4 && !fired.Swap(true) {
				cancel()
			}
		},
	}, core.WithContext(ctx))
	if err == nil {
		t.Fatal("interrupt did not fire")
	}
	art, err := core.ReadShardArtifact(path)
	if err != nil || art.Header.Complete {
		t.Fatalf("no resumable checkpoint: %v", err)
	}

	w := NewWorker(1, 1, t.TempDir())
	ts, _ := newWorkerServer(t, w)
	p := newTestPool(t, ts.URL)
	if err := p.ExecuteShard(context.Background(), spec, shard, path, nil); err != nil {
		t.Fatalf("resume dispatch: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed remote artifact diverged from the uninterrupted run")
	}
}

// TestRemoteNoLivePeers: an empty pool and a pool of unreachable peers
// both answer ErrNoLivePeers — the caller's local-fallback cue.
func TestRemoteNoLivePeers(t *testing.T) {
	spec, err := (core.RunSpec{Workload: "fig3"}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	shard := mc.ShardSpec{Index: 0, Count: 1}
	path := filepath.Join(t.TempDir(), "x.shard")

	empty := NewPool(nil, PoolConfig{})
	if err := empty.ExecuteShard(context.Background(), spec, shard, path, nil); !errors.Is(err, ErrNoLivePeers) {
		t.Fatalf("empty pool: %v", err)
	}
	dead := newTestPool(t, "127.0.0.1:1")
	if err := dead.ExecuteShard(context.Background(), spec, shard, path, nil); !errors.Is(err, ErrNoLivePeers) {
		t.Fatalf("unreachable peer: %v", err)
	}
	if cfg, live := dead.Peers(); cfg != 1 || live != 0 {
		t.Fatalf("peers = %d configured %d live", cfg, live)
	}
}

// TestRemoteDeadPeerFailover is the fabric's central promise: a worker
// that dies mid-shard costs a re-dispatch, not a wrong result. The first
// dispatch is interrupted (worker drain mid-run) after shipping
// checkpoint frames; the landed checkpoint then rides the re-dispatch to
// a second worker, and the final artifact is byte-identical to an
// uninterrupted local run.
func TestRemoteDeadPeerFailover(t *testing.T) {
	spec, err := (core.RunSpec{Workload: "fig5", Samples: 5000}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	shard := mc.ShardSpec{Index: 0, Count: 1}
	want := localShard(t, spec, shard)

	wA := NewWorker(1, 1, t.TempDir())
	wA.CheckpointEvery = time.Millisecond // ship checkpoints aggressively
	tsA, drainA := newWorkerServer(t, wA)
	wB := NewWorker(1, 1, t.TempDir())
	tsB, _ := newWorkerServer(t, wB)

	// Phase 1: only A is configured; kill it mid-run from the progress
	// stream.
	pA := newTestPool(t, tsA.URL)
	path := filepath.Join(t.TempDir(), "failover.shard")
	var fired atomic.Bool
	err = pA.ExecuteShard(context.Background(), spec, shard, path, func(done, total int) {
		if done >= total/4 && !fired.Swap(true) {
			drainA()
		}
	})
	if err == nil {
		t.Fatal("dispatch to a dying worker succeeded")
	}
	if !fired.Load() {
		t.Fatal("worker died before any progress was observed")
	}
	art, rerr := core.ReadShardArtifact(path)
	if rerr != nil {
		t.Fatalf("no checkpoint landed before the worker died: %v", rerr)
	}
	if art.Header.Complete {
		t.Fatal("interrupted dispatch landed a complete artifact")
	}
	if n := pA.Stats().FailedOver.Load(); n != 1 {
		t.Fatalf("failed over = %d", n)
	}

	// Phase 2: re-dispatch to B, resuming from the shipped checkpoint.
	pB := newTestPool(t, tsB.URL)
	if err := pB.ExecuteShard(context.Background(), spec, shard, path, nil); err != nil {
		t.Fatalf("re-dispatch: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("failover artifact diverged from the uninterrupted run")
	}
}

// TestRemoteTornStreamMarksPeerDown: a peer whose stream ends without a
// terminal frame (process killed, connection dropped) is marked down so
// the next dispatch goes elsewhere.
func TestRemoteTornStreamMarksPeerDown(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+ShardsPath, func(rw http.ResponseWriter, req *http.Request) {
		rw.WriteHeader(http.StatusOK)
		fmt.Fprintf(rw, "progress 1 10\n") // then vanish
	})
	mux.HandleFunc("GET /v1/healthz", func(rw http.ResponseWriter, req *http.Request) {
		fmt.Fprintf(rw, `{"status":"ok","engine":%q}`, core.EngineVersion)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	p := newTestPool(t, ts.URL)
	spec, err := (core.RunSpec{Workload: "fig3"}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	err = p.ExecuteShard(context.Background(), spec, mc.ShardSpec{Index: 0, Count: 1},
		filepath.Join(t.TempDir(), "x.shard"), nil)
	if err == nil || !strings.Contains(err.Error(), "terminal frame") {
		t.Fatalf("torn stream: %v", err)
	}
	if _, live := p.Peers(); live != 0 {
		t.Fatal("torn-stream peer still live")
	}
	if !errors.Is(p.ExecuteShard(context.Background(), spec, mc.ShardSpec{Index: 0, Count: 1},
		filepath.Join(t.TempDir(), "y.shard"), nil), ErrNoLivePeers) {
		t.Fatal("second dispatch did not fall back to no-live-peers")
	}
}

// TestRemoteLeastLoadedPick: dispatches spread toward the least-loaded
// live peer.
func TestRemoteLeastLoadedPick(t *testing.T) {
	p := newTestPool(t)
	a, b := &peer{url: "a"}, &peer{url: "b"}
	a.live.Store(true)
	b.live.Store(true)
	a.inflight.Store(3)
	p.peers = []*peer{a, b}
	if got := p.pickLive(); got != b {
		t.Fatalf("picked %s with inflight %d over idle b", got.url, got.inflight.Load())
	}
	b.live.Store(false)
	if got := p.pickLive(); got != a {
		t.Fatalf("picked %v, want the only live peer", got)
	}
}

// TestFrameCodec pins the stream framing against torn and malformed
// input — the reader must error loudly, never yield a short blob.
func TestFrameCodec(t *testing.T) {
	read := func(s string) (*frame, error) {
		return readFrame(bufio.NewReader(strings.NewReader(s)))
	}
	if f, err := read("progress 3 10\n"); err != nil || f.done != 3 || f.total != 10 {
		t.Fatalf("progress: %+v %v", f, err)
	}
	if f, err := read("checkpoint 3\nabc\n"); err != nil || string(f.data) != "abc" {
		t.Fatalf("checkpoint: %+v %v", f, err)
	}
	if f, err := read(`error "boom went \"it\""` + "\n"); err != nil || f.msg != `boom went "it"` {
		t.Fatalf("error frame: %+v %v", f, err)
	}
	for _, bad := range []string{
		"artifact 10\nshort\n",  // truncated blob
		"checkpoint 3\nabcX",    // missing terminator
		"progress nope\n",       // malformed counts
		"mystery 1\n",           // unknown kind
		"artifact -1\n",         // negative length
		"error unquoted text\n", // unparseable message
		"progress 1 10",         // torn header (no newline)
	} {
		if _, err := read(bad); err == nil {
			t.Errorf("accepted malformed frame %q", bad)
		}
	}
	// Plain EOF at a frame boundary surfaces as io.EOF, not a parse error.
	if _, err := read(""); err != io.EOF {
		t.Fatalf("empty stream: %v", err)
	}
}
