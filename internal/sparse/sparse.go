// Package sparse implements the linear-algebra kernel of the SPICE engine:
// a row-sparse matrix with in-place Gaussian elimination tuned for the
// diagonally dominant nodal matrices that RC ladders with embedded
// transistors produce, plus a dense LUP solver used as the gold standard
// for small systems and in tests.
//
// The sparse elimination keeps per-column occupancy lists and uses a dense
// scratch accumulator per pivot row (Gilbert–Peierls style scatter/gather),
// so a bit-line ladder of thousands of nodes factors in near-linear time.
// Pivoting is diagonal-only: the engine guarantees strictly positive
// diagonals (gmin, source series conductances), which is the standard
// SPICE contract; a vanishing pivot is reported as a structural error.
package sparse

import (
	"fmt"
	"math"
	"sort"
)

// Entry is one nonzero within a row.
type Entry struct {
	Col int
	Val float64
}

// Matrix is a square row-sparse matrix.
type Matrix struct {
	N    int
	Rows [][]Entry
}

// NewMatrix returns an N×N zero matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{N: n, Rows: make([][]Entry, n)}
}

// Add accumulates v into element (i, j).
func (m *Matrix) Add(i, j int, v float64) {
	if v == 0 {
		return
	}
	row := m.Rows[i]
	k := sort.Search(len(row), func(k int) bool { return row[k].Col >= j })
	if k < len(row) && row[k].Col == j {
		row[k].Val += v
		return
	}
	row = append(row, Entry{})
	copy(row[k+1:], row[k:])
	row[k] = Entry{Col: j, Val: v}
	m.Rows[i] = row
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	row := m.Rows[i]
	k := sort.Search(len(row), func(k int) bool { return row[k].Col >= j })
	if k < len(row) && row[k].Col == j {
		return row[k].Val
	}
	return 0
}

// NNZ returns the number of stored nonzeros.
func (m *Matrix) NNZ() int {
	n := 0
	for _, r := range m.Rows {
		n += len(r)
	}
	return n
}

// Clone returns a deep copy with fresh storage. Hot loops that refill the
// same destination repeatedly (the SPICE engine's Newton work matrix)
// use CopyFrom instead, which reuses the destination's row storage.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.N)
	for i, r := range m.Rows {
		c.Rows[i] = append([]Entry(nil), r...)
	}
	return c
}

// Reuse resets m to an n×n zero matrix while retaining the row storage
// already allocated, so a hot loop can re-stamp a same-size (or smaller)
// system without going back to the allocator.
func (m *Matrix) Reuse(n int) {
	if cap(m.Rows) >= n {
		m.Rows = m.Rows[:n]
	} else {
		old := m.Rows
		m.Rows = make([][]Entry, n)
		copy(m.Rows, old)
	}
	for i := range m.Rows {
		m.Rows[i] = m.Rows[i][:0]
	}
	m.N = n
}

// CopyFrom overwrites m with the contents of src, reusing m's row storage.
// It is the allocation-free counterpart of Clone for matrices that are
// refilled every iteration (the SPICE engine's Newton work matrix).
func (m *Matrix) CopyFrom(src *Matrix) {
	m.Reuse(src.N)
	for i, r := range src.Rows {
		m.Rows[i] = append(m.Rows[i], r...)
	}
}

// MulVec computes y = M·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	y := make([]float64, m.N)
	for i, row := range m.Rows {
		var s float64
		for _, e := range row {
			s += e.Val * x[e.Col]
		}
		y[i] = s
	}
	return y
}

// Solve performs in-place Gaussian elimination on the matrix and
// right-hand side b, returning the solution. The matrix is destroyed.
// Diagonal pivots below tol×(row max) are rejected. It is a convenience
// wrapper over Solver.Solve with throwaway scratch; hot loops should hold
// a Solver.
func (m *Matrix) Solve(b []float64) ([]float64, error) {
	var s Solver
	sol, err := s.Solve(m, b)
	if err != nil {
		return nil, err
	}
	// Detach from the throwaway scratch so the caller owns the result.
	return append([]float64(nil), sol...), nil
}

// Solver carries the factorization scratch of Matrix.Solve — the column
// occupancy lists, the dense scatter accumulator and the solution vector —
// so a hot loop (the SPICE engine's Newton iterations) can solve many
// same-size systems without reallocating any of it. The elimination
// arithmetic is identical to the scratch-free path, so solutions are
// bit-for-bit the same for the same inputs.
//
// The zero Solver is ready for use. A Solver is not safe for concurrent
// use.
type Solver struct {
	cols    [][]int
	x       []float64
	mark    []bool
	touched []int
	sol     []float64
}

// reset sizes the scratch for an n-unknown solve. The scatter accumulator
// and marks are cleared defensively; the occupancy lists are truncated and
// re-seeded by the caller.
func (s *Solver) reset(n int) {
	if cap(s.cols) >= n {
		s.cols = s.cols[:n]
	} else {
		s.cols = make([][]int, n)
	}
	for i := range s.cols {
		s.cols[i] = s.cols[i][:0]
	}
	if cap(s.x) >= n {
		s.x = s.x[:n]
	} else {
		s.x = make([]float64, n)
	}
	clear(s.x)
	if cap(s.mark) >= n {
		s.mark = s.mark[:n]
	} else {
		s.mark = make([]bool, n)
	}
	clear(s.mark)
	if cap(s.sol) >= n {
		s.sol = s.sol[:n]
	} else {
		s.sol = make([]float64, n)
	}
	s.touched = s.touched[:0]
}

// Solve performs in-place Gaussian elimination on m and right-hand side b,
// returning the solution. The matrix is destroyed. The returned slice
// aliases the solver's scratch and is only valid until the next Solve call
// on this solver.
func (s *Solver) Solve(m *Matrix, b []float64) ([]float64, error) {
	n := m.N
	if len(b) != n {
		return nil, fmt.Errorf("sparse: rhs length %d != n %d", len(b), n)
	}
	s.reset(n)
	// Column occupancy: rows (strictly below the diagonal during the
	// sweep) holding a nonzero in each column. Seeded from the initial
	// pattern, extended on fill-in. Entries may be stale (already
	// eliminated); they are filtered when visited.
	cols := s.cols
	for i, row := range m.Rows {
		for _, e := range row {
			if e.Col < i {
				cols[e.Col] = append(cols[e.Col], i)
			}
		}
	}
	// Dense scratch accumulator for row updates.
	x := s.x
	mark := s.mark
	for k := 0; k < n; k++ {
		rowK := m.Rows[k]
		// Locate the pivot.
		pk := sort.Search(len(rowK), func(t int) bool { return rowK[t].Col >= k })
		if pk >= len(rowK) || rowK[pk].Col != k || rowK[pk].Val == 0 {
			return nil, fmt.Errorf("sparse: zero pivot at row %d", k)
		}
		piv := rowK[pk].Val
		var maxAbs float64
		for _, e := range rowK {
			if a := math.Abs(e.Val); a > maxAbs {
				maxAbs = a
			}
		}
		if math.Abs(piv) < 1e-14*maxAbs {
			return nil, fmt.Errorf("sparse: pivot %g at row %d below threshold (row max %g)", piv, k, maxAbs)
		}
		for _, i := range cols[k] {
			if i <= k {
				continue
			}
			rowI := m.Rows[i]
			ti := sort.Search(len(rowI), func(t int) bool { return rowI[t].Col >= k })
			if ti >= len(rowI) || rowI[ti].Col != k || rowI[ti].Val == 0 {
				continue // stale occupancy entry
			}
			factor := rowI[ti].Val / piv
			// Scatter row i (columns ≥ k only; below-k already done).
			touched := s.touched[:0]
			for _, e := range rowI[ti:] {
				x[e.Col] = e.Val
				mark[e.Col] = true
				touched = append(touched, e.Col)
			}
			// Subtract factor × row k (columns ≥ k).
			for _, e := range rowK[pk:] {
				if !mark[e.Col] {
					mark[e.Col] = true
					touched = append(touched, e.Col)
					x[e.Col] = 0
					if e.Col > k && i > e.Col {
						// fill-in below the diagonal in column e.Col
						cols[e.Col] = append(cols[e.Col], i)
					} else if e.Col > k && i < e.Col {
						// fill above diagonal needs no occupancy
						_ = i
					}
				}
				x[e.Col] -= factor * e.Val
			}
			b[i] -= factor * b[k]
			// Gather back: keep columns > k (column k is eliminated).
			sort.Ints(touched)
			newRow := rowI[:ti]
			for _, c := range touched {
				if c > k && x[c] != 0 {
					newRow = append(newRow, Entry{Col: c, Val: x[c]})
				}
				mark[c] = false
				x[c] = 0
			}
			m.Rows[i] = newRow
			s.touched = touched[:0]
		}
	}
	// Back substitution.
	sol := s.sol
	for i := n - 1; i >= 0; i-- {
		row := m.Rows[i]
		acc := b[i]
		var diag float64
		for _, e := range row {
			switch {
			case e.Col == i:
				diag = e.Val
			case e.Col > i:
				acc -= e.Val * sol[e.Col]
			}
		}
		if diag == 0 {
			return nil, fmt.Errorf("sparse: zero diagonal at back-substitution row %d", i)
		}
		sol[i] = acc / diag
	}
	return sol, nil
}

// DenseSolve solves A·x = b by LU with partial pivoting, used as the gold
// standard in tests and for small systems. A and b are destroyed.
func DenseSolve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("dense: bad dimensions")
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivot.
		p := k
		for i := k + 1; i < n; i++ {
			if math.Abs(a[i][k]) > math.Abs(a[p][k]) {
				p = i
			}
		}
		if a[p][k] == 0 {
			return nil, fmt.Errorf("dense: singular at column %d", k)
		}
		if p != k {
			a[p], a[k] = a[k], a[p]
			b[p], b[k] = b[k], b[p]
		}
		for i := k + 1; i < n; i++ {
			f := a[i][k] / a[k][k]
			if f == 0 {
				continue
			}
			a[i][k] = 0
			for j := k + 1; j < n; j++ {
				a[i][j] -= f * a[k][j]
			}
			b[i] -= f * b[k]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= a[i][j] * x[j]
		}
		x[i] = s / a[i][i]
	}
	return x, nil
}

// ToDense expands the sparse matrix, for tests and debugging.
func (m *Matrix) ToDense() [][]float64 {
	d := make([][]float64, m.N)
	for i := range d {
		d[i] = make([]float64, m.N)
		for _, e := range m.Rows[i] {
			d[i][e.Col] = e.Val
		}
	}
	return d
}
