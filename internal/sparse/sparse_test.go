package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddAtNNZ(t *testing.T) {
	m := NewMatrix(3)
	m.Add(0, 0, 2)
	m.Add(0, 2, 1)
	m.Add(0, 0, 3) // accumulate
	m.Add(1, 1, 4)
	m.Add(2, 2, 0) // zero is dropped
	if got := m.At(0, 0); got != 5 {
		t.Fatalf("At(0,0) = %g", got)
	}
	if got := m.At(0, 1); got != 0 {
		t.Fatalf("At(0,1) = %g", got)
	}
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
}

func TestSolveIdentity(t *testing.T) {
	m := NewMatrix(4)
	for i := 0; i < 4; i++ {
		m.Add(i, i, 1)
	}
	x, err := m.Solve([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if math.Abs(v-float64(i+1)) > 1e-15 {
			t.Fatalf("x = %v", x)
		}
	}
}

func TestSolveTridiagonal(t *testing.T) {
	// The classic RC-ladder pattern: -1, 2, -1.
	n := 50
	m := NewMatrix(n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		m.Add(i, i, 2)
		if i > 0 {
			m.Add(i, i-1, -1)
		}
		if i < n-1 {
			m.Add(i, i+1, -1)
		}
		b[i] = 1
	}
	x, err := m.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	// Analytic solution of −x'' = 1 with zero Dirichlet ends (discrete):
	// x_i = (i+1)(n−i)/2.
	for i := 0; i < n; i++ {
		want := float64(i+1) * float64(n-i) / 2
		if math.Abs(x[i]-want) > 1e-9*want {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want)
		}
	}
}

// randomDiagDominant builds a random strictly diagonally dominant sparse
// matrix (the class the SPICE engine produces).
func randomDiagDominant(rng *rand.Rand, n, extraPerRow int) (*Matrix, [][]float64) {
	m := NewMatrix(n)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		var off float64
		// Banded part plus a few random long-range couplings (like the
		// VDD/word-line nodes in the SRAM netlist).
		cols := []int{i - 1, i + 1}
		for k := 0; k < extraPerRow; k++ {
			cols = append(cols, rng.Intn(n))
		}
		for _, j := range cols {
			if j < 0 || j >= n || j == i {
				continue
			}
			v := rng.Float64()*2 - 1
			m.Add(i, j, v)
			d[i][j] += v
			off += math.Abs(d[i][j])
		}
		diag := off + 0.5 + rng.Float64()
		m.Add(i, i, diag)
		d[i][i] += diag
	}
	return m, d
}

func TestSolveMatchesDenseRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(60)
		m, d := randomDiagDominant(rng, n, 2)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		bCopy := append([]float64(nil), b...)
		xs, err := m.Solve(b)
		if err != nil {
			t.Fatalf("trial %d: sparse: %v", trial, err)
		}
		xd, err := DenseSolve(d, bCopy)
		if err != nil {
			t.Fatalf("trial %d: dense: %v", trial, err)
		}
		for i := range xs {
			if math.Abs(xs[i]-xd[i]) > 1e-8*(1+math.Abs(xd[i])) {
				t.Fatalf("trial %d: x[%d] sparse %g vs dense %g", trial, i, xs[i], xd[i])
			}
		}
	}
}

func TestSolveResidualProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(40)
		m, _ := randomDiagDominant(r, n, 1)
		orig := m.Clone()
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		bOrig := append([]float64(nil), b...)
		x, err := m.Solve(b)
		if err != nil {
			return false
		}
		res := orig.MulVec(x)
		for i := range res {
			if math.Abs(res[i]-bOrig[i]) > 1e-8*(1+math.Abs(bOrig[i])) {
				return false
			}
		}
		return true
	}
	for trial := 0; trial < 40; trial++ {
		if !f(rng.Int63()) {
			t.Fatal("residual check failed")
		}
	}
}

func TestSolveErrors(t *testing.T) {
	m := NewMatrix(2)
	m.Add(0, 1, 1)
	m.Add(1, 0, 1)
	// Zero diagonal → rejected (no pivoting by design).
	if _, err := m.Solve([]float64{1, 1}); err == nil {
		t.Fatal("zero diagonal must error")
	}
	m2 := NewMatrix(2)
	m2.Add(0, 0, 1)
	m2.Add(1, 1, 1)
	if _, err := m2.Solve([]float64{1}); err == nil {
		t.Fatal("bad rhs length must error")
	}
	if _, err := DenseSolve([][]float64{{0, 1}, {0, 1}}, []float64{1, 1}); err == nil {
		t.Fatal("singular dense must error")
	}
	if _, err := DenseSolve(nil, nil); err == nil {
		t.Fatal("empty dense must error")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewMatrix(2)
	m.Add(0, 0, 1)
	m.Add(1, 1, 1)
	c := m.Clone()
	c.Add(0, 0, 5)
	if m.At(0, 0) != 1 || c.At(0, 0) != 6 {
		t.Fatal("clone not independent")
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2)
	m.Add(0, 0, 2)
	m.Add(0, 1, 1)
	m.Add(1, 0, -1)
	m.Add(1, 1, 3)
	y := m.MulVec([]float64{1, 2})
	if y[0] != 4 || y[1] != 5 {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestToDense(t *testing.T) {
	m := NewMatrix(2)
	m.Add(0, 1, 7)
	d := m.ToDense()
	if d[0][1] != 7 || d[0][0] != 0 {
		t.Fatalf("ToDense = %v", d)
	}
}

func TestDensePermutationProperty(t *testing.T) {
	// DenseSolve with partial pivoting handles row-swapped systems the
	// diagonal-pivot sparse solver cannot.
	f := func(a, b, c float64) bool {
		if math.IsNaN(a+b+c) || math.IsInf(a+b+c, 0) {
			return true
		}
		// [[0, 1], [1, 0]] x = [a, b] → x = [b, a]
		x, err := DenseSolve([][]float64{{0, 1}, {1, 0}}, []float64{a, b})
		if err != nil {
			return false
		}
		return x[0] == b && x[1] == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSolverReuseBitIdenticalToSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var s Solver
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(50)
		m, _ := randomDiagDominant(rng, n, 3)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		// Same system through the one-shot path and the reused solver.
		m2 := m.Clone()
		b2 := append([]float64(nil), b...)
		want, err := m.Solve(b)
		if err != nil {
			t.Fatalf("trial %d: solve: %v", trial, err)
		}
		got, err := s.Solve(m2, b2)
		if err != nil {
			t.Fatalf("trial %d: solver: %v", trial, err)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d (n=%d): x[%d] differs: one-shot %v vs reused solver %v",
					trial, n, i, want[i], got[i])
			}
		}
	}
}

func TestSolverScratchCleanAfterError(t *testing.T) {
	var s Solver
	// Singular system: leave a zero pivot at row 1.
	bad := NewMatrix(2)
	bad.Add(0, 0, 1)
	if _, err := s.Solve(bad, []float64{1, 1}); err == nil {
		t.Fatal("expected zero-pivot error")
	}
	// The same solver must still produce exact results afterwards.
	m := NewMatrix(2)
	m.Add(0, 0, 2)
	m.Add(1, 1, 4)
	x, err := s.Solve(m, []float64{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 1 || x[1] != 2 {
		t.Fatalf("post-error solve: x = %v", x)
	}
}

func TestMatrixReuseAndCopyFrom(t *testing.T) {
	src := NewMatrix(3)
	src.Add(0, 0, 2)
	src.Add(1, 1, 3)
	src.Add(2, 0, -1)
	src.Add(2, 2, 5)

	var m Matrix
	m.CopyFrom(src)
	if m.N != 3 || m.NNZ() != src.NNZ() {
		t.Fatalf("CopyFrom: n=%d nnz=%d", m.N, m.NNZ())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != src.At(i, j) {
				t.Fatalf("CopyFrom: (%d,%d) = %g want %g", i, j, m.At(i, j), src.At(i, j))
			}
		}
	}
	// Mutating the copy must not touch the source.
	m.Add(0, 0, 1)
	if src.At(0, 0) != 2 {
		t.Fatalf("CopyFrom aliased source: src(0,0) = %g", src.At(0, 0))
	}
	// Shrink, then grow: contents reset to zero either way.
	m.Reuse(2)
	if m.N != 2 || m.NNZ() != 0 {
		t.Fatalf("Reuse(2): n=%d nnz=%d", m.N, m.NNZ())
	}
	m.Reuse(5)
	if m.N != 5 || m.NNZ() != 0 {
		t.Fatalf("Reuse(5): n=%d nnz=%d", m.N, m.NNZ())
	}
	m.Add(4, 4, 1)
	if m.At(4, 4) != 1 {
		t.Fatalf("Reuse(5) then Add: %g", m.At(4, 4))
	}
}
