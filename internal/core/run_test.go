package core

import (
	"encoding/json"
	"strings"
	"testing"

	"mpsram/internal/exp"
	"mpsram/internal/mc"
	"mpsram/internal/report"
)

// TestStudyRunSurface covers the registry-facing facade: listing,
// dispatch, the unknown-name contract and parameter validation.
func TestStudyRunSurface(t *testing.T) {
	s, err := NewStudy(WithMC(mc.Config{Samples: 50, Seed: 2015}))
	if err != nil {
		t.Fatal(err)
	}
	ws := s.Workloads()
	if len(ws) < 15 {
		t.Fatalf("registry too small: %d", len(ws))
	}
	if _, err := s.Run("bogus", nil); err == nil || !strings.Contains(err.Error(), "table1") {
		t.Fatalf("unknown workload must list the registry, got %v", err)
	}
	if _, err := s.Run("nodes", exp.Params{"n": "x"}); err == nil {
		t.Fatal("bad param accepted")
	}
	res, err := s.Run("table1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Text == "" || len(res.Tables) == 0 || res.Data == nil {
		t.Fatalf("incomplete result %+v", res)
	}
}

// TestShimsMatchRun pins the deprecation-shim contract on a cheap
// workload: the typed convenience method returns exactly the registry
// path's rows.
func TestShimsMatchRun(t *testing.T) {
	s, err := NewStudy()
	if err != nil {
		t.Fatal(err)
	}
	shim, err := s.WorstCases()
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run("table1", nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Data.([]exp.Table1Row)
	if len(shim) != len(rows) || shim[0] != rows[0] || shim[len(shim)-1] != rows[len(rows)-1] {
		t.Fatal("shim rows drifted from Run rows")
	}
}

// TestCheapShims keeps the fast deprecation shims covered on the short
// path: each returns non-empty typed rows through Run.
func TestCheapShims(t *testing.T) {
	s, err := NewStudy(WithMC(mc.Config{Samples: 20, Seed: 2015}))
	if err != nil {
		t.Fatal(err)
	}
	if rows, err := s.Distortions(); err != nil || len(rows) != 3 {
		t.Fatalf("Distortions: %d rows, %v", len(rows), err)
	}
	if rows, err := s.ArrayOverview(); err != nil || len(rows) != 4 {
		t.Fatalf("ArrayOverview: %d rows, %v", len(rows), err)
	}
	if rows, err := s.Distribution(); err != nil || len(rows) != 3 {
		t.Fatalf("Distribution: %d rows, %v", len(rows), err)
	}
	if rows, err := s.Nodes(); err != nil || len(rows) != 18 {
		t.Fatalf("Nodes: %d rows, %v", len(rows), err)
	}
	if surfs, err := s.SigmaSurfaces(); err != nil || len(surfs) != 3 {
		t.Fatalf("SigmaSurfaces: %d surfaces, %v", len(surfs), err)
	}
	if _, err := s.SpiceMC(nil); err == nil {
		t.Fatal("SpiceMC with no sizes must fail")
	}
}

// TestAllWorkloadsSmoke runs every registered workload at a tiny budget
// through Study.Run — the single smoke gate that replaces per-workload
// CI steps. A newly registered workload is covered here automatically;
// its Hints.Smoke parameters keep heavyweight DOEs affordable.
func TestAllWorkloadsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("SPICE-backed workloads in -short mode")
	}
	s, err := NewStudy(WithMC(mc.Config{Samples: 4, Seed: 2015}), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range s.Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			res, err := s.Run(w.Name, w.Hints.Smoke)
			if err != nil {
				t.Fatal(err)
			}
			if res.Text == "" {
				t.Fatal("empty text rendering")
			}
			if len(res.Tables) == 0 || res.Data == nil {
				t.Fatalf("incomplete result: %d tables, data %T", len(res.Tables), res.Data)
			}
			// Every workload speaks every encoder; JSON must decode.
			var b strings.Builder
			for _, f := range []report.Format{report.FormatCSV, report.FormatMarkdown} {
				if err := res.Write(&b, f); err != nil {
					t.Fatalf("format %v: %v", f, err)
				}
			}
			b.Reset()
			if err := res.Write(&b, report.FormatJSON); err != nil {
				t.Fatal(err)
			}
			var doc []struct {
				Rows []map[string]any `json:"rows"`
			}
			if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
				t.Fatalf("invalid json: %v\n%s", err, b.String())
			}
			if len(doc) != len(res.Tables) {
				t.Fatalf("json tables %d, result tables %d", len(doc), len(res.Tables))
			}
		})
	}
}
