// Shard artifacts: the file format and the run/reduce drivers that turn
// any registered workload into a distributed, resumable execution. A
// shard artifact is the RunSpec identity (JSON header, keyed by the same
// SHA-256 run key the serve cache uses) plus the mc payload — every
// captured stream's contiguous per-block aggregates. Because the header
// carries the full normalized spec, `Reduce` needs only the artifact
// files: it rebuilds the RunSpec, recomputes the key (so artifacts from
// an older EngineVersion or a drifted registry refuse to reduce instead
// of folding stale blocks), re-executes the workload with the engine in
// replay mode, and renders the byte-identical single-process result.
//
// Checkpointing reuses the artifact format unchanged: a checkpoint is
// simply an artifact whose streams stop at the persisted frontier and
// whose header says complete=false. Writes are atomic (tmp + rename), so
// a kill during a checkpoint leaves the previous one intact.
package core

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"mpsram/internal/exp"
	"mpsram/internal/mc"
)

// shardMagic identifies (and versions) the artifact container; a format
// change gets a new magic, old files refuse loudly.
var shardMagic = []byte("mpshard1")

// ShardArtifactName is the conventional artifact filename for one shard
// of a run: the run key plus the shard coordinates, so a scratch
// directory shared between restarts (the serve layer's fan-out dir) maps
// each in-flight shard to exactly one resumable file.
func ShardArtifactName(runKey string, index, count int) string {
	return fmt.Sprintf("%s.shard%d-of%d", runKey, index, count)
}

// ShardHeader is the artifact's identity block.
type ShardHeader struct {
	RunKey        string     `json:"run_key"`
	EngineVersion string     `json:"engine_version"`
	Workload      string     `json:"workload"`
	Params        exp.Params `json:"params"`
	Process       string     `json:"process"`
	Seed          int64      `json:"seed"`
	Samples       int        `json:"samples"`
	FastSeed      bool       `json:"fastseed"`
	ShardIndex    int        `json:"shard_index"`
	ShardCount    int        `json:"shard_count"`
	// Complete marks a finished shard; false marks a resumable
	// checkpoint. Reduce requires complete artifacts.
	Complete bool `json:"complete"`
}

// spec rebuilds the RunSpec the artifact identifies.
func (h ShardHeader) spec() RunSpec {
	return RunSpec{Workload: h.Workload, Params: h.Params, Process: h.Process, Seed: h.Seed, Samples: h.Samples, FastSeed: h.FastSeed}
}

// ShardArtifact is one decoded artifact or checkpoint file.
type ShardArtifact struct {
	Header  ShardHeader
	Payload *mc.ShardPayload
}

// WriteShardArtifactTo encodes header+payload in the artifact container
// format onto any writer — the same bytes writeShardArtifact persists to
// disk, which is what lets the remote shard fabric stream artifacts over
// HTTP and have both ends agree bit for bit with the on-disk form.
func WriteShardArtifactTo(w io.Writer, h ShardHeader, payload []byte) error {
	hdr, err := json.Marshal(h)
	if err != nil {
		return fmt.Errorf("core: encoding shard header: %w", err)
	}
	buf := make([]byte, 0, len(shardMagic)+4+len(hdr)+len(payload))
	buf = append(buf, shardMagic...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(hdr)))
	buf = append(buf, hdr...)
	buf = append(buf, payload...)
	_, err = w.Write(buf)
	return err
}

// writeShardArtifact persists header+payload atomically: a kill mid-write
// can only ever lose the newest checkpoint, never corrupt the file.
func writeShardArtifact(path string, h ShardHeader, payload []byte) error {
	var buf bytes.Buffer
	if err := WriteShardArtifactTo(&buf, h, payload); err != nil {
		return err
	}
	return WriteShardArtifactFile(path, buf.Bytes())
}

// WriteShardArtifactFile persists already-encoded artifact bytes
// atomically (tmp + rename), the same write discipline writeShardArtifact
// uses — the remote fabric's coordinator lands received artifact and
// checkpoint bytes through it so a crash mid-write never corrupts a
// resumable file.
func WriteShardArtifactFile(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadShardArtifactFrom parses an artifact or checkpoint from any
// reader, rejecting foreign magics, truncated headers, engine-version
// drift and corrupt payloads. ReadShardArtifact is the path flavor; this
// one decodes artifact bytes arriving over a network stream.
func ReadShardArtifactFrom(r io.Reader) (*ShardArtifact, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) < len(shardMagic)+4 || string(data[:len(shardMagic)]) != string(shardMagic) {
		return nil, fmt.Errorf("core: not a shard artifact (magic %q missing)", shardMagic)
	}
	rest := data[len(shardMagic):]
	hlen := int(binary.BigEndian.Uint32(rest))
	rest = rest[4:]
	if hlen < 2 || hlen > len(rest) {
		return nil, fmt.Errorf("core: shard header truncated")
	}
	var h ShardHeader
	if err := json.Unmarshal(rest[:hlen], &h); err != nil {
		return nil, fmt.Errorf("core: shard header: %w", err)
	}
	if h.EngineVersion != EngineVersion {
		return nil, fmt.Errorf("core: artifact was produced by engine %s, this build is %s — regenerate the shards", h.EngineVersion, EngineVersion)
	}
	p, err := mc.DecodeShardPayload(rest[hlen:])
	if err != nil {
		return nil, err
	}
	return &ShardArtifact{Header: h, Payload: p}, nil
}

// ReadShardArtifact parses a shard artifact or checkpoint file,
// rejecting foreign magics, truncated headers and corrupt payloads.
func ReadShardArtifact(path string) (*ShardArtifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	a, err := ReadShardArtifactFrom(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

// Verify checks that the artifact is what a caller expecting (runKey,
// shard) should accept: the coordinates match, and the header's spec
// still reproduces its recorded run key under the current engines — the
// same recomputation Reduce performs, pulled out so both ends of the
// remote shard fabric can refuse drifted or foreign artifacts before any
// bytes land in a reduce set. An empty runKey skips the caller-side key
// comparison and only validates internal consistency.
func (a *ShardArtifact) Verify(runKey string, shard mc.ShardSpec) error {
	h := a.Header
	if h.ShardIndex != shard.Index || h.ShardCount != shard.Count {
		return fmt.Errorf("core: artifact covers shard %d/%d, want %d/%d", h.ShardIndex, h.ShardCount, shard.Index, shard.Count)
	}
	key, err := h.spec().Key()
	if err != nil {
		return fmt.Errorf("core: artifact spec no longer validates: %w", err)
	}
	if key != h.RunKey {
		return fmt.Errorf("core: artifact run key %s does not reproduce under the current engines (%s) — regenerate the shards", h.RunKey[:12], key[:12])
	}
	if runKey != "" && key != runKey {
		return fmt.Errorf("core: artifact belongs to run %s, want %s", h.RunKey[:12], runKey[:12])
	}
	return nil
}

// withShardRun / withReplay install the engine hooks after the spec's
// WithMC has built the base config; unexported because the public
// surface is RunShard and Reduce.
func withShardRun(sr *mc.ShardRun) Option { return func(e *exp.Env) { e.MC.Shard = sr } }
func withReplay(rp *mc.Replay) Option     { return func(e *exp.Env) { e.MC.Replay = rp } }

// ShardRunOptions tunes RunShard.
type ShardRunOptions struct {
	// CheckpointEvery, when positive, persists the running artifact (as
	// an incomplete checkpoint) whenever at least this much wall time has
	// passed since the previous write. Zero disables periodic writes; the
	// frontier is still persisted on error exit and the full artifact on
	// success.
	CheckpointEvery time.Duration
	// Resume loads an existing artifact at the output path and continues
	// after its frontier instead of starting over. A complete artifact
	// short-circuits to success; a missing file starts fresh.
	Resume bool
	// Progress, if non-nil, receives the shard's trial frontier (done and
	// total trials across the streams begun so far, resumed records
	// included) each time it advances — serialized by the scheduler, like
	// CheckpointEvery's writes. It is also invoked once before execution
	// starts, so a resumed shard reports its checkpointed frontier
	// immediately.
	Progress func(done, total int)
}

// RunShard executes the shard's block range of every stream in the
// spec's workload and writes the partial-aggregate artifact to path. On
// any error — including cancellation — the contiguous frontier reached
// so far is persisted as a resumable checkpoint before the error is
// returned, so an interrupted run never loses completed blocks.
func RunShard(spec RunSpec, shard mc.ShardSpec, path string, opt ShardRunOptions, extra ...Option) error {
	if err := shard.Validate(); err != nil {
		return err
	}
	n, err := spec.Normalize()
	if err != nil {
		return err
	}
	key, err := n.Key()
	if err != nil {
		return err
	}
	hdr := ShardHeader{
		RunKey: key, EngineVersion: EngineVersion,
		Workload: n.Workload, Params: n.Params, Process: n.Process,
		Seed: n.Seed, Samples: n.Samples, FastSeed: n.FastSeed,
		ShardIndex: shard.Index, ShardCount: shard.Count,
	}
	var sr *mc.ShardRun
	if opt.Resume {
		switch art, rerr := ReadShardArtifact(path); {
		case rerr == nil:
			if art.Header.RunKey != key || art.Header.ShardIndex != shard.Index || art.Header.ShardCount != shard.Count {
				return fmt.Errorf("core: %s belongs to a different run or shard (run %s shard %d/%d, want %s shard %d/%d)",
					path, art.Header.RunKey[:12], art.Header.ShardIndex, art.Header.ShardCount, key[:12], shard.Index, shard.Count)
			}
			if art.Header.Complete {
				return nil // nothing to resume — the shard already finished
			}
			if sr, err = mc.ResumeShardRun(shard, art.Payload); err != nil {
				return err
			}
		case errors.Is(rerr, os.ErrNotExist):
			// fresh start below
		default:
			return rerr
		}
	}
	if sr == nil {
		if sr, err = mc.NewShardRun(shard); err != nil {
			return err
		}
	}
	sr.Progress = opt.Progress
	if opt.Progress != nil {
		opt.Progress(sr.Frontier())
	}
	var ckptErr error
	if opt.CheckpointEvery > 0 {
		last := time.Now()
		sr.Checkpoint = func() {
			if time.Since(last) < opt.CheckpointEvery {
				return
			}
			last = time.Now()
			if werr := writeShardArtifact(path, hdr, sr.EncodePayload()); werr != nil && ckptErr == nil {
				ckptErr = werr
			}
		}
	}
	_, runErr := n.Run(append(append([]Option(nil), extra...), withShardRun(sr))...)
	if runErr != nil {
		// Persist the frontier before reporting, so SIGINT + resume works
		// even without periodic checkpoints.
		return errors.Join(runErr, writeShardArtifact(path, hdr, sr.EncodePayload()), ckptErr)
	}
	hdr.Complete = true
	return errors.Join(writeShardArtifact(path, hdr, sr.EncodePayload()), ckptErr)
}

// Reduce re-merges one complete shard set in block order and returns the
// workload result — byte-identical to running the spec single-process.
// The artifacts carry the full run identity, so no spec is needed; the
// recomputed run key must match the recorded one, which catches stale
// artifacts (engine bumps, parameter-schema drift) automatically.
func Reduce(paths []string, extra ...Option) (*exp.Result, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("core: no shard artifacts to reduce")
	}
	arts := make([]*ShardArtifact, len(paths))
	for i, p := range paths {
		a, err := ReadShardArtifact(p)
		if err != nil {
			return nil, err
		}
		if !a.Header.Complete {
			return nil, fmt.Errorf("core: %s is an incomplete checkpoint — resume it with RunShard before reducing", p)
		}
		arts[i] = a
	}
	base := arts[0].Header
	count := base.ShardCount
	if len(paths) != count {
		return nil, fmt.Errorf("core: run %s was split into %d shards, got %d artifacts", base.RunKey[:12], count, len(paths))
	}
	parts := make([]*mc.ShardPayload, count)
	for i, a := range arts {
		h := a.Header
		if h.RunKey != base.RunKey || h.ShardCount != count {
			return nil, fmt.Errorf("core: %s belongs to run %s (%d shards), the set is run %s (%d shards)",
				paths[i], h.RunKey[:12], h.ShardCount, base.RunKey[:12], count)
		}
		if h.ShardIndex < 0 || h.ShardIndex >= count {
			return nil, fmt.Errorf("core: %s claims shard %d of %d", paths[i], h.ShardIndex, count)
		}
		if parts[h.ShardIndex] != nil {
			return nil, fmt.Errorf("core: duplicate artifact for shard %d of run %s", h.ShardIndex, base.RunKey[:12])
		}
		parts[h.ShardIndex] = a.Payload
	}
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("core: shard %d of run %s is missing from the artifact set", i, base.RunKey[:12])
		}
	}
	spec := base.spec()
	key, err := spec.Key()
	if err != nil {
		return nil, fmt.Errorf("core: artifact spec no longer validates: %w", err)
	}
	if key != base.RunKey {
		return nil, fmt.Errorf("core: artifact run key %s does not reproduce under the current engines (%s) — regenerate the shards", base.RunKey[:12], key[:12])
	}
	rp, err := mc.NewReplay(parts)
	if err != nil {
		return nil, err
	}
	res, err := spec.Run(append(append([]Option(nil), extra...), withReplay(rp))...)
	if err != nil {
		return nil, err
	}
	if err := rp.Done(); err != nil {
		return nil, err
	}
	return res, nil
}
