package core

import (
	"path/filepath"
	"strconv"
	"testing"

	"mpsram/internal/mc"
)

// BenchmarkShardRun measures one shard's share of a heavy analytic run:
// executing 1-of-3 of fig5's Monte-Carlo stream and persisting the
// artifact. Three of these (parallelizable across cores or hosts) plus
// one BenchmarkShardReduce replace one direct run.
func BenchmarkShardRun(b *testing.B) {
	spec := RunSpec{Workload: "fig5", Samples: 30000}
	dir := b.TempDir()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		path := filepath.Join(dir, "bench-"+strconv.Itoa(i)+".shard")
		if err := RunShard(spec, mc.ShardSpec{Index: 0, Count: 3}, path,
			ShardRunOptions{}, WithWorkers(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardReduce measures the serial tail of a fan-out: replaying
// three complete fig5 shard artifacts through the exact left-fold into
// the final result. This is the part that cannot parallelize — its cost
// relative to BenchmarkShardRun bounds the achievable speedup.
func BenchmarkShardReduce(b *testing.B) {
	spec := RunSpec{Workload: "fig5", Samples: 30000}
	dir := b.TempDir()
	paths := make([]string, 3)
	for i := range paths {
		paths[i] = filepath.Join(dir, "part-"+strconv.Itoa(i)+".shard")
		if err := RunShard(spec, mc.ShardSpec{Index: i, Count: 3}, paths[i],
			ShardRunOptions{}, WithWorkers(1)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Reduce(paths, WithWorkers(1)); err != nil {
			b.Fatal(err)
		}
	}
}
