// Package core is the public facade of the mpsram library: one Study
// object that wires the technology description, the patterning engines,
// the parasitic extractor, the SPICE simulator, the analytical model and
// the Monte-Carlo machinery into the paper's experiments.
//
// Typical use:
//
//	study, _ := core.NewStudy()
//	rows, _ := study.WorstCases()            // Table I
//	td, _ := study.ReadTime(litho.LE3, s, 64) // one SPICE read
//	sig, _ := study.SigmaTable()             // Table IV
//	study.RunAll(os.Stdout)                  // every table and figure
package core

import (
	"context"
	"fmt"
	"io"

	"mpsram/internal/analytic"
	"mpsram/internal/exp"
	"mpsram/internal/extract"
	"mpsram/internal/litho"
	"mpsram/internal/mc"
	"mpsram/internal/sram"
	"mpsram/internal/stats"
	"mpsram/internal/tech"
)

// Study is a configured reproduction environment.
type Study struct {
	Env exp.Env
}

// Option customizes a Study.
type Option func(*exp.Env)

// WithProcess replaces the primary technology preset.
func WithProcess(p tech.Process) Option { return func(e *exp.Env) { e.Proc = p } }

// WithProcesses replaces the node comparison set of the cross-process
// experiments (Nodes, SigmaSurfaces). The default set is the full
// registry: N10, N7, N5.
func WithProcesses(procs ...tech.Process) Option {
	return func(e *exp.Env) { e.Procs = append([]tech.Process(nil), procs...) }
}

// LookupProcess resolves a preset name against the default registry. An
// unknown name returns an error listing the valid names — CLIs should
// surface it verbatim.
func LookupProcess(name string) (tech.Process, error) {
	return tech.Default().Lookup(name)
}

// ProcessNames returns the default registry's preset names in order.
func ProcessNames() []string { return tech.Default().Names() }

// WithCapModel selects the capacitance model (default Sakurai–Tamaru).
func WithCapModel(cm extract.CapModel) Option { return func(e *exp.Env) { e.Cap = cm } }

// WithMC overrides the Monte-Carlo configuration. A progress callback
// already installed with WithProgress survives unless cfg brings its own,
// so the two options compose in either order.
func WithMC(cfg mc.Config) Option {
	return func(e *exp.Env) {
		if cfg.Progress == nil {
			cfg.Progress = e.MC.Progress
		}
		e.MC = cfg
	}
}

// WithOverlay sets the LE3 overlay 3σ budget in metres.
func WithOverlay(ol float64) Option { return func(e *exp.Env) { e.Proc = e.Proc.WithOL(ol) } }

// WithBuild overrides the SRAM column construction options.
func WithBuild(b sram.BuildOptions) Option { return func(e *exp.Env) { e.Build = b } }

// WithContext attaches a cancellation context to the Monte-Carlo
// experiments: canceling it aborts a running study between trial blocks.
func WithContext(ctx context.Context) Option { return func(e *exp.Env) { e.Ctx = ctx } }

// WithProgress installs a progress callback on both engines: the
// Monte-Carlo engine invokes it as trial blocks complete and the SPICE
// sweep engine as transients complete, each with (done, total). Both
// serialize their calls with strictly increasing done values; a new
// stream restarts from a lower done.
func WithProgress(fn func(done, total int)) Option {
	return func(e *exp.Env) {
		e.MC.Progress = fn
		e.Sweep.Progress = fn
	}
}

// WithWorkers sets the worker-pool size of both the Monte-Carlo and the
// SPICE sweep engines (0 = GOMAXPROCS). Results are bit-identical for any
// worker count.
func WithWorkers(n int) Option {
	return func(e *exp.Env) {
		e.MC.Workers = n
		e.Sweep.Workers = n
	}
}

// NewStudy builds a study on the N10 preset with the paper's defaults
// and the full node registry as the cross-process comparison set.
func NewStudy(opts ...Option) (*Study, error) {
	env := exp.DefaultEnv()
	for _, o := range opts {
		o(&env)
	}
	if err := env.Proc.Validate(); err != nil {
		return nil, err
	}
	for _, p := range env.Procs {
		if err := p.Validate(); err != nil {
			return nil, err
		}
	}
	if env.Cap == nil {
		return nil, fmt.Errorf("core: nil capacitance model")
	}
	return &Study{Env: env}, nil
}

// Model returns the analytical formula parameters for this study.
func (s *Study) Model() (analytic.Params, error) { return s.Env.Model() }

// WorstCases runs the Table I corner search.
func (s *Study) WorstCases() ([]exp.Table1Row, error) { return exp.Table1(s.Env) }

// Distortions runs the Fig. 2 worst-case geometry dump.
func (s *Study) Distortions() ([]exp.Fig2Entry, error) { return exp.Fig2(s.Env) }

// ArrayOverview runs the Fig. 3 DOE floorplans.
func (s *Study) ArrayOverview() ([]exp.Fig3Row, error) { return exp.Fig3(s.Env) }

// TdVsSize runs the Fig. 4 SPICE sweep.
func (s *Study) TdVsSize() ([]exp.Fig4Point, error) { return exp.Fig4(s.Env) }

// SpiceTables runs Fig. 4, Table II and Table III as views over one
// shared, deduplicated SPICE sweep: every unique transient (one nominal
// per DOE size, one worst case per option and size) is simulated exactly
// once and consumed by all three reproductions.
func (s *Study) SpiceTables() (*exp.SpiceResults, error) { return exp.SpiceTables(s.Env) }

// TdnomComparison runs Table II.
func (s *Study) TdnomComparison() ([]exp.Table2Row, error) { return exp.Table2(s.Env) }

// TdpComparison runs Table III.
func (s *Study) TdpComparison() ([]exp.Table3Row, error) { return exp.Table3(s.Env) }

// Distribution runs the Fig. 5 Monte-Carlo at the paper's 8 nm / n=64.
func (s *Study) Distribution() ([]exp.Fig5Result, error) {
	return exp.Fig5(s.Env, 8e-9, 64)
}

// SigmaTable runs Table IV.
func (s *Study) SigmaTable() ([]mc.SigmaSweepRow, error) { return exp.Table4(s.Env) }

// SigmaSurface runs the extended Table IV: tdp σ per option and overlay
// budget at every DOE array size, one shared sample stream per option.
func (s *Study) SigmaSurface() ([]mc.SigmaSurfaceRow, error) { return exp.Table4Surface(s.Env) }

// SigmaSurfaces runs the extended Table IV on every process of the
// study's node set: one σ surface per node.
func (s *Study) SigmaSurfaces() ([]mc.ProcessSurface, error) { return exp.Table4Surfaces(s.Env) }

// Nodes runs the cross-node σ comparison (Table IV layout with the
// process as the horizontal axis) at the paper's n = 64.
func (s *Study) Nodes() ([]exp.NodesRow, error) { return exp.Nodes(s.Env) }

// NodesAt is Nodes at an explicit array size.
func (s *Study) NodesAt(n int) ([]exp.NodesRow, error) { return exp.NodesAt(s.Env, n) }

// SpiceMC runs the SPICE-in-the-loop Monte-Carlo at the given array
// sizes: one full read transient per draw and size, on per-worker
// resident engines. The transient budget is Samples × len(sizes) per
// option, so this wants a budget of hundreds of samples rather than the
// analytic default of ten thousand.
func (s *Study) SpiceMC(sizes []int) ([]exp.SpiceMCRow, error) { return exp.SpiceMC(s.Env, sizes) }

// ReadTime simulates one read and returns td for option o under variation
// sample smp at array size n.
func (s *Study) ReadTime(o litho.Option, smp litho.Sample, n int) (float64, error) {
	return sram.SimulateTd(s.Env.Proc, o, smp, s.Env.Cap, n, s.Env.Build, s.Env.Sim)
}

// Ratios extracts the variability ratios for a sample.
func (s *Study) Ratios(o litho.Option, smp litho.Sample) (extract.Ratios, error) {
	return extract.VarRatios(s.Env.Proc, o, smp, s.Env.Cap)
}

// TdpDistribution runs a Monte-Carlo tdp distribution at array size n for
// option o with this study's sample budget.
func (s *Study) TdpDistribution(o litho.Option, n int) (stats.Summary, error) {
	m, err := s.Model()
	if err != nil {
		return stats.Summary{}, err
	}
	ctx := s.Env.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	res, err := mc.TdpDistributionCtx(ctx, s.Env.Proc, o, m, s.Env.Cap, n, s.Env.MC)
	if err != nil {
		return stats.Summary{}, err
	}
	return res.Summary, nil
}

// RunAll executes every experiment and writes the paper-style report.
func (s *Study) RunAll(w io.Writer) error {
	t1, err := s.WorstCases()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, exp.FormatTable1(t1))
	f2, err := s.Distortions()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, exp.FormatFig2(f2))
	f3, err := s.ArrayOverview()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, exp.FormatFig3(f3))
	// The three SPICE-driven reproductions share one deduplicated sweep:
	// every unique transient runs exactly once per RunAll invocation.
	sp, err := s.SpiceTables()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, exp.FormatFig4(sp.Fig4))
	fmt.Fprintln(w, exp.FormatTable2(sp.Table2))
	fmt.Fprintln(w, exp.FormatTable3(sp.Table3))
	f5, err := s.Distribution()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, exp.FormatFig5(f5))
	t4, err := s.SigmaTable()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, exp.FormatTable4(t4))
	return nil
}
