// Package core is the public facade of the mpsram library: one Study
// object that wires the technology description, the patterning engines,
// the parasitic extractor, the SPICE simulator, the analytical model and
// the Monte-Carlo machinery into the paper's experiments.
//
// Experiments are addressed through the workload registry: Run executes
// any registered workload by name with typed, schema-validated
// parameters, Workloads lists the registry, and RunAll executes the
// paper-order plan. Typical use:
//
//	study, _ := core.NewStudy()
//	res, _ := study.Run("table4", nil)        // Table IV as a Result
//	res.Write(os.Stdout, report.FormatJSON)   // any format, one encoder
//	td, _ := study.ReadTime(litho.LE3, s, 64) // one SPICE read
//	study.RunAll(os.Stdout)                   // every table and figure
//
// The per-experiment convenience methods (WorstCases, SigmaTable, …)
// remain as deprecation shims over Run: same signatures, same results,
// byte-identical outputs. New experiments only appear as workloads; the
// shim set is frozen and will not grow.
package core

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mpsram/internal/analytic"
	"mpsram/internal/exp"
	"mpsram/internal/extract"
	"mpsram/internal/litho"
	"mpsram/internal/mc"
	"mpsram/internal/sram"
	"mpsram/internal/stats"
	"mpsram/internal/tech"
)

// Study is a configured reproduction environment.
type Study struct {
	Env exp.Env
}

// Option customizes a Study.
type Option func(*exp.Env)

// WithProcess replaces the primary technology preset.
func WithProcess(p tech.Process) Option { return func(e *exp.Env) { e.Proc = p } }

// WithProcesses replaces the node comparison set of the cross-process
// experiments (Nodes, SigmaSurfaces). The default set is the full
// registry: N10, N7, N5.
func WithProcesses(procs ...tech.Process) Option {
	return func(e *exp.Env) { e.Procs = append([]tech.Process(nil), procs...) }
}

// LookupProcess resolves a preset name against the default registry. An
// unknown name returns an error listing the valid names — CLIs should
// surface it verbatim.
func LookupProcess(name string) (tech.Process, error) {
	return tech.Default().Lookup(name)
}

// ProcessNames returns the default registry's preset names in order.
func ProcessNames() []string { return tech.Default().Names() }

// WithCapModel selects the capacitance model (default Sakurai–Tamaru).
func WithCapModel(cm extract.CapModel) Option { return func(e *exp.Env) { e.Cap = cm } }

// WithMC overrides the Monte-Carlo configuration. A progress callback
// already installed with WithProgress survives unless cfg brings its own,
// so the two options compose in either order.
func WithMC(cfg mc.Config) Option {
	return func(e *exp.Env) {
		if cfg.Progress == nil {
			cfg.Progress = e.MC.Progress
		}
		e.MC = cfg
	}
}

// WithOverlay sets the LE3 overlay 3σ budget in metres.
func WithOverlay(ol float64) Option { return func(e *exp.Env) { e.Proc = e.Proc.WithOL(ol) } }

// WithBuild overrides the SRAM column construction options.
func WithBuild(b sram.BuildOptions) Option { return func(e *exp.Env) { e.Build = b } }

// WithContext attaches a cancellation context to the Monte-Carlo
// experiments: canceling it aborts a running study between trial blocks.
func WithContext(ctx context.Context) Option { return func(e *exp.Env) { e.Ctx = ctx } }

// WithProgress installs a progress callback on both engines: the
// Monte-Carlo engine invokes it as trial blocks complete and the SPICE
// sweep engine as transients complete, each with (done, total). Both
// serialize their calls with strictly increasing done values; a new
// stream restarts from a lower done.
func WithProgress(fn func(done, total int)) Option {
	return func(e *exp.Env) {
		e.MC.Progress = fn
		e.Sweep.Progress = fn
	}
}

// WithWorkers sets the worker-pool size of both the Monte-Carlo and the
// SPICE sweep engines (0 = GOMAXPROCS). Results are bit-identical for any
// worker count.
func WithWorkers(n int) Option {
	return func(e *exp.Env) {
		e.MC.Workers = n
		e.Sweep.Workers = n
	}
}

// NewStudy builds a study on the N10 preset with the paper's defaults
// and the full node registry as the cross-process comparison set.
func NewStudy(opts ...Option) (*Study, error) {
	env := exp.DefaultEnv()
	for _, o := range opts {
		o(&env)
	}
	if err := env.Proc.Validate(); err != nil {
		return nil, err
	}
	for _, p := range env.Procs {
		if err := p.Validate(); err != nil {
			return nil, err
		}
	}
	if env.Cap == nil {
		return nil, fmt.Errorf("core: nil capacitance model")
	}
	return &Study{Env: env}, nil
}

// Run executes a registered workload by name with schema-validated
// parameters — the one experiment surface. The environment's context,
// budget, process and worker configuration all apply; the result carries
// the typed rows, the tabular view for the shared csv/md/json encoders
// and the paper-style text.
func (s *Study) Run(name string, p exp.Params) (*exp.Result, error) {
	return exp.Run(nil, s.Env, name, p)
}

// Workloads lists the experiment registry in listing order.
func (s *Study) Workloads() []exp.Workload { return exp.Workloads() }

// Model returns the analytical formula parameters for this study.
func (s *Study) Model() (analytic.Params, error) { return s.Env.Model() }

// data runs a workload and type-asserts its typed rows — the shim path
// of the deprecated per-experiment methods.
func data[T any](s *Study, name string, p exp.Params) (T, error) {
	res, err := s.Run(name, p)
	if err != nil {
		var zero T
		return zero, err
	}
	return res.Data.(T), nil
}

// WorstCases runs the Table I corner search.
//
// Deprecated: use Run("table1", nil).
func (s *Study) WorstCases() ([]exp.Table1Row, error) {
	return data[[]exp.Table1Row](s, "table1", nil)
}

// Distortions runs the Fig. 2 worst-case geometry dump.
//
// Deprecated: use Run("fig2", nil).
func (s *Study) Distortions() ([]exp.Fig2Entry, error) {
	return data[[]exp.Fig2Entry](s, "fig2", nil)
}

// ArrayOverview runs the Fig. 3 DOE floorplans.
//
// Deprecated: use Run("fig3", nil).
func (s *Study) ArrayOverview() ([]exp.Fig3Row, error) {
	return data[[]exp.Fig3Row](s, "fig3", nil)
}

// TdVsSize runs the Fig. 4 SPICE sweep.
//
// Deprecated: use Run("fig4", nil).
func (s *Study) TdVsSize() ([]exp.Fig4Point, error) {
	return data[[]exp.Fig4Point](s, "fig4", nil)
}

// SpiceTables runs Fig. 4, Table II and Table III as views over one
// shared, deduplicated SPICE sweep: every unique transient (one nominal
// per DOE size, one worst case per option and size) is simulated exactly
// once and consumed by all three reproductions.
//
// Deprecated: use Run("spicetables", nil).
func (s *Study) SpiceTables() (*exp.SpiceResults, error) {
	return data[*exp.SpiceResults](s, "spicetables", nil)
}

// TdnomComparison runs Table II.
//
// Deprecated: use Run("table2", nil).
func (s *Study) TdnomComparison() ([]exp.Table2Row, error) {
	return data[[]exp.Table2Row](s, "table2", nil)
}

// TdpComparison runs Table III.
//
// Deprecated: use Run("table3", nil).
func (s *Study) TdpComparison() ([]exp.Table3Row, error) {
	return data[[]exp.Table3Row](s, "table3", nil)
}

// Distribution runs the Fig. 5 Monte-Carlo at the paper's 8 nm / n=64.
//
// Deprecated: use Run("fig5", …) with the n and ol parameters.
func (s *Study) Distribution() ([]exp.Fig5Result, error) {
	return data[[]exp.Fig5Result](s, "fig5", exp.Params{"n": 64, "ol": 8.0})
}

// SigmaTable runs Table IV.
//
// Deprecated: use Run("table4", nil).
func (s *Study) SigmaTable() ([]mc.SigmaSweepRow, error) {
	return data[[]mc.SigmaSweepRow](s, "table4", nil)
}

// SigmaSurface runs the extended Table IV: tdp σ per option and overlay
// budget at every DOE array size, one shared sample stream per option.
//
// Deprecated: use Run("table4x", nil).
func (s *Study) SigmaSurface() ([]mc.SigmaSurfaceRow, error) {
	return data[[]mc.SigmaSurfaceRow](s, "table4x", nil)
}

// SigmaSurfaces runs the extended Table IV on every process of the
// study's node set: one σ surface per node.
//
// Deprecated: use Run("table4xp", nil).
func (s *Study) SigmaSurfaces() ([]mc.ProcessSurface, error) {
	return data[[]mc.ProcessSurface](s, "table4xp", nil)
}

// Nodes runs the cross-node σ comparison (Table IV layout with the
// process as the horizontal axis) at the paper's n = 64.
//
// Deprecated: use Run("nodes", nil).
func (s *Study) Nodes() ([]exp.NodesRow, error) {
	return data[[]exp.NodesRow](s, "nodes", nil)
}

// NodesAt is Nodes at an explicit array size.
//
// Deprecated: use Run("nodes", …) with the n parameter.
func (s *Study) NodesAt(n int) ([]exp.NodesRow, error) {
	return data[[]exp.NodesRow](s, "nodes", exp.Params{"n": n})
}

// SpiceMC runs the SPICE-in-the-loop Monte-Carlo at the given array
// sizes: one full read transient per draw and size, on per-worker
// resident engines. The transient budget is Samples × len(sizes) per
// option, so this wants a budget of hundreds of samples rather than the
// analytic default of ten thousand.
//
// Deprecated: use Run("mcspice", …) with the sizes parameter.
func (s *Study) SpiceMC(sizes []int) ([]exp.SpiceMCRow, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("core: no array sizes requested")
	}
	specs := make([]string, len(sizes))
	for i, n := range sizes {
		specs[i] = strconv.Itoa(n)
	}
	return data[[]exp.SpiceMCRow](s, "mcspice", exp.Params{"sizes": strings.Join(specs, ",")})
}

// ReadTime simulates one read and returns td for option o under variation
// sample smp at array size n.
func (s *Study) ReadTime(o litho.Option, smp litho.Sample, n int) (float64, error) {
	return sram.SimulateTd(s.Env.Proc, o, smp, s.Env.Cap, n, s.Env.Build, s.Env.Sim)
}

// Ratios extracts the variability ratios for a sample.
func (s *Study) Ratios(o litho.Option, smp litho.Sample) (extract.Ratios, error) {
	return extract.VarRatios(s.Env.Proc, o, smp, s.Env.Cap)
}

// TdpDistribution runs a Monte-Carlo tdp distribution at array size n for
// option o with this study's sample budget.
func (s *Study) TdpDistribution(o litho.Option, n int) (stats.Summary, error) {
	m, err := s.Model()
	if err != nil {
		return stats.Summary{}, err
	}
	ctx := s.Env.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	res, err := mc.TdpDistributionCtx(ctx, s.Env.Proc, o, m, s.Env.Cap, n, s.Env.MC)
	if err != nil {
		return stats.Summary{}, err
	}
	return res.Summary, nil
}

// RunAll executes every experiment of the paper-order plan — the
// registry workloads marked for it, including the shared-sweep
// spicetables composite — and writes the paper-style report.
func (s *Study) RunAll(w io.Writer) error {
	res, err := s.Run("all", nil)
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, res.Text)
	return err
}
