// RunSpec: the canonical identity of one deterministic experiment
// execution, and the run-key hashing behind the serve layer's
// content-addressed result cache. Every engine in this repository is
// bit-deterministic in (workload, parameters, seed, sample budget,
// process, PRNG stream) — worker counts never change results — so those
// fields, plus an engine version that moves when the numerics move, ARE
// the identity of a result. Two specs with equal keys produce
// byte-identical rendered output.
package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"mpsram/internal/exp"
	"mpsram/internal/mc"
	"mpsram/internal/tech"
)

// EngineVersion names the current bit-level behaviour of the execution
// engines. It is part of every run key: bump it whenever a change alters
// numeric results (i.e. whenever the golden CSVs under
// internal/exp/testdata/golden are regenerated with different values),
// so stale cached results age out by key instead of being served as
// current. Pure refactors that keep the goldens byte-identical must NOT
// bump it — cache continuity across deploys is the point.
const EngineVersion = "v1"

// DefaultSeed is the repository-wide Monte-Carlo seed (the paper year);
// a RunSpec with Seed 0 normalizes to it, mirroring the CLI default.
const DefaultSeed = 2015

// DefaultSamples is the analytic Monte-Carlo budget used when neither
// the spec nor the workload's budget hint chooses one.
const DefaultSamples = 10000

// RunSpec identifies one deterministic workload execution. The zero
// value of every optional field means "the default": empty Process is
// the registry's N10, Seed 0 is DefaultSeed, Samples 0 adopts the
// workload's Hints.Samples budget (or DefaultSamples without one), and a
// nil Params map takes every schema default. Worker counts are absent on
// purpose — results are bit-identical for any worker count, so they are
// execution detail, not identity.
type RunSpec struct {
	Workload string
	Params   exp.Params
	Process  string
	Seed     int64
	Samples  int
	FastSeed bool
}

// Normalize resolves the spec to its canonical form: the workload name
// validated against the registry, parameters schema-coerced and
// default-filled (exp.NormalizeParams), the process name trimmed,
// case-folded and replaced by the registry's canonical spelling, and the
// seed and sample budget defaulted. Two specs that denote the same run
// normalize to equal specs; errors carry the registries' valid-names
// text so HTTP handlers can surface them verbatim.
func (s RunSpec) Normalize() (RunSpec, error) {
	out := s
	w, err := exp.LookupWorkload(strings.TrimSpace(s.Workload))
	if err != nil {
		return RunSpec{}, err
	}
	out.Workload = w.Name
	if out.Params, err = exp.NormalizeParams(w.Name, s.Params); err != nil {
		return RunSpec{}, err
	}
	name := strings.TrimSpace(s.Process)
	if name == "" {
		// DefaultEnv's primary process — the paper's N10 preset.
		name = tech.N10().Name
	}
	proc, err := tech.Default().Lookup(name)
	if err != nil {
		return RunSpec{}, err
	}
	out.Process = proc.Name
	if out.Seed == 0 {
		out.Seed = DefaultSeed
	}
	if out.Samples <= 0 {
		if w.Hints.Samples > 0 {
			out.Samples = w.Hints.Samples
		} else {
			out.Samples = DefaultSamples
		}
	}
	return out, nil
}

// EstimatedCost scores a spec's execution cost in analytic-trial
// equivalents: the normalized sample budget times the workload's
// Hints.Cost weight. Zero means the workload declared no per-sample cost
// — its runtime is not dominated by the shardable Monte-Carlo stream
// (analytic corner studies, pure SPICE sweeps, registry listings) — so
// schedulers deciding whether to fan a run out over shards should leave
// it single-process.
func (s RunSpec) EstimatedCost() (float64, error) {
	n, err := s.Normalize()
	if err != nil {
		return 0, err
	}
	w, err := exp.LookupWorkload(n.Workload)
	if err != nil {
		return 0, err
	}
	return float64(n.Samples) * w.Hints.Cost, nil
}

// canonical renders a normalized spec as the frozen pre-image of Key.
func (s RunSpec) canonical() string {
	return fmt.Sprintf("mpsram-run|engine=%s|workload=%s|process=%s|seed=%d|samples=%d|fastseed=%t|params=%s",
		EngineVersion, s.Workload, s.Process, s.Seed, s.Samples, s.FastSeed,
		exp.CanonicalParams(s.Params))
}

// Key normalizes the spec and returns its content address: the SHA-256
// hex digest of the canonical rendering. Equal keys guarantee
// byte-identical results (same engines, same inputs, same PRNG stream),
// which is the whole contract the serve layer's result cache and
// single-flight dedup rest on.
func (s RunSpec) Key() (string, error) {
	n, err := s.Normalize()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256([]byte(n.canonical()))
	return hex.EncodeToString(sum[:]), nil
}

// NewStudy builds a Study configured exactly as the normalized spec
// describes (process preset, Monte-Carlo seed/budget/stream); extra
// options — context, progress, worker counts — apply on top and must not
// change results (they are not part of the key).
func (s RunSpec) NewStudy(extra ...Option) (*Study, error) {
	n, err := s.Normalize()
	if err != nil {
		return nil, err
	}
	proc, err := tech.Default().Lookup(n.Process)
	if err != nil {
		return nil, err
	}
	opts := append([]Option{
		WithProcess(proc),
		WithMC(mc.Config{Samples: n.Samples, Seed: n.Seed, FastReseed: n.FastSeed}),
	}, extra...)
	return NewStudy(opts...)
}

// Run normalizes the spec, builds its Study and executes the workload —
// the one-call path the serve layer's executors use.
func (s RunSpec) Run(extra ...Option) (*exp.Result, error) {
	n, err := s.Normalize()
	if err != nil {
		return nil, err
	}
	study, err := n.NewStudy(extra...)
	if err != nil {
		return nil, err
	}
	return study.Run(n.Workload, n.Params)
}
