package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"mpsram/internal/exp"
	"mpsram/internal/mc"
	"mpsram/internal/report"
)

// render produces the byte-comparison view of a result: the paper-style
// text plus (when tabular) the JSON tables, which marshal float64s with
// the shortest exact round-trip — any numeric drift shows up.
func render(t *testing.T, res *exp.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.Write(&buf, report.FormatText); err != nil {
		t.Fatalf("render text: %v", err)
	}
	if len(res.Tables) > 0 {
		if err := res.Write(&buf, report.FormatJSON); err != nil {
			t.Fatalf("render json: %v", err)
		}
	}
	return buf.Bytes()
}

// shardReduce runs spec split into count shards (each with the given
// worker count), reduces the artifacts and renders the result.
func shardReduce(t *testing.T, spec RunSpec, count, workers int) []byte {
	t.Helper()
	dir := t.TempDir()
	paths := make([]string, count)
	for i := range paths {
		paths[i] = filepath.Join(dir, "part"+string(rune('0'+i))+".shard")
		err := RunShard(spec, mc.ShardSpec{Index: i, Count: count}, paths[i],
			ShardRunOptions{}, WithWorkers(workers))
		if err != nil {
			t.Fatalf("shard %d/%d: %v", i, count, err)
		}
	}
	res, err := Reduce(paths)
	if err != nil {
		t.Fatalf("reduce %d shards: %v", count, err)
	}
	return render(t, res)
}

// TestShardReduceMatchesDirect is the tentpole acceptance test at the
// core layer: for plain, collect and paired engine paths, every shard
// partition × worker count must reduce to output byte-identical to the
// direct single-process run.
func TestShardReduceMatchesDirect(t *testing.T) {
	full := []struct{ shards, workers int }{{1, 1}, {1, 4}, {3, 1}, {3, 4}}
	quick := []struct{ shards, workers int }{{1, 4}, {3, 2}} // SPICE trials are slow; cover both partitions once
	specs := []struct {
		spec  RunSpec
		parts []struct{ shards, workers int }
	}{
		{RunSpec{Workload: "fig3"}, full},                                                        // analytic MC, plain streaming path
		{RunSpec{Workload: "fig5", Samples: 600, Params: exp.Params{"n": 64}}, full},             // collect path (raw values)
		{RunSpec{Workload: "mcspice", Samples: 24, Params: exp.Params{"cv": true}}, quick},       // paired control-variate path
		{RunSpec{Workload: "mcspice", Samples: 24, Params: exp.Params{"sizes": "16,32"}}, quick}, // multi-stream SPICE MC
	}
	for _, tc := range specs {
		spec, parts := tc.spec, tc.parts
		t.Run(spec.Workload+"/"+exp.CanonicalParams(spec.Params), func(t *testing.T) {
			t.Parallel()
			direct, err := spec.Run()
			if err != nil {
				t.Fatal(err)
			}
			want := render(t, direct)
			for _, part := range parts {
				got := shardReduce(t, spec, part.shards, part.workers)
				if !bytes.Equal(got, want) {
					t.Errorf("%d shards × %d workers diverged from direct run:\n got %q\nwant %q",
						part.shards, part.workers, got, want)
				}
			}
		})
	}
}

// TestShardCheckpointResumeEndToEnd kills a shard run mid-flight (context
// cancel from the progress hook), verifies the persisted checkpoint is a
// strict partial, resumes it to completion, and reduces — byte-identical
// to the uninterrupted run.
func TestShardCheckpointResumeEndToEnd(t *testing.T) {
	spec := RunSpec{Workload: "fig5", Samples: 2000, Params: exp.Params{"n": 64}}
	direct, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := render(t, direct)

	dir := t.TempDir()
	path := filepath.Join(dir, "part0.shard")
	shard := mc.ShardSpec{Index: 0, Count: 1}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fired atomic.Bool
	err = RunShard(spec, shard, path, ShardRunOptions{}, WithContext(ctx),
		WithProgress(func(done, total int) {
			if done >= total/4 && !fired.Swap(true) {
				cancel()
			}
		}))
	if err == nil || !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("interrupted shard run: %v", err)
	}
	art, err := ReadShardArtifact(path)
	if err != nil {
		t.Fatalf("checkpoint unreadable: %v", err)
	}
	if art.Header.Complete {
		t.Fatal("interrupted run persisted a complete artifact")
	}

	// An incomplete checkpoint must refuse to reduce.
	ckpt := filepath.Join(dir, "ckpt.shard")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Reduce([]string{ckpt}); err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Fatalf("reduced an incomplete checkpoint: %v", err)
	}

	// Resuming with a different spec must refuse the artifact.
	other := spec
	other.Seed = 7
	if err := RunShard(other, shard, path, ShardRunOptions{Resume: true}); err == nil ||
		!strings.Contains(err.Error(), "different run") {
		t.Fatalf("resumed a foreign checkpoint: %v", err)
	}

	if err := RunShard(spec, shard, path, ShardRunOptions{Resume: true}); err != nil {
		t.Fatalf("resume: %v", err)
	}
	res, err := Reduce([]string{path})
	if err != nil {
		t.Fatalf("reduce resumed artifact: %v", err)
	}
	if got := render(t, res); !bytes.Equal(got, want) {
		t.Errorf("kill-and-resume diverged from direct run:\n got %q\nwant %q", got, want)
	}

	// A second resume of the now-complete artifact is a no-op success.
	if err := RunShard(spec, shard, path, ShardRunOptions{Resume: true}); err != nil {
		t.Fatalf("resume of complete artifact: %v", err)
	}
}

// TestShardPeriodicCheckpoint: with CheckpointEvery set, the artifact
// file exists (as an incomplete checkpoint) before the run finishes.
func TestShardPeriodicCheckpoint(t *testing.T) {
	spec := RunSpec{Workload: "fig5", Samples: 1500, Params: exp.Params{"n": 64}}
	path := filepath.Join(t.TempDir(), "part0.shard")
	var sawCheckpoint atomic.Bool
	err := RunShard(spec, mc.ShardSpec{Index: 0, Count: 1}, path,
		ShardRunOptions{CheckpointEvery: 1}, // 1ns: every frontier advance writes
		WithProgress(func(done, total int) {
			if done == 0 || done >= total {
				return
			}
			if art, err := ReadShardArtifact(path); err == nil && !art.Header.Complete {
				sawCheckpoint.Store(true)
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if !sawCheckpoint.Load() {
		t.Fatal("no mid-run checkpoint observed on disk")
	}
	art, err := ReadShardArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if !art.Header.Complete {
		t.Fatal("finished run left an incomplete artifact")
	}
}

// TestReduceRejects covers the artifact-set validation: foreign files,
// tampered run keys, wrong set sizes, duplicates.
func TestReduceRejects(t *testing.T) {
	dir := t.TempDir()
	spec := RunSpec{Workload: "fig3"}
	mk := func(name string, sh mc.ShardSpec) string {
		p := filepath.Join(dir, name)
		if err := RunShard(spec, sh, p, ShardRunOptions{}); err != nil {
			t.Fatalf("shard %s: %v", name, err)
		}
		return p
	}
	p0 := mk("a0.shard", mc.ShardSpec{Index: 0, Count: 2})
	p1 := mk("a1.shard", mc.ShardSpec{Index: 1, Count: 2})

	if _, err := Reduce(nil); err == nil || !strings.Contains(err.Error(), "no shard artifacts") {
		t.Fatalf("empty set: %v", err)
	}
	if _, err := Reduce([]string{p0}); err == nil || !strings.Contains(err.Error(), "got 1 artifacts") {
		t.Fatalf("missing shard: %v", err)
	}
	if _, err := Reduce([]string{p0, p0}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate shard: %v", err)
	}

	// A shard of a different run in the set.
	foreign := filepath.Join(dir, "foreign.shard")
	if err := RunShard(RunSpec{Workload: "fig3", Seed: 7}, mc.ShardSpec{Index: 1, Count: 2},
		foreign, ShardRunOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Reduce([]string{p0, foreign}); err == nil || !strings.Contains(err.Error(), "belongs to run") {
		t.Fatalf("mixed runs: %v", err)
	}

	// Not an artifact at all.
	junk := filepath.Join(dir, "junk.shard")
	if err := os.WriteFile(junk, []byte("not a shard"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Reduce([]string{junk, p1}); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("junk file: %v", err)
	}

	// Tampered run key: the recomputed key no longer reproduces the
	// recorded one, which is exactly how a stale EngineVersion artifact
	// (rewritten to claim the current version) or schema drift surfaces.
	art, err := ReadShardArtifact(p0)
	if err != nil {
		t.Fatal(err)
	}
	h := art.Header
	h.Seed++ // changes the spec, so the recorded RunKey goes stale
	data, err := os.ReadFile(p0)
	if err != nil {
		t.Fatal(err)
	}
	hlen := int(binary.BigEndian.Uint32(data[len(shardMagic):]))
	payload := data[len(shardMagic)+4+hlen:]
	stale := filepath.Join(dir, "stale.shard")
	if err := writeShardArtifact(stale, h, payload); err != nil {
		t.Fatal(err)
	}
	// Pair it with a matching tampered sibling so set-consistency checks
	// pass and the key recomputation is what fires.
	h1 := h
	h1.ShardIndex = 1
	data1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	hlen1 := int(binary.BigEndian.Uint32(data1[len(shardMagic):]))
	stale1 := filepath.Join(dir, "stale1.shard")
	if err := writeShardArtifact(stale1, h1, data1[len(shardMagic)+4+hlen1:]); err != nil {
		t.Fatal(err)
	}
	if _, err := Reduce([]string{stale, stale1}); err == nil || !strings.Contains(err.Error(), "does not reproduce") {
		t.Fatalf("stale run key: %v", err)
	}

	// A stale engine version refuses at read time.
	h2 := art.Header
	h2.EngineVersion = "v0"
	old := filepath.Join(dir, "old.shard")
	if err := writeShardArtifact(old, h2, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadShardArtifact(old); err == nil || !strings.Contains(err.Error(), "engine v0") {
		t.Fatalf("stale engine version: %v", err)
	}
}

// TestShardArtifactStreamRoundTrip: the io.Writer/io.Reader flavors of
// the artifact codec produce exactly the on-disk bytes and decode them
// back — the contract the remote fabric relies on to ship artifacts
// over HTTP and land them bit-identical to a local run.
func TestShardArtifactStreamRoundTrip(t *testing.T) {
	spec := RunSpec{Workload: "fig3"}
	path := filepath.Join(t.TempDir(), "part0.shard")
	shard := mc.ShardSpec{Index: 0, Count: 2}
	if err := RunShard(spec, shard, path, ShardRunOptions{}); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	art, err := ReadShardArtifactFrom(bytes.NewReader(onDisk))
	if err != nil {
		t.Fatalf("stream read: %v", err)
	}
	hlen := int(binary.BigEndian.Uint32(onDisk[len(shardMagic):]))
	payload := onDisk[len(shardMagic)+4+hlen:]
	var buf bytes.Buffer
	if err := WriteShardArtifactTo(&buf, art.Header, payload); err != nil {
		t.Fatalf("stream write: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), onDisk) {
		t.Fatal("stream re-encode diverged from the on-disk artifact bytes")
	}

	// WriteShardArtifactFile lands raw bytes with the same atomic
	// discipline; the result must read back identically.
	copied := filepath.Join(t.TempDir(), "copy.shard")
	if err := WriteShardArtifactFile(copied, onDisk); err != nil {
		t.Fatal(err)
	}
	back, err := os.ReadFile(copied)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, onDisk) {
		t.Fatal("WriteShardArtifactFile changed the bytes")
	}
	if _, err := os.Stat(copied + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}

	// Stream decode refuses junk just like the path flavor.
	if _, err := ReadShardArtifactFrom(bytes.NewReader([]byte("nope"))); err == nil ||
		!strings.Contains(err.Error(), "magic") {
		t.Fatalf("junk stream: %v", err)
	}
}

// TestShardArtifactVerify pins the acceptance checks both ends of the
// remote fabric run before trusting shipped bytes.
func TestShardArtifactVerify(t *testing.T) {
	spec := RunSpec{Workload: "fig3"}
	path := filepath.Join(t.TempDir(), "part0.shard")
	shard := mc.ShardSpec{Index: 0, Count: 2}
	if err := RunShard(spec, shard, path, ShardRunOptions{}); err != nil {
		t.Fatal(err)
	}
	art, err := ReadShardArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	key := art.Header.RunKey

	if err := art.Verify(key, shard); err != nil {
		t.Fatalf("matching artifact refused: %v", err)
	}
	if err := art.Verify("", shard); err != nil {
		t.Fatalf("internal-consistency check refused: %v", err)
	}
	if err := art.Verify(key, mc.ShardSpec{Index: 1, Count: 2}); err == nil ||
		!strings.Contains(err.Error(), "covers shard") {
		t.Fatalf("wrong coordinates: %v", err)
	}
	other := strings.Repeat("0", len(key))
	if err := art.Verify(other, shard); err == nil ||
		!strings.Contains(err.Error(), "belongs to run") {
		t.Fatalf("foreign run key: %v", err)
	}
	drifted := *art
	drifted.Header.Seed++ // spec no longer reproduces the recorded key
	if err := drifted.Verify(drifted.Header.RunKey, shard); err == nil ||
		!strings.Contains(err.Error(), "does not reproduce") {
		t.Fatalf("drifted spec: %v", err)
	}
}

// TestShardHeaderSpecRoundTrip: the JSON header reconstructs a spec that
// normalizes back to the same key (params survive the float64 round
// trip).
func TestShardHeaderSpecRoundTrip(t *testing.T) {
	spec := RunSpec{Workload: "mcspice", Samples: 64, Params: exp.Params{"n": 32, "cv": true}}
	n, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	want := key(t, n)
	h := ShardHeader{Workload: n.Workload, Params: n.Params, Process: n.Process,
		Seed: n.Seed, Samples: n.Samples, FastSeed: n.FastSeed}
	blob, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back ShardHeader
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if got := key(t, back.spec()); got != want {
		t.Fatalf("header round trip changed the run key: %s != %s", got, want)
	}
}

// TestShardArtifactName pins the scratch-file naming convention the
// serve layer's fan-out dir relies on across restarts.
func TestShardArtifactName(t *testing.T) {
	if got := ShardArtifactName("abc123", 1, 3); got != "abc123.shard1-of3" {
		t.Fatalf("ShardArtifactName = %q", got)
	}
}
