package core

import (
	"strings"
	"testing"

	"mpsram/internal/exp"
)

func key(t *testing.T, s RunSpec) string {
	t.Helper()
	k, err := s.Key()
	if err != nil {
		t.Fatalf("Key(%+v): %v", s, err)
	}
	return k
}

// TestRunSpecNormalizeDefaults pins the zero-value semantics: empty
// process → the N10 preset, seed 0 → the paper seed, samples 0 → the
// workload's budget hint (or the analytic default), params → the schema
// defaults.
func TestRunSpecNormalizeDefaults(t *testing.T) {
	n, err := RunSpec{Workload: "mcspice"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Process != "N10" || n.Seed != DefaultSeed || n.Samples != 200 {
		t.Fatalf("defaults drifted: %+v", n)
	}
	if n.Params.Int("n") != 64 || n.Params.String("sizes") != "" {
		t.Fatalf("params not default-filled: %v", n.Params)
	}
	// A workload without a Samples hint adopts the analytic default.
	n, err = RunSpec{Workload: "table4"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Samples != DefaultSamples {
		t.Fatalf("hintless budget drifted: %d", n.Samples)
	}
}

// TestRunSpecKeyCanonicalization is the cache-entry-splitting regression
// test: every spelling of the same run — omitted defaults, explicit
// defaults, JSON float64 integers, padded or case-folded process names —
// must hash to one key, and every field that changes results must change
// it.
func TestRunSpecKeyCanonicalization(t *testing.T) {
	base := key(t, RunSpec{Workload: "mcspice"})
	same := []RunSpec{
		{Workload: "mcspice", Params: exp.Params{"n": 64}},
		{Workload: "mcspice", Params: exp.Params{"n": float64(64), "sizes": ""}},
		{Workload: "mcspice", Seed: DefaultSeed},
		{Workload: "mcspice", Samples: 200}, // the hint, spelled out
		{Workload: "mcspice", Process: " n10 "},
		{Workload: " mcspice ", Process: "N10"},
	}
	for _, s := range same {
		if k := key(t, s); k != base {
			t.Errorf("spec %+v split the cache entry: %s != %s", s, k, base)
		}
	}
	different := []RunSpec{
		{Workload: "mcspice", Params: exp.Params{"n": 65}},
		{Workload: "mcspice", Seed: 1},
		{Workload: "mcspice", Samples: 100},
		{Workload: "mcspice", FastSeed: true},
		{Workload: "mcspice", Process: "N7"},
		{Workload: "mcspicex"},
	}
	// Estimator mode is part of the cache identity: the cv/adaptive
	// params change the computation (paired estimator, adaptive
	// integrator), so identical sampling with a different estimator must
	// never alias a cached plain-estimator body.
	for _, est := range []exp.Params{
		{"cv": true},
		{"adaptive": true},
		{"cv": true, "adaptive": true},
	} {
		different = append(different, RunSpec{Workload: "mcspice", Params: est})
	}
	// And spelling the defaults out loud does not split the entry.
	if k := key(t, RunSpec{Workload: "mcspice", Params: exp.Params{"cv": false, "adaptive": false}}); k != base {
		t.Errorf("explicit default estimator split the cache entry: %s != %s", k, base)
	}
	seen := map[string]bool{base: true}
	for _, s := range different {
		k := key(t, s)
		if seen[k] {
			t.Errorf("spec %+v collided: %s", s, k)
		}
		seen[k] = true
	}
}

// TestRunSpecKeyErrors: the registries' valid-names texts surface
// through Normalize/Key so HTTP handlers can return them verbatim.
func TestRunSpecKeyErrors(t *testing.T) {
	if _, err := (RunSpec{Workload: "nope"}).Key(); err == nil ||
		!strings.Contains(err.Error(), "registered:") {
		t.Fatalf("unknown workload: %v", err)
	}
	if _, err := (RunSpec{Workload: "table1", Process: "N3"}).Key(); err == nil ||
		!strings.Contains(err.Error(), "N10") {
		t.Fatalf("unknown process must list the registry: %v", err)
	}
	if _, err := (RunSpec{Workload: "fig5", Params: exp.Params{"bogus": 1}}).Key(); err == nil ||
		!strings.Contains(err.Error(), "valid: n, ol") {
		t.Fatalf("unknown param must list the schema: %v", err)
	}
}

// TestRunSpecRun executes a cheap workload through the spec path and
// checks the configured environment actually reaches the study.
func TestRunSpecRun(t *testing.T) {
	res, err := RunSpec{Workload: "fig3"}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) == 0 || len(res.Text) == 0 {
		t.Fatalf("fig3 result empty: %+v", res)
	}
	study, err := RunSpec{Workload: "table1", Process: "n7", Seed: 7, Samples: 5}.NewStudy()
	if err != nil {
		t.Fatal(err)
	}
	if study.Env.Proc.Name != "N7" || study.Env.MC.Seed != 7 || study.Env.MC.Samples != 5 {
		t.Fatalf("spec did not reach the study env: proc=%s mc=%+v", study.Env.Proc.Name, study.Env.MC)
	}
}
