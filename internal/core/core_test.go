package core

import (
	"context"
	"strings"
	"sync"
	"testing"

	"mpsram/internal/extract"
	"mpsram/internal/litho"
	"mpsram/internal/mc"
	"mpsram/internal/sram"
	"mpsram/internal/tech"
)

func TestNewStudyDefaults(t *testing.T) {
	s, err := NewStudy()
	if err != nil {
		t.Fatal(err)
	}
	if s.Env.Proc.Name != "N10" {
		t.Fatal("default process")
	}
	m, err := s.Model()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStudyOptions(t *testing.T) {
	p := tech.N10()
	p.Name = "custom"
	s, err := NewStudy(
		WithProcess(p),
		WithCapModel(extract.PlateFringe{}),
		WithMC(mc.Config{Samples: 123, Seed: 5}),
		WithOverlay(3e-9),
		WithBuild(sram.BuildOptions{Lumped: true}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if s.Env.Proc.Name != "custom" || s.Env.Proc.Var.OL3Sigma != 3e-9 {
		t.Fatal("process options not applied")
	}
	if s.Env.Cap.Name() != "plate-fringe" || s.Env.MC.Samples != 123 || !s.Env.Build.Lumped {
		t.Fatal("options not applied")
	}
}

func TestNewStudyRejectsInvalid(t *testing.T) {
	bad := tech.N10()
	bad.M1.Width = -1
	if _, err := NewStudy(WithProcess(bad)); err == nil {
		t.Fatal("invalid process accepted")
	}
	if _, err := NewStudy(WithCapModel(nil)); err == nil {
		t.Fatal("nil cap model accepted")
	}
}

func TestStudyReadTimeAndRatios(t *testing.T) {
	s, err := NewStudy()
	if err != nil {
		t.Fatal(err)
	}
	td, err := s.ReadTime(litho.EUV, litho.Nominal, 16)
	if err != nil {
		t.Fatal(err)
	}
	if td < 1e-12 || td > 100e-12 {
		t.Fatalf("td = %g", td)
	}
	r, err := s.Ratios(litho.EUV, litho.Sample{CDEUV: 3e-9})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cvar <= 1 || r.Rvar >= 1 {
		t.Fatalf("ratios %+v", r)
	}
}

func TestStudyTdpDistribution(t *testing.T) {
	s, err := NewStudy(WithMC(mc.Config{Samples: 800, Seed: 4}))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := s.TdpDistribution(litho.SADP, 64)
	if err != nil {
		t.Fatal(err)
	}
	if sum.N != 800 || sum.Std <= 0 {
		t.Fatalf("summary %+v", sum)
	}
}

func TestWithMCPreservesProgress(t *testing.T) {
	fired := false
	// WithProgress before WithMC: the budget override must not silently
	// drop the callback.
	s, err := NewStudy(
		WithProgress(func(done, total int) { fired = true }),
		WithMC(mc.Config{Samples: 300, Seed: 1}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if s.Env.MC.Samples != 300 || s.Env.MC.Progress == nil {
		t.Fatalf("config not composed: %+v", s.Env.MC)
	}
	if _, err := s.TdpDistribution(litho.EUV, 16); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("progress callback dropped by WithMC")
	}
}

func TestStudySigmaSurface(t *testing.T) {
	s, err := NewStudy(WithMC(mc.Config{Samples: 600, Seed: 4}))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := s.SigmaSurface()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if len(r.Cells) != 4 {
			t.Fatalf("%v: cells %d", r.Option, len(r.Cells))
		}
	}
}

func TestStudyContextAndProgress(t *testing.T) {
	var mu sync.Mutex
	var last int
	s, err := NewStudy(
		WithMC(mc.Config{Samples: 500, Seed: 4}),
		WithContext(context.Background()),
		WithProgress(func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			if done > last {
				last = done
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.TdpDistribution(litho.EUV, 64); err != nil {
		t.Fatal(err)
	}
	if last != 500 {
		t.Fatalf("progress stopped at %d", last)
	}
	// A canceled context aborts the facade's Monte-Carlo entry points.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s2, err := NewStudy(WithMC(mc.Config{Samples: 500, Seed: 4}), WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.SigmaTable(); err == nil {
		t.Fatal("canceled study must not run Table IV")
	}
}

// TestRunAllEndToEnd is the whole-pipeline integration test: every
// experiment in paper order into one report.
func TestRunAllEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	s, err := NewStudy(WithMC(mc.Config{Samples: 1000, Seed: 2015}))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := s.RunAll(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Table I:", "Fig. 2:", "Fig. 3:", "Fig. 4:",
		"Table II:", "Table III:", "Fig. 5:", "Table IV:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestWithWorkersAndProgressReachBothEngines(t *testing.T) {
	var mu sync.Mutex
	fired := 0
	s, err := NewStudy(
		WithMC(mc.Config{Samples: 300, Seed: 1}),
		WithWorkers(3),
		WithProgress(func(done, total int) {
			mu.Lock()
			fired++
			mu.Unlock()
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if s.Env.MC.Workers != 3 || s.Env.Sweep.Workers != 3 {
		t.Fatalf("worker count not propagated: mc=%d sweep=%d",
			s.Env.MC.Workers, s.Env.Sweep.Workers)
	}
	if s.Env.MC.Progress == nil || s.Env.Sweep.Progress == nil {
		t.Fatal("progress callback not propagated to both engines")
	}
	// The sweep engine reports through the shared callback.
	sp, err := s.TdnomComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(sp) == 0 {
		t.Fatal("no Table II rows")
	}
	mu.Lock()
	defer mu.Unlock()
	if fired == 0 {
		t.Fatal("sweep progress never fired")
	}
}

// TestProcessRegistryThroughFacade covers the process-axis surface of the
// facade: name lookup (including the valid-names error contract), the
// default node set, per-node study construction and the cross-node
// comparison.
func TestProcessRegistryThroughFacade(t *testing.T) {
	if got := ProcessNames(); len(got) != 3 || got[0] != "N10" {
		t.Fatalf("process names %v", got)
	}
	p, err := LookupProcess("N7")
	if err != nil || p.Name != "N7" {
		t.Fatalf("LookupProcess(N7): %v %v", p.Name, err)
	}
	if _, err := LookupProcess("N3"); err == nil || !strings.Contains(err.Error(), "N10") {
		t.Fatalf("unknown process error must list valid names, got %v", err)
	}
	s, err := NewStudy(WithProcess(p), WithMC(mc.Config{Samples: 400, Seed: 7}))
	if err != nil {
		t.Fatal(err)
	}
	if s.Env.Proc.Name != "N7" || len(s.Env.Procs) != 3 {
		t.Fatalf("env: proc %s, %d nodes", s.Env.Proc.Name, len(s.Env.Procs))
	}
	rows, err := s.NodesAt(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*6 {
		t.Fatalf("%d node rows", len(rows))
	}
	// Trimming the node set trims the comparison.
	s2, err := NewStudy(WithProcesses(p), WithMC(mc.Config{Samples: 400, Seed: 7}))
	if err != nil {
		t.Fatal(err)
	}
	rows2, err := s2.NodesAt(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) != 6 || rows2[0].Process != "N7" {
		t.Fatalf("trimmed node set: %d rows, first %q", len(rows2), rows2[0].Process)
	}
	// An invalid preset in the node set fails construction.
	bad := p
	bad.M1.Width = -1
	if _, err := NewStudy(WithProcesses(bad)); err == nil {
		t.Fatal("invalid node-set preset must fail NewStudy")
	}
}
