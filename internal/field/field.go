// Package field implements a 2-D electrostatic field solver on the wire
// cross-section, used as the golden reference for the closed-form
// capacitance models in internal/extract.
//
// The solver discretizes the Laplace equation ∇²V = 0 on a uniform grid
// over the cross-section of a parallel-wire array between two conducting
// planes, with Dirichlet conditions on the conductors and planes and
// Neumann (mirror) conditions on the lateral window edges. Successive
// over-relaxation (SOR) drives the residual down; per-unit-length charge
// on each conductor is recovered from a Gauss contour one cell outside
// its surface, which directly yields the capacitance matrix column for a
// 1 V excitation.
//
// This is deliberately a from-scratch, dependency-free replacement for the
// field-solver step inside the paper's proprietary LPE flow: slow but
// trustworthy, and only used to validate the fast empirical models.
package field

import (
	"fmt"
	"math"

	"mpsram/internal/litho"
	"mpsram/internal/tech"
)

// Solver holds the discretized cross-section.
type Solver struct {
	Dx     float64 // grid spacing, metres
	NX, NZ int     // grid dimensions
	Eps    float64 // homogeneous dielectric permittivity, F/m

	pot   []float64 // potential, NX×NZ, row-major by z
	owner []int     // conductor id per cell: −1 dielectric, −2 planes, ≥0 wire index
}

const (
	cellDielectric = -1
	cellPlane      = -2
)

func (s *Solver) idx(ix, iz int) int { return iz*s.NX + ix }

// NewCrossSection builds the solver grid for the realized window win on
// process p with grid spacing dx. The domain spans the window wires plus
// one pitch of margin laterally, and the full plane-to-plane height.
func NewCrossSection(p tech.Process, win litho.Window, dx float64) (*Solver, error) {
	if dx <= 0 {
		return nil, fmt.Errorf("field: non-positive grid spacing %g", dx)
	}
	m := p.M1
	d := p.Diel
	left := win.Wires[0].Span.Lo - m.Pitch/2
	right := win.Wires[len(win.Wires)-1].Span.Hi + m.Pitch/2
	height := d.HBelow + m.Thickness + d.HAbove
	nx := int(math.Round((right-left)/dx)) + 1
	nz := int(math.Round(height/dx)) + 1
	if nx < 8 || nz < 8 {
		return nil, fmt.Errorf("field: grid too coarse (%dx%d)", nx, nz)
	}
	if nx*nz > 4<<20 {
		return nil, fmt.Errorf("field: grid too fine (%dx%d cells)", nx, nz)
	}
	s := &Solver{Dx: dx, NX: nx, NZ: nz, Eps: d.Eps()}
	s.pot = make([]float64, nx*nz)
	s.owner = make([]int, nx*nz)
	for i := range s.owner {
		s.owner[i] = cellDielectric
	}
	// Ground planes: bottom and top grid rows.
	for ix := 0; ix < nx; ix++ {
		s.owner[s.idx(ix, 0)] = cellPlane
		s.owner[s.idx(ix, nz-1)] = cellPlane
	}
	// Wires occupy z in [HBelow, HBelow+Thickness].
	z0 := int(math.Round(d.HBelow / dx))
	z1 := int(math.Round((d.HBelow + m.Thickness) / dx))
	for wi, wire := range win.Wires {
		x0 := int(math.Round((wire.Span.Lo - left) / dx))
		x1 := int(math.Round((wire.Span.Hi - left) / dx))
		if x1 <= x0 || z1 <= z0 {
			return nil, fmt.Errorf("field: wire %d collapses on a %g grid", wi, dx)
		}
		for iz := z0; iz <= z1; iz++ {
			for ix := x0; ix <= x1; ix++ {
				if ix <= 0 || ix >= nx-1 || iz <= 0 || iz >= nz-1 {
					return nil, fmt.Errorf("field: wire %d touches the domain boundary", wi)
				}
				s.owner[s.idx(ix, iz)] = wi
			}
		}
	}
	return s, nil
}

// Excite sets the boundary potentials: wire `victim` at 1 V, every other
// conductor and both planes at 0 V, and clears the dielectric potential.
func (s *Solver) Excite(victim int) {
	for i, o := range s.owner {
		switch {
		case o == victim && o >= 0:
			s.pot[i] = 1
		default:
			s.pot[i] = 0
		}
	}
}

// Solve runs SOR until the maximum update falls below tol or maxIter
// sweeps elapse, returning the sweep count and final residual.
func (s *Solver) Solve(maxIter int, tol float64) (int, float64) {
	const omega = 1.92
	nx, nz := s.NX, s.NZ
	var resid float64
	for iter := 1; iter <= maxIter; iter++ {
		resid = 0
		for iz := 1; iz < nz-1; iz++ {
			base := iz * nx
			for ix := 1; ix < nx-1; ix++ {
				i := base + ix
				if s.owner[i] != cellDielectric {
					continue
				}
				// Neumann mirror on lateral edges is enforced by the
				// one-cell inset loop plus edge clamping below.
				left := s.pot[i-1]
				right := s.pot[i+1]
				if ix == 1 {
					left = s.pot[i+1]
				}
				if ix == nx-2 {
					right = s.pot[i-1]
				}
				v := 0.25 * (left + right + s.pot[i-nx] + s.pot[i+nx])
				dv := v - s.pot[i]
				s.pot[i] += omega * dv
				if a := math.Abs(dv); a > resid {
					resid = a
				}
			}
		}
		if resid < tol {
			return iter, resid
		}
	}
	return maxIter, resid
}

// ChargePerM returns the induced charge per metre of wire length on
// conductor id (a wire index, or the planes via PlaneID) by summing the
// normal field through a Gauss contour one cell outside the conductor.
func (s *Solver) ChargePerM(id int) float64 {
	nx, nz := s.NX, s.NZ
	var q float64
	for iz := 0; iz < nz; iz++ {
		for ix := 0; ix < nx; ix++ {
			i := s.idx(ix, iz)
			if s.owner[i] != id {
				continue
			}
			vc := s.pot[i]
			// For each of the four neighbours that is dielectric, the
			// flux through that face is ε·(Vc−Vn)/dx · dx = ε·(Vc−Vn).
			if ix > 0 && s.owner[i-1] == cellDielectric {
				q += vc - s.pot[i-1]
			}
			if ix < nx-1 && s.owner[i+1] == cellDielectric {
				q += vc - s.pot[i+1]
			}
			if iz > 0 && s.owner[i-nx] == cellDielectric {
				q += vc - s.pot[i-nx]
			}
			if iz < nz-1 && s.owner[i+nx] == cellDielectric {
				q += vc - s.pot[i+nx]
			}
		}
	}
	return s.Eps * q
}

// PlaneID is the conductor id of the ground planes for ChargePerM.
const PlaneID = cellPlane

// CapResult is the capacitance column extracted for the excited victim.
type CapResult struct {
	CTotalPerM  float64   // total victim capacitance per metre
	CcPerM      []float64 // −charge on each other wire (coupling), indexed like win.Wires
	CPlanesPerM float64   // −charge on the planes (ground component)
	Sweeps      int
	Residual    float64
}

// VictimCaps excites the window victim and extracts its capacitance
// column. dx controls accuracy (1 nm is ~5 % on this geometry); maxIter
// and tol bound the SOR loop.
func VictimCaps(p tech.Process, win litho.Window, dx float64, maxIter int, tol float64) (CapResult, error) {
	s, err := NewCrossSection(p, win, dx)
	if err != nil {
		return CapResult{}, err
	}
	s.Excite(win.Victim)
	sweeps, resid := s.Solve(maxIter, tol)
	res := CapResult{
		CTotalPerM: s.ChargePerM(win.Victim),
		CcPerM:     make([]float64, len(win.Wires)),
		Sweeps:     sweeps,
		Residual:   resid,
	}
	for i := range win.Wires {
		if i == win.Victim {
			continue
		}
		res.CcPerM[i] = -s.ChargePerM(i)
	}
	res.CPlanesPerM = -s.ChargePerM(PlaneID)
	return res, nil
}

// ChargeBalance returns the net charge per metre over every conductor in
// the solved system; for a correct solution it is ~0 (what leaves the
// victim lands on the other conductors).
func (s *Solver) ChargeBalance(nWires int) float64 {
	total := s.ChargePerM(PlaneID)
	for i := 0; i < nWires; i++ {
		total += s.ChargePerM(i)
	}
	return total
}
