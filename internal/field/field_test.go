package field

import (
	"math"
	"testing"

	"mpsram/internal/extract"
	"mpsram/internal/litho"
	"mpsram/internal/tech"
	"mpsram/internal/units"
)

// solveNominal is a shared fixture: nominal EUV window at 1 nm grid.
func solveNominal(t *testing.T, p tech.Process) (litho.Window, CapResult) {
	t.Helper()
	win, err := litho.Realize(p, litho.EUV, litho.Nominal)
	if err != nil {
		t.Fatal(err)
	}
	res, err := VictimCaps(p, win, 1e-9, 20000, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	return win, res
}

func TestParallelPlateLimit(t *testing.T) {
	// A very wide wire close to the planes must approach the
	// parallel-plate capacitance 2·ε·w/h (both planes).
	p := tech.N10()
	p.M1.Width = 200e-9
	p.M1.Space = 40e-9
	p.M1.Pitch = p.M1.Width + p.M1.Space
	p.SADP.Period = 2 * p.M1.Pitch
	p.SADP.MandrelWidth = p.M1.Width
	p.SADP.SpacerThk = p.M1.Space
	p.Diel.HBelow, p.Diel.HAbove = 20e-9, 20e-9
	win, err := litho.Realize(p, litho.EUV, litho.Nominal)
	if err != nil {
		t.Fatal(err)
	}
	res, err := VictimCaps(p, win, 2e-9, 30000, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	plate := 2 * p.Diel.Eps() * p.M1.Width / p.Diel.HBelow
	// Fringe and coupling add on top; the plate term must dominate and
	// the total must exceed it by less than ~50 %.
	if res.CTotalPerM < plate || res.CTotalPerM > 1.5*plate {
		t.Fatalf("C = %g, plate = %g (ratio %.2f)", res.CTotalPerM, plate, res.CTotalPerM/plate)
	}
}

func TestChargeConservation(t *testing.T) {
	p := tech.N10()
	win, err := litho.Realize(p, litho.EUV, litho.Nominal)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewCrossSection(p, win, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	s.Excite(win.Victim)
	s.Solve(20000, 1e-7)
	balance := s.ChargeBalance(len(win.Wires))
	victim := s.ChargePerM(win.Victim)
	if math.Abs(balance) > 0.02*math.Abs(victim) {
		t.Fatalf("charge imbalance %.3g vs victim charge %.3g", balance, victim)
	}
}

func TestFieldVsSakuraiTamaru(t *testing.T) {
	// The S-T closed form assumes an isolated line (full fringe to
	// ground) and then adds full coupling, so in a dense array it
	// overestimates the *absolute* total by a near-constant ~1.45×.
	// That scale factor cancels in the Cvar ratios the study consumes;
	// here we pin the absolute agreement to a 1.2–1.8× band and, in
	// TestSensitivityAgreement below, require the ratios to agree tightly.
	p := tech.N10()
	win, res := solveNominal(t, p)
	st := extract.ExtractVictim(p, win, extract.SakuraiTamaru{})
	ratio := st.CTotalPerM() / res.CTotalPerM
	if ratio < 1.2 || ratio > 1.8 {
		t.Errorf("total: field %.4g vs S-T %.4g (ratio %.2f outside [1.2,1.8])",
			res.CTotalPerM, st.CTotalPerM(), ratio)
	}
	ccField := res.CcPerM[win.Victim-1]
	if !units.ApproxEqual(ccField, st.CcBelowPerM, 0.35, 0) {
		t.Errorf("coupling: field %.4g vs S-T %.4g", ccField, st.CcBelowPerM)
	}
}

// TestSensitivityAgreement is the validation that matters for the paper:
// the capacitance *variation ratio* Cvar predicted by the fast model must
// track the field solver within a few points on the paper's worst cases.
func TestSensitivityAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("field sweeps are slow")
	}
	p := tech.N10()
	cm := extract.SakuraiTamaru{}
	cases := []struct {
		name string
		o    litho.Option
		s    litho.Sample
	}{
		{"EUV+3sigma", litho.EUV, litho.Sample{CDEUV: 3e-9}},
		{"LE3 worst", litho.LE3, litho.Sample{CDA: 3e-9, CDB: 3e-9, CDC: 3e-9, OLB: 8e-9, OLC: -8e-9}},
		{"SADP worst", litho.SADP, litho.Sample{CDCore: -3e-9, CDSpacer: -1.5e-9}},
	}
	for _, c := range cases {
		nomWin, err := litho.Realize(p, c.o, litho.Nominal)
		if err != nil {
			t.Fatal(err)
		}
		win, err := litho.Realize(p, c.o, c.s)
		if err != nil {
			t.Fatal(err)
		}
		fdNom, err := VictimCaps(p, nomWin, 1e-9, 30000, 1e-8)
		if err != nil {
			t.Fatal(err)
		}
		fdAct, err := VictimCaps(p, win, 1e-9, 30000, 1e-8)
		if err != nil {
			t.Fatal(err)
		}
		cvarFD := fdAct.CTotalPerM / fdNom.CTotalPerM
		cvarST := extract.ExtractVictim(p, win, cm).CTotalPerM() /
			extract.ExtractVictim(p, nomWin, cm).CTotalPerM()
		if math.Abs(cvarFD-cvarST) > 0.06 {
			t.Errorf("%s: Cvar field %.4f vs S-T %.4f", c.name, cvarFD, cvarST)
		}
	}
}

func TestFieldCouplingMonotoneInSpacing(t *testing.T) {
	// Pull the LE3 mask-B comb toward the victim: nearest coupling grows,
	// far-side coupling is (nearly) unchanged.
	p := tech.N10()
	var prev float64
	for i, ol := range []float64{0, 4e-9, 8e-9} {
		win, err := litho.Realize(p, litho.LE3, litho.Sample{OLB: ol})
		if err != nil {
			t.Fatal(err)
		}
		res, err := VictimCaps(p, win, 1e-9, 20000, 1e-7)
		if err != nil {
			t.Fatal(err)
		}
		cc := res.CcPerM[win.Victim-1]
		if i > 0 && cc <= prev {
			t.Fatalf("coupling not increasing as spacing shrinks: %g -> %g", prev, cc)
		}
		prev = cc
	}
}

func TestFieldSymmetry(t *testing.T) {
	p := tech.N10()
	win, res := solveNominal(t, p)
	below := res.CcPerM[win.Victim-1]
	above := res.CcPerM[win.Victim+1]
	if !units.ApproxEqual(below, above, 0.02, 0) {
		t.Fatalf("symmetric geometry, asymmetric field couplings: %g vs %g", below, above)
	}
	// Planes plus wires absorb (almost) all the victim's charge.
	sum := res.CPlanesPerM
	for i, c := range res.CcPerM {
		if i != win.Victim {
			sum += c
		}
	}
	if !units.ApproxEqual(sum, res.CTotalPerM, 0.02, 0) {
		t.Fatalf("column sum %g vs total %g", sum, res.CTotalPerM)
	}
}

func TestSolverErrors(t *testing.T) {
	p := tech.N10()
	win, _ := litho.Realize(p, litho.EUV, litho.Nominal)
	if _, err := NewCrossSection(p, win, -1); err == nil {
		t.Fatal("negative dx must error")
	}
	if _, err := NewCrossSection(p, win, 100e-9); err == nil {
		t.Fatal("coarse grid that collapses wires must error")
	}
	if _, err := NewCrossSection(p, win, 0.01e-9); err == nil {
		t.Fatal("absurdly fine grid must be rejected")
	}
}

func TestSolveConverges(t *testing.T) {
	p := tech.N10()
	win, _ := litho.Realize(p, litho.EUV, litho.Nominal)
	s, err := NewCrossSection(p, win, 2e-9)
	if err != nil {
		t.Fatal(err)
	}
	s.Excite(win.Victim)
	sweeps, resid := s.Solve(20000, 1e-8)
	if sweeps >= 20000 {
		t.Fatalf("SOR did not converge: residual %g", resid)
	}
	// Dielectric potentials are bounded by the excitation.
	for _, v := range s.pot {
		if v < -1e-6 || v > 1+1e-6 {
			t.Fatalf("potential %g outside [0,1]", v)
		}
	}
}
