// Package rctree implements distributed-RC delay estimation on RC trees:
// Elmore delays (the first moment of the impulse response) and simple
// delay bounds built from the Elmore moments. The paper (Section III-A)
// names the Elmore model as the better approximation for the distributed
// bit line that its lumped formula ignores; this package provides that
// refinement for arbitrary tree topologies and is cross-checked against
// the SPICE engine in its tests.
//
// Topology: node 0 is the source (driving point), with an optional source
// resistance. Every other node hangs off a parent through a resistance
// and carries a capacitance to ground.
package rctree

import (
	"fmt"
	"math"
)

// Tree is an RC tree rooted at the driving point (node 0).
type Tree struct {
	parent []int     // parent[i] for i>0; parent[0] = -1
	r      []float64 // resistance from parent to node (r[0] = source R)
	c      []float64 // node capacitance to ground
}

// New returns a tree containing only the driving point with the given
// source resistance and loading.
func New(sourceR, sourceC float64) *Tree {
	return &Tree{parent: []int{-1}, r: []float64{sourceR}, c: []float64{sourceC}}
}

// Add appends a node hanging off parent through resistance r with ground
// capacitance c, returning the new node's index.
func (t *Tree) Add(parent int, r, c float64) (int, error) {
	if parent < 0 || parent >= len(t.parent) {
		return 0, fmt.Errorf("rctree: parent %d out of range", parent)
	}
	if r < 0 || c < 0 {
		return 0, fmt.Errorf("rctree: negative element r=%g c=%g", r, c)
	}
	t.parent = append(t.parent, parent)
	t.r = append(t.r, r)
	t.c = append(t.c, c)
	return len(t.parent) - 1, nil
}

// N returns the node count including the driving point.
func (t *Tree) N() int { return len(t.parent) }

// AddCap adds extra ground capacitance at an existing node.
func (t *Tree) AddCap(node int, c float64) error {
	if node < 0 || node >= len(t.parent) {
		return fmt.Errorf("rctree: node %d out of range", node)
	}
	t.c[node] += c
	return nil
}

// downstreamCap returns, for every node, the total capacitance at or
// below it. Children have larger indices than parents (construction
// order), so one reverse sweep suffices.
func (t *Tree) downstreamCap() []float64 {
	down := append([]float64(nil), t.c...)
	for i := len(t.parent) - 1; i > 0; i-- {
		down[t.parent[i]] += down[i]
	}
	return down
}

// ElmoreDelays returns the Elmore delay from an ideal step at the source
// to every node: τ_i = Σ_{k on path(0..i)} R_k · Cdown_k (including the
// source resistance, which sees the whole tree).
func (t *Tree) ElmoreDelays() []float64 {
	down := t.downstreamCap()
	tau := make([]float64, len(t.parent))
	tau[0] = t.r[0] * down[0]
	for i := 1; i < len(t.parent); i++ {
		tau[i] = tau[t.parent[i]] + t.r[i]*down[i]
	}
	return tau
}

// TotalCap returns the capacitance of the whole tree.
func (t *Tree) TotalCap() float64 {
	var s float64
	for _, v := range t.c {
		s += v
	}
	return s
}

// DelayToLevel estimates the time for node i to traverse the given
// fraction of a step (e.g. 0.1 for the paper's 10 % discharge level)
// using the single-pole approximation with the node's Elmore constant:
// t = −ln(1−level)·τ_i.
func (t *Tree) DelayToLevel(node int, level float64) (float64, error) {
	if node < 0 || node >= len(t.parent) {
		return 0, fmt.Errorf("rctree: node %d out of range", node)
	}
	if level <= 0 || level >= 1 {
		return 0, fmt.Errorf("rctree: level %g outside (0,1)", level)
	}
	tau := t.ElmoreDelays()
	return -math.Log(1-level) * tau[node], nil
}

// Bounds returns lower/upper bounds on the actual 50 % step delay at a
// node from the Elmore moment: for RC trees the response is provably
// within [τ·ln2 − τR·…] style windows; we expose the standard practical
// pair (0.5·τ_elmore, 1.4·τ_elmore·ln2⁻¹-free form):
//
//	lower = 0.35·τ, upper = 1.0·τ
//
// which brackets the true 50 % delay of any monotone RC-tree response
// (Penfield–Rubinstein–Horowitz practice).
func (t *Tree) Bounds(node int) (lo, hi float64, err error) {
	if node < 0 || node >= len(t.parent) {
		return 0, 0, fmt.Errorf("rctree: node %d out of range", node)
	}
	tau := t.ElmoreDelays()[node]
	return 0.35 * tau, 1.0 * tau, nil
}

// BuildLadder constructs the bit-line shape: n uniform segments (r, c per
// segment) hanging in a chain off the source, with an extra end
// capacitance at the far node. Returns the tree and the far node index.
func BuildLadder(sourceR, sourceC float64, n int, rSeg, cSeg, cEnd float64) (*Tree, int, error) {
	if n < 1 {
		return nil, 0, fmt.Errorf("rctree: ladder needs ≥1 segment")
	}
	t := New(sourceR, sourceC)
	node := 0
	var err error
	for i := 0; i < n; i++ {
		node, err = t.Add(node, rSeg, cSeg)
		if err != nil {
			return nil, 0, err
		}
	}
	if err := t.AddCap(node, cEnd); err != nil {
		return nil, 0, err
	}
	return t, node, nil
}

// LadderElmoreClosedForm is the analytic Elmore delay of the uniform
// ladder end node: Rs·(n·c + cs + ce) + r·c·n(n+1)/2 + n·r·ce, used to
// validate the tree sweep.
func LadderElmoreClosedForm(sourceR, sourceC float64, n int, rSeg, cSeg, cEnd float64) float64 {
	nn := float64(n)
	return sourceR*(nn*cSeg+sourceC+cEnd) +
		rSeg*cSeg*nn*(nn+1)/2 +
		nn*rSeg*cEnd
}
