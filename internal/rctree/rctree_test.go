package rctree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mpsram/internal/circuit"
	"mpsram/internal/spice"
)

func TestSingleRC(t *testing.T) {
	// One segment: τ = Rs·C + r·C.
	tr := New(100, 0)
	n, err := tr.Add(0, 50, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	tau := tr.ElmoreDelays()
	want := 100*1e-12 + 50*1e-12
	if math.Abs(tau[n]-want) > 1e-24 {
		t.Fatalf("tau = %g, want %g", tau[n], want)
	}
	if tr.N() != 2 || tr.TotalCap() != 1e-12 {
		t.Fatal("bookkeeping")
	}
}

func TestLadderMatchesClosedForm(t *testing.T) {
	for _, n := range []int{1, 4, 16, 64, 1024} {
		tr, end, err := BuildLadder(7e3, 0.1e-15, n, 6.2, 40e-18, 0.8e-15)
		if err != nil {
			t.Fatal(err)
		}
		tau := tr.ElmoreDelays()[end]
		want := LadderElmoreClosedForm(7e3, 0.1e-15, n, 6.2, 40e-18, 0.8e-15)
		if math.Abs(tau-want) > 1e-9*want {
			t.Fatalf("n=%d: tree %g vs closed form %g", n, tau, want)
		}
	}
}

func TestElmoreAdditivityProperty(t *testing.T) {
	// Elmore delay is monotone along any root-to-leaf path and additive
	// over path segments.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New(rng.Float64()*1e3, rng.Float64()*1e-15)
		// Random tree of ~30 nodes.
		for i := 0; i < 30; i++ {
			parent := rng.Intn(tr.N())
			if _, err := tr.Add(parent, rng.Float64()*100, rng.Float64()*1e-15); err != nil {
				return false
			}
		}
		tau := tr.ElmoreDelays()
		for i := 1; i < tr.N(); i++ {
			if tau[i] < tau[tr.parent[i]]-1e-24 {
				return false // must not decrease toward the leaves
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBranchingVsChainDownstreamCap(t *testing.T) {
	// Two children hanging off the root see only their own subtree's C in
	// their own R, but the source R sees everything.
	tr := New(1e3, 0)
	a, _ := tr.Add(0, 100, 1e-15)
	b, _ := tr.Add(0, 100, 2e-15)
	tau := tr.ElmoreDelays()
	wantA := 1e3*3e-15 + 100*1e-15
	wantB := 1e3*3e-15 + 100*2e-15
	if math.Abs(tau[a]-wantA) > 1e-24 || math.Abs(tau[b]-wantB) > 1e-24 {
		t.Fatalf("tau = %v, want %g/%g", tau, wantA, wantB)
	}
}

func TestDelayToLevelAndBounds(t *testing.T) {
	tr, end, _ := BuildLadder(1e3, 0, 8, 10, 1e-15, 0)
	d10, err := tr.DelayToLevel(end, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	tau := tr.ElmoreDelays()[end]
	if math.Abs(d10- -math.Log(0.9)*tau) > 1e-24 {
		t.Fatal("DelayToLevel formula")
	}
	lo, hi, err := tr.Bounds(end)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo < hi && lo > 0) {
		t.Fatalf("bounds %g/%g", lo, hi)
	}
	// Errors.
	if _, err := tr.DelayToLevel(99, 0.1); err == nil {
		t.Fatal("bad node accepted")
	}
	if _, err := tr.DelayToLevel(end, 1.5); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, _, err := tr.Bounds(-1); err == nil {
		t.Fatal("bad node accepted")
	}
	if _, err := tr.Add(99, 1, 1); err == nil {
		t.Fatal("bad parent accepted")
	}
	if _, err := tr.Add(0, -1, 1); err == nil {
		t.Fatal("negative R accepted")
	}
	if err := tr.AddCap(99, 1); err != nil {
	} else {
		t.Fatal("bad AddCap node accepted")
	}
	if _, _, err := BuildLadder(1, 0, 0, 1, 1, 1); err == nil {
		t.Fatal("zero-segment ladder accepted")
	}
}

// TestElmoreBracketsSpice cross-validates against the SPICE engine: the
// simulated 50 % step delay of a driven RC ladder must fall within the
// Elmore bounds, and the 10 % delay must be near the single-pole estimate.
func TestElmoreBracketsSpice(t *testing.T) {
	rs, n, rSeg, cSeg := 2e3, 16, 50.0, 2e-15
	tr, end, _ := BuildLadder(rs, 0, n, rSeg, cSeg, 0)
	lo, hi, _ := tr.Bounds(end)

	// Build the same ladder in the circuit model, driven by a step.
	ckt := circuit.New()
	drv := ckt.Node("drv")
	ckt.AddV("src", drv, circuit.Ground, circuit.Pulse{V0: 0, V1: 1, Rise: 1e-15, Width: 1})
	prev := drv
	var probe circuit.NodeID
	ckt.AddR("rs", drv, ckt.Node("n0"), rs)
	prev = ckt.Node("n0")
	ckt.AddC("c0", prev, circuit.Ground, 1e-18) // driving-point parasitic
	for i := 0; i < n; i++ {
		nd := ckt.Node(nodeName(i))
		ckt.AddR("r", prev, nd, rSeg)
		ckt.AddC("c", nd, circuit.Ground, cSeg)
		prev = nd
		probe = nd
	}
	eng, err := spice.New(ckt, spice.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tau := tr.ElmoreDelays()[end]
	res, err := eng.Transient(8*tau, tau/2000, []circuit.NodeID{probe}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wave := res.NodeWave(probe)
	t50, err := res.FirstCrossing(func(k int) float64 { return wave[k] }, 0.5, +1)
	if err != nil {
		t.Fatal(err)
	}
	if t50 < lo || t50 > hi {
		t.Fatalf("simulated 50%% delay %g outside Elmore bounds [%g, %g]", t50, lo, hi)
	}
	// 10 % crossing vs single-pole estimate: same order, within 2.5×
	// (the ladder's early response is faster than single-pole).
	t10, err := res.FirstCrossing(func(k int) float64 { return wave[k] }, 0.1, +1)
	if err != nil {
		t.Fatal(err)
	}
	est, _ := tr.DelayToLevel(end, 0.1)
	if t10 > est*2.5 || t10 < est/6 {
		t.Fatalf("10%% delay %g vs estimate %g out of band", t10, est)
	}
}

func nodeName(i int) string {
	return "lad" + string(rune('a'+i%26)) + string(rune('a'+i/26))
}
