package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	iv := CenterWidth(10, 4)
	if iv.Lo != 8 || iv.Hi != 12 {
		t.Fatalf("CenterWidth(10,4) = %v", iv)
	}
	if iv.Width() != 4 || iv.Center() != 10 {
		t.Fatalf("width/center wrong: %v", iv)
	}
	if iv.Empty() {
		t.Fatal("non-empty interval reported empty")
	}
	if !NewInterval(5, 3).Contains(4) {
		t.Fatal("NewInterval should normalize order")
	}
}

func TestIntervalGap(t *testing.T) {
	a := Interval{0, 2}
	b := Interval{5, 7}
	if g := a.Gap(b); g != 3 {
		t.Fatalf("gap = %g, want 3", g)
	}
	if g := b.Gap(a); g != 3 {
		t.Fatalf("gap symmetric = %g, want 3", g)
	}
	if g := a.Gap(Interval{1, 3}); g != 0 {
		t.Fatalf("overlapping gap = %g, want 0", g)
	}
	if g := a.Gap(Interval{2, 3}); g != 0 {
		t.Fatalf("touching gap = %g, want 0", g)
	}
}

func TestIntervalShiftExpand(t *testing.T) {
	iv := Interval{1, 3}.Shift(2)
	if iv.Lo != 3 || iv.Hi != 5 {
		t.Fatalf("shift: %v", iv)
	}
	iv = iv.Expand(1)
	if iv.Lo != 2 || iv.Hi != 6 {
		t.Fatalf("expand: %v", iv)
	}
}

func TestIntervalIntersect(t *testing.T) {
	got := Interval{0, 5}.Intersect(Interval{3, 9})
	if got.Lo != 3 || got.Hi != 5 {
		t.Fatalf("intersect = %v", got)
	}
	if !(Interval{0, 1}).Intersect(Interval{2, 3}).Empty() {
		t.Fatal("disjoint intersect should be empty")
	}
}

func TestGapSymmetryProperty(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		for _, v := range []float64{a, b, c, d} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		p := NewInterval(a, b)
		q := NewInterval(c, d)
		return p.Gap(q) == q.Gap(p) && p.Gap(q) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShiftPreservesWidthProperty(t *testing.T) {
	f := func(a, w, d float64) bool {
		if math.IsNaN(a+w+d) || math.IsInf(a+w+d, 0) ||
			math.Abs(a) > 1e6 || math.Abs(w) > 1e6 || math.Abs(d) > 1e6 {
			return true
		}
		iv := CenterWidth(a, math.Abs(w))
		return math.Abs(iv.Shift(d).Width()-iv.Width()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(3, 4, 1, 2) // unordered corners
	if r.Min.X != 1 || r.Min.Y != 2 || r.Max.X != 3 || r.Max.Y != 4 {
		t.Fatalf("NewRect normalize: %v", r)
	}
	if r.W() != 2 || r.H() != 2 || r.Area() != 4 {
		t.Fatalf("dims: %v", r)
	}
	if c := r.Center(); c.X != 2 || c.Y != 3 {
		t.Fatalf("center: %v", c)
	}
	if !r.ContainsPoint(Point{2, 3}) || r.ContainsPoint(Point{0, 0}) {
		t.Fatal("ContainsPoint wrong")
	}
}

func TestRectIntersectUnion(t *testing.T) {
	a := NewRect(0, 0, 4, 4)
	b := NewRect(2, 2, 6, 6)
	i := a.Intersect(b)
	if i.Min.X != 2 || i.Max.X != 4 || i.Area() != 4 {
		t.Fatalf("intersect: %v", i)
	}
	u := a.Union(b)
	if u.Min.X != 0 || u.Max.X != 6 {
		t.Fatalf("union: %v", u)
	}
	if !a.Intersect(NewRect(10, 10, 12, 12)).Empty() {
		t.Fatal("disjoint intersect should be empty")
	}
}

func TestRectUnionContainsBothProperty(t *testing.T) {
	f := func(x0, y0, x1, y1, x2, y2, x3, y3 float64) bool {
		vals := []float64{x0, y0, x1, y1, x2, y2, x3, y3}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				return true
			}
		}
		a := NewRect(x0, y0, x1, y1)
		b := NewRect(x2, y2, x3, y3)
		u := a.Union(b)
		return u.ContainsPoint(a.Min) && u.ContainsPoint(a.Max) &&
			u.ContainsPoint(b.Min) && u.ContainsPoint(b.Max)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPointOps(t *testing.T) {
	p := Point{1, 2}.Add(Point{3, 4})
	if p.X != 4 || p.Y != 6 {
		t.Fatalf("Add: %v", p)
	}
	q := p.Sub(Point{4, 6})
	if q.X != 0 || q.Y != 0 {
		t.Fatalf("Sub: %v", q)
	}
	if d := (Point{0, 0}).Dist(Point{3, 4}); d != 5 {
		t.Fatalf("Dist: %g", d)
	}
	if s := (Point{1, -2}).Scale(2); s.X != 2 || s.Y != -4 {
		t.Fatalf("Scale: %v", s)
	}
}

func TestTrapezoid(t *testing.T) {
	tz := Trapezoid{WTop: 26e-9, WBot: 22e-9, T: 48e-9}
	wantArea := (26e-9 + 22e-9) / 2 * 48e-9
	if math.Abs(tz.Area()-wantArea) > 1e-30 {
		t.Fatalf("area = %g want %g", tz.Area(), wantArea)
	}
	sh := tz.Shrink(2e-9)
	if math.Abs(sh.WTop-22e-9) > 1e-18 || math.Abs(sh.T-46e-9) > 1e-18 {
		t.Fatalf("shrink: %+v", sh)
	}
	// Shrinking beyond the size clamps at zero.
	z := tz.Shrink(1)
	if z.WTop != 0 || z.WBot != 0 || z.T != 0 {
		t.Fatalf("over-shrink should clamp: %+v", z)
	}
}

func TestTrapezoidShrinkMonotoneProperty(t *testing.T) {
	f := func(wt, wb, h, d float64) bool {
		wt, wb, h, d = math.Abs(wt), math.Abs(wb), math.Abs(h), math.Abs(d)
		if math.IsNaN(wt+wb+h+d) || math.IsInf(wt+wb+h+d, 0) {
			return true
		}
		tz := Trapezoid{WTop: wt, WBot: wb, T: h}
		return tz.Shrink(d).Area() <= tz.Area()+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortAndDisjoint(t *testing.T) {
	ivs := []Interval{{5, 6}, {0, 1}, {2, 3}}
	SortIntervals(ivs)
	if ivs[0].Lo != 0 || ivs[2].Lo != 5 {
		t.Fatalf("sort order: %v", ivs)
	}
	if !Disjoint(ivs) {
		t.Fatal("disjoint intervals reported overlapping")
	}
	ivs = append(ivs, Interval{2.5, 4})
	SortIntervals(ivs)
	if Disjoint(ivs) {
		t.Fatal("overlapping intervals reported disjoint")
	}
}
