// Package geom provides the geometric primitives used by the layout
// generator, the patterning engines and the field solver: 1-D intervals
// (metal tracks seen in cross-section), 2-D points, rectangles and simple
// transforms.
//
// Coordinates are float64 metres. The cross-section convention used by the
// patterning and extraction code is: x runs across the parallel-line array
// (the direction in which overlay shifts move whole masks), y runs along
// the wires, z is the stack direction.
package geom

import (
	"fmt"
	"math"
	"sort"
)

// Interval is a 1-D closed interval [Lo, Hi], used for wire cross-sections
// across the line array.
type Interval struct {
	Lo, Hi float64
}

// NewInterval returns the interval spanning a and b regardless of order.
func NewInterval(a, b float64) Interval {
	if a > b {
		a, b = b, a
	}
	return Interval{Lo: a, Hi: b}
}

// CenterWidth builds an interval from a centre coordinate and a width.
func CenterWidth(center, width float64) Interval {
	h := width / 2
	return Interval{Lo: center - h, Hi: center + h}
}

// Width returns Hi-Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Center returns the midpoint.
func (iv Interval) Center() float64 { return (iv.Lo + iv.Hi) / 2 }

// Empty reports whether the interval has non-positive width.
func (iv Interval) Empty() bool { return iv.Hi <= iv.Lo }

// Shift translates the interval by d.
func (iv Interval) Shift(d float64) Interval {
	return Interval{Lo: iv.Lo + d, Hi: iv.Hi + d}
}

// Expand grows the interval symmetrically by d on each side (negative d
// shrinks it).
func (iv Interval) Expand(d float64) Interval {
	return Interval{Lo: iv.Lo - d, Hi: iv.Hi + d}
}

// Overlaps reports whether the two intervals intersect with positive length.
func (iv Interval) Overlaps(o Interval) bool {
	return iv.Lo < o.Hi && o.Lo < iv.Hi
}

// Intersect returns the overlapping part; empty if they do not overlap.
func (iv Interval) Intersect(o Interval) Interval {
	r := Interval{Lo: math.Max(iv.Lo, o.Lo), Hi: math.Min(iv.Hi, o.Hi)}
	if r.Empty() {
		return Interval{}
	}
	return r
}

// Gap returns the clear distance between two disjoint intervals; zero if
// they touch or overlap.
func (iv Interval) Gap(o Interval) float64 {
	if iv.Overlaps(o) {
		return 0
	}
	if iv.Hi <= o.Lo {
		return o.Lo - iv.Hi
	}
	return iv.Lo - o.Hi
}

// Contains reports whether x lies within the closed interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

func (iv Interval) String() string {
	return fmt.Sprintf("[%.3g,%.3g]", iv.Lo, iv.Hi)
}

// Point is a 2-D point.
type Point struct {
	X, Y float64
}

// Add returns p+q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p−q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dist returns the Euclidean distance to q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Rect is an axis-aligned rectangle with Min ≤ Max corner convention.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(x0, y0, x1, y1 float64) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{Min: Point{x0, y0}, Max: Point{x1, y1}}
}

// W returns the width (x extent).
func (r Rect) W() float64 { return r.Max.X - r.Min.X }

// H returns the height (y extent).
func (r Rect) H() float64 { return r.Max.Y - r.Min.Y }

// Area returns W*H.
func (r Rect) Area() float64 { return r.W() * r.H() }

// Empty reports whether the rectangle has non-positive area.
func (r Rect) Empty() bool { return r.W() <= 0 || r.H() <= 0 }

// Center returns the midpoint of the rectangle.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Translate shifts the rectangle by d.
func (r Rect) Translate(d Point) Rect {
	return Rect{Min: r.Min.Add(d), Max: r.Max.Add(d)}
}

// Intersect returns the overlap of two rectangles (empty Rect if none).
func (r Rect) Intersect(o Rect) Rect {
	res := Rect{
		Min: Point{math.Max(r.Min.X, o.Min.X), math.Max(r.Min.Y, o.Min.Y)},
		Max: Point{math.Min(r.Max.X, o.Max.X), math.Min(r.Max.Y, o.Max.Y)},
	}
	if res.Empty() {
		return Rect{}
	}
	return res
}

// Union returns the bounding box of both rectangles.
func (r Rect) Union(o Rect) Rect {
	if r.Empty() {
		return o
	}
	if o.Empty() {
		return r
	}
	return Rect{
		Min: Point{math.Min(r.Min.X, o.Min.X), math.Min(r.Min.Y, o.Min.Y)},
		Max: Point{math.Max(r.Max.X, o.Max.X), math.Max(r.Max.Y, o.Max.Y)},
	}
}

// ContainsPoint reports whether p lies within the closed rectangle.
func (r Rect) ContainsPoint(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// XInterval returns the x-extent as an Interval.
func (r Rect) XInterval() Interval { return Interval{r.Min.X, r.Max.X} }

// YInterval returns the y-extent as an Interval.
func (r Rect) YInterval() Interval { return Interval{r.Min.Y, r.Max.Y} }

func (r Rect) String() string {
	return fmt.Sprintf("(%.3g,%.3g)-(%.3g,%.3g)", r.Min.X, r.Min.Y, r.Max.X, r.Max.Y)
}

// Trapezoid describes a wire cross-section after etch taper: the top width
// differs from the bottom width, height T. Used by the resistance extractor.
type Trapezoid struct {
	WTop, WBot, T float64
}

// Area returns the trapezoid cross-section area.
func (tz Trapezoid) Area() float64 { return (tz.WTop + tz.WBot) / 2 * tz.T }

// MeanWidth returns the width of the equal-area rectangle.
func (tz Trapezoid) MeanWidth() float64 { return (tz.WTop + tz.WBot) / 2 }

// Shrink returns the trapezoid with all faces pulled in by d (e.g. a
// barrier liner of thickness d consuming conductor area).
func (tz Trapezoid) Shrink(d float64) Trapezoid {
	s := Trapezoid{WTop: tz.WTop - 2*d, WBot: tz.WBot - 2*d, T: tz.T - d}
	if s.WTop < 0 {
		s.WTop = 0
	}
	if s.WBot < 0 {
		s.WBot = 0
	}
	if s.T < 0 {
		s.T = 0
	}
	return s
}

// SortIntervals orders intervals by Lo then Hi, in place, and returns the
// slice for convenience.
func SortIntervals(ivs []Interval) []Interval {
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].Lo != ivs[j].Lo {
			return ivs[i].Lo < ivs[j].Lo
		}
		return ivs[i].Hi < ivs[j].Hi
	})
	return ivs
}

// Disjoint reports whether the sorted intervals are pairwise
// non-overlapping (adjacent touching allowed).
func Disjoint(ivs []Interval) bool {
	for i := 1; i < len(ivs); i++ {
		if ivs[i-1].Hi > ivs[i].Lo {
			return false
		}
	}
	return true
}
