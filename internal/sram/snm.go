// Static noise margin analysis: butterfly curves of the 6T cell from DC
// sweeps on the SPICE engine, in hold and read configurations. Read SNM
// matters to this study because the same bit lines whose RC variability
// the paper quantifies also clamp the cell's internal node during a read;
// the analysis doubles as an end-to-end exercise of the DC solver.
package sram

import (
	"fmt"
	"math"

	"mpsram/internal/circuit"
	"mpsram/internal/device"
	"mpsram/internal/spice"
	"mpsram/internal/tech"
)

// SNMResult carries the butterfly analysis outputs.
type SNMResult struct {
	Hold float64 // hold (standby) static noise margin, volts
	Read float64 // read static noise margin, volts
}

// inverterVTC sweeps the input of one 6T half-cell inverter and returns
// the voltage transfer curve. In read mode the output also hangs off a
// pass gate whose far end is clamped to the precharged bit line (vdd),
// which lifts the low output level — the classic read-SNM degradation.
func inverterVTC(p tech.Process, read bool, points int) (vin, vout []float64, err error) {
	if points < 2 {
		return nil, nil, fmt.Errorf("sram: VTC needs ≥2 points")
	}
	f := p.FEOL
	nm := device.NewNMOS(f)
	pm := device.NewPMOS(f)
	for i := 0; i < points; i++ {
		v := f.Vdd * float64(i) / float64(points-1)
		n := circuit.New()
		vdd := n.Node("vdd")
		in := n.Node("in")
		out := n.Node("out")
		n.AddV("vdd", vdd, circuit.Ground, circuit.DC(f.Vdd))
		n.AddV("vin", in, circuit.Ground, circuit.DC(v))
		n.AddM("pu", out, in, vdd, pm, f.WPullUp)
		n.AddM("pd", out, in, circuit.Ground, nm, f.WPullDown)
		if read {
			bl := n.Node("bl")
			wl := n.Node("wl")
			n.AddV("bl", bl, circuit.Ground, circuit.DC(f.Vdd))
			n.AddV("wl", wl, circuit.Ground, circuit.DC(f.Vdd))
			n.AddM("pg", bl, wl, out, nm, f.WPassGate)
		}
		eng, err := spice.New(n, spice.Options{})
		if err != nil {
			return nil, nil, err
		}
		x, err := eng.DCOperatingPoint()
		if err != nil {
			return nil, nil, fmt.Errorf("sram: VTC point %d (vin=%g): %w", i, v, err)
		}
		vin = append(vin, v)
		vout = append(vout, x[int(out)-1])
	}
	return vin, vout, nil
}

// snmFromVTC computes the static noise margin from one inverter VTC using
// the Seevinck noise-voltage-source definition: insert equal adverse
// noise sources in series with both inverter inputs and find, by
// bisection, the largest noise amplitude at which the cross-coupled loop
// map h(x) = f(f(x+vn)+vn) still has two distinct stable fixed points.
// For symmetric cells this equals the butterfly max-square SNM and is
// robust against the fold-back that breaks 45°-rotation implementations
// on steep VTCs.
func snmFromVTC(vin, vout []float64) float64 {
	if len(vin) < 2 {
		return 0
	}
	lo, hi := vin[0], vin[len(vin)-1]
	// Monotone interpolation of the (decreasing) VTC, clamped outside.
	f := func(x float64) float64 {
		if x <= lo {
			return vout[0]
		}
		if x >= hi {
			return vout[len(vout)-1]
		}
		// vin is an ascending uniform-ish grid; binary search.
		a, b := 0, len(vin)-1
		for b-a > 1 {
			m := (a + b) / 2
			if vin[m] <= x {
				a = m
			} else {
				b = m
			}
		}
		t := (x - vin[a]) / (vin[b] - vin[a])
		return vout[a] + t*(vout[b]-vout[a])
	}
	bistable := func(vn float64) bool {
		h := func(x float64) float64 { return f(f(x+vn) + vn) }
		x1, x2 := lo, hi
		for k := 0; k < 300; k++ {
			x1, x2 = h(x1), h(x2)
		}
		return math.Abs(x1-x2) > 1e-4*(hi-lo)
	}
	if !bistable(0) {
		return 0
	}
	a, b := 0.0, hi-lo
	for k := 0; k < 50; k++ {
		mid := (a + b) / 2
		if bistable(mid) {
			a = mid
		} else {
			b = mid
		}
	}
	return (a + b) / 2
}

// StaticNoiseMargins runs the hold and read butterfly analyses for the
// cell of process p.
func StaticNoiseMargins(p tech.Process) (SNMResult, error) {
	const points = 71
	vinH, voutH, err := inverterVTC(p, false, points)
	if err != nil {
		return SNMResult{}, err
	}
	vinR, voutR, err := inverterVTC(p, true, points)
	if err != nil {
		return SNMResult{}, err
	}
	res := SNMResult{
		Hold: snmFromVTC(vinH, voutH),
		Read: snmFromVTC(vinR, voutR),
	}
	if res.Hold <= 0 || res.Read <= 0 {
		return res, fmt.Errorf("sram: degenerate butterfly (hold=%g read=%g)", res.Hold, res.Read)
	}
	return res, nil
}
