// SPICE-in-the-loop Monte-Carlo support: the per-worker trial function
// behind mc.SpiceTdpAcrossSizes. Where the analytic Monte-Carlo evaluates
// the paper's closed-form tdp formula on each process-variation draw, this
// path realizes the drawn lithography sample into perturbed parasitics and
// runs the full read transient per array size — the experiment the paper's
// Tables II–IV actually rest on. The ColumnBuilder session keeps the cost
// per trial sane: one reusable netlist scratch and one resident SPICE
// engine (re-targeted with spice.Engine.Reset) per worker, so the hot loop
// performs no per-trial engine construction.
package sram

import (
	"fmt"
	"math/rand"

	"mpsram/internal/extract"
	"mpsram/internal/litho"
)

// NominalTds simulates the nominal read at every size, the denominators of
// the per-trial tdp observables. Deterministic — callers compute it once
// and share it read-only across workers.
func (b *ColumnBuilder) NominalTds(sizes []int, bopt BuildOptions, sopt SimOptions) ([]float64, error) {
	nom, err := b.Nominal()
	if err != nil {
		return nil, err
	}
	tds := make([]float64, len(sizes))
	for j, n := range sizes {
		td, err := b.MeasureTd(n, nom, bopt, sopt)
		if err != nil {
			return nil, fmt.Errorf("sram: nominal td at n=%d: %w", n, err)
		}
		if td <= 0 {
			return nil, fmt.Errorf("sram: non-positive nominal td %g at n=%d", td, n)
		}
		tds[j] = td
	}
	return tds, nil
}

// TrialFunc returns the SPICE-in-the-loop Monte-Carlo trial function for
// option o: each invocation draws one Gaussian lithography sample from
// rng (litho.Draw — the same canonical stream the analytic
// mc.SampleRatios consumes, so the two paths see identical draws),
// extracts the variability ratios, and simulates the read at every size,
// writing the tdp penalty in percent into out[j] for sizes[j]. Draws whose
// geometry collapses (extraction error) or whose transient fails reject
// the trial by returning false.
//
// nomTd must hold the nominal read times for sizes (see NominalTds). The
// returned closure drives this builder's netlist scratch and resident
// engine, so it inherits the session's concurrency contract: one builder
// per worker.
func (b *ColumnBuilder) TrialFunc(o litho.Option, sizes []int, nomTd []float64, bopt BuildOptions, sopt SimOptions) func(*rand.Rand, []float64) bool {
	params := litho.Params(b.Proc, o)
	return func(rng *rand.Rand, out []float64) bool {
		s := litho.Draw(params, rng)
		// VarRatios directly, not the session memo: continuous random
		// samples never repeat, so memoizing them would only grow the map.
		r, err := extract.VarRatios(b.Proc, o, s, b.Cap)
		if err != nil {
			return false
		}
		nom, err := b.Nominal()
		if err != nil {
			return false
		}
		cp := nom.Scale(r)
		for j, n := range sizes {
			td, err := b.MeasureTd(n, cp, bopt, sopt)
			if err != nil {
				return false
			}
			out[j] = (td/nomTd[j] - 1) * 100
		}
		return true
	}
}

// PairedTrialFunc is TrialFunc's control-variate companion: the same
// draw → extract → transient pipeline, but each trial additionally
// evaluates ctrl — a cheap model of the tdp penalty as a function of the
// array size and the extracted variability ratios (in practice the
// paper's closed-form formula) — on the *same* extracted ratios, writing
// the SPICE-measured penalty into y[j] and the control into x[j]. Because
// both observables share one draw and one extraction, the pair is
// maximally correlated by construction and the SPICE stream is bitwise
// identical to TrialFunc's for the same (Seed, trial).
//
// ctrl must be deterministic and reentrant: one closure is shared across
// workers (it closes over read-only model parameters, not sessions).
func (b *ColumnBuilder) PairedTrialFunc(o litho.Option, sizes []int, nomTd []float64, ctrl func(n int, r extract.Ratios) float64, bopt BuildOptions, sopt SimOptions) func(*rand.Rand, []float64, []float64) bool {
	params := litho.Params(b.Proc, o)
	return func(rng *rand.Rand, y, x []float64) bool {
		s := litho.Draw(params, rng)
		r, err := extract.VarRatios(b.Proc, o, s, b.Cap)
		if err != nil {
			return false
		}
		nom, err := b.Nominal()
		if err != nil {
			return false
		}
		cp := nom.Scale(r)
		for j, n := range sizes {
			td, err := b.MeasureTd(n, cp, bopt, sopt)
			if err != nil {
				return false
			}
			y[j] = (td/nomTd[j] - 1) * 100
			x[j] = ctrl(n, r)
		}
		return true
	}
}
