package sram

import (
	"fmt"

	"mpsram/internal/circuit"
	"mpsram/internal/device"
	"mpsram/internal/extract"
	"mpsram/internal/litho"
	"mpsram/internal/spice"
	"mpsram/internal/tech"
)

// ColumnBuilder is a per-worker column construction and simulation
// session — the reusable path behind the SPICE sweep engine. The one-shot
// SimulateTd/TdPenaltyPct path re-extracts the nominal parasitics,
// re-instantiates the device cards and reallocates the whole netlist for
// every trial; a ColumnBuilder amortizes all three across however many
// (sample, size) points a sweep visits: it caches the nominal per-cell
// parasitics and the extracted variability ratios per (option, sample),
// shares one NMOS/PMOS model card pair across builds, and rebuilds every
// column into one reusable netlist.
//
// Results are bit-identical to the one-shot path: construction is
// deterministic and the cached values are pure functions of the inputs, so
// caching only removes recomputation, never changes a float.
//
// A ColumnBuilder is not safe for concurrent use; give each worker its
// own.
type ColumnBuilder struct {
	Proc tech.Process
	Cap  extract.CapModel

	nmos *device.MOS
	pmos *device.MOS

	haveNom bool
	nom     CellParasitics
	ratios  map[ratioKey]extract.Ratios

	// scratch is the reused netlist; the Column returned by Build aliases
	// it and stays valid only until the next Build call.
	scratch *circuit.Netlist

	// eng is the resident SPICE engine, re-targeted with
	// spice.Engine.Reset on every MeasureTd so the sparse matrices, the
	// Newton scratch and the waveform storage survive across trials.
	eng *spice.Engine
}

type ratioKey struct {
	Option litho.Option
	Sample litho.Sample
}

// NewColumnBuilder returns a session for process p and capacitance model
// cm.
func NewColumnBuilder(p tech.Process, cm extract.CapModel) *ColumnBuilder {
	return &ColumnBuilder{
		Proc:   p,
		Cap:    cm,
		nmos:   device.NewNMOS(p.FEOL),
		pmos:   device.NewPMOS(p.FEOL),
		ratios: make(map[ratioKey]extract.Ratios),
	}
}

// Nominal returns the nominal per-cell parasitics, extracting them on the
// first call and serving the cached value afterwards.
func (b *ColumnBuilder) Nominal() (CellParasitics, error) {
	if !b.haveNom {
		nom, err := NominalParasitics(b.Proc, b.Cap)
		if err != nil {
			return CellParasitics{}, err
		}
		b.nom, b.haveNom = nom, true
	}
	return b.nom, nil
}

// SetNominal seeds the nominal-parasitics cache, letting a sweep
// coordinator extract once and share the value across per-worker builders.
func (b *ColumnBuilder) SetNominal(nom CellParasitics) {
	b.nom, b.haveNom = nom, true
}

// Ratios returns the variability ratios for (o, s), memoized per session.
func (b *ColumnBuilder) Ratios(o litho.Option, s litho.Sample) (extract.Ratios, error) {
	k := ratioKey{Option: o, Sample: s}
	if r, ok := b.ratios[k]; ok {
		return r, nil
	}
	r, err := extract.VarRatios(b.Proc, o, s, b.Cap)
	if err != nil {
		return extract.Ratios{}, err
	}
	b.ratios[k] = r
	return r, nil
}

// Build constructs the column into the session's reusable netlist scratch.
// The returned Column (and its Netlist) aliases that scratch and is valid
// only until the next Build call on this session.
func (b *ColumnBuilder) Build(n int, cp CellParasitics, opt BuildOptions) (*Column, error) {
	if b.scratch == nil {
		b.scratch = circuit.New()
	} else {
		b.scratch.Reset()
	}
	return buildColumnInto(b.scratch, b.nmos, b.pmos, b.Proc, n, cp, opt)
}

// MeasureTd builds the column for parasitics cp at size n and runs the
// read transient on the session's resident engine, returning td in
// seconds. The first call constructs the engine; later calls re-target it
// with spice.Engine.Reset, which reuses every internal allocation and is
// bit-identical to a fresh engine.
func (b *ColumnBuilder) MeasureTd(n int, cp CellParasitics, bopt BuildOptions, sopt SimOptions) (float64, error) {
	col, err := b.Build(n, cp, bopt)
	if err != nil {
		return 0, err
	}
	opts := spice.Options{Method: sopt.Method}
	if b.eng == nil {
		b.eng, err = spice.New(col.Netlist, opts)
	} else {
		err = b.eng.Reset(col.Netlist, opts)
	}
	if err != nil {
		return 0, err
	}
	res, err := col.measureTdOn(b.eng, cp, sopt)
	if err != nil {
		return 0, err
	}
	return res.Td, nil
}

// SimulateTd simulates one read for option o under variation sample s at
// array size n — the session equivalent of the package-level SimulateTd.
func (b *ColumnBuilder) SimulateTd(o litho.Option, s litho.Sample, n int, bopt BuildOptions, sopt SimOptions) (float64, error) {
	nom, err := b.Nominal()
	if err != nil {
		return 0, err
	}
	r, err := b.Ratios(o, s)
	if err != nil {
		return 0, err
	}
	return b.MeasureTd(n, nom.Scale(r), bopt, sopt)
}

// TdPenaltyPct simulates the nominal and perturbed reads and returns the
// paper's tdp figure — the session equivalent of the package-level
// TdPenaltyPct.
func (b *ColumnBuilder) TdPenaltyPct(o litho.Option, s litho.Sample, n int, bopt BuildOptions, sopt SimOptions) (tdp, td, tdnom float64, err error) {
	tdnom, err = b.SimulateTd(o, litho.Nominal, n, bopt, sopt)
	if err != nil {
		return 0, 0, 0, err
	}
	td, err = b.SimulateTd(o, s, n, bopt, sopt)
	if err != nil {
		return 0, 0, 0, err
	}
	if tdnom <= 0 {
		return 0, 0, 0, fmt.Errorf("sram: non-positive nominal td %g", tdnom)
	}
	return (td/tdnom - 1) * 100, td, tdnom, nil
}
