// Write-operation analysis: an extension beyond the paper's read-time
// study. The same bit-line RC that slows the read also slows the write
// driver's discharge of the bit line, so MP-induced RC variability shifts
// the write time too. MeasureWriteTime drives a write-0 into the far cell
// and reports the cell flip time.
package sram

import (
	"fmt"

	"mpsram/internal/circuit"
	"mpsram/internal/spice"
	"mpsram/internal/tech"
)

// WriteResult reports one simulated write.
type WriteResult struct {
	// TFlip is the time from word-line enable until the cell's internal
	// nodes cross (q falls below qb on a cell that stored 1).
	TFlip float64
	// TBitline is the time for the driven bit line to fall to 10 % of
	// vdd at the far (cell) end.
	TBitline float64
	Result   *spice.Result
}

// BuildWriteColumn constructs the write experiment: the read column
// topology, but with the precharge off from t=0 and a write driver
// pulling the bit line low while blb is held high. The cell initially
// stores q=1 so the write must flip it.
func BuildWriteColumn(p tech.Process, n int, cp CellParasitics, opt BuildOptions) (*Column, error) {
	col, err := BuildColumn(p, n, cp, opt)
	if err != nil {
		return nil, err
	}
	f := p.FEOL
	nl := col.Netlist
	// Precharge gate held high (off) for the whole run.
	for i := range nl.Vs {
		if nl.Vs[i].Label == "pre" {
			nl.Vs[i].Wave = circuit.DC(f.Vdd)
		}
	}
	// Write driver at the sense end: strong pull-down on bl, hold blb
	// high, through realistic driver resistance.
	drv := nl.Node("wdrv")
	nl.AddV("wdrv", drv, circuit.Ground, circuit.Pulse{
		V0: f.Vdd, V1: 0, Delay: 1e-12, Rise: 2e-12, Width: 1,
	})
	nl.AddR("wdrv_bl", drv, col.BLSense, 300)
	hold := nl.Node("whold")
	nl.AddV("whold", hold, circuit.Ground, circuit.DC(f.Vdd))
	nl.AddR("whold_blb", hold, col.BLBSense, 300)
	// Flip the state-selection helpers: the cell starts at q=1.
	for i := range nl.Rs {
		switch nl.Rs[i].Label {
		case "init_q":
			nl.Rs[i].B = nl.Node("vdd")
		case "init_qb":
			nl.Rs[i].B = circuit.Ground
		}
	}
	return col, nil
}

// MeasureWriteTime runs the write transient on a column built by
// BuildWriteColumn.
func (c *Column) MeasureWriteTime(cp CellParasitics, opt SimOptions) (WriteResult, error) {
	f := c.proc.FEOL
	est := c.estimateTd(cp)
	tEnd := opt.TEnd
	if tEnd == 0 {
		tEnd = 6*est + 100e-12
	}
	dt := opt.Dt
	if dt == 0 {
		dt = tEnd / 6000
		if dt > 0.5e-12 {
			dt = 0.5e-12
		}
	}
	eng, err := spice.New(c.Netlist, spice.Options{Method: opt.Method})
	if err != nil {
		return WriteResult{}, err
	}
	// Cell starts at q=1 (the write must flip it to 0).
	eng.SetNodeset(map[circuit.NodeID]float64{
		c.Q:  f.Vdd,
		c.QB: 0,
	})
	probes := []circuit.NodeID{c.BLSense, c.BLFar, c.Q, c.QB}
	res, err := eng.Transient(tEnd, dt, probes,
		func(t float64, v func(circuit.NodeID) float64) bool {
			return v(c.QB)-v(c.Q) > 0.9*f.Vdd
		})
	if err != nil {
		return WriteResult{}, fmt.Errorf("sram: write transient (n=%d): %w", c.N, err)
	}
	q := res.NodeWave(c.Q)
	qb := res.NodeWave(c.QB)
	tFlip, err := res.FirstCrossing(func(k int) float64 { return q[k] - qb[k] }, 0, -1)
	if err != nil {
		return WriteResult{}, fmt.Errorf("sram: cell never flipped (n=%d): %w", c.N, err)
	}
	far := res.NodeWave(c.BLFar)
	tBl, err := res.FirstCrossing(func(k int) float64 { return far[k] }, 0.1*f.Vdd, -1)
	if err != nil {
		// The run may stop (cell flipped) before the far end fully
		// discharges; report the flip time only.
		tBl = 0
	}
	const wlDelay = 1e-12
	if tFlip > wlDelay {
		tFlip -= wlDelay
	}
	if tBl > wlDelay {
		tBl -= wlDelay
	}
	return WriteResult{TFlip: tFlip, TBitline: tBl, Result: res}, nil
}
