package sram

import (
	"testing"

	"mpsram/internal/extract"
	"mpsram/internal/litho"
	"mpsram/internal/tech"
)

func TestWriteFlipsCell(t *testing.T) {
	p, cp := nominal(t)
	col, err := BuildWriteColumn(p, 32, cp, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wr, err := col.MeasureWriteTime(cp, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if wr.TFlip <= 0 || wr.TFlip > 1e-9 {
		t.Fatalf("flip time %g out of band", wr.TFlip)
	}
	// The cell must start at q=1 and end at q=0.
	q := wr.Result.NodeWave(col.Q)
	qb := wr.Result.NodeWave(col.QB)
	if q[0] < 0.6 || qb[0] > 0.1 {
		t.Fatalf("initial state q=%g qb=%g", q[0], qb[0])
	}
	last := len(q) - 1
	if q[last] > 0.15 || qb[last] < 0.55 {
		t.Fatalf("final state q=%g qb=%g (write failed)", q[last], qb[last])
	}
}

func TestWriteTimeGrowsWithArray(t *testing.T) {
	p, cp := nominal(t)
	var prev float64
	for _, n := range []int{16, 128} {
		col, err := BuildWriteColumn(p, n, cp, BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		wr, err := col.MeasureWriteTime(cp, SimOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if wr.TFlip <= prev {
			t.Fatalf("write time not growing: %g after %g", wr.TFlip, prev)
		}
		prev = wr.TFlip
	}
}

func TestWriteSlowerUnderLE3WorstCase(t *testing.T) {
	// The extension's point: MP variability shifts writes too. The LE3
	// worst corner (higher Cbl) must slow the bit-line discharge.
	p, cp := nominal(t)
	wc, err := extract.WorstCase(p, litho.LE3, cm)
	if err != nil {
		t.Fatal(err)
	}
	colNom, _ := BuildWriteColumn(p, 64, cp, BuildOptions{})
	nom, err := colNom.MeasureWriteTime(cp, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cpWC := cp.Scale(wc.Ratios)
	colWC, _ := BuildWriteColumn(p, 64, cpWC, BuildOptions{})
	worst, err := colWC.MeasureWriteTime(cpWC, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if worst.TFlip <= nom.TFlip {
		t.Fatalf("worst-case write %g not slower than nominal %g", worst.TFlip, nom.TFlip)
	}
}

func TestWriteColumnBuildErrors(t *testing.T) {
	p := tech.N10()
	if _, err := BuildWriteColumn(p, 0, CellParasitics{Rbl: 1, Cbl: 1, Rvss: 1}, BuildOptions{}); err == nil {
		t.Fatal("n=0 accepted")
	}
}
