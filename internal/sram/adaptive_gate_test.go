package sram

import (
	"math"
	"math/rand"
	"testing"

	"mpsram/internal/extract"
	"mpsram/internal/litho"
	"mpsram/internal/tech"
)

// adaptiveTdTol is the DOE accuracy gate on the adaptive integrator: the
// step-doubling path must reproduce the fixed-step read time within 0.5 %
// at every (process, option, size) before the Monte-Carlo hot loop is
// allowed to opt in. Measured headroom at the default 50 µV LTETol is
// ≈ 0.33 % worst-case (n = 16, where td is shortest).
const adaptiveTdTol = 0.005

// doeDraw returns one deterministic lithography-perturbed parasitics set
// per (process, option): a mid-spread draw that exercises the perturbed
// netlists the MC trial loop actually simulates, not just the nominal.
func doeDraw(t *testing.T, b *ColumnBuilder, o litho.Option, seed int64) CellParasitics {
	t.Helper()
	nom, err := b.Nominal()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	s := litho.Draw(litho.Params(b.Proc, o), rng)
	r, err := extract.VarRatios(b.Proc, o, s, b.Cap)
	if err != nil {
		t.Fatal(err)
	}
	return nom.Scale(r)
}

// TestAdaptiveMatchesFixedAcrossDOE is the accuracy gate for
// SimOptions{Adaptive: true} across the full DOE — every patterning
// option × array size × process preset: the adaptive read time must match
// the fixed-step reference within adaptiveTdTol, and the promised speedup
// must be real (≥ 5× fewer time steps at every point; measured ≈ 7–8×).
func TestAdaptiveMatchesFixedAcrossDOE(t *testing.T) {
	if testing.Short() {
		t.Skip("full-DOE transient gate (≈ 72 SPICE transients); run without -short")
	}
	cm := extract.SakuraiTamaru{}
	for _, p := range tech.Default().Processes() {
		b := NewColumnBuilder(p, cm)
		for oi, o := range litho.Options {
			cp := doeDraw(t, b, o, int64(1000+oi))
			for _, n := range []int{16, 64, 256, 1024} {
				colF, err := b.Build(n, cp, BuildOptions{})
				if err != nil {
					t.Fatal(err)
				}
				fixed, err := colF.MeasureTd(cp, SimOptions{})
				if err != nil {
					t.Fatalf("%s/%v n=%d fixed: %v", p.Name, o, n, err)
				}
				colA, err := b.Build(n, cp, BuildOptions{})
				if err != nil {
					t.Fatal(err)
				}
				adapt, err := colA.MeasureTd(cp, SimOptions{Adaptive: true})
				if err != nil {
					t.Fatalf("%s/%v n=%d adaptive: %v", p.Name, o, n, err)
				}
				rel := math.Abs(adapt.Td/fixed.Td - 1)
				if rel > adaptiveTdTol {
					t.Errorf("%s/%v n=%d: adaptive td off by %.3f%% (fixed %.3g, adaptive %.3g)",
						p.Name, o, n, rel*100, fixed.Td, adapt.Td)
				}
				sf, sa := len(fixed.Result.T), len(adapt.Result.T)
				if sa*5 > sf {
					t.Errorf("%s/%v n=%d: adaptive used %d steps vs %d fixed — speedup below 5×",
						p.Name, o, n, sa, sf)
				}
			}
		}
	}
}

// TestAdaptiveGateTripsOnLooseLTETol proves the gate above is live: with
// the local-truncation-error tolerance deliberately loosened by ~400×
// (SimOptions.LTETol), the adaptive td drifts past adaptiveTdTol at the
// most sensitive DOE point (smallest array, shortest td). If this stops
// tripping, the gate has gone soft and no longer guards the default.
func TestAdaptiveGateTripsOnLooseLTETol(t *testing.T) {
	p := tech.N10()
	b := NewColumnBuilder(p, extract.SakuraiTamaru{})
	cp := doeDraw(t, b, litho.LE3, 1000)
	const n = 16
	fixed, err := b.MeasureTd(n, cp, BuildOptions{}, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := b.MeasureTd(n, cp, BuildOptions{}, SimOptions{Adaptive: true, LTETol: 20e-3})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(loose/fixed - 1); rel <= adaptiveTdTol {
		t.Fatalf("loosened LTETol stayed within the gate (%.3f%% ≤ %.1f%%) — the accuracy gate is not discriminating",
			rel*100, adaptiveTdTol*100)
	}
	// And the default tolerance on the same point passes the gate.
	tight, err := b.MeasureTd(n, cp, BuildOptions{}, SimOptions{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(tight/fixed - 1); rel > adaptiveTdTol {
		t.Fatalf("default LTETol outside the gate: %.3f%%", rel*100)
	}
}
