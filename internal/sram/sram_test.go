package sram

import (
	"math"
	"testing"

	"mpsram/internal/extract"
	"mpsram/internal/litho"
	"mpsram/internal/spice"
	"mpsram/internal/tech"
)

var cm = extract.SakuraiTamaru{}

func nominal(t *testing.T) (tech.Process, CellParasitics) {
	t.Helper()
	p := tech.N10()
	cp, err := NominalParasitics(p, cm)
	if err != nil {
		t.Fatal(err)
	}
	return p, cp
}

func TestNominalParasiticsBands(t *testing.T) {
	_, cp := nominal(t)
	if cp.Rbl < 2 || cp.Rbl > 20 {
		t.Fatalf("Rbl per cell %.3g Ω outside band", cp.Rbl)
	}
	if cp.Cbl < 10e-18 || cp.Cbl > 60e-18 {
		t.Fatalf("Cbl per cell %.3g F outside band", cp.Cbl)
	}
	if math.Abs(cp.Rvss-cp.Rbl) > 1e-9 {
		t.Fatalf("nominal VSS and BL rails are same-width wires: %g vs %g", cp.Rvss, cp.Rbl)
	}
}

func TestScaleRatios(t *testing.T) {
	_, cp := nominal(t)
	r := extract.Ratios{Rvar: 0.9, Cvar: 1.5, RvssVar: 1.1}
	s := cp.Scale(r)
	if math.Abs(s.Rbl-0.9*cp.Rbl) > 1e-12*cp.Rbl ||
		math.Abs(s.Cbl-1.5*cp.Cbl) > 1e-12*cp.Cbl ||
		math.Abs(s.Rvss-1.1*cp.Rvss) > 1e-12*cp.Rvss {
		t.Fatalf("Scale broken: %+v", s)
	}
}

func TestBuildColumnErrors(t *testing.T) {
	p, cp := nominal(t)
	if _, err := BuildColumn(p, 0, cp, BuildOptions{}); err == nil {
		t.Fatal("n=0 must error")
	}
	if _, err := BuildColumn(p, 16, CellParasitics{}, BuildOptions{}); err == nil {
		t.Fatal("zero parasitics must error")
	}
}

func TestSegmentSelection(t *testing.T) {
	cases := []struct {
		n    int
		opt  BuildOptions
		want int
	}{
		{16, BuildOptions{}, 16},
		{1024, BuildOptions{}, 64},
		{1024, BuildOptions{Segments: 8}, 8},
		{4, BuildOptions{Segments: 99}, 4},
		{1024, BuildOptions{Lumped: true}, 1},
	}
	for _, c := range cases {
		if got := c.opt.segments(c.n); got != c.want {
			t.Errorf("segments(n=%d, %+v) = %d, want %d", c.n, c.opt, got, c.want)
		}
	}
}

func TestLadderConservesTotals(t *testing.T) {
	p, cp := nominal(t)
	for _, n := range []int{1, 16, 64, 1000, 1024} {
		for _, opt := range []BuildOptions{{}, {Segments: 7}, {Lumped: true}} {
			if e := ladderCapError(p, n, cp, opt); e > 1e-12 {
				t.Errorf("n=%d %+v: ladder capacitance error %g", n, opt, e)
			}
			rTot, _ := LadderTotals(p, n, cp, opt)
			if math.Abs(rTot-float64(n)*cp.Rbl) > 1e-9*rTot {
				t.Errorf("n=%d %+v: ladder resistance %g, want %g", n, opt, rTot, float64(n)*cp.Rbl)
			}
		}
	}
}

func TestColumnNetlistShape(t *testing.T) {
	p, cp := nominal(t)
	col, err := BuildColumn(p, 16, cp, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Netlist.Validate(); err != nil {
		t.Fatal(err)
	}
	// 6 cell transistors + 2 precharge devices.
	if got := len(col.Netlist.Ms); got != 8 {
		t.Fatalf("device count %d, want 8", got)
	}
	// 16 segments on bl, blb, vss + taps + 2 init helpers.
	if got := len(col.Netlist.Rs); got != 16*3+1+2 {
		t.Fatalf("resistor count %d", got)
	}
}

func TestReadTdNominalBandsAndMonotonicity(t *testing.T) {
	p, cp := nominal(t)
	prev := 0.0
	for _, n := range []int{16, 64, 256} {
		col, err := BuildColumn(p, n, cp, BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		rr, err := col.MeasureTd(cp, SimOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if rr.Td <= prev {
			t.Fatalf("td not increasing with n: %g after %g", rr.Td, prev)
		}
		// Superlinear: td(4n) > 2·td(n) once the array load dominates.
		if prev > 0 && rr.Td < 2*prev {
			t.Fatalf("td growth sublinear: %g -> %g", prev, rr.Td)
		}
		prev = rr.Td
		// Bands: single to hundreds of ps.
		if rr.Td < 1e-12 || rr.Td > 1e-9 {
			t.Fatalf("td(n=%d) = %g s outside sanity band", n, rr.Td)
		}
	}
}

func TestReadWaveformHealth(t *testing.T) {
	p, cp := nominal(t)
	col, err := BuildColumn(p, 16, cp, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := col.MeasureTd(cp, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := rr.Result
	// The cell must start in the q=0 state (nodeset worked).
	q0 := res.NodeWave(col.Q)[0]
	qb0 := res.NodeWave(col.QB)[0]
	if q0 > 0.05 || qb0 < 0.65 {
		t.Fatalf("initial cell state q=%g qb=%g (metastable DC solution?)", q0, qb0)
	}
	// BLB floats near vdd for the whole read.
	for _, v := range res.NodeWave(col.BLBSense) {
		if v < 0.67 {
			t.Fatalf("blb drooped to %g", v)
		}
	}
	// Read disturb on q stays below the flip threshold.
	if peak := col.SenseMargin(res); peak > 0.3 {
		t.Fatalf("read disturb peak %g V", peak)
	}
	// BL at the far (cell) end leads the sense end during discharge.
	far := res.NodeWave(col.BLFar)
	sense := res.NodeWave(col.BLSense)
	mid := len(far) / 2
	if far[mid] > sense[mid]+1e-4 {
		t.Fatalf("far end (%g) above sense end (%g) during discharge", far[mid], sense[mid])
	}
}

func TestWorstCaseTdpFig4Shape(t *testing.T) {
	// Fig. 4 reproduction gate at n=64: LE3 tdp in the 15–30 % band,
	// SADP and EUV below 5 %.
	p, _ := nominal(t)
	tdps := map[litho.Option]float64{}
	for _, o := range litho.Options {
		wc, err := extract.WorstCase(p, o, cm)
		if err != nil {
			t.Fatal(err)
		}
		tdp, _, _, err := TdPenaltyPct(p, o, wc.Sample, cm, 64, BuildOptions{}, SimOptions{})
		if err != nil {
			t.Fatal(err)
		}
		tdps[o] = tdp
	}
	if tdps[litho.LE3] < 12 || tdps[litho.LE3] > 32 {
		t.Errorf("LE3 tdp %.2f%% outside the ~20%% band", tdps[litho.LE3])
	}
	if tdps[litho.SADP] < 0 || tdps[litho.SADP] > 5 {
		t.Errorf("SADP tdp %.2f%% outside <5%% band", tdps[litho.SADP])
	}
	if tdps[litho.EUV] < 0 || tdps[litho.EUV] > 6 {
		t.Errorf("EUV tdp %.2f%% outside band", tdps[litho.EUV])
	}
	if !(tdps[litho.LE3] > tdps[litho.EUV] && tdps[litho.LE3] > tdps[litho.SADP]) {
		t.Errorf("LE3 must dominate: %+v", tdps)
	}
}

func TestEUVTdpTurnsNegativeAtLargeArrays(t *testing.T) {
	// Paper Fig. 4: EUV tdp is negative at n=1024 (Rvar·Cvar < 1 drives
	// the quadratic term below nominal).
	if testing.Short() {
		t.Skip("large-array transient")
	}
	p, _ := nominal(t)
	wc, err := extract.WorstCase(p, litho.EUV, cm)
	if err != nil {
		t.Fatal(err)
	}
	tdp, _, _, err := TdPenaltyPct(p, litho.EUV, wc.Sample, cm, 1024, BuildOptions{}, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tdp >= 0.5 {
		t.Fatalf("EUV tdp at n=1024 = %.2f%%, want near/below zero", tdp)
	}
	// SADP stays positive at n=1024 (the RVSS anti-correlation effect).
	wcS, _ := extract.WorstCase(p, litho.SADP, cm)
	tdpS, _, _, err := TdPenaltyPct(p, litho.SADP, wcS.Sample, cm, 1024, BuildOptions{}, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tdpS <= 0 {
		t.Fatalf("SADP tdp at n=1024 = %.2f%%, want positive (RVSS effect)", tdpS)
	}
}

func TestIntegratorAgreement(t *testing.T) {
	// Trapezoidal and backward Euler must agree on td within a percent.
	p, cp := nominal(t)
	col, err := BuildColumn(p, 32, cp, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := col.MeasureTd(cp, SimOptions{Method: spice.Trapezoidal})
	if err != nil {
		t.Fatal(err)
	}
	col2, _ := BuildColumn(p, 32, cp, BuildOptions{})
	b, err := col2.MeasureTd(cp, SimOptions{Method: spice.BackwardEuler})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Td-b.Td)/a.Td > 0.02 {
		t.Fatalf("integrators disagree: %g vs %g", a.Td, b.Td)
	}
}

func TestLumpedVsDistributed(t *testing.T) {
	// The lumped ablation must give a td in the same ballpark but not
	// identical (distributed line delays the sense end).
	p, cp := nominal(t)
	colD, _ := BuildColumn(p, 64, cp, BuildOptions{})
	d, err := colD.MeasureTd(cp, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	colL, _ := BuildColumn(p, 64, cp, BuildOptions{Lumped: true})
	l, err := colL.MeasureTd(cp, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Td-l.Td)/d.Td > 0.25 {
		t.Fatalf("lumped %g vs distributed %g diverge too much", l.Td, d.Td)
	}
}

func TestVssTapOption(t *testing.T) {
	// Double-ended VSS strapping shortens the read slightly.
	p, cp := nominal(t)
	colA, _ := BuildColumn(p, 256, cp, BuildOptions{})
	a, err := colA.MeasureTd(cp, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	colB, _ := BuildColumn(p, 256, cp, BuildOptions{VssTapBothEnds: true})
	b, err := colB.MeasureTd(cp, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Td >= a.Td {
		t.Fatalf("double-tap td %g not faster than single-tap %g", b.Td, a.Td)
	}
}

func TestSimulateTdErrors(t *testing.T) {
	p, _ := nominal(t)
	if _, err := SimulateTd(p, litho.LE3, litho.Sample{OLB: 30e-9}, cm, 16, BuildOptions{}, SimOptions{}); err == nil {
		t.Fatal("collapsed geometry must propagate an error")
	}
	if _, _, _, err := TdPenaltyPct(p, litho.LE3, litho.Sample{OLB: 30e-9}, cm, 16, BuildOptions{}, SimOptions{}); err == nil {
		t.Fatal("TdPenaltyPct must propagate errors")
	}
}

func TestCFE(t *testing.T) {
	f := tech.N10().FEOL
	want := f.WPassGate * f.CJPerM
	if math.Abs(CFE(f)-want) > 1e-30 {
		t.Fatalf("CFE = %g, want %g", CFE(f), want)
	}
}

func TestLeakageIsCommonMode(t *testing.T) {
	// Pass-gate leakage droops the floating blb, but differential
	// sensing rejects the common-mode shift: td moves only slightly
	// while the absolute blb level visibly sags.
	p, cp := nominal(t)
	colA, err := BuildColumn(p, 64, cp, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := colA.MeasureTd(cp, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	colB, err := BuildColumn(p, 64, cp, BuildOptions{LeakagePerCell: 5e-9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := colB.MeasureTd(cp, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	blbLeaky := b.Result.NodeWave(colB.BLBSense)
	last := blbLeaky[len(blbLeaky)-1]
	if last > 0.699 {
		t.Fatalf("blb with leakage should droop below precharge: %g", last)
	}
	if math.Abs(b.Td-a.Td)/a.Td > 0.10 {
		t.Fatalf("leakage shifted td too much: %g vs %g", b.Td, a.Td)
	}
}

func TestAdaptiveReadAgreesWithFixed(t *testing.T) {
	p, cp := nominal(t)
	colF, _ := BuildColumn(p, 64, cp, BuildOptions{})
	fixed, err := colF.MeasureTd(cp, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	colA, _ := BuildColumn(p, 64, cp, BuildOptions{})
	adaptive, err := colA.MeasureTd(cp, SimOptions{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(adaptive.Td-fixed.Td)/fixed.Td > 0.03 {
		t.Fatalf("adaptive td %g vs fixed %g", adaptive.Td, fixed.Td)
	}
}
