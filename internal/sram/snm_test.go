package sram

import (
	"math"
	"testing"

	"mpsram/internal/tech"
)

func TestInverterVTCShape(t *testing.T) {
	p := tech.N10()
	vin, vout, err := inverterVTC(p, false, 41)
	if err != nil {
		t.Fatal(err)
	}
	if len(vin) != 41 || len(vout) != 41 {
		t.Fatal("point count")
	}
	// Rail-to-rail and monotonically falling.
	if vout[0] < 0.65 || vout[len(vout)-1] > 0.05 {
		t.Fatalf("VTC rails: %g .. %g", vout[0], vout[len(vout)-1])
	}
	for i := 1; i < len(vout); i++ {
		if vout[i] > vout[i-1]+1e-6 {
			t.Fatalf("VTC not monotone at %d", i)
		}
	}
	if _, _, err := inverterVTC(p, false, 1); err == nil {
		t.Fatal("1-point VTC accepted")
	}
}

func TestReadVTCLiftsLowLevel(t *testing.T) {
	p := tech.N10()
	_, hold, err := inverterVTC(p, false, 21)
	if err != nil {
		t.Fatal(err)
	}
	_, read, err := inverterVTC(p, true, 21)
	if err != nil {
		t.Fatal(err)
	}
	// With the input at vdd, the pass gate to the precharged bit line
	// fights the pull-down: the read low level sits above the hold one.
	last := len(hold) - 1
	if !(read[last] > hold[last]+0.01) {
		t.Fatalf("read low %g not above hold low %g", read[last], hold[last])
	}
}

func TestSnmFromVTCIdealInverter(t *testing.T) {
	// An ideal inverter switching at vdd/2 between rails 0.7/0 yields the
	// maximum possible square: side = vdd/2 − 0 ... for the ideal step
	// VTC the inscribed square side is vdd/2.
	var vin, vout []float64
	for i := 0; i <= 100; i++ {
		x := 0.7 * float64(i) / 100
		y := 0.7
		if x > 0.35 {
			y = 0.0
		}
		vin = append(vin, x)
		vout = append(vout, y)
	}
	snm := snmFromVTC(vin, vout)
	if math.Abs(snm-0.35) > 0.02 {
		t.Fatalf("ideal SNM = %g, want ≈ 0.35", snm)
	}
}

func TestStaticNoiseMargins(t *testing.T) {
	p := tech.N10()
	res, err := StaticNoiseMargins(p)
	if err != nil {
		t.Fatal(err)
	}
	// Plausible bands for a 0.7 V cell.
	if res.Hold < 0.1 || res.Hold > 0.35 {
		t.Fatalf("hold SNM %g outside band", res.Hold)
	}
	if res.Read < 0.02 || res.Read >= res.Hold {
		t.Fatalf("read SNM %g must be positive and strictly below hold %g", res.Read, res.Hold)
	}
	// The idealized alpha-power inverter has a very sharp VTC, so the
	// read degradation is milder than a foundry cell's; we only pin the
	// direction and a minimum gap here.
	if res.Hold-res.Read < 0.003 {
		t.Fatalf("read SNM %g indistinguishable from hold %g", res.Read, res.Hold)
	}
}
