package sram

import (
	"testing"

	"mpsram/internal/extract"
	"mpsram/internal/litho"
	"mpsram/internal/tech"
)

func TestColumnBuilderMatchesOneShotPath(t *testing.T) {
	p := tech.N10()
	cm := extract.SakuraiTamaru{}
	b := NewColumnBuilder(p, cm)
	wc, err := extract.WorstCase(p, litho.SADP, cm)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{16, 64} {
		got, err := b.SimulateTd(litho.SADP, wc.Sample, n, BuildOptions{}, SimOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := SimulateTd(p, litho.SADP, wc.Sample, cm, n, BuildOptions{}, SimOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("n=%d: builder td %g != one-shot td %g", n, got, want)
		}
	}
	// Penalty wrapper agrees too (and exercises the nominal cache twice).
	tdp1, td1, nom1, err := b.TdPenaltyPct(litho.SADP, wc.Sample, 16, BuildOptions{}, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tdp2, td2, nom2, err := TdPenaltyPct(p, litho.SADP, wc.Sample, cm, 16, BuildOptions{}, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tdp1 != tdp2 || td1 != td2 || nom1 != nom2 {
		t.Fatalf("penalty mismatch: (%g,%g,%g) vs (%g,%g,%g)", tdp1, td1, nom1, tdp2, td2, nom2)
	}
}

func TestColumnBuilderScratchReuse(t *testing.T) {
	p := tech.N10()
	cm := extract.SakuraiTamaru{}
	b := NewColumnBuilder(p, cm)
	nom, err := b.Nominal()
	if err != nil {
		t.Fatal(err)
	}
	// Reference netlist from the allocating path.
	ref, err := BuildColumn(p, 32, nom, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Build something bigger first so the second build runs in dirty,
	// larger-capacity scratch.
	if _, err := b.Build(64, nom, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	col, err := b.Build(32, nom, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if col.Netlist != b.scratch {
		t.Fatal("Build must reuse the session scratch netlist")
	}
	if got, want := col.Netlist.WriteSpice("x"), ref.Netlist.WriteSpice("x"); got != want {
		t.Fatalf("reused-scratch netlist differs from fresh build:\n%s\nvs\n%s", got, want)
	}
	if col.BLSense != ref.BLSense || col.BLFar != ref.BLFar || col.Q != ref.Q {
		t.Fatal("probe node ids differ between fresh and reused builds")
	}
}

func TestColumnBuilderRatioCache(t *testing.T) {
	p := tech.N10()
	cm := extract.SakuraiTamaru{}
	b := NewColumnBuilder(p, cm)
	s := litho.Sample{CDEUV: 1e-9}
	r1, err := b.Ratios(litho.EUV, s)
	if err != nil {
		t.Fatal(err)
	}
	want, err := extract.VarRatios(p, litho.EUV, s, cm)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != want {
		t.Fatalf("cached ratios %+v != direct %+v", r1, want)
	}
	r2, err := b.Ratios(litho.EUV, s)
	if err != nil {
		t.Fatal(err)
	}
	if r2 != r1 {
		t.Fatal("second lookup must serve the cached value")
	}
	if len(b.ratios) != 1 {
		t.Fatalf("ratio cache size %d, want 1", len(b.ratios))
	}
}
