// Package sram builds the SPICE-level netlist of the paper's experiment
// vehicle: one column of a 6T SRAM array (the central bit-line pair of the
// 10-pair arrays in paper Fig. 3) with a distributed bit-line RC ladder,
// per-cell pass-gate loading, a precharge circuit whose drive scales with
// the array size, a VSS rail ladder, and the active cell at the far end of
// the line — the worst-case read.
//
// The read operation follows the paper's assumptions: vdd = precharge =
// word-line enable = 0.7 V; the read time td is the time from word-line
// enable until the sense differential |Vbl − Vblb| reaches 0.07 V at the
// sense-amplifier end of the column.
package sram

import (
	"fmt"
	"math"

	"mpsram/internal/circuit"
	"mpsram/internal/device"
	"mpsram/internal/extract"
	"mpsram/internal/litho"
	"mpsram/internal/spice"
	"mpsram/internal/tech"
)

// BuildOptions tunes the column construction.
type BuildOptions struct {
	// Segments is the number of RC ladder segments the bit line is
	// discretized into (0 = automatic: min(n, 64)).
	Segments int
	// VssTapBothEnds straps the VSS rail at both column ends instead of
	// only at the sense end. The single-tap default is the conservative
	// routing that exposes the SADP RVSS anti-correlation the paper
	// discusses in Section III-A.
	VssTapBothEnds bool
	// Lumped collapses the bit line into a single RC (ablation of the
	// distributed model; the paper's formula assumes this).
	Lumped bool
	// LeakagePerCell injects the sub-threshold leakage of each unselected
	// pass gate as a DC pull-down on both bit lines (amperes per cell,
	// 0 disables). An extension: the paper's netlists include leakage
	// via the full device decks; here it is an explicit knob.
	LeakagePerCell float64
}

func (o BuildOptions) segments(n int) int {
	if o.Lumped {
		return 1
	}
	if o.Segments > 0 {
		if o.Segments > n {
			return n
		}
		return o.Segments
	}
	if n < 64 {
		return n
	}
	return 64
}

// Column is a buildable/runnable SRAM column.
type Column struct {
	Netlist *circuit.Netlist
	N       int

	// Probe nodes.
	BLSense  circuit.NodeID // bit line at the sense amplifier
	BLBSense circuit.NodeID // complement bit line at the sense amplifier
	BLFar    circuit.NodeID // bit line at the active cell
	WL       circuit.NodeID
	Q, QB    circuit.NodeID

	proc tech.Process
	nmos *device.MOS
	pmos *device.MOS
}

// CellParasitics carries the per-cell interconnect values used to build a
// column, already scaled by the patterning variability under study.
type CellParasitics struct {
	Rbl  float64 // bit-line resistance per cell, Ω
	Cbl  float64 // bit-line wire capacitance per cell, F
	Rvss float64 // VSS rail resistance per cell, Ω
}

// NominalParasitics extracts the nominal per-cell parasitics for process p
// using capacitance model cm (patterning option is irrelevant at nominal:
// all engines produce the same drawn geometry).
func NominalParasitics(p tech.Process, cm extract.CapModel) (CellParasitics, error) {
	win, err := litho.Realize(p, litho.EUV, litho.Nominal)
	if err != nil {
		return CellParasitics{}, err
	}
	cell := extract.PerCell(p, extract.ExtractVictim(p, win, cm))
	vss := extract.ExtractWire(p, win, win.Victim-1, cm)
	return CellParasitics{
		Rbl:  cell.Rbl,
		Cbl:  cell.Cbl,
		Rvss: vss.RPerM * p.Cell.XPitch,
	}, nil
}

// Scale applies the variability ratios to the nominal parasitics.
func (c CellParasitics) Scale(r extract.Ratios) CellParasitics {
	return CellParasitics{
		Rbl:  c.Rbl * r.Rvar,
		Cbl:  c.Cbl * r.Cvar,
		Rvss: c.Rvss * r.RvssVar,
	}
}

// CFE returns the per-cell front-end loading on the bit line: the off
// pass-gate junction capacitance (the paper's CFE).
func CFE(f tech.FEOL) float64 { return f.WPassGate * f.CJPerM }

// BuildColumn constructs the column netlist for an n-word-line array with
// the given per-cell parasitics.
//
// Topology (sense end = segment S, active cell at segment 0):
//
//	vdd ──[M_pre]── bl_S ──R── bl_{S-1} ── … ── bl_0 ──[M_pg]── q
//	                 │C+Cpre      │C                │C          [6T cell]
//	gnd ──(tap)──  vss_S ──R── vss_{S-1} ── … ── vss_0 ──[M_pd src]
func BuildColumn(p tech.Process, n int, cp CellParasitics, opt BuildOptions) (*Column, error) {
	return buildColumnInto(circuit.New(), device.NewNMOS(p.FEOL), device.NewPMOS(p.FEOL),
		p, n, cp, opt)
}

// buildColumnInto is BuildColumn with caller-supplied netlist storage and
// device cards — the reuse hook behind ColumnBuilder. The netlist must be
// empty (fresh or Reset); construction is deterministic, so a reused
// netlist yields element-for-element the same circuit as a fresh one.
func buildColumnInto(nl *circuit.Netlist, nmos, pmos *device.MOS, p tech.Process, n int, cp CellParasitics, opt BuildOptions) (*Column, error) {
	if n < 1 {
		return nil, fmt.Errorf("sram: array size %d < 1", n)
	}
	if cp.Rbl <= 0 || cp.Cbl <= 0 || cp.Rvss <= 0 {
		return nil, fmt.Errorf("sram: non-positive parasitics %+v", cp)
	}
	f := p.FEOL
	col := &Column{
		Netlist: nl,
		N:       n,
		proc:    p,
		nmos:    nmos,
		pmos:    pmos,
	}

	segs := opt.segments(n)
	cellsPerSeg := float64(n) / float64(segs)
	cfe := CFE(f)

	vdd := nl.Node("vdd")
	nl.AddV("vdd", vdd, circuit.Ground, circuit.DC(f.Vdd))

	// Bit-line ladders (bl and blb are geometrically identical).
	blNodes := make([]circuit.NodeID, segs+1)
	blbNodes := make([]circuit.NodeID, segs+1)
	for i := 0; i <= segs; i++ {
		blNodes[i] = nl.Node(fmt.Sprintf("bl%d", i))
		blbNodes[i] = nl.Node(fmt.Sprintf("blb%d", i))
	}
	segR := cp.Rbl * cellsPerSeg
	segC := (cp.Cbl + cfe) * cellsPerSeg
	for i := 0; i < segs; i++ {
		nl.AddR(fmt.Sprintf("bl%d", i), blNodes[i], blNodes[i+1], segR)
		nl.AddR(fmt.Sprintf("blb%d", i), blbNodes[i], blbNodes[i+1], segR)
	}
	for i := 0; i <= segs; i++ {
		// Node i carries the wire+pass-gate load of its share of cells;
		// ends carry half a segment each (trapezoidal lumping).
		share := 1.0
		if i == 0 || i == segs {
			share = 0.5
		}
		if segs == 1 {
			share = 0.5 // two end nodes, half each
		}
		c := segC * share
		nl.AddC(fmt.Sprintf("bl%d", i), blNodes[i], circuit.Ground, c)
		nl.AddC(fmt.Sprintf("blb%d", i), blbNodes[i], circuit.Ground, c)
	}

	// Unselected-cell pass-gate leakage, lumped per segment.
	if opt.LeakagePerCell > 0 {
		for i := 0; i <= segs; i++ {
			share := 1.0
			if i == 0 || i == segs {
				share = 0.5
			}
			if segs == 1 {
				share = 0.5
			}
			il := opt.LeakagePerCell * cellsPerSeg * share
			nl.AddI(fmt.Sprintf("leak_bl%d", i), circuit.Ground, blNodes[i], circuit.DC(il))
			nl.AddI(fmt.Sprintf("leak_blb%d", i), circuit.Ground, blbNodes[i], circuit.DC(il))
		}
	}

	// VSS rail ladder, tapped to ground at the sense end (and optionally
	// at the cell end).
	vssNodes := make([]circuit.NodeID, segs+1)
	for i := 0; i <= segs; i++ {
		vssNodes[i] = nl.Node(fmt.Sprintf("vss%d", i))
	}
	segRvss := cp.Rvss * cellsPerSeg
	for i := 0; i < segs; i++ {
		nl.AddR(fmt.Sprintf("vss%d", i), vssNodes[i], vssNodes[i+1], segRvss)
	}
	nl.AddR("vsstap", vssNodes[segs], circuit.Ground, 0.1)
	if opt.VssTapBothEnds {
		nl.AddR("vsstap0", vssNodes[0], circuit.Ground, 0.1)
	}

	// Precharge circuit at the sense end: PMOS devices with width
	// scaling WPre(n), plus the fixed column overhead CPre0. Device
	// junction capacitance is added explicitly (the compact model is
	// resistive).
	pre := nl.Node("pre")
	nl.AddV("pre", pre, circuit.Ground, circuit.Pulse{
		V0: 0, V1: f.Vdd, Delay: 1e-12, Rise: 2e-12, Width: 1,
	})
	wpre := f.WPre(n)
	nl.AddM("pre_bl", blNodes[segs], pre, vdd, col.pmos, wpre)
	nl.AddM("pre_blb", blbNodes[segs], pre, vdd, col.pmos, wpre)
	cpre := f.CPre0 + wpre*f.CJPerM
	nl.AddC("pre_bl", blNodes[segs], circuit.Ground, cpre)
	nl.AddC("pre_blb", blbNodes[segs], circuit.Ground, cpre)

	// Word line driver; the word line only loads the active cell's pass
	// gates (other rows have their own word lines, held low).
	wl := nl.Node("wl")
	nl.AddV("wl", wl, circuit.Ground, circuit.Pulse{
		V0: 0, V1: f.Vdd, Delay: 1e-12, Rise: 2e-12, Width: 1,
	})
	nl.AddC("wl", wl, circuit.Ground, 2*f.WPassGate*f.CGatePerM)

	// Active 6T cell at the far end, storing q=0 (read discharges bl).
	q := nl.Node("q")
	qb := nl.Node("qb")
	nl.AddM("pg1", blNodes[0], wl, q, col.nmos, f.WPassGate)
	nl.AddM("pg2", blbNodes[0], wl, qb, col.nmos, f.WPassGate)
	nl.AddM("pd1", q, qb, vssNodes[0], col.nmos, f.WPullDown)
	nl.AddM("pd2", qb, q, vssNodes[0], col.nmos, f.WPullDown)
	nl.AddM("pu1", q, qb, vdd, col.pmos, f.WPullUp)
	nl.AddM("pu2", qb, q, vdd, col.pmos, f.WPullUp)
	// Internal node capacitance: junctions of pd/pu/pg plus the opposite
	// inverter's gate.
	cInt := (f.WPullDown+f.WPullUp+f.WPassGate)*f.CJPerM +
		(f.WPullDown+f.WPullUp)*f.CGatePerM
	nl.AddC("q", q, circuit.Ground, cInt)
	nl.AddC("qb", qb, circuit.Ground, cInt)
	// State-selection helpers: bias the bistable DC solution to q=0.
	nl.AddR("init_q", q, circuit.Ground, 1e9)
	nl.AddR("init_qb", qb, vdd, 1e9)

	col.BLSense = blNodes[segs]
	col.BLBSense = blbNodes[segs]
	col.BLFar = blNodes[0]
	col.WL = wl
	col.Q = q
	col.QB = qb
	return col, nil
}

// SimOptions tunes the read simulation.
type SimOptions struct {
	Method spice.Integrator
	// Dt forces the time step (0 = automatic from the estimated td).
	Dt float64
	// TEnd forces the simulation window (0 = automatic).
	TEnd float64
	// Adaptive switches to the step-doubling backward-Euler integrator
	// (spice.TransientAdaptive); Dt is then ignored.
	Adaptive bool
	// LTETol overrides the adaptive integrator's local-truncation-error
	// tolerance in volts (0 = the accuracy-gated default, 50 µV). Only
	// meaningful with Adaptive; loosening it trades td accuracy for
	// fewer steps — the DOE accuracy gate in the tests pins the default.
	LTETol float64
}

// estimateTd gives a coarse first-order read-time estimate used to size
// the simulation window: discharge of the total line capacitance by the
// (half-strength) cell current plus the distributed wire delay.
func (c *Column) estimateTd(cp CellParasitics) float64 {
	f := c.proc.FEOL
	n := float64(c.N)
	ctot := n*(cp.Cbl+CFE(f)) + f.CPre(c.N)
	ieff := 0.5 * c.nmos.Idsat(f.WPassGate, f.Vdd)
	slew := ctot * f.SenseDeltaV / ieff
	wire := n * cp.Rbl * ctot / 2
	return slew + wire
}

// ReadResult reports one simulated read.
type ReadResult struct {
	Td     float64 // time from word-line enable to sense threshold
	TEnd   float64
	Dt     float64
	Result *spice.Result
}

// MeasureTd runs the read transient and extracts td: the time from the
// word-line-enable instant until |Vbl − Vblb| at the sense end reaches
// the sense-amplifier sensitivity. It constructs a fresh engine per call;
// hot loops should hold a ColumnBuilder, whose resident engine is
// re-targeted with spice.Engine.Reset instead.
func (c *Column) MeasureTd(cp CellParasitics, opt SimOptions) (ReadResult, error) {
	eng, err := spice.New(c.Netlist, spice.Options{Method: opt.Method})
	if err != nil {
		return ReadResult{}, err
	}
	return c.measureTdOn(eng, cp, opt)
}

// measureTdOn is MeasureTd on a caller-supplied engine already targeted at
// c.Netlist — the reuse hook behind ColumnBuilder's resident engine. The
// returned ReadResult's waveforms alias the engine's recycled storage.
func (c *Column) measureTdOn(eng *spice.Engine, cp CellParasitics, opt SimOptions) (ReadResult, error) {
	f := c.proc.FEOL
	est := c.estimateTd(cp)
	tEnd := opt.TEnd
	if tEnd == 0 {
		tEnd = 6*est + 50e-12
	}
	dt := opt.Dt
	if dt == 0 {
		dt = tEnd / 6000
		if dt > 0.5e-12 {
			dt = 0.5e-12
		}
	}
	// Seed the bistable cell in the q=0 state (read discharges bl).
	eng.SetNodeset(map[circuit.NodeID]float64{
		c.Q:  0,
		c.QB: f.Vdd,
	})
	probes := []circuit.NodeID{c.BLSense, c.BLBSense, c.BLFar, c.Q, c.QB, c.WL}
	target := f.SenseDeltaV
	stopAt := func(t float64, v func(circuit.NodeID) float64) bool {
		return v(c.BLBSense)-v(c.BLSense) >= 1.5*target
	}
	var (
		res *spice.Result
		err error
	)
	if opt.Adaptive {
		ltetol := opt.LTETol
		if ltetol == 0 {
			ltetol = 50e-6
		}
		res, err = eng.TransientAdaptive(tEnd, spice.AdaptiveOptions{LTETol: ltetol}, probes, stopAt)
	} else {
		res, err = eng.Transient(tEnd, dt, probes, stopAt)
	}
	if err != nil {
		return ReadResult{}, fmt.Errorf("sram: read transient (n=%d): %w", c.N, err)
	}
	bl := res.NodeWave(c.BLSense)
	blb := res.NodeWave(c.BLBSense)
	tCross, err := res.FirstCrossing(func(k int) float64 { return blb[k] - bl[k] }, target, +1)
	if err != nil {
		return ReadResult{}, fmt.Errorf("sram: sense threshold never reached (n=%d, tEnd=%g): %w",
			c.N, tEnd, err)
	}
	// td is referenced to the word-line enable start (1 ps delay).
	td := tCross - 1e-12
	if td < 0 {
		td = tCross
	}
	return ReadResult{Td: td, TEnd: tEnd, Dt: dt, Result: res}, nil
}

// SimulateTd is the one-call convenience used by the examples and kept as
// a thin compatibility wrapper: build the column for process p, option o,
// variation sample s, array size n, and return td in seconds. Callers that
// simulate more than one point should hold a ColumnBuilder (or drive the
// sweep engine in internal/sweep), which caches the nominal extraction and
// reuses netlist storage across trials.
func SimulateTd(p tech.Process, o litho.Option, s litho.Sample, cm extract.CapModel, n int, bopt BuildOptions, sopt SimOptions) (float64, error) {
	return NewColumnBuilder(p, cm).SimulateTd(o, s, n, bopt, sopt)
}

// TdPenaltyPct simulates the nominal and perturbed reads and returns the
// paper's tdp figure: (td/tdnom − 1)·100. Like SimulateTd it is a
// compatibility wrapper over ColumnBuilder.
func TdPenaltyPct(p tech.Process, o litho.Option, s litho.Sample, cm extract.CapModel, n int, bopt BuildOptions, sopt SimOptions) (tdp, td, tdnom float64, err error) {
	return NewColumnBuilder(p, cm).TdPenaltyPct(o, s, n, bopt, sopt)
}

// SenseMargin reports the read-disturb peak on the internal q node during
// a read, a standard SRAM health metric exposed for the examples.
func (c *Column) SenseMargin(res *spice.Result) float64 {
	q := res.NodeWave(c.Q)
	peak := 0.0
	for _, v := range q {
		if v > peak {
			peak = v
		}
	}
	return peak
}

// Check that segment lumping conserves totals (used by tests): total
// ladder R and C for the given build options.
func LadderTotals(p tech.Process, n int, cp CellParasitics, opt BuildOptions) (rTot, cTot float64) {
	segs := opt.segments(n)
	cellsPerSeg := float64(n) / float64(segs)
	segR := cp.Rbl * cellsPerSeg
	segC := (cp.Cbl + CFE(p.FEOL)) * cellsPerSeg
	rTot = segR * float64(segs)
	total := 0.0
	for i := 0; i <= segs; i++ {
		share := 1.0
		if i == 0 || i == segs {
			share = 0.5
		}
		if segs == 1 {
			share = 0.5
		}
		total += segC * share
	}
	cTot = total
	return rTot, cTot
}

// Sanity guard referenced by tests: lumping must conserve C within fp
// noise: n·(Cbl+CFE) == Σ node caps.
func ladderCapError(p tech.Process, n int, cp CellParasitics, opt BuildOptions) float64 {
	_, cTot := LadderTotals(p, n, cp, opt)
	want := float64(n) * (cp.Cbl + CFE(p.FEOL))
	return math.Abs(cTot-want) / want
}
