package layout

import (
	"math"
	"strings"
	"testing"

	"mpsram/internal/litho"
	"mpsram/internal/tech"
)

func TestSRAM6TCellTracks(t *testing.T) {
	p := tech.N10()
	c := SRAM6TCell(p)
	m1 := c.OnLayer(LayerM1)
	if len(m1) != 5 {
		t.Fatalf("M1 track count %d, want 5", len(m1))
	}
	// The cell contains exactly one BL and one BLB plus the power grid.
	nets := map[string]int{}
	for _, s := range m1 {
		nets[s.Net]++
		if math.Abs(s.Rect.H()-p.M1.Width) > 1e-15 {
			t.Fatalf("track %s width %g", s.Net, s.Rect.H())
		}
		if math.Abs(s.Rect.W()-p.Cell.XPitch) > 1e-15 {
			t.Fatalf("track %s length %g", s.Net, s.Rect.W())
		}
	}
	if nets["BL"] != 1 || nets["BLB"] != 1 || nets["VSS"] != 2 || nets["VDD"] != 1 {
		t.Fatalf("net mix %v", nets)
	}
	// Tracks sit on the M1 pitch grid.
	for i, s := range m1 {
		wantC := (float64(i) + 0.5) * p.M1.Pitch
		if math.Abs(s.Rect.Center().Y-wantC) > 1e-15 {
			t.Fatalf("track %d centre %g, want %g", i, s.Rect.Center().Y, wantC)
		}
	}
	if len(c.OnLayer(LayerM2)) != 1 {
		t.Fatal("missing word line")
	}
	if !strings.Contains(c.Summary(), "M1") {
		t.Fatal("summary")
	}
}

func TestArrayMergesBitLines(t *testing.T) {
	p := tech.N10()
	arr, err := Array(p, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	// After merging, each track of each column is one continuous wire:
	// 5 tracks × 2 columns on M1, plus 16 M2 word lines per column.
	m1 := arr.OnLayer(LayerM1)
	if len(m1) != 5*2 {
		t.Fatalf("merged M1 count %d, want 10", len(m1))
	}
	for _, s := range m1 {
		if math.Abs(s.Rect.W()-16*p.Cell.XPitch) > 1e-12 {
			t.Fatalf("bit line length %g, want full array %g", s.Rect.W(), 16*p.Cell.XPitch)
		}
	}
	if got := len(arr.OnLayer(LayerM2)); got != 32 {
		t.Fatalf("word-line count %d, want 32", got)
	}
	// Bounds match the floorplan.
	b := arr.Bounds()
	if math.Abs(b.W()-16*p.Cell.XPitch) > 1e-12 || math.Abs(b.H()-2*p.Cell.YPitch) > 1e-12 {
		t.Fatalf("bounds %v", b)
	}
	if _, err := Array(p, 0, 1); err == nil {
		t.Fatal("bad array size must error")
	}
}

func TestFig3ArraySizes(t *testing.T) {
	// The paper's DOE: 10 bit-line pairs × {16, 64, 256, 1024} word
	// lines must all floorplan cleanly.
	p := tech.N10()
	for _, n := range []int{16, 64, 256, 1024} {
		arr, err := Array(p, n, 10)
		if err != nil {
			t.Fatal(err)
		}
		if arr.Bounds().Empty() {
			t.Fatalf("empty array n=%d", n)
		}
	}
}

func TestFromWindowDistortion(t *testing.T) {
	p := tech.N10()
	s := litho.Sample{CDA: 3e-9, CDB: 3e-9, CDC: 3e-9, OLB: 8e-9, OLC: -8e-9}
	win, err := litho.Realize(p, litho.LE3, s)
	if err != nil {
		t.Fatal(err)
	}
	c := FromWindow(p, win, 1e-6)
	if len(c.Shapes) != len(win.Wires) {
		t.Fatal("shape count mismatch")
	}
	// The victim's rect reflects the distorted width.
	v := c.Shapes[win.Victim]
	if math.Abs(v.Rect.H()-(p.M1.Width+3e-9)) > 1e-15 {
		t.Fatalf("victim width %g", v.Rect.H())
	}
	if !strings.Contains(v.Net, "BL") {
		t.Fatalf("victim net %q", v.Net)
	}
}

func TestWriteGDSText(t *testing.T) {
	p := tech.N10()
	c := SRAM6TCell(p)
	var b strings.Builder
	if err := c.WriteGDSText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"HEADER 600", "STRNAME sram6t_hd", "BOUNDARY", "ENDLIB", "PROPVALUE BL"} {
		if !strings.Contains(out, want) {
			t.Fatalf("GDS text missing %q", want)
		}
	}
	if got := strings.Count(out, "BOUNDARY"); got != len(c.Shapes) {
		t.Fatalf("boundary count %d, want %d", got, len(c.Shapes))
	}
}

func TestASCIISection(t *testing.T) {
	p := tech.N10()
	nom, _ := litho.Realize(p, litho.EUV, litho.Nominal)
	art := ASCIISection(nom, 0.5)
	if !strings.Contains(art, "B") || !strings.Contains(art, "#") || !strings.Contains(art, ".") {
		t.Fatalf("ascii section %q", art)
	}
	// A shifted window shows an asymmetric gap pattern.
	wc, _ := litho.Realize(p, litho.LE3, litho.Sample{OLB: 8e-9})
	if ASCIISection(wc, 0.5) == art {
		t.Fatal("distorted window renders identically to nominal")
	}
	// Degenerate scale falls back.
	if ASCIISection(nom, -1) == "" {
		t.Fatal("fallback scale broken")
	}
}

func TestLayerStrings(t *testing.T) {
	if LayerM1.String() != "metal1" || LayerM2.String() != "metal2" ||
		LayerVia1.String() != "via1" || LayerDiff.String() != "diff" ||
		LayerPoly.String() != "poly" || Layer(99).String() != "layer99" {
		t.Fatal("layer names")
	}
}
