// Package layout generates the physical-design artefacts of the study: a
// parameterized 6T SRAM cell abstraction with the paper's metal style
// (unidirectional horizontal metal1 bit lines and power rails at minimum
// spacing, unidirectional vertical metal2 word lines — Fig. 1b), array
// floorplans (Fig. 3), realized-window cross-sections (Fig. 2), and a
// GDS-flavoured text export.
//
// This is the stand-in for the proprietary imec cell GDSII: the
// variability study only consumes M1 track geometry, which this generator
// produces from the technology description.
package layout

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"mpsram/internal/geom"
	"mpsram/internal/litho"
	"mpsram/internal/tech"
)

// Layer identifies a drawing layer.
type Layer int

const (
	LayerM1 Layer = iota
	LayerM2
	LayerVia1
	LayerDiff
	LayerPoly
)

func (l Layer) String() string {
	switch l {
	case LayerM1:
		return "metal1"
	case LayerM2:
		return "metal2"
	case LayerVia1:
		return "via1"
	case LayerDiff:
		return "diff"
	case LayerPoly:
		return "poly"
	default:
		return fmt.Sprintf("layer%d", int(l))
	}
}

// Shape is one rectangle on a layer, tagged with its net.
type Shape struct {
	Layer Layer
	Net   string
	Rect  geom.Rect
}

// Cell is a named collection of shapes.
type Cell struct {
	Name   string
	Shapes []Shape
}

// Bounds returns the bounding box of all shapes.
func (c *Cell) Bounds() geom.Rect {
	var b geom.Rect
	for _, s := range c.Shapes {
		b = b.Union(s.Rect)
	}
	return b
}

// OnLayer returns the shapes on one layer.
func (c *Cell) OnLayer(l Layer) []Shape {
	var out []Shape
	for _, s := range c.Shapes {
		if s.Layer == l {
			out = append(out, s)
		}
	}
	return out
}

// m1TrackNets is the vertical M1 track order within one cell, bottom to
// top: the bit-line pair embedded in the power grid (paper Fig. 1b).
var m1TrackNets = []string{"VSS", "BL", "VDD", "BLB", "VSS"}

// SRAM6TCell generates the M1/M2 abstraction of the high-density 6T cell:
// horizontal M1 tracks (bit lines + rails) across the cell x-pitch and one
// vertical M2 word-line strap.
func SRAM6TCell(p tech.Process) *Cell {
	m := p.M1
	c := &Cell{Name: "sram6t_hd"}
	for i, net := range m1TrackNets {
		yc := (float64(i) + 0.5) * m.Pitch
		c.Shapes = append(c.Shapes, Shape{
			Layer: LayerM1,
			Net:   net,
			Rect:  geom.NewRect(0, yc-m.Width/2, p.Cell.XPitch, yc+m.Width/2),
		})
	}
	// Word line: vertical M2 through the cell centre.
	wlW := m.Width
	xc := p.Cell.XPitch / 2
	c.Shapes = append(c.Shapes, Shape{
		Layer: LayerM2,
		Net:   "WL",
		Rect:  geom.NewRect(xc-wlW/2, 0, xc+wlW/2, p.Cell.YPitch),
	})
	return c
}

// Array tiles the 6T cell into a rows×cols floorplan (rows = word lines =
// cells along a bit line; cols = bit-line pairs). Shapes are flattened;
// abutting M1 tracks of horizontally adjacent cells merge into continuous
// bit lines.
func Array(p tech.Process, rows, cols int) (*Cell, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("layout: bad array %dx%d", rows, cols)
	}
	base := SRAM6TCell(p)
	arr := &Cell{Name: fmt.Sprintf("array_%dx%d", cols, rows)}
	for r := 0; r < rows; r++ {
		dx := float64(r) * p.Cell.XPitch
		for cIdx := 0; cIdx < cols; cIdx++ {
			dy := float64(cIdx) * p.Cell.YPitch
			for _, s := range base.Shapes {
				ns := s
				ns.Rect = s.Rect.Translate(geom.Point{X: dx, Y: dy})
				arr.Shapes = append(arr.Shapes, ns)
			}
		}
	}
	arr.mergeHorizontalM1()
	return arr, nil
}

// mergeHorizontalM1 merges x-abutting same-net M1 rectangles into single
// continuous wires (the bit lines run the full array).
func (c *Cell) mergeHorizontalM1() {
	type key struct {
		lo, hi float64
		net    string
	}
	groups := map[key][]geom.Rect{}
	var rest []Shape
	for _, s := range c.Shapes {
		if s.Layer != LayerM1 {
			rest = append(rest, s)
			continue
		}
		k := key{s.Rect.Min.Y, s.Rect.Max.Y, s.Net}
		groups[k] = append(groups[k], s.Rect)
	}
	var keys []key
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].lo != keys[j].lo {
			return keys[i].lo < keys[j].lo
		}
		return keys[i].net < keys[j].net
	})
	merged := rest
	for _, k := range keys {
		rects := groups[k]
		sort.Slice(rects, func(i, j int) bool { return rects[i].Min.X < rects[j].Min.X })
		cur := rects[0]
		for _, r := range rects[1:] {
			if r.Min.X <= cur.Max.X+1e-12 {
				if r.Max.X > cur.Max.X {
					cur.Max.X = r.Max.X
				}
				continue
			}
			merged = append(merged, Shape{Layer: LayerM1, Net: k.net, Rect: cur})
			cur = r
		}
		merged = append(merged, Shape{Layer: LayerM1, Net: k.net, Rect: cur})
	}
	c.Shapes = merged
}

// FromWindow renders a realized patterning window (litho cross-section) as
// wires of the given length — the Fig. 2 "layout distortion" artefact.
func FromWindow(p tech.Process, win litho.Window, length float64) *Cell {
	c := &Cell{Name: fmt.Sprintf("window_%v", win.Option)}
	for _, w := range win.Wires {
		c.Shapes = append(c.Shapes, Shape{
			Layer: LayerM1,
			Net:   fmt.Sprintf("%v(%v)", w.Net, w.Mask),
			Rect:  geom.NewRect(0, w.Span.Lo, length, w.Span.Hi),
		})
	}
	return c
}

// WriteGDSText emits the cell in a GDSII-flavoured text stream (one BOUNDARY
// record per shape, nm units).
func (c *Cell) WriteGDSText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "HEADER 600\nBGNLIB\nLIBNAME %s\nUNITS 1e-9 1e-9\nBGNSTR\nSTRNAME %s\n",
		c.Name, c.Name); err != nil {
		return err
	}
	for _, s := range c.Shapes {
		r := s.Rect
		if _, err := fmt.Fprintf(w,
			"BOUNDARY\nLAYER %d\nDATATYPE 0\nPROPATTR 1\nPROPVALUE %s\nXY %0.1f %0.1f %0.1f %0.1f %0.1f %0.1f %0.1f %0.1f %0.1f %0.1f\nENDEL\n",
			int(s.Layer), s.Net,
			r.Min.X*1e9, r.Min.Y*1e9,
			r.Max.X*1e9, r.Min.Y*1e9,
			r.Max.X*1e9, r.Max.Y*1e9,
			r.Min.X*1e9, r.Max.Y*1e9,
			r.Min.X*1e9, r.Min.Y*1e9); err != nil {
			return err
		}
	}
	_, err := fmt.Fprint(w, "ENDSTR\nENDLIB\n")
	return err
}

// Summary describes the cell for the Fig. 3 style overview.
func (c *Cell) Summary() string {
	b := c.Bounds()
	var m1, m2 int
	for _, s := range c.Shapes {
		switch s.Layer {
		case LayerM1:
			m1++
		case LayerM2:
			m2++
		}
	}
	return fmt.Sprintf("%s: %.2f x %.2f um, %d shapes (%d M1, %d M2)",
		c.Name, b.W()*1e6, b.H()*1e6, len(c.Shapes), m1, m2)
}

// ASCIISection draws the M1 cross-section of a window cell as a one-line
// track diagram, used by the CLI's fig2 rendering.
func ASCIISection(win litho.Window, colsPerNM float64) string {
	if colsPerNM <= 0 {
		colsPerNM = 1
	}
	lo := win.Wires[0].Span.Lo
	var b strings.Builder
	cursor := lo
	for i, w := range win.Wires {
		gap := int((w.Span.Lo - cursor) * 1e9 * colsPerNM)
		if gap > 0 {
			b.WriteString(strings.Repeat(".", gap))
		}
		width := int(w.Width() * 1e9 * colsPerNM)
		if width < 1 {
			width = 1
		}
		ch := "#"
		if i == win.Victim {
			ch = "B"
		}
		b.WriteString(strings.Repeat(ch, width))
		cursor = w.Span.Hi
	}
	return b.String()
}
