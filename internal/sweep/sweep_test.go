package sweep

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"mpsram/internal/extract"
	"mpsram/internal/litho"
	"mpsram/internal/sram"
	"mpsram/internal/tech"
)

func testEnv() Env {
	return Env{Proc: tech.N10(), Cap: extract.SakuraiTamaru{}}
}

// testSizes keeps the unit tests fast; the full DOE runs in the exp tests
// and the bench harness.
var testSizes = []int{16, 64}

func fullPlan(sizes ...int) *Plan {
	pl := NewPlan()
	// Fig. 4: nominal + worst case per option per size.
	pl.AddNominal(sizes...)
	for _, o := range litho.Options {
		pl.AddWorstCase(o, sizes...)
	}
	// Table II: nominal per size — duplicates of Fig. 4's nominals.
	pl.AddNominal(sizes...)
	// Table III: worst case per option per size — duplicates of Fig. 4.
	for _, o := range litho.Options {
		pl.AddWorstCase(o, sizes...)
	}
	return pl
}

func TestPlanDedup(t *testing.T) {
	pl := fullPlan(testSizes...)
	// Unique transients: one nominal per size plus one worst case per
	// option per size.
	want := len(testSizes) * (1 + len(litho.Options))
	if pl.Len() != want {
		t.Fatalf("plan size %d, want %d", pl.Len(), want)
	}
	// Nominal points dedupe across options.
	pl.Add(Point{Option: litho.SADP, Kind: Nominal, N: testSizes[0]})
	pl.Add(Point{Option: litho.LE3, Kind: Nominal, N: testSizes[0]})
	if pl.Len() != want {
		t.Fatalf("nominal dedup broken: plan size %d, want %d", pl.Len(), want)
	}
	opts := pl.procOptions()
	if len(opts) != len(litho.Options) {
		t.Fatalf("procOptions %v", opts)
	}
	// The job order is canonical regardless of declaration order.
	a := fullPlan(testSizes...).jobs()
	rev := NewPlan()
	for _, o := range []litho.Option{litho.EUV, litho.SADP, litho.LE3} {
		rev.AddWorstCase(o, testSizes[1], testSizes[0])
	}
	rev.AddNominal(testSizes[1], testSizes[0])
	b := rev.jobs()
	if len(a) != len(b) {
		t.Fatalf("job counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRunMatchesSerialOneShotPath(t *testing.T) {
	env := testEnv()
	res, err := Run(context.Background(), env, fullPlan(testSizes...), Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs() != len(testSizes)*(1+len(litho.Options)) {
		t.Fatalf("jobs run %d", res.Jobs())
	}
	for _, o := range litho.Options {
		wc, err := extract.WorstCase(env.Proc, o, env.Cap)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := res.WorstCase(o)
		if !ok || got.Sample != wc.Sample || got.Ratios != wc.Ratios {
			t.Fatalf("%v: worst case mismatch", o)
		}
		for _, n := range testSizes {
			wantTdp, wantTd, wantNom, err := sram.TdPenaltyPct(
				env.Proc, o, wc.Sample, env.Cap, n, env.Build, env.Sim)
			if err != nil {
				t.Fatal(err)
			}
			if td, ok := res.Td(Point{Option: o, Kind: WorstCase, N: n}); !ok || td != wantTd {
				t.Fatalf("%v n=%d: td %g want %g", o, n, td, wantTd)
			}
			if nom, ok := res.TdNom(n); !ok || nom != wantNom {
				t.Fatalf("n=%d: tdnom %g want %g", n, nom, wantNom)
			}
			if tdp, ok := res.TdpPct(o, n); !ok || tdp != wantTdp {
				t.Fatalf("%v n=%d: tdp %g want %g", o, n, tdp, wantTdp)
			}
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	env := testEnv()
	ctx := context.Background()
	base, err := Run(ctx, env, fullPlan(testSizes...), Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		res, err := Run(ctx, env, fullPlan(testSizes...), Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if res.Jobs() != base.Jobs() {
			t.Fatalf("workers=%d: job count %d vs %d", workers, res.Jobs(), base.Jobs())
		}
		for p, want := range base.td {
			if got := res.td[p]; got != want {
				t.Fatalf("workers=%d %v: td %g != %g", workers, p, got, want)
			}
		}
	}
}

func TestRunCancellation(t *testing.T) {
	env := testEnv()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := Run(ctx, env, fullPlan(64, 256, 1024), Config{Workers: 2})
	if err == nil {
		t.Fatal("canceled sweep must fail")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	// Prompt return: the pre-canceled sweep must not run the whole
	// 1024-cell DOE (which takes seconds).
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("canceled sweep took %v", d)
	}
}

func TestRunProgressSerializedAndComplete(t *testing.T) {
	env := testEnv()
	var calls []int
	cfg := Config{
		Workers: 4,
		Progress: func(done, total int) {
			if total != len(testSizes)*(1+len(litho.Options)) {
				t.Errorf("total %d", total)
			}
			calls = append(calls, done) // engine serializes calls
		},
	}
	if _, err := Run(context.Background(), env, fullPlan(testSizes...), cfg); err != nil {
		t.Fatal(err)
	}
	if len(calls) == 0 {
		t.Fatal("no progress reported")
	}
	for i := 1; i < len(calls); i++ {
		if calls[i] <= calls[i-1] {
			t.Fatalf("progress not strictly increasing: %v", calls)
		}
	}
	if calls[len(calls)-1] != len(testSizes)*(1+len(litho.Options)) {
		t.Fatalf("final progress %d", calls[len(calls)-1])
	}
}

// crossEnv returns an environment carrying the full registry, and the
// registry names.
func crossEnv() (Env, []string) {
	reg := tech.Default()
	env := testEnv()
	env.Procs = map[string]tech.Process{}
	for _, p := range reg.Processes() {
		env.Procs[p.Name] = p
	}
	return env, reg.Names()
}

// crossPlan declares nominal + per-option worst-case points for every
// named process, duplicated the way independent per-node consumers would
// declare them.
func crossPlan(names []string, sizes ...int) *Plan {
	pl := NewPlan()
	for _, name := range names {
		pl.AddNominalFor(name, sizes...)
		for _, o := range litho.Options {
			pl.AddWorstCaseFor(name, o, sizes...)
		}
		// A second consumer re-declares the same node's needs.
		pl.AddNominalFor(name, sizes...)
	}
	return pl
}

// TestCrossProcessPlanDedupesPerProcess pins the new dedup key: nominal
// transients coalesce per (process, size) — across options and repeated
// declarations — but never across processes.
func TestCrossProcessPlanDedupesPerProcess(t *testing.T) {
	_, names := crossEnv()
	pl := crossPlan(names, testSizes...)
	want := len(names) * len(testSizes) * (1 + len(litho.Options))
	if pl.Len() != want {
		t.Fatalf("plan size %d, want %d", pl.Len(), want)
	}
	// Nominal points on different processes are distinct jobs.
	pl.AddNominalFor(names[0], testSizes[0])
	if pl.Len() != want {
		t.Fatalf("same-process nominal redeclaration grew the plan to %d", pl.Len())
	}
	if got := len(pl.procOptions()); got != len(names)*len(litho.Options) {
		t.Fatalf("procOptions %d, want %d", got, len(names)*len(litho.Options))
	}
	if got := pl.procNames(); len(got) != len(names) {
		t.Fatalf("procNames %v", got)
	}
}

// TestCrossProcessSharedMatchesSerialPerProcess is the tentpole gate: one
// cross-process plan must produce, for every node, exactly the results of
// a serial per-process run (same engine, one process at a time) — bit for
// bit, at several worker counts.
func TestCrossProcessSharedMatchesSerialPerProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process SPICE sweep")
	}
	env, names := crossEnv()
	ctx := context.Background()
	// Serial reference: one single-process Run per node, default-process
	// ("") points bound to that node.
	type key struct {
		proc string
		p    Point
	}
	serial := map[key]float64{}
	for _, name := range names {
		senv := env
		senv.Proc = env.Procs[name]
		pl := NewPlan()
		pl.AddNominal(testSizes...)
		for _, o := range litho.Options {
			pl.AddWorstCase(o, testSizes...)
		}
		res, err := Run(ctx, senv, pl, Config{Workers: 2})
		if err != nil {
			t.Fatalf("serial %s: %v", name, err)
		}
		for p, td := range res.td {
			serial[key{name, p}] = td
		}
	}
	for _, workers := range []int{1, 8} {
		res, err := Run(ctx, env, crossPlan(names, testSizes...), Config{Workers: workers})
		if err != nil {
			t.Fatalf("shared workers=%d: %v", workers, err)
		}
		if res.Jobs() != len(names)*len(testSizes)*(1+len(litho.Options)) {
			t.Fatalf("workers=%d: jobs %d", workers, res.Jobs())
		}
		for _, name := range names {
			if _, ok := res.NominalFor(name); !ok {
				t.Fatalf("workers=%d: no nominal parasitics for %s", workers, name)
			}
			for _, n := range testSizes {
				nom, ok := res.TdNomFor(name, n)
				if !ok {
					t.Fatalf("workers=%d %s: missing nominal n=%d", workers, name, n)
				}
				if want := serial[key{name, Point{Kind: Nominal, N: n}}]; nom != want {
					t.Fatalf("workers=%d %s n=%d: nominal td %g != serial %g", workers, name, n, nom, want)
				}
				for _, o := range litho.Options {
					td, ok := res.Td(Point{Proc: name, Option: o, Kind: WorstCase, N: n})
					if !ok {
						t.Fatalf("workers=%d %s %v: missing worst case n=%d", workers, name, o, n)
					}
					if want := serial[key{name, Point{Option: o, Kind: WorstCase, N: n}}]; td != want {
						t.Fatalf("workers=%d %s %v n=%d: td %g != serial %g", workers, name, o, n, td, want)
					}
					if _, ok := res.TdpPctFor(name, o, n); !ok {
						t.Fatalf("workers=%d %s %v n=%d: missing tdp", workers, name, o, n)
					}
				}
				if _, ok := res.WorstCaseFor(name, litho.LE3); !ok {
					t.Fatalf("workers=%d %s: missing worst-case search", workers, name)
				}
			}
		}
	}
}

// TestRunRejectsUnknownProcess checks the fail-before-simulating contract
// and that the error names the available processes.
func TestRunRejectsUnknownProcess(t *testing.T) {
	env, _ := crossEnv()
	pl := NewPlan()
	pl.AddNominalFor("N3", 16)
	_, err := Run(context.Background(), env, pl, Config{})
	if err == nil {
		t.Fatal("unknown process must fail the sweep")
	}
	for _, want := range []string{"N3", "N10", "N7", "N5"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %s", err, want)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if _, err := Run(context.Background(), testEnv(), NewPlan(), Config{}); err == nil {
		t.Fatal("empty plan must fail")
	}
	if _, err := Run(context.Background(), Env{Proc: tech.N10()}, fullPlan(16), Config{}); err == nil {
		t.Fatal("nil cap model must fail")
	}
}

func TestRunSurfacesJobErrorWithPointContext(t *testing.T) {
	env := testEnv()
	// A forced sub-picosecond window guarantees the sense threshold is
	// never reached, so every transient fails; the sweep must fail fast
	// and name the failing point rather than return zeros.
	env.Sim = sram.SimOptions{TEnd: 1e-15}
	_, err := Run(context.Background(), env, fullPlan(16, 64, 256, 1024), Config{Workers: 2})
	if err == nil {
		t.Fatal("failing transients must error the sweep")
	}
	if !strings.Contains(err.Error(), "sweep:") || !strings.Contains(err.Error(), "n=") {
		t.Fatalf("error lacks point context: %v", err)
	}
}

// TestResultAccessorsAndPointStrings covers the per-process result views
// and the human-readable point labels on a tiny single-size run.
func TestResultAccessorsAndPointStrings(t *testing.T) {
	env, _ := crossEnv()
	pl := NewPlan()
	pl.AddNominal(16)
	pl.AddNominalFor("N7", 16)
	pl.AddWorstCaseFor("N7", litho.EUV, 16)
	res, err := Run(context.Background(), env, pl, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nominal().Rbl <= 0 {
		t.Fatal("default nominal parasitics missing")
	}
	if _, ok := res.NominalFor("N7"); !ok {
		t.Fatal("N7 nominal parasitics missing")
	}
	if _, ok := res.NominalFor("N5"); ok {
		t.Fatal("N5 was not in the plan")
	}
	if _, ok := res.TdNomFor("N7", 16); !ok {
		t.Fatal("N7 nominal td missing")
	}
	if _, ok := res.TdpPctFor("N7", litho.EUV, 16); !ok {
		t.Fatal("N7 tdp missing")
	}
	if _, ok := res.TdpPctFor("N7", litho.LE3, 16); ok {
		t.Fatal("LE3 worst case was not planned for N7")
	}
	for p, want := range map[Point]string{
		{Kind: Nominal, N: 16}:                                  "nominal n=16",
		{Proc: "N7", Kind: Nominal, N: 16}:                      "N7 nominal n=16",
		{Proc: "N7", Option: litho.EUV, Kind: WorstCase, N: 16}: "N7 EUV worst-case n=16",
	} {
		if got := p.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

// TestPurelyNamedPlanIgnoresDefaultProcess pins the review fix: a plan
// that binds every point by name must neither touch nor require Env.Proc
// (whose zero value would fail extraction).
func TestPurelyNamedPlanIgnoresDefaultProcess(t *testing.T) {
	env, _ := crossEnv()
	env.Proc = tech.Process{} // deliberately unusable
	pl := NewPlan()
	pl.AddNominalFor("N7", 16)
	res, err := Run(context.Background(), env, pl, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.TdNomFor("N7", 16); !ok {
		t.Fatal("N7 nominal missing")
	}
	if _, ok := res.NominalFor(""); ok {
		t.Fatal("default process was extracted despite no empty-Proc points")
	}
}
