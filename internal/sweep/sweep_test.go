package sweep

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"mpsram/internal/extract"
	"mpsram/internal/litho"
	"mpsram/internal/sram"
	"mpsram/internal/tech"
)

func testEnv() Env {
	return Env{Proc: tech.N10(), Cap: extract.SakuraiTamaru{}}
}

// testSizes keeps the unit tests fast; the full DOE runs in the exp tests
// and the bench harness.
var testSizes = []int{16, 64}

func fullPlan(sizes ...int) *Plan {
	pl := NewPlan()
	// Fig. 4: nominal + worst case per option per size.
	pl.AddNominal(sizes...)
	for _, o := range litho.Options {
		pl.AddWorstCase(o, sizes...)
	}
	// Table II: nominal per size — duplicates of Fig. 4's nominals.
	pl.AddNominal(sizes...)
	// Table III: worst case per option per size — duplicates of Fig. 4.
	for _, o := range litho.Options {
		pl.AddWorstCase(o, sizes...)
	}
	return pl
}

func TestPlanDedup(t *testing.T) {
	pl := fullPlan(testSizes...)
	// Unique transients: one nominal per size plus one worst case per
	// option per size.
	want := len(testSizes) * (1 + len(litho.Options))
	if pl.Len() != want {
		t.Fatalf("plan size %d, want %d", pl.Len(), want)
	}
	// Nominal points dedupe across options.
	pl.Add(Point{Option: litho.SADP, Kind: Nominal, N: testSizes[0]})
	pl.Add(Point{Option: litho.LE3, Kind: Nominal, N: testSizes[0]})
	if pl.Len() != want {
		t.Fatalf("nominal dedup broken: plan size %d, want %d", pl.Len(), want)
	}
	opts := pl.options()
	if len(opts) != len(litho.Options) {
		t.Fatalf("options %v", opts)
	}
	// The job order is canonical regardless of declaration order.
	a := fullPlan(testSizes...).jobs()
	rev := NewPlan()
	for _, o := range []litho.Option{litho.EUV, litho.SADP, litho.LE3} {
		rev.AddWorstCase(o, testSizes[1], testSizes[0])
	}
	rev.AddNominal(testSizes[1], testSizes[0])
	b := rev.jobs()
	if len(a) != len(b) {
		t.Fatalf("job counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRunMatchesSerialOneShotPath(t *testing.T) {
	env := testEnv()
	res, err := Run(context.Background(), env, fullPlan(testSizes...), Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs() != len(testSizes)*(1+len(litho.Options)) {
		t.Fatalf("jobs run %d", res.Jobs())
	}
	for _, o := range litho.Options {
		wc, err := extract.WorstCase(env.Proc, o, env.Cap)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := res.WorstCase(o)
		if !ok || got.Sample != wc.Sample || got.Ratios != wc.Ratios {
			t.Fatalf("%v: worst case mismatch", o)
		}
		for _, n := range testSizes {
			wantTdp, wantTd, wantNom, err := sram.TdPenaltyPct(
				env.Proc, o, wc.Sample, env.Cap, n, env.Build, env.Sim)
			if err != nil {
				t.Fatal(err)
			}
			if td, ok := res.Td(Point{Option: o, Kind: WorstCase, N: n}); !ok || td != wantTd {
				t.Fatalf("%v n=%d: td %g want %g", o, n, td, wantTd)
			}
			if nom, ok := res.TdNom(n); !ok || nom != wantNom {
				t.Fatalf("n=%d: tdnom %g want %g", n, nom, wantNom)
			}
			if tdp, ok := res.TdpPct(o, n); !ok || tdp != wantTdp {
				t.Fatalf("%v n=%d: tdp %g want %g", o, n, tdp, wantTdp)
			}
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	env := testEnv()
	ctx := context.Background()
	base, err := Run(ctx, env, fullPlan(testSizes...), Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		res, err := Run(ctx, env, fullPlan(testSizes...), Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if res.Jobs() != base.Jobs() {
			t.Fatalf("workers=%d: job count %d vs %d", workers, res.Jobs(), base.Jobs())
		}
		for p, want := range base.td {
			if got := res.td[p]; got != want {
				t.Fatalf("workers=%d %v: td %g != %g", workers, p, got, want)
			}
		}
	}
}

func TestRunCancellation(t *testing.T) {
	env := testEnv()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := Run(ctx, env, fullPlan(64, 256, 1024), Config{Workers: 2})
	if err == nil {
		t.Fatal("canceled sweep must fail")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	// Prompt return: the pre-canceled sweep must not run the whole
	// 1024-cell DOE (which takes seconds).
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("canceled sweep took %v", d)
	}
}

func TestRunProgressSerializedAndComplete(t *testing.T) {
	env := testEnv()
	var calls []int
	cfg := Config{
		Workers: 4,
		Progress: func(done, total int) {
			if total != len(testSizes)*(1+len(litho.Options)) {
				t.Errorf("total %d", total)
			}
			calls = append(calls, done) // engine serializes calls
		},
	}
	if _, err := Run(context.Background(), env, fullPlan(testSizes...), cfg); err != nil {
		t.Fatal(err)
	}
	if len(calls) == 0 {
		t.Fatal("no progress reported")
	}
	for i := 1; i < len(calls); i++ {
		if calls[i] <= calls[i-1] {
			t.Fatalf("progress not strictly increasing: %v", calls)
		}
	}
	if calls[len(calls)-1] != len(testSizes)*(1+len(litho.Options)) {
		t.Fatalf("final progress %d", calls[len(calls)-1])
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if _, err := Run(context.Background(), testEnv(), NewPlan(), Config{}); err == nil {
		t.Fatal("empty plan must fail")
	}
	if _, err := Run(context.Background(), Env{Proc: tech.N10()}, fullPlan(16), Config{}); err == nil {
		t.Fatal("nil cap model must fail")
	}
}

func TestRunSurfacesJobErrorWithPointContext(t *testing.T) {
	env := testEnv()
	// A forced sub-picosecond window guarantees the sense threshold is
	// never reached, so every transient fails; the sweep must fail fast
	// and name the failing point rather than return zeros.
	env.Sim = sram.SimOptions{TEnd: 1e-15}
	_, err := Run(context.Background(), env, fullPlan(16, 64, 256, 1024), Config{Workers: 2})
	if err == nil {
		t.Fatal("failing transients must error the sweep")
	}
	if !strings.Contains(err.Error(), "sweep:") || !strings.Contains(err.Error(), "n=") {
		t.Fatalf("error lacks point context: %v", err)
	}
}
