// Package sweep is the sharded SPICE sweep engine behind the paper's
// simulation-driven results (Fig. 4, Table II, Table III) and their
// multi-node extensions.
//
// Callers describe what they need as a declarative Plan of simulation
// points keyed by (process, option, sample kind, array size); the engine
// deduplicates points that denote the same transient before running
// anything. Two dedup rules do the heavy lifting:
//
//   - Nominal points are option-independent (every patterning engine
//     draws the same nominal geometry), so one nominal transient per
//     (process, size) serves all options — and all consumers: the same
//     simulation feeds Fig. 4's td_nom column, Table II's simulation
//     column and the tdp denominators of Table III.
//   - Worst-case points are memoized per (process, option, size): Fig. 4
//     and Table III read the same transient instead of re-running it.
//
// The process axis makes technology a sweep dimension: a single
// cross-process plan (Plan.AddNominalFor / AddWorstCaseFor with names
// resolved against Env.Procs) replaces N serial per-process runs, one
// worker pool spanning every node's jobs instead of N pools each paying
// its own spin-up and drain tail. Points with an empty process name bind
// to Env.Proc, which keeps single-process plans (and their results)
// exactly as before.
//
// The deduped job set executes on a worker pool. Each worker owns one
// sram.ColumnBuilder per process — a session that caches the nominal
// extraction and rebuilds every column into one reusable netlist — and
// pulls jobs off a shared cursor. Worst-case corner searches and the
// nominal extractions run once, up front, and are shared read-only by all
// workers. The context cancels the sweep between jobs; progress callbacks
// are serialized and strictly increasing. Every job is an independent,
// deterministic simulation written to its own result slot, so a sweep's
// results are bit-identical for any worker count — and bit-identical to
// the serial one-shot sram.SimulateTd/TdPenaltyPct path they replace.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"mpsram/internal/extract"
	"mpsram/internal/litho"
	"mpsram/internal/sram"
	"mpsram/internal/tech"
)

// Kind classifies the variation sample of a simulation point.
type Kind int

const (
	// Nominal is the zero-variation sample. Nominal geometry does not
	// depend on the patterning option, so nominal points dedupe across
	// options: the plan canonicalizes their Option away.
	Nominal Kind = iota
	// WorstCase is the option's worst-case ±3σ corner (the paper's
	// Table I criterion: the corner maximizing the Cbl increase).
	WorstCase
)

func (k Kind) String() string {
	switch k {
	case Nominal:
		return "nominal"
	case WorstCase:
		return "worst-case"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Point identifies one transient read simulation.
type Point struct {
	// Proc names the technology preset the point runs on, resolved
	// against Env.Procs. The empty string binds to the sweep's default
	// process (Env.Proc) — the legacy single-process behaviour.
	Proc   string
	Option litho.Option
	Kind   Kind
	N      int
}

func (p Point) String() string {
	proc := ""
	if p.Proc != "" {
		proc = p.Proc + " "
	}
	if p.Kind == Nominal {
		return fmt.Sprintf("%snominal n=%d", proc, p.N)
	}
	return fmt.Sprintf("%s%v %v n=%d", proc, p.Option, p.Kind, p.N)
}

// canonical collapses equivalent points onto one key: nominal geometry is
// option-independent, so every nominal point maps to the zero Option.
// The process name is part of the key — nominal transients dedupe per
// (process, size), never across processes.
func (p Point) canonical() Point {
	if p.Kind == Nominal {
		p.Option = litho.Option(0)
	}
	return p
}

// Plan is a declarative, deduplicating set of simulation points. Adding a
// point that denotes an already-planned transient is a no-op, so
// independent consumers (the Fig. 4, Table II and Table III drivers) can
// each declare their full needs and share one execution.
type Plan struct {
	order []Point
	seen  map[Point]struct{}
}

// NewPlan returns an empty plan.
func NewPlan() *Plan {
	return &Plan{seen: make(map[Point]struct{})}
}

// Add declares simulation points, coalescing duplicates.
func (pl *Plan) Add(pts ...Point) {
	for _, p := range pts {
		c := p.canonical()
		if _, ok := pl.seen[c]; ok {
			continue
		}
		pl.seen[c] = struct{}{}
		pl.order = append(pl.order, c)
	}
}

// AddNominal declares the nominal transient at each size on the default
// process.
func (pl *Plan) AddNominal(sizes ...int) {
	pl.AddNominalFor("", sizes...)
}

// AddNominalFor declares the nominal transient at each size on the named
// process ("" = the sweep's default process).
func (pl *Plan) AddNominalFor(proc string, sizes ...int) {
	for _, n := range sizes {
		pl.Add(Point{Proc: proc, Kind: Nominal, N: n})
	}
}

// AddWorstCase declares the worst-case transient for option o at each
// size on the default process.
func (pl *Plan) AddWorstCase(o litho.Option, sizes ...int) {
	pl.AddWorstCaseFor("", o, sizes...)
}

// AddWorstCaseFor declares the worst-case transient for option o at each
// size on the named process ("" = the sweep's default process).
func (pl *Plan) AddWorstCaseFor(proc string, o litho.Option, sizes ...int) {
	for _, n := range sizes {
		pl.Add(Point{Proc: proc, Option: o, Kind: WorstCase, N: n})
	}
}

// Len returns the number of unique transients the plan will run.
func (pl *Plan) Len() int { return len(pl.order) }

// jobs returns the unique points in a canonical deterministic order
// (independent of the order consumers declared them): worst-case work
// first, largest arrays first, so the expensive transients start before
// the pool drains and the tail stays short. Processes interleave at equal
// (N, Kind) so a cross-process plan spreads every node's heavy jobs
// across the pool instead of running nodes back to back.
func (pl *Plan) jobs() []Point {
	js := append([]Point(nil), pl.order...)
	sort.Slice(js, func(i, j int) bool {
		a, b := js[i], js[j]
		if a.N != b.N {
			return a.N > b.N
		}
		if a.Kind != b.Kind {
			return a.Kind > b.Kind
		}
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		return a.Option < b.Option
	})
	return js
}

// procOption is the key of a per-process worst-case corner search.
type procOption struct {
	proc   string
	option litho.Option
}

// procOptions returns the distinct (process, option) pairs of the plan's
// worst-case points in deterministic order.
func (pl *Plan) procOptions() []procOption {
	seen := map[procOption]bool{}
	var out []procOption
	for _, p := range pl.order {
		k := procOption{p.Proc, p.Option}
		if p.Kind == WorstCase && !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].proc != out[j].proc {
			return out[i].proc < out[j].proc
		}
		return out[i].option < out[j].option
	})
	return out
}

// procNames returns the distinct non-empty process names the plan
// references, in deterministic order.
func (pl *Plan) procNames() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range pl.order {
		if p.Proc != "" && !seen[p.Proc] {
			seen[p.Proc] = true
			out = append(out, p.Proc)
		}
	}
	sort.Strings(out)
	return out
}

// Env bundles the simulation environment of a sweep.
type Env struct {
	// Proc is the default process: every point with an empty Proc name
	// binds to it.
	Proc tech.Process
	// Procs resolves the named processes of a cross-process plan. Keys
	// are the names points carry; a plan referencing a name missing here
	// fails before any simulation runs. Optional for single-process
	// plans.
	Procs map[string]tech.Process
	Cap   extract.CapModel
	Build sram.BuildOptions
	Sim   sram.SimOptions
}

// Config tunes the execution of a sweep.
type Config struct {
	// Workers is the worker-pool size (0 = GOMAXPROCS). Results are
	// bit-identical for any value.
	Workers int
	// Progress, if non-nil, is called as jobs complete with the number
	// of finished unique transients and the total. Calls are serialized
	// and done is strictly increasing, so the callback needs no locking.
	Progress func(done, total int)
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Result is an executed plan: a memo of every simulated transient, which
// the figure and table drivers consume as views.
type Result struct {
	td  map[Point]float64
	wc  map[procOption]extract.WorstCaseResult
	nom map[string]sram.CellParasitics
}

// Td returns the simulated read time of point p, if it was planned.
func (r *Result) Td(p Point) (float64, bool) {
	td, ok := r.td[p.canonical()]
	return td, ok
}

// TdNom returns the nominal read time at size n on the default process,
// if planned.
func (r *Result) TdNom(n int) (float64, bool) {
	return r.TdNomFor("", n)
}

// TdNomFor returns the nominal read time at size n on the named process.
func (r *Result) TdNomFor(proc string, n int) (float64, bool) {
	return r.Td(Point{Proc: proc, Kind: Nominal, N: n})
}

// TdpPct returns the paper's worst-case read-time penalty
// (td/tdnom − 1)·100 for option o at size n on the default process; both
// the worst-case and the nominal transient must have been planned.
func (r *Result) TdpPct(o litho.Option, n int) (float64, bool) {
	return r.TdpPctFor("", o, n)
}

// TdpPctFor is TdpPct on the named process.
func (r *Result) TdpPctFor(proc string, o litho.Option, n int) (float64, bool) {
	td, ok1 := r.Td(Point{Proc: proc, Option: o, Kind: WorstCase, N: n})
	nom, ok2 := r.TdNomFor(proc, n)
	if !ok1 || !ok2 || nom <= 0 {
		return 0, false
	}
	return (td/nom - 1) * 100, true
}

// WorstCase returns the corner-search result the sweep resolved for
// option o on the default process (present for every option with
// worst-case points in the plan).
func (r *Result) WorstCase(o litho.Option) (extract.WorstCaseResult, bool) {
	return r.WorstCaseFor("", o)
}

// WorstCaseFor is WorstCase on the named process.
func (r *Result) WorstCaseFor(proc string, o litho.Option) (extract.WorstCaseResult, bool) {
	wc, ok := r.wc[procOption{proc, o}]
	return wc, ok
}

// Nominal returns the nominal per-cell parasitics of the default
// process (the zero value when no plan point referenced it).
func (r *Result) Nominal() sram.CellParasitics { return r.nom[""] }

// NominalFor returns the nominal per-cell parasitics of the named
// process, if the plan referenced it.
func (r *Result) NominalFor(proc string) (sram.CellParasitics, bool) {
	nom, ok := r.nom[proc]
	return nom, ok
}

// Jobs returns the number of unique transients the sweep ran.
func (r *Result) Jobs() int { return len(r.td) }

// Run executes the plan's deduplicated job set and returns the memoized
// results. The shared inputs — nominal parasitics per process and one
// worst-case corner search per (process, option) — are resolved once
// before the pool starts; each worker then simulates with its own
// reusable per-process ColumnBuilder sessions.
func Run(ctx context.Context, env Env, plan *Plan, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if env.Cap == nil {
		return nil, fmt.Errorf("sweep: nil capacitance model")
	}
	if plan == nil || plan.Len() == 0 {
		return nil, fmt.Errorf("sweep: empty plan")
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sweep: canceled before start: %w", err)
	}

	// Resolve every process the plan references — and only those: "" is
	// the default process (env.Proc), names come from Env.Procs. A purely
	// named cross-process plan never touches env.Proc, and no process is
	// extracted twice. Unknown names fail before any simulation runs,
	// listing what the environment does provide.
	procs := map[string]tech.Process{}
	for _, pt := range plan.order {
		if pt.Proc == "" {
			procs[""] = env.Proc
			break
		}
	}
	for _, name := range plan.procNames() {
		p, ok := env.Procs[name]
		if !ok {
			known := make([]string, 0, len(env.Procs))
			for k := range env.Procs {
				known = append(known, k)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("sweep: plan references unknown process %q (environment has: default%s)",
				name, strings.Join(append([]string{""}, known...), ", "))
		}
		procs[name] = p
	}
	res := &Result{
		td:  make(map[Point]float64, plan.Len()),
		wc:  make(map[procOption]extract.WorstCaseResult),
		nom: make(map[string]sram.CellParasitics, len(procs)),
	}
	for key, p := range procs {
		nom, err := sram.NominalParasitics(p, env.Cap)
		if err != nil {
			return nil, fmt.Errorf("sweep: nominal extraction (%s): %w", p.Name, err)
		}
		res.nom[key] = nom
	}
	for _, po := range plan.procOptions() {
		wc, err := extract.WorstCase(procs[po.proc], po.option, env.Cap)
		if err != nil {
			return nil, fmt.Errorf("sweep: worst case %s %v: %w", procs[po.proc].Name, po.option, err)
		}
		res.wc[po] = wc
	}

	jobs := plan.jobs()
	tds := make([]float64, len(jobs))
	errs := make([]error, len(jobs))
	// A failed job cancels the pool so the sweep fails fast instead of
	// simulating the remaining transients (matching the serial path's
	// first-error return).
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	nw := cfg.workers()
	if nw > len(jobs) {
		nw = len(jobs)
	}
	var (
		next atomic.Int64
		done atomic.Int64
		wg   sync.WaitGroup

		// Progress calls are serialized and gated on a high-water mark
		// so the callback observes strictly increasing done values even
		// when workers finish jobs out of order.
		progressMu sync.Mutex
		progressHW int
	)
	report := func(d int) {
		progressMu.Lock()
		if d > progressHW {
			progressHW = d
			cfg.Progress(d, len(jobs))
		}
		progressMu.Unlock()
	}
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One reusable build/simulate session per (worker, process),
			// created lazily on the first job that needs it; the
			// coordinator's nominal extractions seed the caches.
			builders := make(map[string]*sram.ColumnBuilder, len(procs))
			builderFor := func(key string) *sram.ColumnBuilder {
				b, ok := builders[key]
				if !ok {
					b = sram.NewColumnBuilder(procs[key], env.Cap)
					b.SetNominal(res.nom[key])
					builders[key] = b
				}
				return b
			}
			for {
				if runCtx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				p := jobs[i]
				nom := res.nom[p.Proc]
				cp := nom
				if p.Kind == WorstCase {
					cp = nom.Scale(res.wc[procOption{p.Proc, p.Option}].Ratios)
				}
				td, err := builderFor(p.Proc).MeasureTd(p.N, cp, env.Build, env.Sim)
				if err != nil {
					errs[i] = fmt.Errorf("sweep: %v: %w", p, err)
					cancelRun()
				} else {
					tds[i] = td
				}
				d := done.Add(1)
				if cfg.Progress != nil {
					report(int(d))
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sweep: canceled after %d of %d transients: %w",
			done.Load(), len(jobs), err)
	}
	// The first recorded error in job order is surfaced (later jobs may
	// have been skipped by the fail-fast cancellation).
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for i, p := range jobs {
		res.td[p] = tds[i]
	}
	return res, nil
}
