// Package report renders experiment results as machine-readable CSV and
// Markdown tables, complementing the paper-style plain-text formatters in
// internal/exp. The CLI's -format flag routes through here so every
// experiment can feed spreadsheets or docs directly.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a generic column-oriented result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Append adds a row; the cell count must match the header.
func (t *Table) Append(cells ...string) error {
	if len(cells) != len(t.Columns) {
		return fmt.Errorf("report: row has %d cells, table has %d columns", len(cells), len(t.Columns))
	}
	t.Rows = append(t.Rows, cells)
	return nil
}

// Appendf adds a row of formatted values; each value is rendered with %v
// (floats with %.4g).
func (t *Table) Appendf(values ...any) error {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.6g", x)
		case float32:
			cells[i] = fmt.Sprintf("%.6g", x)
		default:
			cells[i] = fmt.Sprintf("%v", x)
		}
	}
	return t.Append(cells...)
}

// csvEscape quotes a cell when it contains separators, quotes or newlines
// (RFC 4180).
func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n\r") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// WriteCSV emits the table as RFC-4180 CSV with a header row. The title
// becomes a leading comment line when non-empty.
func (t *Table) WriteCSV(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		esc := make([]string, len(cells))
		for i, c := range cells {
			esc[i] = csvEscape(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(esc, ","))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := line(r); err != nil {
			return err
		}
	}
	return nil
}

// WriteMarkdown emits the table as a GitHub-flavoured Markdown table.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "|%s|\n", strings.Join(sep, "|")); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(r, " | ")); err != nil {
			return err
		}
	}
	return nil
}

// Format selects an output encoding.
type Format int

const (
	FormatText Format = iota // paper-style plain text (handled by exp)
	FormatCSV
	FormatMarkdown
)

// ParseFormat maps a CLI flag value to a Format.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "", "text":
		return FormatText, nil
	case "csv":
		return FormatCSV, nil
	case "md", "markdown":
		return FormatMarkdown, nil
	default:
		return FormatText, fmt.Errorf("report: unknown format %q (want text, csv or md)", s)
	}
}

// Write emits the table in the chosen non-text format.
func (t *Table) Write(w io.Writer, f Format) error {
	switch f {
	case FormatCSV:
		return t.WriteCSV(w)
	case FormatMarkdown:
		return t.WriteMarkdown(w)
	default:
		return fmt.Errorf("report: table has no plain-text renderer (use the exp formatters)")
	}
}
