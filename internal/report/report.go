// Package report renders experiment results as machine-readable CSV,
// Markdown and JSON tables, complementing the paper-style plain-text
// formatters in internal/exp. The CLI's -format flag and the workload
// registry's Result contract route through here, so every experiment
// shares one encoder per format instead of rendering per table.
package report

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Table is a generic column-oriented result table. Rows holds the
// rendered string cells (the CSV/Markdown payload); rows appended through
// Appendf additionally retain their original typed values, which the JSON
// encoder emits as JSON numbers/booleans instead of strings.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// vals mirrors Rows with the pre-rendering values (string cells for
	// rows added via Append). Kept unexported: the rendering contract is
	// Write, not direct access.
	vals [][]any
}

// New creates a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Append adds a row; the cell count must match the header.
func (t *Table) Append(cells ...string) error {
	if len(cells) != len(t.Columns) {
		return fmt.Errorf("report: row has %d cells, table has %d columns", len(cells), len(t.Columns))
	}
	vals := make([]any, len(cells))
	for i, c := range cells {
		vals[i] = c
	}
	t.Rows = append(t.Rows, cells)
	t.vals = append(t.vals, vals)
	return nil
}

// Appendf adds a row of formatted values; each value is rendered with %v
// (floats with %.6g). The original typed values are retained so the JSON
// encoder can emit numbers as JSON numbers instead of strings.
func (t *Table) Appendf(values ...any) error {
	if len(values) != len(t.Columns) {
		return fmt.Errorf("report: row has %d cells, table has %d columns", len(values), len(t.Columns))
	}
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.6g", x)
		case float32:
			cells[i] = fmt.Sprintf("%.6g", x)
		default:
			cells[i] = fmt.Sprintf("%v", x)
		}
	}
	t.Rows = append(t.Rows, cells)
	t.vals = append(t.vals, append([]any(nil), values...))
	return nil
}

// csvEscape quotes a cell when it contains separators, quotes or newlines
// (RFC 4180).
func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n\r") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// WriteCSV emits the table as RFC-4180 CSV with a header row. The title
// becomes a leading comment line when non-empty.
func (t *Table) WriteCSV(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		esc := make([]string, len(cells))
		for i, c := range cells {
			esc[i] = csvEscape(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(esc, ","))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := line(r); err != nil {
			return err
		}
	}
	return nil
}

// WriteMarkdown emits the table as a GitHub-flavoured Markdown table.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "|%s|\n", strings.Join(sep, "|")); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(r, " | ")); err != nil {
			return err
		}
	}
	return nil
}

// jsonValue renders one cell value as a JSON literal. Numbers stay JSON
// numbers (full float64 precision, non-finite values become null, so the
// output always parses), booleans stay booleans, and everything else is
// rendered through its string form. Field *names* are the stable part of
// the contract; numeric cells additionally keep full precision here where
// the CSV renderer rounds to %.6g.
func jsonValue(v any) string {
	switch x := v.(type) {
	case float64:
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return "null"
		}
		return strconv.FormatFloat(x, 'g', -1, 64)
	case float32:
		return jsonValue(float64(x))
	case int:
		return strconv.Itoa(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case bool:
		return strconv.FormatBool(x)
	case string:
		b, _ := json.Marshal(x)
		return string(b)
	case nil:
		return "null"
	default:
		b, _ := json.Marshal(fmt.Sprintf("%v", x))
		return string(b)
	}
}

// WriteJSON emits the table as one JSON object: the title and a "rows"
// array with one object per record, keyed by the column names in column
// order. Column names are the stable field names of the machine-readable
// contract — the same identifiers the CSV header row uses.
func (t *Table) WriteJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteString("{")
	fmt.Fprintf(&b, `"title":%s,"rows":[`, jsonValue(t.Title))
	for i, vals := range t.vals {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString("{")
		for j, c := range t.Columns {
			if j > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, `%s:%s`, jsonValue(c), jsonValue(vals[j]))
		}
		b.WriteString("}")
	}
	b.WriteString("]}")
	_, err := io.WriteString(w, b.String())
	return err
}

// Format selects an output encoding.
type Format int

const (
	FormatText Format = iota // paper-style plain text (handled by exp)
	FormatCSV
	FormatMarkdown
	FormatJSON
)

// ParseFormat maps a CLI flag value to a Format.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "", "text":
		return FormatText, nil
	case "csv":
		return FormatCSV, nil
	case "md", "markdown":
		return FormatMarkdown, nil
	case "json":
		return FormatJSON, nil
	default:
		return FormatText, fmt.Errorf("report: unknown format %q (want text, csv, md or json)", s)
	}
}

// Write emits the table in the chosen non-text format.
func (t *Table) Write(w io.Writer, f Format) error {
	switch f {
	case FormatCSV:
		return t.WriteCSV(w)
	case FormatMarkdown:
		return t.WriteMarkdown(w)
	case FormatJSON:
		if err := t.WriteJSON(w); err != nil {
			return err
		}
		_, err := io.WriteString(w, "\n")
		return err
	default:
		return fmt.Errorf("report: table has no plain-text renderer (use the exp formatters)")
	}
}

// WriteTables emits a sequence of tables in one non-text format — the
// single rendering path every workload Result goes through. CSV and
// Markdown concatenate the tables with a blank separator line; JSON emits
// one array of table objects regardless of the table count, so consumers
// can always address `.[i].rows[]`.
func WriteTables(w io.Writer, f Format, tables ...*Table) error {
	if f == FormatJSON {
		if _, err := io.WriteString(w, "["); err != nil {
			return err
		}
		for i, t := range tables {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if err := t.WriteJSON(w); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "]\n")
		return err
	}
	for i, t := range tables {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if err := t.Write(w, f); err != nil {
			return err
		}
	}
	return nil
}

// EncodeTables is WriteTables into one byte slice — the reusable result
// envelope for consumers that hash, cache or re-serve rendered results
// (internal/serve embeds the JSON form verbatim in its run bodies). The
// bytes are deterministic for deterministic table contents: equal tables
// encode byte-identically.
func EncodeTables(f Format, tables ...*Table) ([]byte, error) {
	var b bytes.Buffer
	if err := WriteTables(&b, f, tables...); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}
