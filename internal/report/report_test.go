package report

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func build(t *testing.T) *Table {
	t.Helper()
	tb := New("demo", "name", "value")
	if err := tb.Append("plain", "1"); err != nil {
		t.Fatal(err)
	}
	if err := tb.Appendf("float", 3.14159); err != nil {
		t.Fatal(err)
	}
	if err := tb.Append(`comma, "quote"`, "2"); err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestAppendArity(t *testing.T) {
	tb := New("x", "a", "b")
	if err := tb.Append("only one"); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if err := tb.Appendf(1, 2, 3); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := build(t).WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, w := range []string{
		"# demo",
		"name,value",
		"plain,1",
		"float,3.14159",
		`"comma, ""quote""",2`,
	} {
		if !strings.Contains(out, w) {
			t.Fatalf("CSV missing %q:\n%s", w, out)
		}
	}
}

func TestWriteMarkdown(t *testing.T) {
	var b strings.Builder
	if err := build(t).WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, w := range []string{"### demo", "| name | value |", "|---|---|", "| plain | 1 |"} {
		if !strings.Contains(out, w) {
			t.Fatalf("markdown missing %q:\n%s", w, out)
		}
	}
}

func TestParseFormat(t *testing.T) {
	cases := map[string]Format{
		"": FormatText, "text": FormatText,
		"csv": FormatCSV, "md": FormatMarkdown, "markdown": FormatMarkdown,
		"json": FormatJSON,
	}
	for in, want := range cases {
		got, err := ParseFormat(in)
		if err != nil || got != want {
			t.Fatalf("ParseFormat(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestWriteDispatch(t *testing.T) {
	tb := build(t)
	var b strings.Builder
	if err := tb.Write(&b, FormatCSV); err != nil {
		t.Fatal(err)
	}
	if err := tb.Write(&b, FormatMarkdown); err != nil {
		t.Fatal(err)
	}
	if err := tb.Write(&b, FormatText); err == nil {
		t.Fatal("text dispatch must defer to exp formatters")
	}
}

// TestJSONRoundTrip is the encoder contract: one row-object per record,
// keyed by the column names, with numbers preserved as JSON numbers at
// full float64 precision — decode it back and every typed value survives.
func TestJSONRoundTrip(t *testing.T) {
	tb := New("round trip", "name", "count", "sigma_pp", "flag")
	if err := tb.Appendf("LE3 8nm OL", 64, 2.2734567890123456, true); err != nil {
		t.Fatal(err)
	}
	if err := tb.Appendf(`comma, "quote"`, 1024, -0.125, false); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tb.Write(&b, FormatJSON); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Title string           `json:"title"`
		Rows  []map[string]any `json:"rows"`
	}
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, b.String())
	}
	if got.Title != "round trip" || len(got.Rows) != 2 {
		t.Fatalf("decoded %+v", got)
	}
	r := got.Rows[0]
	if r["name"] != "LE3 8nm OL" || r["count"] != float64(64) || r["flag"] != true {
		t.Fatalf("row 0 drifted: %+v", r)
	}
	if r["sigma_pp"] != 2.2734567890123456 {
		t.Fatalf("float lost precision: %v", r["sigma_pp"])
	}
	if got.Rows[1]["name"] != `comma, "quote"` {
		t.Fatalf("string escaping drifted: %q", got.Rows[1]["name"])
	}
}

// TestJSONNonFinite pins the non-finite policy: NaN/Inf cells become null
// so the document always parses.
func TestJSONNonFinite(t *testing.T) {
	tb := New("", "v")
	if err := tb.Appendf(math.NaN()); err != nil {
		t.Fatal(err)
	}
	if err := tb.Appendf(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tb.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Rows []map[string]any `json:"rows"`
	}
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatalf("non-finite output must stay valid JSON: %v\n%s", err, b.String())
	}
	if got.Rows[0]["v"] != nil || got.Rows[1]["v"] != nil {
		t.Fatalf("non-finite cells must decode as null: %+v", got.Rows)
	}
}

// TestWriteTables covers the multi-table path: JSON is always one array
// of table objects, CSV separates tables with a blank line.
func TestWriteTables(t *testing.T) {
	a, b := build(t), build(t)
	b.Title = "second"
	var out strings.Builder
	if err := WriteTables(&out, FormatJSON, a, b); err != nil {
		t.Fatal(err)
	}
	var arr []struct {
		Title string           `json:"title"`
		Rows  []map[string]any `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out.String()), &arr); err != nil {
		t.Fatalf("tables output invalid: %v\n%s", err, out.String())
	}
	if len(arr) != 2 || arr[0].Title != "demo" || arr[1].Title != "second" || len(arr[1].Rows) != 3 {
		t.Fatalf("decoded %+v", arr)
	}
	out.Reset()
	if err := WriteTables(&out, FormatCSV, a, b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "\n\n# second\n") {
		t.Fatalf("CSV tables not blank-line separated:\n%s", out.String())
	}
	// Append rows mix into JSON as strings (no typed source), still valid.
	out.Reset()
	if err := WriteTables(&out, FormatJSON, a); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"name":"plain","value":"1"`) {
		t.Fatalf("string-appended row drifted:\n%s", out.String())
	}
}

// TestEncodeTables: the byte-slice envelope matches WriteTables exactly
// and is deterministic across calls — the property the serve layer's
// content-addressed cache (byte-identical hit vs cold) relies on.
func TestEncodeTables(t *testing.T) {
	mk := func() *Table {
		tb := New("enc", "k", "v")
		_ = tb.Appendf("a", 1.25)
		_ = tb.Appendf("b", 2)
		return tb
	}
	got, err := EncodeTables(FormatJSON, mk())
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	if err := WriteTables(&want, FormatJSON, mk()); err != nil {
		t.Fatal(err)
	}
	if string(got) != want.String() {
		t.Fatalf("EncodeTables != WriteTables:\n%q\n%q", got, want.String())
	}
	again, err := EncodeTables(FormatJSON, mk())
	if err != nil || string(again) != string(got) {
		t.Fatalf("EncodeTables not deterministic: %v\n%q\n%q", err, again, got)
	}
	var arr []any
	if err := json.Unmarshal(got, &arr); err != nil || len(arr) != 1 {
		t.Fatalf("envelope not a one-table JSON array: %v\n%s", err, got)
	}
}
