package report

import (
	"strings"
	"testing"
)

func build(t *testing.T) *Table {
	t.Helper()
	tb := New("demo", "name", "value")
	if err := tb.Append("plain", "1"); err != nil {
		t.Fatal(err)
	}
	if err := tb.Appendf("float", 3.14159); err != nil {
		t.Fatal(err)
	}
	if err := tb.Append(`comma, "quote"`, "2"); err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestAppendArity(t *testing.T) {
	tb := New("x", "a", "b")
	if err := tb.Append("only one"); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if err := tb.Appendf(1, 2, 3); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := build(t).WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, w := range []string{
		"# demo",
		"name,value",
		"plain,1",
		"float,3.14159",
		`"comma, ""quote""",2`,
	} {
		if !strings.Contains(out, w) {
			t.Fatalf("CSV missing %q:\n%s", w, out)
		}
	}
}

func TestWriteMarkdown(t *testing.T) {
	var b strings.Builder
	if err := build(t).WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, w := range []string{"### demo", "| name | value |", "|---|---|", "| plain | 1 |"} {
		if !strings.Contains(out, w) {
			t.Fatalf("markdown missing %q:\n%s", w, out)
		}
	}
}

func TestParseFormat(t *testing.T) {
	cases := map[string]Format{
		"": FormatText, "text": FormatText,
		"csv": FormatCSV, "md": FormatMarkdown, "markdown": FormatMarkdown,
	}
	for in, want := range cases {
		got, err := ParseFormat(in)
		if err != nil || got != want {
			t.Fatalf("ParseFormat(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestWriteDispatch(t *testing.T) {
	tb := build(t)
	var b strings.Builder
	if err := tb.Write(&b, FormatCSV); err != nil {
		t.Fatal(err)
	}
	if err := tb.Write(&b, FormatMarkdown); err != nil {
		t.Fatal(err)
	}
	if err := tb.Write(&b, FormatText); err == nil {
		t.Fatal("text dispatch must defer to exp formatters")
	}
}
