package circuit

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"mpsram/internal/device"
	"mpsram/internal/tech"
)

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"4.7k", 4.7e3}, {"25f", 25e-15}, {"3meg", 3e6}, {"1e-12", 1e-12},
		{"0.7", 0.7}, {"2n", 2e-9}, {"10u", 10e-6}, {"5m", 5e-3},
		{"1t", 1e12}, {"2g", 2e9}, {"7p", 7e-12}, {"3a", 3e-18},
		{"-4.5n", -4.5e-9}, {" 12K ", 12e3},
	}
	for _, c := range cases {
		got, err := ParseValue(c.in)
		if err != nil {
			t.Fatalf("ParseValue(%q): %v", c.in, err)
		}
		if math.Abs(got-c.want) > 1e-12*math.Abs(c.want) {
			t.Fatalf("ParseValue(%q) = %g, want %g", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "abc", "1a2", "NaN", "+Inf"} {
		if _, err := ParseValue(bad); err == nil {
			t.Fatalf("ParseValue(%q) accepted", bad)
		}
	}
}

func resolver(t *testing.T) ModelResolver {
	f := tech.N10().FEOL
	nm := device.NewNMOS(f)
	pm := device.NewPMOS(f)
	return func(name string) (*device.MOS, error) {
		switch name {
		case nm.Name:
			return nm, nil
		case pm.Name:
			return pm, nil
		default:
			return nil, fmt.Errorf("unknown model %q", name)
		}
	}
}

func TestParseSpiceBasicDeck(t *testing.T) {
	deck := `* comment
Rload out mid 4.7k
Cout out 0 25f
Vdd mid 0 DC 0.7
Vwl wl 0 PULSE(0 0.7 1p 2p 2p 1)
Ileak out 0 DC 1n
Mpd out wl 0 0 n10_nmos W=30n
.end
ignored after end`
	n, err := ParseSpice(strings.NewReader(deck), resolver(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Rs) != 1 || len(n.Cs) != 1 || len(n.Vs) != 2 || len(n.Is) != 1 || len(n.Ms) != 1 {
		t.Fatalf("element counts: %s", n.Stats())
	}
	if n.Rs[0].R != 4.7e3 || n.Cs[0].C != 25e-15 {
		t.Fatalf("values: R=%g C=%g", n.Rs[0].R, n.Cs[0].C)
	}
	p, ok := n.Vs[1].Wave.(Pulse)
	if !ok || p.V1 != 0.7 || p.Delay != 1e-12 {
		t.Fatalf("pulse: %+v", n.Vs[1].Wave)
	}
	if math.Abs(n.Ms[0].W-30e-9) > 1e-18 || n.Ms[0].Model.Kind != device.NMOS {
		t.Fatalf("mosfet: %+v", n.Ms[0])
	}
}

func TestParseSpiceRoundTrip(t *testing.T) {
	// writer → parser → writer must be a fixed point.
	f := tech.N10().FEOL
	nm := device.NewNMOS(f)
	n := New()
	a, b := n.Node("bl"), n.Node("wl")
	n.AddR("r1", a, b, 6.22)
	n.AddC("c1", a, Ground, 2.5e-17)
	n.AddV("vdd", b, Ground, DC(0.7))
	n.AddV("wl", b, Ground, Pulse{V0: 0, V1: 0.7, Delay: 1e-12, Rise: 2e-12, Fall: 2e-12, Width: 1})
	n.AddM("pd", a, b, Ground, nm, 30e-9)
	deck1 := n.WriteSpice("round trip")
	parsed, err := ParseSpice(strings.NewReader(deck1), resolver(t))
	if err != nil {
		t.Fatal(err)
	}
	deck2 := parsed.WriteSpice("round trip")
	if deck1 != deck2 {
		t.Fatalf("round trip not stable:\n--- first\n%s--- second\n%s", deck1, deck2)
	}
}

func TestParseSpiceErrors(t *testing.T) {
	cases := []string{
		"Rbad a b",                       // missing value
		"Rbad a b 1x",                    // bad value
		"Cbad a 0 -5f",                   // validate rejects negative C
		"Vbad a 0 SIN 1 2",               // unsupported source
		"Vbad a 0 PULSE(1 2 3)",          // short pulse
		"Vbad a 0",                       // no source spec
		"Mbad d g s b nosuchmodel W=10n", // unknown model
		"Mbad d g s b n10_nmos L=10n",    // missing W=
		"Mbad d g s b n10_nmos",          // short
		"Xsub a b sub",                   // unsupported card
	}
	for _, deck := range cases {
		if _, err := ParseSpice(strings.NewReader(deck), resolver(t)); err == nil {
			t.Errorf("deck %q accepted", deck)
		}
	}
	// MOSFET without resolver.
	if _, err := ParseSpice(strings.NewReader("M1 d g s b m W=1n"), nil); err == nil {
		t.Error("nil resolver with MOSFET accepted")
	}
}

func TestParseSpiceGroundAliases(t *testing.T) {
	deck := "Rg a gnd 100\nRh a GND 200\nRi a 0 300\n.end"
	n, err := ParseSpice(strings.NewReader(deck), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range n.Rs {
		if r.B != Ground {
			t.Fatalf("ground alias not folded: %+v", r)
		}
	}
}
