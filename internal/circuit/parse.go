// SPICE-deck parsing: the inverse of WriteSpice. The parser accepts the
// element subset this library emits (R, C, V with DC/PULSE, I, M) plus
// comments, .end, and engineering-notation values, so decks can be
// round-tripped, hand-edited and re-simulated.
package circuit

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"mpsram/internal/device"
)

// ModelResolver maps a model name in a deck to a device card. The sram
// package registers its NMOS/PMOS cards; hand-written decks can provide
// their own.
type ModelResolver func(name string) (*device.MOS, error)

// ParseSpice reads a SPICE-flavoured deck (as produced by WriteSpice) and
// reconstructs the netlist. Unknown cards produce errors with line
// numbers. The resolver may be nil if the deck has no MOSFETs.
func ParseSpice(r io.Reader, resolve ModelResolver) (*Netlist, error) {
	n := New()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "*") {
			continue
		}
		if strings.EqualFold(line, ".end") {
			break
		}
		if err := parseLine(n, line, resolve); err != nil {
			return nil, fmt.Errorf("spice deck line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

func parseLine(n *Netlist, line string, resolve ModelResolver) error {
	// Normalize PULSE(...) into space-separated tokens.
	line = strings.NewReplacer("(", " ", ")", " ", ",", " ").Replace(line)
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil
	}
	card := fields[0]
	switch {
	case card[0] == 'R' || card[0] == 'r':
		if len(fields) != 4 {
			return fmt.Errorf("resistor wants 4 fields, got %d", len(fields))
		}
		v, err := ParseValue(fields[3])
		if err != nil {
			return err
		}
		n.AddR(card[1:], n.Node(fields[1]), n.Node(fields[2]), v)
	case card[0] == 'C' || card[0] == 'c':
		if len(fields) != 4 {
			return fmt.Errorf("capacitor wants 4 fields, got %d", len(fields))
		}
		v, err := ParseValue(fields[3])
		if err != nil {
			return err
		}
		n.AddC(card[1:], n.Node(fields[1]), n.Node(fields[2]), v)
	case card[0] == 'V' || card[0] == 'v':
		w, err := parseSource(fields[3:])
		if err != nil {
			return err
		}
		n.AddV(card[1:], n.Node(fields[1]), n.Node(fields[2]), w)
	case card[0] == 'I' || card[0] == 'i':
		w, err := parseSource(fields[3:])
		if err != nil {
			return err
		}
		n.AddI(card[1:], n.Node(fields[1]), n.Node(fields[2]), w)
	case card[0] == 'M' || card[0] == 'm':
		// M<label> d g s b <model> W=<val>
		if len(fields) != 7 {
			return fmt.Errorf("mosfet wants 7 fields, got %d", len(fields))
		}
		if resolve == nil {
			return fmt.Errorf("mosfet %s: no model resolver provided", card)
		}
		model, err := resolve(fields[5])
		if err != nil {
			return err
		}
		wField := fields[6]
		if !strings.HasPrefix(strings.ToUpper(wField), "W=") {
			return fmt.Errorf("mosfet %s: expected W=<value>, got %q", card, wField)
		}
		w, err := ParseValue(wField[2:])
		if err != nil {
			return err
		}
		n.AddM(card[1:], n.Node(fields[1]), n.Node(fields[2]), n.Node(fields[3]), model, w)
	default:
		return fmt.Errorf("unsupported card %q", card)
	}
	return nil
}

// parseSource parses "DC <v>" or "PULSE v0 v1 delay rise fall width".
func parseSource(fields []string) (Waveform, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("source wants a DC or PULSE spec")
	}
	switch strings.ToUpper(fields[0]) {
	case "DC":
		if len(fields) != 2 {
			return nil, fmt.Errorf("DC wants one value")
		}
		v, err := ParseValue(fields[1])
		if err != nil {
			return nil, err
		}
		return DC(v), nil
	case "PULSE":
		if len(fields) != 7 {
			return nil, fmt.Errorf("PULSE wants 6 values, got %d", len(fields)-1)
		}
		var vals [6]float64
		for i := 0; i < 6; i++ {
			v, err := ParseValue(fields[i+1])
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		return Pulse{
			V0: vals[0], V1: vals[1], Delay: vals[2],
			Rise: vals[3], Fall: vals[4], Width: vals[5],
		}, nil
	default:
		return nil, fmt.Errorf("unsupported source spec %q", fields[0])
	}
}

// suffixes holds SPICE engineering suffixes (case-insensitive; "meg" must
// be checked before "m").
var suffixes = []struct {
	s string
	m float64
}{
	{"meg", 1e6}, {"t", 1e12}, {"g", 1e9}, {"k", 1e3},
	{"m", 1e-3}, {"u", 1e-6}, {"n", 1e-9}, {"p", 1e-12}, {"f", 1e-15}, {"a", 1e-18},
}

// ParseValue parses a SPICE number with optional engineering suffix:
// "4.7k", "25f", "3meg", "1e-12".
func ParseValue(s string) (float64, error) {
	ls := strings.ToLower(strings.TrimSpace(s))
	if ls == "" {
		return 0, fmt.Errorf("empty value")
	}
	for _, suf := range suffixes {
		if strings.HasSuffix(ls, suf.s) {
			base := strings.TrimSuffix(ls, suf.s)
			// Guard against consuming the exponent "e" forms like
			// "2.5e-12" ending in a digit, never a suffix letter; but
			// "1e3k" is nonsense anyway. "meg" handled first so "m"
			// does not eat it.
			v, err := strconv.ParseFloat(base, 64)
			if err != nil {
				continue // e.g. "1a2" — fall through to plain parse error
			}
			return v * suf.m, nil
		}
	}
	v, err := strconv.ParseFloat(ls, 64)
	if err != nil {
		return 0, fmt.Errorf("bad numeric value %q", s)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite value %q", s)
	}
	return v, nil
}
