// Package circuit provides the netlist data model consumed by the SPICE
// engine: named nodes, linear elements (R, C), independent sources with
// time-dependent waveforms, and MOSFET instances referencing compact-model
// cards from internal/device.
//
// Voltage sources carry a small built-in series resistance and are stamped
// as Norton equivalents by the engine; this keeps the system matrix purely
// nodal (no branch-current unknowns), strictly diagonally dominant for RC
// networks, and therefore stable under pivot-free sparse elimination. The
// default 0.05 Ω is five orders of magnitude below the circuit impedances
// in this study.
package circuit

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"mpsram/internal/device"
)

// NodeID identifies a circuit node; 0 is ground.
type NodeID int

// Ground is the reference node.
const Ground NodeID = 0

// Waveform is a time-dependent source value.
type Waveform interface {
	// At returns the source value at time t (seconds).
	At(t float64) float64
}

// DC is a constant waveform.
type DC float64

// At implements Waveform.
func (d DC) At(float64) float64 { return float64(d) }

// Pulse is a SPICE-style pulse: V0 until Delay, linear rise to V1 over
// Rise, hold for Width, linear fall back over Fall. Period 0 disables
// repetition.
type Pulse struct {
	V0, V1                   float64
	Delay, Rise, Width, Fall float64
	Period                   float64
}

// At implements Waveform.
func (p Pulse) At(t float64) float64 {
	t -= p.Delay
	if t < 0 {
		return p.V0
	}
	if p.Period > 0 {
		t = math.Mod(t, p.Period)
	}
	switch {
	case t < p.Rise:
		return p.V0 + (p.V1-p.V0)*t/p.Rise
	case t < p.Rise+p.Width:
		return p.V1
	case t < p.Rise+p.Width+p.Fall:
		f := (t - p.Rise - p.Width) / p.Fall
		return p.V1 + (p.V0-p.V1)*f
	default:
		return p.V0
	}
}

// PWL is a piecewise-linear waveform through (T[i], V[i]) points; constant
// extrapolation outside the range.
type PWL struct {
	T, V []float64
}

// At implements Waveform.
func (p PWL) At(t float64) float64 {
	n := len(p.T)
	if n == 0 {
		return 0
	}
	if t <= p.T[0] {
		return p.V[0]
	}
	if t >= p.T[n-1] {
		return p.V[n-1]
	}
	i := sort.SearchFloat64s(p.T, t)
	// p.T[i-1] < t ≤ p.T[i]
	f := (t - p.T[i-1]) / (p.T[i] - p.T[i-1])
	return p.V[i-1] + f*(p.V[i]-p.V[i-1])
}

// Resistor is a two-terminal linear resistance.
type Resistor struct {
	Label string
	A, B  NodeID
	R     float64
}

// Capacitor is a two-terminal linear capacitance.
type Capacitor struct {
	Label string
	A, B  NodeID
	C     float64
}

// VSource is an independent voltage source from P to N (V(P)−V(N) = wave)
// with built-in series resistance RS.
type VSource struct {
	Label string
	P, N  NodeID
	Wave  Waveform
	RS    float64
}

// ISource is an independent current source injecting into P (out of N).
type ISource struct {
	Label string
	P, N  NodeID
	Wave  Waveform
}

// MOSFET is a transistor instance.
type MOSFET struct {
	Label   string
	D, G, S NodeID
	Model   *device.MOS
	W       float64
}

// Netlist is a mutable circuit description.
type Netlist struct {
	names  []string // node name by id
	byName map[string]NodeID
	Rs     []Resistor
	Cs     []Capacitor
	Vs     []VSource
	Is     []ISource
	Ms     []MOSFET
}

// New returns an empty netlist with only the ground node ("0").
func New() *Netlist {
	return &Netlist{
		names:  []string{"0"},
		byName: map[string]NodeID{"0": Ground},
	}
}

// Node returns the id for name, creating the node on first use. The names
// "0", "gnd" and "GND" all alias ground.
func (n *Netlist) Node(name string) NodeID {
	if name == "gnd" || name == "GND" {
		name = "0"
	}
	if id, ok := n.byName[name]; ok {
		return id
	}
	id := NodeID(len(n.names))
	n.names = append(n.names, name)
	n.byName[name] = id
	return id
}

// Reset restores the netlist to the empty single-ground state while
// retaining the element and node storage already allocated, so a builder
// that constructs many similar circuits (the SPICE sweep engine's
// per-worker column scratch) can reuse one Netlist without reallocating
// its slices on every build.
func (n *Netlist) Reset() {
	n.names = n.names[:1]
	clear(n.byName)
	n.byName["0"] = Ground
	n.Rs = n.Rs[:0]
	n.Cs = n.Cs[:0]
	n.Vs = n.Vs[:0]
	n.Is = n.Is[:0]
	n.Ms = n.Ms[:0]
}

// NodeName returns the name of node id.
func (n *Netlist) NodeName(id NodeID) string {
	if int(id) < len(n.names) {
		return n.names[id]
	}
	return fmt.Sprintf("n%d", int(id))
}

// NumNodes returns the node count including ground.
func (n *Netlist) NumNodes() int { return len(n.names) }

// DefaultRS is the built-in series resistance of ideal voltage sources.
const DefaultRS = 0.05

// AddR appends a resistor and returns it for inspection.
func (n *Netlist) AddR(label string, a, b NodeID, r float64) *Resistor {
	n.Rs = append(n.Rs, Resistor{Label: label, A: a, B: b, R: r})
	return &n.Rs[len(n.Rs)-1]
}

// AddC appends a capacitor.
func (n *Netlist) AddC(label string, a, b NodeID, c float64) *Capacitor {
	n.Cs = append(n.Cs, Capacitor{Label: label, A: a, B: b, C: c})
	return &n.Cs[len(n.Cs)-1]
}

// AddV appends a voltage source with the default series resistance.
func (n *Netlist) AddV(label string, p, q NodeID, w Waveform) *VSource {
	n.Vs = append(n.Vs, VSource{Label: label, P: p, N: q, Wave: w, RS: DefaultRS})
	return &n.Vs[len(n.Vs)-1]
}

// AddI appends a current source.
func (n *Netlist) AddI(label string, p, q NodeID, w Waveform) *ISource {
	n.Is = append(n.Is, ISource{Label: label, P: p, N: q, Wave: w})
	return &n.Is[len(n.Is)-1]
}

// AddM appends a MOSFET instance.
func (n *Netlist) AddM(label string, d, g, s NodeID, model *device.MOS, w float64) *MOSFET {
	n.Ms = append(n.Ms, MOSFET{Label: label, D: d, G: g, S: s, Model: model, W: w})
	return &n.Ms[len(n.Ms)-1]
}

// Validate checks element sanity: positive R/C/W values, waveforms and
// models present, node ids in range.
func (n *Netlist) Validate() error {
	chk := func(id NodeID, what, label string) error {
		if id < 0 || int(id) >= len(n.names) {
			return fmt.Errorf("%s %s: node %d out of range", what, label, id)
		}
		return nil
	}
	for _, r := range n.Rs {
		if r.R <= 0 {
			return fmt.Errorf("resistor %s: non-positive value %g", r.Label, r.R)
		}
		if err := chk(r.A, "resistor", r.Label); err != nil {
			return err
		}
		if err := chk(r.B, "resistor", r.Label); err != nil {
			return err
		}
	}
	for _, c := range n.Cs {
		if c.C <= 0 {
			return fmt.Errorf("capacitor %s: non-positive value %g", c.Label, c.C)
		}
		if err := chk(c.A, "capacitor", c.Label); err != nil {
			return err
		}
		if err := chk(c.B, "capacitor", c.Label); err != nil {
			return err
		}
	}
	for _, v := range n.Vs {
		if v.Wave == nil {
			return fmt.Errorf("vsource %s: nil waveform", v.Label)
		}
		if v.RS <= 0 {
			return fmt.Errorf("vsource %s: non-positive series resistance", v.Label)
		}
		if err := chk(v.P, "vsource", v.Label); err != nil {
			return err
		}
		if err := chk(v.N, "vsource", v.Label); err != nil {
			return err
		}
	}
	for _, i := range n.Is {
		if i.Wave == nil {
			return fmt.Errorf("isource %s: nil waveform", i.Label)
		}
		if err := chk(i.P, "isource", i.Label); err != nil {
			return err
		}
	}
	for _, m := range n.Ms {
		if m.Model == nil {
			return fmt.Errorf("mosfet %s: nil model", m.Label)
		}
		if m.W <= 0 {
			return fmt.Errorf("mosfet %s: non-positive width %g", m.Label, m.W)
		}
		if err := m.Model.Validate(); err != nil {
			return fmt.Errorf("mosfet %s: %w", m.Label, err)
		}
		for _, id := range []NodeID{m.D, m.G, m.S} {
			if err := chk(id, "mosfet", m.Label); err != nil {
				return err
			}
		}
	}
	return nil
}

// Stats summarizes the netlist size.
func (n *Netlist) Stats() string {
	return fmt.Sprintf("%d nodes, %d R, %d C, %d V, %d I, %d M",
		n.NumNodes(), len(n.Rs), len(n.Cs), len(n.Vs), len(n.Is), len(n.Ms))
}

// WriteSpice renders the netlist in a SPICE-flavoured text format (one
// element per line) for inspection or consumption by external tools.
func (n *Netlist) WriteSpice(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "* %s\n", title)
	for _, r := range n.Rs {
		fmt.Fprintf(&b, "R%s %s %s %.6g\n", r.Label, n.NodeName(r.A), n.NodeName(r.B), r.R)
	}
	for _, c := range n.Cs {
		fmt.Fprintf(&b, "C%s %s %s %.6g\n", c.Label, n.NodeName(c.A), n.NodeName(c.B), c.C)
	}
	for _, v := range n.Vs {
		switch w := v.Wave.(type) {
		case DC:
			fmt.Fprintf(&b, "V%s %s %s DC %.6g\n", v.Label, n.NodeName(v.P), n.NodeName(v.N), float64(w))
		case Pulse:
			fmt.Fprintf(&b, "V%s %s %s PULSE(%.6g %.6g %.6g %.6g %.6g %.6g)\n",
				v.Label, n.NodeName(v.P), n.NodeName(v.N), w.V0, w.V1, w.Delay, w.Rise, w.Fall, w.Width)
		default:
			fmt.Fprintf(&b, "V%s %s %s DC %.6g\n", v.Label, n.NodeName(v.P), n.NodeName(v.N), v.Wave.At(0))
		}
	}
	for _, i := range n.Is {
		fmt.Fprintf(&b, "I%s %s %s DC %.6g\n", i.Label, n.NodeName(i.P), n.NodeName(i.N), i.Wave.At(0))
	}
	for _, m := range n.Ms {
		fmt.Fprintf(&b, "M%s %s %s %s %s %s W=%.4g\n", m.Label,
			n.NodeName(m.D), n.NodeName(m.G), n.NodeName(m.S), n.NodeName(m.S), m.Model.Name, m.W)
	}
	b.WriteString(".end\n")
	return b.String()
}
