package circuit

import (
	"strings"
	"testing"

	"mpsram/internal/device"
	"mpsram/internal/tech"
)

func TestNodeNaming(t *testing.T) {
	n := New()
	if n.NumNodes() != 1 {
		t.Fatal("fresh netlist must have only ground")
	}
	a := n.Node("a")
	if a == Ground {
		t.Fatal("new node must not be ground")
	}
	if n.Node("a") != a {
		t.Fatal("Node must be idempotent")
	}
	if n.Node("gnd") != Ground || n.Node("GND") != Ground || n.Node("0") != Ground {
		t.Fatal("ground aliases broken")
	}
	if n.NodeName(a) != "a" || n.NodeName(Ground) != "0" {
		t.Fatal("NodeName broken")
	}
	if n.NodeName(NodeID(99)) != "n99" {
		t.Fatal("out-of-range NodeName must be synthesized")
	}
}

func TestValidateAcceptsGoodNetlist(t *testing.T) {
	f := tech.N10().FEOL
	n := New()
	a, b := n.Node("a"), n.Node("b")
	n.AddR("r", a, b, 100)
	n.AddC("c", b, Ground, 1e-15)
	n.AddV("v", a, Ground, DC(1))
	n.AddI("i", b, Ground, DC(1e-6))
	n.AddM("m", b, a, Ground, device.NewNMOS(f), 20e-9)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(n.Stats(), "3 nodes") {
		t.Fatalf("Stats = %q", n.Stats())
	}
}

func TestValidateRejections(t *testing.T) {
	f := tech.N10().FEOL
	cases := []struct {
		name  string
		build func(*Netlist)
	}{
		{"negative R", func(n *Netlist) { n.AddR("r", n.Node("a"), Ground, -1) }},
		{"zero C", func(n *Netlist) { n.AddC("c", n.Node("a"), Ground, 0) }},
		{"nil V wave", func(n *Netlist) { n.AddV("v", n.Node("a"), Ground, nil) }},
		{"bad V rs", func(n *Netlist) { v := n.AddV("v", n.Node("a"), Ground, DC(1)); v.RS = 0 }},
		{"nil I wave", func(n *Netlist) { n.AddI("i", n.Node("a"), Ground, nil) }},
		{"nil model", func(n *Netlist) { n.AddM("m", n.Node("a"), Ground, Ground, nil, 1e-9) }},
		{"zero width", func(n *Netlist) {
			n.AddM("m", n.Node("a"), Ground, Ground, device.NewNMOS(f), 0)
		}},
		{"bad model", func(n *Netlist) {
			bad := device.NewNMOS(f)
			bad.Alpha = 0
			n.AddM("m", n.Node("a"), Ground, Ground, bad, 1e-9)
		}},
		{"node out of range", func(n *Netlist) { n.Rs = append(n.Rs, Resistor{A: 99, B: 0, R: 1}) }},
	}
	for _, c := range cases {
		n := New()
		c.build(n)
		if err := n.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestWriteSpice(t *testing.T) {
	f := tech.N10().FEOL
	n := New()
	a, b := n.Node("bl"), n.Node("wl")
	n.AddR("bl0", a, b, 3.98)
	n.AddC("bl0", a, Ground, 25e-18)
	n.AddV("vdd", b, Ground, DC(0.7))
	n.AddV("wl", b, Ground, Pulse{V0: 0, V1: 0.7, Rise: 1e-12, Width: 1})
	n.AddI("leak", a, Ground, DC(1e-9))
	n.AddM("pd", a, b, Ground, device.NewNMOS(f), 30e-9)
	deck := n.WriteSpice("test deck")
	for _, want := range []string{
		"* test deck",
		"Rbl0 bl wl 3.98",
		"Cbl0 bl 0 2.5e-17",
		"Vvdd wl 0 DC 0.7",
		"PULSE(0 0.7 0",
		"Ileak bl 0 DC 1e-09",
		"Mpd bl wl 0 0 n10_nmos W=3e-08",
		".end",
	} {
		if !strings.Contains(deck, want) {
			t.Errorf("deck missing %q:\n%s", want, deck)
		}
	}
}

func TestWaveformFallbackInWriter(t *testing.T) {
	n := New()
	n.AddV("pwl", n.Node("a"), Ground, PWL{T: []float64{0, 1}, V: []float64{0.3, 1}})
	deck := n.WriteSpice("pwl")
	if !strings.Contains(deck, "Vpwl a 0 DC 0.3") {
		t.Fatalf("PWL fallback missing: %s", deck)
	}
}

func TestResetReusesStorage(t *testing.T) {
	n := New()
	a, b := n.Node("a"), n.Node("b")
	n.AddR("r", a, b, 10)
	n.AddC("c", b, Ground, 1e-15)
	n.AddV("v", a, Ground, DC(1))
	n.AddI("i", a, Ground, DC(1e-9))
	n.AddM("m", a, b, Ground, device.NewNMOS(tech.N10().FEOL), 20e-9)

	n.Reset()
	if n.NumNodes() != 1 {
		t.Fatalf("reset netlist has %d nodes, want 1 (ground)", n.NumNodes())
	}
	if len(n.Rs)+len(n.Cs)+len(n.Vs)+len(n.Is)+len(n.Ms) != 0 {
		t.Fatal("reset netlist retains elements")
	}
	if cap(n.Rs) == 0 || cap(n.names) < 3 {
		t.Fatal("Reset must keep allocated storage")
	}
	// Rebuilding after Reset assigns the same ids in the same order.
	if got := n.Node("x"); got != a {
		t.Fatalf("first node after Reset = %d, want %d", got, a)
	}
	if n.Node("gnd") != Ground {
		t.Fatal("ground alias broken after Reset")
	}
	n.AddR("r2", n.Node("x"), Ground, 5)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}
