package exp

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestSpiceTablesSharedPlanMatchesIndividualDrivers is the dedup
// correctness gate: the combined plan behind `mpvar all` must reproduce
// the exact rows of the individually-planned Fig. 4, Table II and
// Table III drivers, bit for bit, at different worker counts.
func TestSpiceTablesSharedPlanMatchesIndividualDrivers(t *testing.T) {
	if testing.Short() {
		t.Skip("full SPICE sweep")
	}
	e1 := testEnv()
	e1.Sweep.Workers = 1
	shared1, err := SpiceTables(e1)
	if err != nil {
		t.Fatal(err)
	}
	e8 := testEnv()
	e8.Sweep.Workers = 8
	shared8, err := SpiceTables(e8)
	if err != nil {
		t.Fatal(err)
	}
	// Worker-count determinism: every row identical at 1 vs 8 workers.
	if len(shared1.Fig4) != len(shared8.Fig4) ||
		len(shared1.Table2) != len(shared8.Table2) ||
		len(shared1.Table3) != len(shared8.Table3) {
		t.Fatal("row counts differ across worker counts")
	}
	for i := range shared1.Fig4 {
		if shared1.Fig4[i] != shared8.Fig4[i] {
			t.Fatalf("fig4 row %d differs: %+v vs %+v", i, shared1.Fig4[i], shared8.Fig4[i])
		}
	}
	for i := range shared1.Table2 {
		if shared1.Table2[i] != shared8.Table2[i] {
			t.Fatalf("table2 row %d differs across worker counts", i)
		}
	}
	for i := range shared1.Table3 {
		if shared1.Table3[i] != shared8.Table3[i] {
			t.Fatalf("table3 row %d differs across worker counts", i)
		}
	}
	// View equivalence: the shared plan yields the same rows as the
	// per-table plans (which in turn match the pre-refactor serial path;
	// see sweep.TestRunMatchesSerialOneShotPath).
	f4, err := Fig4(e8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f4 {
		if f4[i] != shared8.Fig4[i] {
			t.Fatalf("fig4 row %d: individual %+v vs shared %+v", i, f4[i], shared8.Fig4[i])
		}
	}
	t2, err := Table2(e8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range t2 {
		if t2[i] != shared8.Table2[i] {
			t.Fatalf("table2 row %d: individual vs shared mismatch", i)
		}
	}
	t3, err := Table3(e8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range t3 {
		if t3[i] != shared8.Table3[i] {
			t.Fatalf("table3 row %d: individual vs shared mismatch", i)
		}
	}
	// Rendering equivalence closes the loop for the CLI output.
	if FormatFig4(shared1.Fig4) != FormatFig4(shared8.Fig4) {
		t.Fatal("formatted Fig. 4 differs across worker counts")
	}
	if FormatTable3(shared1.Table3) != FormatTable3(shared8.Table3) {
		t.Fatal("formatted Table III differs across worker counts")
	}
}

func TestSpiceSweepCancellation(t *testing.T) {
	e := testEnv()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e.Ctx = ctx
	start := time.Now()
	for name, run := range map[string]func() error{
		"fig4":   func() error { _, err := Fig4(e); return err },
		"table2": func() error { _, err := Table2(e); return err },
		"table3": func() error { _, err := Table3(e); return err },
		"all":    func() error { _, err := SpiceTables(e); return err },
	} {
		err := run()
		if err == nil {
			t.Fatalf("%s: canceled context must abort the sweep", name)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: error %v does not wrap context.Canceled", name, err)
		}
	}
	// Prompt return: none of the four may have run its DOE (seconds each).
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("canceled sweeps took %v", d)
	}
}
