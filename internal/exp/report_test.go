package exp

import (
	"strings"
	"testing"

	"mpsram/internal/litho"
	"mpsram/internal/report"
)

// The SPICE tables must be reachable through the structured report path
// (mpvar -format csv|md), not only the paper-style text renderers. These
// tests drive the same builders the CLI's emit path uses, on synthetic
// rows so they stay SPICE-free.

func TestFig4ReportFormats(t *testing.T) {
	pts := []Fig4Point{
		{Option: litho.LE3, N: 16, TdNom: 10e-12, Td: 12e-12, TdpPct: 20},
		{Option: litho.EUV, N: 1024, TdNom: 400e-12, Td: 440e-12, TdpPct: 10},
	}
	tbl := Fig4Report(pts)
	if len(tbl.Rows) != len(pts) {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	var csv, md strings.Builder
	if err := tbl.Write(&csv, report.FormatCSV); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Write(&md, report.FormatMarkdown); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"option", "wordlines", "td_nom_ps", "LELELE", "1024"} {
		if !strings.Contains(csv.String(), want) {
			t.Errorf("csv missing %q:\n%s", want, csv.String())
		}
		if !strings.Contains(md.String(), want) {
			t.Errorf("markdown missing %q:\n%s", want, md.String())
		}
	}
}

func TestTable2ReportFormats(t *testing.T) {
	rows := []Table2Row{
		{N: 16, SimTd: 11e-12, FormulaTd: 9e-12},
		{N: 64, SimTd: 30e-12, FormulaTd: 25e-12},
	}
	tbl := Table2Report(rows)
	if len(tbl.Rows) != len(rows) {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	var csv strings.Builder
	if err := tbl.Write(&csv, report.FormatCSV); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"wordlines", "sim_ps", "formula_ps", "ratio"} {
		if !strings.Contains(csv.String(), want) {
			t.Errorf("csv missing %q:\n%s", want, csv.String())
		}
	}
	var md strings.Builder
	if err := tbl.Write(&md, report.FormatMarkdown); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "|") {
		t.Error("markdown table has no pipes")
	}
}

func TestTable3ReportFormats(t *testing.T) {
	rows := []Table3Row{
		{Option: litho.SADP, N: 1024, SimPct: 3.2, FormulaPct: -1.1},
	}
	tbl := Table3Report(rows)
	if len(tbl.Rows) != 1 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	var csv strings.Builder
	if err := tbl.Write(&csv, report.FormatCSV); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"option", "sim_pct", "formula_pct", "SADP"} {
		if !strings.Contains(csv.String(), want) {
			t.Errorf("csv missing %q:\n%s", want, csv.String())
		}
	}
}
