package exp

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"mpsram/internal/mc"
	"mpsram/internal/report"
)

// update regenerates the golden CSVs instead of comparing against them:
//
//	go test ./internal/exp -run Golden -update
var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// goldenEnv pins the experiment inputs of the golden files: the default
// N10 preset at a fixed seed with a tiny Monte-Carlo budget, so the full
// battery stays test-suite cheap while still exercising every layer the
// real experiments use (litho → extract → analytic/SPICE → aggregation).
func goldenEnv() Env {
	e := DefaultEnv()
	e.MC = mc.Config{Samples: 400, Seed: 2015}
	return e
}

// checkGolden compares the CSV rendering of tbl against the committed
// golden file, or rewrites it under -update. Golden files catch numeric
// drift: any engine refactor that changes a float in these tables —
// sparse solver, SPICE integration, sampling, aggregation — fails here
// first, with a diffable artifact.
func checkGolden(t *testing.T, name string, tbl *report.Table) {
	t.Helper()
	var buf bytes.Buffer
	if err := tbl.Write(&buf, report.FormatCSV); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Errorf("%s drifted from golden.\n--- want\n%s\n--- got\n%s", name, want, buf.Bytes())
	}
}

// TestGoldenSpiceTables snapshots the three SPICE-driven reproductions
// from one shared sweep (the same plan `mpvar all` issues).
func TestGoldenSpiceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full-DOE SPICE sweep in -short mode")
	}
	res, err := SpiceTables(goldenEnv())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig4.csv", Fig4Report(res.Fig4))
	checkGolden(t, "table2.csv", Table2Report(res.Table2))
	checkGolden(t, "table3.csv", Table3Report(res.Table3))
}

// TestGoldenTable4Surface snapshots the extended Table IV at the tiny
// fixed budget (exact collected statistics, bit-identical across worker
// counts).
func TestGoldenTable4Surface(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo surface in -short mode")
	}
	rows, err := Table4Surface(goldenEnv())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table4surface.csv", Table4SurfaceReport(rows))
}

// TestGoldenNodes snapshots the cross-node σ comparison: every float
// crosses the registry (derived N7/N5 presets), the per-node analytic
// models and the shared Monte-Carlo streams.
func TestGoldenNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-node Monte-Carlo in -short mode")
	}
	rows, err := Nodes(goldenEnv())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "nodes.csv", NodesReport(rows, NodesN))
}

// TestGoldenTable4SurfacesPerProcess snapshots the per-process extended
// Table IV (the N10 block doubles as a cross-check against
// table4surface.csv: same numbers, prefixed by the process column).
func TestGoldenTable4SurfacesPerProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("three-node Monte-Carlo surface in -short mode")
	}
	surfs, err := Table4Surfaces(goldenEnv())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table4surfaces.csv", Table4SurfacesReport(surfs))
}

// TestGoldenSpiceMC snapshots the SPICE-in-the-loop Monte-Carlo at a
// minimal budget — the one table whose every float crosses the resident
// engine Reset path.
func TestGoldenSpiceMC(t *testing.T) {
	if testing.Short() {
		t.Skip("SPICE-in-the-loop MC in -short mode")
	}
	e := goldenEnv()
	e.MC.Samples = 12
	rows, err := SpiceMC(e, []int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "mcspice.csv", SpiceMCReport(rows))
}

// TestGoldenMCSpiceX snapshots the paired SPICE/analytic Monte-Carlo at a
// minimal budget, through the registry (Run) rather than the driver, so
// the golden also pins the workload's parameter plumbing.
func TestGoldenMCSpiceX(t *testing.T) {
	if testing.Short() {
		t.Skip("SPICE-in-the-loop MC in -short mode")
	}
	e := goldenEnv()
	e.MC.Samples = 12
	res, err := Run(nil, e, "mcspicex", Params{"sizes": "8,16"})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "mcspicex.csv", res.Tables[0])
}
