package exp

import (
	"math"
	"strings"
	"testing"
)

// TestSpiceMCCVTiny drives the control-variate estimator end-to-end
// through the registry at the smallest affordable budget and checks the
// paired-estimator invariants: the SPICE and formula observables share
// their deviates, so the measured correlation must be strong and the
// variance-reduction factor material even at a handful of draws; and the
// uncorrected SPICE summary must be bit-identical to the plain
// estimator's over the same stream (cv is an estimator change, not a
// sampling change).
func TestSpiceMCCVTiny(t *testing.T) {
	e := tinyEnv()
	e.MC.Samples = 6
	res, err := Run(nil, e, "mcspice", Params{"sizes": "8", "cv": true})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Data.([]SpiceMCCVRow)
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
	plain, err := SpiceMC(e, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r.N != 8 || r.Spice.N != 6 {
			t.Fatalf("row shape drifted: %+v", r)
		}
		// Same deviates, same transients: the uncorrected view matches
		// the plain estimator bit for bit (modulo the NaN Skew field,
		// which never compares equal to itself).
		rs, ps := r.Spice, plain[i].Summary
		rs.Skew, ps.Skew = 0, 0
		if rs != ps {
			t.Fatalf("%v: paired-stream SPICE summary != plain estimator:\n%+v\n%+v",
				r.Option, rs, ps)
		}
		if r.Rho < 0.5 {
			t.Errorf("%v: SPICE↔formula correlation %v too weak — paired wiring broken", r.Option, r.Rho)
		}
		if r.VarReduction <= 1 {
			t.Errorf("%v: variance reduction %v ≤ 1", r.Option, r.VarReduction)
		}
		if r.EffectiveN <= float64(r.Spice.N) {
			t.Errorf("%v: effective N %v not above paired N %d", r.Option, r.EffectiveN, r.Spice.N)
		}
		if r.CVStd <= 0 || math.IsNaN(r.CVStd) || r.RefStd <= 0 {
			t.Errorf("%v: degenerate corrected σ %v (ref %v)", r.Option, r.CVStd, r.RefStd)
		}
		if r.RefSamples != CVRefSamples(6) {
			t.Errorf("%v: reference budget %d, want %d", r.Option, r.RefSamples, CVRefSamples(6))
		}
	}
	if !strings.Contains(res.Text, "σ_cv") || !strings.Contains(res.Text, "VR") {
		t.Fatalf("text drifted:\n%s", res.Text)
	}
	tbl := SpiceMCCVReport(rows)
	if len(tbl.Rows) != 3 || tbl.Columns[10] != "vr_factor" {
		t.Fatal("report table drifted")
	}
	// mcspicex -cv routes through the same driver.
	resX, err := Run(nil, e, "mcspicex", Params{"sizes": "8", "cv": true})
	if err != nil {
		t.Fatal(err)
	}
	rowsX := resX.Data.([]SpiceMCCVRow)
	xs, ms := rowsX[0].Spice, rows[0].Spice
	xs.Skew, ms.Skew = 0, 0
	if len(rowsX) != 3 || xs != ms {
		t.Fatalf("mcspicex -cv drifted from mcspice -cv on the same stream")
	}
}

// TestCVRefSamples pins the reference-budget clamp.
func TestCVRefSamples(t *testing.T) {
	for _, c := range []struct{ in, want int }{
		{1, 400}, {6, 400}, {20, 1000}, {200, 10000}, {100000, 10000},
	} {
		if got := CVRefSamples(c.in); got != c.want {
			t.Errorf("CVRefSamples(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestCVSmokeVarianceReduction mirrors the CI smoke assertion: at the
// 4-draw smoke budget the measured variance-reduction factor must exceed
// 1 for every option (the SPICE and formula tdp are strongly correlated
// by construction). Skip-with-reason is reserved for a degenerate
// correlation, which would indicate budget, not wiring.
func TestCVSmokeVarianceReduction(t *testing.T) {
	e := tinyEnv()
	e.MC.Samples = 4
	rows, err := SpiceMCCV(e, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Rho == 0 {
			t.Skipf("%v: degenerate correlation at smoke budget (n=%d)", r.Option, r.Spice.N)
		}
		if r.VarReduction <= 1 {
			t.Errorf("%v: smoke-budget variance reduction %v ≤ 1 (ρ=%v)", r.Option, r.VarReduction, r.Rho)
		}
	}
}

// TestMCSpiceNodesTiny drives the cross-node workload at a tiny budget:
// one row per (node, option), each node on its own derived preset with
// the LE3 overlay pinned, and the σ-amplification summary rendered.
func TestMCSpiceNodesTiny(t *testing.T) {
	e := tinyEnv()
	e.MC.Samples = 4
	res, err := Run(nil, e, "mcspicenodes", Params{"n": 8})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Data.([]MCSpiceNodesRow)
	if len(rows) != 9 { // 3 nodes × 3 options
		t.Fatalf("rows %d", len(rows))
	}
	seen := map[string]int{}
	for _, r := range rows {
		seen[r.Process]++
		if r.N != 8 || r.Spice.N != 4 || r.CVStd <= 0 || r.RefStd <= 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
	}
	if len(seen) != 3 || seen["N10"] != 3 || seen["N5"] != 3 {
		t.Fatalf("node coverage drifted: %v", seen)
	}
	if !strings.Contains(res.Text, "σ amplification N10 → N5:") {
		t.Fatalf("amplification summary missing:\n%s", res.Text)
	}
	if tbl := MCSpiceNodesReport(rows); len(tbl.Rows) != 9 || tbl.Columns[0] != "process" {
		t.Fatal("report table drifted")
	}
}
