// Bridges from experiment results to the generic report tables (CSV /
// Markdown output paths of the CLI).
package exp

import (
	"fmt"

	"mpsram/internal/litho"
	"mpsram/internal/mc"
	"mpsram/internal/report"
)

// Table1Report converts Table I rows.
func Table1Report(rows []Table1Row) *report.Table {
	t := report.New("Table I: worst-case variability per patterning option",
		"option", "corner", "dCbl_pct", "dRbl_pct", "dRvss_pct")
	for _, r := range rows {
		_ = t.Appendf(r.Option.String(), r.Corner, r.CblPct, r.RblPct, r.RvssPct)
	}
	return t
}

// Fig3Report converts the DOE overview.
func Fig3Report(rows []Fig3Row) *report.Table {
	t := report.New("Fig. 3: array DOE", "columns", "wordlines", "summary")
	for _, r := range rows {
		_ = t.Appendf(r.Columns, r.N, r.Summary)
	}
	return t
}

// Fig4Report converts the SPICE sweep points.
func Fig4Report(pts []Fig4Point) *report.Table {
	t := report.New("Fig. 4: worst-case td impact (SPICE)",
		"option", "wordlines", "td_nom_ps", "td_wc_ps", "tdp_pct")
	for _, p := range pts {
		_ = t.Appendf(p.Option.String(), p.N, p.TdNom*1e12, p.Td*1e12, p.TdpPct)
	}
	return t
}

// Table2Report converts the tdnom comparison.
func Table2Report(rows []Table2Row) *report.Table {
	t := report.New("Table II: formula vs simulation tdnom",
		"wordlines", "sim_ps", "formula_ps", "ratio")
	for _, r := range rows {
		_ = t.Appendf(r.N, r.SimTd*1e12, r.FormulaTd*1e12, r.SimTd/r.FormulaTd)
	}
	return t
}

// Table3Report converts the tdp comparison.
func Table3Report(rows []Table3Row) *report.Table {
	t := report.New("Table III: formula vs simulation tdp (%)",
		"option", "wordlines", "sim_pct", "formula_pct")
	for _, r := range rows {
		_ = t.Appendf(r.Option.String(), r.N, r.SimPct, r.FormulaPct)
	}
	return t
}

// Fig5Report converts the Monte-Carlo distribution summaries (the
// histogram itself stays in the text renderer).
func Fig5Report(results []Fig5Result) *report.Table {
	t := report.New("Fig. 5: Monte-Carlo tdp distributions",
		"option", "ol_nm", "n", "samples", "mean_pp", "std_pp", "p05_pp", "p95_pp", "skew")
	for _, r := range results {
		_ = t.Appendf(r.Option.String(), r.OL*1e9, r.N, r.Summary.N,
			r.Summary.Mean, r.Summary.Std, r.Summary.P05, r.Summary.P95, r.Summary.Skew)
	}
	return t
}

// Table4SurfaceReport converts the extended σ surface (long format: one
// record per option/overlay/size cell).
func Table4SurfaceReport(rows []mc.SigmaSurfaceRow) *report.Table {
	t := report.New("Table IV (extended): tdp sigma per option across array sizes",
		"option", "ol_nm", "wordlines", "sigma_pp", "mean_pp")
	for _, r := range rows {
		ol := ""
		if r.Option == litho.LE3 {
			ol = fmt.Sprintf("%.0f", r.OL*1e9)
		}
		for _, c := range r.Cells {
			_ = t.Appendf(r.Option.String(), ol, c.N, c.Sigma, c.Mean)
		}
	}
	return t
}

// Table4Report converts the σ sweep.
func Table4Report(rows []mc.SigmaSweepRow) *report.Table {
	t := report.New("Table IV: tdp sigma per option",
		"option", "ol_nm", "sigma_pp", "mean_pp")
	for _, r := range rows {
		ol := ""
		if r.Option == litho.LE3 {
			ol = fmt.Sprintf("%.0f", r.OL*1e9)
		}
		_ = t.Appendf(r.Option.String(), ol, r.Sigma, r.Mean)
	}
	return t
}
