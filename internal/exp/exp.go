// Package exp contains one driver per table and figure of the paper's
// evaluation section. Each driver returns structured results plus a
// formatter that prints the same rows/series the paper reports, so the
// CLI, the examples and the benchmark harness all share one code path.
//
//	Table I  — worst-case variability per patterning option
//	Fig. 2   — worst-case layout distortion (track geometry)
//	Fig. 3   — array DOE overview
//	Fig. 4   — nominal td and worst-case tdp vs array size (SPICE)
//	Table II — formula vs simulation tdnom
//	Table III— formula vs simulation tdp at the worst cases
//	Fig. 5   — Monte-Carlo tdp distribution
//	Table IV — tdp σ per option and overlay budget
//
// Beyond the paper, the process axis adds the cross-node workloads of
// nodes.go: the Table-IV-style σ comparison across the technology
// registry (Nodes) and per-process extended Table IV surfaces
// (Table4Surfaces).
package exp

import (
	"context"
	"fmt"
	"strings"
	"unicode/utf8"

	"mpsram/internal/analytic"
	"mpsram/internal/extract"
	"mpsram/internal/layout"
	"mpsram/internal/litho"
	"mpsram/internal/mc"
	"mpsram/internal/sram"
	"mpsram/internal/stats"
	"mpsram/internal/sweep"
	"mpsram/internal/tech"
)

// PaperSizes is the array DOE of Fig. 3: word-line counts at 10 bit-line
// pairs.
var PaperSizes = []int{16, 64, 256, 1024}

// PaperColumns is the fixed bit-line pair count of the DOE.
const PaperColumns = 10

// PaperOLBudgets is the Table IV overlay sweep (3σ, metres).
var PaperOLBudgets = []float64{3e-9, 5e-9, 7e-9, 8e-9}

// Env bundles the shared experiment inputs.
type Env struct {
	// Proc is the primary process: every single-node experiment (the
	// paper's tables and figures) runs on it.
	Proc tech.Process
	// Procs is the node comparison set of the cross-process experiments
	// (Nodes, Table4Surfaces). Empty means {Proc}.
	Procs []tech.Process
	Cap   extract.CapModel
	// MC controls the Monte-Carlo experiments.
	MC mc.Config
	// Sweep controls the sharded SPICE sweep engine behind Fig. 4 and
	// Tables II–III (worker count, progress callback). Results are
	// bit-identical for any worker count.
	Sweep sweep.Config
	// Build/sim options for the SPICE experiments.
	Build sram.BuildOptions
	Sim   sram.SimOptions
	// Ctx, when non-nil, cancels the Monte-Carlo experiments mid-run
	// (e.g. on SIGINT from the CLI). Nil means context.Background().
	Ctx context.Context
}

// ctx returns the experiment context, defaulting to Background.
func (e Env) ctx() context.Context {
	if e.Ctx != nil {
		return e.Ctx
	}
	return context.Background()
}

// DefaultEnv returns the paper's configuration: the N10 preset as the
// primary process, with the full registry (N10/N7/N5) as the node
// comparison set of the cross-process experiments.
func DefaultEnv() Env {
	return Env{
		Proc:  tech.N10(),
		Procs: tech.Default().Processes(),
		Cap:   extract.SakuraiTamaru{},
		MC:    mc.Config{Samples: 10000, Seed: 2015},
	}
}

// Model derives the analytical formula parameters for the environment.
func (e Env) Model() (analytic.Params, error) {
	nom, err := sram.NominalParasitics(e.Proc, e.Cap)
	if err != nil {
		return analytic.Params{}, err
	}
	return analytic.Derive(e.Proc, nom.Rbl, nom.Cbl)
}

// ---------------------------------------------------------------- Table I

// Table1Row is one option's worst case.
type Table1Row struct {
	Option  litho.Option
	Corner  string
	CblPct  float64
	RblPct  float64
	RvssPct float64
}

// Table1 runs the worst-case corner search per option (paper Table I).
func Table1(e Env) ([]Table1Row, error) {
	var rows []Table1Row
	for _, o := range litho.Options {
		wc, err := extract.WorstCase(e.Proc, o, e.Cap)
		if err != nil {
			return nil, fmt.Errorf("table1 %v: %w", o, err)
		}
		rows = append(rows, Table1Row{
			Option:  o,
			Corner:  litho.CornerString(e.Proc, o, wc.Corner),
			CblPct:  wc.CvarPct(),
			RblPct:  wc.RvarPct(),
			RvssPct: (wc.Ratios.RvssVar - 1) * 100,
		})
	}
	return rows, nil
}

// FormatTable1 renders the rows paper-style.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: worst-case variability per patterning option\n")
	fmt.Fprintf(&b, "%-8s %-44s %10s %10s %10s\n", "option", "worst corner", "ΔCbl", "ΔRbl", "ΔRvss")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8v %-44s %+9.2f%% %+9.2f%% %+9.2f%%\n",
			r.Option, r.Corner, r.CblPct, r.RblPct, r.RvssPct)
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig. 2

// Fig2Entry is one option's worst-case realized geometry.
type Fig2Entry struct {
	Option   litho.Option
	Describe string
	ASCII    string
	Window   litho.Window
}

// Fig2 reproduces the layout-distortion figure: the realized worst-case
// window per option.
func Fig2(e Env) ([]Fig2Entry, error) {
	var out []Fig2Entry
	for _, o := range litho.Options {
		wc, err := extract.WorstCase(e.Proc, o, e.Cap)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig2Entry{
			Option:   o,
			Describe: litho.Describe(wc.Window),
			ASCII:    layout.ASCIISection(wc.Window, 0.6),
			Window:   wc.Window,
		})
	}
	return out, nil
}

// FormatFig2 renders the entries.
func FormatFig2(entries []Fig2Entry) string {
	var b strings.Builder
	b.WriteString("Fig. 2: worst-case metal1 layout distortion (B = bit line)\n")
	for _, en := range entries {
		fmt.Fprintf(&b, "%-8v %s\n         |%s|\n", en.Option, en.Describe, en.ASCII)
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig. 3

// Fig3Row is one DOE array.
type Fig3Row struct {
	N       int
	Columns int
	Summary string
}

// Fig3 builds the DOE floorplans (paper Fig. 3).
func Fig3(e Env) ([]Fig3Row, error) {
	var rows []Fig3Row
	for _, n := range PaperSizes {
		arr, err := layout.Array(e.Proc, n, PaperColumns)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig3Row{N: n, Columns: PaperColumns, Summary: arr.Summary()})
	}
	return rows, nil
}

// FormatFig3 renders the DOE overview.
func FormatFig3(rows []Fig3Row) string {
	var b strings.Builder
	b.WriteString("Fig. 3: SRAM array DOE (10 bit-line pairs, bl length ∝ word lines)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "10x%-5d %s\n", r.N, r.Summary)
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig. 4

// Fig4Point is one (option, size) SPICE measurement.
type Fig4Point struct {
	Option litho.Option
	N      int
	TdNom  float64
	Td     float64
	TdpPct float64
}

// Fig4 reproduces the worst-case td/tdp figure by SPICE simulation of the
// column at every DOE size for every option. It is a view over the shared
// sweep plan: one nominal transient per size (shared across options) plus
// one worst-case transient per (option, size).
func Fig4(e Env) ([]Fig4Point, error) {
	res, err := e.runSweep(spicePlan(true, false, false))
	if err != nil {
		return nil, fmt.Errorf("fig4: %w", err)
	}
	return fig4Rows(res)
}

// FormatFig4 renders the series paper-style: nominal td per size plus the
// per-option penalties.
func FormatFig4(pts []Fig4Point) string {
	var b strings.Builder
	b.WriteString("Fig. 4: worst-case wire variability impact on td (SPICE)\n")
	fmt.Fprintf(&b, "%-8s %8s %12s %12s %10s\n", "option", "array", "td_nom", "td_wc", "tdp")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-8v 10x%-5d %10.2fps %10.2fps %+9.2f%%\n",
			p.Option, p.N, p.TdNom*1e12, p.Td*1e12, p.TdpPct)
	}
	return b.String()
}

// ---------------------------------------------------------------- Table II

// Table2Row compares formula and simulation tdnom.
type Table2Row struct {
	N         int
	SimTd     float64
	FormulaTd float64
}

// Table2 reproduces the formula-vs-simulation tdnom comparison. The
// simulation column is the sweep engine's nominal transients — the same
// results Fig. 4's td_nom column and Table III's denominators read.
func Table2(e Env) ([]Table2Row, error) {
	res, err := e.runSweep(spicePlan(false, true, false))
	if err != nil {
		return nil, fmt.Errorf("table2: %w", err)
	}
	return table2Rows(e, res)
}

// FormatTable2 renders the comparison.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table II: formula versus simulation tdnom values\n")
	fmt.Fprintf(&b, "%-10s %14s %14s %8s\n", "array", "simulation", "formula", "ratio")
	for _, r := range rows {
		fmt.Fprintf(&b, "10x%-7d %12.2fps %12.2fps %8.2f\n",
			r.N, r.SimTd*1e12, r.FormulaTd*1e12, r.SimTd/r.FormulaTd)
	}
	return b.String()
}

// ---------------------------------------------------------------- Table III

// Table3Row compares formula and simulation tdp at one (option, n).
type Table3Row struct {
	Option     litho.Option
	N          int
	SimPct     float64
	FormulaPct float64
}

// Table3 reproduces the formula-vs-simulation tdp table at the worst-case
// corners. Its simulation column reuses exactly the transients Fig. 4
// runs: issued together (see SpiceTables), every unique transient runs
// once and both tables read the memoized result.
func Table3(e Env) ([]Table3Row, error) {
	res, err := e.runSweep(spicePlan(false, false, true))
	if err != nil {
		return nil, fmt.Errorf("table3: %w", err)
	}
	return table3Rows(e, res)
}

// ------------------------------------------------- shared SPICE sweep plan

// SpiceResults bundles the three SPICE-driven reproductions computed from
// one shared, deduplicated sweep.
type SpiceResults struct {
	Fig4   []Fig4Point
	Table2 []Table2Row
	Table3 []Table3Row
}

// SpiceTables runs Fig. 4, Table II and Table III as views over a single
// sweep plan: the union of their simulation points deduplicates to one
// nominal transient per DOE size plus one worst-case transient per
// (option, size) — 16 unique transients instead of the 52 the three
// serial drivers used to issue.
func SpiceTables(e Env) (*SpiceResults, error) {
	res, err := e.runSweep(spicePlan(true, true, true))
	if err != nil {
		return nil, fmt.Errorf("spice tables: %w", err)
	}
	out := &SpiceResults{}
	if out.Fig4, err = fig4Rows(res); err != nil {
		return nil, err
	}
	if out.Table2, err = table2Rows(e, res); err != nil {
		return nil, err
	}
	if out.Table3, err = table3Rows(e, res); err != nil {
		return nil, err
	}
	return out, nil
}

// spicePlan declares the simulation points the requested tables need; the
// plan coalesces the overlap.
func spicePlan(fig4, table2, table3 bool) *sweep.Plan {
	pl := sweep.NewPlan()
	if fig4 || table2 || table3 {
		// Nominal td per size: Fig. 4's td_nom column, Table II's
		// simulation column, Table III's penalty denominators.
		pl.AddNominal(PaperSizes...)
	}
	if fig4 || table3 {
		for _, o := range litho.Options {
			pl.AddWorstCase(o, PaperSizes...)
		}
	}
	return pl
}

// runSweep executes a plan under the experiment environment.
func (e Env) runSweep(pl *sweep.Plan) (*sweep.Result, error) {
	return sweep.Run(e.ctx(), sweep.Env{
		Proc:  e.Proc,
		Cap:   e.Cap,
		Build: e.Build,
		Sim:   e.Sim,
	}, pl, e.Sweep)
}

// fig4Rows assembles the Fig. 4 series from a sweep result, in the
// paper's option-major order.
func fig4Rows(res *sweep.Result) ([]Fig4Point, error) {
	var pts []Fig4Point
	for _, o := range litho.Options {
		for _, n := range PaperSizes {
			td, ok1 := res.Td(sweep.Point{Option: o, Kind: sweep.WorstCase, N: n})
			tdnom, ok2 := res.TdNom(n)
			tdp, ok3 := res.TdpPct(o, n)
			if !ok1 || !ok2 || !ok3 {
				return nil, fmt.Errorf("fig4 %v n=%d: point missing from sweep", o, n)
			}
			pts = append(pts, Fig4Point{Option: o, N: n, TdNom: tdnom, Td: td, TdpPct: tdp})
		}
	}
	return pts, nil
}

// table2Rows assembles the Table II comparison from a sweep result.
func table2Rows(e Env, res *sweep.Result) ([]Table2Row, error) {
	m, err := e.Model()
	if err != nil {
		return nil, err
	}
	var rows []Table2Row
	for _, n := range PaperSizes {
		sim, ok := res.TdNom(n)
		if !ok {
			return nil, fmt.Errorf("table2 n=%d: point missing from sweep", n)
		}
		rows = append(rows, Table2Row{N: n, SimTd: sim, FormulaTd: m.TdNom(n)})
	}
	return rows, nil
}

// table3Rows assembles the Table III comparison from a sweep result.
func table3Rows(e Env, res *sweep.Result) ([]Table3Row, error) {
	m, err := e.Model()
	if err != nil {
		return nil, err
	}
	var rows []Table3Row
	for _, o := range litho.Options {
		wc, ok := res.WorstCase(o)
		if !ok {
			return nil, fmt.Errorf("table3 %v: worst case missing from sweep", o)
		}
		for _, n := range PaperSizes {
			simPct, okP := res.TdpPct(o, n)
			if !okP {
				return nil, fmt.Errorf("table3 %v n=%d: point missing from sweep", o, n)
			}
			rows = append(rows, Table3Row{
				Option:     o,
				N:          n,
				SimPct:     simPct,
				FormulaPct: m.TdpPct(n, wc.Ratios.Rvar, wc.Ratios.Cvar),
			})
		}
	}
	return rows, nil
}

// FormatTable3 renders the comparison grouped by method, as in the paper.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table III: formula versus simulation tdp values (%) at worst case\n")
	fmt.Fprintf(&b, "%-12s %-10s", "method", "array")
	for _, o := range litho.Options {
		fmt.Fprintf(&b, " %10v", o)
	}
	b.WriteString("\n")
	byKey := map[string]float64{}
	for _, r := range rows {
		byKey[fmt.Sprintf("sim/%v/%d", r.Option, r.N)] = r.SimPct
		byKey[fmt.Sprintf("for/%v/%d", r.Option, r.N)] = r.FormulaPct
	}
	for _, method := range []string{"sim", "for"} {
		name := "Simulation"
		if method == "for" {
			name = "Formula"
		}
		for _, n := range PaperSizes {
			fmt.Fprintf(&b, "%-12s 10x%-7d", name, n)
			for _, o := range litho.Options {
				fmt.Fprintf(&b, " %+9.2f%%", byKey[fmt.Sprintf("%s/%v/%d", method, o, n)])
			}
			b.WriteString("\n")
			name = ""
		}
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig. 5

// Fig5Result is the Monte-Carlo distribution for one option.
type Fig5Result struct {
	Option  litho.Option
	N       int
	OL      float64
	Summary stats.Summary
	Hist    *stats.Histogram
}

// Fig5 reproduces the Monte-Carlo tdp distribution figure at the given
// overlay budget and array size (paper: 8 nm, n = 64), for all options.
func Fig5(e Env, ol float64, n int) ([]Fig5Result, error) {
	m, err := e.Model()
	if err != nil {
		return nil, err
	}
	var out []Fig5Result
	for _, o := range litho.Options {
		p := e.Proc
		if o == litho.LE3 {
			p = p.WithOL(ol)
		}
		res, err := mc.TdpDistributionCtx(e.ctx(), p, o, m, e.Cap, n, e.MC)
		if err != nil {
			return nil, fmt.Errorf("fig5 %v: %w", o, err)
		}
		h, err := res.Histogram(17)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig5Result{Option: o, N: n, OL: ol, Summary: res.Summary, Hist: h})
	}
	return out, nil
}

// FormatFig5 renders the histograms.
func FormatFig5(results []Fig5Result) string {
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, "Fig. 5: Monte-Carlo tdp distribution, %v (3σ OL %.0fnm, n=%d)\n",
			r.Option, r.OL*1e9, r.N)
		fmt.Fprintf(&b, "%s\n%s\n", r.Summary, r.Hist.Render(52))
	}
	return b.String()
}

// ---------------------------------------------------------------- Table IV

// Table4 reproduces the tdp σ sweep (paper Table IV) at n = 64.
func Table4(e Env) ([]mc.SigmaSweepRow, error) {
	m, err := e.Model()
	if err != nil {
		return nil, err
	}
	return mc.SigmaSweepCtx(e.ctx(), e.Proc, m, e.Cap, 64, PaperOLBudgets, e.MC)
}

// Table4Surface extends Table IV across the whole array DOE: the tdp σ
// per option and overlay budget at every size in PaperSizes. Each
// option/overlay configuration consumes exactly one Monte-Carlo sample
// stream — the litho+extract pipeline runs once per trial and the
// extracted ratios feed the tdp formula at all four sizes, instead of
// resampling per (option, size) cell.
func Table4Surface(e Env) ([]mc.SigmaSurfaceRow, error) {
	m, err := e.Model()
	if err != nil {
		return nil, err
	}
	return mc.SigmaSurface(e.ctx(), e.Proc, m, e.Cap, PaperSizes, PaperOLBudgets, e.MC)
}

// FormatTable4Surface renders the extended sweep: one row per
// option/overlay, one σ column per array size.
func FormatTable4Surface(rows []mc.SigmaSurfaceRow) string {
	var b strings.Builder
	b.WriteString("Table IV (extended): tdp σ values across the array DOE\n")
	fmt.Fprintf(&b, "%-24s", "patterning option")
	if len(rows) > 0 {
		for _, c := range rows[0].Cells {
			// Pad by rune count, not bytes: σ is 2 bytes / 1 column.
			h := fmt.Sprintf("σ@10x%d", c.N)
			fmt.Fprintf(&b, " %*s", 11+len(h)-utf8.RuneCountInString(h), h)
		}
	}
	b.WriteString("\n")
	for _, r := range rows {
		name := r.Option.String()
		if r.Option == litho.LE3 {
			name = fmt.Sprintf("%s %.0fnm OL", name, r.OL*1e9)
		}
		fmt.Fprintf(&b, "%-24s", name)
		for _, c := range r.Cells {
			fmt.Fprintf(&b, " %11.3f", c.Sigma)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatTable4 renders the sweep paper-style.
func FormatTable4(rows []mc.SigmaSweepRow) string {
	var b strings.Builder
	b.WriteString("Table IV: patterning options & tdp σ values (array 10x64)\n")
	fmt.Fprintf(&b, "%-24s %12s %12s\n", "patterning option", "σ(tdp) [pp]", "mean [pp]")
	for _, r := range rows {
		name := r.Option.String()
		if r.Option == litho.LE3 {
			name = fmt.Sprintf("%s %.0fnm OL", name, r.OL*1e9)
		}
		fmt.Fprintf(&b, "%-24s %12.3f %+12.3f\n", name, r.Sigma, r.Mean)
	}
	return b.String()
}
