// The control-variate SPICE-MC driver behind the `-cv` estimator mode of
// mcspice/mcspicex and the cross-node mcspicenodes workload: every trial
// pairs the full read transients with the closed-form tdp formula on the
// same extracted ratios, and a separate cheap analytic stream pins the
// control's moments to reference precision. The corrected σ then reads
// β̂²σ²_ref + residual, so only the small formula-unexplained remainder
// still carries the expensive stream's sampling noise — the measured
// variance-reduction factor 1/(1−ρ̂²) is reported per cell.
package exp

import (
	"fmt"
	"strings"

	"mpsram/internal/litho"
	"mpsram/internal/mc"
	"mpsram/internal/report"
	"mpsram/internal/sram"
	"mpsram/internal/stats"
)

// CVRefSamples sizes the analytic reference stream that anchors the
// control's moments (μx, σx): 50× the paired budget, clamped to
// [400, 10000]. The reference consumes only draw + extraction + formula
// per trial — at the default 10 000 it matches the analytic workloads'
// full budget, so the reference σ agrees with the published analytic
// tables — and its cost is negligible next to one read transient.
func CVRefSamples(samples int) int {
	ref := 50 * samples
	if ref > 10000 {
		ref = 10000
	}
	if ref < 400 {
		ref = 400
	}
	return ref
}

// SpiceMCCVRow is one (option, size) cell of the control-variate
// SPICE-in-the-loop Monte-Carlo.
type SpiceMCCVRow struct {
	Option litho.Option
	N      int
	// Spice is the uncorrected summary of the SPICE-measured tdp over the
	// paired stream (bit-identical to the plain estimator's at the same
	// Seed/Samples).
	Spice stats.Summary
	// CVMean/CVStd are the corrected estimates anchored on the analytic
	// reference moments.
	CVMean, CVStd float64
	// Beta and Rho are the regression coefficient and SPICE↔formula
	// correlation measured from the paired stream.
	Beta, Rho float64
	// VarReduction is the measured factor 1/(1−ρ̂²); EffectiveN the
	// plain-estimator draw count the paired stream is worth.
	VarReduction float64
	EffectiveN   float64
	// RefMean/RefStd are the analytic control's reference moments from
	// the RefSamples-draw cheap stream.
	RefMean, RefStd float64
	RefSamples      int
	Rejected        int
}

// SpiceMCCV runs the control-variate SPICE-in-the-loop Monte-Carlo per
// patterning option at the given array sizes: one paired SPICE+formula
// stream at the environment's budget plus one analytic reference stream
// at CVRefSamples. Nominal geometry is shared across options like the
// plain driver's, and both streams are bit-identical for any worker
// count.
func SpiceMCCV(e Env, sizes []int) ([]SpiceMCCVRow, error) {
	if e.Cap == nil {
		return nil, fmt.Errorf("spice mc cv: nil capacitance model")
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("spice mc cv: no array sizes requested")
	}
	m, err := e.Model()
	if err != nil {
		return nil, fmt.Errorf("spice mc cv: %w", err)
	}
	seed := sram.NewColumnBuilder(e.Proc, e.Cap)
	nom, err := seed.Nominal()
	if err != nil {
		return nil, fmt.Errorf("spice mc cv: nominal extraction: %w", err)
	}
	nomTd, err := seed.NominalTds(sizes, e.Build, e.Sim)
	if err != nil {
		return nil, fmt.Errorf("spice mc cv: %w", err)
	}
	refCfg := e.MC
	refCfg.Samples = CVRefSamples(e.MC.Samples)
	refCfg.Collect = false
	refCfg.Progress = nil // the reference stream is negligible next to the transients
	var rows []SpiceMCCVRow
	for _, o := range litho.Options {
		ref, err := mc.TdpAcrossSizes(e.ctx(), e.Proc, o, m, e.Cap, sizes, refCfg)
		if err != nil {
			return nil, fmt.Errorf("spice mc cv %v (reference): %w", o, err)
		}
		cvr, err := mc.SpiceTdpCVAcrossSizesShared(e.ctx(), e.Proc, o, m, e.Cap, sizes, nom, nomTd, e.Build, e.Sim, e.MC)
		if err != nil {
			return nil, fmt.Errorf("spice mc cv %v: %w", o, err)
		}
		for j, n := range sizes {
			rs := ref.Summary(j)
			s := cvr.CVSummary(j, rs.Mean, rs.Std)
			// A numerically perfect ρ̂ (possible at tiny paired budgets)
			// yields an infinite reduction factor; clamp it so every
			// encoder — JSON rejects ±Inf — stays serviceable.
			if s.VarReduction > 1e6 {
				s.VarReduction = 1e6
				s.EffectiveN = float64(s.Plain.N) * s.VarReduction
			}
			rows = append(rows, SpiceMCCVRow{
				Option: o, N: n,
				Spice:        s.Plain,
				CVMean:       s.Mean,
				CVStd:        s.Std,
				Beta:         s.Beta,
				Rho:          s.Rho,
				VarReduction: s.VarReduction,
				EffectiveN:   s.EffectiveN,
				RefMean:      rs.Mean,
				RefStd:       rs.Std,
				RefSamples:   rs.N,
				Rejected:     cvr.Rejected,
			})
		}
	}
	return rows, nil
}

// FormatSpiceMCCV renders the control-variate distributions paper-style.
func FormatSpiceMCCV(rows []SpiceMCCVRow, samples int) string {
	distinct := map[int]bool{}
	for _, r := range rows {
		distinct[r.N] = true
	}
	nsizes := len(distinct)
	if nsizes == 0 {
		nsizes = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Control-variate SPICE-MC tdp distributions (%d paired draws × %d size(s); analytic control on shared deviates)\n",
		samples, nsizes)
	fmt.Fprintf(&b, "%-8s %8s %10s %10s %10s %7s %7s %8s %10s\n",
		"option", "array", "σ_spice", "σ_cv", "σ_ref", "β", "ρ", "VR", "ESS")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8v 10x%-5d %9.3f%% %9.3f%% %9.3f%% %7.3f %7.4f %8.1f %10.0f\n",
			r.Option, r.N, r.Spice.Std, r.CVStd, r.RefStd, r.Beta, r.Rho, r.VarReduction, r.EffectiveN)
	}
	return b.String()
}

// SpiceMCCVReport converts the rows for csv/md/json output.
func SpiceMCCVReport(rows []SpiceMCCVRow) *report.Table {
	t := report.New("Control-variate SPICE-in-the-loop Monte-Carlo tdp distributions",
		"option", "wordlines", "samples", "rejected",
		"spice_sigma_pct", "cv_sigma_pct", "spice_mean_pct", "cv_mean_pct",
		"beta", "rho", "vr_factor", "ess",
		"ref_sigma_pct", "ref_mean_pct", "ref_samples")
	for _, r := range rows {
		_ = t.Appendf(r.Option.String(), r.N, r.Spice.N, r.Rejected,
			r.Spice.Std, r.CVStd, r.Spice.Mean, r.CVMean,
			r.Beta, r.Rho, r.VarReduction, r.EffectiveN,
			r.RefStd, r.RefMean, r.RefSamples)
	}
	return t
}
