package exp

import (
	"encoding/json"
	"sort"
	"strings"
	"testing"

	"mpsram/internal/mc"
	"mpsram/internal/report"
)

// tinyEnv is a fast deterministic environment for registry-level tests.
func tinyEnv() Env {
	e := DefaultEnv()
	e.MC = mc.Config{Samples: 50, Seed: 2015}
	return e
}

func TestRegistryListing(t *testing.T) {
	ws := Workloads()
	if len(ws) < 15 {
		t.Fatalf("registry too small: %d workloads", len(ws))
	}
	if !sort.SliceIsSorted(ws, func(i, j int) bool {
		if ws[i].Order != ws[j].Order {
			return ws[i].Order < ws[j].Order
		}
		return ws[i].Name < ws[j].Name
	}) {
		t.Fatal("Workloads() not in listing order")
	}
	// The paper experiments and the registry-registered extensions are
	// all present; the "all" plan covers exactly the paper-order set.
	names := map[string]Workload{}
	for _, w := range ws {
		names[w.Name] = w
	}
	for _, want := range []string{
		"table1", "fig2", "fig3", "fig4", "table2", "table3", "spicetables",
		"fig5", "table4", "table4x", "table4xp", "nodes", "mcspice",
		"mcspicex", "mcspicenodes", "snm", "sens", "ext", "processes",
		"workloads", "all",
	} {
		if _, ok := names[want]; !ok {
			t.Errorf("workload %q not registered", want)
		}
	}
	var inAll []string
	for _, w := range ws {
		if w.InAll {
			inAll = append(inAll, w.Name)
		}
	}
	wantAll := []string{"table1", "fig2", "fig3", "spicetables", "fig5", "table4"}
	if strings.Join(inAll, " ") != strings.Join(wantAll, " ") {
		t.Fatalf("all-plan drifted: %v", inAll)
	}
}

func TestLookupWorkloadUnknownListsRegistry(t *testing.T) {
	_, err := LookupWorkload("bogus")
	if err == nil || !strings.Contains(err.Error(), "table1") || !strings.Contains(err.Error(), "mcspicex") {
		t.Fatalf("unknown-workload error must list the registry, got %v", err)
	}
}

func TestRegisterRejectsDuplicatesAndBadDefaults(t *testing.T) {
	mustPanic := func(name string, w Workload) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: Register did not panic", name)
			}
		}()
		Register(w)
	}
	mustPanic("duplicate", Workload{Name: "table1", Run: registry["table1"].Run})
	mustPanic("no run", Workload{Name: "unique-no-run"})
	mustPanic("bad default", Workload{
		Name: "unique-bad-default", Run: registry["table1"].Run,
		Params: []ParamSpec{{Name: "n", Kind: IntParam, Default: "sixty-four"}},
	})
	mustPanic("dup param", Workload{
		Name: "unique-dup-param", Run: registry["table1"].Run,
		Params: []ParamSpec{
			{Name: "n", Kind: IntParam, Default: 1},
			{Name: "n", Kind: IntParam, Default: 2},
		},
	})
	if _, leaked := registry["unique-bad-default"]; leaked {
		t.Fatal("failed registration leaked into the registry")
	}
}

func TestRunParamValidation(t *testing.T) {
	e := tinyEnv()
	// Unknown parameter names answer with the schema.
	if _, err := Run(nil, e, "fig5", Params{"bogus": 1}); err == nil || !strings.Contains(err.Error(), `"bogus"`) || !strings.Contains(err.Error(), "n, ol") {
		t.Fatalf("unknown param error must list valid names, got %v", err)
	}
	// A parameterless workload says so.
	if _, err := Run(nil, e, "table1", Params{"n": 8}); err == nil || !strings.Contains(err.Error(), "takes no parameters") {
		t.Fatalf("parameterless error drifted: %v", err)
	}
	// Type mismatches are rejected; integral floats coerce to ints.
	if _, err := Run(nil, e, "nodes", Params{"n": "eight"}); err == nil || !strings.Contains(err.Error(), "want int") {
		t.Fatalf("type mismatch accepted: %v", err)
	}
	if _, err := Run(nil, e, "nodes", Params{"n": 8.5}); err == nil {
		t.Fatal("fractional int accepted")
	}
	rp, err := resolveParams(*registry["fig5"], Params{"n": float64(8), "ol": 3})
	if err != nil {
		t.Fatal(err)
	}
	if rp.Int("n") != 8 || rp.Float("ol") != 3.0 {
		t.Fatalf("coercion drifted: %+v", rp)
	}
	// Defaults fill untouched parameters.
	rp, err = resolveParams(*registry["fig5"], nil)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Int("n") != 64 || rp.Float("ol") != 0 {
		t.Fatalf("defaults drifted: %+v", rp)
	}
}

// TestCheapWorkloadsThroughRun drives the no-SPICE workloads end-to-end
// through the registry: typed Data, a tabular view and a text rendering,
// with the JSON path decoding cleanly.
func TestCheapWorkloadsThroughRun(t *testing.T) {
	e := tinyEnv()
	for _, name := range []string{"table1", "fig3", "sens", "processes", "workloads"} {
		res, err := Run(nil, e, name, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Data == nil || res.Text == "" || len(res.Tables) == 0 {
			t.Fatalf("%s: incomplete result %+v", name, res)
		}
		var b strings.Builder
		if err := res.Write(&b, report.FormatJSON); err != nil {
			t.Fatalf("%s: json: %v", name, err)
		}
		var doc []struct {
			Rows []map[string]any `json:"rows"`
		}
		if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
			t.Fatalf("%s: invalid json: %v\n%s", name, err, b.String())
		}
		if len(doc) != len(res.Tables) || len(doc[0].Rows) == 0 {
			t.Fatalf("%s: json shape drifted (%d tables)", name, len(doc))
		}
	}
}

// TestWorkloadTable1MatchesDriver pins the shim contract: the registry
// path returns the same typed rows as the direct driver call.
func TestWorkloadTable1MatchesDriver(t *testing.T) {
	e := tinyEnv()
	res, err := Run(nil, e, "table1", nil)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Table1(e)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Data.([]Table1Row)
	if len(rows) != len(direct) || rows[0] != direct[0] {
		t.Fatalf("registry rows drifted from driver rows")
	}
}

// TestMCSpiceXTiny runs the paired SPICE/analytic workload at the
// smallest affordable budget (one size, four draws — a fraction of a
// second), keeping the full driver on the fast deterministic path. The
// SPICE σ must track the analytic σ loosely even at four draws: both
// paths consume the same deviates, so gross disagreement means a wiring
// bug, not noise.
func TestMCSpiceXTiny(t *testing.T) {
	e := tinyEnv()
	e.MC.Samples = 4
	res, err := Run(nil, e, "mcspicex", Params{"sizes": "8"})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Data.([]MCSpiceXRow)
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.N != 8 || r.Spice.N != 4 || r.Analytic.N != 4 {
			t.Fatalf("row shape drifted: %+v", r)
		}
		if r.Spice.Std <= 0 || r.Analytic.Std <= 0 {
			t.Fatalf("degenerate sigma: %+v", r)
		}
		if d := r.SigmaDeltaPct(); d < -95 || d > 300 {
			t.Fatalf("spice/analytic sigma wildly apart (%+.1f%%): %+v", d, r)
		}
	}
	if !strings.Contains(res.Text, "σ_spice") || !strings.Contains(res.Text, "4 read transients") {
		t.Fatalf("text drifted:\n%s", res.Text)
	}
	tbl := MCSpiceXReport(rows)
	if len(tbl.Rows) != 3 || tbl.Columns[4] != "spice_sigma_pct" {
		t.Fatal("report table drifted")
	}
	if (MCSpiceXRow{}).SigmaDeltaPct() != 0 {
		t.Fatal("zero-analytic delta must be 0")
	}
}

// TestParamKindsAndCoercion covers the schema type system: kind names,
// the cross-type spellings coerceParam accepts, and the accessors.
func TestParamKindsAndCoercion(t *testing.T) {
	for k, want := range map[ParamKind]string{
		IntParam: "int", FloatParam: "float", BoolParam: "bool",
		StringParam: "string", ParamKind(99): "ParamKind(99)",
	} {
		if k.String() != want {
			t.Fatalf("%v.String() = %q", want, k.String())
		}
	}
	ok := []struct {
		spec ParamSpec
		in   any
		want any
	}{
		{ParamSpec{Name: "i", Kind: IntParam}, int64(7), 7},
		{ParamSpec{Name: "i", Kind: IntParam}, 7.0, 7},
		{ParamSpec{Name: "f", Kind: FloatParam}, float32(1.5), 1.5},
		{ParamSpec{Name: "f", Kind: FloatParam}, int64(2), 2.0},
		{ParamSpec{Name: "b", Kind: BoolParam}, true, true},
		{ParamSpec{Name: "s", Kind: StringParam}, "x", "x"},
	}
	for _, c := range ok {
		got, err := coerceParam(c.spec, c.in)
		if err != nil || got != c.want {
			t.Fatalf("coerce %v(%v) = %v, %v", c.spec.Kind, c.in, got, err)
		}
	}
	for _, c := range []struct {
		spec ParamSpec
		in   any
	}{
		{ParamSpec{Name: "b", Kind: BoolParam}, "true"},
		{ParamSpec{Name: "s", Kind: StringParam}, 1},
		{ParamSpec{Name: "i", Kind: IntParam}, true},
	} {
		if _, err := coerceParam(c.spec, c.in); err == nil {
			t.Fatalf("coerce %v(%v) accepted", c.spec.Kind, c.in)
		}
	}
	p := Params{"b": true, "s": "v", "i": 3, "f": 0.5}
	if !p.Bool("b") || p.String("s") != "v" || p.Int("i") != 3 || p.Float("f") != 0.5 {
		t.Fatal("accessors drifted")
	}
}

// TestResultWriteContract pins the rendering contract: text always
// works, and a table-less result refuses the machine-readable formats
// instead of leaking text where a consumer expects JSON/CSV.
func TestResultWriteContract(t *testing.T) {
	r := &Result{Text: "plain\n"}
	var b strings.Builder
	if err := r.Write(&b, report.FormatText); err != nil || b.String() != "plain\n" {
		t.Fatalf("text path drifted: %v %q", err, b.String())
	}
	for _, f := range []report.Format{report.FormatCSV, report.FormatMarkdown, report.FormatJSON} {
		if err := r.Write(&b, f); err == nil || !strings.Contains(err.Error(), "no tabular view") {
			t.Fatalf("format %v on table-less result must error, got %v", f, err)
		}
	}
}

func TestParseSizes(t *testing.T) {
	got, err := ParseSizes(" 8, 16,64 ")
	if err != nil || len(got) != 3 || got[0] != 8 || got[2] != 64 {
		t.Fatalf("ParseSizes = %v, %v", got, err)
	}
	for _, bad := range []string{"", ",", "8,-1", "8,x"} {
		if _, err := ParseSizes(bad); err == nil {
			t.Errorf("ParseSizes(%q) accepted", bad)
		}
	}
}

// TestSensAndExtReports covers the new drivers the registry exposed.
func TestSensAndExtReports(t *testing.T) {
	e := tinyEnv()
	rows, err := Sens(e, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("sens rows %d", len(rows))
	}
	for _, r := range rows {
		if r.Prop.SigmaPP <= 0 || len(r.Prop.Sensitivities) == 0 {
			t.Fatalf("degenerate propagation %+v", r)
		}
	}
	tabs := SensReports(rows)
	if len(tabs) != 2 || len(tabs[0].Rows) != 4 || len(tabs[1].Rows) == 0 {
		t.Fatalf("sens tables drifted")
	}
	if !strings.Contains(FormatSens(rows, 16), "σ(tdp)") {
		t.Fatal("sens text drifted")
	}
	ext, err := ExtTable1(e, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ExtTable1Report(ext, 0).Rows); got != 4 {
		t.Fatalf("ext table rows %d", got)
	}
}
