// Extension experiments beyond the paper's evaluation: the LE2 (LELE)
// double-patterning option, the metal-thickness (etch/CMP) variability
// source, and the write-path penalty. DESIGN.md §5 lists these as the
// ablations/extensions this reproduction adds.
package exp

import (
	"fmt"
	"strings"

	"mpsram/internal/extract"
	"mpsram/internal/litho"
	"mpsram/internal/sram"
)

// ExtTable1 runs the Table I worst-case search over all patterning
// options including LE2, optionally with the thickness source enabled
// (thk3sigma > 0).
func ExtTable1(e Env, thk3sigma float64) ([]Table1Row, error) {
	p := e.Proc
	p.Var.Thk3Sigma = thk3sigma
	var rows []Table1Row
	for _, o := range litho.AllOptions {
		wc, err := extract.WorstCase(p, o, e.Cap)
		if err != nil {
			return nil, fmt.Errorf("ext-table1 %v: %w", o, err)
		}
		rows = append(rows, Table1Row{
			Option:  o,
			Corner:  litho.CornerString(p, o, wc.Corner),
			CblPct:  wc.CvarPct(),
			RblPct:  wc.RvarPct(),
			RvssPct: (wc.Ratios.RvssVar - 1) * 100,
		})
	}
	return rows, nil
}

// FormatExtTable1 renders the extension corner study.
func FormatExtTable1(rows []Table1Row, thk3sigma float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: worst-case variability, all options")
	if thk3sigma > 0 {
		fmt.Fprintf(&b, " (+ %.1fnm 3σ thickness)", thk3sigma*1e9)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-8s %-52s %10s %10s\n", "option", "worst corner", "ΔCbl", "ΔRbl")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8v %-52s %+9.2f%% %+9.2f%%\n", r.Option, r.Corner, r.CblPct, r.RblPct)
	}
	return b.String()
}

// WritePenaltyRow is one option's write-path impact.
type WritePenaltyRow struct {
	Option     litho.Option
	N          int
	TFlipNom   float64
	TFlipWorst float64
	PenaltyPct float64
}

// WritePenalty measures the worst-corner write-time penalty per option at
// one array size — the extension showing MP variability also reaches the
// write path.
func WritePenalty(e Env, n int) ([]WritePenaltyRow, error) {
	nom, err := sram.NominalParasitics(e.Proc, e.Cap)
	if err != nil {
		return nil, err
	}
	var rows []WritePenaltyRow
	for _, o := range litho.Options {
		wc, err := extract.WorstCase(e.Proc, o, e.Cap)
		if err != nil {
			return nil, err
		}
		colN, err := sram.BuildWriteColumn(e.Proc, n, nom, e.Build)
		if err != nil {
			return nil, err
		}
		wrN, err := colN.MeasureWriteTime(nom, e.Sim)
		if err != nil {
			return nil, fmt.Errorf("write penalty %v nominal: %w", o, err)
		}
		scaled := nom.Scale(wc.Ratios)
		colW, err := sram.BuildWriteColumn(e.Proc, n, scaled, e.Build)
		if err != nil {
			return nil, err
		}
		wrW, err := colW.MeasureWriteTime(scaled, e.Sim)
		if err != nil {
			return nil, fmt.Errorf("write penalty %v worst: %w", o, err)
		}
		rows = append(rows, WritePenaltyRow{
			Option:     o,
			N:          n,
			TFlipNom:   wrN.TFlip,
			TFlipWorst: wrW.TFlip,
			PenaltyPct: (wrW.TFlip/wrN.TFlip - 1) * 100,
		})
	}
	return rows, nil
}

// FormatWritePenalty renders the write-path extension table.
func FormatWritePenalty(rows []WritePenaltyRow) string {
	var b strings.Builder
	b.WriteString("Extension: worst-case write-time penalty\n")
	fmt.Fprintf(&b, "%-8s %8s %12s %12s %10s\n", "option", "array", "tflip_nom", "tflip_wc", "penalty")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8v 10x%-5d %10.2fps %10.2fps %+9.2f%%\n",
			r.Option, r.N, r.TFlipNom*1e12, r.TFlipWorst*1e12, r.PenaltyPct)
	}
	return b.String()
}
