// Canonical parameter normalization: the hashing contract behind the
// serve layer's content-addressed result cache. Two submissions that
// denote the same run — explicit parameters spelling out the schema
// defaults, JSON numbers arriving as float64 where the schema says int,
// maps built in different key orders — must normalize to one canonical
// form before hashing, or the cache splits an entry per spelling and
// repeated queries pay full SPICE price for nothing.
package exp

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// NormalizeParams resolves p against the named workload's schema exactly
// the way Run does: unknown names error with the valid parameter list,
// values coerce to their declared kinds, and every parameter the caller
// omitted is filled with its schema default. The result is the canonical
// parameter set — a defaulted-equivalent submission ({"n": 64} versus
// nothing for a workload whose n defaults to 64) normalizes to the same
// map, which is what makes it safe to hash (see CanonicalParams).
func NormalizeParams(name string, p Params) (Params, error) {
	w, err := LookupWorkload(name)
	if err != nil {
		return nil, err
	}
	return resolveParams(w, p)
}

// CanonicalParams renders a parameter map as one deterministic string:
// keys sorted, each value in a kind-stable spelling (floats at full
// precision via strconv 'g', strings quoted). It is the parameter part of
// the run-key hashing contract (core.RunSpec.Key) — changing the
// rendering invalidates every cached result, so treat the format as
// frozen and bump core.EngineVersion if it ever has to move.
func CanonicalParams(p Params) string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + CanonicalValue(p[k])
	}
	return strings.Join(parts, ",")
}

// ParamFlags renders a normalized parameter map as sorted `-name=value`
// CLI arguments — the spelling the schema-generated per-workload flags
// parse back to the identical post-coercion value, which is what lets a
// fan-out coordinator hand a spec to an `mpvar shard` child and have the
// child recompute the same run key. Int/float/bool use the canonical
// spellings from CanonicalValue; strings pass raw, NOT quoted — argv is
// never shell-parsed, the flag package reads the value literally, so
// quoting here would embed quote characters into the parameter.
func ParamFlags(p Params) []string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	flags := make([]string, len(keys))
	for i, k := range keys {
		v := CanonicalValue(p[k])
		if s, ok := p[k].(string); ok {
			v = s
		}
		flags[i] = "-" + k + "=" + v
	}
	return flags
}

// CanonicalValue spells one post-coercion parameter value
// deterministically; it is the per-value half of CanonicalParams and
// shares its frozen-format contract.
func CanonicalValue(v any) string {
	switch x := v.(type) {
	case int:
		return strconv.Itoa(x)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(x)
	case string:
		return strconv.Quote(x)
	default:
		// Unreachable after coercion; kept total so a future kind fails
		// loudly in tests rather than silently hashing %v of a pointer.
		return fmt.Sprintf("%v", x)
	}
}
