// Canonical parameter normalization: the hashing contract behind the
// serve layer's content-addressed result cache. Two submissions that
// denote the same run — explicit parameters spelling out the schema
// defaults, JSON numbers arriving as float64 where the schema says int,
// maps built in different key orders — must normalize to one canonical
// form before hashing, or the cache splits an entry per spelling and
// repeated queries pay full SPICE price for nothing.
package exp

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// NormalizeParams resolves p against the named workload's schema exactly
// the way Run does: unknown names error with the valid parameter list,
// values coerce to their declared kinds, and every parameter the caller
// omitted is filled with its schema default. The result is the canonical
// parameter set — a defaulted-equivalent submission ({"n": 64} versus
// nothing for a workload whose n defaults to 64) normalizes to the same
// map, which is what makes it safe to hash (see CanonicalParams).
func NormalizeParams(name string, p Params) (Params, error) {
	w, err := LookupWorkload(name)
	if err != nil {
		return nil, err
	}
	return resolveParams(w, p)
}

// CanonicalParams renders a parameter map as one deterministic string:
// keys sorted, each value in a kind-stable spelling (floats at full
// precision via strconv 'g', strings quoted). It is the parameter part of
// the run-key hashing contract (core.RunSpec.Key) — changing the
// rendering invalidates every cached result, so treat the format as
// frozen and bump core.EngineVersion if it ever has to move.
func CanonicalParams(p Params) string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + canonicalValue(p[k])
	}
	return strings.Join(parts, ",")
}

// canonicalValue spells one post-coercion parameter value
// deterministically.
func canonicalValue(v any) string {
	switch x := v.(type) {
	case int:
		return strconv.Itoa(x)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(x)
	case string:
		return strconv.Quote(x)
	default:
		// Unreachable after coercion; kept total so a future kind fails
		// loudly in tests rather than silently hashing %v of a pointer.
		return fmt.Sprintf("%v", x)
	}
}
