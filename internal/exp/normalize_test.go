package exp

import (
	"flag"
	"io"
	"strings"
	"testing"
)

// TestNormalizeParamsDefaultFill pins the cache-key prerequisite: an
// omitted parameter and an explicitly-spelled default normalize to the
// same map, and JSON-shaped values (float64 where the schema says int)
// coerce to the declared kind.
func TestNormalizeParamsDefaultFill(t *testing.T) {
	got, err := NormalizeParams("fig5", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int("n") != 64 || got.Float("ol") != 0 {
		t.Fatalf("defaults not filled: %v", got)
	}
	exp, err := NormalizeParams("fig5", Params{"n": float64(64), "ol": 0})
	if err != nil {
		t.Fatal(err)
	}
	if CanonicalParams(got) != CanonicalParams(exp) {
		t.Fatalf("defaulted %q != explicit %q", CanonicalParams(got), CanonicalParams(exp))
	}
	if _, ok := exp["n"].(int); !ok {
		t.Fatalf("float64 spelling not coerced to int: %T", exp["n"])
	}
}

// TestNormalizeParamsErrors keeps the valid-names error contract on the
// exported surface (the serve layer returns these texts verbatim as 400
// bodies).
func TestNormalizeParamsErrors(t *testing.T) {
	if _, err := NormalizeParams("fig5", Params{"bogus": 1}); err == nil ||
		!strings.Contains(err.Error(), "valid: n, ol") {
		t.Fatalf("unknown param error drifted: %v", err)
	}
	if _, err := NormalizeParams("nope", nil); err == nil ||
		!strings.Contains(err.Error(), "registered:") {
		t.Fatalf("unknown workload error drifted: %v", err)
	}
	if _, err := NormalizeParams("fig5", Params{"n": 1.5}); err == nil ||
		!strings.Contains(err.Error(), "not an integer") {
		t.Fatalf("coercion error drifted: %v", err)
	}
}

// TestCanonicalParamsDeterministic pins the frozen hashing rendering:
// sorted keys, kind-stable value spellings, insertion-order independence.
func TestCanonicalParamsDeterministic(t *testing.T) {
	a := Params{"b": 1, "a": 0.5, "c": "x,y", "d": true}
	b := Params{}
	b["d"] = true
	b["c"] = "x,y"
	b["a"] = 0.5
	b["b"] = 1
	want := `a=0.5,b=1,c="x,y",d=true`
	if got := CanonicalParams(a); got != want {
		t.Fatalf("canonical rendering drifted: %q != %q", got, want)
	}
	if CanonicalParams(a) != CanonicalParams(b) {
		t.Fatalf("insertion order leaked into canonical form")
	}
	if CanonicalParams(nil) != "" {
		t.Fatalf("nil params must render empty, got %q", CanonicalParams(nil))
	}
}

// TestParamFlagsRoundTrip pins the spec-serialization contract every
// fan-out vehicle rides on: rendering a normalized parameter map with
// ParamFlags and parsing it back through the same flag bindings the
// `mpvar shard` CLI uses must reproduce a map with the identical
// canonical form (and therefore the identical run key). The values
// deliberately include the historical failure cases — strings with
// spaces, '=' and commas, negative and full-precision floats — that the
// old fmt.Sprintf("-%s=%v") encoding mangled into extra argv words.
func TestParamFlagsRoundTrip(t *testing.T) {
	cases := []Params{
		{"n": 64, "ol": 0.75, "cv": true},
		{"sizes": "16,32", "label": "a b=c", "path": `x="q" z`},
		{"ol": -1.0 / 3.0, "thk": 1e-12, "flag": false, "count": -7},
		{},
	}
	for _, p := range cases {
		args := ParamFlags(p)
		fs := flag.NewFlagSet("roundtrip", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		bound := map[string]func() any{}
		for name, v := range p {
			name := name
			switch v.(type) {
			case int:
				x := fs.Int(name, 0, "")
				bound[name] = func() any { return *x }
			case float64:
				x := fs.Float64(name, 0, "")
				bound[name] = func() any { return *x }
			case bool:
				x := fs.Bool(name, false, "")
				bound[name] = func() any { return *x }
			case string:
				x := fs.String(name, "", "")
				bound[name] = func() any { return *x }
			default:
				t.Fatalf("unhandled kind %T for %s", v, name)
			}
		}
		if err := fs.Parse(args); err != nil {
			t.Fatalf("parse %q: %v", args, err)
		}
		if fs.NArg() > 0 {
			t.Fatalf("encoding %q leaked positional args %q", args, fs.Args())
		}
		back := Params{}
		for name, get := range bound {
			back[name] = get()
		}
		if got, want := CanonicalParams(back), CanonicalParams(p); got != want {
			t.Fatalf("round trip drifted:\nflags %q\n got  %q\n want %q", args, got, want)
		}
	}
}

// TestCanonicalParamsFullPrecision: float values hash at full precision —
// two parameters differing past %.6g must produce different keys.
func TestCanonicalParamsFullPrecision(t *testing.T) {
	x := CanonicalParams(Params{"ol": 1.0 / 3.0})
	y := CanonicalParams(Params{"ol": 1.0/3.0 + 1e-12})
	if x == y {
		t.Fatalf("full-precision floats collapsed: %q", x)
	}
	if !strings.Contains(x, "0.3333333333333333") {
		t.Fatalf("float rendering drifted: %q", x)
	}
}
