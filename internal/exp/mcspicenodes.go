// The carried cross-node SPICE validation: the `nodes` comparison driven
// by full read transients instead of the closed-form formula, per process
// preset (N10 plus the derived N7/N5) and patterning option at the
// paper's n = 64. The analytic study predicts the LE3 σ amplifying
// 2.27 → 4.65 pp from N10 to N5 at the 8 nm overlay budget while SADP
// stays node-flat; this workload checks that amplification against
// simulated transients on the derived presets. It is affordable only
// because it rides the control-variate estimator — ~60 paired draws per
// (node, option) buy plain-estimator hundreds — so the CV machinery is
// always on here; the analytic reference column doubles as the
// amplification being validated.
//
// Like every workload, this file is self-registering: no CLI, serve or
// smoke-harness edits anywhere else.
package exp

import (
	"context"
	"fmt"
	"strings"

	"mpsram/internal/litho"
	"mpsram/internal/report"
)

func init() {
	Register(Workload{
		Name: "mcspicenodes", Summary: "cross-node SPICE-measured tdp sigma vs analytic amplification (control-variate accelerated)",
		Order: 118,
		Params: []ParamSpec{
			{Name: "n", Kind: IntParam, Default: NodesN, Help: "array word-line count"},
			{Name: "ol", Kind: FloatParam, Default: 8,
				Help: "LE3 overlay 3σ budget [nm] applied to every node (0 = each node's preset)"},
			{Name: "adaptive", Kind: BoolParam, Default: false,
				Help: "adaptive step-doubling transient integrator (accuracy-gated, ~7× fewer steps)"},
		},
		// The CV estimator makes the budget hint a fraction of mcspice's
		// 200: 60 paired draws per (node, option) measure σ with
		// comparable standard error at ~1/10 the transient count of a
		// plain cross-node run. The smoke override shrinks the array so
		// the 3-node × 3-option DOE stays a few seconds.
		Hints: Hints{Samples: 60, Smoke: Params{"n": 8}, Cost: 12000},
		Run: func(ctx context.Context, e Env, p Params) (*Result, error) {
			if p.Bool("adaptive") {
				e.Sim.Adaptive = true
			}
			rows, err := MCSpiceNodes(e, p.Int("n"), p.Float("ol")*1e-9)
			if err != nil {
				return nil, err
			}
			return &Result{
				Data:   rows,
				Tables: []*report.Table{MCSpiceNodesReport(rows)},
				Text:   FormatMCSpiceNodes(rows, p.Int("n"), e.MC.Samples),
			}, nil
		},
	})
}

// MCSpiceNodesRow is one (process, option) cell of the cross-node SPICE
// validation.
type MCSpiceNodesRow struct {
	Process string
	SpiceMCCVRow
}

// MCSpiceNodes runs the control-variate SPICE-MC once per process of the
// environment's node set at array size n. A non-zero ol (metres) pins the
// LE3 overlay 3σ budget on every node so the cross-node amplification is
// read at one fixed budget (the analytic study's 8 nm column); ol = 0
// keeps each node's own preset. Every node runs its own deterministic
// sample stream and derives its own analytic model, nominal parasitics
// and reference moments.
func MCSpiceNodes(e Env, n int, ol float64) ([]MCSpiceNodesRow, error) {
	var rows []MCSpiceNodesRow
	for _, proc := range e.processes() {
		env := e
		env.Proc = proc
		if ol > 0 {
			env.Proc = proc.WithOL(ol)
		}
		cells, err := SpiceMCCV(env, []int{n})
		if err != nil {
			return nil, fmt.Errorf("mcspicenodes %s: %w", proc.Name, err)
		}
		for _, c := range cells {
			rows = append(rows, MCSpiceNodesRow{Process: proc.Name, SpiceMCCVRow: c})
		}
	}
	return rows, nil
}

// FormatMCSpiceNodes renders the validation long-format: per node and
// option the CV-corrected SPICE σ next to the analytic reference σ whose
// cross-node amplification it validates.
func FormatMCSpiceNodes(rows []MCSpiceNodesRow, n, samples int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cross-node SPICE validation (array 10x%d, %d paired draws per node/option, CV estimator)\n", n, samples)
	fmt.Fprintf(&b, "%-6s %-8s %10s %10s %10s %8s %8s\n",
		"node", "option", "σ_cv", "σ_spice", "σ_ref", "ρ", "VR")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %-8v %9.3f%% %9.3f%% %9.3f%% %8.4f %8.1f\n",
			r.Process, r.Option, r.CVStd, r.Spice.Std, r.RefStd, r.Rho, r.VarReduction)
	}
	// The headline comparison: per option, σ at the last node over σ at
	// the first (the amplification the analytic study predicts).
	first, last := map[litho.Option]float64{}, map[litho.Option]float64{}
	var firstName, lastName string
	for _, r := range rows {
		if _, ok := first[r.Option]; !ok {
			first[r.Option] = r.CVStd
			firstName = r.Process
		}
		last[r.Option] = r.CVStd
		lastName = r.Process
	}
	if firstName != lastName {
		fmt.Fprintf(&b, "σ amplification %s → %s:", firstName, lastName)
		for _, o := range litho.Options {
			if first[o] > 0 {
				fmt.Fprintf(&b, "  %v %.2f×", o, last[o]/first[o])
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// MCSpiceNodesReport converts the rows for csv/md/json output.
func MCSpiceNodesReport(rows []MCSpiceNodesRow) *report.Table {
	t := report.New("Cross-node SPICE-measured vs analytic tdp sigma (control-variate estimator)",
		"process", "option", "wordlines", "samples", "rejected",
		"cv_sigma_pct", "spice_sigma_pct", "ref_sigma_pct",
		"cv_mean_pct", "ref_mean_pct", "beta", "rho", "vr_factor", "ess", "ref_samples")
	for _, r := range rows {
		_ = t.Appendf(r.Process, r.Option.String(), r.N, r.Spice.N, r.Rejected,
			r.CVStd, r.Spice.Std, r.RefStd,
			r.CVMean, r.RefMean, r.Beta, r.Rho, r.VarReduction, r.EffectiveN, r.RefSamples)
	}
	return t
}
