package exp

import (
	"strings"
	"testing"

	"mpsram/internal/litho"
)

func TestExtTable1IncludesLE2(t *testing.T) {
	rows, err := ExtTable1(testEnv(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(litho.AllOptions) {
		t.Fatalf("rows %d", len(rows))
	}
	byOpt := map[litho.Option]Table1Row{}
	for _, r := range rows {
		byOpt[r.Option] = r
	}
	le2 := byOpt[litho.LE2]
	le3 := byOpt[litho.LE3]
	euv := byOpt[litho.EUV]
	// LE2 between EUV and LE3 (overlay half-cancels).
	if !(le2.CblPct > euv.CblPct && le2.CblPct < le3.CblPct) {
		t.Fatalf("LE2 %.2f not between EUV %.2f and LE3 %.2f", le2.CblPct, euv.CblPct, le3.CblPct)
	}
	out := FormatExtTable1(rows, 0)
	if !strings.Contains(out, "LELE ") && !strings.Contains(out, "LELE\t") && !strings.Contains(out, "LELE") {
		t.Fatalf("format missing LE2 row: %s", out)
	}
}

func TestExtTable1ThicknessStrictlyWorsens(t *testing.T) {
	base, err := ExtTable1(testEnv(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := ExtTable1(testEnv(), 2e-9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if ext[i].CblPct < base[i].CblPct {
			t.Fatalf("%v: thickness source lost worst case: %.2f < %.2f",
				base[i].Option, ext[i].CblPct, base[i].CblPct)
		}
		if !strings.Contains(ext[i].Corner, "THK") {
			t.Fatalf("%v: worst corner does not use the thickness axis: %s",
				ext[i].Option, ext[i].Corner)
		}
	}
	if !strings.Contains(FormatExtTable1(ext, 2e-9), "thickness") {
		t.Fatal("format must flag the thickness source")
	}
}

func TestWritePenalty(t *testing.T) {
	rows, err := WritePenalty(testEnv(), 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
	byOpt := map[litho.Option]WritePenaltyRow{}
	for _, r := range rows {
		byOpt[r.Option] = r
		if r.TFlipNom <= 0 || r.TFlipWorst <= 0 {
			t.Fatalf("%v: non-positive flip times %+v", r.Option, r)
		}
	}
	// LE3's capacitance blow-up must dominate the write penalty too.
	if !(byOpt[litho.LE3].PenaltyPct > byOpt[litho.SADP].PenaltyPct &&
		byOpt[litho.LE3].PenaltyPct > byOpt[litho.EUV].PenaltyPct) {
		t.Fatalf("LE3 write penalty should dominate: %+v", byOpt)
	}
	if !strings.Contains(FormatWritePenalty(rows), "write-time") {
		t.Fatal("format")
	}
}

func TestReportBridges(t *testing.T) {
	e := testEnv()
	t1, err := Table1(e)
	if err != nil {
		t.Fatal(err)
	}
	if tb := Table1Report(t1); len(tb.Rows) != len(t1) || len(tb.Columns) != 5 {
		t.Fatal("table1 bridge")
	}
	f3, err := Fig3(e)
	if err != nil {
		t.Fatal(err)
	}
	if tb := Fig3Report(f3); len(tb.Rows) != len(f3) {
		t.Fatal("fig3 bridge")
	}
	f5, err := Fig5(e, 8e-9, 16)
	if err != nil {
		t.Fatal(err)
	}
	if tb := Fig5Report(f5); len(tb.Rows) != len(f5) {
		t.Fatal("fig5 bridge")
	}
	t4, err := Table4(e)
	if err != nil {
		t.Fatal(err)
	}
	tb := Table4Report(t4)
	if len(tb.Rows) != len(t4) {
		t.Fatal("table4 bridge")
	}
	// LE3 rows carry the overlay column, SADP/EUV leave it blank.
	sawBlank, sawOL := false, false
	for _, r := range tb.Rows {
		if r[1] == "" {
			sawBlank = true
		} else {
			sawOL = true
		}
	}
	if !sawBlank || !sawOL {
		t.Fatal("table4 overlay column")
	}
}

func TestReportBridgesSpice(t *testing.T) {
	if testing.Short() {
		t.Skip("SPICE sweeps")
	}
	e := testEnv()
	f4, err := Fig4(e)
	if err != nil {
		t.Fatal(err)
	}
	if tb := Fig4Report(f4); len(tb.Rows) != len(f4) {
		t.Fatal("fig4 bridge")
	}
	t2, err := Table2(e)
	if err != nil {
		t.Fatal(err)
	}
	if tb := Table2Report(t2); len(tb.Rows) != len(t2) {
		t.Fatal("table2 bridge")
	}
	t3, err := Table3(e)
	if err != nil {
		t.Fatal(err)
	}
	if tb := Table3Report(t3); len(tb.Rows) != len(t3) {
		t.Fatal("table3 bridge")
	}
}
