package exp

import (
	"context"
	"strings"
	"testing"

	"mpsram/internal/litho"
	"mpsram/internal/mc"
)

// testEnv trims the Monte-Carlo budget for test speed.
func testEnv() Env {
	e := DefaultEnv()
	e.MC = mc.Config{Samples: 1500, Seed: 99}
	return e
}

func TestDefaultEnv(t *testing.T) {
	e := DefaultEnv()
	if err := e.Proc.Validate(); err != nil {
		t.Fatal(err)
	}
	if e.Cap == nil || e.MC.Samples < 1000 {
		t.Fatal("default env incomplete")
	}
	m, err := e.Model()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTable1PaperShape(t *testing.T) {
	rows, err := Table1(testEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("row count %d", len(rows))
	}
	byOpt := map[litho.Option]Table1Row{}
	for _, r := range rows {
		byOpt[r.Option] = r
	}
	// Paper Table I ordering and signs.
	if !(byOpt[litho.LE3].CblPct > byOpt[litho.EUV].CblPct &&
		byOpt[litho.EUV].CblPct > byOpt[litho.SADP].CblPct) {
		t.Fatalf("ΔCbl ordering broken: %+v", byOpt)
	}
	for _, r := range rows {
		if r.RblPct >= 0 {
			t.Fatalf("%v worst corner must reduce Rbl: %+v", r.Option, r)
		}
	}
	if byOpt[litho.SADP].RvssPct <= 0 {
		t.Fatal("SADP worst corner must raise RVSS (anti-correlation)")
	}
	out := FormatTable1(rows)
	for _, want := range []string{"Table I", "LELELE", "SADP", "EUV", "ΔCbl"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}

func TestFig2Entries(t *testing.T) {
	es, err := Fig2(testEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 3 {
		t.Fatalf("entries %d", len(es))
	}
	for _, e := range es {
		if e.ASCII == "" || e.Describe == "" {
			t.Fatalf("%v: empty artefacts", e.Option)
		}
		if err := e.Window.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if !strings.Contains(FormatFig2(es), "Fig. 2") {
		t.Fatal("format header")
	}
}

func TestFig3DOE(t *testing.T) {
	rows, err := Fig3(testEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(PaperSizes) {
		t.Fatalf("rows %d", len(rows))
	}
	for i, r := range rows {
		if r.N != PaperSizes[i] || r.Columns != PaperColumns {
			t.Fatalf("row %+v", r)
		}
	}
	if !strings.Contains(FormatFig3(rows), "10x1024") {
		t.Fatal("format")
	}
}

func TestTable2FormulaUnderestimatesSimulation(t *testing.T) {
	rows, err := Table2(testEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(PaperSizes) {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		// Paper Table II: the lumped formula underestimates the full
		// simulation at every size.
		if r.FormulaTd >= r.SimTd {
			t.Fatalf("n=%d: formula %g not below simulation %g", r.N, r.FormulaTd, r.SimTd)
		}
		// ...but stays within one order of magnitude.
		if r.SimTd/r.FormulaTd > 10 {
			t.Fatalf("n=%d: formula off by more than 10x", r.N)
		}
	}
	if !strings.Contains(FormatTable2(rows), "Table II") {
		t.Fatal("format")
	}
}

func TestTable3FormulaTracksSimExceptSADPAtLargeN(t *testing.T) {
	if testing.Short() {
		t.Skip("full SPICE sweep")
	}
	rows, err := Table3(testEnv())
	if err != nil {
		t.Fatal(err)
	}
	get := func(o litho.Option, n int) Table3Row {
		for _, r := range rows {
			if r.Option == o && r.N == n {
				return r
			}
		}
		t.Fatalf("missing row %v %d", o, n)
		return Table3Row{}
	}
	// LE3 and EUV: formula within a few points of simulation everywhere.
	for _, o := range []litho.Option{litho.LE3, litho.EUV} {
		for _, n := range PaperSizes {
			r := get(o, n)
			if d := r.FormulaPct - r.SimPct; d > 8 || d < -8 {
				t.Errorf("%v n=%d: formula %.2f vs sim %.2f", o, n, r.FormulaPct, r.SimPct)
			}
		}
	}
	// SADP at 1024: the paper's divergence — formula negative,
	// simulation positive.
	r := get(litho.SADP, 1024)
	if r.FormulaPct >= 0 {
		t.Errorf("SADP formula at 1024 = %+.2f, want negative", r.FormulaPct)
	}
	if r.SimPct <= 0 {
		t.Errorf("SADP simulation at 1024 = %+.2f, want positive", r.SimPct)
	}
	// And agreement at n ≤ 64 (paper: formula fine for short arrays).
	r64 := get(litho.SADP, 64)
	if d := r64.FormulaPct - r64.SimPct; d > 4 || d < -4 {
		t.Errorf("SADP n=64: formula %+.2f vs sim %+.2f", r64.FormulaPct, r64.SimPct)
	}
	if !strings.Contains(FormatTable3(rows), "Simulation") {
		t.Fatal("format")
	}
}

func TestFig5Distributions(t *testing.T) {
	res, err := Fig5(testEnv(), 8e-9, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results %d", len(res))
	}
	byOpt := map[litho.Option]Fig5Result{}
	for _, r := range res {
		byOpt[r.Option] = r
		if r.Hist.Total() == 0 {
			t.Fatalf("%v: empty histogram", r.Option)
		}
	}
	// Paper Fig. 5: LE3 distribution is much wider than SADP.
	if byOpt[litho.LE3].Summary.Std < 2*byOpt[litho.SADP].Summary.Std {
		t.Fatalf("LE3 σ %.3f not ≫ SADP σ %.3f",
			byOpt[litho.LE3].Summary.Std, byOpt[litho.SADP].Summary.Std)
	}
	if !strings.Contains(FormatFig5(res), "Fig. 5") {
		t.Fatal("format")
	}
}

func TestTable4Sweep(t *testing.T) {
	rows, err := Table4(testEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(PaperOLBudgets)+2 {
		t.Fatalf("rows %d", len(rows))
	}
	if !strings.Contains(FormatTable4(rows), "Table IV") {
		t.Fatal("format")
	}
}

func TestTable4SurfaceSharedStream(t *testing.T) {
	e := testEnv()
	rows, err := Table4Surface(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(PaperOLBudgets)+2 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if len(r.Cells) != len(PaperSizes) {
			t.Fatalf("%v: cells %d", r.Option, len(r.Cells))
		}
		for j, c := range r.Cells {
			if c.N != PaperSizes[j] || c.Sigma <= 0 {
				t.Fatalf("%v cell %+v", r.Option, c)
			}
		}
	}
	// The n=64 column must agree exactly with the classic Table IV (both
	// come from the same engine and the same per-trial PRNG derivation).
	sweep, err := Table4(e)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r.Cells[1].Sigma != sweep[i].Sigma {
			t.Fatalf("row %d: surface σ %g vs sweep σ %g", i, r.Cells[1].Sigma, sweep[i].Sigma)
		}
	}
	out := FormatTable4Surface(rows)
	for _, want := range []string{"Table IV (extended)", "σ@10x1024", "SADP"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
	if got := len(Table4SurfaceReport(rows).Rows); got != len(rows)*len(PaperSizes) {
		t.Fatalf("report rows %d", got)
	}
}

func TestEnvContextCancelsExperiments(t *testing.T) {
	e := testEnv()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e.Ctx = ctx
	if _, err := Table4(e); err == nil {
		t.Fatal("canceled context must abort Table IV")
	}
	if _, err := Fig5(e, 8e-9, 64); err == nil {
		t.Fatal("canceled context must abort Fig. 5")
	}
}
