// The workload registry: every experiment registers one Workload
// descriptor — name, summary, typed parameter schema, budget hints and a
// uniform Run function — and every consumer (core.Study.Run, the CLI
// dispatcher, the smoke tests, RunAll) drives experiments through it.
// Adding an experiment is one file with an init() registration: the CLI
// usage text, the flag binding, the smoke coverage and the Study surface
// all pick it up with zero edits elsewhere.
package exp

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"mpsram/internal/report"
)

// ParamKind types a workload parameter.
type ParamKind int

const (
	IntParam ParamKind = iota
	FloatParam
	BoolParam
	StringParam
)

// String names the kind for usage text and error messages.
func (k ParamKind) String() string {
	switch k {
	case IntParam:
		return "int"
	case FloatParam:
		return "float"
	case BoolParam:
		return "bool"
	case StringParam:
		return "string"
	default:
		return fmt.Sprintf("ParamKind(%d)", int(k))
	}
}

// ParamSpec declares one typed workload parameter. The CLI binds a flag
// per spec (default and help straight from here); Study.Run validates the
// caller's Params map against it.
type ParamSpec struct {
	Name    string
	Kind    ParamKind
	Default any
	Help    string
}

// Params carries per-run workload arguments keyed by ParamSpec name.
// Values are validated and defaulted by Run before the workload sees
// them, so accessors inside a workload can assume their declared types.
type Params map[string]any

// Int returns an integer parameter (post-validation).
func (p Params) Int(name string) int { return p[name].(int) }

// Float returns a float parameter (post-validation).
func (p Params) Float(name string) float64 { return p[name].(float64) }

// Bool returns a boolean parameter (post-validation).
func (p Params) Bool(name string) bool { return p[name].(bool) }

// String returns a string parameter (post-validation).
func (p Params) String(name string) string { return p[name].(string) }

// Hints carries workload-level budget advice for callers that configure
// the environment generically (the CLI, smoke harnesses). They are
// descriptive — Run never applies them behind the caller's back.
type Hints struct {
	// Samples is the preferred Monte-Carlo budget when the caller has
	// not chosen one (0 = no preference). SPICE-in-the-loop workloads
	// use it to replace the analytic 10k default with an affordable
	// transient budget.
	Samples int
	// CVSamples is the advised budget when the workload runs with its
	// control-variate estimator (`cv` param): each paired draw carries
	// ~1/(1−ρ̂²) plain draws' worth of statistical power, so far fewer
	// transients reach the same standard error. 0 = the workload has no
	// cv mode or no separate advice. Like Samples, purely descriptive.
	CVSamples int
	// Smoke holds tiny-budget parameter overrides for registry-iterating
	// smoke runs (nil = the schema defaults are already cheap).
	Smoke Params
	// Cost weighs one Monte-Carlo sample of this workload against one
	// analytic trial, so schedulers can estimate a submission's total
	// cost as Samples × Cost before executing it (the serve layer's
	// fan-out threshold). Zero means the workload's runtime is not
	// dominated by its shardable Monte-Carlo stream — analytic corner
	// studies, pure SPICE sweeps, listings — and fan-out must leave it
	// single-process. Like the budgets, purely descriptive.
	Cost float64
}

// Result is what every workload returns: the typed rows (Data), the
// tabular view feeding the shared csv/md/json encoders in
// internal/report, and the paper-style plain-text rendering.
type Result struct {
	// Data holds the workload's native typed rows (e.g. []Table1Row) for
	// programmatic consumers; the deprecated Study convenience methods
	// are type-asserting shims over it.
	Data any
	// Tables is the machine-readable view. Most workloads emit one
	// table; composite workloads (spicetables, ext, all) emit several.
	Tables []*report.Table
	// Text is the paper-style rendering.
	Text string
}

// Write renders the result: FormatText prints the paper-style text,
// every other format goes through the shared report encoders. A workload
// without a tabular view errors loudly on the machine-readable formats
// instead of leaking text where a consumer expects JSON/CSV.
func (r *Result) Write(w io.Writer, f report.Format) error {
	if f == report.FormatText {
		_, err := io.WriteString(w, r.Text)
		return err
	}
	if len(r.Tables) == 0 {
		return fmt.Errorf("exp: result has no tabular view; only text format is available")
	}
	return report.WriteTables(w, f, r.Tables...)
}

// Workload is one registered experiment.
type Workload struct {
	// Name is the registry key and CLI command.
	Name string
	// Summary is the one-line description shown in the generated usage.
	Summary string
	// Order fixes the listing position (paper order first, extensions
	// after); ties break by name.
	Order int
	// InAll marks the workloads the "all" plan runs, in Order.
	InAll bool
	// Params is the typed parameter schema. A parameter whose name
	// matches a global CLI flag (e.g. "n") is fed by that flag rather
	// than a duplicate binding.
	Params []ParamSpec
	// Hints carries budget advice for generic callers.
	Hints Hints
	// Run executes the workload under the environment with validated,
	// defaulted parameters.
	Run func(ctx context.Context, e Env, p Params) (*Result, error)
}

var registry = map[string]*Workload{}

// Register adds a workload to the registry; duplicate names, malformed
// schemas and missing Run functions panic at init time.
func Register(w Workload) {
	if w.Name == "" || w.Run == nil {
		panic(fmt.Sprintf("exp: workload %q missing name or Run", w.Name))
	}
	if _, dup := registry[w.Name]; dup {
		panic(fmt.Sprintf("exp: duplicate workload %q", w.Name))
	}
	seen := map[string]bool{}
	cp := w
	cp.Params = append([]ParamSpec(nil), w.Params...)
	for i, ps := range cp.Params {
		if ps.Name == "" || seen[ps.Name] {
			panic(fmt.Sprintf("exp: workload %q: empty or duplicate param %q", w.Name, ps.Name))
		}
		seen[ps.Name] = true
		// Normalize the default to its coerced form so every consumer
		// (the CLI's flag binding included) sees the declared kind's
		// native type, not whatever spelling the registration used.
		def, err := coerceParam(ps, ps.Default)
		if err != nil {
			panic(fmt.Sprintf("exp: workload %q: default for %s: %v", w.Name, ps.Name, err))
		}
		cp.Params[i].Default = def
	}
	registry[w.Name] = &cp
}

// Workloads returns every registered workload in listing order.
func Workloads() []Workload {
	out := make([]Workload, 0, len(registry))
	for _, w := range registry {
		out = append(out, *w)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Order != out[j].Order {
			return out[i].Order < out[j].Order
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// WorkloadNames returns the registered names in listing order.
func WorkloadNames() []string {
	ws := Workloads()
	names := make([]string, len(ws))
	for i, w := range ws {
		names[i] = w.Name
	}
	return names
}

// LookupWorkload resolves a name; unknown names answer with the registry,
// the same contract the technology registry uses — CLIs surface it
// verbatim.
func LookupWorkload(name string) (Workload, error) {
	w, ok := registry[name]
	if !ok {
		return Workload{}, fmt.Errorf("exp: unknown workload %q (registered: %s)",
			name, strings.Join(WorkloadNames(), ", "))
	}
	return *w, nil
}

// coerceParam checks one value against a spec, accepting the natural
// cross-type spellings (ints where floats are declared, integral floats
// where ints are — what JSON decoding and literal Params maps produce).
func coerceParam(ps ParamSpec, v any) (any, error) {
	switch ps.Kind {
	case IntParam:
		switch x := v.(type) {
		case int:
			return x, nil
		case int64:
			return int(x), nil
		case float64:
			if x != math.Trunc(x) {
				return nil, fmt.Errorf("param %s: %v is not an integer", ps.Name, x)
			}
			return int(x), nil
		}
	case FloatParam:
		switch x := v.(type) {
		case float64:
			return x, nil
		case float32:
			return float64(x), nil
		case int:
			return float64(x), nil
		case int64:
			return float64(x), nil
		}
	case BoolParam:
		if x, ok := v.(bool); ok {
			return x, nil
		}
	case StringParam:
		if x, ok := v.(string); ok {
			return x, nil
		}
	}
	return nil, fmt.Errorf("param %s: want %v, got %T", ps.Name, ps.Kind, v)
}

// resolveParams validates p against the schema and fills defaults.
// Unknown keys error with the valid parameter names, mirroring the
// unknown-workload and unknown-process contracts.
func resolveParams(w Workload, p Params) (Params, error) {
	out := make(Params, len(w.Params))
	for _, ps := range w.Params {
		v, _ := coerceParam(ps, ps.Default)
		out[ps.Name] = v
	}
	for name, v := range p {
		var spec *ParamSpec
		for i := range w.Params {
			if w.Params[i].Name == name {
				spec = &w.Params[i]
				break
			}
		}
		if spec == nil {
			valid := make([]string, len(w.Params))
			for i, ps := range w.Params {
				valid[i] = ps.Name
			}
			if len(valid) == 0 {
				return nil, fmt.Errorf("exp: workload %s takes no parameters, got %q", w.Name, name)
			}
			return nil, fmt.Errorf("exp: workload %s has no parameter %q (valid: %s)",
				w.Name, name, strings.Join(valid, ", "))
		}
		cv, err := coerceParam(*spec, v)
		if err != nil {
			return nil, fmt.Errorf("exp: workload %s: %w", w.Name, err)
		}
		out[name] = cv
	}
	return out, nil
}

// Run executes a registered workload by name under the environment:
// lookup, parameter validation and defaulting, then the workload body
// with ctx installed as the environment's cancellation context. A nil
// ctx keeps the environment's own context.
func Run(ctx context.Context, e Env, name string, p Params) (*Result, error) {
	w, err := LookupWorkload(name)
	if err != nil {
		return nil, err
	}
	rp, err := resolveParams(w, p)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = e.ctx()
	}
	e.Ctx = ctx
	res, err := w.Run(ctx, e, rp)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", name, err)
	}
	return res, nil
}
