// The SPICE-in-the-loop Monte-Carlo driver: the statistical companion to
// Fig. 4 / Table III, with every tdp sample measured by a full read
// transient instead of the closed-form formula. Not a figure of the paper
// itself — the paper reports formula-driven distributions (Fig. 5,
// Table IV) — but the experiment its simulation-measured tables rest on,
// made affordable by the resident-engine trial path (sram.ColumnBuilder +
// spice.Engine.Reset).
package exp

import (
	"context"
	"fmt"
	"strings"

	"mpsram/internal/litho"
	"mpsram/internal/mc"
	"mpsram/internal/report"
	"mpsram/internal/sram"
	"mpsram/internal/stats"
)

func init() {
	Register(Workload{
		Name: "mcspice", Summary: "SPICE-in-the-loop Monte-Carlo tdp distributions (one transient per draw)",
		Order: 110,
		Params: []ParamSpec{
			{Name: "n", Kind: IntParam, Default: 64, Help: "array word-line count"},
			{Name: "sizes", Kind: StringParam, Default: "",
				Help: "comma-separated word-line counts (overrides -n)"},
			{Name: "cv", Kind: BoolParam, Default: false,
				Help: "control-variate estimator: pair every transient with the analytic formula on the same draw"},
			{Name: "adaptive", Kind: BoolParam, Default: false,
				Help: "adaptive step-doubling transient integrator (accuracy-gated, ~7× fewer steps)"},
		},
		// Every sample costs a full read transient, so the preferred
		// budget is the re-baselined 200 draws, not the analytic 10k.
		// With -cv each paired draw is worth ~1/(1−ρ̂²) plain draws, so
		// ~20 already buy comparable σ accuracy.
		Hints: Hints{Samples: 200, CVSamples: 20, Cost: 4000},
		Run: func(ctx context.Context, e Env, p Params) (*Result, error) {
			sizes := []int{p.Int("n")}
			if s := p.String("sizes"); s != "" {
				var err error
				if sizes, err = ParseSizes(s); err != nil {
					return nil, err
				}
			}
			if p.Bool("adaptive") {
				e.Sim.Adaptive = true
			}
			if p.Bool("cv") {
				rows, err := SpiceMCCV(e, sizes)
				if err != nil {
					return nil, err
				}
				return &Result{
					Data:   rows,
					Tables: []*report.Table{SpiceMCCVReport(rows)},
					Text:   FormatSpiceMCCV(rows, e.MC.Samples),
				}, nil
			}
			rows, err := SpiceMC(e, sizes)
			if err != nil {
				return nil, err
			}
			return &Result{
				Data:   rows,
				Tables: []*report.Table{SpiceMCReport(rows)},
				Text:   FormatSpiceMC(rows, e.MC.Samples),
			}, nil
		},
	})
}

// SpiceMCRow is one (option, size) cell of the SPICE-in-the-loop
// Monte-Carlo: the distribution of the simulated tdp penalty in percent.
type SpiceMCRow struct {
	Option   litho.Option
	N        int
	Summary  stats.Summary
	Rejected int
}

// SpiceMC runs one SPICE-in-the-loop Monte-Carlo stream per patterning
// option at the given array sizes under the environment's sample budget.
// Each draw's lithography-perturbed parasitics are simulated at every
// size, so the per-option transient count is Samples × len(sizes) — size
// the budget accordingly (hundreds of samples, not the analytic path's
// tens of thousands). Results are bit-identical for any worker count.
func SpiceMC(e Env, sizes []int) ([]SpiceMCRow, error) {
	if e.Cap == nil {
		return nil, fmt.Errorf("spice mc: nil capacitance model")
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("spice mc: no array sizes requested")
	}
	// Nominal geometry is option-independent: extract and simulate the
	// tdp denominators once, shared by every option's stream.
	seed := sram.NewColumnBuilder(e.Proc, e.Cap)
	nom, err := seed.Nominal()
	if err != nil {
		return nil, fmt.Errorf("spice mc: nominal extraction: %w", err)
	}
	nomTd, err := seed.NominalTds(sizes, e.Build, e.Sim)
	if err != nil {
		return nil, fmt.Errorf("spice mc: %w", err)
	}
	var rows []SpiceMCRow
	for _, o := range litho.Options {
		vr, err := mc.SpiceTdpAcrossSizesShared(e.ctx(), e.Proc, o, e.Cap, sizes, nom, nomTd, e.Build, e.Sim, e.MC)
		if err != nil {
			return nil, fmt.Errorf("spice mc %v: %w", o, err)
		}
		for j, n := range sizes {
			rows = append(rows, SpiceMCRow{Option: o, N: n, Summary: vr.Summary(j), Rejected: vr.Rejected})
		}
	}
	return rows, nil
}

// FormatSpiceMC renders the distributions paper-style. samples is the
// configured draw budget; the header spells out the actual transient
// count, which is draws × the number of distinct sizes in rows.
func FormatSpiceMC(rows []SpiceMCRow, samples int) string {
	distinct := map[int]bool{}
	for _, r := range rows {
		distinct[r.N] = true
	}
	nsizes := len(distinct)
	if nsizes == 0 {
		nsizes = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "SPICE-in-the-loop Monte-Carlo tdp distributions (%d draws × %d size(s) = %d read transients per option)\n",
		samples, nsizes, samples*nsizes)
	fmt.Fprintf(&b, "%-8s %8s %10s %10s %10s %10s %10s\n",
		"option", "array", "mean", "std", "p05", "median", "p95")
	for _, r := range rows {
		s := r.Summary
		fmt.Fprintf(&b, "%-8v 10x%-5d %+9.3f%% %9.3f%% %+9.3f%% %+9.3f%% %+9.3f%%\n",
			r.Option, r.N, s.Mean, s.Std, s.P05, s.Median, s.P95)
	}
	return b.String()
}

// SpiceMCReport converts the rows for csv/md output.
func SpiceMCReport(rows []SpiceMCRow) *report.Table {
	t := report.New("SPICE-in-the-loop Monte-Carlo tdp distributions",
		"option", "wordlines", "samples", "rejected", "mean_pct", "std_pct", "p05_pct", "median_pct", "p95_pct")
	for _, r := range rows {
		s := r.Summary
		_ = t.Appendf(r.Option.String(), r.N, s.N, r.Rejected, s.Mean, s.Std, s.P05, s.Median, s.P95)
	}
	return t
}
