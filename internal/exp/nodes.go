// The cross-node comparison: the paper's Table IV σ study repeated on
// every process of the environment's node set (N10 plus the derived N7-
// and N5-class presets) and laid side by side. Not a table of the paper —
// the paper pins one imec-N10-flavoured node — but the study its
// conclusion asks for: how the per-option variability ranking and the
// absolute σ budgets move as the metal pitch shrinks faster than the
// litho control tightens.
package exp

import (
	"context"
	"fmt"
	"strings"
	"unicode/utf8"

	"mpsram/internal/litho"
	"mpsram/internal/mc"
	"mpsram/internal/report"
	"mpsram/internal/tech"
)

func init() {
	Register(Workload{
		Name: "nodes", Summary: "cross-node tdp sigma comparison across the process registry",
		Order:  100,
		Hints:  Hints{Cost: 3},
		Params: []ParamSpec{{Name: "n", Kind: IntParam, Default: NodesN, Help: "array word-line count"}},
		Run: func(ctx context.Context, e Env, p Params) (*Result, error) {
			n := p.Int("n")
			rows, err := NodesAt(e, n)
			if err != nil {
				return nil, err
			}
			return &Result{Data: rows, Tables: []*report.Table{NodesReport(rows, n)}, Text: FormatNodes(rows, n)}, nil
		},
	})
}

// NodesN is the array size of the cross-node comparison (the paper's
// Table IV size).
const NodesN = 64

// NodesRow is one (process, option/overlay) cell of the cross-node σ
// comparison.
type NodesRow struct {
	Process string
	Option  litho.Option
	OL      float64 // LE3 overlay 3σ budget (0 for SADP/EUV)
	Sigma   float64 // std of tdp in percentage points
	Mean    float64
}

// processes returns the environment's node set, defaulting to the single
// primary process when no set is configured.
func (e Env) processes() []tech.Process {
	if len(e.Procs) > 0 {
		return e.Procs
	}
	return []tech.Process{e.Proc}
}

// processCases derives the analytical model per node — each process has
// its own nominal parasitics and therefore its own formula parameters.
func (e Env) processCases() ([]mc.ProcessCase, error) {
	procs := e.processes()
	cases := make([]mc.ProcessCase, 0, len(procs))
	for _, p := range procs {
		env := e
		env.Proc = p
		m, err := env.Model()
		if err != nil {
			return nil, fmt.Errorf("model %s: %w", p.Name, err)
		}
		cases = append(cases, mc.ProcessCase{Proc: p, Model: m})
	}
	return cases, nil
}

// Nodes runs the Table-IV-style σ comparison across the environment's
// node set at the paper's n = 64: per node, the tdp σ for LE3 at every
// overlay budget plus SADP and EUV. Every node consumes its own
// deterministic sample stream (same (Seed, trial) deviates, scaled by the
// node's variation budgets), so the cross-node deltas are attributable to
// the process.
func Nodes(e Env) ([]NodesRow, error) {
	return NodesAt(e, NodesN)
}

// NodesAt is Nodes at an explicit array size.
func NodesAt(e Env, n int) ([]NodesRow, error) {
	cases, err := e.processCases()
	if err != nil {
		return nil, fmt.Errorf("nodes: %w", err)
	}
	surfs, err := mc.SigmaSurfaceAcross(e.ctx(), cases, e.Cap, []int{n}, PaperOLBudgets, e.MC)
	if err != nil {
		return nil, fmt.Errorf("nodes: %w", err)
	}
	var rows []NodesRow
	for _, s := range surfs {
		for _, r := range s.Rows {
			rows = append(rows, NodesRow{
				Process: s.Process,
				Option:  r.Option,
				OL:      r.OL,
				Sigma:   r.Cells[0].Sigma,
				Mean:    r.Cells[0].Mean,
			})
		}
	}
	return rows, nil
}

// nodesRowName renders the option/overlay label of a row.
func nodesRowName(o litho.Option, ol float64) string {
	if o == litho.LE3 {
		return fmt.Sprintf("%v %.0fnm OL", o, ol*1e9)
	}
	return o.String()
}

// FormatNodes renders the comparison with one σ column per node — the
// Table IV layout with the process as the horizontal axis.
func FormatNodes(rows []NodesRow, n int) string {
	var (
		nodes []string
		seen  = map[string]bool{}
		confs []string
		cseen = map[string]bool{}
		cell  = map[string]float64{}
	)
	for _, r := range rows {
		if !seen[r.Process] {
			seen[r.Process] = true
			nodes = append(nodes, r.Process)
		}
		c := nodesRowName(r.Option, r.OL)
		if !cseen[c] {
			cseen[c] = true
			confs = append(confs, c)
		}
		cell[r.Process+"/"+c] = r.Sigma
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Cross-node comparison: tdp σ [pp] per patterning option (array 10x%d)\n", n)
	fmt.Fprintf(&b, "%-24s", "patterning option")
	for _, nd := range nodes {
		h := "σ@" + nd
		fmt.Fprintf(&b, " %*s", 11+len(h)-utf8.RuneCountInString(h), h)
	}
	b.WriteString("\n")
	for _, c := range confs {
		fmt.Fprintf(&b, "%-24s", c)
		for _, nd := range nodes {
			fmt.Fprintf(&b, " %11.3f", cell[nd+"/"+c])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// NodesReport converts the rows for csv/md output (long format: one
// record per process/option/overlay cell).
func NodesReport(rows []NodesRow, n int) *report.Table {
	t := report.New("Cross-node tdp sigma comparison",
		"process", "option", "ol_nm", "wordlines", "sigma_pp", "mean_pp")
	for _, r := range rows {
		ol := ""
		if r.Option == litho.LE3 {
			ol = fmt.Sprintf("%.0f", r.OL*1e9)
		}
		_ = t.Appendf(r.Process, r.Option.String(), ol, n, r.Sigma, r.Mean)
	}
	return t
}

// Table4Surfaces extends Table4Surface across the node set: one extended
// Table IV per process, each from its own shared-sample-stream surface.
func Table4Surfaces(e Env) ([]mc.ProcessSurface, error) {
	cases, err := e.processCases()
	if err != nil {
		return nil, fmt.Errorf("table4 surfaces: %w", err)
	}
	surfs, err := mc.SigmaSurfaceAcross(e.ctx(), cases, e.Cap, PaperSizes, PaperOLBudgets, e.MC)
	if err != nil {
		return nil, fmt.Errorf("table4 surfaces: %w", err)
	}
	return surfs, nil
}

// FormatTable4Surfaces renders the per-process surfaces back to back.
func FormatTable4Surfaces(surfs []mc.ProcessSurface) string {
	var b strings.Builder
	for i, s := range surfs {
		if i > 0 {
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "[%s]\n%s", s.Process, FormatTable4Surface(s.Rows))
	}
	return b.String()
}

// Table4SurfacesReport converts the per-process surfaces for csv/md
// output (long format with a leading process column).
func Table4SurfacesReport(surfs []mc.ProcessSurface) *report.Table {
	t := report.New("Table IV (extended) per process: tdp sigma across array sizes",
		"process", "option", "ol_nm", "wordlines", "sigma_pp", "mean_pp")
	for _, s := range surfs {
		for _, r := range s.Rows {
			ol := ""
			if r.Option == litho.LE3 {
				ol = fmt.Sprintf("%.0f", r.OL*1e9)
			}
			for _, c := range r.Cells {
				_ = t.Appendf(s.Process, r.Option.String(), ol, c.N, c.Sigma, c.Mean)
			}
		}
	}
	return t
}
