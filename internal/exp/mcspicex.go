// The full-DOE SPICE-MC surface: SPICE-measured versus analytic tdp σ
// across array sizes and patterning options — the statistical analogue of
// table4x with every SPICE sample costing a real read transient. Both
// paths consume the same deterministic (Seed, trial) sample stream, so
// the per-cell σ delta isolates the measurement method (full transient
// versus closed-form formula), not the sampling.
//
// This file is also the registry's proof of surface: the workload below
// registers itself with one init() block and needs no edits anywhere else
// — not the CLI dispatch, not the usage text, not the smoke harness.
package exp

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"mpsram/internal/litho"
	"mpsram/internal/mc"
	"mpsram/internal/report"
	"mpsram/internal/sram"
	"mpsram/internal/stats"
)

func init() {
	Register(Workload{
		Name: "mcspicex", Summary: "SPICE-measured vs analytic tdp sigma across the array DOE (full-DOE SPICE-MC)",
		Order: 115,
		Params: []ParamSpec{
			{Name: "sizes", Kind: StringParam, Default: "16,64,256,1024",
				Help: "comma-separated array word-line counts"},
			{Name: "cv", Kind: BoolParam, Default: false,
				Help: "control-variate estimator: one paired SPICE+formula stream instead of two parallel streams"},
			{Name: "adaptive", Kind: BoolParam, Default: false,
				Help: "adaptive step-doubling transient integrator (accuracy-gated, ~7× fewer steps)"},
		},
		// Transient budget: Samples × sizes per option. 120 draws keeps
		// the full DOE in SPICE-MC territory (~minutes, not hours); the
		// smoke override trims the DOE to the two smallest arrays. With
		// -cv the paired estimator's variance reduction makes ~16 draws
		// comparable.
		Hints: Hints{Samples: 120, CVSamples: 16, Smoke: Params{"sizes": "8,16"}, Cost: 4000},
		Run: func(ctx context.Context, e Env, p Params) (*Result, error) {
			sizes, err := ParseSizes(p.String("sizes"))
			if err != nil {
				return nil, err
			}
			if p.Bool("adaptive") {
				e.Sim.Adaptive = true
			}
			if p.Bool("cv") {
				rows, err := SpiceMCCV(e, sizes)
				if err != nil {
					return nil, err
				}
				return &Result{
					Data:   rows,
					Tables: []*report.Table{SpiceMCCVReport(rows)},
					Text:   FormatSpiceMCCV(rows, e.MC.Samples),
				}, nil
			}
			rows, err := MCSpiceX(e, sizes)
			if err != nil {
				return nil, err
			}
			return &Result{
				Data:   rows,
				Tables: []*report.Table{MCSpiceXReport(rows)},
				Text:   FormatMCSpiceX(rows, e.MC.Samples),
			}, nil
		},
	})
}

// ParseSizes parses a comma-separated word-line count list.
func ParseSizes(s string) ([]int, error) {
	var sizes []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("invalid array size %q (want comma-separated positive integers)", f)
		}
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("no array sizes in %q", s)
	}
	return sizes, nil
}

// MCSpiceXRow is one (option, size) cell: the simulated and the analytic
// tdp distribution over the same sample stream.
type MCSpiceXRow struct {
	Option   litho.Option
	N        int
	Spice    stats.Summary // tdp measured by full read transients
	Analytic stats.Summary // tdp from the closed-form formula
	Rejected int           // rejected draws on the SPICE path
}

// SigmaDeltaPct is the relative σ deviation of the SPICE measurement from
// the analytic prediction, in percent.
func (r MCSpiceXRow) SigmaDeltaPct() float64 {
	if r.Analytic.Std == 0 {
		return 0
	}
	return (r.Spice.Std/r.Analytic.Std - 1) * 100
}

// MCSpiceX runs the paired SPICE/analytic Monte-Carlo across the DOE: per
// option, one SPICE-in-the-loop stream (full read transient per draw and
// size, nominal transients shared across options) and one analytic stream
// with the same (Seed, trial) deviates, summarized side by side. Results
// are bit-identical for any worker count on both paths.
func MCSpiceX(e Env, sizes []int) ([]MCSpiceXRow, error) {
	if e.Cap == nil {
		return nil, fmt.Errorf("mcspicex: nil capacitance model")
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("mcspicex: no array sizes requested")
	}
	m, err := e.Model()
	if err != nil {
		return nil, fmt.Errorf("mcspicex: %w", err)
	}
	// Nominal geometry is option-independent: one extraction and one
	// nominal transient per size serve every option's denominators.
	seed := sram.NewColumnBuilder(e.Proc, e.Cap)
	nom, err := seed.Nominal()
	if err != nil {
		return nil, fmt.Errorf("mcspicex: nominal extraction: %w", err)
	}
	nomTd, err := seed.NominalTds(sizes, e.Build, e.Sim)
	if err != nil {
		return nil, fmt.Errorf("mcspicex: %w", err)
	}
	var rows []MCSpiceXRow
	for _, o := range litho.Options {
		sp, err := mc.SpiceTdpAcrossSizesShared(e.ctx(), e.Proc, o, e.Cap, sizes, nom, nomTd, e.Build, e.Sim, e.MC)
		if err != nil {
			return nil, fmt.Errorf("mcspicex %v (spice): %w", o, err)
		}
		an, err := mc.TdpAcrossSizes(e.ctx(), e.Proc, o, m, e.Cap, sizes, e.MC)
		if err != nil {
			return nil, fmt.Errorf("mcspicex %v (analytic): %w", o, err)
		}
		for j, n := range sizes {
			rows = append(rows, MCSpiceXRow{
				Option:   o,
				N:        n,
				Spice:    sp.Summary(j),
				Analytic: an.Summary(j),
				Rejected: sp.Rejected,
			})
		}
	}
	return rows, nil
}

// FormatMCSpiceX renders the comparison paper-style. samples is the
// configured draw budget per option.
func FormatMCSpiceX(rows []MCSpiceXRow, samples int) string {
	distinct := map[int]bool{}
	for _, r := range rows {
		distinct[r.N] = true
	}
	nsizes := len(distinct)
	if nsizes == 0 {
		nsizes = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "SPICE-measured vs analytic tdp σ across the array DOE (%d draws × %d size(s) = %d read transients per option)\n",
		samples, nsizes, samples*nsizes)
	fmt.Fprintf(&b, "%-8s %8s %12s %12s %10s %12s %12s\n",
		"option", "array", "σ_spice", "σ_formula", "Δσ", "mean_spice", "mean_form")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8v 10x%-5d %11.3f%% %11.3f%% %+9.2f%% %+11.3f%% %+11.3f%%\n",
			r.Option, r.N, r.Spice.Std, r.Analytic.Std, r.SigmaDeltaPct(),
			r.Spice.Mean, r.Analytic.Mean)
	}
	return b.String()
}

// MCSpiceXReport converts the rows for csv/md/json output.
func MCSpiceXReport(rows []MCSpiceXRow) *report.Table {
	t := report.New("SPICE-measured vs analytic tdp sigma across the array DOE",
		"option", "wordlines", "samples", "rejected",
		"spice_sigma_pct", "ana_sigma_pct", "sigma_delta_pct",
		"spice_mean_pct", "ana_mean_pct")
	for _, r := range rows {
		_ = t.Appendf(r.Option.String(), r.N, r.Spice.N, r.Rejected,
			r.Spice.Std, r.Analytic.Std, r.SigmaDeltaPct(),
			r.Spice.Mean, r.Analytic.Mean)
	}
	return t
}
