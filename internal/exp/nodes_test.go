package exp

import (
	"strings"
	"testing"

	"mpsram/internal/tech"
)

// nodesEnv trims the budget for the cross-node tests (3 nodes × 6
// configurations per run).
func nodesEnv() Env {
	e := testEnv()
	e.MC.Samples = 1000
	return e
}

// TestNodesCoversRegistry checks the row layout: every registry node
// contributes the full Table IV configuration set, in registry order.
func TestNodesCoversRegistry(t *testing.T) {
	rows, err := Nodes(nodesEnv())
	if err != nil {
		t.Fatal(err)
	}
	wantConfigs := len(PaperOLBudgets) + 2 // LE3 per budget + SADP + EUV
	names := tech.Default().Names()
	if len(rows) != len(names)*wantConfigs {
		t.Fatalf("%d rows, want %d", len(rows), len(names)*wantConfigs)
	}
	for i, r := range rows {
		if want := names[i/wantConfigs]; r.Process != want {
			t.Fatalf("row %d: process %s, want %s", i, r.Process, want)
		}
		if r.Sigma <= 0 {
			t.Fatalf("row %d (%s %v): non-positive σ %g", i, r.Process, r.Option, r.Sigma)
		}
	}
}

// TestNodesLE3WorsensAtTighterNodes gates the study's headline physics:
// the LE3 overlay-driven σ must grow monotonically from N10 to N5 at
// every overlay budget — the pitch shrinks faster than the litho control
// tightens, so the same ±3σ overlay eats a larger fraction of the
// spacing — while self-aligned SADP stays in its band (no overlay term).
func TestNodesLE3WorsensAtTighterNodes(t *testing.T) {
	rows, err := Nodes(nodesEnv())
	if err != nil {
		t.Fatal(err)
	}
	sigma := map[string]float64{}
	for _, r := range rows {
		sigma[r.Process+"/"+nodesRowName(r.Option, r.OL)] = r.Sigma
	}
	order := []string{"N10", "N7", "N5"}
	for _, ol := range []string{"3", "5", "7", "8"} {
		conf := "LELELE " + ol + "nm OL"
		for i := 1; i < len(order); i++ {
			lo, hi := sigma[order[i-1]+"/"+conf], sigma[order[i]+"/"+conf]
			if hi <= lo {
				t.Errorf("%s: σ %g at %s not above %g at %s", conf, hi, order[i], lo, order[i-1])
			}
		}
	}
	for _, nd := range order {
		if s := sigma[nd+"/SADP"]; s > sigma[nd+"/LELELE 8nm OL"] {
			t.Errorf("%s: SADP σ %g above LE3@8nm", nd, s)
		}
	}
}

// TestNodesDeterministicAcrossWorkers extends the bit-identity contract
// across the process axis: the cross-node table must be exactly equal at
// 1 and 8 workers.
func TestNodesDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []NodesRow {
		e := nodesEnv()
		e.MC.Workers = workers
		rows, err := Nodes(e)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	base := run(1)
	for _, workers := range []int{2, 8} {
		rows := run(workers)
		if len(rows) != len(base) {
			t.Fatalf("workers=%d: %d rows vs %d", workers, len(rows), len(base))
		}
		for i := range base {
			if rows[i] != base[i] {
				t.Fatalf("workers=%d row %d: %+v != %+v", workers, i, rows[i], base[i])
			}
		}
	}
	if FormatNodes(base, NodesN) == "" {
		t.Fatal("empty rendering")
	}
}

// TestTable4SurfacesPrimaryMatchesSingleNodePath pins the view contract:
// the node set's N10 surface must be bit-identical to the single-node
// Table4Surface — the per-process path is a sweep over the same streams,
// not a reimplementation.
func TestTable4SurfacesPrimaryMatchesSingleNodePath(t *testing.T) {
	if testing.Short() {
		t.Skip("full-DOE surfaces for three nodes")
	}
	e := nodesEnv()
	surfs, err := Table4Surfaces(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(surfs) != 3 || surfs[0].Process != "N10" {
		t.Fatalf("surfaces %d, first %q", len(surfs), surfs[0].Process)
	}
	single, err := Table4Surface(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(single) != len(surfs[0].Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(single), len(surfs[0].Rows))
	}
	for i := range single {
		a, b := single[i], surfs[0].Rows[i]
		if a.Option != b.Option || a.OL != b.OL || len(a.Cells) != len(b.Cells) {
			t.Fatalf("row %d: shape mismatch", i)
		}
		for j := range a.Cells {
			if a.Cells[j] != b.Cells[j] {
				t.Fatalf("row %d cell %d: %+v != %+v", i, j, a.Cells[j], b.Cells[j])
			}
		}
	}
	if !strings.Contains(FormatTable4Surfaces(surfs), "[N5]") {
		t.Fatal("per-process rendering lacks node headers")
	}
	if got := len(Table4SurfacesReport(surfs).Rows); got != 3*6*len(PaperSizes) {
		t.Fatalf("report rows %d", got)
	}
}

// TestNodesEmptyProcSetFallsBack covers the single-process default.
func TestNodesEmptyProcSetFallsBack(t *testing.T) {
	e := nodesEnv()
	e.Procs = nil
	rows, err := Nodes(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Process != "N10" {
			t.Fatalf("unexpected process %s", r.Process)
		}
	}
	if len(rows) != len(PaperOLBudgets)+2 {
		t.Fatalf("%d rows", len(rows))
	}
}

// TestNodesRejectsInvalidProcess checks that a broken preset in the node
// set fails loudly before any sampling.
func TestNodesRejectsInvalidProcess(t *testing.T) {
	e := nodesEnv()
	bad := tech.N10()
	bad.M1.Width = -1
	e.Procs = []tech.Process{bad}
	if _, err := Nodes(e); err == nil {
		t.Fatal("invalid process must fail the nodes run")
	}
}

// TestNodesAndSurfaceReports covers the csv/md bridge of the cross-node
// workloads at a trimmed budget (short-mode cheap).
func TestNodesAndSurfaceReports(t *testing.T) {
	e := nodesEnv()
	e.MC.Samples = 200
	rows, err := NodesAt(e, 16)
	if err != nil {
		t.Fatal(err)
	}
	rt := NodesReport(rows, 16)
	if len(rt.Rows) != len(rows) {
		t.Fatalf("report rows %d, want %d", len(rt.Rows), len(rows))
	}
	surfs, err := Table4Surfaces(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(surfs) != 3 {
		t.Fatalf("%d surfaces", len(surfs))
	}
	txt := FormatTable4Surfaces(surfs)
	for _, nd := range tech.Default().Names() {
		if !strings.Contains(txt, "["+nd+"]") {
			t.Fatalf("rendering lacks %s header", nd)
		}
	}
	if got := len(Table4SurfacesReport(surfs).Rows); got != 3*6*len(PaperSizes) {
		t.Fatalf("surface report rows %d", got)
	}
}
