// Registry entries for the paper's experiments and the extension
// studies. Each init() block below turns one existing driver into a
// Workload; the drivers themselves (Table1, Fig4, SpiceTables, …) keep
// their typed signatures, so programmatic users lose nothing. Workloads
// with their own file (nodes, mcspice, mcspicex) register there.
package exp

import (
	"context"
	"fmt"
	"strings"

	"mpsram/internal/analytic"
	"mpsram/internal/litho"
	"mpsram/internal/report"
	"mpsram/internal/sram"
	"mpsram/internal/tech"
)

// paramN is the shared array-size parameter spec.
func paramN(def int, help string) ParamSpec {
	return ParamSpec{Name: "n", Kind: IntParam, Default: def, Help: help}
}

func init() {
	Register(Workload{
		Name: "table1", Summary: "worst-case variability per patterning option",
		Order: 10, InAll: true,
		Run: func(ctx context.Context, e Env, p Params) (*Result, error) {
			rows, err := Table1(e)
			if err != nil {
				return nil, err
			}
			return &Result{Data: rows, Tables: []*report.Table{Table1Report(rows)}, Text: FormatTable1(rows)}, nil
		},
	})
	Register(Workload{
		Name: "fig2", Summary: "worst-case layout distortion",
		Order: 20, InAll: true,
		Run: func(ctx context.Context, e Env, p Params) (*Result, error) {
			entries, err := Fig2(e)
			if err != nil {
				return nil, err
			}
			return &Result{Data: entries, Tables: []*report.Table{Fig2Report(entries)}, Text: FormatFig2(entries)}, nil
		},
	})
	Register(Workload{
		Name: "fig3", Summary: "array DOE overview",
		Order: 30, InAll: true,
		Run: func(ctx context.Context, e Env, p Params) (*Result, error) {
			rows, err := Fig3(e)
			if err != nil {
				return nil, err
			}
			return &Result{Data: rows, Tables: []*report.Table{Fig3Report(rows)}, Text: FormatFig3(rows)}, nil
		},
	})
	Register(Workload{
		Name: "fig4", Summary: "worst-case td / tdp vs array size (SPICE)",
		Order: 40,
		Run: func(ctx context.Context, e Env, p Params) (*Result, error) {
			pts, err := Fig4(e)
			if err != nil {
				return nil, err
			}
			return &Result{Data: pts, Tables: []*report.Table{Fig4Report(pts)}, Text: FormatFig4(pts)}, nil
		},
	})
	Register(Workload{
		Name: "table2", Summary: "formula vs simulation tdnom",
		Order: 50,
		Run: func(ctx context.Context, e Env, p Params) (*Result, error) {
			rows, err := Table2(e)
			if err != nil {
				return nil, err
			}
			return &Result{Data: rows, Tables: []*report.Table{Table2Report(rows)}, Text: FormatTable2(rows)}, nil
		},
	})
	Register(Workload{
		Name: "table3", Summary: "formula vs simulation tdp",
		Order: 60,
		Run: func(ctx context.Context, e Env, p Params) (*Result, error) {
			rows, err := Table3(e)
			if err != nil {
				return nil, err
			}
			return &Result{Data: rows, Tables: []*report.Table{Table3Report(rows)}, Text: FormatTable3(rows)}, nil
		},
	})
	Register(Workload{
		Name: "spicetables", Summary: "fig4 + table2 + table3 from one shared deduplicated SPICE sweep",
		Order: 65, InAll: true,
		Run: func(ctx context.Context, e Env, p Params) (*Result, error) {
			res, err := SpiceTables(e)
			if err != nil {
				return nil, err
			}
			return &Result{
				Data:   res,
				Tables: []*report.Table{Fig4Report(res.Fig4), Table2Report(res.Table2), Table3Report(res.Table3)},
				Text:   FormatFig4(res.Fig4) + "\n" + FormatTable2(res.Table2) + "\n" + FormatTable3(res.Table3),
			}, nil
		},
	})
	Register(Workload{
		Name: "fig5", Summary: "Monte-Carlo tdp distribution",
		Order: 70, InAll: true,
		Hints: Hints{Cost: 1},
		Params: []ParamSpec{
			paramN(64, "array word-line count"),
			{Name: "ol", Kind: FloatParam, Default: 0.0,
				Help: "LE3 overlay 3-sigma budget in nm (0 = the process budget)"},
		},
		Run: func(ctx context.Context, e Env, p Params) (*Result, error) {
			ol := p.Float("ol") * 1e-9
			if ol == 0 {
				ol = e.Proc.Var.OL3Sigma
			}
			res, err := Fig5(e, ol, p.Int("n"))
			if err != nil {
				return nil, err
			}
			return &Result{Data: res, Tables: []*report.Table{Fig5Report(res)}, Text: FormatFig5(res)}, nil
		},
	})
	Register(Workload{
		Name: "table4", Summary: "tdp sigma per option and overlay budget",
		Order: 80, InAll: true,
		Hints: Hints{Cost: 1},
		Run: func(ctx context.Context, e Env, p Params) (*Result, error) {
			rows, err := Table4(e)
			if err != nil {
				return nil, err
			}
			return &Result{Data: rows, Tables: []*report.Table{Table4Report(rows)}, Text: FormatTable4(rows)}, nil
		},
	})
	Register(Workload{
		Name: "table4x", Summary: "extended Table IV: tdp sigma across all DOE sizes (shared stream)",
		Order: 85,
		Hints: Hints{Cost: 1},
		Run: func(ctx context.Context, e Env, p Params) (*Result, error) {
			rows, err := Table4Surface(e)
			if err != nil {
				return nil, err
			}
			return &Result{Data: rows, Tables: []*report.Table{Table4SurfaceReport(rows)}, Text: FormatTable4Surface(rows)}, nil
		},
	})
	Register(Workload{
		Name: "table4xp", Summary: "per-process extended Table IV across the node set",
		Order: 90,
		Hints: Hints{Cost: 3},
		Run: func(ctx context.Context, e Env, p Params) (*Result, error) {
			surfs, err := Table4Surfaces(e)
			if err != nil {
				return nil, err
			}
			return &Result{Data: surfs, Tables: []*report.Table{Table4SurfacesReport(surfs)}, Text: FormatTable4Surfaces(surfs)}, nil
		},
	})
	Register(Workload{
		Name: "snm", Summary: "static noise margins (hold/read butterfly)",
		Order: 120,
		Run: func(ctx context.Context, e Env, p Params) (*Result, error) {
			res, err := sram.StaticNoiseMargins(e.Proc)
			if err != nil {
				return nil, err
			}
			t := report.New("Static noise margins", "process", "vdd_v", "hold_v", "read_v")
			_ = t.Appendf(e.Proc.Name, e.Proc.FEOL.Vdd, res.Hold, res.Read)
			text := fmt.Sprintf("static noise margins (%s, %.1f V):\n  hold: %.3f V\n  read: %.3f V\n",
				e.Proc.Name, e.Proc.FEOL.Vdd, res.Hold, res.Read)
			return &Result{Data: res, Tables: []*report.Table{t}, Text: text}, nil
		},
	})
	Register(Workload{
		Name: "sens", Summary: "first-order tdp variance propagation per option",
		Order:  125,
		Params: []ParamSpec{paramN(64, "array word-line count")},
		Run: func(ctx context.Context, e Env, p Params) (*Result, error) {
			rows, err := Sens(e, p.Int("n"))
			if err != nil {
				return nil, err
			}
			return &Result{Data: rows, Tables: SensReports(rows), Text: FormatSens(rows, p.Int("n"))}, nil
		},
	})
	Register(Workload{
		Name: "ext", Summary: "extension studies: LE2 option, thickness source, write penalty",
		Order: 130,
		Params: []ParamSpec{
			paramN(64, "write-penalty array word-line count"),
			{Name: "thk", Kind: FloatParam, Default: 0.0,
				Help: "enable the thickness extension: 3-sigma in nm"},
		},
		Run: func(ctx context.Context, e Env, p Params) (*Result, error) {
			thk := p.Float("thk") * 1e-9
			rows, err := ExtTable1(e, thk)
			if err != nil {
				return nil, err
			}
			wrows, err := WritePenalty(e, p.Int("n"))
			if err != nil {
				return nil, err
			}
			return &Result{
				Data:   &ExtResults{Table1: rows, Write: wrows},
				Tables: []*report.Table{ExtTable1Report(rows, thk), WritePenaltyReport(wrows)},
				Text:   FormatExtTable1(rows, thk) + FormatWritePenalty(wrows),
			}, nil
		},
	})
	Register(Workload{
		Name: "processes", Summary: "list the technology registry (valid -process values)",
		Order: 140,
		Run: func(ctx context.Context, e Env, p Params) (*Result, error) {
			procs := tech.Default().Processes()
			return &Result{Data: procs, Tables: []*report.Table{ProcessesReport(procs)}, Text: FormatProcesses(procs)}, nil
		},
	})
	Register(Workload{
		Name: "workloads", Summary: "list the workload registry (this listing)",
		Order: 145,
		Run: func(ctx context.Context, e Env, p Params) (*Result, error) {
			ws := Workloads()
			return &Result{Data: ws, Tables: []*report.Table{WorkloadsReport(ws)}, Text: FormatWorkloads(ws)}, nil
		},
	})
	Register(Workload{
		Name: "all", Summary: "every experiment in paper order (a plan over the registry)",
		Order: 150,
		Run: func(ctx context.Context, e Env, p Params) (*Result, error) {
			return RunAll(ctx, e)
		},
	})
}

// RunAll executes the "all" plan: every registered workload marked InAll,
// in registry order, each with its default parameters, concatenated into
// one composite Result. It is how the paper-order report is produced —
// registering a workload with InAll adds it to the plan with no further
// wiring.
func RunAll(ctx context.Context, e Env) (*Result, error) {
	var (
		texts  []string
		tables []*report.Table
		data   = map[string]*Result{}
	)
	for _, w := range Workloads() {
		if !w.InAll {
			continue
		}
		res, err := Run(ctx, e, w.Name, nil)
		if err != nil {
			return nil, err
		}
		texts = append(texts, res.Text)
		tables = append(tables, res.Tables...)
		data[w.Name] = res
	}
	return &Result{Data: data, Tables: tables, Text: strings.Join(texts, "\n") + "\n"}, nil
}

// Fig2Report converts the distortion entries for csv/md/json output. The
// ASCII section is a single-line strip, so it travels fine as a cell.
func Fig2Report(entries []Fig2Entry) *report.Table {
	t := report.New("Fig. 2: worst-case metal1 layout distortion",
		"option", "corner", "section")
	for _, en := range entries {
		_ = t.Appendf(en.Option.String(), en.Describe, en.ASCII)
	}
	return t
}

// SensRow is one option's first-order variance propagation.
type SensRow struct {
	Option litho.Option
	Prop   analytic.Propagation
}

// Sens runs the first-order tdp variance propagation for every option
// (including the LE2 extension) at array size n.
func Sens(e Env, n int) ([]SensRow, error) {
	m, err := e.Model()
	if err != nil {
		return nil, err
	}
	var rows []SensRow
	for _, o := range litho.AllOptions {
		prop, err := analytic.PropagateTdp(e.Proc, o, m, e.Cap, n)
		if err != nil {
			return nil, fmt.Errorf("sens %v: %w", o, err)
		}
		rows = append(rows, SensRow{Option: o, Prop: prop})
	}
	return rows, nil
}

// FormatSens renders the propagation study.
func FormatSens(rows []SensRow, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "First-order tdp variance propagation (n=%d):\n", n)
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8v σ(tdp) ≈ %.3f pp\n", r.Option, r.Prop.SigmaPP)
		for _, s := range r.Prop.Sensitivities {
			fmt.Fprintf(&b, "    %-10s σ=%5.2fnm  Δtdp/σ = %+7.3f pp\n",
				s.Param, s.Sigma*1e9, s.DTdpDSigma)
		}
	}
	return b.String()
}

// SensReports converts the propagation study: the per-option totals and
// the per-parameter breakdown as two tables.
func SensReports(rows []SensRow) []*report.Table {
	tot := report.New("First-order tdp variance propagation: totals",
		"option", "sigma_tdp_pp")
	brk := report.New("First-order tdp variance propagation: sensitivities",
		"option", "param", "sigma_nm", "dtdp_dsigma_pp")
	for _, r := range rows {
		_ = tot.Appendf(r.Option.String(), r.Prop.SigmaPP)
		for _, s := range r.Prop.Sensitivities {
			_ = brk.Appendf(r.Option.String(), s.Param, s.Sigma*1e9, s.DTdpDSigma)
		}
	}
	return []*report.Table{tot, brk}
}

// ExtResults bundles the extension workload's two studies.
type ExtResults struct {
	Table1 []Table1Row
	Write  []WritePenaltyRow
}

// ExtTable1Report converts the all-options corner study for csv/md/json.
func ExtTable1Report(rows []Table1Row, thk3sigma float64) *report.Table {
	t := report.New("Extension: worst-case variability, all options",
		"option", "corner", "thk3sigma_nm", "dCbl_pct", "dRbl_pct", "dRvss_pct")
	for _, r := range rows {
		_ = t.Appendf(r.Option.String(), r.Corner, thk3sigma*1e9, r.CblPct, r.RblPct, r.RvssPct)
	}
	return t
}

// WritePenaltyReport converts the write-path extension for csv/md/json.
func WritePenaltyReport(rows []WritePenaltyRow) *report.Table {
	t := report.New("Extension: worst-case write-time penalty",
		"option", "wordlines", "tflip_nom_ps", "tflip_wc_ps", "penalty_pct")
	for _, r := range rows {
		_ = t.Appendf(r.Option.String(), r.N, r.TFlipNom*1e12, r.TFlipWorst*1e12, r.PenaltyPct)
	}
	return t
}

// FormatProcesses renders the technology registry as text.
func FormatProcesses(procs []tech.Process) string {
	var b strings.Builder
	b.WriteString("technology registry (-process values):\n")
	fmt.Fprintf(&b, "%-6s %10s %10s %10s %10s %12s\n",
		"name", "pitch", "width", "CD 3σ", "OL 3σ", "rho")
	for _, p := range procs {
		fmt.Fprintf(&b, "%-6s %8.1fnm %8.1fnm %8.2fnm %8.2fnm %9.2e Ωm\n",
			p.Name, p.M1.Pitch*1e9, p.M1.Width*1e9,
			p.Var.CD3Sigma*1e9, p.Var.OL3Sigma*1e9, p.M1.Rho)
	}
	return b.String()
}

// ProcessesReport converts the registry listing for csv/md/json output.
func ProcessesReport(procs []tech.Process) *report.Table {
	t := report.New("Technology registry",
		"name", "m1_pitch_nm", "m1_width_nm", "m1_thickness_nm",
		"cd3sigma_nm", "spacer3sigma_nm", "ol3sigma_nm", "rho_ohm_m")
	for _, p := range procs {
		_ = t.Appendf(p.Name, p.M1.Pitch*1e9, p.M1.Width*1e9, p.M1.Thickness*1e9,
			p.Var.CD3Sigma*1e9, p.Var.Spacer3Sigma*1e9, p.Var.OL3Sigma*1e9, p.M1.Rho)
	}
	return t
}

// FormatWorkloads renders the workload registry as text: the same
// name/summary listing the CLI usage embeds, plus each workload's
// parameter schema.
func FormatWorkloads(ws []Workload) string {
	var b strings.Builder
	b.WriteString("workload registry:\n")
	for _, w := range ws {
		fmt.Fprintf(&b, "  %-12s %s\n", w.Name, w.Summary)
		for _, ps := range w.Params {
			fmt.Fprintf(&b, "               -%s %v (default %v): %s\n", ps.Name, ps.Kind, ps.Default, ps.Help)
		}
	}
	return b.String()
}

// WorkloadsReport converts the registry listing for csv/md/json output —
// the machine-readable self-description of the experiment surface.
func WorkloadsReport(ws []Workload) *report.Table {
	t := report.New("Workload registry",
		"name", "summary", "params", "in_all", "samples_hint")
	for _, w := range ws {
		specs := make([]string, len(w.Params))
		for i, ps := range w.Params {
			specs[i] = fmt.Sprintf("%s:%v=%v", ps.Name, ps.Kind, ps.Default)
		}
		_ = t.Appendf(w.Name, w.Summary, strings.Join(specs, " "), w.InAll, w.Hints.Samples)
	}
	return t
}
