package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQ computes the exact sample quantile of values.
func exactQ(values []float64, p float64) float64 {
	v := append([]float64(nil), values...)
	sort.Float64s(v)
	return Quantile(v, p)
}

func TestP2SmallSampleExact(t *testing.T) {
	e := NewP2(0.5)
	if !math.IsNaN(e.Quantile()) {
		t.Fatal("empty sketch must report NaN")
	}
	vals := []float64{3, 1, 4, 1.5}
	for _, v := range vals {
		e.Add(v)
	}
	if got, want := e.Quantile(), exactQ(vals, 0.5); got != want {
		t.Fatalf("small-sample median %g, want exact %g", got, want)
	}
	if e.N() != len(vals) {
		t.Fatalf("N %d", e.N())
	}
}

func TestP2AccuracyAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 20000
	vals := make([]float64, n)
	med := NewP2(0.5)
	p95 := NewP2(0.95)
	for i := range vals {
		v := rng.NormFloat64()
		vals[i] = v
		med.Add(v)
		p95.Add(v)
	}
	for _, tc := range []struct {
		name string
		est  *P2
		p    float64
	}{
		{"median", &med, 0.5},
		{"p95", &p95, 0.95},
	} {
		got := tc.est.Quantile()
		want := exactQ(vals, tc.p)
		if d := math.Abs(got - want); d > 0.03 {
			t.Errorf("%s: P2 %.4f vs exact %.4f (|Δ| = %.4f)", tc.name, got, want, d)
		}
	}
}

func TestP2MergeAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 10240
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.NormFloat64()*2 + 1
	}
	// Blocks of 256 — the Monte-Carlo engine's aggregation shape.
	for _, p := range []float64{0.05, 0.5, 0.95} {
		merged := NewP2(p)
		for lo := 0; lo < n; lo += 256 {
			blk := NewP2(p)
			for _, v := range vals[lo : lo+256] {
				blk.Add(v)
			}
			merged.Merge(blk)
		}
		if merged.N() != n {
			t.Fatalf("p=%g: merged N %d, want %d", p, merged.N(), n)
		}
		got := merged.Quantile()
		want := exactQ(vals, p)
		// The block merge is approximate; the tolerance is a fraction of
		// the distribution's spread (σ = 2).
		if d := math.Abs(got - want); d > 0.25 {
			t.Errorf("p=%g: merged %.4f vs exact %.4f (|Δ| = %.4f)", p, got, want, d)
		}
	}
}

func TestP2MergeDeterministicAndOrderFixed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	blocks := make([][]float64, 8)
	for b := range blocks {
		blocks[b] = make([]float64, 100)
		for i := range blocks[b] {
			blocks[b][i] = rng.ExpFloat64()
		}
	}
	run := func() float64 {
		m := NewP2(0.5)
		for _, blk := range blocks {
			s := NewP2(0.5)
			for _, v := range blk {
				s.Add(v)
			}
			m.Merge(s)
		}
		return m.Quantile()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same block order must be bit-identical: %g vs %g", a, b)
	}
}

func TestP2MergeEdgeCases(t *testing.T) {
	a := NewP2(0.5)
	b := NewP2(0.5)
	for _, v := range []float64{1, 2, 3} {
		b.Add(v)
	}
	a.Merge(b) // empty ← small: adopts
	if a.N() != 3 || a.Quantile() != 2 {
		t.Fatalf("adopt merge: n=%d q=%g", a.N(), a.Quantile())
	}
	c := NewP2(0.5)
	c.Add(10)
	a.Merge(c) // 3+1 ≤ 5: exact re-add
	if a.N() != 4 {
		t.Fatalf("small merge n=%d", a.N())
	}
	if got, want := a.Quantile(), exactQ([]float64{1, 2, 3, 10}, 0.5); got != want {
		t.Fatalf("small merge quantile %g want %g", got, want)
	}
	empty := NewP2(0.5)
	a.Merge(empty) // no-op
	if a.N() != 4 {
		t.Fatal("empty merge must be a no-op")
	}
	// Merged sketches must keep accepting observations.
	big := NewP2(0.5)
	for i := 0; i < 300; i++ {
		big.Add(float64(i % 17))
	}
	a.Merge(big)
	for i := 0; i < 100; i++ {
		a.Add(float64(i % 13))
	}
	if a.N() != 4+300+100 {
		t.Fatalf("post-merge Add broken: n=%d", a.N())
	}
	if q := a.Quantile(); math.IsNaN(q) || q < 0 || q > 17 {
		t.Fatalf("post-merge quantile %g out of range", q)
	}
}

func TestP2PanicsOnBadInput(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("p=0", func() { NewP2(0) })
	mustPanic("p=1", func() { NewP2(1) })
	mustPanic("mismatched merge", func() {
		a, b := NewP2(0.5), NewP2(0.95)
		a.Merge(b)
	})
}
