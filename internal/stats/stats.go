// Package stats provides the descriptive statistics and histogramming used
// by the Monte-Carlo study: exact moments and quantiles over collected
// samples, streaming (Welford) moments for long runs, and the ASCII
// histogram rendering behind the Fig. 5 reproduction.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds descriptive statistics of a sample set.
type Summary struct {
	N        int
	Mean     float64
	Std      float64 // sample standard deviation (n−1)
	Min, Max float64
	Median   float64
	P05, P95 float64
	Skew     float64
}

// Summarize computes exact statistics over values (which it sorts in
// place). An empty input returns the zero Summary.
func Summarize(values []float64) Summary {
	n := len(values)
	if n == 0 {
		return Summary{}
	}
	sort.Float64s(values)
	var sum float64
	for _, v := range values {
		sum += v
	}
	mean := sum / float64(n)
	var m2, m3 float64
	for _, v := range values {
		d := v - mean
		m2 += d * d
		m3 += d * d * d
	}
	s := Summary{
		N:      n,
		Mean:   mean,
		Min:    values[0],
		Max:    values[n-1],
		Median: Quantile(values, 0.5),
		P05:    Quantile(values, 0.05),
		P95:    Quantile(values, 0.95),
	}
	if n > 1 {
		s.Std = math.Sqrt(m2 / float64(n-1))
		if s.Std > 0 {
			s.Skew = (m3 / float64(n)) / math.Pow(m2/float64(n), 1.5)
		}
	}
	return s
}

// Quantile returns the q-th quantile (0..1) of sorted values using linear
// interpolation between order statistics.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo < 0 {
		return sorted[0]
	}
	if hi >= n {
		return sorted[n-1]
	}
	f := pos - float64(lo)
	return sorted[lo]*(1-f) + sorted[hi]*f
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g p05=%.4g med=%.4g p95=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Min, s.P05, s.Median, s.P95, s.Max)
}

// Welford accumulates streaming mean/variance without storing samples.
type Welford struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds a value into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Merge combines another accumulator (parallel reduction).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n1, n2 := float64(w.n), float64(o.n)
	d := o.mean - w.mean
	tot := n1 + n2
	w.m2 += o.m2 + d*d*n1*n2/tot
	w.mean += d * n2 / tot
	w.n += o.n
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
}

// N returns the sample count.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Std returns the running sample standard deviation.
func (w *Welford) Std() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}

// Min returns the smallest value seen.
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest value seen.
func (w *Welford) Max() float64 { return w.max }

// Summary converts the streaming moments into a Summary. Order statistics
// (median, quantiles) and skew cannot be recovered from the accumulator
// and are reported as NaN; callers that need them must collect the raw
// values and use Summarize.
func (w *Welford) Summary() Summary {
	nan := math.NaN()
	return Summary{
		N:      w.n,
		Mean:   w.mean,
		Std:    w.Std(),
		Min:    w.min,
		Max:    w.max,
		Median: nan,
		P05:    nan,
		P95:    nan,
		Skew:   nan,
	}
}

// Histogram is a fixed-range, uniform-bin histogram.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	under  int
	over   int
	total  int
}

// NewHistogram builds a histogram over [lo, hi) with the given bin count.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins < 1 || hi <= lo {
		return nil, fmt.Errorf("stats: bad histogram spec [%g,%g)/%d", lo, hi, bins)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add bins a value (out-of-range values are tallied separately).
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.under++
	case x >= h.Hi:
		h.over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) { // guard fp edge
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of values added (including out-of-range).
func (h *Histogram) Total() int { return h.total }

// Outliers returns the under/over-range tallies.
func (h *Histogram) Outliers() (under, over int) { return h.under, h.over }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Render draws the histogram with unicode bars, maxWidth columns wide,
// one line per bin: "center | ###### count".
func (h *Histogram) Render(maxWidth int) string {
	if maxWidth < 1 {
		maxWidth = 40
	}
	peak := 0
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if peak > 0 {
			bar = c * maxWidth / peak
		}
		fmt.Fprintf(&b, "%+8.3f | %-*s %d\n", h.BinCenter(i), maxWidth, strings.Repeat("#", bar), c)
	}
	if h.under > 0 || h.over > 0 {
		fmt.Fprintf(&b, "(outliers: %d below, %d above)\n", h.under, h.over)
	}
	return b.String()
}
