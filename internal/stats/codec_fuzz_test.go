package stats

import (
	"bytes"
	"math/rand"
	"testing"
)

// The codec fuzz targets gate the shard/checkpoint bit-identity
// contract: for every accumulator, decode(encode(x)) followed by Merge
// must be bit-identical to Merge without the serialization round trip
// (and the encodings themselves must be stable). Comparisons run on the
// canonical byte form, which is NaN-safe where struct equality is not.

// FuzzWelfordCodec: random streams, arbitrary split; round-tripping
// either side through the codec must not perturb a single bit of the
// merged accumulator.
func FuzzWelfordCodec(f *testing.F) {
	f.Add(int64(1), uint8(0), uint16(100))
	f.Add(int64(2015), uint8(2), uint16(1))
	f.Add(int64(-7), uint8(3), uint16(4000))
	f.Fuzz(func(t *testing.T, seed int64, shape uint8, nRaw uint16) {
		n := int(nRaw) % 4000 // zero-observation accumulators included
		rng := rand.New(rand.NewSource(seed))
		vals := fuzzStream(rng, shape, n)
		split := 0
		if n > 0 {
			split = rng.Intn(n + 1)
		}
		var lo, hi Welford
		for i, v := range vals {
			if i < split {
				lo.Add(v)
			} else {
				hi.Add(v)
			}
		}
		// Round trip both sides.
		var lo2, hi2 Welford
		lob, _ := lo.MarshalBinary()
		hib, _ := hi.MarshalBinary()
		if err := lo2.UnmarshalBinary(lob); err != nil {
			t.Fatal(err)
		}
		if err := hi2.UnmarshalBinary(hib); err != nil {
			t.Fatal(err)
		}
		lo2b, _ := lo2.MarshalBinary()
		if !bytes.Equal(lob, lo2b) {
			t.Fatal("Welford re-encoding drifted")
		}
		direct := lo
		direct.Merge(hi)
		tripped := lo2
		tripped.Merge(hi2)
		db, _ := direct.MarshalBinary()
		tb, _ := tripped.MarshalBinary()
		if !bytes.Equal(db, tb) {
			t.Fatalf("merge after codec round trip is not bit-identical:\n direct  %x\n tripped %x", db, tb)
		}
	})
}

// FuzzP2Codec: the sketch's full marker state (including pre-formation
// raw values and desired positions) must survive the codec bit-exactly,
// and merging decoded sketches must match merging the originals.
func FuzzP2Codec(f *testing.F) {
	f.Add(int64(1), uint8(0), uint16(100), uint8(1))
	f.Add(int64(2015), uint8(1), uint16(3), uint8(0))
	f.Add(int64(-9), uint8(2), uint16(1000), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, shape uint8, nRaw uint16, pSel uint8) {
		n := int(nRaw) % 4000
		p := []float64{0.05, 0.5, 0.95}[int(pSel)%3]
		rng := rand.New(rand.NewSource(seed))
		vals := fuzzStream(rng, shape, n)
		split := 0
		if n > 0 {
			split = rng.Intn(n + 1)
		}
		lo, hi := NewP2(p), NewP2(p)
		for i, v := range vals {
			if i < split {
				lo.Add(v)
			} else {
				hi.Add(v)
			}
		}
		lob, _ := lo.MarshalBinary()
		hib, _ := hi.MarshalBinary()
		var lo2, hi2 P2
		if err := lo2.UnmarshalBinary(lob); err != nil {
			t.Fatal(err)
		}
		if err := hi2.UnmarshalBinary(hib); err != nil {
			t.Fatal(err)
		}
		lo2b, _ := lo2.MarshalBinary()
		if !bytes.Equal(lob, lo2b) {
			t.Fatal("P2 re-encoding drifted")
		}
		direct := lo
		direct.Merge(hi)
		tripped := lo2
		tripped.Merge(hi2)
		db, _ := direct.MarshalBinary()
		tb, _ := tripped.MarshalBinary()
		if !bytes.Equal(db, tb) {
			t.Fatalf("P2 merge after codec round trip is not bit-identical (p=%g n=%d split=%d)", p, n, split)
		}
		// Decoded sketches keep absorbing observations identically.
		direct.Add(1.25)
		tripped.Add(1.25)
		db2, _ := direct.MarshalBinary()
		tb2, _ := tripped.MarshalBinary()
		if !bytes.Equal(db2, tb2) {
			t.Fatal("P2 Add after codec round trip diverged")
		}
	})
}

// FuzzControlVariateCodec: paired moments (including the co-moment)
// survive the codec bit-exactly under split-anywhere Merge.
func FuzzControlVariateCodec(f *testing.F) {
	f.Add(int64(1), uint8(0), uint16(100))
	f.Add(int64(2015), uint8(1), uint16(2))
	f.Add(int64(33), uint8(3), uint16(256))
	f.Fuzz(func(t *testing.T, seed int64, shape uint8, nRaw uint16) {
		n := int(nRaw) % 4000
		rng := rand.New(rand.NewSource(seed))
		xs := fuzzStream(rng, shape, n)
		split := 0
		if n > 0 {
			split = rng.Intn(n + 1)
		}
		var lo, hi ControlVariate
		for i, x := range xs {
			y := 1.5*x - 2 + 0.25*rng.NormFloat64()
			if i < split {
				lo.Add(y, x)
			} else {
				hi.Add(y, x)
			}
		}
		lob, _ := lo.MarshalBinary()
		hib, _ := hi.MarshalBinary()
		var lo2, hi2 ControlVariate
		if err := lo2.UnmarshalBinary(lob); err != nil {
			t.Fatal(err)
		}
		if err := hi2.UnmarshalBinary(hib); err != nil {
			t.Fatal(err)
		}
		lo2b, _ := lo2.MarshalBinary()
		if !bytes.Equal(lob, lo2b) {
			t.Fatal("ControlVariate re-encoding drifted")
		}
		direct := lo
		direct.Merge(hi)
		tripped := lo2
		tripped.Merge(hi2)
		db, _ := direct.MarshalBinary()
		tb, _ := tripped.MarshalBinary()
		if !bytes.Equal(db, tb) {
			t.Fatalf("ControlVariate merge after codec round trip is not bit-identical (n=%d split=%d)", n, split)
		}
	})
}
