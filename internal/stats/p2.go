package stats

import (
	"fmt"
	"math"
	"sort"
)

// P2 is the Jain–Chlamtac P² streaming quantile estimator ("The P²
// algorithm for dynamic calculation of quantiles and histograms without
// storing observations", CACM 1985): five markers track the running
// minimum, the target quantile, the quantile's half-way neighbours and the
// running maximum, adjusted per observation with parabolic interpolation.
// Memory is O(1) regardless of the stream length, which is what lets the
// Monte-Carlo engine report approximate median/P95 when value collection
// is off.
//
// The zero P2 is not ready for use; construct with NewP2.
type P2 struct {
	p   float64    // target quantile in (0, 1)
	n   int        // observations folded in
	q   [5]float64 // marker heights; q[0..n-1] hold raw values while n < 5
	pos [5]float64 // marker positions (1-based cumulative counts)
	des [5]float64 // desired marker positions
	inc [5]float64 // per-observation desired-position increments
}

// NewP2 returns an estimator for the p-th quantile (0 < p < 1).
func NewP2(p float64) P2 {
	if !(p > 0 && p < 1) {
		panic(fmt.Sprintf("stats: P2 quantile %g out of (0,1)", p))
	}
	return P2{
		p:   p,
		des: [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5},
		inc: [5]float64{0, p / 2, p, (1 + p) / 2, 1},
	}
}

// P returns the target quantile.
func (e *P2) P() float64 { return e.p }

// N returns the number of observations folded in.
func (e *P2) N() int { return e.n }

// Add folds one observation into the sketch.
func (e *P2) Add(x float64) {
	if e.n < 5 {
		e.q[e.n] = x
		e.n++
		if e.n == 5 {
			sort.Float64s(e.q[:])
			for i := range e.pos {
				e.pos[i] = float64(i + 1)
			}
		}
		return
	}
	// Locate the cell and update the extreme markers.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	e.n++
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := range e.des {
		e.des[i] += e.inc[i]
	}
	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.des[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := math.Copysign(1, d)
			if q := e.parabolic(i, s); e.q[i-1] < q && q < e.q[i+1] {
				e.q[i] = q
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.pos[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for moving
// marker i by d (±1).
func (e *P2) parabolic(i int, d float64) float64 {
	num1 := (e.pos[i] - e.pos[i-1] + d) * (e.q[i+1] - e.q[i]) / (e.pos[i+1] - e.pos[i])
	num2 := (e.pos[i+1] - e.pos[i] - d) * (e.q[i] - e.q[i-1]) / (e.pos[i] - e.pos[i-1])
	return e.q[i] + d*(num1+num2)/(e.pos[i+1]-e.pos[i-1])
}

// linear is the fallback height prediction.
func (e *P2) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.q[i] + d*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// Quantile returns the current estimate: the centre marker once the sketch
// has formed, the exact sample quantile while fewer than five observations
// have been seen, and NaN for an empty sketch.
func (e *P2) Quantile() float64 {
	if e.n == 0 {
		return math.NaN()
	}
	if e.n < 5 {
		v := append([]float64(nil), e.q[:e.n]...)
		sort.Float64s(v)
		return Quantile(v, e.p)
	}
	return e.q[2]
}

// knots returns the sketch as a piecewise-linear empirical CDF: heights xs
// (non-decreasing) with cumulative fractions fs in [0, 1].
func (e *P2) knots() (xs, fs []float64) {
	switch {
	case e.n == 0:
		return nil, nil
	case e.n == 1:
		return []float64{e.q[0], e.q[0]}, []float64{0, 1}
	case e.n < 5:
		v := append([]float64(nil), e.q[:e.n]...)
		sort.Float64s(v)
		fs = make([]float64, len(v))
		for i := range v {
			fs[i] = float64(i) / float64(len(v)-1)
		}
		return v, fs
	}
	xs = append([]float64(nil), e.q[:]...)
	fs = make([]float64, 5)
	for i := range fs {
		fs[i] = (e.pos[i] - 1) / (float64(e.n) - 1)
	}
	return xs, fs
}

// cdfAt evaluates a piecewise-linear CDF at x.
func cdfAt(xs, fs []float64, x float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if x <= xs[0] {
		if x == xs[0] {
			return fs[0]
		}
		return 0
	}
	last := len(xs) - 1
	if x >= xs[last] {
		return 1
	}
	j := sort.SearchFloat64s(xs, x)
	// xs[j-1] < x ≤ xs[j] (x < xs[last], so j ≤ last).
	if xs[j] == x {
		return fs[j]
	}
	t := (x - xs[j-1]) / (xs[j] - xs[j-1])
	return fs[j-1] + t*(fs[j]-fs[j-1])
}

// invertCDF returns the smallest x with CDF(x) ≥ t on the knot list.
func invertCDF(xs, fs []float64, t float64) float64 {
	for j := range fs {
		if fs[j] >= t {
			if j == 0 || fs[j] == fs[j-1] {
				return xs[j]
			}
			u := (t - fs[j-1]) / (fs[j] - fs[j-1])
			return xs[j-1] + u*(xs[j]-xs[j-1])
		}
	}
	return xs[len(xs)-1]
}

// Merge folds another sketch for the same quantile into e. The merge is
// approximate but deterministic: both sketches are read as weighted
// piecewise-linear empirical CDFs, combined in proportion to their
// observation counts, and the merged CDF is re-sampled at the five
// canonical marker fractions. The Monte-Carlo engine relies on the
// determinism — per-block sketches merged in fixed block order give
// quantile estimates that are bit-identical across worker counts.
func (e *P2) Merge(o P2) {
	if o.p != e.p {
		panic(fmt.Sprintf("stats: merging P2 sketches for quantiles %g and %g", e.p, o.p))
	}
	if o.n == 0 {
		return
	}
	if e.n == 0 {
		*e = o
		return
	}
	if e.n+o.n <= 5 {
		// Both below formation: keep exact values.
		var merged P2 = NewP2(e.p)
		for _, v := range e.q[:e.n] {
			merged.Add(v)
		}
		for _, v := range o.q[:o.n] {
			merged.Add(v)
		}
		*e = merged
		return
	}
	ax, af := e.knots()
	bx, bf := o.knots()
	// Union of knot heights, deduplicated.
	union := make([]float64, 0, len(ax)+len(bx))
	union = append(union, ax...)
	union = append(union, bx...)
	sort.Float64s(union)
	xs := union[:0]
	for i, x := range union {
		if i == 0 || x != xs[len(xs)-1] {
			xs = append(xs, x)
		}
	}
	// Combined CDF, weighted by observation counts.
	wa := float64(e.n) / float64(e.n+o.n)
	wb := float64(o.n) / float64(e.n+o.n)
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = wa*cdfAt(ax, af, x) + wb*cdfAt(bx, bf, x)
	}
	// Re-sample the five canonical markers from the merged CDF.
	n := e.n + o.n
	var q, pos [5]float64
	for i, frac := range e.inc {
		q[i] = invertCDF(xs, fs, frac)
		pos[i] = 1 + frac*float64(n-1)
	}
	q[0] = math.Min(ax[0], bx[0])
	q[4] = math.Max(ax[len(ax)-1], bx[len(bx)-1])
	// Desired positions restart at their canonical values for a formed
	// sketch of n observations, so further Adds keep working.
	init := NewP2(e.p).des
	var des [5]float64
	for i := range des {
		des[i] = init[i] + e.inc[i]*float64(n-5)
	}
	e.n = n
	e.q = q
	e.pos = pos
	e.des = des
}
