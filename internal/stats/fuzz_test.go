package stats

import (
	"math"
	"math/rand"
	"testing"
)

// fuzzStream generates a random stream whose family is picked by shape:
// Gaussian, uniform, heavy-tailed (exponentiated Gaussian) or bimodal —
// the marker-stressing distributions for the P² estimator.
func fuzzStream(rng *rand.Rand, shape uint8, n int) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		switch shape % 4 {
		case 0:
			vals[i] = rng.NormFloat64()
		case 1:
			vals[i] = rng.Float64()*20 - 10
		case 2:
			vals[i] = math.Exp(rng.NormFloat64())
		default:
			m := -3.0
			if rng.Intn(2) == 1 {
				m = 3.0
			}
			vals[i] = m + 0.5*rng.NormFloat64()
		}
	}
	return vals
}

// p2Tolerance returns the acceptance band for an estimate over a stream
// with the given spread: P² is an O(1)-memory approximation, so the band
// is a fraction of the observed range — tight for long light-tailed
// streams, wider for short ones. For the stress families the band
// degrades to the hard [min, max] envelope: five markers cannot summarize
// a short stream, the parabolic update assumes a locally smooth CDF (the
// centre marker is known to lag in the empty gap of a bimodal stream),
// and heavy-tailed streams make range-relative bounds meaningless because
// one extreme observation stretches the range arbitrarily — all
// documented limitations of the algorithm, not defects of this
// implementation.
func p2Tolerance(n int, spread float64, strict, merged bool) float64 {
	if n < 64 || !strict {
		return spread
	}
	tol := 0.3 * spread
	if n >= 1024 {
		tol = 0.15 * spread
	}
	if merged {
		// The CDF-resampling Merge stacks a second approximation on top
		// of the sketches it combines.
		tol *= 1.5
	}
	return tol + 1e-12
}

// FuzzControlVariate checks the paired accumulator's merge invariance on
// random correlated streams: splitting the stream at an arbitrary point
// and merging must agree with single-stream accumulation and with the
// exact two-pass paired statistics within floating-point tolerance, and
// the derived regression quantities must stay finite and in range.
func FuzzControlVariate(f *testing.F) {
	f.Add(int64(1), uint8(0), uint16(100))
	f.Add(int64(2015), uint8(1), uint16(2))
	f.Add(int64(-4), uint8(2), uint16(777))
	f.Add(int64(33), uint8(3), uint16(256))
	f.Fuzz(func(t *testing.T, seed int64, shape uint8, nRaw uint16) {
		n := 1 + int(nRaw)%4000
		rng := rand.New(rand.NewSource(seed))
		xs := fuzzStream(rng, shape, n)
		ys := make([]float64, n)
		noise := 0.1 + float64(shape%8)/4 // correlation strength varies
		for i, x := range xs {
			ys[i] = 1.5*x - 2 + noise*rng.NormFloat64()
		}
		split := rng.Intn(n + 1)

		var single, lo, hi ControlVariate
		for i := range ys {
			single.Add(ys[i], xs[i])
			if i < split {
				lo.Add(ys[i], xs[i])
			} else {
				hi.Add(ys[i], xs[i])
			}
		}
		merged := lo
		merged.Merge(hi)

		if merged.N() != n || single.N() != n {
			t.Fatalf("lost observations: merged %d single %d of %d", merged.N(), single.N(), n)
		}
		// Merged and single-stream accumulation agree to fp tolerance.
		mpy, mpx := merged.Primary(), merged.Control()
		spy, spx := single.Primary(), single.Control()
		checks := []struct {
			name     string
			got, ref float64
		}{
			{"meanY", mpy.Mean(), spy.Mean()},
			{"meanX", mpx.Mean(), spx.Mean()},
			{"cov", merged.Cov(), single.Cov()},
			{"beta", merged.Beta(), single.Beta()},
			{"resid", merged.ResidualVar(), single.ResidualVar()},
		}
		if n >= 2 {
			meanY, meanX, varY, varX, cov := exactPaired(ys, xs)
			my, mx := merged.Primary(), merged.Control()
			checks = append(checks,
				struct {
					name     string
					got, ref float64
				}{"exact meanY", my.Mean(), meanY},
				struct {
					name     string
					got, ref float64
				}{"exact meanX", mx.Mean(), meanX},
				struct {
					name     string
					got, ref float64
				}{"exact varY", my.Std() * my.Std(), varY},
				struct {
					name     string
					got, ref float64
				}{"exact varX", mx.Std() * mx.Std(), varX},
				struct {
					name     string
					got, ref float64
				}{"exact cov", merged.Cov(), cov},
			)
		}
		for _, c := range checks {
			if math.IsNaN(c.got) || math.IsInf(c.got, 0) {
				t.Fatalf("%s: non-finite %v", c.name, c.got)
			}
			if !relClose(c.got, c.ref, 1e-6) {
				t.Fatalf("%s: %v != %v", c.name, c.got, c.ref)
			}
		}
		if r := merged.Corr(); r < -1-1e-9 || r > 1+1e-9 || math.IsNaN(r) {
			t.Fatalf("correlation out of range: %v", r)
		}
		if vr := merged.VarianceReduction(); vr < 1-1e-9 || math.IsNaN(vr) {
			t.Fatalf("variance reduction below 1: %v", vr)
		}
		if rv := merged.ResidualVar(); rv < 0 {
			t.Fatalf("negative residual variance: %v", rv)
		}
	})
}

// FuzzP2Quantile checks the P² sketch against exact quantiles on random
// streams: estimates must be exact below formation (n < 5), stay inside
// the observed [min, max] envelope, never go NaN for a non-empty stream,
// and track the exact sample quantile within a range-relative tolerance —
// for both a single sketch and a deterministic two-sketch Merge split at
// an arbitrary point.
func FuzzP2Quantile(f *testing.F) {
	f.Add(int64(1), uint8(0), uint16(100))
	f.Add(int64(2015), uint8(1), uint16(3))
	f.Add(int64(-9), uint8(2), uint16(1000))
	f.Add(int64(77), uint8(3), uint16(257))
	f.Fuzz(func(t *testing.T, seed int64, shape uint8, nRaw uint16) {
		n := 1 + int(nRaw)%4000
		rng := rand.New(rand.NewSource(seed))
		vals := fuzzStream(rng, shape, n)
		split := rng.Intn(n + 1)

		for _, p := range []float64{0.05, 0.5, 0.95} {
			single := NewP2(p)
			lo, hi := NewP2(p), NewP2(p)
			for i, v := range vals {
				single.Add(v)
				if i < split {
					lo.Add(v)
				} else {
					hi.Add(v)
				}
			}
			merged := lo
			merged.Merge(hi)

			sorted := append([]float64(nil), vals...)
			Summarize(sorted) // sorts in place
			exact := Quantile(sorted, p)
			min, max := sorted[0], sorted[n-1]

			for _, c := range []struct {
				name string
				est  float64
				got  int
				tol  float64
			}{
				{"single", single.Quantile(), single.N(), p2Tolerance(n, max-min, shape%4 <= 1, false)},
				{"merged", merged.Quantile(), merged.N(), p2Tolerance(n, max-min, shape%4 <= 1, true)},
			} {
				if c.got != n {
					t.Fatalf("%s p=%g: folded %d of %d observations", c.name, p, c.got, n)
				}
				if math.IsNaN(c.est) || math.IsInf(c.est, 0) {
					t.Fatalf("%s p=%g: estimate %v on non-empty stream", c.name, p, c.est)
				}
				if c.est < min || c.est > max {
					t.Fatalf("%s p=%g: estimate %v outside sample range [%v, %v]", c.name, p, c.est, min, max)
				}
				if n < 5 && c.name == "single" && c.est != exact {
					t.Fatalf("single p=%g: pre-formation estimate %v != exact %v (n=%d)", p, c.est, exact, n)
				}
				if d := math.Abs(c.est - exact); d > c.tol {
					t.Fatalf("%s p=%g n=%d: |%v - %v| = %g exceeds tolerance %g",
						c.name, p, n, c.est, exact, d, c.tol)
				}
			}
		}
	})
}
