// Stable, versioned binary encodings for the mergeable accumulators —
// the serialization surface the shard/checkpoint machinery rests on.
// Every codec round-trips exactly: decode(encode(x)) reproduces the
// accumulator bit for bit (float fields travel as raw IEEE-754 bits,
// never through decimal formatting), so an aggregate that crossed a
// process or machine boundary merges bit-identically to one that never
// left memory. That property is fuzz-gated (FuzzWelfordCodec,
// FuzzP2Codec, FuzzControlVariateCodec) because the distributed
// reducer's whole bit-identity contract collapses if it ever breaks.
//
// Formats are versioned with a leading byte per accumulator; decoding a
// different version or a truncated buffer fails loudly. Changing a
// field layout requires a new version byte — old artifacts must never
// decode silently wrong.
package stats

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Codec version bytes. Bump when the corresponding field layout changes.
const (
	welfordCodecVersion        = 1
	p2CodecVersion             = 1
	controlVariateCodecVersion = 1
)

// Encoded sizes (version byte included) — handy for sizing buffers.
const (
	WelfordEncodedSize        = 1 + 5*8
	P2EncodedSize             = 1 + 2*8 + 4*5*8
	ControlVariateEncodedSize = 1 + 2*WelfordEncodedSize + 8
)

// AppendU64 / AppendF64 are the primitive writers: fixed-width
// big-endian, floats as raw IEEE-754 bits.
func AppendU64(b []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(b, v)
}

func AppendF64(b []byte, v float64) []byte {
	return AppendU64(b, math.Float64bits(v))
}

// CodecReader consumes a buffer with truncation checking.
type CodecReader struct {
	buf []byte
	err error
}

// NewCodecReader wraps data for streaming multi-record decodes (the
// shard artifact reader). Reads latch the first error; check Err after.
func NewCodecReader(data []byte) *CodecReader { return &CodecReader{buf: data} }

// Err returns the first decode error, if any.
func (r *CodecReader) Err() error { return r.err }

// Rest returns the number of unconsumed bytes.
func (r *CodecReader) Rest() int { return len(r.buf) }

// U8 reads one byte; what names the enclosing record for the error text.
func (r *CodecReader) U8(what string) byte {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 1 {
		r.err = fmt.Errorf("stats: truncated %s encoding", what)
		return 0
	}
	v := r.buf[0]
	r.buf = r.buf[1:]
	return v
}

// U64 reads one big-endian uint64.
func (r *CodecReader) U64(what string) uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 8 {
		r.err = fmt.Errorf("stats: truncated %s encoding", what)
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v
}

// F64 reads one float64 from its raw IEEE-754 bits.
func (r *CodecReader) F64(what string) float64 {
	return math.Float64frombits(r.U64(what))
}

// AppendBinary appends the versioned encoding of w to b.
func (w Welford) AppendBinary(b []byte) []byte {
	b = append(b, welfordCodecVersion)
	b = AppendU64(b, uint64(w.n))
	b = AppendF64(b, w.mean)
	b = AppendF64(b, w.m2)
	b = AppendF64(b, w.min)
	b = AppendF64(b, w.max)
	return b
}

// MarshalBinary encodes w (encoding.BinaryMarshaler).
func (w Welford) MarshalBinary() ([]byte, error) {
	return w.AppendBinary(make([]byte, 0, WelfordEncodedSize)), nil
}

// Decode consumes one Welford encoding from the reader.
func (w *Welford) Decode(r *CodecReader) {
	if v := r.U8("Welford"); r.err == nil && v != welfordCodecVersion {
		r.err = fmt.Errorf("stats: Welford codec version %d, want %d", v, welfordCodecVersion)
		return
	}
	w.n = int(r.U64("Welford"))
	w.mean = r.F64("Welford")
	w.m2 = r.F64("Welford")
	w.min = r.F64("Welford")
	w.max = r.F64("Welford")
}

// UnmarshalBinary decodes an encoding produced by MarshalBinary; extra
// trailing bytes are rejected (the accumulator is a fixed-size record).
func (w *Welford) UnmarshalBinary(data []byte) error {
	r := &CodecReader{buf: data}
	var tmp Welford
	tmp.Decode(r)
	if r.err != nil {
		return r.err
	}
	if len(r.buf) != 0 {
		return fmt.Errorf("stats: %d trailing bytes after Welford encoding", len(r.buf))
	}
	*w = tmp
	return nil
}

// AppendBinary appends the versioned encoding of e to b.
func (e P2) AppendBinary(b []byte) []byte {
	b = append(b, p2CodecVersion)
	b = AppendF64(b, e.p)
	b = AppendU64(b, uint64(e.n))
	for _, v := range e.q {
		b = AppendF64(b, v)
	}
	for _, v := range e.pos {
		b = AppendF64(b, v)
	}
	for _, v := range e.des {
		b = AppendF64(b, v)
	}
	for _, v := range e.inc {
		b = AppendF64(b, v)
	}
	return b
}

// MarshalBinary encodes e (encoding.BinaryMarshaler).
func (e P2) MarshalBinary() ([]byte, error) {
	return e.AppendBinary(make([]byte, 0, P2EncodedSize)), nil
}

// Decode consumes one P2 encoding from the reader.
func (e *P2) Decode(r *CodecReader) {
	if v := r.U8("P2"); r.err == nil && v != p2CodecVersion {
		r.err = fmt.Errorf("stats: P2 codec version %d, want %d", v, p2CodecVersion)
		return
	}
	e.p = r.F64("P2")
	e.n = int(r.U64("P2"))
	for i := range e.q {
		e.q[i] = r.F64("P2")
	}
	for i := range e.pos {
		e.pos[i] = r.F64("P2")
	}
	for i := range e.des {
		e.des[i] = r.F64("P2")
	}
	for i := range e.inc {
		e.inc[i] = r.F64("P2")
	}
}

// UnmarshalBinary decodes an encoding produced by MarshalBinary.
func (e *P2) UnmarshalBinary(data []byte) error {
	r := &CodecReader{buf: data}
	var tmp P2
	tmp.Decode(r)
	if r.err != nil {
		return r.err
	}
	if len(r.buf) != 0 {
		return fmt.Errorf("stats: %d trailing bytes after P2 encoding", len(r.buf))
	}
	*e = tmp
	return nil
}

// AppendBinary appends the versioned encoding of c to b.
func (c ControlVariate) AppendBinary(b []byte) []byte {
	b = append(b, controlVariateCodecVersion)
	b = c.y.AppendBinary(b)
	b = c.x.AppendBinary(b)
	b = AppendF64(b, c.cxy)
	return b
}

// MarshalBinary encodes c (encoding.BinaryMarshaler).
func (c ControlVariate) MarshalBinary() ([]byte, error) {
	return c.AppendBinary(make([]byte, 0, ControlVariateEncodedSize)), nil
}

// Decode consumes one ControlVariate encoding from the reader.
func (c *ControlVariate) Decode(r *CodecReader) {
	if v := r.U8("ControlVariate"); r.err == nil && v != controlVariateCodecVersion {
		r.err = fmt.Errorf("stats: ControlVariate codec version %d, want %d", v, controlVariateCodecVersion)
		return
	}
	c.y.Decode(r)
	c.x.Decode(r)
	c.cxy = r.F64("ControlVariate")
}

// UnmarshalBinary decodes an encoding produced by MarshalBinary.
func (c *ControlVariate) UnmarshalBinary(data []byte) error {
	r := &CodecReader{buf: data}
	var tmp ControlVariate
	tmp.Decode(r)
	if r.err != nil {
		return r.err
	}
	if len(r.buf) != 0 {
		return fmt.Errorf("stats: %d trailing bytes after ControlVariate encoding", len(r.buf))
	}
	*c = tmp
	return nil
}

// DecodeWelford consumes one Welford encoding from the front of data,
// returning the remainder — the streaming form the artifact reader uses.
func DecodeWelford(data []byte) (Welford, []byte, error) {
	r := &CodecReader{buf: data}
	var w Welford
	w.Decode(r)
	return w, r.buf, r.err
}

// DecodeP2 consumes one P2 encoding from the front of data.
func DecodeP2(data []byte) (P2, []byte, error) {
	r := &CodecReader{buf: data}
	var e P2
	e.Decode(r)
	return e, r.buf, r.err
}

// DecodeControlVariate consumes one ControlVariate encoding from the
// front of data.
func DecodeControlVariate(data []byte) (ControlVariate, []byte, error) {
	r := &CodecReader{buf: data}
	var c ControlVariate
	c.Decode(r)
	return c, r.buf, r.err
}
