// Control-variate accumulation: streaming paired moments for an expensive
// primary observable Y and a cheap, correlated control X evaluated on the
// same random draws. The classical regression estimator re-expresses the
// primary's variance as β²·var(X) + var(Y − βX): when the control's
// moments are known to much higher precision than the paired budget
// affords (a separate large cheap stream), only the small residual term
// still carries the expensive stream's sampling noise — a variance
// reduction of roughly 1/(1−ρ²).
package stats

import "math"

// ControlVariate accumulates streaming paired moments of a primary
// observable y and a control observable x: the per-variable Welford
// moments plus the co-moment Σ(yᵢ−ȳ)(xᵢ−x̄). Like Welford and P2 it is
// mergeable, and merging per-block accumulators in a fixed block order
// yields bit-identical results for any worker count.
type ControlVariate struct {
	y, x Welford
	cxy  float64 // co-moment Σ(yᵢ−ȳ)(xᵢ−x̄)
}

// Add folds one paired observation (primary y, control x).
func (c *ControlVariate) Add(y, x float64) {
	dy := y - c.y.mean // deviation from the pre-update primary mean
	c.y.Add(y)
	c.x.Add(x)
	c.cxy += dy * (x - c.x.mean)
}

// Merge combines another accumulator (parallel reduction). The co-moment
// follows the same pairwise update as Welford's m2, with the cross term
// d_y·d_x·n₁n₂/(n₁+n₂).
func (c *ControlVariate) Merge(o ControlVariate) {
	if o.y.n == 0 {
		return
	}
	if c.y.n == 0 {
		*c = o
		return
	}
	n1, n2 := float64(c.y.n), float64(o.y.n)
	dy := o.y.mean - c.y.mean
	dx := o.x.mean - c.x.mean
	c.cxy += o.cxy + dy*dx*n1*n2/(n1+n2)
	c.y.Merge(o.y)
	c.x.Merge(o.x)
}

// N returns the paired sample count.
func (c *ControlVariate) N() int { return c.y.n }

// Primary returns the accumulated moments of the primary observable.
func (c *ControlVariate) Primary() Welford { return c.y }

// Control returns the accumulated moments of the control observable.
func (c *ControlVariate) Control() Welford { return c.x }

// Cov returns the sample covariance (n−1 denominator).
func (c *ControlVariate) Cov() float64 {
	if c.y.n < 2 {
		return 0
	}
	return c.cxy / float64(c.y.n-1)
}

// Beta returns the regression coefficient β̂ = cov(y,x)/var(x), the
// optimal control-variate multiplier estimated from the paired stream.
// It is 0 while the control has no spread (β is then unidentifiable and
// the corrected estimators degrade gracefully to the plain ones).
func (c *ControlVariate) Beta() float64 {
	if c.y.n < 2 || c.x.m2 == 0 {
		return 0
	}
	return c.cxy / c.x.m2
}

// Corr returns the sample correlation ρ̂ between primary and control
// (0 when either is degenerate).
func (c *ControlVariate) Corr() float64 {
	if c.y.n < 2 || c.y.m2 == 0 || c.x.m2 == 0 {
		return 0
	}
	return c.cxy / math.Sqrt(c.y.m2*c.x.m2)
}

// ResidualVar returns the sample variance of the regression residual
// y − β̂x, i.e. (1−ρ̂²)·var(y) — the part of the primary's variance the
// control cannot explain. Clamped at 0 against floating-point cancellation.
func (c *ControlVariate) ResidualVar() float64 {
	if c.y.n < 2 {
		return 0
	}
	m2res := c.y.m2
	if c.x.m2 > 0 {
		m2res -= c.cxy * c.cxy / c.x.m2
	}
	if m2res < 0 {
		m2res = 0
	}
	return m2res / float64(c.y.n-1)
}

// VarianceReduction returns the measured control-variate gain
// 1/(1−ρ̂²): the factor by which the paired estimator shrinks the
// primary-mean sampling variance relative to the plain estimator at the
// same budget. 1 when the pair is uncorrelated or degenerate; +Inf for a
// perfectly correlated pair.
func (c *ControlVariate) VarianceReduction() float64 {
	r := c.Corr()
	d := 1 - r*r
	if d <= 0 {
		return math.Inf(1)
	}
	return 1 / d
}

// EffectiveN returns the plain-estimator sample count this paired stream
// is worth: N · VarianceReduction.
func (c *ControlVariate) EffectiveN() float64 {
	return float64(c.N()) * c.VarianceReduction()
}

// MeanCorrected returns the control-variate-corrected mean
// ȳ − β̂(x̄ − μx), where μx is the control's expectation known from a
// high-precision reference (a separate cheap stream).
func (c *ControlVariate) MeanCorrected(muX float64) float64 {
	return c.y.mean - c.Beta()*(c.x.mean-muX)
}

// StdCorrected returns the control-variate-corrected standard deviation
// of the primary, √(β̂²σx² + var(y−β̂x)), where sigmaX is the control's
// standard deviation known from a high-precision reference. The dominant
// β²σx² term inherits the reference's precision; only the small residual
// term still carries the paired stream's sampling noise.
func (c *ControlVariate) StdCorrected(sigmaX float64) float64 {
	b := c.Beta()
	return math.Sqrt(b*b*sigmaX*sigmaX + c.ResidualVar())
}
