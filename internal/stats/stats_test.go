package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || math.Abs(s.Mean-5) > 1e-12 {
		t.Fatalf("mean: %+v", s)
	}
	// Sample std of this classic set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("std = %g, want %g", s.Std, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max: %+v", s)
	}
	if math.Abs(s.Median-4.5) > 1e-12 {
		t.Fatalf("median = %g", s.Median)
	}
	if s.String() == "" {
		t.Fatal("String empty")
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatal("empty summary")
	}
	s := Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.Std != 0 || s.Median != 3 {
		t.Fatalf("single: %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{0, 1, 2, 3, 4}
	if Quantile(sorted, 0) != 0 || Quantile(sorted, 1) != 4 {
		t.Fatal("extremes")
	}
	if Quantile(sorted, 0.5) != 2 {
		t.Fatal("median")
	}
	if got := Quantile(sorted, 0.25); got != 1 {
		t.Fatalf("q25 = %g", got)
	}
	if got := Quantile(sorted, 0.125); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("q12.5 = %g", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile must be NaN")
	}
	if Quantile([]float64{7}, 0.3) != 7 {
		t.Fatal("single quantile")
	}
}

func TestWelfordMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var w Welford
	var vals []float64
	for i := 0; i < 10000; i++ {
		v := rng.NormFloat64()*2.5 + 1
		w.Add(v)
		vals = append(vals, v)
	}
	s := Summarize(vals)
	if math.Abs(w.Mean()-s.Mean) > 1e-9 {
		t.Fatalf("mean %g vs %g", w.Mean(), s.Mean)
	}
	if math.Abs(w.Std()-s.Std) > 1e-9 {
		t.Fatalf("std %g vs %g", w.Std(), s.Std)
	}
	if w.Min() != s.Min || w.Max() != s.Max || w.N() != s.N {
		t.Fatal("min/max/n mismatch")
	}
}

func TestWelfordMergeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(200)
		var all, a, b Welford
		for i := 0; i < n; i++ {
			v := rng.NormFloat64()
			all.Add(v)
			if i%2 == 0 {
				a.Add(v)
			} else {
				b.Add(v)
			}
		}
		a.Merge(b)
		return math.Abs(a.Mean()-all.Mean()) < 1e-10 &&
			math.Abs(a.Std()-all.Std()) < 1e-10 &&
			a.N() == all.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordSummary(t *testing.T) {
	var w Welford
	for _, v := range []float64{2, 4, 6, 8} {
		w.Add(v)
	}
	s := w.Summary()
	if s.N != 4 || s.Mean != 5 || s.Min != 2 || s.Max != 8 {
		t.Fatalf("summary %+v", s)
	}
	if s.Std != w.Std() {
		t.Fatalf("std %g vs %g", s.Std, w.Std())
	}
	// Order statistics are unrecoverable from streaming moments.
	for name, v := range map[string]float64{"median": s.Median, "p05": s.P05, "p95": s.P95, "skew": s.Skew} {
		if !math.IsNaN(v) {
			t.Fatalf("%s = %g, want NaN", name, v)
		}
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Merge(b) // merging empty is a no-op
	if a.N() != 1 {
		t.Fatal("merge empty broke accumulator")
	}
	b.Merge(a) // merging into empty copies
	if b.N() != 1 || b.Mean() != 1 {
		t.Fatal("merge into empty broken")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0, 1, 2.5, 9.999, -1, 10, 15} {
		h.Add(v)
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
	u, o := h.Outliers()
	if u != 1 || o != 2 {
		t.Fatalf("outliers %d/%d", u, o)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[4] != 1 {
		t.Fatalf("counts %v", h.Counts)
	}
	if math.Abs(h.BinCenter(0)-1) > 1e-12 {
		t.Fatalf("bin center %g", h.BinCenter(0))
	}
	out := h.Render(20)
	if !strings.Contains(out, "#") || !strings.Contains(out, "outliers") {
		t.Fatalf("render: %q", out)
	}
	// Render with a silly width still works.
	if h.Render(0) == "" {
		t.Fatal("render with zero width")
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(5, 5, 10); err == nil {
		t.Fatal("empty range must error")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Fatal("zero bins must error")
	}
}

func TestHistogramEdgeBinning(t *testing.T) {
	h, _ := NewHistogram(0, 1, 10)
	// Value exactly at Hi−ulp must not panic or land out of range.
	h.Add(math.Nextafter(1, 0))
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 1 {
		t.Fatal("edge value lost")
	}
}

func TestSkewSign(t *testing.T) {
	// A right-tailed sample has positive skew (the paper's LE3 tdp
	// distributions are right-skewed).
	vals := []float64{0, 0, 0, 0, 1, 1, 2, 8}
	s := Summarize(vals)
	if s.Skew <= 0 {
		t.Fatalf("skew = %g, want positive", s.Skew)
	}
}
