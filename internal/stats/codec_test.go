package stats

import (
	"bytes"
	"math"
	"testing"
)

// encodeW/encodeP/encodeC are tiny helpers: the canonical byte form used
// for bit-identity comparisons (NaN-safe, unlike struct equality).
func encodeW(t *testing.T, w Welford) []byte {
	t.Helper()
	b, err := w.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestWelfordCodecRoundTrip(t *testing.T) {
	var w Welford
	for _, v := range []float64{1.5, -2.25, 3.75, 0.125, 1e-300, -1e300} {
		w.Add(v)
	}
	b := encodeW(t, w)
	if len(b) != WelfordEncodedSize {
		t.Fatalf("encoded size %d, want %d", len(b), WelfordEncodedSize)
	}
	var got Welford
	if err := got.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if got != w {
		t.Fatalf("round trip drifted: got %+v want %+v", got, w)
	}
	// Merging a decoded accumulator must be bit-identical to merging the
	// original: fold both into the same base and compare encodings.
	var base1, base2 Welford
	base1.Add(42)
	base2.Add(42)
	base1.Merge(w)
	base2.Merge(got)
	if !bytes.Equal(encodeW(t, base1), encodeW(t, base2)) {
		t.Fatal("merge after round trip is not bit-identical")
	}
}

func TestWelfordCodecZeroValue(t *testing.T) {
	var w Welford
	var got Welford
	got.Add(1) // dirty the target; decode must fully overwrite
	if err := got.UnmarshalBinary(encodeW(t, w)); err != nil {
		t.Fatal(err)
	}
	if got != w {
		t.Fatalf("zero-value round trip drifted: %+v", got)
	}
}

func TestP2CodecRoundTrip(t *testing.T) {
	e := NewP2(0.95)
	for i := 0; i < 100; i++ {
		e.Add(float64(i%17) * 1.25)
	}
	b, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != P2EncodedSize {
		t.Fatalf("encoded size %d, want %d", len(b), P2EncodedSize)
	}
	var got P2
	if err := got.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatalf("round trip drifted: got %+v want %+v", got, e)
	}
	// Below-formation sketches (raw values still buffered) round-trip too.
	small := NewP2(0.5)
	small.Add(3)
	small.Add(-1)
	sb, _ := small.MarshalBinary()
	var sgot P2
	if err := sgot.UnmarshalBinary(sb); err != nil {
		t.Fatal(err)
	}
	if sgot != small {
		t.Fatalf("pre-formation round trip drifted: got %+v want %+v", sgot, small)
	}
}

func TestControlVariateCodecRoundTrip(t *testing.T) {
	var c ControlVariate
	for i := 0; i < 64; i++ {
		y := float64(i) * 0.5
		c.Add(y, 2*y+0.125)
	}
	b, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != ControlVariateEncodedSize {
		t.Fatalf("encoded size %d, want %d", len(b), ControlVariateEncodedSize)
	}
	var got ControlVariate
	if err := got.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatalf("round trip drifted: got %+v want %+v", got, c)
	}
}

// TestCodecRejectsVersionMismatch pins the versioning contract: a bumped
// version byte must refuse to decode, never decode silently wrong.
func TestCodecRejectsVersionMismatch(t *testing.T) {
	var w Welford
	w.Add(1)
	b := encodeW(t, w)
	b[0] = 99
	if err := new(Welford).UnmarshalBinary(b); err == nil {
		t.Fatal("Welford decoded a foreign version byte")
	}
	e := NewP2(0.5)
	pb, _ := e.MarshalBinary()
	pb[0] = 99
	if err := new(P2).UnmarshalBinary(pb); err == nil {
		t.Fatal("P2 decoded a foreign version byte")
	}
	var c ControlVariate
	c.Add(1, 2)
	cb, _ := c.MarshalBinary()
	cb[0] = 99
	if err := new(ControlVariate).UnmarshalBinary(cb); err == nil {
		t.Fatal("ControlVariate decoded a foreign version byte")
	}
	// The nested Welford versions inside a ControlVariate are checked too.
	cb2, _ := c.MarshalBinary()
	cb2[1] = 99
	if err := new(ControlVariate).UnmarshalBinary(cb2); err == nil {
		t.Fatal("ControlVariate decoded a foreign nested Welford version")
	}
}

// TestCodecRejectsTruncation pins the truncation contract at every
// prefix length: no partial buffer may decode.
func TestCodecRejectsTruncation(t *testing.T) {
	var w Welford
	w.Add(1)
	w.Add(-3)
	wb := encodeW(t, w)
	for i := 0; i < len(wb); i++ {
		if err := new(Welford).UnmarshalBinary(wb[:i]); err == nil {
			t.Fatalf("Welford decoded a %d-byte truncation", i)
		}
	}
	e := NewP2(0.5)
	for i := 0; i < 9; i++ {
		e.Add(float64(i))
	}
	pb, _ := e.MarshalBinary()
	for i := 0; i < len(pb); i++ {
		if err := new(P2).UnmarshalBinary(pb[:i]); err == nil {
			t.Fatalf("P2 decoded a %d-byte truncation", i)
		}
	}
	var c ControlVariate
	c.Add(1, 2)
	cb, _ := c.MarshalBinary()
	for i := 0; i < len(cb); i++ {
		if err := new(ControlVariate).UnmarshalBinary(cb[:i]); err == nil {
			t.Fatalf("ControlVariate decoded a %d-byte truncation", i)
		}
	}
}

// TestCodecRejectsTrailingBytes: Unmarshal is strict about length.
func TestCodecRejectsTrailingBytes(t *testing.T) {
	var w Welford
	w.Add(1)
	b := append(encodeW(t, w), 0)
	if err := new(Welford).UnmarshalBinary(b); err == nil {
		t.Fatal("Welford accepted trailing bytes")
	}
}

// TestCodecStreamingDecode: the Decode* helpers consume exactly one
// record and return the rest — the artifact reader's access pattern.
func TestCodecStreamingDecode(t *testing.T) {
	var w1, w2 Welford
	w1.Add(1)
	w2.Add(2)
	w2.Add(5)
	buf := w1.AppendBinary(nil)
	buf = w2.AppendBinary(buf)
	g1, rest, err := DecodeWelford(buf)
	if err != nil {
		t.Fatal(err)
	}
	g2, rest, err := DecodeWelford(rest)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 || g1 != w1 || g2 != w2 {
		t.Fatalf("streaming decode drifted: %+v %+v rest=%d", g1, g2, len(rest))
	}
	if math.IsNaN(g2.Mean()) {
		t.Fatal("decoded mean is NaN")
	}
}
