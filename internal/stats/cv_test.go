package stats

import (
	"math"
	"math/rand"
	"testing"
)

// exactPaired computes two-pass reference statistics for a paired stream.
func exactPaired(ys, xs []float64) (meanY, meanX, varY, varX, cov float64) {
	n := float64(len(ys))
	for i := range ys {
		meanY += ys[i]
		meanX += xs[i]
	}
	meanY /= n
	meanX /= n
	for i := range ys {
		varY += (ys[i] - meanY) * (ys[i] - meanY)
		varX += (xs[i] - meanX) * (xs[i] - meanX)
		cov += (ys[i] - meanY) * (xs[i] - meanX)
	}
	varY /= n - 1
	varX /= n - 1
	cov /= n - 1
	return
}

func relClose(a, b, tol float64) bool {
	d := math.Abs(a - b)
	s := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*math.Max(s, 1e-300) || d <= 1e-12
}

// TestControlVariateAgainstExact pins the streaming accumulator to the
// two-pass paired statistics on a correlated synthetic stream and checks
// the derived regression quantities against their definitions.
func TestControlVariateAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 5000
	ys := make([]float64, n)
	xs := make([]float64, n)
	var cv ControlVariate
	for i := 0; i < n; i++ {
		x := rng.NormFloat64() * 2.5
		y := 3 + 1.7*x + 0.3*rng.NormFloat64() // strongly correlated pair
		xs[i], ys[i] = x, y
		cv.Add(y, x)
	}
	meanY, meanX, varY, varX, cov := exactPaired(ys, xs)
	if cv.N() != n {
		t.Fatalf("N = %d", cv.N())
	}
	py, px := cv.Primary(), cv.Control()
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"meanY", py.Mean(), meanY},
		{"meanX", px.Mean(), meanX},
		{"varY", py.Std() * py.Std(), varY},
		{"varX", px.Std() * px.Std(), varX},
		{"cov", cv.Cov(), cov},
		{"beta", cv.Beta(), cov / varX},
		{"corr", cv.Corr(), cov / math.Sqrt(varY*varX)},
		{"resid", cv.ResidualVar(), varY - cov*cov/varX},
	} {
		if !relClose(c.got, c.want, 1e-9) {
			t.Errorf("%s: streaming %v != exact %v", c.name, c.got, c.want)
		}
	}
	rho := cv.Corr()
	if rho < 0.98 {
		t.Fatalf("synthetic pair should be strongly correlated, ρ = %v", rho)
	}
	if vr := cv.VarianceReduction(); !relClose(vr, 1/(1-rho*rho), 1e-12) || vr < 10 {
		t.Errorf("variance reduction %v inconsistent with ρ = %v", vr, rho)
	}
	if ess := cv.EffectiveN(); !relClose(ess, float64(n)*cv.VarianceReduction(), 1e-12) {
		t.Errorf("effective N drifted: %v", ess)
	}
	// The corrected estimators with the true control moments must land
	// nearer the truth than the plain paired-sample estimators do here:
	// with ρ ≈ 0.99 the residual term is ~2% of the variance.
	muX, sigmaX := 0.0, 2.5
	if got := cv.MeanCorrected(muX); math.Abs(got-3) > math.Abs(py.Mean()-3)+1e-12 {
		t.Errorf("corrected mean %v no better than plain %v", got, py.Mean())
	}
	trueStd := math.Sqrt(1.7*1.7*sigmaX*sigmaX + 0.09)
	if got := cv.StdCorrected(sigmaX); math.Abs(got/trueStd-1) > 0.05 {
		t.Errorf("corrected std %v far from truth %v", got, trueStd)
	}
}

// TestControlVariateDegenerate covers the guard rails: empty and
// single-sample accumulators, and a spread-free control (β unidentifiable
// → corrected estimators degrade to the plain ones).
func TestControlVariateDegenerate(t *testing.T) {
	var cv ControlVariate
	if cv.N() != 0 || cv.Beta() != 0 || cv.Corr() != 0 || cv.Cov() != 0 ||
		cv.ResidualVar() != 0 || cv.VarianceReduction() != 1 || cv.EffectiveN() != 0 {
		t.Fatal("zero accumulator not inert")
	}
	cv.Add(2, 5)
	if cv.N() != 1 || cv.Beta() != 0 || cv.VarianceReduction() != 1 {
		t.Fatal("single sample must stay degenerate")
	}
	var flat ControlVariate
	for i := 0; i < 10; i++ {
		flat.Add(float64(i), 42) // control carries no information
	}
	if flat.Beta() != 0 || flat.Corr() != 0 {
		t.Fatalf("spread-free control must zero β/ρ: β=%v ρ=%v", flat.Beta(), flat.Corr())
	}
	plain := flat.Primary()
	if got := flat.MeanCorrected(40); got != plain.Mean() {
		t.Fatalf("corrected mean with dead control drifted: %v != %v", got, plain.Mean())
	}
	if got := flat.StdCorrected(1); !relClose(got, plain.Std(), 1e-12) {
		t.Fatalf("corrected std with dead control drifted: %v != %v", got, plain.Std())
	}
	// A perfectly correlated pair reports unbounded (infinite) reduction.
	var perfect ControlVariate
	for i := 0; i < 8; i++ {
		perfect.Add(float64(2*i), float64(i))
	}
	if vr := perfect.VarianceReduction(); !math.IsInf(vr, 1) && vr < 1e6 {
		t.Fatalf("perfect pair VR = %v", vr)
	}
}

// TestControlVariateMergeDeterministic: merging per-block accumulators in
// block order must be bit-identical regardless of how trials were grouped
// into evaluation batches — the engine's worker-count-invariance contract.
func TestControlVariateMergeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const n, block = 1037, 256
	ys := make([]float64, n)
	xs := make([]float64, n)
	for i := range ys {
		xs[i] = rng.NormFloat64()
		ys[i] = xs[i] + 0.2*rng.NormFloat64()
	}
	fold := func() ControlVariate {
		var total ControlVariate
		for lo := 0; lo < n; lo += block {
			hi := lo + block
			if hi > n {
				hi = n
			}
			var b ControlVariate
			for i := lo; i < hi; i++ {
				b.Add(ys[i], xs[i])
			}
			total.Merge(b)
		}
		return total
	}
	a, b := fold(), fold()
	if a != b {
		t.Fatalf("block fold not deterministic: %+v != %+v", a, b)
	}
	// Merging the empty accumulator in either direction is the identity.
	var empty ControlVariate
	c := a
	c.Merge(empty)
	if c != a {
		t.Fatal("merge with empty changed the accumulator")
	}
	empty.Merge(a)
	if empty != a {
		t.Fatal("merge into empty did not adopt")
	}
}
