package main

import (
	"flag"
	"strings"
	"testing"

	"mpsram/internal/exp"
)

// TestUsageGeneratedFromRegistry pins the self-describing usage: every
// registered workload appears with its summary, with the utilities and
// the global flags after it.
func TestUsageGeneratedFromRegistry(t *testing.T) {
	g := defaultGlobals()
	fs := flag.NewFlagSet("mpvar", flag.ContinueOnError)
	g.register(fs)
	var b strings.Builder
	usage(fs, &b)
	out := b.String()
	for _, want := range []string{
		"table1", "mcspicex", "workloads", "all", // registry entries
		"gds", "deck", "help", // utilities
		"-format", "-smoke", "-list", // flags
	} {
		if !strings.Contains(out, want) {
			t.Errorf("usage missing %q:\n%s", want, out)
		}
	}
}

// TestHelpUtilities: the usage text lists gds/deck/help, so help must
// describe them instead of answering "unknown workload".
func TestHelpUtilities(t *testing.T) {
	for name := range utilities {
		var b strings.Builder
		if err := helpWorkload(name, &b); err != nil || !strings.Contains(b.String(), "mpvar "+name) {
			t.Fatalf("help %s: %v\n%s", name, err, b.String())
		}
	}
}

// TestDefaultsNormalizedForFlagBinding pins the Register/CLI contract:
// every registered default already has its kind's native type, so the
// flag-binding type assertions (ps.Default.(int) …) cannot panic.
func TestDefaultsNormalizedForFlagBinding(t *testing.T) {
	for _, wl := range exp.Workloads() {
		for _, ps := range wl.Params {
			var ok bool
			switch ps.Kind {
			case exp.IntParam:
				_, ok = ps.Default.(int)
			case exp.FloatParam:
				_, ok = ps.Default.(float64)
			case exp.BoolParam:
				_, ok = ps.Default.(bool)
			case exp.StringParam:
				_, ok = ps.Default.(string)
			}
			if !ok {
				t.Errorf("%s.%s: default %v (%T) not normalized to %v",
					wl.Name, ps.Name, ps.Default, ps.Default, ps.Kind)
			}
		}
	}
}

// TestHelpWorkload renders one workload's schema-derived description.
func TestHelpWorkload(t *testing.T) {
	var b strings.Builder
	if err := helpWorkload("mcspicex", &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"-sizes string", "16,64,256,1024", "preferred -samples budget: 120", "-smoke overrides"} {
		if !strings.Contains(out, want) {
			t.Errorf("help missing %q:\n%s", want, out)
		}
	}
	if err := helpWorkload("bogus", &b); err == nil || !strings.Contains(err.Error(), "table1") {
		t.Fatalf("unknown workload help must list the registry, got %v", err)
	}
	b.Reset()
	if err := helpWorkload("table1", &b); err != nil || !strings.Contains(b.String(), "no workload parameters") {
		t.Fatalf("parameterless help drifted: %v\n%s", err, b.String())
	}
}

// TestGlobalsTwoPassParse pins the two-pass flag scheme: re-registering
// on a second FlagSet keeps pass-one values as defaults, and both passes
// contribute to the seen set.
func TestGlobalsTwoPassParse(t *testing.T) {
	g := defaultGlobals()
	fs1 := flag.NewFlagSet("mpvar", flag.ContinueOnError)
	g.register(fs1)
	if err := fs1.Parse([]string{"-samples", "8", "mcspice", "-n", "16"}); err != nil {
		t.Fatal(err)
	}
	if fs1.Arg(0) != "mcspice" || g.samples != 8 {
		t.Fatalf("pass one drifted: arg %q samples %d", fs1.Arg(0), g.samples)
	}
	fs2 := flag.NewFlagSet("mpvar mcspice", flag.ContinueOnError)
	g.register(fs2)
	if err := fs2.Parse(fs1.Args()[1:]); err != nil {
		t.Fatal(err)
	}
	if g.samples != 8 || g.n != 16 {
		t.Fatalf("pass two lost values: samples %d n %d", g.samples, g.n)
	}
	seen := map[string]bool{}
	fs1.Visit(func(f *flag.Flag) { seen[f.Name] = true })
	fs2.Visit(func(f *flag.Flag) { seen[f.Name] = true })
	if !seen["samples"] || !seen["n"] || seen["ol"] {
		t.Fatalf("seen set drifted: %v", seen)
	}
	// Any global flag can feed a same-named workload parameter through
	// the flag.Getter interface — not just a hand-picked subset.
	for name, want := range map[string]any{"n": 16, "samples": 8, "thk": 0.0, "ol": 8.0, "workers": 0, "process": "N10"} {
		if got := fs2.Lookup(name).Value.(flag.Getter).Get(); got != want {
			t.Fatalf("global feed for %s = %v (%T), want %v", name, got, got, want)
		}
	}
	if !globalNames["n"] || !globalNames["format"] || globalNames["sizes"] {
		t.Fatalf("global name set drifted: %v", globalNames)
	}
}

// TestProgressPrinter drives the stderr progress callback through a
// restart (a second stream with lower done) without panicking.
func TestProgressPrinter(t *testing.T) {
	fn := progressPrinter()
	for done := 0; done <= 100; done += 10 {
		fn(done, 100)
	}
	fn(5, 50) // new stream restarts the percentage tracking
	fn(50, 50)
}
