// The `mpvar shard` and `mpvar reduce` verbs: distributed + resumable
// Monte-Carlo over the workload registry. `shard` executes one contiguous
// slice of a run's trial blocks and writes a partial-aggregate artifact;
// `reduce` re-merges a complete artifact set in block order and renders
// the workload result — byte-identical to the single-process run. Both
// route through core.RunSpec, so every registered workload shards with no
// per-workload code, and the artifact carries the run key that keeps
// stale shards from reducing.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"mpsram/internal/core"
	"mpsram/internal/exp"
	"mpsram/internal/mc"
	"mpsram/internal/report"
)

// shardSpecFlags are the flags shard/reduce share with the main workload
// surface; only the RunSpec identity fields plus execution knobs apply —
// worker counts never change results.
type shardSpecFlags struct {
	samples  int
	seed     int64
	process  string
	fastSeed bool
	workers  int
	progress bool
}

func defaultShardSpecFlags() *shardSpecFlags {
	return &shardSpecFlags{seed: core.DefaultSeed}
}

// register binds the flags; like the main globals, the current field
// values are the defaults, so pass-one assignments survive the second
// (post-workload-name) registration.
func (g *shardSpecFlags) register(fs *flag.FlagSet) {
	fs.IntVar(&g.samples, "samples", g.samples, "Monte-Carlo sample count (0 = the workload's preferred budget)")
	fs.Int64Var(&g.seed, "seed", g.seed, "Monte-Carlo seed")
	fs.StringVar(&g.process, "process", g.process, "technology preset (default N10); run 'mpvar processes' for the registry")
	fs.BoolVar(&g.fastSeed, "fastseed", g.fastSeed, "use the splittable PCG64 Monte-Carlo stream (changes sampled values)")
	fs.IntVar(&g.workers, "workers", g.workers, "worker count for Monte-Carlo and SPICE sweeps (0 = all CPUs; never changes results)")
	fs.BoolVar(&g.progress, "progress", g.progress, "report progress on stderr")
}

// execOptions translates the execution knobs (not part of the run
// identity) into study options.
func (g *shardSpecFlags) execOptions(ctx context.Context) []core.Option {
	opts := []core.Option{core.WithContext(ctx), core.WithWorkers(g.workers)}
	if g.progress {
		opts = append(opts, core.WithProgress(progressPrinter()))
	}
	return opts
}

// interruptContext is the shared Ctrl-C handling: the first signal
// cancels the context (the engines stop between blocks and the shard
// runner persists its checkpoint), a second one is a hard stop.
func interruptContext() (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	go func() {
		<-ctx.Done()
		stop()
	}()
	return ctx, stop
}

// shardMain runs `mpvar shard`: one shard of one run, to one artifact.
func shardMain(args []string) {
	g := defaultShardSpecFlags()
	fs := flag.NewFlagSet("mpvar shard", flag.ExitOnError)
	index := fs.Int("index", 0, "this shard's index, 0-based")
	of := fs.Int("of", 1, "total shard count the run is split into")
	out := fs.String("o", "", "artifact output path (default <workload>.shard<index>-of<of>)")
	checkpoint := fs.Duration("checkpoint", 0, "persist a resumable checkpoint at most this often (0 = only on exit)")
	resume := fs.Bool("resume", false, "continue from an existing checkpoint at the output path")
	g.register(fs)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, `usage: mpvar shard -index I -of N [flags] <workload> [workload flags]

execute shard I of a run split into N contiguous block ranges and write a
partial-aggregate artifact; 'mpvar reduce' merges the complete set into
the exact single-process result. Interrupted runs persist their progress:
rerun with -resume to continue. See EXPERIMENTS.md.

flags:
`)
		fs.SetOutput(os.Stderr)
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if fs.NArg() < 1 {
		fs.Usage()
		os.Exit(2)
	}
	name := fs.Arg(0)
	wl, err := exp.LookupWorkload(name)
	check(err)

	// Second pass over the arguments after the workload name: the shared
	// spec flags again (subcommand style) plus the workload's own schema
	// parameters.
	fs2 := flag.NewFlagSet("mpvar shard "+name, flag.ExitOnError)
	g.register(fs2)
	bound := map[string]func() any{}
	for _, ps := range wl.Params {
		if fs2.Lookup(ps.Name) != nil {
			f := fs2.Lookup(ps.Name)
			bound[ps.Name] = func() any { return f.Value.(flag.Getter).Get() }
			continue
		}
		ps := ps
		switch ps.Kind {
		case exp.IntParam:
			p := fs2.Int(ps.Name, ps.Default.(int), ps.Help)
			bound[ps.Name] = func() any { return *p }
		case exp.FloatParam:
			p := fs2.Float64(ps.Name, ps.Default.(float64), ps.Help)
			bound[ps.Name] = func() any { return *p }
		case exp.BoolParam:
			p := fs2.Bool(ps.Name, ps.Default.(bool), ps.Help)
			bound[ps.Name] = func() any { return *p }
		case exp.StringParam:
			p := fs2.String(ps.Name, ps.Default.(string), ps.Help)
			bound[ps.Name] = func() any { return *p }
		}
	}
	_ = fs2.Parse(fs.Args()[1:])
	if fs2.NArg() > 0 {
		fatal(fmt.Errorf("unexpected argument %q after workload %s", fs2.Arg(0), name))
	}
	seen := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { seen[f.Name] = true })
	fs2.Visit(func(f *flag.Flag) { seen[f.Name] = true })

	// Only explicitly set parameters enter the spec; Normalize fills the
	// schema defaults, so the run key matches every other spelling of the
	// same run (CLI, serve, reduce).
	params := exp.Params{}
	for _, ps := range wl.Params {
		if seen[ps.Name] {
			params[ps.Name] = bound[ps.Name]()
		}
	}
	spec := core.RunSpec{
		Workload: name, Params: params, Process: g.process,
		Seed: g.seed, Samples: g.samples, FastSeed: g.fastSeed,
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("%s.shard%d-of%d", wl.Name, *index, *of)
	}

	ctx, stop := interruptContext()
	defer stop()
	err = core.RunShard(spec, mc.ShardSpec{Index: *index, Count: *of}, path,
		core.ShardRunOptions{CheckpointEvery: *checkpoint, Resume: *resume},
		g.execOptions(ctx)...)
	if err != nil {
		// On cancellation the checkpoint has already been persisted —
		// say so, because "rerun with -resume" is the whole point.
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "mpvar shard: checkpoint saved to %s; rerun with -resume to continue\n", path)
		}
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "mpvar shard: wrote %s\n", path)
}

// reduceMain runs `mpvar reduce`: merge a complete artifact set and
// render the result.
func reduceMain(args []string) {
	fs := flag.NewFlagSet("mpvar reduce", flag.ExitOnError)
	formatFlag := fs.String("format", "text", "output format: text, csv, md or json")
	workers := fs.Int("workers", 0, "worker count for the non-Monte-Carlo stages a workload re-runs (never changes results)")
	progress := fs.Bool("progress", false, "report progress on stderr")
	timeout := fs.Duration("timeout", 0, "wall-clock budget (0 = none)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, `usage: mpvar reduce [flags] <artifact>...

merge one run's complete shard artifacts (every index of the recorded
shard count, any order) and render the workload result — byte-identical
to running the workload single-process. The artifacts carry the full run
identity; stale or mismatched shards are refused.

flags:
`)
		fs.SetOutput(os.Stderr)
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if fs.NArg() < 1 {
		fs.Usage()
		os.Exit(2)
	}
	format, err := report.ParseFormat(*formatFlag)
	check(err)

	ctx, stop := interruptContext()
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts := []core.Option{core.WithContext(ctx), core.WithWorkers(*workers)}
	if *progress {
		opts = append(opts, core.WithProgress(progressPrinter()))
	}
	res, err := core.Reduce(fs.Args(), opts...)
	check(err)
	check(res.Write(os.Stdout, format))
}
