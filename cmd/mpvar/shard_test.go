package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"mpsram/internal/core"
	"mpsram/internal/exp"
	"mpsram/internal/report"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it wrote.
func captureStdout(t *testing.T, fn func()) []byte {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan []byte)
	go func() {
		b, _ := io.ReadAll(r)
		done <- b
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}

// TestShardReduceVerbs drives the CLI verbs in process: shard a run into
// two artifacts (one via an explicitly bound workload parameter), reduce
// them, and require output byte-identical to the direct library run. The
// CI shard-smoke step covers the same contract over the real binary;
// this keeps the flag plumbing under `go test` coverage.
func TestShardReduceVerbs(t *testing.T) {
	dir := t.TempDir()
	p0 := filepath.Join(dir, "p0.shard")
	p1 := filepath.Join(dir, "p1.shard")
	shardMain([]string{"-index", "0", "-of", "2", "-o", p0, "-samples", "400", "fig5", "-n", "32"})
	// Spec flags work in either position (before or after the name);
	// workload parameters bind after it.
	shardMain([]string{"-index", "1", "-of", "2", "-o", p1, "fig5", "-samples", "400", "-n", "32"})

	out := captureStdout(t, func() {
		reduceMain([]string{"-format", "json", p0, p1})
	})

	res, err := core.RunSpec{Workload: "fig5", Samples: 400, Params: exp.Params{"n": 32}}.Run()
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := res.Write(&want, report.FormatJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, want.Bytes()) {
		t.Errorf("reduced CLI output diverged from direct run:\n got %q\nwant %q", out, want.Bytes())
	}

	// -resume on a complete artifact is a no-op success, and -checkpoint
	// parses and runs.
	shardMain([]string{"-index", "0", "-of", "2", "-o", p0, "-resume", "-samples", "400", "fig5", "-n", "32"})
	p2 := filepath.Join(dir, "p2.shard")
	shardMain([]string{"-index", "0", "-of", "1", "-o", p2, "-checkpoint", "1ms", "-samples", "400", "fig5", "-n", "32"})
	art, err := core.ReadShardArtifact(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !art.Header.Complete || art.Header.Workload != "fig5" || art.Header.Samples != 400 {
		t.Fatalf("artifact header drifted: %+v", art.Header)
	}
}
