// Command mpvar regenerates the tables and figures of "Impact of
// Interconnect Multiple-Patterning Variability on SRAMs" (DATE 2015) from
// the mpsram library, plus the extension workloads that grew around them.
//
// Usage:
//
//	mpvar [flags] <workload> [workload flags]
//
// The workload list, the usage text and the per-workload flags are all
// generated from the experiment registry (internal/exp): registering a
// workload adds its command, its flags and its smoke coverage with no
// edits here. Run `mpvar workloads` for the machine-readable listing,
// `mpvar help <workload>` for one workload's parameters, and pass
// `-format json|csv|md` for structured output on any workload.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"mpsram/internal/core"
	"mpsram/internal/exp"
	"mpsram/internal/layout"
	"mpsram/internal/litho"
	"mpsram/internal/mc"
	"mpsram/internal/report"
	"mpsram/internal/serve"
	"mpsram/internal/sram"
)

// globals are the environment-level flags shared by every workload. The
// struct doubles as the value store for both parse passes: re-registering
// on a second FlagSet uses the current values as defaults, so pass-one
// assignments survive.
type globals struct {
	samples  int
	seed     int64
	process  string
	fastSeed bool
	ol       float64
	n        int
	lumped   bool
	workers  int
	progress bool
	thk      float64
	format   string
	smoke    bool
	list     bool
}

func defaultGlobals() *globals {
	return &globals{samples: 10000, seed: 2015, process: "N10", ol: 8, n: 64, format: "text"}
}

func (g *globals) register(fs *flag.FlagSet) {
	fs.IntVar(&g.samples, "samples", g.samples, "Monte-Carlo sample count (workloads may hint a cheaper default)")
	fs.Int64Var(&g.seed, "seed", g.seed, "Monte-Carlo seed")
	fs.StringVar(&g.process, "process", g.process, "technology preset; run 'mpvar processes' for the registry")
	fs.BoolVar(&g.fastSeed, "fastseed", g.fastSeed, "use the splittable PCG64 Monte-Carlo stream (cheaper reseed; changes sampled values — see EXPERIMENTS.md)")
	fs.Float64Var(&g.ol, "ol", g.ol, "LE3 overlay 3-sigma budget in nm")
	fs.IntVar(&g.n, "n", g.n, "array word-line count (workloads with an n parameter)")
	fs.BoolVar(&g.lumped, "lumped", g.lumped, "use the lumped bit-line ablation")
	fs.IntVar(&g.workers, "workers", g.workers, "worker count for Monte-Carlo and SPICE sweeps (0 = all CPUs)")
	fs.BoolVar(&g.progress, "progress", g.progress, "report Monte-Carlo and SPICE sweep progress on stderr")
	fs.Float64Var(&g.thk, "thk", g.thk, "thickness extension 3-sigma in nm (workloads with a thk parameter)")
	fs.StringVar(&g.format, "format", g.format, "output format: text, csv, md or json")
	fs.BoolVar(&g.smoke, "smoke", g.smoke, "tiny-budget smoke run: 4 samples plus each workload's smoke parameter overrides")
	fs.BoolVar(&g.list, "list", g.list, "print the registered workload names, one per line, and exit")
}

// globalNames is the set of flag names register defines; workload
// parameters with these names are fed by the global flag instead of a
// duplicate per-workload binding.
var globalNames = func() map[string]bool {
	g := defaultGlobals()
	fs := flag.NewFlagSet("", flag.ContinueOnError)
	g.register(fs)
	names := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) { names[f.Name] = true })
	return names
}()

// usage renders the generated help: the workload listing straight from
// the registry plus the static utility commands and the global flags.
func usage(fs *flag.FlagSet, w io.Writer) {
	fmt.Fprintf(w, `usage: mpvar [flags] <workload> [workload flags]

workloads (from the registry; 'mpvar help <workload>' shows its parameters):
`)
	for _, wl := range exp.Workloads() {
		fmt.Fprintf(w, "  %-12s %s\n", wl.Name, wl.Summary)
	}
	fmt.Fprintf(w, "\nutilities:\n")
	for _, u := range []string{"gds", "deck", "serve", "shard", "reduce", "help"} {
		fmt.Fprintf(w, "  %-12s %s\n", u, utilities[u])
	}
	fmt.Fprintf(w, "\nflags:\n")
	fs.SetOutput(w)
	fs.PrintDefaults()
}

// utilities are the two non-registry artifact dumps (plus help itself),
// kept out of the workload registry because they emit raw formats, not
// tabular results.
var utilities = map[string]string{
	"gds":    "dump the 6T cell layout as GDS text (text only; honors -process)",
	"deck":   "dump a column SPICE deck (text only; honors -process and -n)",
	"serve":  "serve the registry over HTTP/JSON with a deterministic result cache (see API.md)",
	"shard":  "run one shard of a workload's Monte-Carlo blocks to a resumable artifact (see EXPERIMENTS.md)",
	"reduce": "merge a run's shard artifacts into the exact single-process result",
	"help":   "describe a workload and its parameters",
}

// helpWorkload renders one workload's self-description; the static
// utilities listed in the usage text are describable too.
func helpWorkload(name string, w io.Writer) error {
	if desc, ok := utilities[name]; ok {
		fmt.Fprintf(w, "mpvar %s — %s\n", name, desc)
		return nil
	}
	wl, err := exp.LookupWorkload(name)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "mpvar %s — %s\n", wl.Name, wl.Summary)
	if len(wl.Params) == 0 {
		fmt.Fprintf(w, "  (no workload parameters; global flags apply)\n")
	}
	for _, ps := range wl.Params {
		fmt.Fprintf(w, "  -%s %v (default %v)\n      %s\n", ps.Name, ps.Kind, ps.Default, ps.Help)
	}
	if wl.Hints.Samples > 0 {
		fmt.Fprintf(w, "  preferred -samples budget: %d (applied when -samples is not set)\n", wl.Hints.Samples)
	}
	if len(wl.Hints.Smoke) > 0 {
		fmt.Fprintf(w, "  -smoke overrides: %v\n", wl.Hints.Smoke)
	}
	if wl.InAll {
		fmt.Fprintf(w, "  part of the 'all' paper-order plan\n")
	}
	return nil
}

func main() {
	g := defaultGlobals()
	fs1 := flag.NewFlagSet("mpvar", flag.ExitOnError)
	g.register(fs1)
	fs1.Usage = func() { usage(fs1, os.Stderr) }
	_ = fs1.Parse(os.Args[1:])
	if g.list {
		for _, name := range exp.WorkloadNames() {
			fmt.Println(name)
		}
		return
	}
	if fs1.NArg() < 1 {
		usage(fs1, os.Stderr)
		os.Exit(2)
	}
	name := fs1.Arg(0)
	switch name {
	case "serve":
		serveMain(fs1.Args()[1:])
		return
	case "shard":
		shardMain(fs1.Args()[1:])
		return
	case "reduce":
		reduceMain(fs1.Args()[1:])
		return
	}
	if name == "help" {
		if fs1.NArg() < 2 {
			usage(fs1, os.Stdout)
			return
		}
		check(helpWorkload(fs1.Arg(1), os.Stdout))
		return
	}

	seen := map[string]bool{}
	fs1.Visit(func(f *flag.Flag) { seen[f.Name] = true })

	// Registry workloads get a second parse pass over the arguments after
	// the workload name: the global flags again (subcommand style) plus
	// one flag per schema parameter that is not already a global.
	var (
		wl       exp.Workload
		utility  = name == "gds" || name == "deck"
		bound    = map[string]func() any{}
		fs2      = flag.NewFlagSet("mpvar "+name, flag.ExitOnError)
		wlookErr error
	)
	if !utility {
		wl, wlookErr = exp.LookupWorkload(name)
		if wlookErr != nil {
			fmt.Fprintf(os.Stderr, "mpvar: %v\n\nrun 'mpvar' with no arguments for usage\n", wlookErr)
			os.Exit(2)
		}
	}
	g.register(fs2)
	fs2.Usage = func() {
		if utility {
			usage(fs2, os.Stderr)
			return
		}
		_ = helpWorkload(name, os.Stderr)
		fmt.Fprintln(os.Stderr, "\nglobal flags:")
		fs2.SetOutput(os.Stderr)
		fs2.PrintDefaults()
	}
	for _, ps := range wl.Params {
		if globalNames[ps.Name] {
			// Fed by the (re-registered) global flag of the same name:
			// every standard flag.Value implements flag.Getter, and the
			// registry's coercion accepts its native type.
			f := fs2.Lookup(ps.Name)
			bound[ps.Name] = func() any { return f.Value.(flag.Getter).Get() }
			continue
		}
		ps := ps
		switch ps.Kind {
		case exp.IntParam:
			p := fs2.Int(ps.Name, ps.Default.(int), ps.Help)
			bound[ps.Name] = func() any { return *p }
		case exp.FloatParam:
			p := fs2.Float64(ps.Name, ps.Default.(float64), ps.Help)
			bound[ps.Name] = func() any { return *p }
		case exp.BoolParam:
			p := fs2.Bool(ps.Name, ps.Default.(bool), ps.Help)
			bound[ps.Name] = func() any { return *p }
		case exp.StringParam:
			p := fs2.String(ps.Name, ps.Default.(string), ps.Help)
			bound[ps.Name] = func() any { return *p }
		}
	}
	_ = fs2.Parse(fs1.Args()[1:])
	fs2.Visit(func(f *flag.Flag) { seen[f.Name] = true })
	if fs2.NArg() > 0 {
		fatal(fmt.Errorf("unexpected argument %q after workload %s", fs2.Arg(0), name))
	}
	// Globals work in either position, so honor a post-name -list too.
	if g.list {
		for _, n := range exp.WorkloadNames() {
			fmt.Println(n)
		}
		return
	}

	format, err := report.ParseFormat(g.format)
	if err != nil {
		fatal(err)
	}

	// Budget hints: an unset -samples adopts the workload's preferred
	// budget (e.g. SPICE-in-the-loop workloads at 200 draws, not the
	// analytic 10k); -smoke clamps to a tiny budget instead.
	if !seen["samples"] {
		if g.smoke {
			g.samples = 4
		} else if wl.Hints.Samples > 0 {
			g.samples = wl.Hints.Samples
		}
	}

	// Assemble the workload parameters: schema defaults are implicit;
	// explicit flags win; -smoke fills its overrides where nothing was
	// chosen.
	params := exp.Params{}
	for _, ps := range wl.Params {
		if seen[ps.Name] {
			params[ps.Name] = bound[ps.Name]()
		}
	}
	if g.smoke {
		for k, v := range wl.Hints.Smoke {
			if _, explicit := params[k]; !explicit {
				params[k] = v
			}
		}
	}

	// Ctrl-C cancels a running experiment instead of killing the process
	// mid-write: the Monte-Carlo engine checks the context between trial
	// blocks and the SPICE sweep engine between transients. Once the
	// first signal has canceled the context, unregister so a second
	// Ctrl-C gets default handling as a hard stop.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	// Resolve the technology preset first: an unknown -process answers
	// with the registry's valid names, not a bare failure.
	proc, err := core.LookupProcess(g.process)
	if err != nil {
		fatal(err)
	}
	opts := []core.Option{
		core.WithProcess(proc),
		core.WithMC(mc.Config{Samples: g.samples, Seed: g.seed, FastReseed: g.fastSeed}),
		core.WithBuild(sram.BuildOptions{Lumped: g.lumped}),
		core.WithContext(ctx),
		core.WithWorkers(g.workers),
	}
	// The -ol default (8 nm) equals the N10 preset; only an explicit -ol
	// overrides a derived node's own scaled overlay budget.
	if seen["ol"] || proc.Name == "N10" {
		opts = append(opts, core.WithOverlay(g.ol*1e-9))
	}
	if g.progress {
		opts = append(opts, core.WithProgress(progressPrinter()))
	}
	study, err := core.NewStudy(opts...)
	if err != nil {
		fatal(err)
	}

	// The two non-registry utilities: raw artifact dumps, text only.
	switch name {
	case "gds":
		cell := layout.SRAM6TCell(study.Env.Proc)
		check(cell.WriteGDSText(os.Stdout))
		return
	case "deck":
		p := study.Env.Proc
		nom, err := sram.NominalParasitics(p, study.Env.Cap)
		check(err)
		col, err := sram.BuildColumn(p, g.n, nom, study.Env.Build)
		check(err)
		fmt.Print(col.Netlist.WriteSpice(fmt.Sprintf("sram column n=%d (%s)", g.n, litho.EUV)))
		return
	}

	res, err := study.Run(name, params)
	check(err)
	check(res.Write(os.Stdout, format))
}

// serveMain runs `mpvar serve`: the HTTP/JSON API over the workload
// registry with the content-addressed result cache (internal/serve; wire
// contract in API.md). The bound address is printed to stdout — with
// `-addr :0` that is how scripts learn the picked port — and
// SIGTERM/SIGINT trigger a graceful drain: no new runs, every queued and
// in-flight run finishes, then the process exits 0.
func serveMain(args []string) {
	fs := flag.NewFlagSet("mpvar serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8177", "listen address (host:port; port 0 picks a free port)")
	workers := fs.Int("workers", 2, "executor pool size: runs executing concurrently")
	maxQueue := fs.Int("max-queue", 32, "queued runs beyond the pool before submissions shed with 429")
	cacheSize := fs.Int("cache-size", 256, "content-addressed result cache bound (rendered bodies, LRU)")
	runTimeout := fs.Duration("run-timeout", 15*time.Minute, "per-run wall-clock budget")
	drainTimeout := fs.Duration("drain-timeout", 2*time.Minute, "graceful-shutdown budget before in-flight runs are canceled")
	engineWorkers := fs.Int("engine-workers", 0, "worker count inside each run's engines (0 = all CPUs; never changes results)")
	fanout := fs.Int("fanout", 0, "shard count heavy runs fan out into (0 = the pool size, 1 = disabled; never changes response bytes)")
	fanoutMinSamples := fs.Int("fanout-min-samples", 0, "estimated-cost threshold (samples x workload cost hint) above which a run fans out (0 = 50000)")
	fanoutExec := fs.String("fanout-exec", "goroutine", "shard execution vehicle: goroutine (in-process), process (mpvar shard children, crash-isolated) or remote (peer mpvar serve workers; needs -peers)")
	fanoutDir := fs.String("fanout-dir", "", "scratch dir for shard artifacts and drain checkpoints (default <tmp>/mpvar-fanout; reuse it across restarts to resume)")
	peers := fs.String("peers", "", "comma-separated peer mpvar serve workers (host:port or URLs) for -fanout-exec=remote")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mpvar serve [flags]\n\nserve the workload registry over HTTP/JSON (endpoints in API.md)\n\nflags:\n")
		fs.SetOutput(os.Stderr)
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if fs.NArg() > 0 {
		fatal(fmt.Errorf("unexpected argument %q after serve", fs.Arg(0)))
	}
	if *fanoutExec != "goroutine" && *fanoutExec != "process" && *fanoutExec != "remote" {
		fatal(fmt.Errorf("unknown -fanout-exec %q (goroutine, process or remote)", *fanoutExec))
	}
	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}
	if *fanoutExec == "remote" && len(peerList) == 0 {
		fatal(fmt.Errorf("-fanout-exec=remote needs at least one -peers worker"))
	}
	if len(peerList) > 0 && *fanoutExec != "remote" {
		fatal(fmt.Errorf("-peers only applies with -fanout-exec=remote"))
	}
	bin, err := os.Executable()
	if err != nil {
		bin = os.Args[0]
	}
	srv := serve.New(serve.Config{
		Workers:          *workers,
		MaxQueue:         *maxQueue,
		CacheSize:        *cacheSize,
		RunTimeout:       *runTimeout,
		DrainTimeout:     *drainTimeout,
		EngineWorkers:    *engineWorkers,
		Fanout:           *fanout,
		FanoutMinSamples: *fanoutMinSamples,
		FanoutExec:       *fanoutExec,
		Peers:            peerList,
		FanoutDir:        *fanoutDir,
		FanoutBinary:     bin,
	})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err = srv.ListenAndServe(ctx, *addr, func(a net.Addr) {
		fmt.Printf("mpvar serve: listening on http://%s\n", a)
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "mpvar serve: drained cleanly")
}

// progressPrinter returns a concurrency-safe progress callback shared by
// the Monte-Carlo and SPICE sweep engines that rewrites one stderr line
// per whole-percent step.
func progressPrinter() func(done, total int) {
	var mu sync.Mutex
	lastDone, lastPct := 0, -1
	return func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		// Both engines serialize calls with strictly increasing done, so
		// any non-increase means a new stream started (e.g. the next
		// Table IV row, or a Monte-Carlo following a SPICE sweep).
		if done <= lastDone {
			lastPct = -1
		}
		lastDone = done
		pct := done * 100 / total
		if pct <= lastPct {
			return
		}
		lastPct = pct
		fmt.Fprintf(os.Stderr, "\rprogress: %d/%d (%d%%)", done, total, pct)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}
}

func check(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mpvar:", err)
	os.Exit(1)
}
