// Command mpvar regenerates the tables and figures of "Impact of
// Interconnect Multiple-Patterning Variability on SRAMs" (DATE 2015) from
// the mpsram library.
//
// Usage:
//
//	mpvar [flags] <experiment>
//
// where <experiment> is one of: table1 table2 table3 table4 fig2 fig3
// fig4 fig5 all gds deck — plus the multi-node workloads nodes and
// processes. The global -process flag selects the technology preset
// (N10 default; N7/N5 derived) for every single-node experiment.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"

	"mpsram/internal/analytic"
	"mpsram/internal/core"
	"mpsram/internal/exp"
	"mpsram/internal/layout"
	"mpsram/internal/litho"
	"mpsram/internal/mc"
	"mpsram/internal/report"
	"mpsram/internal/sram"
	"mpsram/internal/tech"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: mpvar [flags] <experiment>

experiments:
  table1   worst-case variability per patterning option
  fig2     worst-case layout distortion
  fig3     array DOE overview
  fig4     worst-case td / tdp vs array size (SPICE)
  table2   formula vs simulation tdnom
  table3   formula vs simulation tdp
  fig5     Monte-Carlo tdp distribution (8nm OL, n=64)
  table4   tdp sigma per option and overlay budget
  table4x  extended Table IV: tdp sigma across all DOE sizes (shared stream)
  mcspice  SPICE-in-the-loop Monte-Carlo tdp distributions (one full read
           transient per draw and size at -n; every sample costs a
           transient, so -samples defaults to 200 here instead of 10000)
  all      every experiment in paper order
  nodes    cross-node comparison: Table-IV-style tdp sigma across the
           process registry (N10/N7/N5) at -n word lines
  processes  list the technology registry (valid -process values)
  snm      static noise margins (hold/read butterfly)
  ext      extension studies: LE2 option, thickness source, write penalty
  sens     first-order tdp variance propagation per option
  gds      dump the 6T cell layout as GDS text
  deck     dump a column SPICE deck (use -n)

flags:
`)
	flag.PrintDefaults()
}

func main() {
	samples := flag.Int("samples", 10000, "Monte-Carlo sample count")
	seed := flag.Int64("seed", 2015, "Monte-Carlo seed")
	process := flag.String("process", "N10", "technology preset; run 'mpvar processes' for the registry")
	fastSeed := flag.Bool("fastseed", false, "use the splittable PCG64 Monte-Carlo stream (cheaper reseed; changes sampled values — see EXPERIMENTS.md)")
	ol := flag.Float64("ol", 8, "LE3 overlay 3-sigma budget in nm")
	n := flag.Int("n", 64, "array word-line count for deck/fig5/mcspice/nodes")
	lumped := flag.Bool("lumped", false, "use the lumped bit-line ablation")
	workers := flag.Int("workers", 0, "worker count for Monte-Carlo and SPICE sweeps (0 = all CPUs)")
	progress := flag.Bool("progress", false, "report Monte-Carlo and SPICE sweep progress on stderr")
	thkNM := flag.Float64("thk", 0, "enable the thickness extension: 3-sigma in nm (ext)")
	formatFlag := flag.String("format", "text", "output format: text, csv or md")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	flagsSeen := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { flagsSeen[f.Name] = true })
	format, err := report.ParseFormat(*formatFlag)
	if err != nil {
		fatal(err)
	}
	// emit renders either the paper-style text or a structured table.
	emit := func(text string, tbl *report.Table) {
		if format == report.FormatText {
			fmt.Print(text)
			return
		}
		check(tbl.Write(os.Stdout, format))
	}

	// Ctrl-C cancels a running experiment instead of killing the process
	// mid-write: the Monte-Carlo engine checks the context between trial
	// blocks and the SPICE sweep engine between transients. Once the
	// first signal has canceled the context, unregister so a second
	// Ctrl-C gets default handling as a hard stop.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	// Resolve the technology preset first: an unknown -process answers
	// with the registry's valid names, not a bare failure.
	proc, err := core.LookupProcess(*process)
	if err != nil {
		fatal(err)
	}
	opts := []core.Option{
		core.WithProcess(proc),
		core.WithMC(mc.Config{Samples: *samples, Seed: *seed, FastReseed: *fastSeed}),
		core.WithBuild(sram.BuildOptions{Lumped: *lumped}),
		core.WithContext(ctx),
		core.WithWorkers(*workers),
	}
	// The -ol default (8 nm) equals the N10 preset; only an explicit -ol
	// overrides a derived node's own scaled overlay budget.
	if flagsSeen["ol"] || proc.Name == "N10" {
		opts = append(opts, core.WithOverlay(*ol*1e-9))
	}
	if *progress {
		opts = append(opts, core.WithProgress(progressPrinter()))
	}
	study, err := core.NewStudy(opts...)
	if err != nil {
		fatal(err)
	}

	switch flag.Arg(0) {
	case "table1":
		rows, err := study.WorstCases()
		check(err)
		emit(exp.FormatTable1(rows), exp.Table1Report(rows))
	case "fig2":
		es, err := study.Distortions()
		check(err)
		fmt.Print(exp.FormatFig2(es))
	case "fig3":
		rows, err := study.ArrayOverview()
		check(err)
		emit(exp.FormatFig3(rows), exp.Fig3Report(rows))
	case "fig4":
		pts, err := study.TdVsSize()
		check(err)
		emit(exp.FormatFig4(pts), exp.Fig4Report(pts))
	case "table2":
		rows, err := study.TdnomComparison()
		check(err)
		emit(exp.FormatTable2(rows), exp.Table2Report(rows))
	case "table3":
		rows, err := study.TdpComparison()
		check(err)
		emit(exp.FormatTable3(rows), exp.Table3Report(rows))
	case "fig5":
		// The effective overlay budget already folds in the gated -ol
		// override, so a derived node's scaled budget is honoured here
		// exactly as in the worst-case experiments.
		res, err := exp.Fig5(study.Env, study.Env.Proc.Var.OL3Sigma, *n)
		check(err)
		emit(exp.FormatFig5(res), exp.Fig5Report(res))
	case "table4":
		rows, err := study.SigmaTable()
		check(err)
		emit(exp.FormatTable4(rows), exp.Table4Report(rows))
	case "table4x":
		rows, err := study.SigmaSurface()
		check(err)
		emit(exp.FormatTable4Surface(rows), exp.Table4SurfaceReport(rows))
	case "mcspice":
		// Every sample costs a full read transient, so an unset -samples
		// uses the re-baselined SPICE-MC budget, not the analytic 10k.
		if !flagsSeen["samples"] {
			study.Env.MC.Samples = 200
		}
		rows, err := study.SpiceMC([]int{*n})
		check(err)
		emit(exp.FormatSpiceMC(rows, study.Env.MC.Samples), exp.SpiceMCReport(rows))
	case "nodes":
		rows, err := study.NodesAt(*n)
		check(err)
		emit(exp.FormatNodes(rows, *n), exp.NodesReport(rows, *n))
	case "processes":
		emit(formatProcesses(), processesReport())
	case "snm":
		res, err := sram.StaticNoiseMargins(study.Env.Proc)
		check(err)
		fmt.Printf("static noise margins (%s, %.1f V):\n  hold: %.3f V\n  read: %.3f V\n",
			study.Env.Proc.Name, study.Env.Proc.FEOL.Vdd, res.Hold, res.Read)
	case "sens":
		m, err := study.Model()
		check(err)
		fmt.Printf("First-order tdp variance propagation (n=%d):\n", *n)
		for _, o := range litho.AllOptions {
			prop, err := analytic.PropagateTdp(study.Env.Proc, o, m, study.Env.Cap, *n)
			check(err)
			fmt.Printf("%-8v σ(tdp) ≈ %.3f pp\n", o, prop.SigmaPP)
			for _, s := range prop.Sensitivities {
				fmt.Printf("    %-10s σ=%5.2fnm  Δtdp/σ = %+7.3f pp\n",
					s.Param, s.Sigma*1e9, s.DTdpDSigma)
			}
		}
	case "ext":
		thk := *thkNM * 1e-9
		rows, err := exp.ExtTable1(study.Env, thk)
		check(err)
		fmt.Print(exp.FormatExtTable1(rows, thk))
		wrows, err := exp.WritePenalty(study.Env, *n)
		check(err)
		fmt.Print(exp.FormatWritePenalty(wrows))
	case "all":
		check(study.RunAll(os.Stdout))
	case "gds":
		cell := layout.SRAM6TCell(study.Env.Proc)
		check(cell.WriteGDSText(os.Stdout))
	case "deck":
		p := study.Env.Proc
		nom, err := sram.NominalParasitics(p, study.Env.Cap)
		check(err)
		col, err := sram.BuildColumn(p, *n, nom, study.Env.Build)
		check(err)
		fmt.Print(col.Netlist.WriteSpice(fmt.Sprintf("sram column n=%d (%s)", *n, litho.EUV)))
	default:
		fmt.Fprintf(os.Stderr, "mpvar: unknown experiment %q\n\n", flag.Arg(0))
		usage()
		os.Exit(2)
	}
}

// formatProcesses renders the technology registry as text.
func formatProcesses() string {
	var b strings.Builder
	b.WriteString("technology registry (-process values):\n")
	fmt.Fprintf(&b, "%-6s %10s %10s %10s %10s %12s\n",
		"name", "pitch", "width", "CD 3σ", "OL 3σ", "rho")
	for _, p := range tech.Default().Processes() {
		fmt.Fprintf(&b, "%-6s %8.1fnm %8.1fnm %8.2fnm %8.2fnm %9.2e Ωm\n",
			p.Name, p.M1.Pitch*1e9, p.M1.Width*1e9,
			p.Var.CD3Sigma*1e9, p.Var.OL3Sigma*1e9, p.M1.Rho)
	}
	return b.String()
}

// processesReport converts the registry listing for csv/md output.
func processesReport() *report.Table {
	t := report.New("Technology registry",
		"name", "m1_pitch_nm", "m1_width_nm", "m1_thickness_nm",
		"cd3sigma_nm", "spacer3sigma_nm", "ol3sigma_nm", "rho_ohm_m")
	for _, p := range tech.Default().Processes() {
		_ = t.Appendf(p.Name, p.M1.Pitch*1e9, p.M1.Width*1e9, p.M1.Thickness*1e9,
			p.Var.CD3Sigma*1e9, p.Var.Spacer3Sigma*1e9, p.Var.OL3Sigma*1e9, p.M1.Rho)
	}
	return t
}

// progressPrinter returns a concurrency-safe progress callback shared by
// the Monte-Carlo and SPICE sweep engines that rewrites one stderr line
// per whole-percent step.
func progressPrinter() func(done, total int) {
	var mu sync.Mutex
	lastDone, lastPct := 0, -1
	return func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		// Both engines serialize calls with strictly increasing done, so
		// any non-increase means a new stream started (e.g. the next
		// Table IV row, or a Monte-Carlo following a SPICE sweep).
		if done <= lastDone {
			lastPct = -1
		}
		lastDone = done
		pct := done * 100 / total
		if pct <= lastPct {
			return
		}
		lastPct = pct
		fmt.Fprintf(os.Stderr, "\rprogress: %d/%d (%d%%)", done, total, pct)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}
}

func check(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mpvar:", err)
	os.Exit(1)
}
