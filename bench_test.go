package mpsram

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"mpsram/internal/analytic"
	"mpsram/internal/circuit"
	"mpsram/internal/core"
	"mpsram/internal/device"
	"mpsram/internal/exp"
	"mpsram/internal/extract"
	"mpsram/internal/field"
	"mpsram/internal/litho"
	"mpsram/internal/mc"
	"mpsram/internal/rctree"
	"mpsram/internal/sparse"
	"mpsram/internal/spice"
	"mpsram/internal/sram"
	"mpsram/internal/sweep"
	"mpsram/internal/tech"
)

// study is shared across benches (construction is cheap but the Monte-Carlo
// budget is trimmed so benches finish in sensible time; the CLI runs the
// full 10k-sample budget).
var (
	studyOnce sync.Once
	benchEnv  exp.Env
)

func env(b *testing.B) exp.Env {
	b.Helper()
	studyOnce.Do(func() {
		s, err := core.NewStudy(core.WithMC(mc.Config{Samples: 4000, Seed: 2015}))
		if err != nil {
			panic(err)
		}
		benchEnv = s.Env
	})
	return benchEnv
}

// ------------------------------------------------------------ paper tables

// BenchmarkTable1WorstCase regenerates Table I: the worst-case ΔCbl/ΔRbl
// corner per patterning option.
func BenchmarkTable1WorstCase(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table1(e)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", exp.FormatTable1(rows))
			for _, r := range rows {
				b.ReportMetric(r.CblPct, r.Option.String()+"_dCbl_%")
			}
		}
	}
}

// BenchmarkFig2Distortion regenerates Fig. 2: worst-case track geometry.
func BenchmarkFig2Distortion(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		entries, err := exp.Fig2(e)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", exp.FormatFig2(entries))
		}
	}
}

// BenchmarkFig3Floorplan regenerates Fig. 3: the array DOE floorplans.
func BenchmarkFig3Floorplan(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig3(e)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", exp.FormatFig3(rows))
		}
	}
}

// BenchmarkFig4WorstCaseTd regenerates Fig. 4: SPICE-level worst-case td
// and tdp versus array size for all options.
func BenchmarkFig4WorstCaseTd(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		pts, err := exp.Fig4(e)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", exp.FormatFig4(pts))
			for _, p := range pts {
				if p.N == 64 {
					b.ReportMetric(p.TdpPct, p.Option.String()+"_tdp64_%")
				}
			}
		}
	}
}

// BenchmarkTable2Tdnom regenerates Table II: formula vs simulation tdnom.
func BenchmarkTable2Tdnom(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table2(e)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", exp.FormatTable2(rows))
		}
	}
}

// BenchmarkTable3Tdp regenerates Table III: formula vs simulation tdp.
func BenchmarkTable3Tdp(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table3(e)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", exp.FormatTable3(rows))
		}
	}
}

// BenchmarkFig5MonteCarlo regenerates Fig. 5: the Monte-Carlo tdp
// distribution at 8 nm overlay, n = 64.
func BenchmarkFig5MonteCarlo(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig5(e, 8e-9, 64)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", exp.FormatFig5(res))
		}
	}
}

// BenchmarkTable4Sigmas regenerates Table IV: tdp σ per option/overlay.
func BenchmarkTable4Sigmas(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table4(e)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", exp.FormatTable4(rows))
			for _, r := range rows {
				name := r.Option.String()
				if r.Option == litho.LE3 {
					name += "_" + itoa(int(r.OL*1e9)) + "nm"
				}
				b.ReportMetric(r.Sigma, name+"_sigma_pp")
			}
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// ------------------------------------------------------------- ablations

// BenchmarkAblationCapModels compares the two closed-form capacitance
// models on the worst-case search (DESIGN.md §5).
func BenchmarkAblationCapModels(b *testing.B) {
	p := tech.N10()
	for _, cm := range []extract.CapModel{extract.SakuraiTamaru{}, extract.PlateFringe{}} {
		b.Run(cm.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				wc, err := extract.WorstCase(p, litho.LE3, cm)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(wc.CvarPct(), "le3_dCbl_%")
				}
			}
		})
	}
}

// BenchmarkAblationIntegrator compares trapezoidal and backward-Euler read
// simulations at n=64.
func BenchmarkAblationIntegrator(b *testing.B) {
	e := env(b)
	nom, err := sram.NominalParasitics(e.Proc, e.Cap)
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []spice.Integrator{spice.Trapezoidal, spice.BackwardEuler} {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				col, err := sram.BuildColumn(e.Proc, 64, nom, sram.BuildOptions{})
				if err != nil {
					b.Fatal(err)
				}
				rr, err := col.MeasureTd(nom, sram.SimOptions{Method: m})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(rr.Td*1e12, "td_ps")
				}
			}
		})
	}
}

// BenchmarkAblationDiscretization compares lumped vs distributed bit-line
// models and the Elmore analytical refinement.
func BenchmarkAblationDiscretization(b *testing.B) {
	e := env(b)
	nom, err := sram.NominalParasitics(e.Proc, e.Cap)
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name string
		opt  sram.BuildOptions
	}{
		{"lumped", sram.BuildOptions{Lumped: true}},
		{"seg8", sram.BuildOptions{Segments: 8}},
		{"seg64", sram.BuildOptions{}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				col, err := sram.BuildColumn(e.Proc, 256, nom, cfg.opt)
				if err != nil {
					b.Fatal(err)
				}
				rr, err := col.MeasureTd(nom, sram.SimOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(rr.Td*1e12, "td_ps")
				}
			}
		})
	}
	b.Run("elmore-analytic", func(b *testing.B) {
		m, err := analytic.Derive(e.Proc, nom.Rbl, nom.Cbl)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			td := m.TdElmore(256, 1, 1)
			if i == 0 {
				b.ReportMetric(td*1e12, "td_ps")
			}
		}
	})
}

// BenchmarkAblationMCConvergence sweeps the Monte-Carlo budget to show σ
// estimate convergence.
func BenchmarkAblationMCConvergence(b *testing.B) {
	e := env(b)
	m, err := e.Model()
	if err != nil {
		b.Fatal(err)
	}
	for _, samples := range []int{250, 1000, 4000} {
		b.Run(itoa(samples), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := mc.TdpDistribution(e.Proc, litho.LE3, m, e.Cap, 64,
					mc.Config{Samples: samples, Seed: 9})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.Summary.Std, "sigma_pp")
				}
			}
		})
	}
}

// BenchmarkTable4SurfaceSharedVsPerCell is the engine-redesign headline:
// the extended Table IV needs tdp σ at every DOE size. "percell" resamples
// one stream per (option, size) cell — the seed engine's access pattern —
// while "shared" evaluates all four sizes from each draw of a single
// stream, cutting the litho+extract work 4× and the allocations with it.
func BenchmarkTable4SurfaceSharedVsPerCell(b *testing.B) {
	e := env(b)
	m, err := e.Model()
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	cfg := mc.Config{Samples: 1000, Seed: 2015}
	b.Run("percell", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, n := range exp.PaperSizes {
				if _, err := mc.TdpAcrossSizes(ctx, e.Proc, litho.LE3, m, e.Cap, []int{n}, cfg); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("shared", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mc.TdpAcrossSizes(ctx, e.Proc, litho.LE3, m, e.Cap, exp.PaperSizes, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSpiceSweepSharedVsSerial is this refactor's headline: the
// combined Fig. 4 + Table II + Table III reproduction. "serial" replays
// the pre-sweep-engine access pattern — three independent loops of
// one-shot sram calls issuing 13 transients per DOE size (Fig. 4 re-runs
// the nominal per option, Table II re-runs it again, Table III repeats
// every Fig. 4 penalty) — while "shared" issues one deduplicated plan of
// 4 unique transients per size through the sweep engine's worker pool and
// reads all three tables from the memoized results.
func BenchmarkSpiceSweepSharedVsSerial(b *testing.B) {
	e := env(b)
	serialPenalties := func(b *testing.B) {
		for _, o := range litho.Options {
			wc, err := extract.WorstCase(e.Proc, o, e.Cap)
			if err != nil {
				b.Fatal(err)
			}
			for _, n := range exp.PaperSizes {
				if _, _, _, err := sram.TdPenaltyPct(e.Proc, o, wc.Sample, e.Cap, n, e.Build, e.Sim); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			serialPenalties(b)                 // Fig. 4
			for _, n := range exp.PaperSizes { // Table II
				if _, err := sram.SimulateTd(e.Proc, litho.EUV, litho.Nominal, e.Cap, n, e.Build, e.Sim); err != nil {
					b.Fatal(err)
				}
			}
			serialPenalties(b) // Table III
		}
	})
	b.Run("shared", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := exp.SpiceTables(e); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCrossProcessPlanSharedVsSerial is the process-axis headline:
// the Fig. 4-style sweep (nominal + per-option worst case per size)
// across all three registry nodes. "serial" runs one single-process sweep
// per node back to back — each paying its own pool spin-up and drain
// tail — while "shared" issues one cross-process plan whose nominal
// transients dedupe per (process, n) across options and whose job set
// interleaves the nodes over a single worker pool. Results are gated
// bit-identical to the serial arm across worker counts in
// sweep.TestCrossProcessSharedMatchesSerialPerProcess.
func BenchmarkCrossProcessPlanSharedVsSerial(b *testing.B) {
	e := env(b)
	reg := tech.Default()
	sizes := []int{16, 64}
	procs := map[string]tech.Process{}
	for _, p := range reg.Processes() {
		procs[p.Name] = p
	}
	ctx := context.Background()
	cfg := sweep.Config{Workers: 2}
	b.Run("serial-per-process", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			jobs := 0
			for _, name := range reg.Names() {
				pl := sweep.NewPlan()
				pl.AddNominal(sizes...)
				for _, o := range litho.Options {
					pl.AddWorstCase(o, sizes...)
				}
				senv := sweep.Env{Proc: procs[name], Cap: e.Cap, Build: e.Build, Sim: e.Sim}
				res, err := sweep.Run(ctx, senv, pl, cfg)
				if err != nil {
					b.Fatal(err)
				}
				jobs += res.Jobs()
			}
			if i == 0 {
				b.ReportMetric(float64(jobs), "transients")
			}
		}
	})
	b.Run("shared-cross-process", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// Every option (and, via AddNominal's per-table duplicates,
			// every consumer) declares its own nominal needs; the plan
			// coalesces them to one nominal transient per (process, n).
			pl := sweep.NewPlan()
			for _, name := range reg.Names() {
				for _, o := range litho.Options {
					pl.AddNominalFor(name, sizes...)
					pl.AddWorstCaseFor(name, o, sizes...)
				}
			}
			senv := sweep.Env{Proc: procs["N10"], Procs: procs, Cap: e.Cap, Build: e.Build, Sim: e.Sim}
			res, err := sweep.Run(ctx, senv, pl, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(res.Jobs()), "transients")
			}
		}
	})
}

// BenchmarkMCEngineOverhead isolates the sampling scaffold from the
// physics: a trivial observable through the full engine, streaming versus
// value-collecting. Allocations stay O(workers + blocks), not O(samples).
func BenchmarkMCEngineOverhead(b *testing.B) {
	ctx := context.Background()
	f := func(rng *rand.Rand, out []float64) bool {
		out[0] = rng.NormFloat64()
		return true
	}
	for _, cfg := range []struct {
		name string
		c    mc.Config
	}{
		{"streaming", mc.Config{Samples: 10000, Seed: 1}},
		{"collect", mc.Config{Samples: 10000, Seed: 1, Collect: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mc.RunVector(ctx, cfg.c, 1, f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------- micro-benches

// BenchmarkExtraction measures one realize+extract round trip.
func BenchmarkExtraction(b *testing.B) {
	p := tech.N10()
	cm := extract.SakuraiTamaru{}
	s := litho.Sample{CDA: 1e-9, OLB: 2e-9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := extract.VarRatios(p, litho.LE3, s, cm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFieldSolver measures the 2-D Laplace reference at 1 nm grid.
func BenchmarkFieldSolver(b *testing.B) {
	p := tech.N10()
	win, err := litho.Realize(p, litho.EUV, litho.Nominal)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := field.VictimCaps(p, win, 1e-9, 20000, 1e-7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSparseLadderSolve measures the sparse kernel on a 2048-node
// tridiagonal system (the bit-line ladder pattern).
func BenchmarkSparseLadderSolve(b *testing.B) {
	n := 2048
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := sparse.NewMatrix(n)
		rhs := make([]float64, n)
		for k := 0; k < n; k++ {
			m.Add(k, k, 2)
			if k > 0 {
				m.Add(k, k-1, -1)
			}
			if k < n-1 {
				m.Add(k, k+1, -1)
			}
			rhs[k] = 1
		}
		if _, err := m.Solve(rhs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSparseVsDense compares the solvers at a size where both run.
func BenchmarkSparseVsDense(b *testing.B) {
	n := 200
	build := func() (*sparse.Matrix, [][]float64, []float64) {
		rng := rand.New(rand.NewSource(5))
		m := sparse.NewMatrix(n)
		d := make([][]float64, n)
		rhs := make([]float64, n)
		for i := range d {
			d[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			m.Add(i, i, 4)
			d[i][i] = 4
			if i > 0 {
				v := rng.Float64()
				m.Add(i, i-1, -v)
				d[i][i-1] = -v
			}
			if i < n-1 {
				v := rng.Float64()
				m.Add(i, i+1, -v)
				d[i][i+1] = -v
			}
			rhs[i] = 1
		}
		return m, d, rhs
	}
	b.Run("sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, _, rhs := build()
			if _, err := m.Solve(rhs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, d, rhs := build()
			if _, err := sparse.DenseSolve(d, rhs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDeviceEval measures the MOSFET model evaluation.
func BenchmarkDeviceEval(b *testing.B) {
	nm := device.NewNMOS(tech.N10().FEOL)
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		id, _, _ := nm.Eval(20e-9, 0.6, 0.3)
		sink += id
	}
	_ = sink
}

// BenchmarkReadTransient measures one full n=64 read simulation.
func BenchmarkReadTransient(b *testing.B) {
	e := env(b)
	nom, err := sram.NominalParasitics(e.Proc, e.Cap)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		col, err := sram.BuildColumn(e.Proc, 64, nom, sram.BuildOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := col.MeasureTd(nom, sram.SimOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMCThroughput measures Monte-Carlo trials per second through the
// full litho→extract→formula pipeline.
func BenchmarkMCThroughput(b *testing.B) {
	e := env(b)
	m, err := e.Model()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, ok := mc.SampleRatios(e.Proc, litho.LE3, e.Cap, rng)
		if !ok {
			continue
		}
		m.TdpPct(64, r.Rvar, r.Cvar)
	}
}

// BenchmarkNetlistBuild measures column construction at the largest DOE
// size.
func BenchmarkNetlistBuild(b *testing.B) {
	e := env(b)
	nom, err := sram.NominalParasitics(e.Proc, e.Cap)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		col, err := sram.BuildColumn(e.Proc, 1024, nom, sram.BuildOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if err := col.Netlist.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDCOperatingPoint measures the Newton/gmin DC solve of the
// column.
func BenchmarkDCOperatingPoint(b *testing.B) {
	e := env(b)
	nom, err := sram.NominalParasitics(e.Proc, e.Cap)
	if err != nil {
		b.Fatal(err)
	}
	col, err := sram.BuildColumn(e.Proc, 64, nom, sram.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		eng, err := spice.New(col.Netlist, spice.Options{})
		if err != nil {
			b.Fatal(err)
		}
		eng.SetNodeset(map[circuit.NodeID]float64{col.Q: 0, col.QB: 0.7})
		if _, err := eng.DCOperatingPoint(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionLE2 runs the four-option extension corner study
// (DESIGN.md §5: LE2 sits between EUV and LE3).
func BenchmarkExtensionLE2(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		rows, err := exp.ExtTable1(e, 0)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", exp.FormatExtTable1(rows, 0))
		}
	}
}

// BenchmarkExtensionWritePenalty measures the write-path variability
// extension at n=64.
func BenchmarkExtensionWritePenalty(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		rows, err := exp.WritePenalty(e, 64)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", exp.FormatWritePenalty(rows))
		}
	}
}

// BenchmarkElmoreLadder measures the RC-tree Elmore sweep at the largest
// DOE bit line.
func BenchmarkElmoreLadder(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr, end, err := rctree.BuildLadder(7e3, 0.4e-15, 1024, 6.2, 40e-18, 6e-15)
		if err != nil {
			b.Fatal(err)
		}
		tau := tr.ElmoreDelays()
		_ = tau[end]
	}
}

// BenchmarkSNM measures the butterfly static-noise-margin analysis.
func BenchmarkSNM(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		res, err := sram.StaticNoiseMargins(e.Proc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Hold*1e3, "hold_mV")
			b.ReportMetric(res.Read*1e3, "read_mV")
		}
	}
}

// BenchmarkAblationAdaptiveStep compares the fixed-step and adaptive read
// simulations at n=256.
func BenchmarkAblationAdaptiveStep(b *testing.B) {
	e := env(b)
	nom, err := sram.NominalParasitics(e.Proc, e.Cap)
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name string
		opt  sram.SimOptions
	}{
		{"fixed", sram.SimOptions{}},
		{"adaptive", sram.SimOptions{Adaptive: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				col, err := sram.BuildColumn(e.Proc, 256, nom, sram.BuildOptions{})
				if err != nil {
					b.Fatal(err)
				}
				rr, err := col.MeasureTd(nom, cfg.opt)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(rr.Td*1e12, "td_ps")
				}
			}
		})
	}
}

// BenchmarkSpiceMC prices the SPICE-in-the-loop Monte-Carlo trial loop
// and isolates what engine residency buys: both arms draw the same
// lithography samples, extract the same perturbed parasitics and simulate
// the same read transients on one reused ColumnBuilder netlist — but the
// baseline constructs a fresh spice.New engine per trial (the pre-Reset
// access pattern) while the resident arm re-targets one engine with
// spice.Engine.Reset. The allocs/op gap is the engine construction cost
// the Reset path removes from every trial of every worker.
func BenchmarkSpiceMC(b *testing.B) {
	e := env(b)
	const (
		size   = 16
		trials = 16
	)
	p, cm, o := e.Proc, e.Cap, litho.EUV
	seedBuilder := sram.NewColumnBuilder(p, cm)
	nom, err := seedBuilder.Nominal()
	if err != nil {
		b.Fatal(err)
	}
	nomTd, err := seedBuilder.NominalTds([]int{size}, e.Build, e.Sim)
	if err != nil {
		b.Fatal(err)
	}
	params := litho.Params(p, o)
	run := func(b *testing.B, measure func(builder *sram.ColumnBuilder, cp sram.CellParasitics) (float64, error)) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			builder := sram.NewColumnBuilder(p, cm)
			builder.SetNominal(nom)
			rng := rand.New(rand.NewSource(0))
			for tr := 0; tr < trials; tr++ {
				rng.Seed(2015 + int64(tr))
				s := litho.Draw(params, rng)
				r, err := extract.VarRatios(p, o, s, cm)
				if err != nil {
					b.Fatal(err)
				}
				td, err := measure(builder, nom.Scale(r))
				if err != nil {
					b.Fatal(err)
				}
				if tdp := (td/nomTd[0] - 1) * 100; tdp < -100 || tdp > 1000 {
					b.Fatalf("implausible tdp %g", tdp)
				}
			}
		}
	}
	b.Run("new-engine-per-trial", func(b *testing.B) {
		run(b, func(builder *sram.ColumnBuilder, cp sram.CellParasitics) (float64, error) {
			col, err := builder.Build(size, cp, e.Build)
			if err != nil {
				return 0, err
			}
			res, err := col.MeasureTd(cp, e.Sim)
			if err != nil {
				return 0, err
			}
			return res.Td, nil
		})
	})
	b.Run("reset-resident-engine", func(b *testing.B) {
		run(b, func(builder *sram.ColumnBuilder, cp sram.CellParasitics) (float64, error) {
			return builder.MeasureTd(size, cp, e.Build, e.Sim)
		})
	})
}

// BenchmarkSpiceMCCV prices the control-variate estimator against the
// plain SPICE-MC estimator: both arms run the same paired draw budget of
// full read transients, but the cv arm also evaluates the closed-form
// formula on each trial's extracted ratios and reports the measured
// variance-reduction factor and the effective (plain-estimator) draw
// count the paired stream is worth. σ-per-CPU-second is eff_draws/op
// divided by ns/op: at ρ ≈ 0.99 the paired stream buys ~50–100× the
// plain estimator's statistical power for ~1× the transient cost, which
// is the whole economic case for the estimator (see EXPERIMENTS.md).
func BenchmarkSpiceMCCV(b *testing.B) {
	e := env(b)
	const size = 16
	cfg := e.MC
	cfg.Samples = 8
	p, cm, o := e.Proc, e.Cap, litho.EUV
	m, err := e.Model()
	if err != nil {
		b.Fatal(err)
	}
	seedBuilder := sram.NewColumnBuilder(p, cm)
	nom, err := seedBuilder.Nominal()
	if err != nil {
		b.Fatal(err)
	}
	nomTd, err := seedBuilder.NominalTds([]int{size}, e.Build, e.Sim)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vr, err := mc.SpiceTdpAcrossSizesShared(ctx, p, o, cm, []int{size}, nom, nomTd, e.Build, e.Sim, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(vr.Stats[0].N()), "eff_draws")
			}
		}
	})
	b.Run("cv", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cvr, err := mc.SpiceTdpCVAcrossSizesShared(ctx, p, o, m, cm, []int{size}, nom, nomTd, e.Build, e.Sim, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				s := cvr.CVSummary(0, 0, 1)
				b.ReportMetric(s.VarReduction, "vr_factor")
				b.ReportMetric(s.EffectiveN, "eff_draws")
			}
		}
	})
	b.Run("cv-adaptive", func(b *testing.B) {
		sopt := e.Sim
		sopt.Adaptive = true
		adTd, err := seedBuilder.NominalTds([]int{size}, e.Build, sopt)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			cvr, err := mc.SpiceTdpCVAcrossSizesShared(ctx, p, o, m, cm, []int{size}, nom, adTd, e.Build, sopt, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				s := cvr.CVSummary(0, 0, 1)
				b.ReportMetric(s.VarReduction, "vr_factor")
				b.ReportMetric(s.EffectiveN, "eff_draws")
			}
		}
	})
}
