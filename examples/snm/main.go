// Snm: cell-stability analysis on the SPICE substrate — butterfly static
// noise margins in hold and read, a write-time measurement, and the
// coupling of MP interconnect variability into the write path. These are
// the extension analyses DESIGN.md lists beyond the paper's read study.
package main

import (
	"fmt"
	"log"

	"mpsram/internal/extract"
	"mpsram/internal/litho"
	"mpsram/internal/sram"
	"mpsram/internal/tech"
)

func main() {
	p := tech.N10()
	cm := extract.SakuraiTamaru{}

	snm, err := sram.StaticNoiseMargins(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("6T cell static noise margins at %.1f V:\n", p.FEOL.Vdd)
	fmt.Printf("  hold SNM: %.1f mV\n", snm.Hold*1e3)
	fmt.Printf("  read SNM: %.1f mV\n", snm.Read*1e3)

	nom, err := sram.NominalParasitics(p, cm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nWrite-0 into the far cell (nominal wires):")
	for _, n := range []int{16, 64, 256} {
		col, err := sram.BuildWriteColumn(p, n, nom, sram.BuildOptions{})
		if err != nil {
			log.Fatal(err)
		}
		wr, err := col.MeasureWriteTime(nom, sram.SimOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  10x%-4d cell flips after %6.2f ps\n", n, wr.TFlip*1e12)
	}

	// How the LE3 worst corner shifts the write.
	wc, err := extract.WorstCase(p, litho.LE3, cm)
	if err != nil {
		log.Fatal(err)
	}
	scaled := nom.Scale(wc.Ratios)
	colN, _ := sram.BuildWriteColumn(p, 64, nom, sram.BuildOptions{})
	colW, _ := sram.BuildWriteColumn(p, 64, scaled, sram.BuildOptions{})
	wrN, err := colN.MeasureWriteTime(nom, sram.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	wrW, err := colW.MeasureWriteTime(scaled, sram.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nLE3 worst-corner write penalty at 10x64: %+.2f%% (%.2f → %.2f ps)\n",
		(wrW.TFlip/wrN.TFlip-1)*100, wrN.TFlip*1e12, wrW.TFlip*1e12)
}
