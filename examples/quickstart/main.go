// Quickstart: extract the N10 bit line, inspect the per-cell parasitics,
// run the Table I worst-case search through the workload registry, and
// estimate read times with the paper's analytical formula — no SPICE run
// involved.
package main

import (
	"fmt"
	"log"
	"os"

	"mpsram/internal/core"
	"mpsram/internal/exp"
	"mpsram/internal/litho"
	"mpsram/internal/report"
	"mpsram/internal/sram"
	"mpsram/internal/units"
)

func main() {
	study, err := core.NewStudy()
	if err != nil {
		log.Fatal(err)
	}

	// Per-cell bit-line parasitics on the nominal geometry.
	nom, err := sram.NominalParasitics(study.Env.Proc, study.Env.Cap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("N10 bit line, per cell:")
	fmt.Println("  Rbl =", units.Format(nom.Rbl, "Ω"))
	fmt.Println("  Cbl =", units.Format(nom.Cbl, "F"))

	// Table I through the registry: one Run call returns the paper-style
	// text, the machine-readable tables and the typed rows at once.
	res, err := study.Run("table1", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(res.Text)

	// The same result as machine-readable JSON — every workload shares
	// this rendering path (csv and md work identically).
	fmt.Println("\nThe same rows as JSON:")
	if err := res.Write(os.Stdout, report.FormatJSON); err != nil {
		log.Fatal(err)
	}

	// The analytical read-time model (paper eq. 4).
	m, err := study.Model()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAnalytical read-time estimates (formula, not SPICE):")
	for _, n := range exp.PaperSizes {
		fmt.Printf("  10x%-5d tdnom = %s\n", n, units.Format(m.TdNom(n), "s"))
	}

	// Penalty of the LE3 worst corner across sizes, from the typed rows.
	rows := res.Data.([]exp.Table1Row)
	var le3 exp.Table1Row
	for _, r := range rows {
		if r.Option == litho.LE3 {
			le3 = r
		}
	}
	rvar := 1 + le3.RblPct/100
	cvar := 1 + le3.CblPct/100
	fmt.Println("\nLE3 worst-corner penalty by array size (formula):")
	for _, n := range exp.PaperSizes {
		fmt.Printf("  10x%-5d tdp = %+.2f%%\n", n, m.TdpPct(n, rvar, cvar))
	}
}
