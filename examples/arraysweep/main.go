// Arraysweep: the Fig. 4 experiment end-to-end on the SPICE engine —
// worst-case read-time penalty versus array size for all three patterning
// options, printed as the series the paper plots.
//
// The experiment is dispatched through the workload registry
// (Study.Run("fig4")), which runs the sharded sweep engine underneath:
// one declarative plan, deduplicated (one nominal transient per size
// serves every option's penalty denominator), executed on a worker pool.
// The typed rows come back on the Result for custom rendering; the
// registry's own csv/md/json encoders are one res.Write call away.
package main

import (
	"fmt"
	"log"

	"mpsram/internal/core"
	"mpsram/internal/exp"
	"mpsram/internal/litho"
)

func main() {
	study, err := core.NewStudy()
	if err != nil {
		log.Fatal(err)
	}
	res, err := study.Run("fig4", nil)
	if err != nil {
		log.Fatal(err)
	}
	pts := res.Data.([]exp.Fig4Point)
	sizes := exp.PaperSizes

	// Re-shape the series into the penalty matrix the paper plots.
	tdp := map[litho.Option]map[int]float64{}
	tdnom := map[int]float64{}
	for _, p := range pts {
		if tdp[p.Option] == nil {
			tdp[p.Option] = map[int]float64{}
		}
		tdp[p.Option][p.N] = p.TdpPct
		tdnom[p.N] = p.TdNom
	}
	fmt.Printf("Worst-case td penalty vs array size (SPICE, %s):\n", study.Env.Proc.Name)
	fmt.Printf("%-8s", "option")
	for _, n := range sizes {
		fmt.Printf(" %10s", fmt.Sprintf("10x%d", n))
	}
	fmt.Println()
	for _, o := range litho.Options {
		fmt.Printf("%-8v", o)
		for _, n := range sizes {
			p, ok := tdp[o][n]
			if !ok {
				log.Fatalf("missing fig4 point %v n=%d", o, n)
			}
			fmt.Printf(" %+9.2f%%", p)
		}
		fmt.Println()
	}

	fmt.Println("\nNominal read time vs array size:")
	for _, n := range sizes {
		td, ok := tdnom[n]
		if !ok {
			log.Fatalf("missing nominal point n=%d", n)
		}
		fmt.Printf("  10x%-5d td = %8.2f ps\n", n, td*1e12)
	}
}
