// Arraysweep: the Fig. 4 experiment end-to-end on the SPICE engine —
// worst-case read-time penalty versus array size for all three patterning
// options, printed as the series the paper plots.
//
// The sweep goes through the sharded sweep engine: one declarative plan,
// deduplicated (one nominal transient per size serves every option's
// penalty denominator), executed on a worker pool, consumed as views.
package main

import (
	"context"
	"fmt"
	"log"

	"mpsram/internal/core"
	"mpsram/internal/litho"
	"mpsram/internal/sweep"
)

func main() {
	study, err := core.NewStudy()
	if err != nil {
		log.Fatal(err)
	}
	env := study.Env
	sizes := []int{16, 64, 256, 1024}

	plan := sweep.NewPlan()
	plan.AddNominal(sizes...)
	for _, o := range litho.Options {
		plan.AddWorstCase(o, sizes...)
	}
	res, err := sweep.Run(context.Background(), sweep.Env{
		Proc:  env.Proc,
		Cap:   env.Cap,
		Build: env.Build,
		Sim:   env.Sim,
	}, plan, sweep.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Worst-case td penalty vs array size (SPICE, N10; %d unique transients):\n",
		res.Jobs())
	fmt.Printf("%-8s", "option")
	for _, n := range sizes {
		fmt.Printf(" %10s", fmt.Sprintf("10x%d", n))
	}
	fmt.Println()
	for _, o := range litho.Options {
		fmt.Printf("%-8v", o)
		for _, n := range sizes {
			tdp, ok := res.TdpPct(o, n)
			if !ok {
				log.Fatalf("missing sweep point %v n=%d", o, n)
			}
			fmt.Printf(" %+9.2f%%", tdp)
		}
		fmt.Println()
	}

	fmt.Println("\nNominal read time vs array size:")
	for _, n := range sizes {
		td, ok := res.TdNom(n)
		if !ok {
			log.Fatalf("missing nominal point n=%d", n)
		}
		fmt.Printf("  10x%-5d td = %8.2f ps\n", n, td*1e12)
	}
}
