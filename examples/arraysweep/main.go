// Arraysweep: the Fig. 4 experiment end-to-end on the SPICE engine —
// worst-case read-time penalty versus array size for all three patterning
// options, printed as the series the paper plots.
package main

import (
	"fmt"
	"log"

	"mpsram/internal/core"
	"mpsram/internal/extract"
	"mpsram/internal/litho"
	"mpsram/internal/sram"
)

func main() {
	study, err := core.NewStudy()
	if err != nil {
		log.Fatal(err)
	}
	env := study.Env
	sizes := []int{16, 64, 256, 1024}

	fmt.Println("Worst-case td penalty vs array size (SPICE, N10):")
	fmt.Printf("%-8s", "option")
	for _, n := range sizes {
		fmt.Printf(" %10s", fmt.Sprintf("10x%d", n))
	}
	fmt.Println()
	for _, o := range litho.Options {
		wc, err := extract.WorstCase(env.Proc, o, env.Cap)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8v", o)
		for _, n := range sizes {
			tdp, _, _, err := sram.TdPenaltyPct(env.Proc, o, wc.Sample, env.Cap, n, env.Build, env.Sim)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %+9.2f%%", tdp)
		}
		fmt.Println()
	}

	fmt.Println("\nNominal read time vs array size:")
	for _, n := range sizes {
		td, err := study.ReadTime(litho.EUV, litho.Nominal, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  10x%-5d td = %8.2f ps\n", n, td*1e12)
	}
}
