// Worstcase: run the corner study on a customized technology — a tighter
// metal1 pitch and a swept LE3 overlay budget — and watch how the
// patterning ranking responds. This is the "what if my fab's overlay
// control is better/worse" question the paper's conclusions hinge on.
package main

import (
	"fmt"
	"log"

	"mpsram/internal/core"
	"mpsram/internal/extract"
	"mpsram/internal/litho"
	"mpsram/internal/tech"
)

func main() {
	// Overlay sweep on the stock N10 process: the paper's conclusion is
	// that LE3 needs ≤3 nm 3σ overlay to compete with SADP/EUV.
	fmt.Println("LE3 worst-case ΔCbl vs overlay budget (stock N10):")
	for _, ol := range []float64{2e-9, 3e-9, 5e-9, 7e-9, 8e-9} {
		study, err := core.NewStudy(core.WithOverlay(ol))
		if err != nil {
			log.Fatal(err)
		}
		wc, err := extract.WorstCase(study.Env.Proc, litho.LE3, study.Env.Cap)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  OL %.0fnm: ΔCbl %+7.2f%%  ΔRbl %+6.2f%%\n", ol*1e9, wc.CvarPct(), wc.RvarPct())
	}

	// Custom stack: a relaxed 64 nm pitch variant (e.g. a mid-level
	// metal) — MP variability softens as spacing grows.
	p := tech.N10()
	p.M1.Pitch = 64e-9
	p.M1.Width = 30e-9
	p.M1.Space = 34e-9
	p.SADP.Period = 128e-9
	p.SADP.MandrelWidth = 30e-9
	p.SADP.SpacerThk = 34e-9
	if err := p.Validate(); err != nil {
		log.Fatal(err)
	}
	study, err := core.NewStudy(core.WithProcess(p))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nRelaxed 64 nm pitch stack:")
	rows, err := study.WorstCases()
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("  %-8v ΔCbl %+7.2f%%  ΔRbl %+6.2f%%\n", r.Option, r.CblPct, r.RblPct)
	}

	// Ablation: the crude plate+fringe capacitance model shifts absolute
	// numbers but preserves the LE3 ≫ EUV/SADP ranking.
	study2, err := core.NewStudy(core.WithCapModel(extract.PlateFringe{}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nStock N10 with the plate+fringe ablation model:")
	rows2, err := study2.WorstCases()
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows2 {
		fmt.Printf("  %-8v ΔCbl %+7.2f%%  ΔRbl %+6.2f%%\n", r.Option, r.CblPct, r.RblPct)
	}
}
