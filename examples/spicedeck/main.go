// Spicedeck: build the SRAM column netlist directly, export it as a SPICE
// deck, run the read on the built-in engine, and print the sense-node
// waveforms — the workflow for users who want the simulator substrate
// rather than the packaged experiments.
package main

import (
	"fmt"
	"log"
	"strings"

	"mpsram/internal/extract"
	"mpsram/internal/sram"
	"mpsram/internal/tech"
)

func main() {
	p := tech.N10()
	cm := extract.SakuraiTamaru{}
	nom, err := sram.NominalParasitics(p, cm)
	if err != nil {
		log.Fatal(err)
	}

	col, err := sram.BuildColumn(p, 16, nom, sram.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}

	deck := col.Netlist.WriteSpice("sram column, n=16, nominal N10")
	fmt.Println("SPICE deck (first lines):")
	for i, line := range strings.Split(deck, "\n") {
		if i >= 12 {
			fmt.Println("  ...")
			break
		}
		fmt.Println(" ", line)
	}
	fmt.Println("netlist:", col.Netlist.Stats())

	rr, err := col.MeasureTd(nom, sram.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nread: td = %.2f ps (window %.0f ps, dt %.2f fs)\n",
		rr.Td*1e12, rr.TEnd*1e12, rr.Dt*1e15)
	fmt.Printf("read-disturb peak on q: %.3f V\n", col.SenseMargin(rr.Result))

	res := rr.Result
	bl := res.NodeWave(col.BLSense)
	blb := res.NodeWave(col.BLBSense)
	fmt.Println("\n   t[ps]    V(bl)   V(blb)    diff")
	step := len(res.T) / 10
	if step == 0 {
		step = 1
	}
	for k := 0; k < len(res.T); k += step {
		fmt.Printf("%8.2f %8.4f %8.4f %8.4f\n", res.T[k]*1e12, bl[k], blb[k], blb[k]-bl[k])
	}
}
