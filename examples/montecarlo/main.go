// Montecarlo: reproduce the paper's Fig. 5 / Table IV flow — Monte-Carlo
// sampling of process variation through the fast analytical model — with
// both experiments dispatched through the workload registry, and print
// the tdp distributions as ASCII histograms.
package main

import (
	"fmt"
	"log"

	"mpsram/internal/core"
	"mpsram/internal/exp"
	"mpsram/internal/litho"
	"mpsram/internal/mc"
)

func main() {
	study, err := core.NewStudy(core.WithMC(mc.Config{Samples: 20000, Seed: 7}))
	if err != nil {
		log.Fatal(err)
	}

	// Fig. 5 at the paper's operating point: 8 nm 3σ overlay, n = 64.
	// The parameters are schema-validated — a typo'd name or a wrong
	// type errors with the valid schema instead of being ignored.
	f5, err := study.Run("fig5", exp.Params{"n": 64, "ol": 8.0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(f5.Text)

	// Table IV: σ per option and overlay budget.
	t4, err := study.Run("table4", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(t4.Text)

	// The ratio the paper's conclusion quotes: LE3 at 8 nm vs SADP,
	// computed from the typed rows the Result carries.
	var le38, sadp float64
	for _, r := range t4.Data.([]mc.SigmaSweepRow) {
		if r.Option == litho.LE3 && r.OL == 8e-9 {
			le38 = r.Sigma
		}
		if r.Option == litho.SADP {
			sadp = r.Sigma
		}
	}
	fmt.Printf("\nσ(LE3 @8nm) / σ(SADP) = %.2f (paper: ~2.4x)\n", le38/sadp)
}
