// Montecarlo: reproduce the paper's Fig. 5 / Table IV flow — Monte-Carlo
// sampling of process variation through the fast analytical model — and
// print the tdp distributions as ASCII histograms.
package main

import (
	"fmt"
	"log"

	"mpsram/internal/core"
	"mpsram/internal/exp"
	"mpsram/internal/litho"
	"mpsram/internal/mc"
)

func main() {
	study, err := core.NewStudy(core.WithMC(mc.Config{Samples: 20000, Seed: 7}))
	if err != nil {
		log.Fatal(err)
	}

	// Fig. 5 at the paper's operating point: 8 nm 3σ overlay, n = 64.
	results, err := exp.Fig5(study.Env, 8e-9, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(exp.FormatFig5(results))

	// Table IV: σ per option and overlay budget.
	rows, err := study.SigmaTable()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(exp.FormatTable4(rows))

	// The ratio the paper's conclusion quotes: LE3 at 8 nm vs SADP.
	var le38, sadp float64
	for _, r := range rows {
		if r.Option == litho.LE3 && r.OL == 8e-9 {
			le38 = r.Sigma
		}
		if r.Option == litho.SADP {
			sadp = r.Sigma
		}
	}
	fmt.Printf("\nσ(LE3 @8nm) / σ(SADP) = %.2f (paper: ~2.4x)\n", le38/sadp)
}
