module mpsram

go 1.22
