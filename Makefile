# One entry point for humans and CI (.github/workflows/ci.yml calls these
# same targets).

GO ?= go

# Coverage ratchet: CI fails if total -short coverage drops below this.
# Raise it when coverage grows; never lower it without a written reason.
COVER_MIN ?= 80.5

.PHONY: all build test test-race bench bench-smoke bench-json fuzz-smoke cover cover-check lint fmt clean

all: build lint test

build:
	$(GO) build ./...

# Fast feedback: skips the long SPICE sweeps (testing.Short gates).
test:
	$(GO) test -short ./...

# The CI gate: full suite under the race detector.
test-race:
	$(GO) test -race ./...

# Full benchmark harness — regenerates every paper table and figure.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# CI smoke: every benchmark once, just to prove the harness still runs.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Machine-readable fan-out benchmarks: the serve-layer fan-out pair
# (direct vs 3 shards), the shard run/reduce split that bounds its
# speedup, the remote-fabric dispatch round trip (its per-shard overhead
# floor), and the SPICE-MC control-variate baseline — emitted as one
# JSON object per benchmark into BENCH_10.json (CI uploads it as an
# artifact; numbers are per-machine, so the file is advisory, not a gate).
bench-json:
	@{ $(GO) test -run '^$$' -bench 'ServeFanout' -benchmem -benchtime 2x ./internal/serve; \
	   $(GO) test -run '^$$' -bench 'BenchmarkShard' -benchmem -benchtime 2x ./internal/core; \
	   $(GO) test -run '^$$' -bench 'RemoteShardRoundtrip' -benchmem -benchtime 5x ./internal/remote; \
	   $(GO) test -run '^$$' -bench 'SpiceMCCV$$' -benchmem -benchtime 1x .; } | \
	awk 'BEGIN { print "[" } \
	     /^Benchmark/ { ns="null"; bop="null"; aop="null"; \
	       for (i = 2; i < NF; i++) { \
	         if ($$(i+1) == "ns/op") ns = $$i; \
	         else if ($$(i+1) == "B/op") bop = $$i; \
	         else if ($$(i+1) == "allocs/op") aop = $$i; \
	       } \
	       if (n++) printf(",\n"); \
	       printf("  {\"name\":\"%s\",\"iters\":%s,\"ns_op\":%s,\"b_op\":%s,\"allocs_op\":%s}", $$1, $$2, ns, bop, aop) } \
	     END { print "\n]" }' > BENCH_10.json
	@cat BENCH_10.json

# Fuzz smoke: ten seconds per target. FuzzNetlistReset proves
# spice.Engine.Reset stays bit-identical to a fresh engine under random
# topology-stable netlist mutations; FuzzP2Quantile checks the P² sketch
# (and its deterministic Merge) against exact quantiles on random streams;
# FuzzControlVariate checks the paired-moment accumulator (β̂, ρ̂, residual
# variance and its split-anywhere Merge) against exact two-pass statistics.
# The three *Codec targets gate the shard-artifact serialization surface:
# encode→decode→Merge must stay bit-identical to merging the live
# accumulators, on random streams split at random points.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzNetlistReset' -fuzztime 10s ./internal/spice
	$(GO) test -run '^$$' -fuzz 'FuzzP2Quantile' -fuzztime 10s ./internal/stats
	$(GO) test -run '^$$' -fuzz 'FuzzControlVariate$$' -fuzztime 10s ./internal/stats
	$(GO) test -run '^$$' -fuzz 'FuzzWelfordCodec' -fuzztime 10s ./internal/stats
	$(GO) test -run '^$$' -fuzz 'FuzzP2Codec' -fuzztime 10s ./internal/stats
	$(GO) test -run '^$$' -fuzz 'FuzzControlVariateCodec' -fuzztime 10s ./internal/stats

# Coverage over the -short suite (the fast deterministic core).
cover:
	$(GO) test -short -coverprofile=coverage.out ./...

# Ratcheted gate: fail when total coverage drops below COVER_MIN.
cover-check: cover
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	echo "total coverage: $$total% (minimum $(COVER_MIN)%)"; \
	awk -v t=$$total -v m=$(COVER_MIN) 'BEGIN { exit (t+0 < m+0) ? 1 : 0 }' || \
		{ echo "coverage ratchet failed: $$total% < $(COVER_MIN)%"; exit 1; }

lint:
	$(GO) vet ./...
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
