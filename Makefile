# One entry point for humans and CI (.github/workflows/ci.yml calls these
# same targets).

GO ?= go

.PHONY: all build test test-race bench bench-smoke lint fmt clean

all: build lint test

build:
	$(GO) build ./...

# Fast feedback: skips the long SPICE sweeps (testing.Short gates).
test:
	$(GO) test -short ./...

# The CI gate: full suite under the race detector.
test-race:
	$(GO) test -race ./...

# Full benchmark harness — regenerates every paper table and figure.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# CI smoke: every benchmark once, just to prove the harness still runs.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

lint:
	$(GO) vet ./...
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
