// Package mpsram is a from-scratch Go reproduction of
//
//	I. Karageorgos et al., "Impact of Interconnect Multiple-Patterning
//	Variability on SRAMs", DATE 2015, pp. 609–612.
//
// The implementation lives under internal/: technology description
// (tech) — a process registry whose N7- and N5-class presets are derived
// from the calibrated N10 node by a validated shrink (tech.Derive), so
// the process is a first-class sweep axis — patterning engines (litho),
// parasitic extraction (extract) with
// a finite-difference field-solver reference (field), a nodal SPICE engine
// (circuit, device, sparse, spice), the SRAM column builder with its
// reusable build/simulate sessions (sram), the sharded SPICE sweep engine
// that deduplicates and parallelizes the simulation-driven tables (sweep),
// the paper's analytical read-time model (analytic), the streaming
// multi-observable Monte-Carlo engine and its statistics — including P²
// quantile sketches for collection-free runs (mc, stats), layout
// generation (layout), the per-table/figure experiment drivers (exp) and
// the public facade (core).
//
// The two execution engines share one design: callers declare work
// (a sweep.Plan of simulation points; a Monte-Carlo sample budget), the
// engine deduplicates or streams it across a worker pool with per-worker
// reusable scratch, and deterministic aggregation makes every result
// bit-identical for any worker count. Fig. 4, Table II and Table III are
// views over one shared sweep (16 unique transients instead of the 52 a
// serial reproduction issues); Fig. 5 and Table IV are views over shared
// Monte-Carlo streams.
//
// The process axis threads through both engines: sweep.Plan points and
// Monte-Carlo streams key on (process, option, …), a single cross-process
// plan replaces N serial per-process runs (nominal transients dedupe per
// (process, n) across options), and the exp layer adds the cross-node
// workloads — exp.Nodes, the Table-IV-style σ comparison across
// N10/N7/N5 (`mpvar nodes`), and per-process extended Table IV surfaces.
// N10 results are bit-identical to the single-node engine they grew out
// of. Per-trial reseeding has an opt-in fast path (mc.Config.FastReseed,
// a splittable PCG64 stream, ~1000× cheaper than the legacy
// lagged-Fibonacci reseed) that changes the sample stream and therefore
// requires re-baselining; the default stream stays bit-exact.
//
// The two engines also compose: mc.SpiceTdpAcrossSizes hosts a full read
// transient inside every Monte-Carlo trial (SPICE-in-the-loop), with each
// worker owning a sram.ColumnBuilder session whose resident spice.Engine
// is re-targeted per trial through Engine.Reset — the sparse matrices,
// Newton scratch and waveform storage are allocated once per worker, not
// once per trial, and Reset is bit-identical to a fresh engine (fuzzed in
// FuzzNetlistReset). Numeric drift across refactors is pinned by golden
// CSVs under internal/exp/testdata/golden (regenerate with
// go test ./internal/exp -run Golden -update).
//
// Experiments are addressed through the workload registry (internal/exp):
// each experiment registers a Workload descriptor — name, summary, typed
// parameter schema with defaults, budget hints — plus a uniform
// Run(ctx, Env, Params) returning a Result whose typed rows feed one
// rendering contract, so csv, markdown and json encoding live once in
// internal/report instead of per table. core.Study.Run dispatches by
// name, Study.Workloads lists the registry, and RunAll is a plan over the
// workloads marked for the paper-order report. The mpvar CLI generates
// its usage, per-workload flags and smoke coverage from the registry;
// registering a workload (one file with an init block — see
// internal/exp/mcspicex.go for the template) adds its command, flags,
// json output and CI smoke with no edits elsewhere. The pre-registry
// Study methods (WorstCases, SigmaTable, …) remain as deprecation shims
// over Run — same signatures, byte-identical results; the shim set is
// frozen and new experiments appear only as workloads.
//
// SPICE-in-the-loop draws are priced down by a paired estimator
// (stats.ControlVariate, mc.RunVectorPaired): each trial measures tdp
// twice on the same deviates — the full read transient and the paper's
// closed-form formula — and a streaming paired-moment accumulator
// (Welford moments on both observables plus their co-moment, merged
// block-deterministically like every other accumulator, fuzzed in
// FuzzControlVariate) regresses the expensive observable on the cheap
// one. The corrected estimate ȳ − β̂(x̄ − μX) replaces the control's
// sampling noise with its exact reference moments from a large analytic
// stream, cutting the variance by 1/(1 − ρ̂²); with ρ̂ ≈ 0.99 measured
// across the DOE, tens of paired draws buy the statistical power of
// thousands of plain ones (BenchmarkSpiceMCCV pins σ-per-CPU-second).
// β̂ is trustworthy exactly when the regression is: it needs enough
// paired draws for cov/var to stabilize (the reported ρ̂ and the
// variance-reduction factor are the diagnostics — a VR barely above 1
// means the correction is noise), a control that is genuinely computed
// from the same deviates as the primary, and reference moments from a
// stream matching the control's true distribution; degenerate inputs
// (n < 2, a flat control) collapse β̂ to 0 and the estimator to the
// plain mean. The estimator changes no sampling: the SPICE stream is
// bitwise identical to the unpaired path, so cv is an estimator mode,
// not a new experiment, and it is part of the run's cache identity.
// Orthogonally, sram.SimOptions.Adaptive swaps the fixed-step transient
// for an LTE-controlled step-doubling integrator (~7× fewer steps,
// gated against fixed-step across the full DOE to 0.5% on td and 1% on
// σ; sram.SimOptions.LTETol loosens it at your own risk — the gate test
// demonstrates 20 mV tolerance tripping it).
//
// The registry has a network face (internal/serve, `mpvar serve`): an
// HTTP/JSON service whose four endpoints — workload listing with typed
// schemas, schema-validated run submission, result/status fetch, and an
// SSE progress stream riding the engines' serialized callbacks — are
// generated from the same Workload descriptors as the CLI, so the wire
// surface cannot drift from the in-process one. Its result cache leans
// on the repo's central invariant: every run is bit-deterministic in
// (workload, params, seed, samples, process, PRNG stream, engine
// version), so that tuple's canonical SHA-256 (core.RunSpec.Key — after
// normalization: schema defaults filled, process names case-folded,
// zero seed/samples resolved to the paper seed and the workload's
// budget hint) is simultaneously the run id, the single-flight identity
// that coalesces identical concurrent submissions into one execution,
// and the address in a bounded LRU of rendered result bodies. Equal
// keys imply byte-identical responses — cache disposition and timing
// travel in X-Mpvar-* headers, never in the body — and worker counts
// stay out of the key because determinism is independent of them.
// Heavy-traffic control is a bounded executor pool over a depth-limited
// queue (submissions beyond it shed with 429), per-run wall-clock
// timeouts on top of the registry's sample-budget hints, and a SIGTERM
// drain that refuses new work while every queued and in-flight run
// finishes. core.EngineVersion is part of the key: bump it when a
// numerics change regenerates the goldens, and every stale cache entry
// retires at once. API.md documents the wire contract.
//
// The Monte-Carlo engine's block scheduler (internal/mc/sched.go) is the
// seam distributed execution grows from. Trials aggregate into fixed
// 256-trial blocks; workers pull block indices from an atomic cursor and
// a frontier re-orders completed blocks so they are emitted strictly in
// block order — which makes the contiguous emitted prefix the engine's
// partial-progress invariant: a canceled run reports exactly the trials
// of that prefix, torn in-flight blocks are never counted, so a resumed
// run re-executes precisely the blocks at or after the frontier and
// nothing is double-counted. Because float folds are not associative,
// partial aggregates are serialized per block (versioned big-endian
// codecs for Welford/P²/ControlVariate in stats/codec.go, exact-round-trip
// fuzzed in Fuzz*Codec): a reducer replays the same left-fold the
// single-process run performs, bit for bit. On top of that sit
// mc.ShardSpec/ShardRun/Replay — execute one contiguous block range of
// every stream a workload runs, capture the records, or fold recorded
// ones instead of executing — and core.RunShard/Reduce, which wrap the
// capture in a self-identifying artifact file: a JSON header carrying
// the full normalized RunSpec plus its run key, then the mc payload.
// Reduce recomputes the key from the header, so artifacts from an older
// EngineVersion or a drifted schema refuse instead of folding stale
// blocks. Checkpoints are the same artifact marked incomplete, written
// atomically; `mpvar shard -index I -of N` / `mpvar reduce` surface all
// of it over the registry — every workload shards, resumes and reduces
// byte-identically to its single-process run with zero per-workload
// code (CI proves both by cmp: a 3-shard reduce and a SIGINT-resume
// against the unsharded output).
//
// The serve layer closes the loop with a fan-out executor
// (internal/serve/fanout.go): a submission whose estimated cost
// (normalized samples × the workload's Hints.Cost weight) crosses a
// threshold is dispatched as N concurrent shard executions — goroutines
// by default, opt-in `mpvar shard` child processes (-fanout-exec=process)
// whose crashes cost one shard attempt, not the server — and reduced
// through the same exact left-fold replay, so the response body is
// byte-identical to direct execution and lands in the same cache entry:
// fan-out is pure execution detail, invisible in the run key (the
// X-Mpvar-Fanout header is the only trace). The whole fan-out occupies
// one executor slot; per-shard frontiers aggregate into one monotone SSE
// progress stream; failed shards re-dispatch from their persisted
// checkpoint; and a graceful drain cancels only fan-out runs, leaving
// every shard's frontier checkpointed in -fanout-dir so a restarted
// server pointed at the same directory resumes instead of recomputing
// (CI proves the bytes, the drain checkpoints and the restart-resume
// over the real binary).
//
// The third execution vehicle crosses machines (internal/remote,
// -fanout-exec=remote): every `mpvar serve` process also mounts the
// worker side of a shard fabric — POST /v1/shards accepts a normalized
// RunSpec + ShardSpec (plus an optional checkpoint to resume), executes
// it through the same core.RunShard in a bounded pool, and streams
// progress frames, periodic checkpoint frames and finally the complete
// artifact back, validating the embedded run key on both ends so a
// version-drifted peer refuses before any bytes fold. The coordinator
// side is a health-checked peer pool: each shard dispatches to the
// live, least-loaded peer (draining or engine-drifted peers are
// excluded by their own /v1/healthz), under a single watchdog covering
// dispatch and mid-stream stalls. The failure ladder trades only time,
// never correctness: a dead peer is marked down and the shard
// re-dispatches to another worker resuming from the last shipped
// checkpoint frame; a fleet with no live peers falls back to in-process
// execution; and a coordinator drain leaves the shipped checkpoints in
// -fanout-dir, where a restarted coordinator resumes them like any
// local fan-out. The reduce stays the exact left-fold, so remote bodies
// are byte-identical to direct execution and share its cache entry (CI
// proves it over real processes and sockets, including a worker killed
// mid-run).
//
// The benchmark harness in bench_test.go regenerates every table and
// figure of the paper's evaluation section; run
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for the paper-vs-measured record.
package mpsram
