// Package mpsram is a from-scratch Go reproduction of
//
//	I. Karageorgos et al., "Impact of Interconnect Multiple-Patterning
//	Variability on SRAMs", DATE 2015, pp. 609–612.
//
// The implementation lives under internal/: technology description
// (tech), patterning engines (litho), parasitic extraction (extract) with
// a finite-difference field-solver reference (field), a nodal SPICE engine
// (circuit, device, sparse, spice), the SRAM column builder (sram), the
// paper's analytical read-time model (analytic), the streaming
// multi-observable Monte-Carlo engine and its statistics (mc, stats),
// layout generation (layout), the per-table/figure experiment drivers
// (exp) and the public facade (core).
//
// The benchmark harness in bench_test.go regenerates every table and
// figure of the paper's evaluation section; run
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for the paper-vs-measured record.
package mpsram
